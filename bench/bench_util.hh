/**
 * @file
 * Shared output helpers for the table/figure regeneration benches.
 * Every bench prints the paper's published values next to the
 * model's, so `for b in build/bench/*; do $b; done` produces a
 * self-contained paper-vs-measured report (EXPERIMENTS.md archives
 * one such run).
 */

#ifndef SYNC_BENCH_BENCH_UTIL_HH
#define SYNC_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

namespace synchro::bench
{

inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::printf("\n");
    std::printf("=================================================="
                "====================\n");
    std::printf("%s\n", title.c_str());
    std::printf("  reproduces: %s\n", paper_ref.c_str());
    std::printf("=================================================="
                "====================\n");
}

inline void
note(const std::string &text)
{
    std::printf("  note: %s\n", text.c_str());
}

/** Relative delta in percent (guarded). */
inline double
deltaPct(double ours, double paper)
{
    return paper != 0 ? 100.0 * (ours - paper) / paper : 0.0;
}

} // namespace synchro::bench

#endif // SYNC_BENCH_BENCH_UTIL_HH
