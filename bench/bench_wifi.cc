/**
 * @file
 * End-to-end mapped 802.11a receiver bench: the demap ->
 * de-interleave -> fork(Viterbi ACS x2) -> join(traceback) DAG
 * planned by the AutoMapper and executed cycle-accurately, producing
 * (1) the per-backend throughput comparison on a fork/join
 * workload and (2) the measured-activity multi-V vs single-V power
 * comparison next to the paper's Table 4 802.11a row. Appends its
 * numbers to BENCH_wifi.json so the trajectory is tracked across
 * PRs (tools/bench_check.py gates regressions in CI).
 */

#include <cstdio>

#include "apps/paper_workloads.hh"
#include "apps/wifi_runner.hh"
#include "bench_json.hh"
#include "sim/scheduler.hh"

using namespace synchro;
using namespace synchro::apps;

int
main(int argc, char **argv)
{
    // --backend picks which run's power/throughput is reported as
    // "this run"; all three backends are always measured.
    const SchedulerKind primary =
        backendFromArgs(argc, argv, SchedulerKind::FastEdge);
    WifiPipelineParams params;
    params.symbols = 16;

    std::printf("mapped 802.11a receiver, %u frames, every "
                "backend:\n",
                params.symbols);
    MappedWifiRun runs[3];
    double wall[3] = {0, 0, 0};
    SchedulerKind kinds[3] = {SchedulerKind::FastEdge,
                              SchedulerKind::EventQueue,
                              SchedulerKind::Compiled};
    int pidx = 0;
    for (int i = 0; i < 3; ++i) {
        if (kinds[i] == primary)
            pidx = i;
        params.scheduler = kinds[i];
        runs[i] = runMappedWifi(params);
        wall[i] = runs[i].sim_seconds;
        std::printf("  %-10s %8llu ticks in %6.1f ms = %6.2f "
                    "Mticks/s  (%s, %llu overruns, %llu "
                    "deferrals)\n",
                    schedulerName(kinds[i]),
                    (unsigned long long)runs[i].ticks, wall[i] * 1e3,
                    double(runs[i].ticks) / wall[i] / 1e6,
                    runs[i].bit_exact ? "bit-exact" : "MISMATCH",
                    (unsigned long long)runs[i].overruns,
                    (unsigned long long)runs[i].deferrals);
    }
    bool identical = true;
    for (int i = 0; i < 3; ++i)
        identical = identical && runs[i].ticks == runs[1].ticks &&
                    runs[i].output == runs[1].output &&
                    runs[i].stats == runs[1].stats;
    double speedup = wall[1] > 0 ? wall[1] / wall[0] : 0.0;
    double compiled_speedup = wall[2] > 0 ? wall[1] / wall[2] : 0.0;
    std::printf("  fast-path speedup %.2fx, compiled %.2fx, "
                "backends %s\n",
                speedup, compiled_speedup,
                identical ? "identical" : "MISMATCH");

    // --- measured power next to the paper's Table 4 row ----------
    const auto &pw = runs[pidx].power;
    int paper_pct = 0;
    for (const auto &row : paperAppTotals()) {
        if (row.app == "802.11a")
            paper_pct = row.savings_pct;
    }
    std::printf("\nmulti-V vs single-V (measured activity, %.1f "
                "kbit/s sustained): %.2f mW vs %.2f mW = %.1f%% "
                "saved (paper: %d%%)\n",
                runs[pidx].achieved_bit_rate_hz / 1e3,
                pw.multi_v.total(), pw.single_v.total(),
                pw.savingsPct(), paper_pct);

    bench::JsonReport report("BENCH_wifi.json");
    report.set("wifi_dag", "ticks", double(runs[0].ticks));
    report.set("wifi_dag", "fast_mticks_per_s",
               double(runs[0].ticks) / wall[0] / 1e6);
    report.set("wifi_dag", "eventq_mticks_per_s",
               double(runs[1].ticks) / wall[1] / 1e6);
    report.set("wifi_dag", "fast_speedup", speedup);
    report.set("wifi_dag", "compiled_mticks_per_s",
               double(runs[2].ticks) / wall[2] / 1e6);
    report.set("wifi_dag", "compiled_speedup", compiled_speedup);
    report.set("wifi_dag", "bit_exact",
               runs[0].bit_exact && runs[1].bit_exact &&
                       runs[2].bit_exact && identical
                   ? 1.0
                   : 0.0);
    report.set("wifi_dag", "sustained_kbps",
               runs[pidx].achieved_bit_rate_hz / 1e3);
    report.set("wifi_power_measured", "multi_v_mw",
               pw.multi_v.total());
    report.set("wifi_power_measured", "single_v_mw",
               pw.single_v.total());
    report.set("wifi_power_measured", "savings_pct",
               pw.savingsPct());
    report.set("wifi_power_measured", "paper_savings_pct",
               double(paper_pct));
    if (!report.write())
        std::printf("(could not write BENCH_wifi.json)\n");
    else
        std::printf("\nwrote BENCH_wifi.json\n");

    return runs[0].bit_exact && runs[1].bit_exact &&
                   runs[2].bit_exact && identical &&
                   runs[pidx].overruns == 0 &&
                   runs[pidx].conflicts == 0
               ? 0
               : 1;
}
