/**
 * @file
 * End-to-end mapped stereo vision bench: the prefilter ->
 * fork(SAD x4) -> min-SAD join DAG planned by the AutoMapper and
 * executed cycle-accurately, producing (1) the FastEdge vs
 * EventQueue throughput comparison on the five-lane fan-out workload
 * and (2) the measured-activity multi-V vs single-V power comparison
 * next to the paper's Table 4 SV row. Appends its numbers to
 * BENCH_stereo.json so the trajectory is tracked across PRs
 * (tools/bench_check.py gates regressions in CI).
 */

#include <cstdio>

#include "apps/paper_workloads.hh"
#include "apps/stereo_runner.hh"
#include "bench_json.hh"

using namespace synchro;
using namespace synchro::apps;

int
main()
{
    StereoPipelineParams params;

    std::printf("mapped stereo vision, %ux%u, %u disparities over "
                "%u SAD columns, both backends:\n",
                StereoWidth, StereoHeight, StereoMaxDisp,
                StereoSadColumns);
    MappedStereoRun runs[2];
    double wall[2] = {0, 0};
    SchedulerKind kinds[2] = {SchedulerKind::FastEdge,
                              SchedulerKind::EventQueue};
    for (int i = 0; i < 2; ++i) {
        params.scheduler = kinds[i];
        runs[i] = runMappedStereo(params);
        wall[i] = runs[i].sim_seconds;
        std::printf("  %-10s %8llu ticks in %6.1f ms = %6.2f "
                    "Mticks/s  (%s, %llu overruns, %llu "
                    "deferrals)\n",
                    schedulerName(kinds[i]),
                    (unsigned long long)runs[i].ticks, wall[i] * 1e3,
                    double(runs[i].ticks) / wall[i] / 1e6,
                    runs[i].bit_exact ? "bit-exact" : "MISMATCH",
                    (unsigned long long)runs[i].overruns,
                    (unsigned long long)runs[i].deferrals);
    }
    bool identical = runs[0].ticks == runs[1].ticks &&
                     runs[0].output == runs[1].output &&
                     runs[0].stats == runs[1].stats;
    double speedup = wall[1] > 0 ? wall[1] / wall[0] : 0.0;
    std::printf("  fast-path speedup %.2fx, backends %s, truth hit "
                "rate %.0f%%\n",
                speedup, identical ? "identical" : "MISMATCH",
                100.0 * runs[0].truth_hit_rate);

    // --- measured power next to the paper's Table 4 row ----------
    const auto &pw = runs[0].power;
    int paper_pct = 0;
    for (const auto &row : paperAppTotals()) {
        if (row.app == "SV")
            paper_pct = row.savings_pct;
    }
    std::printf("\nmulti-V vs single-V (measured activity, %.1f "
                "kblocks/s sustained): %.2f mW vs %.2f mW = %.1f%% "
                "saved (paper: %d%%)\n",
                runs[0].achieved_block_rate_hz / 1e3,
                pw.multi_v.total(), pw.single_v.total(),
                pw.savingsPct(), paper_pct);

    bench::JsonReport report("BENCH_stereo.json");
    report.set("stereo_dag", "ticks", double(runs[0].ticks));
    report.set("stereo_dag", "fast_mticks_per_s",
               double(runs[0].ticks) / wall[0] / 1e6);
    report.set("stereo_dag", "eventq_mticks_per_s",
               double(runs[1].ticks) / wall[1] / 1e6);
    report.set("stereo_dag", "fast_speedup", speedup);
    report.set("stereo_dag", "bit_exact",
               runs[0].bit_exact && runs[1].bit_exact && identical
                   ? 1.0
                   : 0.0);
    report.set("stereo_dag", "sustained_kblocks_s",
               runs[0].achieved_block_rate_hz / 1e3);
    report.set("stereo_power_measured", "multi_v_mw",
               pw.multi_v.total());
    report.set("stereo_power_measured", "single_v_mw",
               pw.single_v.total());
    report.set("stereo_power_measured", "savings_pct",
               pw.savingsPct());
    report.set("stereo_power_measured", "paper_savings_pct",
               double(paper_pct));
    if (!report.write())
        std::printf("(could not write BENCH_stereo.json)\n");
    else
        std::printf("\nwrote BENCH_stereo.json\n");

    return runs[0].bit_exact && runs[1].bit_exact && identical &&
                   runs[0].overruns == 0 && runs[0].conflicts == 0
               ? 0
               : 1;
}
