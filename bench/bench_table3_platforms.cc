/** @file Regenerates Table 3: Synchroscalar vs commercial platforms,
 * and checks the headline claims — "power efficiencies within 8-30X
 * of known ASIC implementations, which is 10-60X better than
 * conventional DSPs". */

#include <algorithm>
#include <map>

#include "apps/paper_workloads.hh"
#include "apps/platforms.hh"
#include "bench_util.hh"
#include "power/system_power.hh"

using namespace synchro;
using namespace synchro::apps;
using namespace synchro::power;

int
main()
{
    bench::banner("Table 3: Power comparison with other platforms",
                  "Synchroscalar (ISCA 2004), Table 3");

    SystemPowerModel model;

    // Synchroscalar rows regenerated from our model at the paper's
    // published mappings.
    std::map<std::string, double> sync_power;
    for (const auto &row : paperTable4()) {
        DomainLoad load{row.algo, row.tiles, row.f_mhz, row.v,
                        calibrateTransfers(row, model)};
        sync_power[row.app] += model.loadPower(load).total();
    }

    std::printf("  %-12s %-24s %9s %14s %16s\n", "App", "Platform",
                "P (mW)", "rate (unit/s)", "energy (nJ/unit)");
    std::map<std::string, double> sync_energy;
    for (const auto &app : paperAppNames()) {
        if (app == "802.11a+AES")
            continue; // Table 3 lists the base applications
        double rate = appSampleRate(app);
        double e_nj = sync_power[app] * 1e-3 / rate * 1e9;
        sync_energy[app] = e_nj;
        std::printf("  %-12s %-24s %9.1f %14.3g %16.3f\n",
                    app.c_str(), "Synchroscalar (model)",
                    sync_power[app], rate, e_nj);
        for (const auto &p : paperTable3Platforms()) {
            if (p.app != app)
                continue;
            std::printf("  %-12s %-24s %9.1f %14.3g %16.3f  %s\n",
                        app.c_str(), p.platform.c_str(), p.power_mw,
                        p.rate, energyPerUnitNj(p),
                        p.notes.c_str());
        }
    }

    std::printf("\n  CLAIM CHECK: energy ratios vs Synchroscalar "
                "(model)\n");
    double asic_min = 1e300, asic_max = 0;
    double dsp_min = 1e300, dsp_max = 0;
    for (const auto &p : paperTable3Platforms()) {
        if (!sync_energy.count(p.app))
            continue;
        double ratio_sync_over = sync_energy[p.app] /
                                 energyPerUnitNj(p);
        if (p.kind == PlatformKind::Asic) {
            std::printf("    vs ASIC %-22s (%s): Synchroscalar uses "
                        "%.1fx the energy\n",
                        p.platform.c_str(), p.app.c_str(),
                        ratio_sync_over);
            asic_min = std::min(asic_min, ratio_sync_over);
            asic_max = std::max(asic_max, ratio_sync_over);
        } else {
            double better = 1.0 / ratio_sync_over;
            std::printf("    vs DSP/CPU %-19s (%s): Synchroscalar is "
                        "%.1fx more efficient\n",
                        p.platform.c_str(), p.app.c_str(), better);
            dsp_min = std::min(dsp_min, better);
            dsp_max = std::max(dsp_max, better);
        }
    }
    std::printf("\n    ASIC gap range:  %.1fx .. %.1fx   (paper: "
                "8-30x)\n",
                asic_min, asic_max);
    std::printf("    DSP/CPU gain:    %.1fx .. %.1fx   (paper: "
                "10-60x; the Blackfin DDC point is the 'factor of "
                "60' of Section 5.5)\n",
                dsp_min, dsp_max);
    bench::note("commercial rows are the paper's cited datasheet "
                "numbers (src/apps/platforms.cc); Synchroscalar rows "
                "come from our power model");
    return 0;
}
