/** @file Regenerates Table 1 (technology parameters) from the model's
 * actual constants, including the derived tile power and leakage. */

#include "bench_util.hh"
#include "power/leakage.hh"
#include "power/tile_power.hh"
#include "power/vf_model.hh"

using namespace synchro;
using namespace synchro::power;

int
main()
{
    bench::banner("Table 1: Technology Parameters",
                  "Synchroscalar (ISCA 2004), Table 1");

    const TechParams &t = defaultTech();
    VfModel vf(t);
    LeakageModel leak(t);
    TilePowerChain chain;

    std::printf("  %-28s %-14s %s\n", "Parameter", "Value", "Source");
    std::printf("  %-28s %.0f nm\n", "Technology", t.feature_nm);
    std::printf("  %-28s %.2f V        Blackfin DSP floor\n",
                "Minimum Voltage", t.vdd_min);
    std::printf("  %-28s %.2f V        BPTM estimate\n",
                "Maximum Voltage", t.vdd_max);
    std::printf("  %-28s %.3f V       BPTM\n", "Threshold Voltage",
                t.vth);
    std::printf("  %-28s %.0f C         leakage analysis\n",
                "Temperature", t.temperature_c);
    std::printf("  %-28s %.0f MHz       model at %0.2f V "
                "(paper: 600 at 20 FO4)\n",
                "Max Frequency", vf.frequencyMhz(t.vdd_max),
                t.vdd_max);
    std::printf("  %-28s %.3f mW/MHz  synthesis chain: %.2f -> %.3f "
                "@2.5V -> %.3f @1V\n",
                "Tile Power", t.tile_power_mw_per_mhz,
                chain.synthesizedTotal(), chain.customTotalAt2v5(),
                chain.uAt1V());
    std::printf("  %-28s %.2f mm^2     Table 2 scaled\n", "Tile Size",
                t.tile_area_mm2);
    std::printf("  %-28s %.0f fF/mm    semi-global [Future of "
                "Wires]\n",
                "Wire Cap.", t.wire_cap_ff_per_mm);
    std::printf("  %-28s %.2f um      16 x feature semi-global\n",
                "Wire pitch", t.wire_pitch_um);
    std::printf("  %-28s %.0f pA/dev   calibrated (model: %.0f)\n",
                "Leakage / transistor", t.leak_pa_per_transistor,
                leak.currentPerTransistorA() * 1e12);
    std::printf("  %-28s %.2f mA      1.8M transistors\n",
                "Leakage / tile", t.leakMaPerTile());

    bench::note("paper Table 1 lists wire cap as fF/um; the text and "
                "all arithmetic use fF/mm (documented in DESIGN.md)");
    return 0;
}
