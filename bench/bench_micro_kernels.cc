/** @file Micro-kernel cycle costs measured on the cycle-accurate
 * simulator (methodology step 6: "Use the cycle-accurate simulator
 * to determine the number of clock cycles required per input data
 * sample"), compared with the per-tile cycles/sample implied by the
 * paper's Table 4 mappings. Uses google-benchmark to also report
 * simulator throughput. */

#include <benchmark/benchmark.h>

#include <chrono>

#include "apps/kernels.hh"
#include "apps/pipeline_runner.hh"
#include "arch/chip.hh"
#include "bench_json.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "dsp/fir.hh"
#include "dsp/nco.hh"
#include "isa/assembler.hh"

using namespace synchro;
using namespace synchro::apps::kernels;

namespace
{

std::vector<int16_t>
randomQ15(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<int16_t> x(n);
    for (auto &v : x)
        v = int16_t(rng.range(-30000, 30000));
    return x;
}

void
BM_Fir21(benchmark::State &state)
{
    auto taps = dsp::designLowpassQ15(21, 0.2);
    auto x = randomQ15(256, 1);
    KernelRun last;
    for (auto _ : state)
        last = runFir(taps, x);
    auto small = runFir(taps, randomQ15(64, 1));
    auto cost = marginalCost(small, 64, last, 256);
    state.counters["cycles_per_sample"] = cost.cycles_per_sample;
    // Paper-implied: CFIR on 16 tiles at 380 MHz for 64 MS/s.
    state.counters["paper_implied_cps"] = 380.0 * 16 / 64;
}

void
BM_Fir63(benchmark::State &state)
{
    auto taps = dsp::designPfir63();
    auto x = randomQ15(128, 2);
    KernelRun last;
    for (auto _ : state)
        last = runFir(taps, x);
    auto small = runFir(taps, randomQ15(32, 2));
    auto cost = marginalCost(small, 32, last, 128);
    state.counters["cycles_per_sample"] = cost.cycles_per_sample;
    state.counters["paper_implied_cps"] = 370.0 * 16 / 64;
}

void
BM_Mixer(benchmark::State &state)
{
    auto x = randomQ15(256, 3);
    dsp::Nco nco(5e6, 64e6);
    auto lo = nco.generate(x.size());
    KernelRun last;
    for (auto _ : state)
        last = runMixer(x, lo);
    nco.reset();
    auto small = runMixer(randomQ15(64, 3), nco.generate(64));
    auto cost = marginalCost(small, 64, last, 256);
    state.counters["cycles_per_sample"] = cost.cycles_per_sample;
    // Paper-implied: mixer on 8 tiles at 120 MHz for 64 MS/s.
    state.counters["paper_implied_cps"] = 120.0 * 8 / 64;
}

void
BM_CicIntegrator(benchmark::State &state)
{
    std::vector<int32_t> x(512, 7);
    KernelRun last;
    for (auto _ : state)
        last = runCicIntegrator(x);
    auto small = runCicIntegrator(std::vector<int32_t>(64, 7));
    auto cost = marginalCost(small, 64, last, 512);
    state.counters["cycles_per_sample"] = cost.cycles_per_sample;
    state.counters["paper_implied_cps"] = 200.0 * 8 / 64;
}

void
BM_Sad16(benchmark::State &state)
{
    Rng rng(4);
    std::vector<uint8_t> a(256), b(256);
    for (auto &v : a)
        v = uint8_t(rng.below(256));
    for (auto &v : b)
        v = uint8_t(rng.below(256));
    KernelRun last;
    for (auto _ : state)
        last = runSad16(a, b);
    state.counters["cycles_per_block"] = double(last.cycles);
}

void
BM_Dct8Rows(benchmark::State &state)
{
    auto x = randomQ15(64, 5);
    KernelRun last;
    for (auto _ : state)
        last = runDct8Rows(x, 8);
    state.counters["cycles_per_row"] = double(last.cycles) / 8.0;
}

void
BM_Acs4Distributed(benchmark::State &state)
{
    std::vector<int32_t> init(64, 1000);
    std::vector<std::vector<int32_t>> bm(
        8, std::vector<int32_t>(128, 1));
    KernelRun last;
    for (auto _ : state)
        last = runAcs4(init, bm);
    state.counters["cycles_per_stage"] = double(last.cycles) / 8.0;
    state.counters["bus_words_per_stage"] =
        double(last.bus_transfers) / 8.0;
    // Paper-implied whole-stage budget: 16 tiles at 540 MHz decode
    // 54 Mb/s -> 10 cycles/stage (with 4x our tile count and a
    // dual-MAC datapath).
    state.counters["paper_implied_16tile"] = 540.0 / 54.0;
}

// ---------------------------------------------------------------
// Core execution-engine throughput: every scheduler backend on a
// dividers={8,8,4,2} chip, recorded into BENCH_core.json so the
// perf trajectory is tracked across PRs.

double
coreTicksPerSec(SchedulerKind kind, Tick &ticks_out,
                unsigned team = 0)
{
    using clock = std::chrono::steady_clock;
    double best_tps = 0;
    for (int rep = 0; rep < 3; ++rep) {
        arch::ChipConfig cfg;
        cfg.dividers = {8, 8, 4, 2};
        cfg.scheduler = kind;
        cfg.parallel_columns = team;
        arch::Chip chip(cfg);
        for (unsigned c = 0; c < chip.numColumns(); ++c) {
            chip.column(c).controller().loadProgram(isa::assemble(R"(
                movi r0, 0
                lsetup lc0, oe, 2000
                lsetup lc1, ie, 100
                addi r0, 1
            ie:
                nop
            oe:
                halt
            )"));
        }
        auto t0 = clock::now();
        auto res = chip.run(1'000'000'000);
        auto t1 = clock::now();
        if (res.exit != arch::RunExit::AllHalted)
            fatal("core throughput chip did not halt");
        double secs =
            std::chrono::duration<double>(t1 - t0).count();
        ticks_out = res.ticks;
        best_tps = std::max(best_tps, double(res.ticks) / secs);
    }
    return best_tps;
}

/** Best-of-reps (minimum) wall time per call, in nanoseconds. */
template <typename Fn>
double
nsPerOp(Fn &&fn, int reps = 5)
{
    using clock = std::chrono::steady_clock;
    double best = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
        auto t0 = clock::now();
        fn();
        auto t1 = clock::now();
        best = std::min(
            best,
            std::chrono::duration<double, std::nano>(t1 - t0)
                .count());
    }
    return best;
}

/**
 * Mapped-DDC throughput per backend (best of 3), in ticks/s — the
 * ROADMAP item 2 target is measured here: compiled >= 10x eventq on
 * a real mapped application, not just the core loop.
 */
double
ddcTicksPerSec(SchedulerKind kind)
{
    double best_tps = 0;
    for (int rep = 0; rep < 3; ++rep) {
        apps::DdcPipelineParams params;
        params.samples = 2048;
        params.scheduler = kind;
        apps::MappedDdcRun run = apps::runMappedDdc(params);
        if (!run.bit_exact)
            fatal("mapped DDC lost bit-exactness on %s",
                  schedulerName(kind));
        best_tps = std::max(best_tps,
                            double(run.ticks) / run.sim_seconds);
    }
    return best_tps;
}

void
emitBenchJson()
{
    bench::JsonReport report;

    Tick ticks = 0;
    double fast_tps = coreTicksPerSec(SchedulerKind::FastEdge, ticks);
    double eq_tps =
        coreTicksPerSec(SchedulerKind::EventQueue, ticks);
    double comp_tps =
        coreTicksPerSec(SchedulerKind::Compiled, ticks);
    // Automatic team sizing: on a multi-core host the columns run
    // on a real thread team; parallel_speedup is measured against
    // the serial backend it parallelizes (FastEdge), so <1 on a
    // starved CI box is an honest number, not a regression.
    double par_tps =
        coreTicksPerSec(SchedulerKind::ParallelColumns, ticks);
    report.set("core", "fastpath_ticks_per_sec", fast_tps);
    report.set("core", "eventq_ticks_per_sec", eq_tps);
    report.set("core", "compiled_ticks_per_sec", comp_tps);
    report.set("core", "parallel_ticks_per_sec", par_tps);
    report.set("core", "fastpath_speedup", fast_tps / eq_tps);
    report.set("core", "compiled_speedup", comp_tps / eq_tps);
    report.set("core", "parallel_speedup", par_tps / fast_tps);
    report.set("core", "run_ticks", double(ticks));

    double ddc_fast = ddcTicksPerSec(SchedulerKind::FastEdge);
    double ddc_eq = ddcTicksPerSec(SchedulerKind::EventQueue);
    double ddc_comp = ddcTicksPerSec(SchedulerKind::Compiled);
    double ddc_par =
        ddcTicksPerSec(SchedulerKind::ParallelColumns);
    report.set("mapped_ddc", "fastpath_ticks_per_sec", ddc_fast);
    report.set("mapped_ddc", "eventq_ticks_per_sec", ddc_eq);
    report.set("mapped_ddc", "compiled_ticks_per_sec", ddc_comp);
    report.set("mapped_ddc", "parallel_ticks_per_sec", ddc_par);
    report.set("mapped_ddc", "fastpath_speedup", ddc_fast / ddc_eq);
    report.set("mapped_ddc", "compiled_speedup", ddc_comp / ddc_eq);
    report.set("mapped_ddc", "parallel_speedup",
               ddc_par / ddc_fast);

    auto taps = dsp::designLowpassQ15(21, 0.2);
    auto x = randomQ15(256, 1);
    report.set("micro_kernels", "fir21_ns_per_op",
               nsPerOp([&] { runFir(taps, x); }));
    dsp::Nco nco(5e6, 64e6);
    auto lo = nco.generate(x.size());
    report.set("micro_kernels", "mixer_ns_per_op",
               nsPerOp([&] { runMixer(x, lo); }));
    std::vector<int32_t> ci(512, 7);
    report.set("micro_kernels", "cic_integrator_ns_per_op",
               nsPerOp([&] { runCicIntegrator(ci); }));

    if (!report.write())
        std::fprintf(stderr, "warning: could not write "
                             "BENCH_core.json\n");
    std::printf("\nBENCH_core.json: core fast-path %.3g ticks/s, "
                "event-queue %.3g, compiled %.3g (%.2fx), parallel "
                "%.3g (%.2fx of fast-path); mapped DDC compiled "
                "%.3g ticks/s = %.2fx event-queue, parallel %.2fx "
                "of fast-path\n",
                fast_tps, eq_tps, comp_tps, comp_tps / eq_tps,
                par_tps, par_tps / fast_tps, ddc_comp,
                ddc_comp / ddc_eq, ddc_par / ddc_fast);
}

} // namespace

BENCHMARK(BM_Fir21)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fir63)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Mixer)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CicIntegrator)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Sad16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Dct8Rows)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Acs4Distributed)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    // --backend governs the BM_* kernel harnesses (their chips are
    // built with default configs); the JSON trajectory below always
    // measures all four backends regardless.
    setDefaultSchedulerKind(backendFromArgs(argc, argv));
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    emitBenchJson();
    return 0;
}
