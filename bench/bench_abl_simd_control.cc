/** @file Ablation: SIMD (one controller per column) vs MIMD (one
 * per tile) control overhead. The paper's Section 2.2 amortizes
 * instruction fetch/decode across the column; this bench quantifies
 * the power that choice saves using the Table 2 / Section 4.2
 * breakdown. */

#include "apps/paper_workloads.hh"
#include "bench_util.hh"
#include "power/system_power.hh"
#include "power/tile_power.hh"

using namespace synchro;
using namespace synchro::apps;
using namespace synchro::power;

int
main()
{
    bench::banner("Ablation: SIMD column control vs per-tile control",
                  "Synchroscalar (ISCA 2004), Section 2.2 / 4.2");

    TilePowerChain chain;
    // Section 4.2: the SIMD controller + DOU contribute 0.25 mW/MHz
    // amortized over 4 tiles; a per-tile controller would charge the
    // full 4x to every tile.
    double simd_share = chain.simd_dou_mw_mhz;
    double mimd_share = chain.simd_dou_mw_mhz * 4.0;
    double u_simd = chain.synthesizedTotal();
    double u_mimd = u_simd - simd_share + mimd_share;

    std::printf("  normalized power at the synthesis corner:\n");
    std::printf("    SIMD column control: %.2f mW/MHz per tile "
                "(controller share %.2f)\n",
                u_simd, simd_share);
    std::printf("    per-tile control:    %.2f mW/MHz per tile "
                "(controller share %.2f)\n",
                u_mimd, mimd_share);
    std::printf("    control-overhead increase: %.1f%%\n\n",
                100.0 * (u_mimd - u_simd) / u_simd);

    // Propagate through Table 4's applications.
    double scale = u_mimd / u_simd;
    SystemPowerModel simd_model;
    TechParams mimd_tech = defaultTech();
    mimd_tech.tile_power_mw_per_mhz *= scale;
    SystemPowerModel mimd_model(mimd_tech);

    std::printf("  application power, SIMD vs per-tile control:\n");
    std::printf("  %-14s %12s %12s %8s\n", "App", "SIMD mW",
                "MIMD mW", "extra");
    for (const auto &name : paperAppNames()) {
        double p_simd = 0, p_mimd = 0;
        for (const auto &row : paperTable4()) {
            if (row.app != name)
                continue;
            DomainLoad load{row.algo, row.tiles, row.f_mhz, row.v,
                            calibrateTransfers(row, simd_model)};
            p_simd += simd_model.loadPower(load).total();
            p_mimd += mimd_model.loadPower(load).total();
        }
        std::printf("  %-14s %12.1f %12.1f %+7.1f%%\n", name.c_str(),
                    p_simd, p_mimd,
                    bench::deltaPct(p_mimd, p_simd));
    }
    bench::note("area also drops: one 0.25 mm^2 controller + one "
                "0.0875 mm^2 DOU per 4 tiles instead of per tile");
    return 0;
}
