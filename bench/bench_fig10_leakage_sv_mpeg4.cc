/** @file Regenerates Figure 10: leakage sensitivity for Stereo
 * Vision and MPEG4, including the paper's highlighted cross-over —
 * "when tiles leak less than 14.8 mA ... the higher parallelized
 * structure of 36 tiles is more efficient, but when tiles leak more
 * ... the twelve tile structure is more efficient". */

#include "apps/paper_workloads.hh"
#include "bench_util.hh"
#include "mapping/optimizer.hh"
#include "power/vf_model.hh"

using namespace synchro;
using namespace synchro::apps;
using namespace synchro::mapping;
using namespace synchro::power;

namespace
{

/** Fixed-allocation power at a given leakage. */
double
powerAt(const std::string &app_name,
        const std::vector<unsigned> &alloc, double leak_ma,
        const SupplyLevels &levels)
{
    SystemPowerModel model;
    model.setLeakMaPerTile(leak_ma);
    Optimizer opt(model, levels);
    AppWorkload app = appWorkload(app_name, model);
    auto m = opt.mapWithTiles(app, alloc);
    return m ? m->power.total() : -1.0;
}

} // namespace

int
main()
{
    bench::banner("Figure 10: Leakage sensitivity, SV and MPEG4",
                  "Synchroscalar (ISCA 2004), Figure 10 (Section "
                  "5.4)");

    VfModel vf;
    SupplyLevels levels(vf);
    SystemPowerModel base;
    Optimizer base_opt(base, levels);

    std::printf("  %-18s", "mA/tile:");
    for (double ma : leakageSweepMa())
        std::printf(" %8.1f", ma);
    std::printf("\n");

    std::vector<std::pair<std::string, std::vector<unsigned>>>
        series = {{"SV", {5, 9, 17}},
                  {"MPEG4-CIF", {8, 12, 20, 36}}};
    for (const auto &[app_name, budgets] : series) {
        AppWorkload app = appWorkload(app_name, base);
        for (unsigned budget : budgets) {
            auto m = base_opt.mapWithBudget(app, budget);
            if (!m) {
                std::printf("  %-10s %2u tiles:   infeasible\n",
                            app_name.c_str(), budget);
                continue;
            }
            std::vector<unsigned> alloc;
            for (const auto &l : m->loads)
                alloc.push_back(l.tiles);
            std::printf("  %-10s %2u tiles:", app_name.c_str(),
                        budget);
            for (double ma : leakageSweepMa())
                std::printf(" %8.0f",
                            powerAt(app_name, alloc, ma, levels));
            std::printf("\n");
        }
    }

    // Cross-over search between the MPEG4 12- and 36-tile structures.
    AppWorkload mpeg = appWorkload("MPEG4-CIF", base);
    auto m12 = base_opt.mapWithBudget(mpeg, 12);
    auto m36 = base_opt.mapWithBudget(mpeg, 36);
    if (m12 && m36) {
        std::vector<unsigned> a12, a36;
        for (const auto &l : m12->loads)
            a12.push_back(l.tiles);
        for (const auto &l : m36->loads)
            a36.push_back(l.tiles);
        double cross = -1;
        for (double ma = 1.0; ma <= 60.0; ma += 0.1) {
            double p12 = powerAt("MPEG4-CIF", a12, ma, levels);
            double p36 = powerAt("MPEG4-CIF", a36, ma, levels);
            if (p36 > p12) {
                cross = ma;
                break;
            }
        }
        std::printf("\n  CLAIM CHECK: MPEG4 12-vs-36-tile cross-over "
                    "at %.1f mA/tile (paper: 14.8 mA = 8.3 "
                    "nA/transistor)\n",
                    cross);
    }
    return 0;
}
