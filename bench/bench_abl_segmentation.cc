/** @file Ablation: segmented vs flat (all-switches-closed) bus, run
 * on the cycle-accurate simulator. Segmentation buys (1) parallel
 * transfers on the same lane in disjoint segments and (2) shorter
 * switched wire spans — both claimed in Section 2.3. */

#include "arch/chip.hh"
#include "bench_util.hh"
#include "isa/assembler.hh"
#include "mapping/comm_schedule.hh"
#include "power/interconnect.hh"

using namespace synchro;
using namespace synchro::arch;
using namespace synchro::bench;

namespace
{

struct Result
{
    uint64_t cycles;
    uint64_t transfers;
    uint64_t wire_span;
};

/** Neighbour exchange (t0->t1 and t2->t3) of N words per tile,
 * either on one lane in disjoint segments or serialized on a flat
 * bus. */
Result
runExchange(bool segmented, unsigned words)
{
    ChipConfig cfg;
    cfg.dividers = {1};
    cfg.tiles_per_column = 4;
    Chip chip(cfg);
    chip.column(0).controller().loadProgram(
        isa::assemble(strprintf(R"(
        movi r0, 0
        tid r7
        lsetup lc0, e, %u
        addi r7, 1
        cwr r7
        crd r1
        add r0, r0, r1
    e:
        halt
    )", words)));

    mapping::CommSchedule sched;
    if (segmented) {
        // Both pairs share lane 0 in the same cycle, disjoint
        // segments — 4-cycle loop sustained.
        sched.period = 4;
        sched.transfers = {
            {0, 0, 0, {0, 1}, false},
            {0, 1, 1, {}, false},
            {0, 2, 2, {2, 3}, false},
            {0, 3, 3, {}, false},
        };
    } else {
        // Flat bus: one transfer at a time; the pairs alternate
        // across an 8-cycle period, so each tile's value waits.
        sched.period = 8;
        sched.transfers = {
            {0, 0, 0, {0, 1}, false},
            {0, 1, 1, {}, false},
            {4, 2, 2, {2, 3}, false},
            {4, 3, 3, {}, false},
        };
        // Close every switch: transfers span the whole column.
        // (The schedule compiler spans only what is needed, so
        // patch the segment bytes to the flat configuration.)
    }
    auto prog = mapping::compileSchedule(sched);
    if (!segmented) {
        for (auto &st : prog.states)
            st.seg = {0xf, 0xf, 0xf, 0x0};
    }
    chip.column(0).dou().load(prog);

    auto res = chip.run(10'000'000);
    if (res.exit != RunExit::AllHalted)
        fatal("exchange did not complete");
    Result out;
    const auto &st = chip.column(0).controller().stats();
    out.cycles = st.value("issued") + st.value("commStalls") +
                 st.value("branchStalls");
    out.transfers = chip.fabric().transfers();
    out.wire_span = chip.fabric().wireSpanSum();
    return out;
}

} // namespace

int
main()
{
    banner("Ablation: segmented bus vs flat broadcast bus",
           "Synchroscalar (ISCA 2004), Section 2.3");

    const unsigned words = 256;
    Result seg = runExchange(true, words);
    Result flat = runExchange(false, words);

    power::InterconnectModel ic;
    // Wire-span sum is in bus nodes; 5 nodes = the full 10 mm run.
    auto energy_uj = [&](const Result &r) {
        double frac = double(r.wire_span) / (5.0 * r.transfers);
        return r.transfers *
               ic.transferEnergyJ(32, 1.0, frac) * 1e6;
    };

    std::printf("  neighbour exchange of %u words per pair:\n",
                words);
    std::printf("  %-12s %10s %10s %12s %14s\n", "bus", "cycles",
                "transfers", "wire-span", "bus energy uJ");
    std::printf("  %-12s %10llu %10llu %12llu %14.3f\n", "segmented",
                (unsigned long long)seg.cycles,
                (unsigned long long)seg.transfers,
                (unsigned long long)seg.wire_span, energy_uj(seg));
    std::printf("  %-12s %10llu %10llu %12llu %14.3f\n", "flat",
                (unsigned long long)flat.cycles,
                (unsigned long long)flat.transfers,
                (unsigned long long)flat.wire_span,
                energy_uj(flat));

    std::printf("\n  segmentation: %.2fx fewer cycles, %.2fx less "
                "switched wire per transfer\n",
                double(flat.cycles) / seg.cycles,
                double(flat.wire_span) / flat.transfers /
                    (double(seg.wire_span) / seg.transfers));
    note("matches Section 2.3: 'two messages can pass between "
         "neighboring tiles using the same wires in different "
         "segments' and 'higher levels of local bandwidth for very "
         "little cost'");
    return 0;
}
