/** @file Regenerates Table 4: per-algorithm tiles / frequency /
 * voltage / power, the single-voltage baseline, and the percentage
 * saved by multiple voltage domains — the paper's core quantitative
 * result, plus the abstract's "3-32% power savings" claim check. */

#include <algorithm>
#include <map>

#include "apps/paper_workloads.hh"
#include "bench_util.hh"
#include "power/system_power.hh"

using namespace synchro;
using namespace synchro::apps;
using namespace synchro::power;

int
main()
{
    bench::banner("Table 4: Power results for DDC, SV, 802.11a, "
                  "802.11a+AES, MPEG4",
                  "Synchroscalar (ISCA 2004), Table 4");

    SystemPowerModel model;

    std::printf("  %-12s %-22s %5s %6s %5s | %9s %9s %6s | %9s %9s\n",
                "App", "Algorithm", "Tiles", "MHz", "V", "P model",
                "P paper", "delta", "1V model", "1V paper");

    std::map<std::string, PowerBreakdown> app_multi, app_single;
    std::map<std::string, double> app_vmax;
    for (const auto &row : paperTable4())
        app_vmax[row.app] = std::max(app_vmax[row.app], row.v);

    for (const auto &row : paperTable4()) {
        DomainLoad load{row.algo, row.tiles, row.f_mhz, row.v,
                        calibrateTransfers(row, model)};
        PowerBreakdown multi = model.loadPower(load);
        PowerBreakdown single = model.loadPower(
            model.atVoltage(load, app_vmax[row.app]));
        app_multi[row.app] += multi;
        app_single[row.app] += single;

        std::printf("  %-12s %-22s %5u %6.0f %5.2f | %9.2f %9.2f "
                    "%+5.1f%% | %9.2f %9.2f\n",
                    row.app.c_str(), row.algo.c_str(), row.tiles,
                    row.f_mhz, row.v, multi.total(),
                    row.paper_power_mw,
                    bench::deltaPct(multi.total(),
                                    row.paper_power_mw),
                    single.total(), row.paper_single_v_mw);
    }

    std::printf("\n  application totals:\n");
    std::printf("  %-12s %5s | %9s %9s %6s | %9s %9s | %9s %8s\n",
                "App", "Tiles", "P model", "P paper", "delta",
                "1V model", "1V paper", "sav model", "sav papr");
    double min_savings = 100, max_savings = 0;
    for (const auto &t : paperAppTotals()) {
        double multi = app_multi[t.app].total();
        double single = app_single[t.app].total();
        double savings = 100.0 * (single - multi) / single;
        // The abstract's 3-32% range covers the full applications.
        min_savings = std::min(min_savings, savings);
        max_savings = std::max(max_savings, savings);
        std::printf("  %-12s %5u | %9.2f %9.2f %+5.1f%% | %9.2f "
                    "%9.2f | %8.1f%% %7d%%\n",
                    t.app.c_str(), t.tiles, multi, t.total_mw,
                    bench::deltaPct(multi, t.total_mw), single,
                    t.single_v_mw, savings, t.savings_pct);
    }

    std::printf("\n  CLAIM CHECK (abstract): \"frequency-voltage "
                "scaling provides between 3-32%% power savings\"\n");
    std::printf("    model range across applications: %.1f%% .. "
                "%.1f%%\n",
                min_savings, max_savings);

    bench::note("MPEG4 DCT rows and the 802.11a+AES totals are "
                "internally inconsistent in the paper (see "
                "EXPERIMENTS.md); deltas there are expected");
    bench::note("bus-transfer rates are calibrated from the paper's "
                "power residuals (DESIGN.md): mixer ~64e6/s = one "
                "word per sample, Viterbi ACS ~3.7e9/s");
    return 0;
}
