/**
 * @file
 * Fleet serving bench: mixed DDC + 802.11a chip streams served by
 * the work-stealing FleetExecutor at basestation scale (64 / 256 /
 * 1024 concurrent user streams), every item golden-verified, plus
 * the snapshot/clone warm-start comparison against a from-scratch
 * codegen + program load. At the 256-stream scale every served item
 * is additionally re-run solo through SimSession::admit on a clone
 * of the same template and compared byte for byte. Appends
 * chips/sec, aggregate ticks/sec and the warm-start speedup to
 * BENCH_fleet.json so the trajectory is tracked across PRs.
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "apps/app_registry.hh"
#include "apps/pipeline_runner.hh"
#include "apps/wifi_runner.hh"
#include "bench_json.hh"
#include "sim/fleet.hh"
#include "sim/scheduler.hh"

using namespace synchro;
using namespace synchro::apps;

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * Serve @p streams mixed DDC/wifi streams of @p items work items
 * each; returns the drained report with per-item outputs kept when
 * @p keep_outputs.
 */
sim::FleetReport
serveFleet(const std::vector<sim::FleetWorkload> &workloads,
           SchedulerKind backend, unsigned streams, unsigned items,
           bool keep_outputs, std::unique_ptr<sim::FleetExecutor> *out)
{
    sim::FleetConfig fc;
    fc.scheduler = backend;
    fc.keep_outputs = keep_outputs;
    auto fleet = std::make_unique<sim::FleetExecutor>(fc);
    std::vector<unsigned> ids;
    for (const auto &wl : workloads)
        ids.push_back(fleet->addWorkload(wl));
    for (unsigned s = 0; s < streams; ++s)
        fleet->admitStream(ids[s % ids.size()], items,
                           uint64_t(s) * items);
    sim::FleetReport rep = fleet->drain();
    if (out)
        *out = std::move(fleet);
    return rep;
}

/**
 * Re-run every (stream, item) the fleet served as a solo
 * SimSession::admit batch on clones of the same templates and
 * compare byte for byte — the serving layer must be invisible in
 * the results. Batched to bound peak chip count.
 */
bool
soloCrossCheck(sim::FleetExecutor &fleet, const sim::FleetReport &rep)
{
    struct Pending
    {
        unsigned workload;
        uint64_t item;
        const std::vector<uint8_t> *want;
    };
    std::vector<Pending> all;
    for (const auto &s : rep.stream_results) {
        for (uint64_t i = 0; i < s.items; ++i)
            all.push_back(
                {s.workload, s.item_base + i, &s.outputs[i]});
    }

    constexpr size_t Batch = 128;
    for (size_t at = 0; at < all.size(); at += Batch) {
        size_t n = std::min(Batch, all.size() - at);
        sim::SimSession session;
        for (size_t i = 0; i < n; ++i) {
            const Pending &p = all[at + i];
            const sim::FleetWorkload &wl = fleet.workload(p.workload);
            auto chip = fleet.templateChip(p.workload).clone();
            wl.feed(*chip, p.item);
            session.admit(sim::ChipSpec(std::move(chip))
                              .tickLimit(wl.tick_limit));
        }
        auto results = session.runAll();
        for (size_t i = 0; i < n; ++i) {
            const Pending &p = all[at + i];
            const sim::FleetWorkload &wl = fleet.workload(p.workload);
            if (results[i].exit != arch::RunExit::AllHalted ||
                wl.read_output(session.chip(unsigned(i))) != *p.want)
                return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const SchedulerKind backend =
        backendFromArgs(argc, argv, SchedulerKind::FastEdge);

    DdcPipelineParams dp;
    dp.samples = 128;
    WifiPipelineParams wp;
    wp.symbols = 2;

    std::printf("building fleet workloads (plan + lower + verifier "
                "gate, once per app)...\n");
    const AppRegistry &reg = AppRegistry::instance();
    std::vector<sim::FleetWorkload> workloads = {
        reg.at("ddc").fleet(dp), reg.at("wifi").fleet(wp)};

    bench::JsonReport report("BENCH_fleet.json");

    // --- streaming fleet scales ---------------------------------
    struct Scale
    {
        unsigned streams;
        unsigned items;
    };
    const Scale scales[] = {{64, 4}, {256, 2}, {1024, 1}};
    std::printf("mixed DDC + 802.11a streams on %s, one chip per "
                "stream:\n",
                schedulerName(backend));
    for (const Scale &sc : scales) {
        const bool cross_check = sc.streams == 256;
        std::unique_ptr<sim::FleetExecutor> fleet;
        sim::FleetReport rep =
            serveFleet(workloads, backend, sc.streams, sc.items,
                       cross_check, &fleet);

        bool bit_exact = rep.all_verified;
        if (cross_check)
            bit_exact = bit_exact && soloCrossCheck(*fleet, rep);

        std::printf("  %5u streams x %u items: %8.1f chips/s, "
                    "%7.2f Mticks/s aggregate, %llu steals, "
                    "%llu clones (%s%s)\n",
                    sc.streams, sc.items, rep.chips_per_sec,
                    rep.ticks_per_sec / 1e6,
                    (unsigned long long)rep.steals,
                    (unsigned long long)rep.clones,
                    rep.all_verified ? "golden-verified"
                                     : "GOLDEN MISMATCH",
                    cross_check
                        ? (bit_exact ? ", solo-run bit-exact"
                                     : ", SOLO MISMATCH")
                        : "");

        std::string sec = "fleet_" + std::to_string(sc.streams);
        report.set(sec, "streams", sc.streams);
        report.set(sec, "chips_s", rep.chips_per_sec);
        report.set(sec, "ticks_s", rep.ticks_per_sec);
        report.set(sec, "bit_exact", bit_exact ? 1 : 0);
    }

    // --- snapshot/clone warm start vs cold build ----------------
    std::printf("warm start (Chip::clone) vs cold build (codegen + "
                "verifier + load):\n");
    for (const sim::FleetWorkload &wl : workloads) {
        constexpr int Reps = 5;
        auto t0 = std::chrono::steady_clock::now();
        std::unique_ptr<arch::Chip> tmpl;
        for (int r = 0; r < Reps; ++r)
            tmpl = wl.build(backend);
        double cold_ms = secondsSince(t0) * 1e3 / Reps;

        t0 = std::chrono::steady_clock::now();
        std::unique_ptr<arch::Chip> copy;
        for (int r = 0; r < Reps; ++r)
            copy = tmpl->clone();
        double clone_ms = secondsSince(t0) * 1e3 / Reps;

        double speedup = clone_ms > 0 ? cold_ms / clone_ms : 0;
        std::printf("  %-6s cold %8.3f ms, clone %8.3f ms -> "
                    "%.1fx warm-start speedup\n",
                    wl.name.c_str(), cold_ms, clone_ms, speedup);
        report.set("warm_start", wl.name + "_cold_build_ms", cold_ms);
        report.set("warm_start", wl.name + "_clone_ms", clone_ms);
        report.set("warm_start", wl.name + "_warm_start_speedup",
                   speedup);
    }

    if (!report.write()) {
        std::fprintf(stderr, "cannot write BENCH_fleet.json\n");
        return 1;
    }
    std::printf("wrote BENCH_fleet.json\n");
    return 0;
}
