/** @file Regenerates Figure 6: per-application power with voltage
 * scaling vs the additional power without it (single voltage). */

#include <algorithm>
#include <map>

#include "apps/paper_workloads.hh"
#include "bench_util.hh"
#include "power/system_power.hh"

using namespace synchro;
using namespace synchro::apps;
using namespace synchro::power;

int
main()
{
    bench::banner("Figure 6: Power by application, voltage scaling "
                  "vs single voltage",
                  "Synchroscalar (ISCA 2004), Figure 6 (Section "
                  "5.1)");

    SystemPowerModel model;
    std::printf("  %-14s %12s %18s %10s\n", "Application",
                "P scaled (mW)", "extra w/o scaling", "bar total");

    for (const auto &app : paperAppNames()) {
        double vmax = 0;
        for (const auto &row : paperTable4()) {
            if (row.app == app)
                vmax = std::max(vmax, row.v);
        }
        PowerBreakdown multi, single;
        for (const auto &row : paperTable4()) {
            if (row.app != app)
                continue;
            DomainLoad load{row.algo, row.tiles, row.f_mhz, row.v,
                            calibrateTransfers(row, model)};
            multi += model.loadPower(load);
            single += model.loadPower(model.atVoltage(load, vmax));
        }
        std::printf("  %-14s %12.1f %18.1f %10.1f\n", app.c_str(),
                    multi.total(), single.total() - multi.total(),
                    single.total());
    }

    bench::note("the dark bar segment of Figure 6 is the 'additional "
                "power with no voltage scaling' column");
    return 0;
}
