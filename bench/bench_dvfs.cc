/**
 * @file
 * Online DVFS governor bench: each of the four mapped apps serves
 * the canonical bursty traffic scenario three times — Static (the
 * paper's fixed mapping), Governed (the closed-loop feedback
 * governor) and Oracle (per-phase measured-optimal operating point)
 * — with every item golden-verified and the per-item outputs
 * compared across policies, so the measured savings come at equal
 * delivered output, bit for bit. Appends per-app static/governed/
 * oracle mW, the governed savings, the governed-vs-oracle gap and
 * the governed simulation throughput to BENCH_dvfs.json so the
 * trajectory is tracked across PRs.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/motion_runner.hh"
#include "apps/pipeline_runner.hh"
#include "apps/stereo_runner.hh"
#include "apps/wifi_runner.hh"
#include "bench_json.hh"
#include "power/dvfs.hh"
#include "sim/traffic.hh"

using namespace synchro;
using namespace synchro::apps;

namespace
{

power::GovernedRunResult
runPolicy(const power::DvfsAppHooks &app,
          const sim::TrafficScenario &scenario, power::DvfsPolicy pol,
          SchedulerKind backend)
{
    power::GovernedRunOptions opt;
    opt.policy = pol;
    opt.scheduler = backend;
    opt.keep_outputs = true;
    return power::runGoverned(app, scenario, opt);
}

} // namespace

int
main(int argc, char **argv)
{
    const SchedulerKind backend =
        backendFromArgs(argc, argv, SchedulerKind::FastEdge);

    // Small item shapes so the three-policy sweep stays a smoke-size
    // bench; the governor's decisions scale with the traffic shape,
    // not the item size.
    DdcPipelineParams dp;
    dp.samples = 128;
    WifiPipelineParams wp;
    wp.symbols = 2;
    StereoPipelineParams sp;
    MotionPipelineParams mp;

    std::printf("building DVFS app hooks (plan + lower + verifier "
                "gate, once per app)...\n");
    const std::vector<power::DvfsAppHooks> apps = {
        dvfsDdc(dp), dvfsWifi(wp), dvfsStereo(sp), dvfsMotion(mp)};

    bench::JsonReport report("BENCH_dvfs.json");
    bool all_ok = true;
    double min_savings = 1e9;

    for (const power::DvfsAppHooks &app : apps) {
        sim::TrafficScenario scenario(app.traffic);
        std::printf("%s: %s\n", app.name.c_str(),
                    scenario.describe().c_str());

        power::GovernedRunResult st = runPolicy(
            app, scenario, power::DvfsPolicy::Static, backend);
        power::GovernedRunResult gov = runPolicy(
            app, scenario, power::DvfsPolicy::Governed, backend);
        power::GovernedRunResult orc = runPolicy(
            app, scenario, power::DvfsPolicy::Oracle, backend);

        const double static_mw = st.power.multi_v.total();
        const double governed_mw = gov.power.multi_v.total();
        const double oracle_mw = orc.power.multi_v.total();
        const double savings_pct =
            static_mw > 0
                ? 100.0 * (static_mw - governed_mw) / static_mw
                : 0;
        const double gap_pct =
            oracle_mw > 0
                ? 100.0 * (governed_mw - oracle_mw) / oracle_mw
                : 0;
        const double gov_ticks_s =
            gov.sim_seconds > 0
                ? double(gov.busy_ticks) / gov.sim_seconds
                : 0;

        // Equal delivered output: all three policies golden-verified
        // AND byte-identical to each other, item by item.
        bool bit_exact = st.bit_exact && gov.bit_exact &&
                         orc.bit_exact &&
                         st.outputs == gov.outputs &&
                         st.outputs == orc.outputs;
        if (!bit_exact) {
            all_ok = false;
            std::printf("  OUTPUT MISMATCH across policies: %s%s\n",
                        st.first_failure.c_str(),
                        gov.first_failure.c_str());
        }

        std::printf("  static %8.2f mW, governed %8.2f mW "
                    "(%+.1f%% saved), oracle %8.2f mW "
                    "(%.1f%% gap), %llu misses, %s\n",
                    static_mw, governed_mw, savings_pct, oracle_mw,
                    gap_pct,
                    (unsigned long long)gov.deadline_misses,
                    bit_exact ? "bit-exact across policies"
                              : "NOT bit-exact");
        std::printf("  table: %zu verified points, %zu rejected; "
                    "governed %6.2f Mticks/s sim\n",
                    gov.table_points, gov.table_rejected,
                    gov_ticks_s / 1e6);

        const std::string sec = "dvfs_" + app.name;
        report.set(sec, "static_mw", static_mw);
        report.set(sec, "governed_mw", governed_mw);
        report.set(sec, "oracle_mw", oracle_mw);
        report.set(sec, "governed_savings_pct", savings_pct);
        report.set(sec, "oracle_gap_pct", gap_pct);
        report.set(sec, "deadline_misses",
                   double(gov.deadline_misses));
        report.set(sec, "bit_exact", bit_exact ? 1 : 0);
        report.set(sec, "governed_sim_ticks_per_sec", gov_ticks_s);
        min_savings = std::min(min_savings, savings_pct);
    }

    // Headline for docs cross-checking (tools/check_docs.py): the
    // worst-case governed-vs-static savings across the four apps.
    // Deterministic — derived from tick counters and the epoch
    // pricing model, never from wall time.
    report.set("dvfs_power_measured", "savings_pct", min_savings);
    report.set("dvfs_power_measured", "bit_exact", all_ok ? 1 : 0);

    if (!report.write()) {
        std::fprintf(stderr, "cannot write BENCH_dvfs.json\n");
        return 1;
    }
    std::printf("wrote BENCH_dvfs.json\n");
    return all_ok ? 0 : 1;
}
