/**
 * @file
 * Measured design-space exploration bench: for each of the four
 * mapped Table 4 workloads (DDC, 802.11a, stereo vision, MPEG-4
 * motion estimation), enumerate plan variants around the
 * AutoMapper's pick, run the whole candidate batch concurrently on
 * one heterogeneous SimSession, and reduce the measurements to a
 * power-vs-throughput Pareto frontier. Every frontier point is
 * bit-exact against its dsp:: golden and cross-checked on the
 * EventQueue backend; the analytic Optimizer's pick must sit on (or
 * within 10% total power of) the measured frontier. Appends the
 * numbers to BENCH_explore.json so the trajectory is tracked across
 * PRs (tools/bench_check.py gates regressions in CI).
 */

#include <chrono>
#include <cstdio>

#include "apps/app_registry.hh"
#include "bench_json.hh"
#include "mapping/explorer.hh"

using namespace synchro;
using mapping::ExplorationResult;

namespace
{

/** Best (highest) achieved rate among the frontier's points. */
double
frontierBestRate(const ExplorationResult &res)
{
    double best = 0;
    for (size_t i : res.frontier) {
        best = std::max(best,
                        res.points[i].achieved_items_per_sec);
    }
    return best;
}

/** Record one app's exploration in the report; returns pass/fail. */
bool
record(bench::JsonReport &report, const ExplorationResult &res,
       const char *rate_key, double rate_scale, double seconds)
{
    const auto &base = res.points[res.baseline_index];
    size_t measured = 0;
    for (const auto &pt : res.points)
        measured += pt.ran;

    std::string section = "explore_" + res.app;
    report.set(section, "points", double(res.points.size()));
    report.set(section, "measured", double(measured));
    report.set(section, "frontier_points",
               double(res.frontier.size()));
    report.set(section, "statically_rejected",
               double(res.statically_rejected));
    report.set(section, "bit_exact", res.all_bit_exact ? 1.0 : 0.0);
    report.set(section, "agreement", res.agreement ? 1.0 : 0.0);
    report.set(section, "baseline_gap_pct", res.baseline_gap_pct);
    report.set(section, "baseline_mw", base.total_mw);
    report.set(section, rate_key,
               frontierBestRate(res) * rate_scale);
    report.set(section, "explore_seconds", seconds);
    return res.all_bit_exact && res.agreement;
}

} // namespace

int
main()
{
    mapping::ExploreOptions opt; // stock sweep, frontier crosscheck
    bench::JsonReport report("BENCH_explore.json");
    bool ok = true;
    double max_gap = 0;

    struct Sweep
    {
        const char *rate_key;
        double rate_scale;
        ExplorationResult res;
        double seconds = 0;
    };
    std::vector<Sweep> sweeps;

    auto timed = [&](mapping::ExplorableApp app, const char *key,
                     double scale) {
        auto t0 = std::chrono::steady_clock::now();
        ExplorationResult res = mapping::explorePlans(app, opt);
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        sweeps.push_back({key, scale, std::move(res), secs});
    };

    const apps::AppRegistry &reg = apps::AppRegistry::instance();
    timed(reg.at("ddc").explorable(), "frontier_best_msps", 1e-6);
    timed(reg.at("wifi").explorable(), "frontier_best_kbps", 1e-3);
    timed(reg.at("stereo").explorable(), "frontier_best_kblocks_s",
          1e-3);
    timed(reg.at("motion").explorable(), "frontier_best_kmb_s", 1e-3);

    for (const auto &s : sweeps) {
        std::printf("%s  (%.2f s)\n", s.res.report().c_str(),
                    s.seconds);
        ok = record(report, s.res, s.rate_key, s.rate_scale,
                    s.seconds) &&
             ok;
        max_gap = std::max(max_gap, s.res.baseline_gap_pct);
    }

    report.set("explore_summary", "apps", double(sweeps.size()));
    report.set("explore_summary", "bit_exact", ok ? 1.0 : 0.0);
    report.set("explore_summary", "agreement", ok ? 1.0 : 0.0);
    report.set("explore_summary", "max_baseline_gap_pct", max_gap);
    if (!report.write())
        std::printf("(could not write BENCH_explore.json)\n");
    else
        std::printf("wrote BENCH_explore.json\n");

    std::printf("design space: %s (max optimizer gap %.2f%%)\n",
                ok ? "all frontiers bit-exact, optimizer picks agree"
                   : "FAILED",
                max_gap);
    return ok ? 0 : 1;
}
