/** @file Regenerates Table 2: tile / SIMD controller / DOU area
 * estimation (0.25 um synthesis scaled to 0.13 um). */

#include "bench_util.hh"
#include "power/area.hh"

using namespace synchro;
using namespace synchro::power;

int
main()
{
    bench::banner("Table 2: Tile and SIMD Controller / DOU area",
                  "Synchroscalar (ISCA 2004), Table 2");

    AreaModel a;
    double total = 0;
    std::printf("  TILE COMPONENT%26s Area (um^2 at 0.25um)\n", "");
    for (const auto &c : AreaModel::tileComponents()) {
        std::printf("  %-38s %12.0f\n", c.name.c_str(),
                    c.area_um2_250nm);
        total += c.area_um2_250nm;
    }
    std::printf("  %-38s %12.0f   (paper: 7,270,000)\n", "Total",
                total);
    std::printf("  scaled to 130 nm: %.2f mm^2 (paper headline: "
                "%.2f mm^2)\n\n",
                a.scaledTotalMm2(AreaModel::tileComponents()),
                a.tileAreaMm2());

    total = 0;
    std::printf("  SIMD CONTROLLER and DOU\n");
    for (const auto &c : AreaModel::controllerComponents()) {
        std::printf("  %-38s %12.0f\n", c.name.c_str(),
                    c.area_um2_250nm);
        total += c.area_um2_250nm;
    }
    std::printf("  %-38s %12.0f\n", "Total", total);
    std::printf("  scaled to 130 nm: %.3f mm^2 (paper: SIMD %.2f + "
                "DOU %.4f = %.4f mm^2)\n",
                a.scaledTotalMm2(AreaModel::controllerComponents()),
                defaultTech().simd_ctrl_area_mm2,
                defaultTech().dou_area_mm2, a.columnOverheadMm2());

    bench::note("Table 2's printed controller total (650,000) does "
                "not equal its own rows (1,304,000); we follow the "
                "rows, which match the text's 0.25+0.0875 mm^2");

    std::printf("\n  full-chip area examples (tiles + controllers + "
                "256-bit buses):\n");
    for (unsigned tiles : {16u, 20u, 36u, 50u}) {
        unsigned cols = (tiles + 3) / 4;
        std::printf("    %2u tiles (%u columns): %.1f mm^2\n", tiles,
                    cols, a.chipAreaMm2(tiles, cols, 256));
    }
    return 0;
}
