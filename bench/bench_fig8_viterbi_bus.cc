/** @file Regenerates Figure 8: Viterbi ACS power vs chip area as the
 * bus width sweeps 32..1024 bits on 8/16/32 tiles — the study that
 * selects Synchroscalar's 256-bit bus.
 *
 * Stage-time model (calibrated so 16 tiles / 256 bits lands on the
 * paper's 540 MHz Table 4 operating point, and validated in shape by
 * the 4-tile distributed ACS kernel measured on our simulator):
 *
 *   compute cycles/stage = 1.4 * (64/tiles) + 4.4
 *   comm cycles/stage    = crossTileWords / (lanes * segment_reuse)
 *   cycles/stage         = max(compute, comm)   (DOU decoupling
 *                          overlaps communication with computation)
 *
 * with segment_reuse = clamp(tiles/8, 1, 4): disjoint bus segments
 * carry parallel transfers (Section 2.3).
 */

#include <algorithm>

#include "bench_util.hh"
#include "dsp/viterbi.hh"
#include "power/area.hh"
#include "power/system_power.hh"
#include "power/vf_model.hh"

using namespace synchro;
using namespace synchro::power;

namespace
{

constexpr double StageRate = 54e6; //!< decoded bits (stages) per sec

double
stageCycles(unsigned tiles, unsigned bus_bits)
{
    double compute = 1.4 * (64.0 / tiles) + 4.4;
    unsigned lanes = bus_bits / 32;
    double reuse = std::clamp(tiles / 8.0, 1.0, 4.0);
    unsigned cross = dsp::acsCrossTileWords(tiles);
    double comm = double(cross) / (double(lanes) * reuse);
    return std::max(compute, comm);
}

} // namespace

int
main()
{
    bench::banner("Figure 8: Viterbi ACS power vs area over bus "
                  "widths and tile counts",
                  "Synchroscalar (ISCA 2004), Figure 8 (Section "
                  "5.3)");

    SystemPowerModel model;
    VfModel vf;
    AreaModel area;

    std::printf("  %-6s %-9s %8s %8s %7s %10s %10s\n", "tiles",
                "bus bits", "cyc/stg", "f (MHz)", "V", "area mm2",
                "power mW");

    for (unsigned tiles : {8u, 16u, 32u}) {
        double p256 = 0, p128 = 0, p512 = 0;
        for (unsigned bits : {32u, 64u, 128u, 256u, 512u, 1024u}) {
            double cycles = stageCycles(tiles, bits);
            double f = cycles * StageRate / 1e6;
            double a =
                area.chipAreaMm2(tiles, (tiles + 3) / 4, bits);
            if (f > vf.frequencyMhz(vf.tech().extended_vmax)) {
                std::printf("  %-6u %-9u %8.1f %8.0f %7s %10.1f "
                            "%10s\n",
                            tiles, bits, cycles, f, "-", a,
                            "infeasible");
                continue;
            }
            double v = vf.voltageFor(f);
            DomainLoad load{"acs", tiles, f, v,
                            double(dsp::acsCrossTileWords(tiles)) *
                                StageRate};
            double p = model.loadPower(load).total();
            if (bits == 128)
                p128 = p;
            if (bits == 256)
                p256 = p;
            if (bits == 512)
                p512 = p;
            std::printf("  %-6u %-9u %8.1f %8.0f %7.2f %10.1f "
                        "%10.1f\n",
                        tiles, bits, cycles, f, v, a, p);
        }
        if (p128 > 0 && p256 > 0 && p512 > 0) {
            std::printf("    -> 128->256 bits saves %.0f mW; "
                        "256->512 saves %.0f mW (knee at 256, the "
                        "paper's choice)\n",
                        p128 - p256, p256 - p512);
        }
        std::printf("\n");
    }

    std::printf("  SHAPE CHECK: doubling 128->256 bits improves "
                "power significantly on every tile count; the next "
                "doubling helps much less, and 32 tiles reach lower "
                "power than 16 at a significant area cost — the "
                "Section 5.3 trade-off.\n");
    return 0;
}
