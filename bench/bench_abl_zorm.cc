/** @file Ablation: Zero Overhead Rate Matching vs padding nops into
 * loop bodies (the alternative the paper rejects in Section 2.4).
 * Rate-matching error converts directly into wasted energy: a column
 * that cannot hit the exact rate must run at the next higher
 * frequency/voltage or overrun its consumer. */

#include <cmath>

#include "bench_util.hh"
#include "mapping/rate_match.hh"

using namespace synchro;
using namespace synchro::mapping;

int
main()
{
    bench::banner("Ablation: ZORM vs whole-loop nop padding",
                  "Synchroscalar (ISCA 2004), Section 2.4");

    std::printf("  target useful fraction vs achieved (loop of 7 "
                "slots):\n");
    std::printf("  %-10s %-14s %-14s %-12s\n", "target",
                "loop padding", "ZORM (<=4096)", "ZORM error");
    double worst_pad = 0, worst_zorm = 0;
    for (double target : {0.95, 0.9, 0.8, 0.75, 0.6, 0.51}) {
        double padded = loopPaddingFraction(7, target);
        ZormSetting z = boundedRateMatch(target, 4096);
        double pad_err = std::abs(padded - target);
        double zorm_err = std::abs(z.usefulFraction() - target);
        worst_pad = std::max(worst_pad, pad_err / target);
        worst_zorm = std::max(worst_zorm, zorm_err / target);
        std::printf("  %-10.3f %-14.4f %-14.4f %-12.2e\n", target,
                    padded, z.usefulFraction(), zorm_err);
    }
    std::printf("\n  worst relative rate error: padding %.2f%%, "
                "ZORM %.4f%%\n",
                100 * worst_pad, 100 * worst_zorm);

    // Energy view: running faster than needed by a fraction e wastes
    // ~e of dynamic power (same voltage); the padding error is pure
    // waste ZORM avoids.
    std::printf("  at a 1 W column, padding error wastes up to "
                "%.0f mW; ZORM wastes %.2f mW\n",
                1000 * worst_pad, 1000 * worst_zorm);
    return 0;
}
