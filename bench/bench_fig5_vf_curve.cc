/** @file Regenerates Figure 5: operating frequency vs supply voltage
 * for 15 and 20 FO4 pipelines in 130 nm (the paper SPICEd the BPTM;
 * we use the alpha-power-law fit documented in DESIGN.md). */

#include "bench_util.hh"
#include "power/vf_model.hh"

using namespace synchro;
using namespace synchro::power;

int
main()
{
    bench::banner("Figure 5: Voltage-Frequency curve (15 / 20 FO4)",
                  "Synchroscalar (ISCA 2004), Figure 5");

    VfModel m20(defaultTech(), 20.0);
    VfModel m15(defaultTech(), 15.0);
    std::printf("  fitted alpha-power law: f = %.1f * (V - %.3f)^"
                "%.3f / V MHz\n\n",
                m20.k(), defaultTech().vth, m20.alpha());

    std::printf("  %-8s %-14s %-14s\n", "Vdd (V)", "20 FO4 (MHz)",
                "15 FO4 (MHz)");
    // The paper sweeps 0.62 .. 2.12 V (x-axis of Figure 5).
    for (double v = 0.62; v <= 2.125; v += 0.10) {
        std::printf("  %-8.2f %-14.1f %-14.1f\n", v,
                    m20.frequencyMhz(v), m15.frequencyMhz(v));
    }

    std::printf("\n  fit quality at the paper's Table 4 operating "
                "points:\n");
    std::printf("  %-10s %-10s %-12s %s\n", "f (MHz)", "V paper",
                "V model", "delta");
    for (auto [f, v] : SupplyLevels::paperPoints()) {
        double vm = m20.voltageFor(f);
        std::printf("  %-10.0f %-10.2f %-12.3f %+.1f%%\n", f, v, vm,
                    bench::deltaPct(vm, v));
    }
    bench::note("540 MHz @ 1.7 V sits above Table 1's 600 MHz @ "
                "1.65 V ceiling in the paper itself");
    return 0;
}
