/** @file Regenerates Figure 9: leakage sensitivity for DDC and
 * 802.11a — application power as the per-tile leakage current sweeps
 * from the calibrated 1.5 mA to the all-low-Vt 59.3 mA. */

#include "apps/paper_workloads.hh"
#include "bench_util.hh"
#include "mapping/optimizer.hh"
#include "power/vf_model.hh"

using namespace synchro;
using namespace synchro::apps;
using namespace synchro::mapping;
using namespace synchro::power;

int
main()
{
    bench::banner("Figure 9: Leakage sensitivity, DDC and 802.11a",
                  "Synchroscalar (ISCA 2004), Figure 9 (Section "
                  "5.4)");

    VfModel vf;
    SupplyLevels levels(vf);

    std::printf("  %-18s", "mA/tile:");
    for (double ma : leakageSweepMa())
        std::printf(" %8.1f", ma);
    std::printf("\n");

    for (const auto &[app_name, sweeps] :
         fig7TileSweeps()) {
        if (app_name != "DDC" && app_name != "802.11a")
            continue;
        for (unsigned budget : sweeps) {
            std::printf("  %-10s %2u tiles:", app_name.c_str(),
                        budget);
            for (double ma : leakageSweepMa()) {
                SystemPowerModel model;
                model.setLeakMaPerTile(ma);
                Optimizer opt(model, levels);
                AppWorkload app = appWorkload(app_name, model);
                // Hold the allocation fixed across the sweep (the
                // paper varies leakage for a fixed structure).
                SystemPowerModel base;
                Optimizer base_opt(base, levels);
                AppWorkload base_app = appWorkload(app_name, base);
                auto base_map = base_opt.mapWithBudget(base_app,
                                                       budget);
                if (!base_map) {
                    std::printf("   infeas.");
                    continue;
                }
                std::vector<unsigned> alloc;
                for (const auto &l : base_map->loads)
                    alloc.push_back(l.tiles);
                auto m = opt.mapWithTiles(app, alloc);
                std::printf(" %8.0f",
                            m ? m->power.total() : -1.0);
            }
            std::printf("\n");
        }
    }

    std::printf("\n  SHAPE CHECK: more-parallel structures start "
                "lower but their power grows faster with leakage "
                "(more powered tiles), producing the cross-overs of "
                "Figure 9.\n");
    return 0;
}
