/**
 * @file
 * Minimal JSON report writer for the perf-trajectory file
 * BENCH_core.json. Several benches contribute sections to one file
 * (ns/op, ticks/sec, fast-path speedups), so the writer re-reads the
 * existing file and merges: the on-disk format is a fixed two-level
 * object { "section": { "key": number } } and the parser accepts
 * exactly that shape (anything else starts the file fresh).
 */

#ifndef SYNC_BENCH_BENCH_JSON_HH
#define SYNC_BENCH_BENCH_JSON_HH

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

namespace synchro::bench
{

class JsonReport
{
  public:
    explicit JsonReport(std::string path = "BENCH_core.json")
        : path_(std::move(path))
    {
        load();
    }

    void
    set(const std::string &section, const std::string &key,
        double value)
    {
        sections_[section][key] = value;
    }

    /** Merge-write the report; returns false on I/O failure. */
    bool
    write() const
    {
        std::ofstream out(path_, std::ios::trunc);
        if (!out)
            return false;
        out << "{\n";
        bool first_sec = true;
        for (const auto &[sec, kv] : sections_) {
            if (!first_sec)
                out << ",\n";
            first_sec = false;
            out << "  \"" << sec << "\": {\n";
            bool first_key = true;
            for (const auto &[key, value] : kv) {
                if (!first_key)
                    out << ",\n";
                first_key = false;
                char buf[64];
                std::snprintf(buf, sizeof(buf), "%.6g", value);
                out << "    \"" << key << "\": " << buf;
            }
            out << "\n  }";
        }
        out << "\n}\n";
        return bool(out);
    }

    const std::map<std::string, std::map<std::string, double>> &
    sections() const
    {
        return sections_;
    }

  private:
    void
    load()
    {
        std::ifstream in(path_);
        if (!in)
            return;
        std::stringstream ss;
        ss << in.rdbuf();
        parse(ss.str());
    }

    // Parses only the shape write() emits; on any surprise the
    // partial parse is dropped and the report starts fresh.
    void
    parse(const std::string &text)
    {
        size_t pos = 0;
        auto skip = [&] {
            while (pos < text.size() &&
                   std::isspace(uint8_t(text[pos])))
                ++pos;
        };
        auto expect = [&](char c) {
            skip();
            if (pos >= text.size() || text[pos] != c)
                return false;
            ++pos;
            return true;
        };
        auto string_lit = [&](std::string &out) {
            skip();
            if (pos >= text.size() || text[pos] != '"')
                return false;
            size_t end = text.find('"', pos + 1);
            if (end == std::string::npos)
                return false;
            out = text.substr(pos + 1, end - pos - 1);
            pos = end + 1;
            return true;
        };

        std::map<std::string, std::map<std::string, double>> parsed;
        if (!expect('{'))
            return;
        skip();
        while (pos < text.size() && text[pos] != '}') {
            std::string sec;
            if (!string_lit(sec) || !expect(':') || !expect('{'))
                return;
            skip();
            while (pos < text.size() && text[pos] != '}') {
                std::string key;
                if (!string_lit(key) || !expect(':'))
                    return;
                skip();
                char *endp = nullptr;
                double v = std::strtod(text.c_str() + pos, &endp);
                if (endp == text.c_str() + pos)
                    return;
                pos = size_t(endp - text.c_str());
                parsed[sec][key] = v;
                skip();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    skip();
                }
            }
            if (!expect('}'))
                return;
            skip();
            if (pos < text.size() && text[pos] == ',') {
                ++pos;
                skip();
            }
        }
        sections_ = std::move(parsed);
    }

    std::string path_;
    std::map<std::string, std::map<std::string, double>> sections_;
};

} // namespace synchro::bench

#endif // SYNC_BENCH_BENCH_JSON_HH
