/**
 * @file
 * End-to-end mapped MPEG-4 motion estimation bench: the two
 * macroblock-sharded SAA search columns and their best-vector join,
 * planned by the AutoMapper and executed cycle-accurately, producing
 * (1) the FastEdge vs EventQueue throughput comparison and (2) the
 * measured-activity multi-V vs single-V power comparison next to the
 * paper's Table 4 MPEG4-QCIF row. Appends its numbers to
 * BENCH_motion.json so the trajectory is tracked across PRs
 * (tools/bench_check.py gates regressions in CI).
 */

#include <cstdio>

#include "apps/motion_runner.hh"
#include "apps/paper_workloads.hh"
#include "bench_json.hh"

using namespace synchro;
using namespace synchro::apps;

int
main()
{
    MotionPipelineParams params;

    std::printf("mapped MPEG-4 motion estimation, %ux%u, +-%d "
                "search over %u shard columns, both backends:\n",
                MotionWidth, MotionHeight, MotionRange,
                MotionColumns);
    MappedMotionRun runs[2];
    double wall[2] = {0, 0};
    SchedulerKind kinds[2] = {SchedulerKind::FastEdge,
                              SchedulerKind::EventQueue};
    for (int i = 0; i < 2; ++i) {
        params.scheduler = kinds[i];
        runs[i] = runMappedMotion(params);
        wall[i] = runs[i].sim_seconds;
        std::printf("  %-10s %8llu ticks in %6.1f ms = %6.2f "
                    "Mticks/s  (%s, %llu overruns)\n",
                    schedulerName(kinds[i]),
                    (unsigned long long)runs[i].ticks, wall[i] * 1e3,
                    double(runs[i].ticks) / wall[i] / 1e6,
                    runs[i].bit_exact ? "bit-exact" : "MISMATCH",
                    (unsigned long long)runs[i].overruns);
    }
    bool identical = runs[0].ticks == runs[1].ticks &&
                     runs[0].output_keys == runs[1].output_keys &&
                     runs[0].stats == runs[1].stats;
    double speedup = wall[1] > 0 ? wall[1] / wall[0] : 0.0;
    std::printf("  fast-path speedup %.2fx, backends %s, pan hit "
                "rate %.0f%%\n",
                speedup, identical ? "identical" : "MISMATCH",
                100.0 * runs[0].pan_hit_rate);

    // --- measured power next to the paper's Table 4 row ----------
    const auto &pw = runs[0].power;
    int paper_pct = 0;
    for (const auto &row : paperAppTotals()) {
        if (row.app == "MPEG4-QCIF")
            paper_pct = row.savings_pct;
    }
    std::printf("\nmulti-V vs single-V (measured activity, %.1f "
                "kMB/s sustained): %.2f mW vs %.2f mW = %.1f%% "
                "saved (paper: %d%%)\n",
                runs[0].achieved_mb_rate_hz / 1e3,
                pw.multi_v.total(), pw.single_v.total(),
                pw.savingsPct(), paper_pct);

    bench::JsonReport report("BENCH_motion.json");
    report.set("motion_dag", "ticks", double(runs[0].ticks));
    report.set("motion_dag", "fast_mticks_per_s",
               double(runs[0].ticks) / wall[0] / 1e6);
    report.set("motion_dag", "eventq_mticks_per_s",
               double(runs[1].ticks) / wall[1] / 1e6);
    report.set("motion_dag", "fast_speedup", speedup);
    report.set("motion_dag", "bit_exact",
               runs[0].bit_exact && runs[1].bit_exact && identical
                   ? 1.0
                   : 0.0);
    report.set("motion_dag", "sustained_kmb_s",
               runs[0].achieved_mb_rate_hz / 1e3);
    report.set("motion_power_measured", "multi_v_mw",
               pw.multi_v.total());
    report.set("motion_power_measured", "single_v_mw",
               pw.single_v.total());
    report.set("motion_power_measured", "savings_pct",
               pw.savingsPct());
    report.set("motion_power_measured", "paper_savings_pct",
               double(paper_pct));
    if (!report.write())
        std::printf("(could not write BENCH_motion.json)\n");
    else
        std::printf("\nwrote BENCH_motion.json\n");

    return runs[0].bit_exact && runs[1].bit_exact && identical &&
                   runs[0].overruns == 0 && runs[0].conflicts == 0
               ? 0
               : 1;
}
