/**
 * @file
 * End-to-end mapped-pipeline bench: the DDC receiver planned by the
 * AutoMapper and executed cycle-accurately, producing (1) the
 * per-backend throughput comparison at multi-column scale and (2)
 * the first *measured-activity* multi-V vs single-V power
 * comparison, printed next to the paper's Table 4 DDC row. Appends
 * its numbers to BENCH_pipeline.json so the trajectory is tracked
 * across PRs.
 */

#include <cstdio>

#include "apps/paper_workloads.hh"
#include "apps/pipeline_runner.hh"
#include "bench_json.hh"
#include "sim/scheduler.hh"

using namespace synchro;
using namespace synchro::apps;

int
main(int argc, char **argv)
{
    // --backend picks which run's power/throughput is reported as
    // "this run"; all four backends are always measured.
    const SchedulerKind primary =
        backendFromArgs(argc, argv, SchedulerKind::FastEdge);
    DdcPipelineParams params;
    params.samples = 2048;

    std::printf("mapped DDC receiver, %u samples, every backend:\n",
                params.samples);
    MappedDdcRun runs[4];
    double wall[4] = {0, 0, 0, 0};
    SchedulerKind kinds[4] = {SchedulerKind::FastEdge,
                              SchedulerKind::EventQueue,
                              SchedulerKind::Compiled,
                              SchedulerKind::ParallelColumns};
    int pidx = 0;
    for (int i = 0; i < 4; ++i) {
        if (kinds[i] == primary)
            pidx = i;
        params.scheduler = kinds[i];
        runs[i] = runMappedDdc(params);
        wall[i] = runs[i].sim_seconds;
        std::printf("  %-10s %8llu ticks in %6.1f ms = %6.2f "
                    "Mticks/s  (%s, %llu overruns)\n",
                    schedulerName(kinds[i]),
                    (unsigned long long)runs[i].ticks, wall[i] * 1e3,
                    double(runs[i].ticks) / wall[i] / 1e6,
                    runs[i].bit_exact ? "bit-exact" : "MISMATCH",
                    (unsigned long long)runs[i].overruns);
    }
    bool identical = true;
    for (int i = 0; i < 4; ++i)
        identical = identical && runs[i].ticks == runs[1].ticks &&
                    runs[i].output == runs[1].output &&
                    runs[i].stats == runs[1].stats;
    double speedup = wall[1] > 0 ? wall[1] / wall[0] : 0.0;
    double compiled_speedup = wall[2] > 0 ? wall[1] / wall[2] : 0.0;
    // Against the serial backend it parallelizes, not the event
    // queue — an honest column-threading number even where the
    // host has no spare cores.
    double parallel_speedup = wall[3] > 0 ? wall[0] / wall[3] : 0.0;
    std::printf("  fast-path speedup %.2fx, compiled %.2fx, "
                "parallel %.2fx of fast-path, backends %s\n",
                speedup, compiled_speedup, parallel_speedup,
                identical ? "identical" : "MISMATCH");

    // --- measured power next to the paper's Table 4 DDC row ------
    const auto &pw = runs[pidx].power;
    double paper_multi = 0, paper_single = 0;
    int paper_pct = 0;
    for (const auto &row : paperAppTotals()) {
        if (row.app == "DDC") {
            paper_multi = row.total_mw;
            paper_single = row.single_v_mw;
            paper_pct = row.savings_pct;
        }
    }
    std::printf("\nmulti-V vs single-V (measured activity of the "
                "%s run, %0.2f MS/s sustained):\n",
                schedulerName(primary),
                runs[pidx].achieved_sample_rate_hz / 1e6);
    std::printf("  %-28s %10s %12s %8s\n", "", "multi-V", "single-V",
                "saved");
    std::printf("  %-28s %7.2f mW %9.2f mW %6.1f%%\n",
                "this run (1 tile/stage)", pw.multi_v.total(),
                pw.single_v.total(), pw.savingsPct());
    std::printf("  %-28s %7.2f mW %9.2f mW %6d%%\n",
                "paper Table 4 DDC (50 tiles)", paper_multi,
                paper_single, paper_pct);

    bench::JsonReport report("BENCH_pipeline.json");
    report.set("pipeline_ddc", "ticks", double(runs[0].ticks));
    report.set("pipeline_ddc", "fast_mticks_per_s",
               double(runs[0].ticks) / wall[0] / 1e6);
    report.set("pipeline_ddc", "eventq_mticks_per_s",
               double(runs[1].ticks) / wall[1] / 1e6);
    report.set("pipeline_ddc", "fast_speedup", speedup);
    report.set("pipeline_ddc", "compiled_mticks_per_s",
               double(runs[2].ticks) / wall[2] / 1e6);
    report.set("pipeline_ddc", "compiled_speedup", compiled_speedup);
    report.set("pipeline_ddc", "parallel_mticks_per_s",
               double(runs[3].ticks) / wall[3] / 1e6);
    report.set("pipeline_ddc", "parallel_speedup", parallel_speedup);
    report.set("pipeline_ddc", "bit_exact",
               runs[0].bit_exact && runs[1].bit_exact &&
                       runs[2].bit_exact && runs[3].bit_exact &&
                       identical
                   ? 1.0
                   : 0.0);
    report.set("pipeline_ddc", "sustained_msps",
               runs[pidx].achieved_sample_rate_hz / 1e6);
    report.set("power_measured", "multi_v_mw", pw.multi_v.total());
    report.set("power_measured", "single_v_mw", pw.single_v.total());
    report.set("power_measured", "savings_pct", pw.savingsPct());
    report.set("power_measured", "paper_savings_pct",
               double(paper_pct));
    if (!report.write())
        std::printf("(could not write BENCH_pipeline.json)\n");
    else
        std::printf("\nwrote BENCH_pipeline.json\n");

    return runs[0].bit_exact && runs[1].bit_exact &&
                   runs[2].bit_exact && runs[3].bit_exact &&
                   identical && runs[pidx].overruns == 0
               ? 0
               : 1;
}
