/** @file Regenerates Figure 7: application power at different levels
 * of parallelization, split into compute power vs interconnect +
 * leakage (the dark bar segments), showing the diminishing returns
 * of Section 5.2. */

#include "apps/paper_workloads.hh"
#include "bench_util.hh"
#include "mapping/optimizer.hh"
#include "power/vf_model.hh"

using namespace synchro;
using namespace synchro::apps;
using namespace synchro::mapping;
using namespace synchro::power;

int
main()
{
    bench::banner("Figure 7: Power vs parallelization (compute vs "
                  "interconnect+leakage)",
                  "Synchroscalar (ISCA 2004), Figure 7 (Section "
                  "5.2)");

    SystemPowerModel model;
    VfModel vf;
    SupplyLevels levels(vf);
    Optimizer opt(model, levels);

    std::printf("  %-14s %6s %7s | %10s %14s %10s\n", "App",
                "budget", "used", "compute mW", "bus+leak mW",
                "total mW");

    for (const auto &[app_name, sweeps] : fig7TileSweeps()) {
        AppWorkload app = appWorkload(app_name, model);
        for (unsigned budget : sweeps) {
            auto m = opt.mapWithBudget(app, budget);
            if (!m) {
                std::printf("  %-14s %6u       | infeasible under "
                            "the fitted V-f curve (see "
                            "EXPERIMENTS.md)\n",
                            app_name.c_str(), budget);
                continue;
            }
            std::printf("  %-14s %6u %7u | %10.1f %14.1f %10.1f\n",
                        app_name.c_str(), budget, m->totalTiles(),
                        m->power.tile_mw,
                        m->power.bus_mw + m->power.leak_mw,
                        m->power.total());
        }
        std::printf("\n");
    }

    std::printf("  SHAPE CHECK: power decreases with added tiles "
                "while voltage scaling wins, and the interconnect+"
                "leakage share grows with parallelization — the "
                "diminishing-returns structure of Figure 7.\n");
    bench::note("the paper's smallest sweep points (e.g. DDC at 14 "
                "tiles) exceed the fitted V-f curve's reach; its "
                "own Table 4 uses the larger counts");
    return 0;
}
