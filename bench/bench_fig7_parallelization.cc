/** @file Regenerates Figure 7: application power at different levels
 * of parallelization, split into compute power vs interconnect +
 * leakage (the dark bar segments), showing the diminishing returns
 * of Section 5.2. */

#include <chrono>

#include "apps/paper_workloads.hh"
#include "bench_json.hh"
#include "bench_util.hh"
#include "mapping/optimizer.hh"
#include "power/vf_model.hh"

using namespace synchro;
using namespace synchro::apps;
using namespace synchro::mapping;
using namespace synchro::power;

int
main()
{
    bench::banner("Figure 7: Power vs parallelization (compute vs "
                  "interconnect+leakage)",
                  "Synchroscalar (ISCA 2004), Figure 7 (Section "
                  "5.2)");

    SystemPowerModel model;
    VfModel vf;
    SupplyLevels levels(vf);
    Optimizer opt(model, levels);

    std::printf("  %-14s %6s %7s | %10s %14s %10s\n", "App",
                "budget", "used", "compute mW", "bus+leak mW",
                "total mW");

    uint64_t map_calls = 0, infeasible = 0;
    double map_ns = 0;

    for (const auto &[app_name, sweeps] : fig7TileSweeps()) {
        AppWorkload app = appWorkload(app_name, model);
        for (unsigned budget : sweeps) {
            auto t0 = std::chrono::steady_clock::now();
            auto m = opt.mapWithBudget(app, budget);
            auto t1 = std::chrono::steady_clock::now();
            map_ns += std::chrono::duration<double, std::nano>(
                          t1 - t0)
                          .count();
            ++map_calls;
            if (!m) {
                ++infeasible;
                std::printf("  %-14s %6u       | infeasible under "
                            "the fitted V-f curve (see "
                            "EXPERIMENTS.md)\n",
                            app_name.c_str(), budget);
                continue;
            }
            std::printf("  %-14s %6u %7u | %10.1f %14.1f %10.1f\n",
                        app_name.c_str(), budget, m->totalTiles(),
                        m->power.tile_mw,
                        m->power.bus_mw + m->power.leak_mw,
                        m->power.total());
        }
        std::printf("\n");
    }

    std::printf("  SHAPE CHECK: power decreases with added tiles "
                "while voltage scaling wins, and the interconnect+"
                "leakage share grows with parallelization — the "
                "diminishing-returns structure of Figure 7.\n");
    bench::note("the paper's smallest sweep points (e.g. DDC at 14 "
                "tiles) exceed the fitted V-f curve's reach; its "
                "own Table 4 uses the larger counts");

    bench::JsonReport report;
    report.set("fig7_parallelization", "map_ns_per_op",
               map_calls != 0 ? map_ns / double(map_calls) : 0.0);
    report.set("fig7_parallelization", "map_calls",
               double(map_calls));
    report.set("fig7_parallelization", "infeasible_points",
               double(infeasible));
    if (!report.write())
        std::fprintf(stderr, "warning: could not write "
                             "BENCH_core.json\n");
    return 0;
}
