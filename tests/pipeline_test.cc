/** @file End-to-end mapped-pipeline execution: the DDC receiver
 * planned by the AutoMapper, lowered by codegen, run cycle-accurately
 * and checked bit-exactly against the dsp:: golden chain — on both
 * scheduler backends. */

#include <gtest/gtest.h>

#include "apps/pipeline_runner.hh"

using namespace synchro;
using namespace synchro::apps;

namespace
{

DdcPipelineParams
smallRun(SchedulerKind kind)
{
    DdcPipelineParams p;
    p.samples = 512; // keep the EventQueue leg fast
    p.scheduler = kind;
    return p;
}

} // namespace

TEST(Pipeline, MappedDdcMatchesGoldenOnBothBackends)
{
    MappedDdcRun fast = runMappedDdc(smallRun(SchedulerKind::FastEdge));
    MappedDdcRun evq =
        runMappedDdc(smallRun(SchedulerKind::EventQueue));

    // Bit-exact against the dsp:: reference chain.
    ASSERT_EQ(fast.output.size(), 512u / 8u);
    EXPECT_TRUE(fast.bit_exact);
    EXPECT_TRUE(evq.bit_exact);
    EXPECT_EQ(fast.output, fast.golden);

    // The output must carry real signal, not a settle-time of zeros.
    unsigned nonzero = 0;
    for (int16_t v : fast.output)
        nonzero += v != 0;
    EXPECT_GT(nonzero, fast.output.size() / 2);

    // The static transfer schedule must never destroy data.
    EXPECT_EQ(fast.overruns, 0u);
    EXPECT_EQ(fast.conflicts, 0u);
    EXPECT_GT(fast.bus_transfers, 0u);

    // Backend equivalence: same exit, same final tick, every
    // statistic of the chip identical.
    EXPECT_EQ(fast.result.exit, evq.result.exit);
    EXPECT_EQ(fast.ticks, evq.ticks);
    EXPECT_EQ(fast.stats, evq.stats);
}

TEST(Pipeline, PlanMapsEveryActorToItsOwnColumn)
{
    DdcPipelineParams p;
    auto plan = planDdc(p);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->placements.size(), 5u);
    EXPECT_EQ(plan->total_columns, 5u);
    // The SDF certificates exist: repetition (8,1,1,1,1), bounded
    // buffers on every edge.
    ASSERT_EQ(plan->repetition.size(), 5u);
    EXPECT_EQ(plan->repetition[0], 8u);
    for (size_t i = 1; i < 5; ++i)
        EXPECT_EQ(plan->repetition[i], 1u);
    EXPECT_EQ(plan->buffer_bounds.size(), 4u);
    // Multiple clock/voltage domains actually emerge.
    double vmin = 10, vmax = 0;
    for (const auto &pl : plan->placements) {
        vmin = std::min(vmin, pl.v);
        vmax = std::max(vmax, pl.v);
    }
    EXPECT_LT(vmin, vmax);
}

TEST(Pipeline, MeasuredPowerComparisonIsTable4Consistent)
{
    MappedDdcRun run = runMappedDdc(smallRun(SchedulerKind::FastEdge));

    // Multi-V must beat single-V, and the saving must be consistent
    // in sign and magnitude (+-10 pp) with the paper's Table 4 DDC
    // row (11% saved by multiple voltage domains).
    EXPECT_GT(run.power.single_v.total(), run.power.multi_v.total());
    EXPECT_NEAR(run.power.savingsPct(), 11.0, 10.0);

    // Pricing at the achieved rate keeps every derived frequency at
    // or below its column clock, so the supply lookup always lands
    // on a real level.
    for (const auto &load : run.power.loads)
        EXPECT_LE(load.v, run.power.vmax);
    EXPECT_GT(run.achieved_sample_rate_hz, 0);
}
