/** @file End-to-end mapped-pipeline execution: the DDC receiver
 * planned by the AutoMapper, lowered by codegen, run cycle-accurately
 * and checked bit-exactly against the dsp:: golden chain — on every
 * scheduler backend. */

#include <gtest/gtest.h>

#include "apps/pipeline_runner.hh"
#include "test_util.hh"

using namespace synchro;
using namespace synchro::apps;

namespace
{

DdcPipelineParams
smallRun(SchedulerKind kind)
{
    DdcPipelineParams p;
    p.samples = 512; // keep the EventQueue leg fast
    p.scheduler = kind;
    return p;
}

} // namespace

TEST(Pipeline, MappedDdcMatchesGoldenOnEveryBackend)
{
    MappedDdcRun evq =
        runMappedDdc(smallRun(SchedulerKind::EventQueue));
    ASSERT_EQ(evq.output.size(), 512u / 8u);
    EXPECT_TRUE(evq.bit_exact);

    // The output must carry real signal, not a settle-time of zeros.
    unsigned nonzero = 0;
    for (int16_t v : evq.output)
        nonzero += v != 0;
    EXPECT_GT(nonzero, evq.output.size() / 2);

    // The static transfer schedule must never destroy data.
    EXPECT_EQ(evq.overruns, 0u);
    EXPECT_EQ(evq.conflicts, 0u);
    EXPECT_GT(evq.bus_transfers, 0u);

    for (SchedulerKind kind : synchro::test::AllSchedulerKinds) {
        if (kind == SchedulerKind::EventQueue)
            continue;
        MappedDdcRun run = runMappedDdc(smallRun(kind));
        const char *name = schedulerName(kind);

        // Bit-exact against the dsp:: reference chain, and backend
        // equivalence: same exit, same final tick, same output, every
        // statistic of the chip identical.
        EXPECT_TRUE(run.bit_exact) << name;
        EXPECT_EQ(run.output, evq.output) << name;
        EXPECT_EQ(run.result.exit, evq.result.exit) << name;
        EXPECT_EQ(run.ticks, evq.ticks) << name;
        EXPECT_EQ(run.stats, evq.stats) << name;
    }
}

TEST(Pipeline, PlanMapsEveryActorToItsOwnColumn)
{
    DdcPipelineParams p;
    auto plan = planDdc(p);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->placements.size(), 5u);
    EXPECT_EQ(plan->total_columns, 5u);
    // The SDF certificates exist: repetition (8,1,1,1,1), bounded
    // buffers on every edge.
    ASSERT_EQ(plan->repetition.size(), 5u);
    EXPECT_EQ(plan->repetition[0], 8u);
    for (size_t i = 1; i < 5; ++i)
        EXPECT_EQ(plan->repetition[i], 1u);
    EXPECT_EQ(plan->buffer_bounds.size(), 4u);
    // Multiple clock/voltage domains actually emerge.
    double vmin = 10, vmax = 0;
    for (const auto &pl : plan->placements) {
        vmin = std::min(vmin, pl.v);
        vmax = std::max(vmax, pl.v);
    }
    EXPECT_LT(vmin, vmax);
}

TEST(Pipeline, MeasuredPowerComparisonIsTable4Consistent)
{
    MappedDdcRun run = runMappedDdc(smallRun(SchedulerKind::FastEdge));

    // Multi-V must beat single-V, and the saving must be consistent
    // in sign and magnitude (+-10 pp) with the paper's Table 4 DDC
    // row (11% saved by multiple voltage domains).
    EXPECT_GT(run.power.single_v.total(), run.power.multi_v.total());
    EXPECT_NEAR(run.power.savingsPct(), 11.0, 10.0);

    // Pricing at the achieved rate keeps every derived frequency at
    // or below its column clock, so the supply lookup always lands
    // on a real level.
    for (const auto &load : run.power.loads)
        EXPECT_LE(load.v, run.power.vmax);
    EXPECT_GT(run.achieved_sample_rate_hz, 0);
}
