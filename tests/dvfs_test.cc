/** @file Online DVFS governor: safe-transition table proofs,
 * planted-unsafe rejection, steady-phase convergence to the measured
 * oracle, backend and fleet worker-count determinism, and the
 * epoch-faithful power attribution under mid-run rate steps. */

#include <gtest/gtest.h>

#include <any>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apps/app_registry.hh"
#include "apps/pipeline_runner.hh"
#include "power/dvfs.hh"
#include "sim/fleet.hh"
#include "sim/traffic.hh"

using namespace synchro;
using namespace synchro::power;

namespace
{

using apps::DdcPipelineParams;
using apps::dvfsDdc;

/** The small DDC shape every test here governs. */
DdcPipelineParams
testParams()
{
    DdcPipelineParams p;
    p.samples = 128;
    return p;
}

GovernedRunResult
runPolicy(const DvfsAppHooks &app, const sim::TrafficScenario &sc,
          DvfsPolicy pol,
          SchedulerKind backend = SchedulerKind::FastEdge)
{
    GovernedRunOptions opt;
    opt.policy = pol;
    opt.scheduler = backend;
    opt.keep_outputs = true;
    return runGoverned(app, sc, opt);
}

} // namespace

// ---------------------------------------------------------------
// The unified per-app capability registry.

TEST(AppRegistry, AllFourAppsExposeEveryCapability)
{
    const apps::AppRegistry &reg = apps::AppRegistry::instance();
    EXPECT_EQ(reg.names(),
              (std::vector<std::string>{"ddc", "motion", "stereo",
                                        "wifi"}));
    for (const auto &kv : reg.apps()) {
        const apps::AppDescriptor &d = kv.second;
        EXPECT_TRUE(d.explorable_hook) << d.name;
        EXPECT_TRUE(d.verifiable_hook) << d.name;
        EXPECT_TRUE(d.fleet_hook) << d.name;
        EXPECT_TRUE(d.dvfs_hook) << d.name;
        DvfsAppHooks h = d.dvfs();
        EXPECT_EQ(h.name, d.name);
        EXPECT_GT(h.iterations_per_item, 0u) << d.name;
        EXPECT_FALSE(h.traffic.phases.empty()) << d.name;
    }
}

TEST(AppRegistry, TuningFoldsIntoTypedParamsAndLegacyWrappersAgree)
{
    const apps::AppDescriptor &ddc =
        apps::AppRegistry::instance().at("ddc");

    apps::AppTuning tuning;
    tuning.scheduler = SchedulerKind::EventQueue;
    tuning.seed = 77;
    std::any any = ddc.params(tuning);
    const auto *p = std::any_cast<DdcPipelineParams>(&any);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(int(p->scheduler), int(SchedulerKind::EventQueue));
    EXPECT_EQ(p->seed, 77u);

    // The legacy free function is a wrapper over the same view.
    DdcPipelineParams q = testParams();
    mapping::LoweredArtifact via_fn = apps::verifiableDdc(q);
    mapping::LoweredArtifact via_reg = ddc.verifiable(q);
    EXPECT_EQ(via_fn.name, via_reg.name);
    EXPECT_EQ(via_fn.plan.dividers(), via_reg.plan.dividers());
    EXPECT_DOUBLE_EQ(via_fn.iterations_per_sec,
                     via_reg.iterations_per_sec);
}

// ---------------------------------------------------------------
// Traffic scenarios: deterministic, seed-sensitive.

TEST(Traffic, ScenarioIsAPureFunctionOfItsSpec)
{
    sim::TrafficSpec spec = sim::TrafficSpec::bursty(7);
    sim::TrafficScenario a(spec), b(spec);
    ASSERT_EQ(a.events().size(), b.events().size());
    for (size_t i = 0; i < a.events().size(); ++i) {
        EXPECT_EQ(a.events()[i].item, b.events()[i].item);
        EXPECT_EQ(a.events()[i].idle, b.events()[i].idle);
        EXPECT_DOUBLE_EQ(a.events()[i].windows,
                         b.events()[i].windows);
    }
    EXPECT_DOUBLE_EQ(a.totalWindows(), b.totalWindows());

    // A different seed jitters differently but keeps the shape.
    sim::TrafficScenario c(sim::TrafficSpec::bursty(8));
    ASSERT_EQ(a.events().size(), c.events().size());
    EXPECT_NE(a.totalWindows(), c.totalWindows());
}

// ---------------------------------------------------------------
// The safe-transition table.

TEST(SafeTransitionTable, EveryPointCarriesItsOwnStaticProof)
{
    DvfsAppHooks app = dvfsDdc(testParams());
    VfModel vf;
    SupplyLevels levels(vf);
    DvfsGovernorConfig cfg;
    SafeTransitionTable table = SafeTransitionTable::build(
        app.artifact, cfg.rate_scales, levels);

    ASSERT_GE(table.points().size(), 2u);
    EXPECT_EQ(
        table.points()[table.baselineIndex()].rate_scale, 1.0);
    EXPECT_EQ(table.points()[table.baselineIndex()].dividers,
              app.artifact.plan.dividers());

    double prev = 0;
    for (const DvfsOperatingPoint &pt : table.points()) {
        EXPECT_GT(pt.rate_scale, prev); // sorted, ascending
        prev = pt.rate_scale;
        // Re-run the gate each point already passed at build time.
        EXPECT_TRUE(SafeTransitionTable::candidateVerifies(
            app.artifact, pt.plan, pt.zorms));
        EXPECT_TRUE(table.contains(pt.dividers));
    }
}

TEST(SafeTransitionTable, PlantedUnsafeCandidateFailsItsProof)
{
    DvfsAppHooks app = dvfsDdc(testParams());
    VfModel vf;
    SupplyLevels levels(vf);
    SafeTransitionTable table = SafeTransitionTable::build(
        app.artifact, DvfsGovernorConfig{}.rate_scales, levels);

    // Tamper the baseline's ZORM so the column pads nearly every
    // slot: the compute can no longer fit the delivery grid and the
    // static proof must reject it.
    const DvfsOperatingPoint &base =
        table.points()[table.baselineIndex()];
    std::vector<mapping::ZormSetting> bad = base.zorms;
    ASSERT_FALSE(bad.empty());
    bad[0].period = bad[0].period ? bad[0].period : 16;
    bad[0].nops = bad[0].period - 1;
    EXPECT_FALSE(SafeTransitionTable::candidateVerifies(
        app.artifact, base.plan, bad));

    // A mismatched vector length is rejected outright.
    std::vector<mapping::ZormSetting> short_vec(
        base.zorms.begin(), base.zorms.end() - 1);
    if (base.zorms.size() > 1) {
        EXPECT_FALSE(SafeTransitionTable::candidateVerifies(
            app.artifact, base.plan, short_vec));
    }
}

TEST(DvfsGovernor, UnprovenDividerVectorIsRejectedNotApplied)
{
    DvfsAppHooks app = dvfsDdc(testParams());
    VfModel vf;
    SupplyLevels levels(vf);
    SafeTransitionTable table = SafeTransitionTable::build(
        app.artifact, DvfsGovernorConfig{}.rate_scales, levels);

    auto chip = app.workload.build(SchedulerKind::FastEdge);
    DvfsGovernor gov(table, 1e6);

    // Plant a transition with no precomputed proof: the baseline
    // vector with one column's divider nudged.
    std::vector<unsigned> unsafe = app.artifact.plan.dividers();
    unsafe[0] += 1;
    ASSERT_FALSE(table.contains(unsafe));
    EXPECT_FALSE(gov.applyDividers(*chip, unsafe));
    EXPECT_TRUE(gov.applied().empty());

    // The same call through the table's own points succeeds, and
    // every applied transition is a table index.
    EXPECT_TRUE(
        gov.applyDividers(*chip, table.points().front().dividers));
    ASSERT_EQ(gov.applied().size(), 1u);
    EXPECT_LT(gov.applied()[0], table.points().size());
    EXPECT_EQ(gov.applied()[0], 0u);
}

// ---------------------------------------------------------------
// Governed serving.

TEST(DvfsGovernor, ConvergesToTheOracleOnASteadySlowPhase)
{
    DvfsAppHooks app = dvfsDdc(testParams());
    // A steady trickle at a tenth of the mapped rate: windows are so
    // wide that even the headroom-inflated estimate of the slowest
    // point fits, so the governor must settle exactly where the
    // measured oracle sits.
    sim::TrafficScenario sc(sim::TrafficSpec::steady(11, 0.1, 6));

    GovernedRunResult gov =
        runPolicy(app, sc, DvfsPolicy::Governed);
    GovernedRunResult orc = runPolicy(app, sc, DvfsPolicy::Oracle);

    ASSERT_TRUE(gov.bit_exact) << gov.first_failure;
    ASSERT_TRUE(orc.bit_exact) << orc.first_failure;
    ASSERT_EQ(gov.trajectory.size(), 6u);
    EXPECT_EQ(gov.deadline_misses, 0u);

    // Item 0 calibrates at the baseline; every later item runs at
    // the oracle's point.
    EXPECT_EQ(gov.trajectory[0],
              size_t(gov.table_points - 1)); // baseline is last
    for (size_t i = 1; i < gov.trajectory.size(); ++i)
        EXPECT_EQ(gov.trajectory[i], orc.trajectory[i])
            << "item " << i;

    // Same delivered bytes under every policy.
    EXPECT_EQ(gov.outputs, orc.outputs);
}

TEST(DvfsGovernor, BurstyRunIsDeterministicAcrossBackends)
{
    DvfsAppHooks app = dvfsDdc(testParams());
    sim::TrafficScenario sc(sim::TrafficSpec::bursty(2004, 2));

    const SchedulerKind backends[] = {
        SchedulerKind::EventQueue, SchedulerKind::FastEdge,
        SchedulerKind::Compiled, SchedulerKind::ParallelColumns};

    GovernedRunResult ref =
        runPolicy(app, sc, DvfsPolicy::Governed, backends[0]);
    ASSERT_TRUE(ref.bit_exact) << ref.first_failure;
    ASSERT_GT(ref.items, 0u);
    for (size_t t : ref.trajectory)
        EXPECT_LT(t, ref.table_points);

    for (size_t b = 1; b < 4; ++b) {
        GovernedRunResult r =
            runPolicy(app, sc, DvfsPolicy::Governed, backends[b]);
        EXPECT_TRUE(r.bit_exact) << r.first_failure;
        EXPECT_EQ(r.trajectory, ref.trajectory);
        EXPECT_EQ(r.busy_ticks, ref.busy_ticks);
        EXPECT_EQ(r.deadline_misses, ref.deadline_misses);
        EXPECT_EQ(r.outputs, ref.outputs);
    }
}

TEST(DvfsGovernor, GovernedBeatsStaticAtEqualOutputOnBurstyTraffic)
{
    DvfsAppHooks app = dvfsDdc(testParams());
    sim::TrafficScenario sc(sim::TrafficSpec::bursty(2004));

    GovernedRunResult st = runPolicy(app, sc, DvfsPolicy::Static);
    GovernedRunResult gov =
        runPolicy(app, sc, DvfsPolicy::Governed);

    ASSERT_TRUE(st.bit_exact) << st.first_failure;
    ASSERT_TRUE(gov.bit_exact) << gov.first_failure;
    EXPECT_EQ(st.outputs, gov.outputs); // equal delivered output
    EXPECT_LT(gov.power.multi_v.total(), st.power.multi_v.total());

    // The static run never reconfigures; the governed one must have.
    EXPECT_EQ(st.epochs.size(), 1u);
    EXPECT_GT(gov.epochs.size(), 1u);
}

// ---------------------------------------------------------------
// Epoch-faithful power attribution.

TEST(ActivityEpochs, IdenticalEpochsPriceLikeOneEpoch)
{
    DvfsAppHooks app = dvfsDdc(testParams());
    sim::TrafficScenario sc(sim::TrafficSpec::steady(3, 1.0, 2));
    GovernedRunResult st = runPolicy(app, sc, DvfsPolicy::Static);
    ASSERT_EQ(st.epochs.size(), 1u);

    VfModel vf;
    SupplyLevels levels(vf);
    SystemPowerModel model;
    unsigned cols = unsigned(st.epochs[0].activity.columns.size());

    // Splitting one epoch into two identical halves (same loads,
    // same voltages) must not change the priced power.
    ActivityEpoch half = st.epochs[0];
    half.seconds /= 2;
    for (auto &c : half.activity.columns) {
        c.compute_slots /= 2;
        c.branch_stalls /= 2;
        c.comm_stall_slots /= 2;
        c.zorm_nops /= 2;
        c.issue_slots = c.compute_slots + c.branch_stalls +
                        c.comm_stall_slots + c.zorm_nops;
    }
    half.activity.bus_transfers /= 2;
    half.activity.wire_span_sum /= 2;

    MeasuredComparison one =
        priceActivityEpochs({half}, cols, levels, model);
    MeasuredComparison two =
        priceActivityEpochs({half, half}, cols, levels, model);
    EXPECT_NEAR(two.multi_v.total(), one.multi_v.total(),
                1e-6 * one.multi_v.total());
    EXPECT_NEAR(two.single_v.total(), one.single_v.total(),
                1e-6 * one.single_v.total());
    EXPECT_DOUBLE_EQ(two.vmax, one.vmax);
}

TEST(ActivityEpochs, MidRunRateStepIsPricedPerEpochNotAggregated)
{
    DvfsAppHooks app = dvfsDdc(testParams());
    // Full-rate burst, then a long slow trickle: the governed run
    // retunes mid-stream, so its activity spans two very different
    // V/f regimes.
    sim::TrafficSpec spec;
    spec.seed = 5;
    spec.jitter = 0;
    spec.phases = {{1.0, 3, 0.0}, {0.1, 5, 0.0}};
    sim::TrafficScenario sc(spec);

    GovernedRunResult gov =
        runPolicy(app, sc, DvfsPolicy::Governed);
    ASSERT_TRUE(gov.bit_exact) << gov.first_failure;
    ASSERT_GT(gov.epochs.size(), 1u);

    VfModel vf;
    SupplyLevels levels(vf);
    SystemPowerModel model;
    unsigned cols =
        unsigned(gov.epochs[0].activity.columns.size());

    // The naive attribution this PR fixes: squash every epoch into
    // one and price the whole stream at one averaged V/f point.
    ActivityEpoch merged = gov.epochs[0];
    for (size_t i = 1; i < gov.epochs.size(); ++i) {
        const ActivityEpoch &e = gov.epochs[i];
        merged.seconds += e.seconds;
        for (size_t c = 0; c < merged.activity.columns.size(); ++c) {
            auto &a = merged.activity.columns[c];
            const auto &b = e.activity.columns[c];
            a.compute_slots += b.compute_slots;
            a.branch_stalls += b.branch_stalls;
            a.comm_stall_slots += b.comm_stall_slots;
            a.zorm_nops += b.zorm_nops;
            a.issue_slots += b.issue_slots;
        }
        merged.activity.bus_transfers += e.activity.bus_transfers;
        merged.activity.wire_span_sum += e.activity.wire_span_sum;
    }
    MeasuredComparison naive =
        priceActivityEpochs({merged}, cols, levels, model);

    // Averaging the slow-phase slots across the whole stream melts
    // the full-rate burst's supply requirement into a mid V/f point:
    // the epoch-faithful price must differ measurably, and the
    // per-epoch vmax (the burst's real supply) must survive.
    double faithful = gov.power.multi_v.total();
    EXPECT_GT(std::abs(naive.multi_v.total() - faithful),
              0.005 * faithful);
    EXPECT_GE(gov.power.vmax, naive.vmax);
}

// ---------------------------------------------------------------
// Governed fleet serving.

TEST(GovernedFleet, DecisionsAreIdenticalUnderAnyWorkerCount)
{
    DvfsAppHooks app = dvfsDdc(testParams());
    sim::TrafficSpec traffic = sim::TrafficSpec::bursty(2004, 2);

    std::map<uint64_t, size_t> ref_decisions;
    uint64_t ref_slices = 0;
    for (unsigned workers : {1u, 2u, 4u}) {
        auto state = makeGovernedFleetState(app, traffic);
        sim::FleetWorkload wl = governedFleetWorkload(app, state);
        ASSERT_GT(wl.run_chunk, 0u);

        sim::FleetConfig fc;
        fc.workers = workers;
        fc.scheduler = SchedulerKind::FastEdge;
        sim::FleetExecutor fleet(fc);
        unsigned id = fleet.addWorkload(wl);
        // Four streams with disjoint, contiguous item ranges.
        for (unsigned s = 0; s < 4; ++s)
            fleet.admitStream(id, 4, uint64_t(s) * 4);
        sim::FleetReport rep = fleet.drain();

        EXPECT_TRUE(rep.all_verified);
        EXPECT_EQ(rep.items, 16u);
        EXPECT_GT(state->slices, 0u);
        for (const auto &kv : state->decision_by_item)
            EXPECT_LT(kv.second, state->table.points().size());

        if (ref_decisions.empty()) {
            ref_decisions = state->decision_by_item;
            ref_slices = state->slices;
        } else {
            EXPECT_EQ(state->decision_by_item, ref_decisions)
                << workers << " workers diverged";
            EXPECT_EQ(state->slices, ref_slices);
        }
    }
    EXPECT_EQ(ref_decisions.size(), 16u);
}
