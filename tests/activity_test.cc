/** @file Activity-driven power: simulate, then price the run with
 * the Section 4.1 equations (methodology steps 6-9 end to end). */

#include <gtest/gtest.h>

#include "arch/chip.hh"
#include "common/log.hh"
#include "isa/assembler.hh"
#include "mapping/comm_schedule.hh"
#include "power/activity.hh"

using namespace synchro;
using namespace synchro::arch;
using namespace synchro::power;

namespace
{

VfModel &
vf()
{
    static VfModel v;
    return v;
}

SupplyLevels &
levels()
{
    static SupplyLevels l(vf());
    return l;
}

SystemPowerModel &
model()
{
    static SystemPowerModel m;
    return m;
}

/** A 2-column producer/consumer run processing @p n samples. */
std::unique_ptr<Chip>
runPipeline(unsigned n)
{
    ChipConfig cfg;
    cfg.dividers = {1, 1};
    cfg.tiles_per_column = 1;
    auto chip = std::make_unique<Chip>(cfg);
    chip->column(0).controller().loadProgram(
        isa::assemble(strprintf(R"(
        movi r7, 0
        lsetup lc0, e, %u
        addi r7, 1
        cwr r7
    e:
        halt
    )", n)));
    chip->column(1).controller().loadProgram(
        isa::assemble(strprintf(R"(
        movi r1, 0
        lsetup lc0, e, %u
        crd r0
        add r1, r1, r0
    e:
        halt
    )", n)));
    mapping::CommSchedule prod;
    prod.period = 2;
    prod.transfers = {{0, 0, 0, {}, true}};
    chip->column(0).dou().load(mapping::compileSchedule(prod));
    mapping::CommSchedule cons;
    cons.period = 1;
    cons.transfers = {{0, 0, -1, {0}, false}};
    chip->column(1).dou().load(mapping::compileSchedule(cons));
    auto res = chip->run(1'000'000);
    sync_assert(res.exit == RunExit::AllHalted, "pipeline stuck");
    return chip;
}

} // namespace

TEST(Activity, CollectsPerColumnSlots)
{
    auto chip = runPipeline(100);
    ActivityReport act = collectActivity(*chip);
    ASSERT_EQ(act.columns.size(), 2u);
    // Producer: movi + lsetup + 100 x (addi + cwr) + halt = 203
    // compute slots plus any cwr stalls.
    EXPECT_GE(act.columns[0].compute_slots, 203u);
    EXPECT_GE(act.columns[0].issue_slots,
              act.columns[0].compute_slots);
    EXPECT_EQ(act.columns[0].active_tiles, 1u);
    // Exactly one bus transaction per sample.
    EXPECT_EQ(act.bus_transfers, 100u);
    EXPECT_LE(act.columns[0].utilization, 1.0);
    EXPECT_GT(act.columns[0].utilization, 0.5);
}

TEST(Activity, PricedPowerScalesWithDataRate)
{
    auto chip = runPipeline(200);
    // The same run at 1 MS/s vs 4 MS/s: 4x the frequency demand,
    // so strictly more power (superlinear once voltage steps up).
    PowerBreakdown slow =
        priceSimulation(*chip, 200, 1e6, levels(), model());
    PowerBreakdown fast =
        priceSimulation(*chip, 200, 4e6, levels(), model());
    EXPECT_GT(fast.tile_mw, 2.0 * slow.tile_mw);
    EXPECT_GT(fast.bus_mw, slow.bus_mw);
    EXPECT_GT(slow.total(), 0.0);
}

TEST(Activity, MatchesHandComputation)
{
    const unsigned n = 250;
    auto chip = runPipeline(n);
    ActivityReport act = collectActivity(*chip);

    const double rate = 2e6; // samples/s
    double seconds = n / rate;
    PowerBreakdown p =
        priceSimulation(*chip, n, rate, levels(), model());

    // Hand-evaluate column 0's share.
    double f0_mhz = double(act.columns[0].issue_slots) / seconds /
                    1e6;
    double v0 = levels().voltageFor(f0_mhz);
    double tile0 =
        model().tileModel().dynamicMw(f0_mhz, v0);
    EXPECT_GT(p.tile_mw, tile0 * 0.99); // plus column 1
    EXPECT_LT(p.tile_mw, tile0 * 3.0);

    // Bus: n transfers over the run at the measured span.
    EXPECT_GT(p.bus_mw, 0.0);
}

TEST(Activity, IdleColumnsContributeNothing)
{
    ChipConfig cfg;
    cfg.dividers = {1, 1};
    cfg.tiles_per_column = 1;
    Chip chip(cfg);
    chip.column(0).controller().loadProgram(isa::assemble(R"(
        movi r0, 1
        halt
    )"));
    chip.column(1).controller().loadProgram(
        isa::assemble("halt\n"));
    chip.run(1000);

    ActivityReport act = collectActivity(chip);
    // Column 1 issued only its halt; both are tiny but nonzero.
    EXPECT_GT(act.columns[0].compute_slots,
              act.columns[1].compute_slots);
    EXPECT_EQ(act.bus_transfers, 0u);
}

TEST(Activity, SegmentedTrafficPricedBelowFullSpan)
{
    // A neighbour transfer spans 2 of the 9 bus nodes; its priced
    // bus power must be well below a full-span broadcast of the
    // same volume.
    ChipConfig cfg;
    cfg.dividers = {1};
    cfg.tiles_per_column = 4;
    Chip chip(cfg);
    chip.column(0).controller().loadProgram(isa::assemble(R"(
        tid r7
        lsetup lc0, e, 100
        addi r7, 1
        cwr r7
        crd r0
    e:
        halt
    )"));
    mapping::CommSchedule sched;
    sched.period = 3;
    sched.transfers = {
        {0, 0, 0, {0, 1}, false},
        {0, 2, 1, {}, false},
        {0, 4, 2, {2, 3}, false},
        {0, 6, 3, {}, false},
    };
    chip.column(0).dou().load(mapping::compileSchedule(sched));
    auto res = chip.run(100'000);
    ASSERT_EQ(res.exit, RunExit::AllHalted);

    ActivityReport act = collectActivity(chip);
    unsigned nodes = chip.numColumns() * 4 + 1;
    EXPECT_LT(act.meanSpanFraction(nodes), 0.5);

    PowerBreakdown p =
        priceSimulation(chip, 100, 1e6, levels(), model());
    // Same volume at full span for comparison.
    double full = model().busModel().powerMw(
        double(act.bus_transfers) / (100 / 1e6), 32, 0.7, 1.0);
    EXPECT_LT(p.bus_mw, 0.6 * full);
}
