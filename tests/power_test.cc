/** @file Power/area model tests, pinned to the paper's published
 * numbers (DESIGN.md Section 6 calibration points). */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "power/area.hh"
#include "power/interconnect.hh"
#include "power/leakage.hh"
#include "power/system_power.hh"
#include "power/tile_power.hh"
#include "power/vf_model.hh"

using namespace synchro;
using namespace synchro::power;

TEST(TechParams, Table1Values)
{
    const TechParams &t = defaultTech();
    EXPECT_DOUBLE_EQ(t.feature_nm, 130.0);
    EXPECT_DOUBLE_EQ(t.vdd_min, 0.7);
    EXPECT_DOUBLE_EQ(t.vth, 0.332);
    EXPECT_DOUBLE_EQ(t.tile_power_mw_per_mhz, 0.1);
    EXPECT_DOUBLE_EQ(t.tile_area_mm2, 1.82);
    EXPECT_DOUBLE_EQ(t.freq_max_mhz, 600.0);
    // 1.8 M transistors x 830 pA ~ 1.5 mA per tile (Section 4.4).
    EXPECT_NEAR(t.leakMaPerTile(), 1.494, 1e-3);
}

TEST(TilePowerChain, ReproducesSection42Arithmetic)
{
    TilePowerChain chain;
    // 0.03 + 0.11 + 1.75 = 1.89; + 0.25 = 2.14 mW/MHz at 2.5 V.
    EXPECT_NEAR(chain.synthesizedTotal(), 2.14, 1e-9);
    EXPECT_NEAR(chain.customTotalAt2v5(), 0.642, 1e-9);
    // 0.642 / 2.5^2 = 0.1027 -> "which reduces to 0.1mW/MHz at 1V".
    EXPECT_NEAR(chain.uAt1V(), 0.1, 0.005);
}

TEST(TilePower, QuadraticInVoltage)
{
    TilePowerModel m;
    EXPECT_DOUBLE_EQ(m.dynamicMw(100, 1.0), 10.0);
    EXPECT_DOUBLE_EQ(m.dynamicMw(100, 2.0), 40.0);
    EXPECT_DOUBLE_EQ(m.dynamicMw(200, 1.0), 20.0);
    EXPECT_NEAR(m.dynamicMw(120, 0.8), 0.1 * 120 * 0.64, 1e-9);
}

TEST(VfModel, HitsPaperOperatingPointsApproximately)
{
    VfModel m;
    // The fit should land within ~15% of each monotone Table 4 point.
    for (auto [f, v] : std::vector<std::pair<double, double>>{
             {100, 0.7}, {120, 0.8}, {200, 1.0}, {280, 1.1},
             {330, 1.2}, {380, 1.3}, {500, 1.5}}) {
        EXPECT_NEAR(m.frequencyMhz(v), f, 0.15 * f)
            << "at " << v << " V";
    }
}

TEST(VfModel, MonotoneIncreasing)
{
    VfModel m;
    double prev = 0;
    for (double v = 0.62; v <= 2.12; v += 0.05) {
        double f = m.frequencyMhz(v);
        EXPECT_GT(f, prev) << "at " << v;
        prev = f;
    }
}

TEST(VfModel, VoltageForInvertsFrequency)
{
    VfModel m;
    for (double f : {150.0, 250.0, 400.0, 550.0, 700.0}) {
        double v = m.voltageFor(f);
        EXPECT_GE(m.frequencyMhz(v), f * 0.999);
        // Just below v the frequency target must fail (tightness),
        // unless we are clamped at the floor.
        if (v > m.tech().vdd_min + 1e-6)
            EXPECT_LT(m.frequencyMhz(v - 0.01), f);
    }
}

TEST(VfModel, FloorsAndCeilings)
{
    VfModel m;
    // Anything at or below the floor frequency gets the floor voltage.
    EXPECT_DOUBLE_EQ(m.voltageFor(10.0), 0.7);
    EXPECT_DOUBLE_EQ(m.voltageFor(40.0), 0.7);
    // Far beyond the extended ceiling is unreachable.
    EXPECT_THROW(m.voltageFor(5000.0), FatalError);
    // Below threshold no switching at all.
    EXPECT_DOUBLE_EQ(m.frequencyMhz(0.3), 0.0);
}

TEST(VfModel, FifteenFo4IsFasterByDepthRatio)
{
    VfModel m20(defaultTech(), 20.0);
    VfModel m15(defaultTech(), 15.0);
    for (double v : {0.8, 1.2, 1.6, 2.0}) {
        EXPECT_NEAR(m15.frequencyMhz(v),
                    m20.frequencyMhz(v) * 20.0 / 15.0,
                    1e-6);
    }
}

TEST(SupplyLevels, QuantizesToPaperLevels)
{
    VfModel m;
    SupplyLevels levels(m);
    // Table 4's published pairs must be honoured exactly.
    EXPECT_DOUBLE_EQ(levels.voltageFor(40), 0.7);
    EXPECT_DOUBLE_EQ(levels.voltageFor(100), 0.7);
    EXPECT_DOUBLE_EQ(levels.voltageFor(120), 0.8);
    EXPECT_DOUBLE_EQ(levels.voltageFor(200), 1.0);
    EXPECT_DOUBLE_EQ(levels.voltageFor(280), 1.1);
    EXPECT_DOUBLE_EQ(levels.voltageFor(310), 1.2);
    EXPECT_DOUBLE_EQ(levels.voltageFor(330), 1.2);
    EXPECT_DOUBLE_EQ(levels.voltageFor(370), 1.3);
    EXPECT_DOUBLE_EQ(levels.voltageFor(380), 1.3);
    EXPECT_DOUBLE_EQ(levels.voltageFor(500), 1.5);
    EXPECT_DOUBLE_EQ(levels.voltageFor(540), 1.7);
    // Above 540 the extended (fitted) levels take over and must be
    // monotone.
    double prev_v = 0;
    for (auto [f, v] : levels.levels()) {
        EXPECT_GE(v, prev_v) << "level " << f;
        prev_v = v;
    }
    EXPECT_GE(levels.maxFrequencyMhz(), 600.0);
    EXPECT_THROW(levels.voltageFor(1e5), FatalError);
}

TEST(Interconnect, WireCapacitanceMatchesSection43)
{
    InterconnectModel ic;
    // 387 fF/mm x 10 mm = 3.87 pF per wire.
    EXPECT_NEAR(ic.wireCapF(), 3.87e-12, 1e-15);
    // One 32-bit transfer at 0.8 V: 32 * 3.87pF * 0.64 = 79.2 pJ.
    EXPECT_NEAR(ic.transferEnergyJ(32, 0.8), 79.26e-12, 0.1e-12);
}

TEST(Interconnect, PowerScalesLinearlyInRateAndQuadraticallyInV)
{
    InterconnectModel ic;
    double p1 = ic.powerMw(64e6, 32, 1.0);
    EXPECT_NEAR(ic.powerMw(128e6, 32, 1.0), 2 * p1, 1e-9);
    EXPECT_NEAR(ic.powerMw(64e6, 32, 2.0), 4 * p1, 1e-9);
    EXPECT_NEAR(ic.powerMw(64e6, 64, 1.0), 2 * p1, 1e-9);
    // Segmented transfers over half the bus cost half the energy.
    EXPECT_NEAR(ic.powerMw(64e6, 32, 1.0, 0.5), 0.5 * p1, 1e-9);
}

TEST(Leakage, CalibratedTo830pA)
{
    LeakageModel m;
    EXPECT_NEAR(m.currentPerTransistorA(), 830e-12, 40e-12);
    EXPECT_NEAR(m.currentPerTileMa(), 1.5, 0.08);
    // Sanity: inside Intel's published 130 nm band of 0.65..32.5 nA.
    EXPECT_GT(m.currentPerTransistorA(), 0.65e-9 * 0.5);
    EXPECT_LT(m.currentPerTransistorA(), 32.5e-9);
}

TEST(Leakage, GrowsWithTemperatureAndFallsWithVth)
{
    LeakageModel base;
    LeakageModel::Params hot;
    hot.temperature_c = 110.0;
    LeakageModel hotter(defaultTech(), hot);
    EXPECT_GT(hotter.currentPerTransistorA(),
              base.currentPerTransistorA());
    LeakageModel::Params hivt;
    hivt.vth = 0.45;
    LeakageModel high_vt(defaultTech(), hivt);
    EXPECT_LT(high_vt.currentPerTransistorA(),
              base.currentPerTransistorA());
}

TEST(Leakage, PowerLinearInTilesAndVoltage)
{
    EXPECT_DOUBLE_EQ(LeakageModel::powerMwAt(1.5, 8, 1.0), 12.0);
    EXPECT_DOUBLE_EQ(LeakageModel::powerMwAt(1.5, 16, 1.0), 24.0);
    EXPECT_DOUBLE_EQ(LeakageModel::powerMwAt(1.5, 8, 1.3), 15.6);
}

TEST(Area, Table2TileScalesToHeadlineArea)
{
    AreaModel a;
    // Tile components sum to 7.27 mm^2 at 0.25 um ...
    double um2 = 0;
    for (const auto &c : AreaModel::tileComponents())
        um2 += c.area_um2_250nm;
    EXPECT_NEAR(um2, 7'270'000.0, 10'000.0);
    // ... and land near the headline 1.82 mm^2 after (0.13/0.25)^2.
    EXPECT_NEAR(a.scaledTotalMm2(AreaModel::tileComponents()), 1.97,
                0.02);
    EXPECT_NEAR(a.tileAreaMm2(), 1.82, 1e-9);
}

TEST(Area, ControllerScalesToQuarterMm2)
{
    AreaModel a;
    // SIMD controller (0.25) + DOU (0.0875) = 0.3375 mm^2 headline;
    // the scaled Table 2 rows land close to that.
    EXPECT_NEAR(a.scaledTotalMm2(AreaModel::controllerComponents()),
                a.columnOverheadMm2(), 0.03);
}

TEST(Area, ChipAreaComposition)
{
    AreaModel a;
    double one_col = a.chipAreaMm2(4, 1, 256);
    double four_col = a.chipAreaMm2(16, 4, 256);
    EXPECT_GT(four_col, one_col);
    // Widening the bus grows area linearly in wires.
    double wide = a.chipAreaMm2(16, 4, 1024);
    EXPECT_NEAR(wide - four_col,
                InterconnectModel().busAreaMm2(1024 - 256) * 2, 1e-9);
}

// --- The DESIGN.md Section 6 closed-form calibration rows ---

TEST(SystemPower, DdcMixerRowMatchesTable4)
{
    // DDC digital mixer: 8 tiles, 120 MHz, 0.8 V, ~64e6 transfers/s
    // -> 76.29 mW in Table 4.
    SystemPowerModel m;
    DomainLoad mixer{"mixer", 8, 120.0, 0.8, 64e6};
    PowerBreakdown b = m.loadPower(mixer);
    EXPECT_NEAR(b.tile_mw, 61.44, 0.01);
    EXPECT_NEAR(b.leak_mw, 9.56, 0.05); // 1.494 mA x 8 x 0.8 V
    EXPECT_NEAR(b.total(), 76.29, 1.5);
}

TEST(SystemPower, DdcMixerSingleVoltageRowMatchesTable4)
{
    // Same mixer at the DDC's 1.3 V maximum: Table 4 says 191.83 mW.
    SystemPowerModel m;
    DomainLoad mixer{"mixer", 8, 120.0, 0.8, 64e6};
    PowerBreakdown b = m.loadPower(m.atVoltage(mixer, 1.3));
    EXPECT_NEAR(b.total(), 191.83, 3.0);
}

TEST(SystemPower, StereoVisionSvdRowMatchesTable4)
{
    // SVD: 1 tile, 500 MHz, 1.5 V, no bus traffic -> 114.27 mW.
    SystemPowerModel m;
    DomainLoad svd{"svd", 1, 500.0, 1.5, 0.0};
    EXPECT_NEAR(m.loadPower(svd).total(), 114.27, 1.0);
}

TEST(SystemPower, ViterbiAcsRowMatchesTable4)
{
    // Viterbi ACS: 16 tiles, 540 MHz, 1.7 V, heavy bus traffic
    // (~3.66e9 transfers/s calibrated) -> 3848.01 mW.
    SystemPowerModel m;
    DomainLoad acs{"viterbi-acs", 16, 540.0, 1.7, 3.662e9};
    EXPECT_NEAR(m.loadPower(acs).total(), 3848.01, 25.0);
}

TEST(SystemPower, SingleVoltageUsesMaxAndNeverWins)
{
    SystemPowerModel m;
    std::vector<DomainLoad> app = {
        {"a", 8, 120.0, 0.8, 64e6},
        {"b", 8, 200.0, 1.0, 561e6},
        {"c", 16, 380.0, 1.3, 60e6},
    };
    PowerBreakdown multi = m.designPower(app);
    PowerBreakdown single = m.singleVoltagePower(app);
    EXPECT_GT(single.total(), multi.total());
    // The highest-voltage load is unchanged between the two.
    PowerBreakdown c_multi = m.loadPower(app[2]);
    PowerBreakdown c_single = m.loadPower(m.atVoltage(app[2], 1.3));
    EXPECT_DOUBLE_EQ(c_multi.total(), c_single.total());
}

TEST(SystemPower, LeakageSweepIsLinear)
{
    SystemPowerModel m;
    DomainLoad l{"x", 12, 300.0, 1.2, 0.0};
    m.setLeakMaPerTile(1.5);
    double p1 = m.loadPower(l).total();
    m.setLeakMaPerTile(59.3);
    double p2 = m.loadPower(l).total();
    // Delta = (59.3 - 1.5) mA * 12 tiles * 1.2 V.
    EXPECT_NEAR(p2 - p1, (59.3 - 1.5) * 12 * 1.2, 1e-6);
}

TEST(SystemPower, MonotoneInEveryKnob)
{
    SystemPowerModel m;
    DomainLoad base{"x", 8, 200.0, 1.0, 1e8};
    double p0 = m.loadPower(base).total();
    auto bump = [&](auto mod) {
        DomainLoad l = base;
        mod(l);
        return m.loadPower(l).total();
    };
    EXPECT_GT(bump([](DomainLoad &l) { l.tiles = 9; }), p0);
    EXPECT_GT(bump([](DomainLoad &l) { l.f_mhz = 250; }), p0);
    EXPECT_GT(bump([](DomainLoad &l) { l.v = 1.1; }), p0);
    EXPECT_GT(bump([](DomainLoad &l) {
        l.bus_transfers_per_s = 2e8;
    }), p0);
}
