/** @file Cross-cutting robustness properties: simulator determinism,
 * randomized ISA round-trips, randomized DOU schedule compilation,
 * and coding-gain checks — the failure-injection layer of the test
 * plan (DESIGN.md Section 7). */

#include <gtest/gtest.h>

#include <set>

#include "arch/chip.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "dsp/interleaver.hh"
#include "dsp/ofdm.hh"
#include "dsp/qam.hh"
#include "dsp/viterbi.hh"
#include "isa/assembler.hh"
#include "isa/disasm.hh"
#include "isa/encoding.hh"
#include "mapping/comm_schedule.hh"

using namespace synchro;
using namespace synchro::arch;

// ---------------------------------------------------------------
// Simulator determinism

namespace
{

std::unique_ptr<Chip>
buildCommChip()
{
    ChipConfig cfg;
    cfg.dividers = {1, 3};
    cfg.tiles_per_column = 2;
    auto chip = std::make_unique<Chip>(cfg);
    chip->column(0).controller().loadProgram(isa::assemble(R"(
        movi r7, 0
        lsetup lc0, e, 50
        addi r7, 3
        cwr r7
    e:
        halt
    )"));
    chip->column(1).controller().loadProgram(isa::assemble(R"(
        movi r1, 0
        lsetup lc0, e, 50
        crd r0
        add r1, r1, r0
    e:
        halt
    )"));
    mapping::CommSchedule prod;
    prod.period = 6;
    prod.transfers = {{0, 0, 0, {}, true},
                      {0, 1, 1, {}, false}};
    chip->column(0).dou().load(mapping::compileSchedule(prod));
    mapping::CommSchedule cons;
    cons.period = 1;
    cons.transfers = {{0, 0, -1, {0, 1}, false}};
    chip->column(1).dou().load(mapping::compileSchedule(cons));
    return chip;
}

struct Snapshot
{
    uint64_t reg;
    uint64_t transfers;
    uint64_t stalls;
    Tick ticks;

    friend bool
    operator==(const Snapshot &a, const Snapshot &b)
    {
        return a.reg == b.reg && a.transfers == b.transfers &&
               a.stalls == b.stalls && a.ticks == b.ticks;
    }
};

Snapshot
snap(Chip &chip, Tick ticks)
{
    return {chip.column(1).tile(0).reg(1),
            chip.fabric().transfers(),
            chip.column(1).controller().stats().value("commStalls"),
            ticks};
}

} // namespace

TEST(Determinism, BatchEqualsSteppedExecution)
{
    // Regression for the event-loop class of bugs: running the same
    // chip in one run() call or tick-by-tick must produce identical
    // state and stats.
    auto batch = buildCommChip();
    auto batch_res = batch->run(100'000);
    ASSERT_EQ(batch_res.exit, RunExit::AllHalted);
    Snapshot a = snap(*batch, batch_res.ticks);

    auto stepped = buildCommChip();
    Tick t = 0;
    while (!stepped->allHalted() && t < 100'000) {
        stepped->run(1);
        t = stepped->curTick();
    }
    Snapshot b = snap(*stepped, stepped->curTick());
    EXPECT_EQ(a, b);
}

TEST(Determinism, RepeatedRunsIdentical)
{
    auto c1 = buildCommChip();
    auto c2 = buildCommChip();
    auto r1 = c1->run(100'000);
    auto r2 = c2->run(100'000);
    EXPECT_EQ(snap(*c1, r1.ticks), snap(*c2, r2.ticks));
    EXPECT_EQ(c1->column(1).tile(0).reg(1), 50u * 51u / 2u * 3u);
}

// ---------------------------------------------------------------
// Randomized ISA round-trips

TEST(Fuzz, RandomInstructionsRoundTripThroughEverything)
{
    // Build random-but-valid instructions, then check
    // encode -> decode -> disassemble -> assemble -> encode is the
    // identity.
    Rng rng(31337);
    namespace b = isa::build;
    using isa::Opcode;
    for (int trial = 0; trial < 2000; ++trial) {
        isa::Inst inst;
        switch (rng.below(10)) {
          case 0:
            inst = b::alu3(Opcode::ADD, unsigned(rng.below(8)),
                           unsigned(rng.below(8)),
                           unsigned(rng.below(8)));
            break;
          case 1:
            inst = b::aluImm(Opcode::MOVI, unsigned(rng.below(8)),
                             int32_t(rng.range(-32768, 32767)));
            break;
          case 2:
            inst = b::mac(Opcode::MAC, unsigned(rng.below(2)),
                          unsigned(rng.below(8)),
                          unsigned(rng.below(8)),
                          isa::HalfSel(rng.below(4)));
            break;
          case 3:
            inst = b::load(Opcode::LDW, unsigned(rng.below(8)),
                           unsigned(rng.below(6)),
                           isa::MemMode(rng.below(2)),
                           int32_t(rng.range(-128, 127)) * 4);
            break;
          case 4:
            inst = b::store(Opcode::STH, unsigned(rng.below(8)),
                            unsigned(rng.below(6)),
                            isa::MemMode(rng.below(2)),
                            int32_t(rng.range(-256, 255)) * 2);
            break;
          case 5:
            inst = b::shiftImm(Opcode::ASRI,
                               unsigned(rng.below(8)),
                               unsigned(rng.below(8)),
                               unsigned(rng.below(32)));
            break;
          case 6:
            inst = b::lsetup(unsigned(rng.below(2)),
                             uint16_t(rng.range(1, 2047)),
                             uint16_t(rng.range(1, 4095)));
            break;
          case 7:
            inst = b::cmp(Opcode::CMPLT, unsigned(rng.below(8)),
                          unsigned(rng.below(8)));
            break;
          case 8:
            inst = b::paddi(unsigned(rng.below(6)),
                            int32_t(rng.range(-32768, 32767)));
            break;
          default:
            inst = b::aext(unsigned(rng.below(8)),
                           unsigned(rng.below(2)),
                           unsigned(rng.below(32)));
        }
        uint32_t w1 = isa::encode(inst);
        isa::Inst dec = isa::decode(w1);
        ASSERT_EQ(dec, inst) << isa::disassemble(inst);
        std::string text = isa::disassemble(dec);
        isa::Program p = isa::assemble(text);
        ASSERT_EQ(p.size(), 1u) << text;
        ASSERT_EQ(isa::encode(p.insts[0]), w1) << text;
    }
}

TEST(Fuzz, RandomDouSchedulesCompileFaithfully)
{
    // Random conflict-free periodic schedules: compiled DOU output
    // must equal the reference interpreter for several periods.
    Rng rng(90210);
    for (int trial = 0; trial < 60; ++trial) {
        mapping::CommSchedule sched;
        sched.period = unsigned(rng.range(2, 40));
        sched.prologue = unsigned(rng.range(0, 6));
        unsigned n_transfers = unsigned(rng.range(1, 5));
        std::set<std::pair<unsigned, unsigned>> used;
        for (unsigned i = 0; i < n_transfers; ++i) {
            mapping::Transfer t;
            t.offset = unsigned(rng.below(sched.period));
            t.lane = unsigned(rng.below(8));
            if (!used.insert({t.offset, t.lane}).second)
                continue; // avoid lane conflicts
            t.src_tile = int(rng.below(4));
            unsigned dst = unsigned(rng.below(4));
            if (int(dst) != t.src_tile)
                t.dst_tiles.push_back(dst);
            else
                t.to_horizontal = true;
            sched.transfers.push_back(t);
        }
        if (sched.transfers.empty())
            continue;

        arch::DouProgram prog;
        try {
            prog = mapping::compileSchedule(sched);
        } catch (const FatalError &) {
            continue; // counter overflow on chained waits etc.
        }
        arch::Dou dou(0);
        dou.load(prog);
        for (uint64_t cycle = 0;
             cycle < sched.prologue + 4 * sched.period; ++cycle) {
            arch::DouState want =
                mapping::scheduleOutputAt(sched, cycle);
            const arch::DouState &got = dou.current();
            for (unsigned t = 0; t < 4; ++t) {
                ASSERT_EQ(got.buf[t], want.buf[t])
                    << "trial " << trial << " cycle " << cycle;
            }
            for (unsigned s = 0; s < 4; ++s) {
                ASSERT_EQ(got.seg[s], want.seg[s])
                    << "trial " << trial << " cycle " << cycle;
            }
            dou.step();
        }
    }
}

// ---------------------------------------------------------------
// Coding gain (the reason the receiver carries a Viterbi decoder)

TEST(CodingGain, ConvolutionalCodeBeatsUncodedAtModerateNoise)
{
    Rng rng(1999);
    const double flip_p = 0.04;
    const int n = 4000;
    std::vector<uint8_t> bits(n);
    for (auto &b : bits)
        b = uint8_t(rng.below(2));

    // Uncoded channel: BER == flip probability.
    unsigned uncoded_errors = 0;
    for (int i = 0; i < n; ++i)
        uncoded_errors += rng.chance(flip_p) ? 1 : 0;

    // Coded channel at the same raw flip rate.
    auto coded = dsp::convEncode(bits);
    for (auto &c : coded) {
        if (rng.chance(flip_p))
            c ^= 1;
    }
    auto decoded = dsp::viterbiDecode(coded);
    unsigned coded_errors = 0;
    for (int i = 0; i < n; ++i)
        coded_errors += decoded[i] != bits[i];

    // d_free = 10: 4% raw BER decodes essentially clean.
    EXPECT_LT(coded_errors * 20, uncoded_errors);
}

TEST(CodingGain, InterleavingBreaksBurstErrors)
{
    // A burst that wipes out adjacent coded bits overwhelms the
    // decoder without interleaving but not with it.
    Rng rng(77);
    dsp::OfdmConfig cfg{dsp::Modulation::QPSK};
    dsp::Interleaver il(cfg.modulation);
    unsigned n_cbps = cfg.codedBitsPerSymbol();

    std::vector<uint8_t> bits(cfg.dataBitsPerSymbol() * 4);
    for (auto &b : bits)
        b = uint8_t(rng.below(2));
    auto coded = dsp::convEncode(bits);
    while (coded.size() % n_cbps)
        coded.push_back(0);

    auto burst_decode = [&](bool interleave) {
        std::vector<uint8_t> chan;
        for (size_t off = 0; off < coded.size(); off += n_cbps) {
            std::vector<uint8_t> blk(coded.begin() + off,
                                     coded.begin() + off + n_cbps);
            if (interleave)
                blk = il.interleave(blk);
            // Channel burst: flip 7 adjacent transmitted bits per
            // block — fatal when adjacent (spanning several trellis
            // stages against d_free = 10), harmless once the
            // interleaver spreads them to ~7% of the block.
            for (unsigned k = 20; k < 27; ++k)
                blk[k] ^= 1;
            if (interleave)
                blk = il.deinterleave(blk);
            chan.insert(chan.end(), blk.begin(), blk.end());
        }
        auto dec = dsp::viterbiDecode(chan, false);
        unsigned errors = 0;
        for (size_t i = 0; i < bits.size(); ++i)
            errors += dec[i] != bits[i];
        return errors;
    };

    unsigned with = burst_decode(true);
    unsigned without = burst_decode(false);
    EXPECT_LT(with, without);
    EXPECT_EQ(with, 0u); // spread errors are within d_free
}

// ---------------------------------------------------------------
// Failure injection on the architecture

TEST(FailureInjection, StrictModeCatchesScheduleSlips)
{
    // A schedule that captures one cycle too early (before the cwr)
    // is silently counted in measure mode and fatal in strict mode.
    for (bool strict : {false, true}) {
        ChipConfig cfg;
        cfg.dividers = {1};
        cfg.tiles_per_column = 1;
        cfg.strict = strict;
        Chip chip(cfg);
        chip.column(0).controller().loadProgram(isa::assemble(R"(
            movi r7, 9
            cwr r7
            halt
        )"));
        mapping::CommSchedule sched;
        sched.period = 64;
        sched.transfers = {{0, 0, 0, {0}, false}}; // cwr lands at 1
        chip.column(0).dou().load(
            mapping::compileSchedule(sched));
        if (strict) {
            EXPECT_THROW(chip.run(10'000), FatalError);
        } else {
            chip.run(10'000);
            EXPECT_GT(chip.fabric().stats().value("underruns"), 0u);
        }
    }
}

TEST(FailureInjection, OverrunDetectedWhenConsumerTooSlow)
{
    // Producer sends every 3 cycles; consumer drains every ~12: the
    // read buffer overruns and the fabric counts it.
    ChipConfig cfg;
    cfg.dividers = {1, 4};
    cfg.tiles_per_column = 1;
    Chip chip(cfg);
    chip.column(0).controller().loadProgram(isa::assemble(R"(
        movi r7, 1
        lsetup lc0, e, 20
        addi r7, 1
        cwr r7
        nop
    e:
        halt
    )"));
    chip.column(1).controller().loadProgram(isa::assemble(R"(
        movi r1, 0
        lsetup lc0, e, 20
        crd r0
        add r1, r1, r0
        nop
    e:
        halt
    )"));
    mapping::CommSchedule prod;
    prod.period = 3;
    prod.transfers = {{0, 0, 0, {}, true}};
    chip.column(0).dou().load(mapping::compileSchedule(prod));
    mapping::CommSchedule cons;
    cons.period = 1;
    cons.transfers = {{0, 0, -1, {0}, false}};
    chip.column(1).dou().load(mapping::compileSchedule(cons));

    chip.run(20'000);
    EXPECT_GT(chip.fabric().stats().value("overruns"), 0u);
}
