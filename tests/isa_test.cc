/** @file Encode/decode round-trip and validation tests for SyncBF. */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "isa/disasm.hh"
#include "isa/encoding.hh"

using namespace synchro;
using namespace synchro::isa;
namespace b = synchro::isa::build;

namespace
{

/** A representative instruction of every format and corner. */
std::vector<Inst>
representativeInsts()
{
    return {
        b::nop(),
        b::halt(),
        b::alu3(Opcode::ADD, 0, 1, 2),
        b::alu3(Opcode::SUB, 7, 6, 5),
        b::alu3(Opcode::MIN, 3, 3, 3),
        b::alu3(Opcode::SEL, 1, 2, 3),
        b::alu2(Opcode::NEG, 0, 7),
        b::alu2(Opcode::ABS, 7, 0),
        b::aluImm(Opcode::ADDI, 4, -32768),
        b::aluImm(Opcode::ADDI, 4, 32767),
        b::shiftImm(Opcode::LSLI, 2, 3, 31),
        b::shiftImm(Opcode::ASRI, 2, 3, 0),
        b::mac(Opcode::MAC, 0, 1, 2, HalfSel::LL),
        b::mac(Opcode::MAC, 1, 7, 6, HalfSel::HH),
        b::mac(Opcode::MSU, 1, 0, 0, HalfSel::LH),
        b::saa(0, 1, 2),
        b::aclr(1),
        b::aext(5, 1, 15),
        b::movi(0, -1),
        b::movi(7, 32767),
        b::movih(3, 0xffff),
        b::movpi(5, 0x7ffc),
        b::movp(0, 7),
        b::movrp(7, 0),
        b::paddi(2, -512),
        b::tid(6),
        b::load(Opcode::LDW, 1, 0, MemMode::Offset, 0),
        b::load(Opcode::LDW, 1, 0, MemMode::Offset, 508),
        b::load(Opcode::LDH, 2, 1, MemMode::PostMod, 2),
        b::load(Opcode::LDHU, 2, 1, MemMode::PostMod, -2),
        b::load(Opcode::LDB, 3, 2, MemMode::Offset, -512),
        b::load(Opcode::LDBU, 3, 2, MemMode::Offset, 511),
        b::store(Opcode::STW, 4, 3, MemMode::PostMod, 4),
        b::store(Opcode::STH, 5, 4, MemMode::Offset, 2),
        b::store(Opcode::STB, 6, 5, MemMode::PostMod, -1),
        b::cmp(Opcode::CMPEQ, 1, 2),
        b::cmp(Opcode::CMPLT, 7, 0),
        b::cmp(Opcode::CMPLE, 0, 7),
        b::cmp(Opcode::CMPLTU, 3, 4),
        b::jump(0),
        b::jump(511),
        b::jcc(100),
        b::jncc(200),
        b::lsetup(0, 10, 1),
        b::lsetup(1, 2047, 4095),
        b::cwr(7),
        b::crd(0),
    };
}

} // namespace

class RoundTrip : public ::testing::TestWithParam<size_t>
{
};

TEST_P(RoundTrip, EncodeDecodeIdentity)
{
    Inst inst = representativeInsts()[GetParam()];
    uint32_t word = encode(inst);
    Inst back = decode(word);
    EXPECT_EQ(inst, back) << disassemble(inst) << " != "
                          << disassemble(back);
}

TEST_P(RoundTrip, EncodingIsStable)
{
    Inst inst = representativeInsts()[GetParam()];
    EXPECT_EQ(encode(inst), encode(decode(encode(inst))));
}

INSTANTIATE_TEST_SUITE_P(AllFormats, RoundTrip,
                         ::testing::Range<size_t>(
                             0, representativeInsts().size()));

TEST(Encoding, OpcodeInTopByte)
{
    EXPECT_EQ(encode(b::halt()) >> 24, uint32_t(Opcode::HALT));
    EXPECT_EQ(encode(b::nop()), 0u);
}

TEST(Encoding, RejectsBadOperands)
{
    EXPECT_THROW(encode(b::alu3(Opcode::ADD, 8, 0, 0)), FatalError);
    EXPECT_THROW(encode(b::movpi(6, 0)), FatalError);
    EXPECT_THROW(encode(b::aluImm(Opcode::ADDI, 0, 40000)),
                 FatalError);
    EXPECT_THROW(encode(b::shiftImm(Opcode::LSLI, 0, 0, 32)),
                 FatalError);
    EXPECT_THROW(
        encode(b::load(Opcode::LDW, 0, 0, MemMode::Offset, 600)),
        FatalError);
    EXPECT_THROW(encode(b::lsetup(0, 10, 0)), FatalError);
    EXPECT_THROW(encode(b::lsetup(0, 4000, 5)), FatalError);
}

TEST(Encoding, DecodeRejectsUnknownOpcode)
{
    EXPECT_THROW(decode(0xff000000u), FatalError);
}

TEST(Encoding, SignedImmediatesSurvive)
{
    Inst i = decode(encode(b::movi(0, -32768)));
    EXPECT_EQ(i.imm, -32768);
    i = decode(encode(b::load(Opcode::LDW, 0, 0, MemMode::PostMod,
                              -512)));
    EXPECT_EQ(i.imm, -512);
    // MOVIH is unsigned: 0xffff must not sign-extend.
    i = decode(encode(b::movih(0, 0xffff)));
    EXPECT_EQ(i.imm, 0xffff);
}

TEST(Encoding, CommLaneTagsSurvive)
{
    // Tagged forms round-trip through the low nibble of F1R...
    for (int lane = 0; lane < 8; ++lane) {
        Inst i = decode(encode(b::crd(3, lane)));
        EXPECT_EQ(i.imm, lane + 1);
        i = decode(encode(b::cwr(7, lane)));
        EXPECT_EQ(i.imm, lane + 1);
    }
    // ...the untagged legacy forms stay untagged (imm == 0), and a
    // legacy encoding with a zero nibble decodes as untagged.
    EXPECT_EQ(decode(encode(b::crd(0))).imm, 0);
    EXPECT_EQ(decode(encode(b::cwr(7))).imm, 0);
    // Out-of-range lanes are rejected at validation.
    EXPECT_THROW(encode(b::crd(0, 8)), FatalError);
    EXPECT_THROW(encode(b::cwr(0, -2)), FatalError);
}

TEST(OpInfo, ControlFlagMatchesController)
{
    EXPECT_TRUE(opInfo(Opcode::JUMP).is_control);
    EXPECT_TRUE(opInfo(Opcode::LSETUP).is_control);
    EXPECT_TRUE(opInfo(Opcode::HALT).is_control);
    EXPECT_TRUE(opInfo(Opcode::NOP).is_control);
    EXPECT_FALSE(opInfo(Opcode::ADD).is_control);
    EXPECT_FALSE(opInfo(Opcode::CWR).is_control);
}

TEST(OpInfo, MemoryFlags)
{
    EXPECT_TRUE(opInfo(Opcode::LDW).reads_mem);
    EXPECT_TRUE(opInfo(Opcode::STB).writes_mem);
    EXPECT_FALSE(opInfo(Opcode::ADD).reads_mem);
}

TEST(Disasm, MatchesExpectedSyntax)
{
    EXPECT_EQ(disassemble(b::alu3(Opcode::ADD, 0, 1, 2)),
              "add r0, r1, r2");
    EXPECT_EQ(disassemble(b::mac(Opcode::MAC, 0, 1, 2, HalfSel::HL)),
              "mac a0, r1, r2, hl");
    EXPECT_EQ(disassemble(
                  b::load(Opcode::LDW, 1, 0, MemMode::PostMod, 4)),
              "ld.w r1, [p0]+4");
    EXPECT_EQ(disassemble(
                  b::load(Opcode::LDW, 1, 0, MemMode::Offset, -8)),
              "ld.w r1, [p0-8]");
    EXPECT_EQ(disassemble(b::lsetup(1, 12, 3)), "lsetup lc1, 12, 3");
    EXPECT_EQ(disassemble(b::crd(0)), "crd r0");
    EXPECT_EQ(disassemble(b::crd(0, 3)), "crd r0, 3");
    EXPECT_EQ(disassemble(b::cwr(7, 5)), "cwr r7, 5");
}
