/** @file Application-kernel tests: Viterbi, OFDM end-to-end, DCT,
 * motion estimation, SVD, Tomasi-Kanade, stereo correlation, AES. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/log.hh"
#include "common/rng.hh"
#include "dsp/aes.hh"
#include "dsp/dct.hh"
#include "dsp/motion.hh"
#include "dsp/ofdm.hh"
#include "dsp/stereo.hh"
#include "dsp/svd.hh"
#include "dsp/tomasi.hh"
#include "dsp/viterbi.hh"

using namespace synchro;
using namespace synchro::dsp;

// ---------------------------------------------------------------
// Convolutional code / Viterbi

TEST(ConvCode, EncoderRateAndTail)
{
    std::vector<uint8_t> bits{1, 0, 1, 1, 0};
    auto coded = convEncode(bits);
    EXPECT_EQ(coded.size(), 2 * (bits.size() + ConvK - 1));
    auto untailed = convEncode(bits, false);
    EXPECT_EQ(untailed.size(), 2 * bits.size());
}

TEST(ConvCode, KnownGenerators)
{
    // First output pair for input 1 from state 0: g0 = 133o, g1 =
    // 171o both have the MSB tap set, so both code bits are 1.
    auto coded = convEncode({1}, false);
    EXPECT_EQ(coded[0], 1);
    EXPECT_EQ(coded[1], 1);
    // All-zero input keeps the encoder silent.
    auto zeros = convEncode({0, 0, 0}, false);
    for (uint8_t b : zeros)
        EXPECT_EQ(b, 0);
}

TEST(Viterbi, DecodesCleanStream)
{
    Rng rng(101);
    std::vector<uint8_t> bits(200);
    for (auto &b : bits)
        b = uint8_t(rng.below(2));
    auto coded = convEncode(bits);
    EXPECT_EQ(viterbiDecode(coded), bits);
}

TEST(Viterbi, CorrectsScatteredErrors)
{
    Rng rng(55);
    std::vector<uint8_t> bits(300);
    for (auto &b : bits)
        b = uint8_t(rng.below(2));
    auto coded = convEncode(bits);
    // Flip one bit every 40 code bits — well within d_free = 10.
    for (size_t i = 7; i < coded.size(); i += 40)
        coded[i] ^= 1;
    EXPECT_EQ(viterbiDecode(coded), bits);
}

TEST(Viterbi, IsMaximumLikelihoodOnShortBlocks)
{
    // Exhaustive check: for every 6-bit message and a noisy receive,
    // the decoder's output must have minimal Hamming distance to the
    // received word among all candidate messages.
    Rng rng(77);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<uint8_t> msg(6);
        for (auto &b : msg)
            b = uint8_t(rng.below(2));
        auto coded = convEncode(msg);
        auto noisy = coded;
        for (auto &b : noisy) {
            if (rng.chance(0.05))
                b ^= 1;
        }
        auto decoded = viterbiDecode(noisy);

        auto dist = [&](const std::vector<uint8_t> &cand) {
            auto cc = convEncode(cand);
            unsigned d = 0;
            for (size_t i = 0; i < cc.size(); ++i)
                d += cc[i] != noisy[i];
            return d;
        };
        unsigned decoded_dist = dist(decoded);
        for (unsigned m = 0; m < 64; ++m) {
            std::vector<uint8_t> cand(6);
            for (unsigned i = 0; i < 6; ++i)
                cand[i] = uint8_t((m >> i) & 1);
            EXPECT_GE(dist(cand), decoded_dist)
                << "candidate " << m << " beats decoder";
        }
    }
}

TEST(Viterbi, AcsStageMatchesDecoder)
{
    // Running ACS stages manually and tracing back must agree with
    // viterbiDecode on the same input.
    Rng rng(31);
    std::vector<uint8_t> bits(40);
    for (auto &b : bits)
        b = uint8_t(rng.below(2));
    auto coded = convEncode(bits);

    std::vector<uint32_t> metrics(ConvStates, 1u << 20);
    metrics[0] = 0;
    std::vector<uint8_t> survivors;
    for (size_t t = 0; t < coded.size() / 2; ++t)
        viterbiAcsStage(metrics, survivors, coded[2 * t],
                        coded[2 * t + 1]);
    // Tail-terminated stream: state 0 has the best metric and it is
    // exactly the channel's error count (zero here).
    EXPECT_EQ(metrics[0], 0u);
    for (unsigned s = 1; s < ConvStates; ++s)
        EXPECT_GE(metrics[s], metrics[0]);
}

TEST(Viterbi, CrossTileWordsMatchTrellisStructure)
{
    // 1 tile: everything local. n tiles: block partition of 64
    // states; each tile needs the predecessor metrics that live
    // off-tile. The radix-2 trellis halves locality with each
    // doubling beyond 2 tiles.
    EXPECT_EQ(acsCrossTileWords(1), 0u);
    unsigned w8 = acsCrossTileWords(8);
    unsigned w16 = acsCrossTileWords(16);
    unsigned w32 = acsCrossTileWords(32);
    EXPECT_GT(w8, 0u);
    EXPECT_GT(w16, w8);
    EXPECT_GT(w32, w16);
    EXPECT_THROW(acsCrossTileWords(3), FatalError);
}

// ---------------------------------------------------------------
// OFDM end-to-end

class OfdmChain : public ::testing::TestWithParam<Modulation>
{
};

TEST_P(OfdmChain, CleanChannelRoundTrip)
{
    Rng rng(2024);
    OfdmConfig cfg{GetParam()};
    std::vector<uint8_t> bits(3 * cfg.dataBitsPerSymbol());
    for (auto &b : bits)
        b = uint8_t(rng.below(2));
    auto tx = ofdmTransmit(bits, cfg);
    auto rx = ofdmReceive(tx, cfg);
    ASSERT_GE(rx.size(), bits.size());
    rx.resize(bits.size());
    EXPECT_EQ(rx, bits);
}

TEST_P(OfdmChain, SurvivesModerateNoise)
{
    Rng rng(9);
    OfdmConfig cfg{GetParam()};
    std::vector<uint8_t> bits(5 * cfg.dataBitsPerSymbol());
    for (auto &b : bits)
        b = uint8_t(rng.below(2));
    auto tx = ofdmTransmit(bits, cfg);
    // SNR comfortable for each modulation (hard-decision decoding).
    double snr = 30.0;
    addAwgn(tx, snr, rng);
    auto rx = ofdmReceive(tx, cfg);
    rx.resize(bits.size());
    EXPECT_LT(bitErrorRate(bits, rx), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(AllModulations, OfdmChain,
                         ::testing::Values(Modulation::BPSK,
                                           Modulation::QPSK,
                                           Modulation::QAM16,
                                           Modulation::QAM64));

TEST(Ofdm, BerDegradesMonotonicallyWithNoise)
{
    Rng rng(123);
    OfdmConfig cfg{Modulation::QAM16};
    std::vector<uint8_t> bits(20 * cfg.dataBitsPerSymbol());
    for (auto &b : bits)
        b = uint8_t(rng.below(2));
    auto clean = ofdmTransmit(bits, cfg);

    double prev_ber = -1.0;
    for (double snr : {25.0, 15.0, 5.0}) {
        auto tx = clean;
        Rng noise_rng(42);
        addAwgn(tx, snr, noise_rng);
        auto rx = ofdmReceive(tx, cfg);
        rx.resize(bits.size());
        double ber = bitErrorRate(bits, rx);
        EXPECT_GE(ber, prev_ber);
        prev_ber = ber;
    }
    EXPECT_GT(prev_ber, 0.01); // 5 dB with 16-QAM must show errors
}

TEST(Ofdm, CarrierLayoutMatchesStandard)
{
    EXPECT_EQ(dataCarrierBins().size(), 48u);
    EXPECT_EQ(pilotBins().size(), 4u);
    // DC bin 0 unused; pilots at +/-7, +/-21 (mod 64).
    for (unsigned b : dataCarrierBins()) {
        EXPECT_NE(b, 0u);
        for (unsigned p : pilotBins())
            EXPECT_NE(b, p);
    }
    EXPECT_EQ(pilotBins()[0], unsigned((64 - 21) % 64));
}

// ---------------------------------------------------------------
// DCT / quantization

TEST(Dct, FixedPointTracksReference)
{
    Rng rng(4);
    Block8x8 in{};
    for (auto &v : in)
        v = int16_t(rng.range(-128, 127));
    auto ref = dct8x8Ref(in);
    auto fix = dct8x8(in);
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_NEAR(double(fix[i]), ref[i], 2.0) << i;
}

TEST(Dct, DcCoefficientIsScaledMean)
{
    Block8x8 in{};
    in.fill(100);
    auto c = dct8x8(in);
    // Orthonormal DCT: DC = 8 * mean = 800; everything else ~0.
    EXPECT_NEAR(c[0], 800, 2);
    for (unsigned i = 1; i < 64; ++i)
        EXPECT_NEAR(c[i], 0, 2) << i;
}

TEST(Dct, RoundTripPsnr)
{
    Rng rng(8);
    double mse = 0;
    const int blocks = 20;
    for (int b = 0; b < blocks; ++b) {
        Block8x8 in{};
        for (auto &v : in)
            v = int16_t(rng.range(-255, 255));
        auto rec = idct8x8(dct8x8(in));
        for (unsigned i = 0; i < 64; ++i) {
            double d = double(rec[i]) - in[i];
            mse += d * d;
        }
    }
    mse /= blocks * 64;
    double psnr = 10.0 * std::log10(510.0 * 510.0 / mse);
    EXPECT_GT(psnr, 40.0); // near-transparent forward+inverse
}

TEST(Dct, QuantizeRoundTripBounded)
{
    Rng rng(12);
    for (int qp : {1, 4, 8, 16}) {
        Block8x8 coef{};
        for (auto &v : coef)
            v = int16_t(rng.range(-1000, 1000));
        auto rec = dequantize(quantize(coef, qp), qp);
        for (unsigned i = 0; i < 64; ++i) {
            EXPECT_LE(std::abs(int(rec[i]) - int(coef[i])), 2 * qp)
                << "qp " << qp;
        }
    }
}

TEST(Dct, QuantizerDeadZoneAtZero)
{
    Block8x8 coef{};
    coef[5] = 7;
    coef[9] = -7;
    auto q = quantize(coef, 4); // step 8: |7| quantizes to 0
    EXPECT_EQ(q[5], 0);
    EXPECT_EQ(q[9], 0);
}

TEST(Dct, ZigzagIsPermutation)
{
    const auto &o = zigzagOrder();
    std::array<bool, 64> hit{};
    for (uint8_t idx : o) {
        ASSERT_LT(idx, 64);
        EXPECT_FALSE(hit[idx]);
        hit[idx] = true;
    }
    // Start of the canonical scan: 0, 1, 8, 16, 9, 2, ...
    EXPECT_EQ(o[0], 0);
    EXPECT_EQ(o[1], 1);
    EXPECT_EQ(o[2], 8);
    EXPECT_EQ(o[3], 16);
    EXPECT_EQ(o[4], 9);
    EXPECT_EQ(o[5], 2);
}

TEST(Dct, ZigzagRoundTrip)
{
    Rng rng(6);
    Block8x8 in{};
    for (auto &v : in)
        v = int16_t(rng.range(-99, 99));
    EXPECT_EQ(unzigzag(zigzag(in)), in);
}

// ---------------------------------------------------------------
// Motion estimation

namespace
{

/** A textured random frame and a translated copy of it. */
std::pair<Image, Image>
translatedPair(int dx, int dy, unsigned w = 64, unsigned h = 64)
{
    Rng rng(99);
    Image ref(w, h);
    for (unsigned y = 0; y < h; ++y)
        for (unsigned x = 0; x < w; ++x)
            ref(x, y) = uint8_t(rng.below(256));
    Image cur(w, h);
    for (unsigned y = 0; y < h; ++y)
        for (unsigned x = 0; x < w; ++x)
            cur(x, y) = ref.at(int(x) + dx, int(y) + dy);
    return {cur, ref};
}

} // namespace

TEST(Motion, SadZeroOnIdenticalBlocks)
{
    auto [cur, ref] = translatedPair(0, 0);
    EXPECT_EQ(blockSad(cur, ref, 16, 16, 0, 0), 0u);
    EXPECT_GT(blockSad(cur, ref, 16, 16, 1, 0), 0u);
}

TEST(Motion, FullSearchFindsExactTranslation)
{
    for (auto [dx, dy] : {std::pair{3, -2}, {-5, 4}, {0, 7}}) {
        auto [cur, ref] = translatedPair(dx, dy);
        MotionVector mv = fullSearch(cur, ref, 24, 24, 7);
        EXPECT_EQ(mv.dx, dx);
        EXPECT_EQ(mv.dy, dy);
        EXPECT_EQ(mv.sad, 0u);
    }
}

TEST(Motion, ThreeStepFindsTranslationOnSmoothField)
{
    // TSS assumes a unimodal SAD surface, which white noise violates;
    // real video is locally smooth, so test on a smooth field where
    // SAD grows monotonically with vector error.
    const unsigned w = 64, h = 64;
    Image ref(w, h);
    for (unsigned y = 0; y < h; ++y)
        for (unsigned x = 0; x < w; ++x)
            ref(x, y) = uint8_t(128 + 60 * std::sin(x / 5.0) +
                                50 * std::cos(y / 6.0));
    const int dx = 4, dy = -3;
    Image cur(w, h);
    for (unsigned y = 0; y < h; ++y)
        for (unsigned x = 0; x < w; ++x)
            cur(x, y) = ref.at(int(x) + dx, int(y) + dy);

    MotionVector mv = threeStepSearch(cur, ref, 24, 24);
    EXPECT_EQ(mv.sad, 0u);
    EXPECT_EQ(mv.dx, dx);
    EXPECT_EQ(mv.dy, dy);
}

TEST(Motion, ThreeStepCostsFarFewerSads)
{
    // 3SS evaluates 1 + 3*8 = 25 candidates vs 225 for +/-7 full
    // search — the classic speed/quality trade-off; here we just
    // verify both return valid vectors inside the range.
    auto [cur, ref] = translatedPair(1, 1);
    MotionVector f = fullSearch(cur, ref, 16, 16, 7);
    MotionVector t = threeStepSearch(cur, ref, 16, 16);
    EXPECT_LE(std::abs(t.dx), 7);
    EXPECT_LE(std::abs(t.dy), 7);
    EXPECT_LE(f.sad, t.sad); // full search is never worse
}

// ---------------------------------------------------------------
// SVD

TEST(Svd, DiagonalMatrix)
{
    Matrix a(3, 3);
    a(0, 0) = 3;
    a(1, 1) = -2; // sign absorbed into U
    a(2, 2) = 1;
    auto r = jacobiSvd(a);
    ASSERT_EQ(r.s.size(), 3u);
    EXPECT_NEAR(r.s[0], 3.0, 1e-9);
    EXPECT_NEAR(r.s[1], 2.0, 1e-9);
    EXPECT_NEAR(r.s[2], 1.0, 1e-9);
}

TEST(Svd, ReconstructsRandomMatrices)
{
    Rng rng(2);
    for (int trial = 0; trial < 5; ++trial) {
        unsigned m = 6 + unsigned(rng.below(5));
        unsigned n = 3 + unsigned(rng.below(3));
        Matrix a(m, n);
        for (unsigned r = 0; r < m; ++r)
            for (unsigned c = 0; c < n; ++c)
                a(r, c) = rng.gauss();
        auto svd = jacobiSvd(a);
        // Rebuild A = U diag(S) V^T.
        Matrix us = svd.u;
        for (unsigned r = 0; r < m; ++r)
            for (unsigned c = 0; c < n; ++c)
                us(r, c) *= svd.s[c];
        Matrix rec = us * svd.v.transposed();
        for (unsigned r = 0; r < m; ++r)
            for (unsigned c = 0; c < n; ++c)
                EXPECT_NEAR(rec(r, c), a(r, c), 1e-8);
    }
}

TEST(Svd, SingularValuesDescendingAndOrthogonality)
{
    Rng rng(44);
    Matrix a(8, 4);
    for (unsigned r = 0; r < 8; ++r)
        for (unsigned c = 0; c < 4; ++c)
            a(r, c) = rng.gauss();
    auto svd = jacobiSvd(a);
    for (size_t i = 0; i + 1 < svd.s.size(); ++i)
        EXPECT_GE(svd.s[i], svd.s[i + 1]);
    // V^T V = I.
    Matrix vtv = svd.v.transposed() * svd.v;
    for (unsigned r = 0; r < 4; ++r)
        for (unsigned c = 0; c < 4; ++c)
            EXPECT_NEAR(vtv(r, c), r == c ? 1.0 : 0.0, 1e-9);
}

TEST(Svd, RejectsWideMatrices)
{
    Matrix a(2, 5);
    EXPECT_THROW(jacobiSvd(a), FatalError);
}

// ---------------------------------------------------------------
// Tomasi-Kanade features + stereo correlation

namespace
{

/** A frame with bright blobs at known positions. */
Image
blobImage(const std::vector<std::pair<unsigned, unsigned>> &centers,
          unsigned w = 96, unsigned h = 96)
{
    Image img(w, h, 20);
    for (auto [cx, cy] : centers) {
        for (int j = -2; j <= 2; ++j)
            for (int i = -2; i <= 2; ++i) {
                int x = int(cx) + i, y = int(cy) + j;
                if (x >= 0 && y >= 0 && x < int(w) && y < int(h))
                    img(unsigned(x), unsigned(y)) = 230;
            }
    }
    return img;
}

} // namespace

TEST(Tomasi, FindsCornersNotFlats)
{
    Image img = blobImage({{30, 30}, {60, 70}});
    auto resp = minEigImage(img);
    // Response near a blob corner far exceeds the flat background.
    double at_corner = resp[28 * 96 + 28];
    double at_flat = resp[10 * 96 + 80];
    EXPECT_GT(at_corner, 100 * std::max(at_flat, 1e-12));
}

TEST(Tomasi, ExtractsTheBlobs)
{
    std::vector<std::pair<unsigned, unsigned>> centers{
        {20, 20}, {70, 30}, {40, 60}, {80, 80}};
    Image img = blobImage(centers);
    auto feats = extractFeatures(img, 50, 0.05, 6);
    ASSERT_GE(feats.size(), centers.size());
    for (auto [cx, cy] : centers) {
        bool found = false;
        for (const auto &f : feats) {
            long dx = long(f.x) - long(cx);
            long dy = long(f.y) - long(cy);
            if (dx * dx + dy * dy <= 5 * 5)
                found = true;
        }
        EXPECT_TRUE(found) << "blob at " << cx << "," << cy;
    }
}

TEST(Tomasi, MinDistanceEnforced)
{
    Image img = blobImage({{40, 40}});
    auto feats = extractFeatures(img, 100, 0.01, 10);
    for (size_t i = 0; i < feats.size(); ++i)
        for (size_t j = i + 1; j < feats.size(); ++j) {
            long dx = long(feats[i].x) - long(feats[j].x);
            long dy = long(feats[i].y) - long(feats[j].y);
            EXPECT_GE(dx * dx + dy * dy, 100);
        }
}

TEST(Stereo, MatchesShiftedFeatures)
{
    // Right image = left shifted by a disparity of 6 pixels.
    std::vector<std::pair<unsigned, unsigned>> lpts{
        {30, 30}, {60, 40}, {45, 70}};
    std::vector<std::pair<unsigned, unsigned>> rpts;
    for (auto [x, y] : lpts)
        rpts.push_back({x - 6, y});
    Image left = blobImage(lpts);
    Image right = blobImage(rpts);

    auto lf = extractFeatures(left, 20, 0.05, 6);
    auto rf = extractFeatures(right, 20, 0.05, 6);
    ASSERT_GE(lf.size(), 3u);
    ASSERT_GE(rf.size(), 3u);

    auto matches = svdCorrelate(left, lf, right, rf, 30.0, 3);
    ASSERT_GE(matches.size(), 3u);
    auto disp = disparities(lf, rf, matches);
    int close = 0;
    for (double d : disp) {
        if (std::abs(d - 6.0) < 2.0)
            ++close;
    }
    EXPECT_GE(close, 3);
}

TEST(Stereo, OneToOneMatching)
{
    std::vector<Feature> l{{10, 10, 1}, {50, 50, 1}};
    std::vector<Feature> r{{12, 10, 1}, {52, 50, 1}};
    auto m = svdCorrelate(l, r);
    ASSERT_EQ(m.size(), 2u);
    // Each side used at most once.
    EXPECT_NE(m[0].left, m[1].left);
    EXPECT_NE(m[0].right, m[1].right);
    EXPECT_EQ(m[0].right, m[0].left); // nearest pairing
}

TEST(Stereo, EmptyInputsGiveNoMatches)
{
    std::vector<Feature> none;
    std::vector<Feature> one{{5, 5, 1}};
    EXPECT_TRUE(svdCorrelate(none, one).empty());
    EXPECT_TRUE(svdCorrelate(one, none).empty());
}

// ---------------------------------------------------------------
// AES

TEST(Aes, Fips197KnownAnswer)
{
    // FIPS-197 Appendix B.
    AesKey key{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab,
               0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
    AesBlock plain{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                   0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
    AesBlock expected{0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
                      0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32};
    Aes128 aes(key);
    EXPECT_EQ(aes.encrypt(plain), expected);
    EXPECT_EQ(aes.decrypt(expected), plain);
}

TEST(Aes, EncryptDecryptRandomRoundTrip)
{
    Rng rng(88);
    AesKey key{};
    for (auto &b : key)
        b = uint8_t(rng.below(256));
    Aes128 aes(key);
    for (int trial = 0; trial < 20; ++trial) {
        AesBlock p{};
        for (auto &b : p)
            b = uint8_t(rng.below(256));
        EXPECT_EQ(aes.decrypt(aes.encrypt(p)), p);
    }
}

TEST(Aes, CbcMacDetectsTampering)
{
    Rng rng(3);
    AesKey key{};
    for (auto &b : key)
        b = uint8_t(rng.below(256));
    Aes128 aes(key);
    std::vector<uint8_t> msg(100);
    for (auto &b : msg)
        b = uint8_t(rng.below(256));
    AesBlock mac = aes.cbcMac(msg);
    msg[37] ^= 0x10;
    EXPECT_NE(aes.cbcMac(msg), mac);
}

TEST(Aes, CbcMacDeterministic)
{
    AesKey key{};
    Aes128 aes(key);
    std::vector<uint8_t> msg{1, 2, 3};
    EXPECT_EQ(aes.cbcMac(msg), aes.cbcMac(msg));
    EXPECT_NE(aes.cbcMac({1, 2, 3}), aes.cbcMac({1, 2, 4}));
}
