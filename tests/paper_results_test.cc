/** @file Paper-value regression tests: every headline claim of the
 * Synchroscalar paper asserted against the model with tolerances.
 * EXPERIMENTS.md catalogues the same numbers in prose. */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "apps/paper_workloads.hh"
#include "apps/platforms.hh"
#include "dsp/viterbi.hh"
#include "mapping/optimizer.hh"
#include "power/vf_model.hh"

using namespace synchro;
using namespace synchro::apps;
using namespace synchro::mapping;
using namespace synchro::power;

namespace
{

SystemPowerModel &
model()
{
    static SystemPowerModel m;
    return m;
}

/** Per-application (multi-V, single-V) totals over Table 4 rows. */
std::pair<double, double>
appTotals(const std::string &app)
{
    double vmax = 0;
    for (const auto &row : paperTable4()) {
        if (row.app == app)
            vmax = std::max(vmax, row.v);
    }
    double multi = 0, single = 0;
    for (const auto &row : paperTable4()) {
        if (row.app != app)
            continue;
        DomainLoad load{row.algo, row.tiles, row.f_mhz, row.v,
                        calibrateTransfers(row, model())};
        multi += model().loadPower(load).total();
        single += model()
                      .loadPower(model().atVoltage(load, vmax))
                      .total();
    }
    return {multi, single};
}

} // namespace

// --- Table 4 ---------------------------------------------------

class Table4Row : public ::testing::TestWithParam<size_t>
{
};

TEST_P(Table4Row, PowerWithinTolerance)
{
    const PaperAlgoRow &row = paperTable4()[GetParam()];
    DomainLoad load{row.algo, row.tiles, row.f_mhz, row.v,
                    calibrateTransfers(row, model())};
    double p = model().loadPower(load).total();
    // Rows whose published power sits below the tile+leakage floor
    // are internally inconsistent in the paper (MPEG4 DCT rows);
    // there the model must still be within 80% (and we document the
    // exact deltas in EXPERIMENTS.md).
    bool inconsistent = calibrateTransfers(row, model()) == 0.0 &&
                        p > row.paper_power_mw;
    double tol = inconsistent ? 0.8 : 0.02;
    EXPECT_NEAR(p, row.paper_power_mw, tol * row.paper_power_mw)
        << row.app << " / " << row.algo;
}

INSTANTIATE_TEST_SUITE_P(AllRows, Table4Row,
                         ::testing::Range<size_t>(
                             0, paperTable4().size()));

TEST(Table4, ConsistentAppTotalsMatchPaper)
{
    // DDC / SV / 802.11a / MPEG4 totals are self-consistent in the
    // paper; ours must land within a few percent.
    for (const auto &t : paperAppTotals()) {
        if (t.app == "802.11a+AES")
            continue; // the paper's total contradicts its own rows
        auto [multi, single] = appTotals(t.app);
        EXPECT_NEAR(multi, t.total_mw, 0.08 * t.total_mw) << t.app;
        EXPECT_NEAR(single, t.single_v_mw, 0.08 * t.single_v_mw)
            << t.app;
    }
}

TEST(Table4, SavingsRangeMatchesAbstract)
{
    // Abstract: "frequency-voltage scaling ... provides between
    // 3-32% power savings in our application suite" (MPEG4-QCIF's
    // 0% is the published floor in Table 4 itself).
    double max_savings = 0;
    for (const auto &name : paperAppNames()) {
        auto [multi, single] = appTotals(name);
        double savings = 100.0 * (single - multi) / single;
        EXPECT_GE(savings, -1e-9) << name;
        max_savings = std::max(max_savings, savings);
        if (name == "802.11a")
            EXPECT_NEAR(savings, 3.0, 2.0); // the 3% endpoint
        if (name == "SV")
            EXPECT_NEAR(savings, 32.0, 2.0); // the 32% endpoint
    }
    EXPECT_NEAR(max_savings, 32.0, 2.0);
}

TEST(Table4, ComponentSavingsUpTo81Percent)
{
    // Section 5.1: "Multiple voltages allow power savings of up to
    // 81% for application components" (the De-mod row: 83% in the
    // table; abstract says 81%).
    double best = 0;
    for (const auto &row : paperTable4()) {
        double vmax = 0;
        for (const auto &r2 : paperTable4()) {
            if (r2.app == row.app)
                vmax = std::max(vmax, r2.v);
        }
        DomainLoad load{row.algo, row.tiles, row.f_mhz, row.v,
                        calibrateTransfers(row, model())};
        double multi = model().loadPower(load).total();
        double single =
            model().loadPower(model().atVoltage(load, vmax)).total();
        best = std::max(best,
                        100.0 * (single - multi) / single);
    }
    EXPECT_GE(best, 75.0);
    EXPECT_LE(best, 90.0);
}

// --- Table 3 ---------------------------------------------------

TEST(Table3, AsicGapWithinPaperBand)
{
    // "power efficiencies within 8-30X of known ASIC
    // implementations" — checked on the full-rate ASIC comparators.
    std::map<std::string, double> sync_energy;
    for (const auto &row : paperTable4()) {
        DomainLoad load{row.algo, row.tiles, row.f_mhz, row.v,
                        calibrateTransfers(row, model())};
        sync_energy[row.app] +=
            model().loadPower(load).total() * 1e-3;
    }
    for (auto &[app, p] : sync_energy)
        p = p / appSampleRate(app) * 1e9; // nJ per unit

    // DDC vs Graychip: the paper's own arithmetic gives ~9.7x.
    double ddc_ratio = 0;
    for (const auto &p : paperTable3Platforms()) {
        if (p.platform == "Graychip GC4014")
            ddc_ratio = sync_energy["DDC"] / energyPerUnitNj(p);
    }
    EXPECT_GT(ddc_ratio, 8.0);
    EXPECT_LT(ddc_ratio, 12.0);

    // 802.11a vs the single-chip PHY ASICs (Atheros/IMEC/NEC/Su).
    for (const auto &p : paperTable3Platforms()) {
        if (p.app != "802.11a" || p.kind != PlatformKind::Asic)
            continue;
        double r = sync_energy["802.11a"] / energyPerUnitNj(p);
        EXPECT_GT(r, 5.0) << p.platform;
        EXPECT_LT(r, 35.0) << p.platform;
    }
}

TEST(Table3, BlackfinDdcFactorOf60)
{
    // Section 5.5: "38.0 nW/sample [vs] 2478 nW/sample - a factor
    // of 60 difference".
    double sync_mw = 0;
    for (const auto &row : paperTable4()) {
        if (row.app != "DDC")
            continue;
        DomainLoad load{row.algo, row.tiles, row.f_mhz, row.v,
                        calibrateTransfers(row, model())};
        sync_mw += model().loadPower(load).total();
    }
    double sync_nw_per_sample = sync_mw * 1e-3 / 64e6 * 1e9;
    EXPECT_NEAR(sync_nw_per_sample, 38.0, 1.5);
    for (const auto &p : paperTable3Platforms()) {
        if (p.app == "DDC" && p.platform == "Blackfin 600 MHz") {
            double factor =
                energyPerUnitNj(p) / sync_nw_per_sample;
            EXPECT_NEAR(factor, 60.0, 8.0);
        }
    }
}

// --- Figures 7-10 ----------------------------------------------

TEST(Fig7, DiminishingReturnsShape)
{
    VfModel vf;
    SupplyLevels levels(vf);
    Optimizer opt(model(), levels);
    // MPEG4-CIF has four feasible sweep points: power must fall
    // monotonically while the bus+leak fraction grows.
    AppWorkload app = appWorkload("MPEG4-CIF", model());
    double prev_power = 1e300, prev_dark_frac = 0;
    for (unsigned budget : {8u, 12u, 20u, 36u}) {
        auto m = opt.mapWithBudget(app, budget);
        ASSERT_TRUE(m.has_value()) << budget;
        double total = m->power.total();
        double dark = (m->power.bus_mw + m->power.leak_mw) / total;
        EXPECT_LT(total, prev_power) << budget;
        EXPECT_GE(dark, prev_dark_frac - 0.02) << budget;
        prev_power = total;
        prev_dark_frac = dark;
    }
}

TEST(Fig8, BusWidthKneeAt256)
{
    // The Figure 8 stage model: 16 tiles at 256 bits must land on
    // the paper's 540 MHz operating point and the knee must sit at
    // 256 bits (cf. bench_fig8_viterbi_bus).
    auto stage_cycles = [](unsigned tiles, unsigned bits) {
        double compute = 1.4 * (64.0 / tiles) + 4.4;
        double reuse = std::clamp(tiles / 8.0, 1.0, 4.0);
        double comm = double(dsp::acsCrossTileWords(tiles)) /
                      ((bits / 32.0) * reuse);
        return std::max(compute, comm);
    };
    EXPECT_NEAR(stage_cycles(16, 256) * 54e6 / 1e6, 540.0, 1.0);
    double gain_256 = stage_cycles(16, 128) - stage_cycles(16, 256);
    double gain_512 = stage_cycles(16, 256) - stage_cycles(16, 512);
    EXPECT_GT(gain_256, 4.0 * std::max(gain_512, 0.01));
}

TEST(Fig10, MpegCrossoverNearPaperValue)
{
    VfModel vf;
    SupplyLevels levels(vf);
    SystemPowerModel base;
    Optimizer opt(base, levels);
    AppWorkload app = appWorkload("MPEG4-CIF", base);
    auto m12 = opt.mapWithBudget(app, 12);
    auto m36 = opt.mapWithBudget(app, 36);
    ASSERT_TRUE(m12 && m36);
    std::vector<unsigned> a12, a36;
    for (const auto &l : m12->loads)
        a12.push_back(l.tiles);
    for (const auto &l : m36->loads)
        a36.push_back(l.tiles);

    auto power_at = [&](const std::vector<unsigned> &alloc,
                        double ma) {
        SystemPowerModel m;
        m.setLeakMaPerTile(ma);
        Optimizer o(m, levels);
        AppWorkload a = appWorkload("MPEG4-CIF", m);
        return o.mapWithTiles(a, alloc)->power.total();
    };
    // At the calibrated 1.5 mA the 36-tile structure wins; at the
    // all-low-Vt 59.3 mA the 12-tile structure wins; the cross-over
    // lies in between (paper: 14.8 mA; our model: same decade).
    EXPECT_LT(power_at(a36, 1.5), power_at(a12, 1.5));
    EXPECT_GT(power_at(a36, 59.3), power_at(a12, 59.3));
    double cross = -1;
    for (double ma = 1.5; ma <= 59.3; ma += 0.1) {
        if (power_at(a36, ma) > power_at(a12, ma)) {
            cross = ma;
            break;
        }
    }
    EXPECT_GT(cross, 5.0);
    EXPECT_LT(cross, 40.0);
}

TEST(LeakageSweep, ParallelStructuresDegradeFaster)
{
    // Figure 9/10's qualitative law: d(power)/d(leak) scales with
    // powered tiles x voltage.
    VfModel vf;
    SupplyLevels levels(vf);
    SystemPowerModel base;
    Optimizer opt(base, levels);
    AppWorkload app = appWorkload("802.11a", base);
    auto m20 = opt.mapWithBudget(app, 20);
    auto m36 = opt.mapWithBudget(app, 36);
    ASSERT_TRUE(m20 && m36);
    auto slope = [&](const AppMapping &m) {
        double s = 0;
        for (const auto &l : m.loads)
            s += double(l.tiles) * l.v;
        return s; // mW per mA of per-tile leakage
    };
    EXPECT_GT(slope(*m36), slope(*m20));
}

// --- Calibration sanity -----------------------------------------

TEST(Calibration, MixerTrafficIsOneWordPerSample)
{
    // The calibrated mixer bus rate should reconstruct ~64e6
    // transfers/s — one 32-bit bus word per input sample.
    for (const auto &row : paperTable4()) {
        if (row.app == "DDC" && row.algo == "Digital Mixer") {
            double t = calibrateTransfers(row, model());
            EXPECT_NEAR(t, 64e6, 8e6);
        }
        if (row.app == "802.11a" && row.algo == "Viterbi ACS") {
            double t = calibrateTransfers(row, model());
            EXPECT_NEAR(t, 3.66e9, 0.2e9);
        }
    }
}
