/** @file Design-space explorer: variant enumeration feasibility,
 * measured Pareto frontiers over heterogeneous SimSession batches,
 * optimizer agreement, and determinism across pool widths. */

#include <gtest/gtest.h>

#include <cmath>

#include "apps/app_registry.hh"
#include "apps/motion_runner.hh"
#include "apps/pipeline_runner.hh"
#include "common/log.hh"
#include "mapping/explorer.hh"

using namespace synchro;
using namespace synchro::mapping;

namespace
{

/** A small, fast DDC instance for exploration tests. */
apps::DdcPipelineParams
smallDdc()
{
    apps::DdcPipelineParams p;
    p.samples = 512;
    return p;
}

ExploreOptions
quickOptions()
{
    ExploreOptions opt;
    opt.rate_factors = {0.8, 1.2};
    opt.divider_steps = 1;
    return opt;
}

} // namespace

TEST(Explorer, EnumeratesFeasibleVariantsAroundBaseline)
{
    auto app =
        apps::AppRegistry::instance().at("ddc").explorable(
            smallDdc());
    power::VfModel vf;
    power::SupplyLevels levels(vf);
    auto variants = enumeratePlanVariants(
        app.baseline, app.iterations_per_sec, levels, {});

    ASSERT_FALSE(variants.empty());
    EXPECT_EQ(variants[0].label, "baseline");
    EXPECT_EQ(variants[0].plan.placements.size(),
              app.baseline.placements.size());

    // More than the baseline alone, and every variant feasible by
    // construction: the divided clock covers the demand and the
    // ZORM's useful fraction closes the gap exactly.
    EXPECT_GT(variants.size(), 1u);
    for (const auto &v : variants) {
        EXPECT_GT(v.iterations_per_sec, 0.0) << v.label;
        for (const auto &p : v.plan.placements) {
            EXPECT_GE(p.f_column_mhz + 1e-9, p.f_needed_mhz)
                << v.label << " " << p.actor;
            EXPECT_GT(p.v, 0.0) << v.label << " " << p.actor;
            EXPECT_NEAR(p.f_column_mhz * p.zorm.usefulFraction(),
                        p.f_needed_mhz, 1e-3)
                << v.label << " " << p.actor;
            EXPECT_DOUBLE_EQ(p.f_column_mhz,
                             v.plan.ref_freq_mhz / p.divider)
                << v.label << " " << p.actor;
        }
    }
}

TEST(Explorer, DividerVariantsRaiseOnePlacementsClock)
{
    auto app =
        apps::AppRegistry::instance().at("ddc").explorable(
            smallDdc());
    power::VfModel vf;
    power::SupplyLevels levels(vf);
    ExploreOptions opt;
    opt.rate_factors = {}; // divider axis only
    opt.divider_steps = 2;
    auto variants = enumeratePlanVariants(
        app.baseline, app.iterations_per_sec, levels, opt);

    ASSERT_GT(variants.size(), 1u);
    for (size_t i = 1; i < variants.size(); ++i) {
        const auto &v = variants[i];
        unsigned changed = 0;
        for (size_t j = 0; j < v.plan.placements.size(); ++j) {
            const auto &vp = v.plan.placements[j];
            const auto &bp = app.baseline.placements[j];
            EXPECT_DOUBLE_EQ(vp.f_needed_mhz, bp.f_needed_mhz)
                << v.label;
            if (vp.divider != bp.divider) {
                ++changed;
                EXPECT_LT(vp.divider, bp.divider) << v.label;
                EXPECT_GE(vp.v, bp.v) << v.label;
            }
        }
        EXPECT_EQ(changed, 1u) << v.label;
    }
}

TEST(Explorer, MeasuredFrontierIsBitExactAndAgrees)
{
    auto res = explorePlans(
        apps::AppRegistry::instance().at("ddc").explorable(
            smallDdc()),
        quickOptions());

    EXPECT_EQ(res.app, "ddc");
    ASSERT_FALSE(res.points.empty());
    ASSERT_FALSE(res.frontier.empty());
    EXPECT_TRUE(res.all_bit_exact);
    EXPECT_TRUE(res.agreement);
    EXPECT_LE(res.baseline_gap_pct, 10.0);

    // Every measured point matched its golden; every frontier point
    // survived the EventQueue cross-check.
    for (const auto &pt : res.points) {
        if (pt.ran)
            EXPECT_TRUE(pt.bit_exact) << pt.label << ": "
                                      << pt.failure;
        if (pt.on_frontier)
            EXPECT_TRUE(pt.crosschecked) << pt.label;
    }

    // The frontier is a proper Pareto set: ascending achieved rate,
    // ascending power, and nothing dominated inside it.
    for (size_t k = 1; k < res.frontier.size(); ++k) {
        const auto &lo = res.points[res.frontier[k - 1]];
        const auto &hi = res.points[res.frontier[k]];
        EXPECT_LT(lo.achieved_items_per_sec,
                  hi.achieved_items_per_sec);
        EXPECT_LT(lo.total_mw, hi.total_mw);
    }

    // The baseline is the first point and measurable.
    const auto &base = res.points[res.baseline_index];
    EXPECT_EQ(base.label, "baseline");
    EXPECT_TRUE(base.ran);
    EXPECT_GT(base.total_mw, 0.0);

    // No point with at least the baseline's rate undercuts it by
    // more than the agreement gap reports.
    for (size_t i : res.frontier) {
        const auto &pt = res.points[i];
        if (pt.achieved_items_per_sec >=
            base.achieved_items_per_sec) {
            EXPECT_GE(pt.total_mw * (1 + res.baseline_gap_pct / 100 +
                                     1e-9),
                      base.total_mw);
        }
    }
}

TEST(Explorer, DeterministicAcrossPoolWidths)
{
    ExploreOptions serial = quickOptions();
    serial.threads = 1;
    ExploreOptions parallel = quickOptions();
    parallel.threads = 4;

    const apps::AppDescriptor &ddc =
        apps::AppRegistry::instance().at("ddc");
    auto a = explorePlans(ddc.explorable(smallDdc()), serial);
    auto b = explorePlans(ddc.explorable(smallDdc()), parallel);

    ASSERT_EQ(a.points.size(), b.points.size());
    for (size_t i = 0; i < a.points.size(); ++i) {
        EXPECT_EQ(a.points[i].label, b.points[i].label);
        EXPECT_EQ(a.points[i].ticks, b.points[i].ticks) << i;
        EXPECT_EQ(a.points[i].on_frontier, b.points[i].on_frontier)
            << i;
        EXPECT_DOUBLE_EQ(a.points[i].total_mw, b.points[i].total_mw)
            << i;
    }
    EXPECT_EQ(a.frontier, b.frontier);
    EXPECT_DOUBLE_EQ(a.baseline_gap_pct, b.baseline_gap_pct);
}

TEST(Explorer, MotionShardVariantsWidenTheSearch)
{
    apps::MotionPipelineParams p;
    auto app =
        apps::AppRegistry::instance().at("motion").explorable(p);

    // The runner offers the other feasible farm widths as variants.
    ASSERT_FALSE(app.shard_variants.empty());
    for (const auto &sv : app.shard_variants) {
        unsigned me = 0;
        for (const auto &pl : sv.plan.placements)
            me += pl.actor.rfind("me-", 0) == 0;
        EXPECT_NE(me, p.columns) << sv.label;
        EXPECT_GT(me, 0u) << sv.label;
        EXPECT_NEAR(sv.iterations_per_sec * me, p.mb_rate_hz, 1e-6)
            << sv.label;
    }

    ExploreOptions opt;
    opt.rate_factors = {};
    opt.divider_steps = 0;
    auto res = explorePlans(app, opt);
    EXPECT_TRUE(res.all_bit_exact);
    EXPECT_TRUE(res.agreement);

    // At least one shard variant must have measured successfully.
    unsigned measured_shards = 0;
    for (const auto &pt : res.points) {
        if (pt.label.rfind("shards=", 0) == 0 && pt.ran)
            ++measured_shards;
    }
    EXPECT_GT(measured_shards, 0u);
}
