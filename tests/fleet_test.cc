/** @file FleetExecutor: streaming chip fleets — solo bit-exactness,
 * worker-count determinism, work stealing, and snapshot/clone
 * warm-start equivalence on every scheduler backend. */

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>
#include <vector>

#include "apps/app_harness.hh"
#include "apps/app_registry.hh"
#include "apps/pipeline_runner.hh"
#include "apps/wifi_runner.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "sim/fleet.hh"
#include "test_util.hh"

using namespace synchro;
using namespace synchro::arch;
using synchro::isa::assemble;
using synchro::test::allStats;

namespace
{

constexpr unsigned SumInputs = 16;
constexpr uint32_t SumInBase = 0x0000;
constexpr uint32_t SumOutBase = 0x0100;

/** The synthetic item input: SumInputs small positive halves. */
std::vector<int16_t>
sumInput(uint32_t base_seed, uint64_t item)
{
    Rng rng(sim::fleetItemSeed(base_seed, item));
    std::vector<int16_t> h(SumInputs);
    for (auto &v : h)
        v = int16_t(rng.below(100));
    return h;
}

/**
 * A minimal single-column workload — sum SumInputs halves from SRAM
 * into one output half — whose data path still exercises the full
 * fleet contract: restart, SRAM wipe, per-item refeed, golden
 * verification.
 */
sim::FleetWorkload
sumWorkload(uint32_t base_seed)
{
    sim::FleetWorkload wl;
    wl.name = "sum";
    wl.tick_limit = 100'000;
    wl.build = [](SchedulerKind kind) {
        ChipConfig cfg;
        cfg.dividers = {1};
        cfg.tiles_per_column = 1;
        cfg.scheduler = kind;
        auto chip = std::make_unique<Chip>(cfg);
        chip->column(0).controller().loadProgram(
            assemble(strprintf(R"(
            movpi p0, %u
            movpi p1, %u
            movi r0, 0
            lsetup lc0, e, %u
            ld.h r1, [p0]+2
            add r0, r0, r1
        e:
            st.h r0, [p1]+2
            halt
        )",
                               SumInBase, SumOutBase, SumInputs)));
        return chip;
    };
    wl.feed = [base_seed](Chip &chip, uint64_t item) {
        chip.restart();
        Tile &tile = chip.column(0).tile(0);
        tile.clearMem();
        tile.writeMemHalves(SumInBase, sumInput(base_seed, item));
    };
    wl.read_output = [](Chip &chip) {
        return apps::bytesOfHalves(
            chip.column(0).tile(0).readMemHalves(SumOutBase, 1));
    };
    wl.golden = [base_seed](uint64_t item) {
        int16_t sum = 0;
        for (int16_t v : sumInput(base_seed, item))
            sum = int16_t(sum + v);
        return apps::bytesOfHalves({sum});
    };
    return wl;
}

/**
 * A three-column variant of sumWorkload on mixed dividers, with the
 * parallel-columns team size pinned to 2 in the build — so a fleet
 * serving it on the ParallelColumns backend runs nested pools (fleet
 * workers outside, column teams inside). The serial backends ignore
 * the knob, which keeps the same workload usable as the reference.
 */
sim::FleetWorkload
parSumWorkload(uint32_t base_seed)
{
    sim::FleetWorkload wl;
    wl.name = "parsum";
    wl.tick_limit = 100'000;
    wl.build = [](SchedulerKind kind) {
        ChipConfig cfg;
        cfg.dividers = {1, 2, 3};
        cfg.tiles_per_column = 1;
        cfg.scheduler = kind;
        cfg.parallel_columns = 2;
        auto chip = std::make_unique<Chip>(cfg);
        for (unsigned c = 0; c < 3; ++c) {
            chip->column(c).controller().loadProgram(
                assemble(strprintf(R"(
                movpi p0, %u
                movpi p1, %u
                movi r0, 0
                lsetup lc0, e, %u
                ld.h r1, [p0]+2
                add r0, r0, r1
            e:
                st.h r0, [p1]+2
                halt
            )",
                                   SumInBase, SumOutBase,
                                   SumInputs)));
        }
        return chip;
    };
    wl.feed = [base_seed](Chip &chip, uint64_t item) {
        chip.restart();
        for (unsigned c = 0; c < 3; ++c) {
            Tile &tile = chip.column(c).tile(0);
            tile.clearMem();
            tile.writeMemHalves(
                SumInBase, sumInput(base_seed + 31 * c, item));
        }
    };
    wl.read_output = [](Chip &chip) {
        std::vector<int16_t> sums;
        for (unsigned c = 0; c < 3; ++c) {
            auto h =
                chip.column(c).tile(0).readMemHalves(SumOutBase, 1);
            sums.push_back(h[0]);
        }
        return apps::bytesOfHalves(sums);
    };
    wl.golden = [base_seed](uint64_t item) {
        std::vector<int16_t> sums;
        for (unsigned c = 0; c < 3; ++c) {
            int16_t sum = 0;
            for (int16_t v : sumInput(base_seed + 31 * c, item))
                sum = int16_t(sum + v);
            sums.push_back(sum);
        }
        return apps::bytesOfHalves(sums);
    };
    return wl;
}

} // namespace

TEST(Fleet, StreamsMatchSoloRunsBitExactly)
{
    // Every item served through the fleet must equal a solo run of
    // the same item on a fresh chip — the golden hook *is* that
    // solo-derived truth, and all_verified asserts it item by item.
    sim::FleetConfig fc;
    fc.workers = 3;
    fc.keep_outputs = true;
    sim::FleetExecutor fleet(fc);
    unsigned w = fleet.addWorkload(sumWorkload(7));

    fleet.admitStream(w, 4, 0);
    fleet.admitStream(w, 1, 4);
    fleet.admitStream(w, 3, 5);
    sim::FleetReport rep = fleet.drain();

    EXPECT_TRUE(rep.all_verified);
    EXPECT_EQ(rep.streams, 3u);
    EXPECT_EQ(rep.items, 8u);
    EXPECT_EQ(rep.clones, 3u);
    EXPECT_EQ(rep.totals.halted, 8u);
    ASSERT_EQ(rep.stream_results.size(), 3u);

    // And independently: each kept output equals a from-scratch chip
    // run of that item, outside the fleet entirely.
    sim::FleetWorkload wl = sumWorkload(7);
    for (const auto &s : rep.stream_results) {
        ASSERT_EQ(s.outputs.size(), s.items);
        EXPECT_EQ(s.first_failure, "");
        for (uint64_t i = 0; i < s.items; ++i) {
            auto solo = wl.build(defaultSchedulerKind());
            wl.feed(*solo, s.item_base + i);
            ASSERT_EQ(int(solo->run(wl.tick_limit).exit),
                      int(RunExit::AllHalted));
            EXPECT_EQ(s.outputs[i], wl.read_output(*solo))
                << "stream item " << s.item_base + i;
        }
    }
}

TEST(Fleet, DeterministicAcrossWorkerCounts)
{
    // The same streams served by 1 worker and by 4 must produce
    // identical per-stream outputs and identical merged counters —
    // scheduling freedom must never leak into results.
    auto serve = [](unsigned workers) {
        sim::FleetConfig fc;
        fc.workers = workers;
        fc.keep_outputs = true;
        sim::FleetExecutor fleet(fc);
        unsigned w = fleet.addWorkload(sumWorkload(21));
        for (unsigned s = 0; s < 6; ++s)
            fleet.admitStream(w, 1 + s % 3, 10 * s);
        return fleet.drain();
    };

    sim::FleetReport serial = serve(1);
    sim::FleetReport wide = serve(4);
    EXPECT_TRUE(serial.all_verified);
    EXPECT_TRUE(wide.all_verified);
    ASSERT_EQ(wide.stream_results.size(),
              serial.stream_results.size());
    for (size_t i = 0; i < serial.stream_results.size(); ++i) {
        EXPECT_EQ(wide.stream_results[i].outputs,
                  serial.stream_results[i].outputs)
            << i;
        EXPECT_EQ(wide.stream_results[i].ticks,
                  serial.stream_results[i].ticks)
            << i;
    }
    EXPECT_EQ(wide.totals.counters, serial.totals.counters);
    EXPECT_EQ(wide.totals.total_ticks, serial.totals.total_ticks);
}

TEST(Fleet, SixtyFourStreamSmoke)
{
    // The CI sanitize/TSan smoke: a 64-stream fleet across many
    // workers, every stream verified.
    sim::FleetConfig fc;
    fc.workers = 8;
    sim::FleetExecutor fleet(fc);
    unsigned w = fleet.addWorkload(sumWorkload(64));
    for (unsigned s = 0; s < 64; ++s)
        fleet.admitStream(w, 2, 2 * s);
    sim::FleetReport rep = fleet.drain();
    EXPECT_TRUE(rep.all_verified);
    EXPECT_EQ(rep.streams, 64u);
    EXPECT_EQ(rep.items, 128u);
    EXPECT_GT(rep.chips_per_sec, 0.0);
    EXPECT_GT(rep.ticks_per_sec, 0.0);
    EXPECT_EQ(rep.items_by_worker.size(), 8u);
}

TEST(Fleet, WorkStealingDrainsSkewedStreams)
{
    // Deterministic steal setup: gate both workers inside a blocked
    // feed, queue real work behind them, then release one worker —
    // it must finish its gated item and STEAL the queued streams
    // while the other worker is still blocked.
    std::promise<void> release_first, release_second;
    std::shared_future<void> first(release_first.get_future());
    std::shared_future<void> second(release_second.get_future());

    sim::FleetConfig fc;
    fc.workers = 2;
    fc.keep_outputs = true;
    sim::FleetExecutor fleet(fc);

    sim::FleetWorkload gated = sumWorkload(3);
    auto inner_feed = gated.feed;
    gated.feed = [inner_feed, first, second](Chip &chip,
                                             uint64_t item) {
        (item == 0 ? first : second)
            .wait_for(std::chrono::seconds(30));
        inner_feed(chip, item);
    };
    unsigned g = fleet.addWorkload(gated);
    unsigned w = fleet.addWorkload(sumWorkload(5));

    // Two 1-item gated streams occupy both workers...
    fleet.admitStream(g, 1, 0);
    fleet.admitStream(g, 1, 1);
    // ...then real work queues up behind them.
    fleet.admitStream(w, 3, 0);
    fleet.admitStream(w, 1, 3);

    // Release only the second gate: exactly one worker wakes and
    // must cross deques for at least one of the queued streams.
    release_second.set_value();
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    release_first.set_value();

    sim::FleetReport rep = fleet.drain();
    EXPECT_TRUE(rep.all_verified);
    EXPECT_EQ(rep.items, 6u);
    EXPECT_GE(rep.steals, 1u);
}

TEST(Fleet, FailuresAreRecordedNotThrown)
{
    sim::FleetConfig fc;
    fc.workers = 2;
    sim::FleetExecutor fleet(fc);

    sim::FleetWorkload bad = sumWorkload(9);
    bad.name = "bad";
    bad.golden = [](uint64_t) {
        return std::vector<uint8_t>{0xde, 0xad};
    };
    unsigned b = fleet.addWorkload(bad);
    unsigned ok = fleet.addWorkload(sumWorkload(9));
    fleet.admitStream(b, 2, 0);
    fleet.admitStream(ok, 2, 0);

    sim::FleetReport rep = fleet.drain();
    EXPECT_FALSE(rep.all_verified);
    ASSERT_EQ(rep.stream_results.size(), 2u);
    EXPECT_GT(rep.stream_results[0].mismatches, 0u);
    EXPECT_NE(rep.stream_results[0].first_failure, "");
    EXPECT_EQ(rep.stream_results[1].mismatches, 0u);
    EXPECT_EQ(rep.stream_results[1].first_failure, "");
}

TEST(Fleet, AddWorkloadWhileServingIsSafe)
{
    // Workload registration must be safe while workers are already
    // serving earlier streams: workload storage is
    // reallocation-stable, so the references/pointers serving
    // workers hold survive every push_back. Register-admit in a
    // tight loop so serving overlaps registration (TSan covers the
    // race in CI).
    sim::FleetConfig fc;
    fc.workers = 4;
    sim::FleetExecutor fleet(fc);

    constexpr unsigned Rounds = 12;
    for (unsigned r = 0; r < Rounds; ++r) {
        unsigned w = fleet.addWorkload(sumWorkload(100 + r));
        fleet.admitStream(w, 3, 7 * r);
        // References handed out before later registrations must
        // remain valid afterwards.
        EXPECT_EQ(fleet.workload(w).name, "sum");
        EXPECT_EQ(fleet.templateChip(w).curTick(), 0u);
    }

    sim::FleetReport rep = fleet.drain();
    EXPECT_TRUE(rep.all_verified);
    EXPECT_EQ(rep.streams, Rounds);
    EXPECT_EQ(rep.items, 3u * Rounds);
    EXPECT_EQ(rep.clones, Rounds);
}

TEST(Fleet, ThrowingFeedAbandonsStreamWithoutDeadlockingDrain)
{
    // A hook that throws mid-stream abandons the rest of that stream;
    // the skipped items must still be credited or drain() waits
    // forever for work no worker will ever pick up. Cover both the
    // worst case (throw on item 0, nothing served) and a mid-stream
    // throw, with a healthy stream riding alongside.
    sim::FleetConfig fc;
    fc.workers = 2;
    sim::FleetExecutor fleet(fc);

    sim::FleetWorkload first = sumWorkload(17);
    first.name = "throws-first";
    auto inner = first.feed;
    first.feed = [inner](Chip &chip, uint64_t item) {
        if (item < 100)
            throw std::runtime_error("feed rejected item");
        inner(chip, item);
    };
    sim::FleetWorkload mid = sumWorkload(17);
    mid.name = "throws-mid";
    mid.feed = [inner](Chip &chip, uint64_t item) {
        if (item == 1)
            throw std::runtime_error("feed rejected item");
        inner(chip, item);
    };
    unsigned f = fleet.addWorkload(first);
    unsigned m = fleet.addWorkload(mid);
    unsigned ok = fleet.addWorkload(sumWorkload(17));
    fleet.admitStream(f, 3, 0);  // throws on its first item
    fleet.admitStream(m, 4, 0);  // serves item 0, throws on item 1
    fleet.admitStream(ok, 2, 0); // unaffected

    sim::FleetReport rep = fleet.drain();
    EXPECT_FALSE(rep.all_verified);
    // Items 'served' = pickups that ran (including the two throwing
    // ones); the rest of each broken stream was abandoned.
    EXPECT_EQ(rep.items, 5u);
    EXPECT_EQ(rep.items_abandoned, 4u);
    ASSERT_EQ(rep.stream_results.size(), 3u);

    EXPECT_EQ(rep.stream_results[0].items_done, 0u);
    EXPECT_NE(rep.stream_results[0].first_failure.find(
                  "feed rejected item"),
              std::string::npos);
    EXPECT_EQ(rep.stream_results[1].items_done, 1u);
    EXPECT_NE(rep.stream_results[1].first_failure, "");
    EXPECT_EQ(rep.stream_results[2].items_done, 2u);
    EXPECT_EQ(rep.stream_results[2].mismatches, 0u);
    EXPECT_EQ(rep.stream_results[2].first_failure, "");

    // The fleet is still serviceable after the failures: a fresh
    // healthy stream admitted post-drain drains clean.
    fleet.admitStream(ok, 1, 50);
    sim::FleetReport rep2 = fleet.drain();
    EXPECT_EQ(rep2.items, 6u);
    EXPECT_EQ(rep2.stream_results[3].items_done, 1u);
    EXPECT_EQ(rep2.stream_results[3].first_failure, "");
}

TEST(Fleet, MappedDdcStreamsMatchSoloSessionRuns)
{
    // The tentpole end-to-end: a mapped DDC fleet, each stream's
    // items golden-verified inside the fleet, then re-checked
    // against solo SimSession::admit runs of warm-start clones.
    apps::DdcPipelineParams p;
    p.samples = 64;
    sim::FleetConfig fc;
    fc.workers = 4;
    fc.keep_outputs = true;
    sim::FleetExecutor fleet(fc);
    unsigned w = fleet.addWorkload(
        apps::AppRegistry::instance().at("ddc").fleet(p));

    fleet.admitStream(w, 2, 0);
    fleet.admitStream(w, 1, 2);
    fleet.admitStream(w, 2, 3);
    sim::FleetReport rep = fleet.drain();
    EXPECT_TRUE(rep.all_verified);
    EXPECT_EQ(rep.items, 5u);

    const sim::FleetWorkload &wl = fleet.workload(w);
    sim::SimSession session;
    std::vector<std::pair<unsigned, std::vector<uint8_t>>> expect;
    for (const auto &s : rep.stream_results) {
        for (uint64_t i = 0; i < s.items; ++i) {
            auto chip = fleet.templateChip(w).clone();
            wl.feed(*chip, s.item_base + i);
            unsigned id = session.admit(
                sim::ChipSpec(std::move(chip))
                    .tickLimit(wl.tick_limit));
            expect.push_back({id, s.outputs[i]});
        }
    }
    auto results = session.runAll();
    for (const auto &[id, out] : expect) {
        EXPECT_EQ(int(results[id].exit), int(RunExit::AllHalted));
        EXPECT_EQ(wl.read_output(session.chip(id)), out) << id;
    }
}

TEST(Fleet, CloneMatchesFreshBuildOnEveryBackend)
{
    // Chip::clone of a programmed chip must be indistinguishable
    // from re-running codegen + program load, on all three
    // scheduler backends: same outputs, same final tick, same
    // statistics — both straight from the template images and after
    // a per-item refeed.
    apps::DdcPipelineParams dp;
    dp.samples = 64;
    apps::WifiPipelineParams wp;
    wp.symbols = 2;
    const apps::AppRegistry &reg = apps::AppRegistry::instance();
    std::vector<sim::FleetWorkload> workloads = {
        reg.at("ddc").fleet(dp), reg.at("wifi").fleet(wp)};

    for (const sim::FleetWorkload &wl : workloads) {
        for (SchedulerKind kind : synchro::test::AllSchedulerKinds) {
            SCOPED_TRACE(std::string(wl.name) + " on " +
                         schedulerName(kind));
            auto fresh = wl.build(kind);
            auto donor = wl.build(kind);
            auto cloned = donor->clone();

            auto rf = fresh->run(wl.tick_limit);
            auto rc = cloned->run(wl.tick_limit);
            EXPECT_EQ(int(rc.exit), int(rf.exit));
            EXPECT_EQ(rc.ticks, rf.ticks);
            EXPECT_EQ(wl.read_output(*cloned),
                      wl.read_output(*fresh));
            EXPECT_EQ(allStats(*cloned), allStats(*fresh));

            // Warm path: refeed an item into a clone vs a fresh
            // build fed the same item.
            auto fresh2 = wl.build(kind);
            auto cloned2 = donor->clone();
            wl.feed(*fresh2, 3);
            wl.feed(*cloned2, 3);
            auto rf2 = fresh2->run(wl.tick_limit);
            auto rc2 = cloned2->run(wl.tick_limit);
            EXPECT_EQ(int(rc2.exit), int(rf2.exit));
            EXPECT_EQ(rc2.ticks, rf2.ticks);
            EXPECT_EQ(wl.read_output(*cloned2),
                      wl.read_output(*fresh2));
            EXPECT_EQ(allStats(*cloned2), allStats(*fresh2));
        }
    }
}

TEST(Fleet, CloneCanRehomeAcrossBackends)
{
    // clone(kind) re-homes the snapshot on a different scheduler
    // backend; results must still match the original backend.
    sim::FleetWorkload wl = sumWorkload(11);
    auto donor = wl.build(SchedulerKind::EventQueue);
    auto moved = donor->clone(SchedulerKind::Compiled);
    EXPECT_EQ(int(moved->schedulerKind()),
              int(SchedulerKind::Compiled));

    auto ref = donor->clone();
    wl.feed(*ref, 1);
    wl.feed(*moved, 1);
    auto rr = ref->run(wl.tick_limit);
    auto rm = moved->run(wl.tick_limit);
    EXPECT_EQ(int(rm.exit), int(rr.exit));
    EXPECT_EQ(rm.ticks, rr.ticks);
    EXPECT_EQ(wl.read_output(*moved), wl.read_output(*ref));
}

TEST(Fleet, ParallelColumnsComposeWithFleetPool)
{
    // Nested pools: fleet workers outside, per-chip column teams
    // inside (the workload pins the team to 2, overriding the
    // degrade-on-pool-workers automatic policy). The composed fleet
    // must produce exactly what a serial-backend fleet does on the
    // same streams.
    auto serve = [](SchedulerKind kind) {
        sim::FleetConfig fc;
        fc.workers = 2;
        fc.scheduler = kind;
        fc.keep_outputs = true;
        sim::FleetExecutor fleet(fc);
        unsigned w = fleet.addWorkload(parSumWorkload(41));
        for (unsigned s = 0; s < 4; ++s)
            fleet.admitStream(w, 2, 3 * s);
        return fleet.drain();
    };

    sim::FleetReport par = serve(SchedulerKind::ParallelColumns);
    sim::FleetReport ser = serve(SchedulerKind::FastEdge);
    EXPECT_TRUE(par.all_verified);
    EXPECT_TRUE(ser.all_verified);
    ASSERT_EQ(par.stream_results.size(), ser.stream_results.size());
    for (size_t i = 0; i < ser.stream_results.size(); ++i) {
        EXPECT_EQ(par.stream_results[i].outputs,
                  ser.stream_results[i].outputs)
            << i;
        EXPECT_EQ(par.stream_results[i].ticks,
                  ser.stream_results[i].ticks)
            << i;
    }
    EXPECT_EQ(par.totals.counters, ser.totals.counters);
    EXPECT_EQ(par.totals.total_ticks, ser.totals.total_ticks);
}

TEST(Fleet, ParallelCloneRehomesToSerialBitExactly)
{
    // A clone of a parallel-columns chip re-homed onto a serial
    // backend must be bit-identical to a clone that kept the team —
    // the snapshot carries no backend-specific state.
    sim::FleetWorkload wl = parSumWorkload(23);
    auto donor = wl.build(SchedulerKind::ParallelColumns);
    auto moved = donor->clone(SchedulerKind::FastEdge);
    EXPECT_EQ(int(moved->schedulerKind()),
              int(SchedulerKind::FastEdge));

    auto kept = donor->clone();
    EXPECT_EQ(int(kept->schedulerKind()),
              int(SchedulerKind::ParallelColumns));
    wl.feed(*kept, 1);
    wl.feed(*moved, 1);
    auto rk = kept->run(wl.tick_limit);
    auto rm = moved->run(wl.tick_limit);
    EXPECT_EQ(int(rm.exit), int(rk.exit));
    EXPECT_EQ(rm.ticks, rk.ticks);
    EXPECT_EQ(wl.read_output(*moved), wl.read_output(*kept));
    EXPECT_EQ(allStats(*moved), allStats(*kept));
}

TEST(Fleet, CloneAfterRunningIsRejected)
{
    sim::FleetWorkload wl = sumWorkload(13);
    auto chip = wl.build(defaultSchedulerKind());
    ASSERT_EQ(int(chip->run(wl.tick_limit).exit),
              int(RunExit::AllHalted));
    EXPECT_THROW(chip->clone(), FatalError);

    // restart() rewinds to tick 0, after which snapshots are legal
    // again.
    chip->restart();
    wl.feed(*chip, 0);
    auto again = chip->clone();
    EXPECT_EQ(int(again->run(wl.tick_limit).exit),
              int(RunExit::AllHalted));
}
