/** @file Static plan/program verifier: planted safety violations are
 * each rejected with a specific finding, the four committed app
 * lowerings verify clean on both bus settings, and the explorer
 * filters provably-broken candidates before simulation. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/app_registry.hh"
#include "apps/motion_runner.hh"
#include "apps/pipeline_runner.hh"
#include "apps/stereo_runner.hh"
#include "apps/wifi_runner.hh"
#include "common/log.hh"
#include "mapping/codegen.hh"
#include "mapping/comm_schedule.hh"
#include "mapping/explorer.hh"
#include "mapping/verifier.hh"

using namespace synchro;
using namespace synchro::mapping;

namespace
{

constexpr uint32_t OutBase = 0x1000;

/** A hand-built plan: one actor per column (codegen_test idiom). */
ChipPlan
makePlan(const std::vector<std::string> &actors,
         const std::vector<unsigned> &dividers,
         const std::vector<ZormSetting> &zorm)
{
    ChipPlan plan;
    plan.ref_freq_mhz = 600.0;
    for (size_t i = 0; i < actors.size(); ++i) {
        ActorPlacement p;
        p.actor = actors[i];
        p.tiles = 1;
        p.first_column = unsigned(i);
        p.columns = 1;
        p.divider = dividers[i];
        p.f_column_mhz = plan.ref_freq_mhz / dividers[i];
        p.zorm = zorm[i];
        plan.placements.push_back(p);
        ++plan.total_tiles;
    }
    plan.total_columns = unsigned(actors.size());
    return plan;
}

/** The codegen_test two-actor chain: n*3+1 stream into a running
 * sum. Every register it touches is initialized. */
std::vector<PipelineStage>
twoActorStages(unsigned firings)
{
    PipelineStage src;
    src.actor = "source";
    src.prologue = "        movi r1, 0\n";
    src.body = R"(
        addi r1, 3
        mov r7, r1
        addi r7, -2
        cwr r7
    )";
    src.firings = firings;
    src.writes_per_firing = 1;

    PipelineStage sink;
    sink.actor = "sink";
    sink.prologue = strprintf("        movi r2, 0\n"
                              "        movpi p0, %u\n",
                              OutBase);
    sink.body = R"(
        crd r0
        add r2, r2, r0
        st.w r2, [p0]+4
    )";
    sink.firings = firings;
    sink.reads_per_firing = 1;
    return {src, sink};
}

/** The codegen_test diamond fork/join DAG (lane-tagged kernels). */
DagSpec
diamondSpec(unsigned firings)
{
    DagStage src;
    src.actor = "source";
    src.prologue = "        movi r1, 0\n";
    src.body = R"(
        addi r1, 1
        cwr r1, 0
        cwr r1, 1
    )";
    src.firings = firings;

    DagStage dbl;
    dbl.actor = "double";
    dbl.body = R"(
        crd r0, 0
        add r0, r0, r0
        cwr r0, 2
    )";
    dbl.firings = firings;

    DagStage tpl;
    tpl.actor = "triple";
    tpl.body = R"(
        crd r0, 1
        add r2, r0, r0
        add r0, r2, r0
        cwr r0, 3
    )";
    tpl.firings = firings;

    DagStage merge;
    merge.actor = "merge";
    merge.prologue = strprintf("        movpi p0, %u\n", OutBase);
    merge.body = R"(
        crd r0, 2
        crd r1, 3
        add r0, r0, r1
        st.w r0, [p0]+4
    )";
    merge.firings = firings;

    DagSpec spec;
    spec.stages = {src, dbl, tpl, merge};
    spec.edges = {
        {"source", "double", 1, 1},
        {"source", "triple", 1, 1},
        {"double", "merge", 1, 1},
        {"triple", "merge", 1, 1},
    };
    return spec;
}

ChipPlan
diamondPlan()
{
    return makePlan({"source", "double", "triple", "merge"},
                    {2, 1, 3, 2},
                    {ZormSetting{}, ZormSetting{}, ZormSetting{1, 5},
                     ZormSetting{}});
}

/** Expect @p fn to be statically rejected with @p needle in the
 * fatal message (which carries VerifyReport::errorSummary()). */
template <typename Fn>
void
expectRejected(Fn &&fn, const std::string &needle)
{
    try {
        fn();
        FAIL() << "expected a 'statically rejected' FatalError "
                  "mentioning \""
               << needle << "\"";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("statically rejected"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find(needle), std::string::npos) << what;
    }
}

} // namespace

TEST(Verifier, CleanLinearLoweringVerifies)
{
    ChipPlan plan = makePlan({"source", "sink"}, {2, 3},
                             {ZormSetting{}, ZormSetting{1, 4}});
    auto stages = twoActorStages(200);
    auto prog = lowerPipeline(stages, plan, 20e6);

    VerifyReport rep = verifyLowered(linearDagSpec(stages), plan,
                                     prog, 20e6, 1.4);
    EXPECT_TRUE(rep.ok()) << rep.render();
    for (const std::string &check : VerifyReport::checkNames())
        EXPECT_TRUE(rep.checkPassed(check)) << check;
    EXPECT_NE(rep.render().find("PASS"), std::string::npos);
    EXPECT_TRUE(rep.errorSummary().empty());
}

TEST(Verifier, UninitializedRegisterReadRejected)
{
    // The sink folds r3 into its sum, but nothing ever writes r3 —
    // it would observe the architectural reset value.
    auto stages = twoActorStages(50);
    stages[1].prologue = strprintf("        movpi p0, %u\n", OutBase);
    stages[1].body = R"(
        crd r0
        add r2, r0, r3
        st.w r2, [p0]+4
    )";
    ChipPlan plan = makePlan({"source", "sink"}, {1, 1},
                             {ZormSetting{}, ZormSetting{}});
    expectRejected(
        [&] { lowerPipeline(stages, plan, 20e6); },
        "uninitialized");
}

TEST(Verifier, MismatchedJoinLaneTagRejected)
{
    // The join reads lane 5, which is not one of its input edges
    // (lanes 2 and 3) — the tagged pop would wait forever.
    DagSpec spec = diamondSpec(50);
    spec.stages[3].body = R"(
        crd r0, 5
        crd r1, 3
        add r0, r0, r1
        st.w r0, [p0]+4
    )";
    expectRejected(
        [&] { lowerDag(spec, diamondPlan(), 10e6); },
        "mismatched lane tag");
}

TEST(Verifier, ConflictingSlotAssignmentRejected)
{
    DagSpec spec = diamondSpec(50);
    ChipPlan plan = diamondPlan();
    auto prog = lowerDag(spec, plan, 10e6);

    // Plant a second drive on a bus cycle the source already owns:
    // copy one of the source's drive slots into the 'double' column
    // and recompile that column's DOU so the machine itself is
    // internally consistent — only the *global* schedule is broken.
    const Transfer *drive = nullptr;
    for (const Transfer &t : prog.columns[0].schedule.transfers) {
        if (t.src_tile >= 0)
            drive = &t;
    }
    ASSERT_NE(drive, nullptr);
    prog.columns[1].schedule.transfers.push_back(*drive);
    prog.columns[1].dou =
        compileSchedule(prog.columns[1].schedule);

    VerifyReport rep = verifyLowered(spec, plan, prog, 10e6, 1.4);
    EXPECT_FALSE(rep.ok());
    EXPECT_FALSE(rep.checkPassed("slots"));
    EXPECT_NE(rep.errorSummary().find("conflicting slot"),
              std::string::npos)
        << rep.errorSummary();
}

TEST(Verifier, LookaheadHorizonDisagreementRejected)
{
    // A single-edge chain has one slot per period, so the schedule's
    // comm-quiet floor is period-1 — a nonzero horizon the lowering
    // must export and the verifier must recompute.
    ChipPlan plan = makePlan({"source", "sink"}, {2, 3},
                             {ZormSetting{}, ZormSetting{}});
    auto stages = twoActorStages(100);
    auto prog = lowerPipeline(stages, plan, 20e6);
    DagSpec spec = linearDagSpec(stages);

    ASSERT_GT(prog.lookahead_horizon, 0u);
    EXPECT_EQ(prog.lookahead_horizon, prog.period - 1);
    VerifyReport base = verifyLowered(spec, plan, prog, 20e6, 1.4);
    EXPECT_TRUE(base.ok()) << base.render();

    // Declare one phase more lookahead than the slot schedule
    // supports: a runtime trusting it could free-run a column
    // through a delivery slot. The verifier must recompute the
    // floor from the slots themselves and reject the disagreement.
    prog.lookahead_horizon += 1;
    VerifyReport rep = verifyLowered(spec, plan, prog, 20e6, 1.4);
    EXPECT_FALSE(rep.ok());
    EXPECT_FALSE(rep.checkPassed("slots"));
    EXPECT_NE(rep.errorSummary().find("lookahead horizon"),
              std::string::npos)
        << rep.errorSummary();

    // Declaring no horizon at all is legal (a Note, not an error):
    // the parallel-columns runtime then relies on its dynamic
    // comm-quiet probe alone.
    prog.lookahead_horizon = 0;
    VerifyReport none = verifyLowered(spec, plan, prog, 20e6, 1.4);
    EXPECT_TRUE(none.ok()) << none.render();
    EXPECT_TRUE(none.checkPassed("slots"));
    EXPECT_NE(none.render().find("no lookahead"), std::string::npos);
}

TEST(Verifier, OverrunReachableBufferBoundRejected)
{
    // On the legacy (drop-new) bus, a consumer that computes ~200
    // slots per firing against a delivery grid of ~42 ticks provably
    // still holds word k when word k+1 arrives.
    auto stages = twoActorStages(50);
    stages[1].prologue = strprintf("        movi r2, 0\n"
                                   "        movi r3, 0\n"
                                   "        movpi p0, %u\n",
                                   OutBase);
    stages[1].body = R"(
        crd r0
        add r2, r2, r0
        lsetup lc1, __burn, 200
        addi r3, 1
    __burn:
        st.w r2, [p0]+4
    )";
    ChipPlan plan = makePlan({"source", "sink"}, {1, 1},
                             {ZormSetting{}, ZormSetting{}});
    expectRejected(
        [&] { lowerPipeline(stages, plan, 20e6); }, "overrun");
}

TEST(Verifier, ZormMismatchRejected)
{
    ChipPlan plan = makePlan({"source", "sink"}, {2, 3},
                             {ZormSetting{}, ZormSetting{1, 4}});
    auto stages = twoActorStages(100);
    auto prog = lowerPipeline(stages, plan, 20e6);

    // A column loaded with a different ZORM pacing than its
    // placement planned runs at the wrong rate.
    prog.columns[1].zorm.nops += 1;

    VerifyReport rep = verifyLowered(linearDagSpec(stages), plan,
                                     prog, 20e6, 1.4);
    EXPECT_FALSE(rep.ok());
    EXPECT_FALSE(rep.checkPassed("zorm"));
    EXPECT_NE(rep.errorSummary().find("ZORM"), std::string::npos)
        << rep.errorSummary();
}

TEST(Verifier, CommittedAppLoweringsVerifyCleanOnBothBusSettings)
{
    // Every registered app's committed lowering, straight from the
    // registry at default params.
    std::vector<LoweredArtifact> artifacts;
    for (const std::string &name :
         apps::AppRegistry::instance().names())
        artifacts.push_back(
            apps::AppRegistry::instance().at(name).verifiable());
    EXPECT_EQ(artifacts.size(), 4u);
    for (LoweredArtifact &art : artifacts) {
        VerifyReport committed = art.verify();
        EXPECT_TRUE(committed.ok())
            << art.name << "\n" << committed.render();
        // Flipping the bus mode changes what the "tokens" check must
        // prove (drop-new replay vs Kahn replay); both directions
        // must still be free of provable violations.
        art.prog.self_timed = !art.prog.self_timed;
        VerifyReport flipped = art.verify();
        EXPECT_TRUE(flipped.ok())
            << art.name << " (flipped bus)\n" << flipped.render();
    }
}

TEST(Verifier, RateScaledExplorerVariantsVerifyClean)
{
    // Regression: exactRateMatch() reduces the fraction of the two
    // rates rounded to integer Hz, so a rate-scaled plan's loaded
    // ZORM fraction can differ from the unrounded MHz ratio by the
    // Hz quantization. The verifier must tolerate what the mapper
    // itself emits — the 0.75/0.90 wifi rate variants are exactly
    // the settings a tighter zorm tolerance falsely rejects.
    mapping::ExplorableApp app =
        apps::AppRegistry::instance().at("wifi").explorable();
    ExploreOptions opt;
    opt.rate_factors = {0.75, 0.90};
    opt.divider_steps = 0;
    opt.crosscheck_frontier = false;
    opt.threads = 1;
    ExplorationResult res = explorePlans(app, opt);
    EXPECT_EQ(res.statically_rejected, 0u);
    for (const MeasuredPoint &pt : res.points)
        EXPECT_TRUE(pt.ran) << pt.label << ": " << pt.failure;
}

TEST(Verifier, ExplorerFiltersBrokenCandidateBeforeSimulation)
{
    apps::DdcPipelineParams p;
    p.samples = 512;
    mapping::ExplorableApp app =
        apps::AppRegistry::instance().at("ddc").explorable(p);

    // A candidate whose placement claims a column frequency that is
    // not ref/divider — nothing a simulation would ever notice (the
    // chip is built from the dividers alone), but provably an
    // inconsistent plan. The verifier gate must reject it at
    // lowering time, before any chip is staged.
    PlanVariant broken;
    broken.label = "broken";
    broken.plan = app.baseline;
    broken.plan.placements[0].f_column_mhz += 17.0;
    broken.iterations_per_sec = app.iterations_per_sec;
    app.shard_variants.push_back(broken);

    ExploreOptions opt;
    opt.rate_factors = {};
    opt.divider_steps = 0;
    opt.crosscheck_frontier = false;
    opt.threads = 1;

    ExplorationResult res = explorePlans(app, opt);
    EXPECT_EQ(res.statically_rejected, 1u);

    bool found = false;
    for (const MeasuredPoint &pt : res.points) {
        if (pt.label != "broken")
            continue;
        found = true;
        EXPECT_FALSE(pt.ran);
        EXPECT_NE(pt.failure.find("statically rejected"),
                  std::string::npos)
            << pt.failure;
    }
    EXPECT_TRUE(found);
    // The baseline still simulated and measured bit-exactly.
    ASSERT_FALSE(res.points.empty());
    EXPECT_TRUE(res.points[0].ran) << res.points[0].failure;
    EXPECT_TRUE(res.points[0].bit_exact);
    EXPECT_NE(res.report().find("statically rejected"),
              std::string::npos);
}
