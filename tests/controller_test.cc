/** @file SIMD controller behaviour: loops, branches, ZORM, timing. */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "test_util.hh"

using namespace synchro;
using namespace synchro::arch;
using synchro::test::runToHalt;
using synchro::test::singleColumnChip;

TEST(SimdController, BroadcastsToAllTiles)
{
    auto chip = singleColumnChip(R"(
        movi r0, 42
        halt
    )");
    auto res = runToHalt(*chip);
    EXPECT_EQ(res.exit, RunExit::AllHalted);
    for (unsigned t = 0; t < 4; ++t)
        EXPECT_EQ(chip->column(0).tile(t).reg(0), 42u);
}

TEST(SimdController, SpmdViaTileId)
{
    auto chip = singleColumnChip(R"(
        tid r0
        lsli r1, r0, 2   ; r1 = 4 * tid
        halt
    )");
    runToHalt(*chip);
    for (unsigned t = 0; t < 4; ++t)
        EXPECT_EQ(chip->column(0).tile(t).reg(1), 4 * t);
}

TEST(SimdController, ZeroOverheadLoopIterates)
{
    auto chip = singleColumnChip(R"(
        movi r0, 0
        lsetup lc0, done, 10
        addi r0, 1
    done:
        halt
    )");
    runToHalt(*chip);
    EXPECT_EQ(chip->column(0).tile(0).reg(0), 10u);
}

TEST(SimdController, ZeroOverheadLoopCostsNothing)
{
    // Loop body of 1 instruction, N iterations: issue count must be
    // exactly N + overhead (movi + lsetup + halt), no loop-back tax.
    auto chip = singleColumnChip(R"(
        movi r0, 0
        lsetup lc0, done, 50
        addi r0, 1
    done:
        halt
    )");
    runToHalt(*chip);
    EXPECT_EQ(chip->column(0).controller().stats().value("issued"),
              50u + 3u);
    EXPECT_EQ(
        chip->column(0).controller().stats().value("branchStalls"),
        0u);
}

TEST(SimdController, NestedLoops)
{
    auto chip = singleColumnChip(R"(
        movi r0, 0
        lsetup lc0, outer_end, 3
        lsetup lc1, inner_end, 4
        addi r0, 1
    inner_end:
        addi r0, 100
    outer_end:
        halt
    )");
    runToHalt(*chip);
    // 3 * (4 * 1 + 100) = 312
    EXPECT_EQ(chip->column(0).tile(0).reg(0), 312u);
}

TEST(SimdController, NestedLoopsSharingEndLabel)
{
    auto chip = singleColumnChip(R"(
        movi r0, 0
        lsetup lc0, end, 3
        lsetup lc1, end, 4
        addi r0, 1
    end:
        halt
    )");
    runToHalt(*chip);
    EXPECT_EQ(chip->column(0).tile(0).reg(0), 12u);
}

TEST(SimdController, ConditionalBranchTaken)
{
    auto chip = singleColumnChip(R"(
        movi r0, 5
        movi r1, 5
        cmpeq r0, r1
        jcc equal
        movi r2, 111
        halt
    equal:
        movi r2, 222
        halt
    )");
    runToHalt(*chip);
    EXPECT_EQ(chip->column(0).tile(0).reg(2), 222u);
}

TEST(SimdController, ConditionalBranchCostsOneStall)
{
    auto chip = singleColumnChip(R"(
        movi r0, 1
        movi r1, 2
        cmpeq r0, r1   ; false
        jcc never
        halt
    never:
        halt
    )");
    runToHalt(*chip);
    const auto &st = chip->column(0).controller().stats();
    EXPECT_EQ(st.value("branchStalls"), 1u);
    EXPECT_EQ(st.value("issued"), 5u); // movi x2, cmpeq, jcc, halt
}

TEST(SimdController, CountedLoopWithBackwardBranch)
{
    // Software loop: decrement and branch while nonzero.
    auto chip = singleColumnChip(R"(
        movi r0, 0
        movi r1, 6
        movi r2, 0
    top:
        addi r0, 2
        addi r1, -1
        cmpeq r1, r2
        jncc top
        halt
    )");
    runToHalt(*chip);
    EXPECT_EQ(chip->column(0).tile(0).reg(0), 12u);
    // Six taken/not-taken conditional branches = 6 stall cycles.
    EXPECT_EQ(
        chip->column(0).controller().stats().value("branchStalls"),
        6u);
}

TEST(SimdController, ZormInsertsExactNopFraction)
{
    // 1 nop per 4 slots: a 30-instruction straight-line program needs
    // 10 zorm nops interleaved (30 real / 40 slots issued total).
    std::string body;
    for (int i = 0; i < 29; ++i)
        body += "addi r0, 1\n";
    auto chip = singleColumnChip("movi r0, 0\n" + body + "halt\n");
    chip->column(0).controller().setRateMatch(1, 4);
    runToHalt(*chip);
    EXPECT_EQ(chip->column(0).tile(0).reg(0), 29u);
    const auto &st = chip->column(0).controller().stats();
    // ceil-ish: every 4th slot is a nop while the program runs.
    EXPECT_EQ(st.value("zormNops"), 10u);
}

TEST(SimdController, ZormRateIsExactOverLongRuns)
{
    // Property: for (n, d), issue slots split exactly d-n compute per
    // d total in every window. Run a long loop and check the global
    // ratio matches to within one slot.
    auto chip = singleColumnChip(R"(
        movi r0, 0
        lsetup lc0, e, 300
        addi r0, 1
    e:
        halt
    )");
    chip->column(0).controller().setRateMatch(3, 7);
    runToHalt(*chip);
    const auto &st = chip->column(0).controller().stats();
    uint64_t real = st.value("issued");
    uint64_t nops = st.value("zormNops");
    // nops/(real+nops) must equal 3/7 within rounding.
    EXPECT_NEAR(double(nops) / double(real + nops), 3.0 / 7.0, 0.01);
}

TEST(SimdController, ZormValidation)
{
    auto chip = singleColumnChip("halt\n");
    EXPECT_THROW(chip->column(0).controller().setRateMatch(4, 4),
                 FatalError);
    EXPECT_THROW(chip->column(0).controller().setRateMatch(1, 0),
                 FatalError);
    EXPECT_NO_THROW(chip->column(0).controller().setRateMatch(0, 0));
}

TEST(SimdController, CcModesReduceAcrossTiles)
{
    // tid != 0 is true on tiles 1..3 and false on tile 0.
    const char *src = R"(
        tid r0
        movi r1, 0
        cmpeq r0, r1  ; CC = (tid == 0): true only on tile 0
        jcc taken
        movi r2, 1
        halt
    taken:
        movi r2, 2
        halt
    )";
    {
        auto chip = singleColumnChip(src);
        chip->column(0).controller().setCcMode(CcMode::Tile0);
        runToHalt(*chip);
        EXPECT_EQ(chip->column(0).tile(0).reg(2), 2u);
    }
    {
        auto chip = singleColumnChip(src);
        chip->column(0).controller().setCcMode(CcMode::All);
        runToHalt(*chip);
        EXPECT_EQ(chip->column(0).tile(0).reg(2), 1u);
    }
    {
        auto chip = singleColumnChip(src);
        chip->column(0).controller().setCcMode(CcMode::Any);
        runToHalt(*chip);
        EXPECT_EQ(chip->column(0).tile(0).reg(2), 2u);
    }
}

TEST(SimdController, IdleTilesDoNotExecute)
{
    auto chip = singleColumnChip(R"(
        movi r0, 9
        halt
    )");
    chip->column(0).setTileActive(2, false);
    runToHalt(*chip);
    EXPECT_EQ(chip->column(0).tile(0).reg(0), 9u);
    EXPECT_EQ(chip->column(0).tile(2).reg(0), 0u);
    EXPECT_EQ(chip->column(0).tile(2).stats().value("instructions"),
              0u);
}

TEST(SimdController, ProgramTooLargeRejected)
{
    std::string big;
    for (unsigned i = 0; i < SimdController::InsnMemWords + 1; ++i)
        big += "nop\n";
    auto chip = singleColumnChip("halt\n");
    EXPECT_THROW(
        chip->column(0).controller().loadProgram(isa::assemble(big)),
        FatalError);
}

TEST(SimdController, FallingOffProgramEndIsFatal)
{
    auto chip = singleColumnChip("movi r0, 1\n"); // no halt
    EXPECT_THROW(runToHalt(*chip), FatalError);
}

TEST(SimdController, LoopReArmWhileActiveIsFatal)
{
    auto chip = singleColumnChip(R"(
        lsetup lc0, end, 3
        lsetup lc0, end, 2
        nop
    end:
        halt
    )");
    EXPECT_THROW(runToHalt(*chip), FatalError);
}

TEST(Chip, MultiColumnDividersRunIndependently)
{
    ChipConfig cfg;
    cfg.dividers = {1, 3};
    Chip chip(cfg);
    // Column 0 at full rate, column 1 at 1/3 rate; both count to 30.
    const char *count = R"(
        movi r0, 0
        lsetup lc0, e, 30
        addi r0, 1
    e:
        halt
    )";
    chip.column(0).controller().loadProgram(isa::assemble(count));
    chip.column(1).controller().loadProgram(isa::assemble(count));
    auto res = chip.run(1000);
    EXPECT_EQ(res.exit, RunExit::AllHalted);
    EXPECT_EQ(chip.column(0).tile(0).reg(0), 30u);
    EXPECT_EQ(chip.column(1).tile(0).reg(0), 30u);
    // Column 1's last issue happens ~3x later in ticks.
    EXPECT_EQ(chip.column(1).clock().frequencyMHz(), 200.0);
}

TEST(Chip, TickLimitReturnsWithoutHalt)
{
    auto chip = singleColumnChip(R"(
    spin:
        jump spin
    )");
    auto res = chip->run(100);
    EXPECT_EQ(res.exit, RunExit::TickLimit);
    EXPECT_FALSE(chip->allHalted());
}
