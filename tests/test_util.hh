/** @file Shared helpers for architecture-level tests. */

#ifndef SYNC_TESTS_TEST_UTIL_HH
#define SYNC_TESTS_TEST_UTIL_HH

#include <memory>
#include <string>

#include "arch/chip.hh"
#include "isa/assembler.hh"

namespace synchro::test
{

/** A single-column chip with divider 1 running @p asm_src. */
inline std::unique_ptr<arch::Chip>
singleColumnChip(const std::string &asm_src, unsigned tiles = 4)
{
    arch::ChipConfig cfg;
    cfg.dividers = {1};
    cfg.tiles_per_column = tiles;
    auto chip = std::make_unique<arch::Chip>(cfg);
    chip->column(0).controller().loadProgram(isa::assemble(asm_src));
    return chip;
}

/** Run to completion; EXPECTs in callers check the result. */
inline arch::RunResult
runToHalt(arch::Chip &chip, Tick limit = 1'000'000)
{
    return chip.run(limit);
}

} // namespace synchro::test

#endif // SYNC_TESTS_TEST_UTIL_HH
