/** @file Shared helpers for architecture-level tests. */

#ifndef SYNC_TESTS_TEST_UTIL_HH
#define SYNC_TESTS_TEST_UTIL_HH

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/chip.hh"
#include "isa/assembler.hh"
#include "sim/scheduler.hh"

namespace synchro::test
{

/** A single-column chip with divider 1 running @p asm_src. */
inline std::unique_ptr<arch::Chip>
singleColumnChip(const std::string &asm_src, unsigned tiles = 4)
{
    arch::ChipConfig cfg;
    cfg.dividers = {1};
    cfg.tiles_per_column = tiles;
    auto chip = std::make_unique<arch::Chip>(cfg);
    chip->column(0).controller().loadProgram(isa::assemble(asm_src));
    return chip;
}

/** Run to completion; EXPECTs in callers check the result. */
inline arch::RunResult
runToHalt(arch::Chip &chip, Tick limit = 1'000'000)
{
    return chip.run(limit);
}

/**
 * Every scheduler backend, EventQueue (the reference semantics)
 * first. Cross-check tests iterate this so a new backend is
 * automatically held to the same bit-identical contract.
 */
inline constexpr SchedulerKind AllSchedulerKinds[] = {
    SchedulerKind::EventQueue,
    SchedulerKind::FastEdge,
    SchedulerKind::Compiled,
    SchedulerKind::ParallelColumns,
};

/** Every stat of the chip, flattened for comparison. */
inline std::map<std::string, uint64_t>
allStats(const arch::Chip &chip)
{
    std::map<std::string, uint64_t> out;
    chip.forEachStat([&out](const std::string &name, uint64_t v) {
        out[name] = v;
    });
    return out;
}

/** Architectural register state of every tile. */
inline std::vector<uint32_t>
allRegs(arch::Chip &chip)
{
    std::vector<uint32_t> out;
    for (unsigned c = 0; c < chip.numColumns(); ++c) {
        for (unsigned t = 0; t < chip.column(c).numTiles(); ++t) {
            arch::Tile &tile = chip.column(c).tile(t);
            for (unsigned r = 0; r < isa::NumDataRegs; ++r)
                out.push_back(tile.reg(r));
            for (unsigned p = 0; p < isa::NumPtrRegs; ++p)
                out.push_back(tile.preg(p));
            out.push_back(tile.cc());
        }
    }
    return out;
}

/**
 * Build a chip per backend via @p configure, run each to completion,
 * and EXPECT bit-identical exit reason, final tick, statistics and
 * register state against the EventQueue reference.
 */
inline void
crossCheckBackends(arch::ChipConfig cfg,
                   const std::function<void(arch::Chip &)> &configure,
                   Tick max_ticks = 1'000'000)
{
    cfg.scheduler = SchedulerKind::EventQueue;
    arch::Chip reference(cfg);
    configure(reference);
    arch::RunResult rr = reference.run(max_ticks);

    for (SchedulerKind kind : AllSchedulerKinds) {
        if (kind == SchedulerKind::EventQueue)
            continue;
        cfg.scheduler = kind;
        // A real team even on small CI machines: automatic sizing
        // may resolve to 1 thread, which would leave the barrier
        // paths untested here.
        cfg.parallel_columns =
            kind == SchedulerKind::ParallelColumns ? 2 : 0;
        arch::Chip chip(cfg);
        configure(chip);
        arch::RunResult rc = chip.run(max_ticks);

        const char *name = schedulerName(kind);
        EXPECT_EQ(int(rc.exit), int(rr.exit)) << name;
        EXPECT_EQ(rc.ticks, rr.ticks) << name;
        EXPECT_EQ(chip.curTick(), reference.curTick()) << name;
        EXPECT_EQ(allStats(chip), allStats(reference)) << name;
        EXPECT_EQ(allRegs(chip), allRegs(reference)) << name;
    }
}

} // namespace synchro::test

#endif // SYNC_TESTS_TEST_UTIL_HH
