/** @file Parameterized property sweeps across module configuration
 * spaces (TEST_P / INSTANTIATE_TEST_SUITE_P per the test plan). */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "common/rng.hh"
#include "dsp/cic.hh"
#include "dsp/fft.hh"
#include "dsp/fir.hh"
#include "mapping/rate_match.hh"
#include "power/vf_model.hh"
#include "sim/session.hh"
#include "test_util.hh"

using namespace synchro;
using namespace synchro::dsp;

// ---------------------------------------------------------------
// FFT across sizes

class FftSizes : public ::testing::TestWithParam<size_t>
{
};

TEST_P(FftSizes, RoundTripAndParseval)
{
    const size_t n = GetParam();
    Rng rng(n);
    std::vector<Cplx> x(n);
    for (auto &v : x)
        v = Cplx(rng.gauss(), rng.gauss());
    auto orig = x;

    double te = 0;
    for (const auto &v : x)
        te += std::norm(v);
    fft(x);
    double fe = 0;
    for (const auto &v : x)
        fe += std::norm(v);
    EXPECT_NEAR(fe, te * double(n), 1e-6 * fe);

    ifft(x);
    for (size_t i = 0; i < n; ++i)
        EXPECT_NEAR(std::abs(x[i] - orig[i]), 0.0, 1e-9);
}

TEST_P(FftSizes, LinearityOfFixedPoint)
{
    const size_t n = GetParam();
    if (n < 8)
        return; // quantization dominates tiny transforms
    Rng rng(n * 7);
    std::vector<CplxQ15> a(n), b(n), sum(n);
    for (size_t i = 0; i < n; ++i) {
        a[i] = {toQ15(0.2 * (rng.uniform() - 0.5)), 0};
        b[i] = {toQ15(0.2 * (rng.uniform() - 0.5)), 0};
        sum[i] = {int16_t(a[i].re + b[i].re), 0};
    }
    auto fa = a, fb = b, fs = sum;
    fftQ15(fa);
    fftQ15(fb);
    fftQ15(fs);
    for (size_t k = 0; k < n; ++k) {
        EXPECT_NEAR(fs[k].re, fa[k].re + fb[k].re, 8) << k;
        EXPECT_NEAR(fs[k].im, fa[k].im + fb[k].im, 8) << k;
    }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizes,
                         ::testing::Values(4, 8, 16, 64, 256, 1024));

// ---------------------------------------------------------------
// CIC across configurations

class CicConfigs
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(CicConfigs, DcGainAndOutputRate)
{
    auto [stages, r] = GetParam();
    CicDecimator cic(stages, r);
    EXPECT_DOUBLE_EQ(cic.gain(), std::pow(double(r), stages));
    std::vector<int32_t> dc(r * 80, 2);
    auto y = cic.process(dc);
    ASSERT_EQ(y.size(), dc.size() / r);
    EXPECT_EQ(y.back(), int32_t(2 * cic.gain()));
}

TEST_P(CicConfigs, DecimatedImpulseSumsToGainOverR)
{
    // The full-rate impulse response sums to (R)^N, and the boxcar^N
    // kernel partitions across decimation phases (B-spline partition
    // of unity), so each decimated phase sums to gain / R exactly.
    auto [stages, r] = GetParam();
    CicDecimator cic(stages, r);
    std::vector<int32_t> impulse(r * 64, 0);
    impulse[0] = 1;
    auto y = cic.process(impulse);
    int64_t sum = 0;
    for (int32_t v : y)
        sum += v;
    EXPECT_EQ(sum, int64_t(cic.gain() / r));
}

INSTANTIATE_TEST_SUITE_P(
    StagesByRate, CicConfigs,
    ::testing::Values(std::pair{1u, 4u}, std::pair{2u, 4u},
                      std::pair{3u, 8u}, std::pair{5u, 8u},
                      std::pair{4u, 16u}));

// ---------------------------------------------------------------
// FIR across tap counts

class FirTaps : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FirTaps, ImpulseRecoversTapsAndDcIsUnity)
{
    unsigned taps = GetParam();
    auto h = designLowpassQ15(taps, 0.2);
    ASSERT_EQ(h.size(), taps);
    double dc = 0;
    for (int16_t t : h)
        dc += fromQ15(t);
    EXPECT_NEAR(dc, 1.0, 0.01);

    FirQ15 fir(h);
    std::vector<int16_t> x(taps + 4, 0);
    x[0] = toQ15(0.95);
    auto y = fir.process(x);
    for (unsigned k = 0; k < taps; ++k)
        EXPECT_NEAR(y[k], int(std::lround(h[k] * 0.95)), 2) << k;
}

INSTANTIATE_TEST_SUITE_P(Lengths, FirTaps,
                         ::testing::Values(3, 11, 21, 63, 101));

// ---------------------------------------------------------------
// ZORM on the real controller across (nops, period) pairs

class ZormPairs
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(ZormPairs, SimulatedRateIsExact)
{
    auto [nops, period] = GetParam();
    auto chip = test::singleColumnChip(R"(
        movi r0, 0
        lsetup lc0, e, 2000
        addi r0, 1
    e:
        halt
    )");
    chip->column(0).controller().setRateMatch(nops, period);
    test::runToHalt(*chip, 10'000'000);
    const auto &st = chip->column(0).controller().stats();
    uint64_t real = st.value("issued");
    uint64_t pad = st.value("zormNops");
    double useful = double(real) / double(real + pad);
    EXPECT_NEAR(useful, double(period - nops) / period,
                2.0 / double(real + pad));
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, ZormPairs,
    ::testing::Values(std::pair{1u, 2u}, std::pair{1u, 7u},
                      std::pair{3u, 7u}, std::pair{9u, 10u},
                      std::pair{1u, 1000u}, std::pair{499u, 500u}));

TEST(ZormBatch, SimSessionSweepsAllPairsInOneRun)
{
    // The same (nops, period) sweep as ZormPairs, but batched: one
    // chip per configuration in a SimSession, all run across the
    // worker pool in a single runAll() call.
    const std::vector<std::pair<unsigned, unsigned>> pairs = {
        {1, 2}, {1, 7}, {3, 7}, {9, 10}, {1, 1000}, {499, 500}};

    sim::SimSession session;
    for (auto [nops, period] : pairs) {
        arch::ChipConfig cfg;
        cfg.dividers = {1};
        unsigned id = session.admit(sim::ChipSpec(cfg));
        session.chip(id).column(0).controller().loadProgram(
            isa::assemble(R"(
            movi r0, 0
            lsetup lc0, e, 2000
            addi r0, 1
        e:
            halt
        )"));
        session.chip(id).column(0).controller().setRateMatch(nops,
                                                             period);
    }

    auto results = session.runAll(10'000'000);
    for (size_t i = 0; i < pairs.size(); ++i) {
        ASSERT_EQ(int(results[i].exit),
                  int(arch::RunExit::AllHalted))
            << i;
        auto [nops, period] = pairs[i];
        const auto &st =
            session.chip(unsigned(i)).column(0).controller().stats();
        uint64_t real = st.value("issued");
        uint64_t pad = st.value("zormNops");
        double useful = double(real) / double(real + pad);
        EXPECT_NEAR(useful, double(period - nops) / period,
                    2.0 / double(real + pad))
            << "pair " << i;
    }

    auto agg = session.aggregate();
    EXPECT_EQ(agg.halted, pairs.size());
    EXPECT_GT(agg.counters.at("col0.ctrl.issued"),
              2000u * pairs.size());
}

// ---------------------------------------------------------------
// Supply-level / V-f consistency over a frequency grid

TEST(SupplySweep, QuantizedAlwaysAtOrAboveContinuous)
{
    power::VfModel vf;
    power::SupplyLevels levels(vf);
    for (double f = 20; f <= levels.maxFrequencyMhz(); f += 13.7) {
        double vq = levels.voltageFor(f);
        double vc = vf.voltageFor(f);
        // Quantization rounds the voltage up, never down, except
        // inside the paper's own published points where the LUT is
        // authoritative (its points sit slightly below the fit for
        // 120-540 MHz).
        EXPECT_GT(vq, 0.0);
        EXPECT_GE(vq, vc - 0.15) << f;
        // The quantized level must actually be a supported level.
        bool found = false;
        for (auto [lf, lv] : levels.levels()) {
            if (std::abs(lv - vq) < 1e-12)
                found = true;
        }
        EXPECT_TRUE(found) << f;
    }
}

TEST(SupplySweep, RateMatchComposesWithDividers)
{
    // For every divider of a 600 MHz reference and a random demand
    // below the divided clock, exactRateMatch must land exactly.
    Rng rng(606);
    for (unsigned d = 1; d <= 10; ++d) {
        uint64_t f = 600'000'000 / d;
        uint64_t demand =
            uint64_t(rng.range(int64_t(f / 2), int64_t(f)));
        auto z = mapping::exactRateMatch(f, demand);
        double effective = double(f) * z.usefulFraction();
        EXPECT_NEAR(effective, double(demand), 1e-6);
    }
}
