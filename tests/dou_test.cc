/** @file DOU state machine and state-word packing tests. */

#include <gtest/gtest.h>

#include "arch/dou.hh"
#include "common/log.hh"

using namespace synchro;
using namespace synchro::arch;

TEST(DouState, PackUnpackRoundTrip)
{
    DouState s;
    s.cntr = 3;
    s.seg = {0xf, 0x5, 0xa, 0x1};
    s.buf = {0x80, 0x7f, 0x08, 0xff};
    s.nxt0 = 127;
    s.nxt1 = 1;
    DouState back = DouState::unpack(s.pack());
    EXPECT_EQ(back, s);
    EXPECT_EQ(back.cntr, 3);
    EXPECT_EQ(back.seg[0], 0xf);
    EXPECT_EQ(back.buf[3], 0xff);
    EXPECT_EQ(back.nxt0, 127);
}

TEST(DouState, WordIs64BitsExactly)
{
    // CNTR(2) + 4xSEG(4) + 4xBUF(8) + NXT0(7) + NXT1(7) = 64 bits:
    // the all-ones state must use every bit and no more.
    DouState s;
    s.cntr = 3;
    s.seg = {0xf, 0xf, 0xf, 0xf};
    s.buf = {0xff, 0xff, 0xff, 0xff};
    s.nxt0 = 0x7f;
    s.nxt1 = 0x7f;
    EXPECT_EQ(s.pack(), ~uint64_t(0));
    DouState zero;
    EXPECT_EQ(zero.pack(), 0u);
}

TEST(BufferCtl, ByteLayout)
{
    BufferCtl c;
    c.drive = true;
    c.drive_lane = 5;
    c.capture = true;
    c.capture_lane = 3;
    EXPECT_EQ(c.byte(), 0x80 | (5 << 4) | 0x08 | 3);
    BufferCtl d = BufferCtl::fromByte(c.byte());
    EXPECT_TRUE(d.drive);
    EXPECT_EQ(d.drive_lane, 5);
    EXPECT_TRUE(d.capture);
    EXPECT_EQ(d.capture_lane, 3);
}

TEST(DouProgram, ValidationCatchesBadPrograms)
{
    DouProgram p;
    EXPECT_THROW(p.validate(), FatalError); // empty

    p = DouProgram::idle();
    EXPECT_NO_THROW(p.validate());

    p.states[0].nxt0 = 5; // out of range successor
    EXPECT_THROW(p.validate(), FatalError);

    p = DouProgram::idle();
    p.states.resize(DouMaxStates + 1);
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Dou, IdleLoopsForever)
{
    Dou dou(0);
    for (int i = 0; i < 10; ++i) {
        dou.step();
        EXPECT_EQ(dou.stateIndex(), 0u);
    }
}

TEST(Dou, CounterLoopSemantics)
{
    // Two states: state 0 repeats itself while counter 0 is nonzero
    // (NXTSTATE1), then falls to state 1 when it hits zero (NXTSTATE0,
    // which also reloads the counter). State 1 returns to 0.
    DouProgram p;
    DouState s0;
    s0.cntr = 0;
    s0.nxt0 = 1; // counter exhausted -> state 1
    s0.nxt1 = 0; // keep looping in state 0
    DouState s1;
    s1.cntr = 1; // counter 1 stays 0 -> always nxt0
    s1.nxt0 = 0;
    s1.nxt1 = 1;
    p.states = {s0, s1};
    p.counter_init = {3, 0, 0, 0};

    Dou dou(0);
    dou.load(p);

    // With init=3 the DOU stays in state 0 for 3 extra steps (counts
    // 3,2,1 decrementing), then transitions: period = 4 steps in s0.
    std::vector<unsigned> seen;
    for (int i = 0; i < 10; ++i) {
        seen.push_back(dou.stateIndex());
        dou.step();
    }
    EXPECT_EQ(seen, (std::vector<unsigned>{0, 0, 0, 0, 1,
                                           0, 0, 0, 0, 1}));
}

TEST(Dou, FourNestedCounters)
{
    // A chain imitating 2 nested loops: inner counter 0 (2 iters),
    // outer counter 1 (3 iters). Measure the period of the full nest.
    DouProgram p;
    DouState inner;
    inner.cntr = 0;
    inner.nxt1 = 0; // spin on inner
    inner.nxt0 = 1; // inner done -> outer check
    DouState outer;
    outer.cntr = 1;
    outer.nxt1 = 0; // outer not done -> restart inner
    outer.nxt0 = 2; // everything done -> idle
    DouState done;
    done.nxt0 = done.nxt1 = 2;
    p.states = {inner, outer, done};
    p.counter_init = {1, 2, 0, 0};

    Dou dou(0);
    dou.load(p);
    int steps = 0;
    while (dou.stateIndex() != 2 && steps < 100) {
        dou.step();
        ++steps;
    }
    // Inner takes 2 steps per pass (counts 1,0); passes = 3 (counter 1
    // counts 2,1,0); plus 3 outer-check steps: 2*3 + 3 = 9.
    EXPECT_EQ(steps, 9);
}

TEST(Dou, LoadResetsState)
{
    DouProgram p = DouProgram::idle();
    p.counter_init = {7, 0, 0, 0};
    Dou dou(0);
    dou.load(p);
    EXPECT_EQ(dou.counter(0), 7u);
    dou.step();
    dou.reset();
    EXPECT_EQ(dou.stateIndex(), 0u);
    EXPECT_EQ(dou.counter(0), 7u);
}
