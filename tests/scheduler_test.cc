/** @file Scheduler-backend seams: ClockDomain edge-iteration
 * equivalence, fast-path vs event-queue bit-identical execution, DOU
 * fast-forward arithmetic, and resume/tick-limit semantics. */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "arch/chip.hh"
#include "common/log.hh"
#include "isa/assembler.hh"
#include "mapping/comm_schedule.hh"
#include "sim/scheduler.hh"
#include "test_util.hh"

using namespace synchro;
using namespace synchro::arch;
using synchro::isa::assemble;

// ---------------------------------------------------------------
// ClockDomain edge iteration: every edge the fast scheduler would
// visit (walking nextEdgeAfter) is an edge the event queue would
// fire (onEdge scan), and vice versa.

TEST(ClockEdges, IterationMatchesScanForAllDividersAndPhases)
{
    constexpr Tick Horizon = 400;
    for (unsigned div = 1; div <= 16; ++div) {
        for (Tick phase : {Tick(0), Tick(1), Tick(div - 1)}) {
            if (phase >= div)
                continue;
            ClockDomain dom(600e6, div, phase);

            std::vector<Tick> scanned;
            for (Tick t = 0; t <= Horizon; ++t) {
                if (dom.onEdge(t))
                    scanned.push_back(t);
            }

            std::vector<Tick> walked;
            Tick t = dom.onEdge(0) ? 0 : dom.nextEdgeAfter(0);
            while (t <= Horizon) {
                walked.push_back(t);
                t = dom.nextEdgeAfter(t);
            }

            EXPECT_EQ(walked, scanned)
                << "divider " << div << " phase " << phase;
        }
    }
}

TEST(ClockEdges, NextEdgeIsStrictlyAfterAndOnEdge)
{
    for (unsigned div : {1u, 2u, 3u, 5u, 8u, 13u, 16u}) {
        ClockDomain dom(600e6, div, div / 2);
        for (Tick t = 0; t < 100; ++t) {
            Tick n = dom.nextEdgeAfter(t);
            EXPECT_GT(n, t);
            EXPECT_TRUE(dom.onEdge(n));
            // No edge strictly between t and n.
            for (Tick m = t + 1; m < n; ++m)
                EXPECT_FALSE(dom.onEdge(m));
        }
    }
}

// ---------------------------------------------------------------
// Dou::skipSteps must be arithmetically identical to n step() calls.

TEST(DouSkip, MatchesSteppedExecutionAcrossCounterWrap)
{
    for (uint32_t init : {0u, 1u, 2u, 7u}) {
        for (uint64_t n : {1ull, 2ull, 3ull, 7ull, 8ull, 100ull}) {
            DouProgram p = DouProgram::idle();
            p.counter_init[0] = init;

            Dou stepped(0), skipped(1);
            stepped.load(p);
            skipped.load(p);

            for (uint64_t i = 0; i < n; ++i)
                stepped.step();
            skipped.skipSteps(n);

            EXPECT_EQ(skipped.counter(0), stepped.counter(0))
                << "init " << init << " n " << n;
            EXPECT_EQ(skipped.stateIndex(), stepped.stateIndex());
            EXPECT_EQ(skipped.stats().value("steps"),
                      stepped.stats().value("steps"));
        }
    }
}

TEST(DouSkip, RefusesNonSelfLoopState)
{
    DouProgram p;
    DouState s0;
    s0.nxt0 = s0.nxt1 = 1; // not a self-loop
    DouState s1;
    s1.nxt0 = s1.nxt1 = 1;
    p.states = {s0, s1};
    Dou dou(0);
    dou.load(p);
    EXPECT_THROW(dou.skipSteps(3), PanicError);
}

// ---------------------------------------------------------------
// Whole-chip cross-checks: every backend must agree bit-for-bit with
// the event queue on architectural state, statistics, final tick,
// and exit reason. The comparison itself lives in test_util.hh
// (crossCheckBackends) so the mapped-app suites hold their pipelines
// to the same contract.

using synchro::test::allStats;
using synchro::test::AllSchedulerKinds;
using synchro::test::crossCheckBackends;

namespace
{

/** Run @p configure on a chip of each backend; compare everything. */
void
crossCheck(ChipConfig cfg, const std::function<void(Chip &)> &configure,
           Tick max_ticks = 1'000'000)
{
    crossCheckBackends(cfg, configure, max_ticks);
}

} // namespace

TEST(SchedulerEquivalence, MultiDividerComputeLoops)
{
    ChipConfig cfg;
    cfg.dividers = {8, 8, 4, 2};
    crossCheck(cfg, [](Chip &chip) {
        for (unsigned c = 0; c < chip.numColumns(); ++c) {
            chip.column(c).controller().loadProgram(assemble(R"(
                movi r0, 0
                lsetup lc0, e, 500
                addi r0, 1
            e:
                halt
            )"));
        }
    });
}

TEST(SchedulerEquivalence, PhasedColumns)
{
    ChipConfig cfg;
    cfg.dividers = {5, 3, 7};
    cfg.phases = {2, 0, 6};
    crossCheck(cfg, [](Chip &chip) {
        for (unsigned c = 0; c < chip.numColumns(); ++c) {
            chip.column(c).controller().loadProgram(assemble(R"(
                movi r0, 0
                lsetup lc0, e, 100
                addi r0, 3
            e:
                halt
            )"));
        }
    });
}

TEST(SchedulerEquivalence, ZormAndBranches)
{
    ChipConfig cfg;
    cfg.dividers = {4};
    crossCheck(cfg, [](Chip &chip) {
        chip.column(0).controller().loadProgram(assemble(R"(
            movi r0, 0
            movi r1, 40
            movi r2, 0
        top:
            addi r0, 2
            addi r1, -1
            cmpeq r1, r2
            jncc top
            halt
        )"));
        chip.column(0).controller().setRateMatch(3, 7);
    });
}

TEST(SchedulerEquivalence, CrossDomainCommunication)
{
    // Producer at divider 1 streams into a divider-3 consumer through
    // DOU schedules — exercises bus cycles, backpressure stalls, and
    // the non-inert DOU path where no edge skipping is possible.
    ChipConfig cfg;
    cfg.dividers = {1, 3};
    cfg.tiles_per_column = 1;
    crossCheck(cfg, [](Chip &chip) {
        chip.column(0).controller().loadProgram(assemble(R"(
            movi r7, 0
            lsetup lc0, e, 40
            addi r7, 1
            cwr r7
        e:
            halt
        )"));
        chip.column(1).controller().loadProgram(assemble(R"(
            movi r1, 0
            lsetup lc0, e, 40
            crd r0
            add r1, r1, r0
        e:
            halt
        )"));
        mapping::CommSchedule prod;
        prod.period = 6;
        prod.transfers = {{0, 0, 0, {}, true}};
        chip.column(0).dou().load(mapping::compileSchedule(prod));
        mapping::CommSchedule cons;
        cons.period = 1;
        cons.transfers = {{0, 0, -1, {0}, false}};
        chip.column(1).dou().load(mapping::compileSchedule(cons));
    });
}

TEST(SchedulerEquivalence, TickLimitAndResume)
{
    // A spinning column: both backends must stop at the same tick,
    // then resume identically across repeated small run() calls.
    auto build = [](SchedulerKind kind) {
        ChipConfig cfg;
        cfg.dividers = {3};
        cfg.scheduler = kind;
        auto chip = std::make_unique<Chip>(cfg);
        chip->column(0).controller().loadProgram(assemble(R"(
        spin:
            jump spin
        )"));
        return chip;
    };
    auto ref = build(SchedulerKind::EventQueue);
    auto rr = ref->run(100);
    EXPECT_EQ(int(rr.exit), int(RunExit::TickLimit));

    for (SchedulerKind kind : AllSchedulerKinds) {
        if (kind == SchedulerKind::EventQueue)
            continue;
        auto ref2 = build(SchedulerKind::EventQueue);
        auto chip = build(kind);
        auto r2 = ref2->run(100);
        auto rc = chip->run(100);
        EXPECT_EQ(int(rc.exit), int(RunExit::TickLimit))
            << schedulerName(kind);
        EXPECT_EQ(rc.ticks, r2.ticks) << schedulerName(kind);

        for (int i = 0; i < 5; ++i) {
            r2 = ref2->run(7);
            rc = chip->run(7);
            EXPECT_EQ(rc.ticks, r2.ticks)
                << schedulerName(kind) << " resume step " << i;
            EXPECT_EQ(allStats(*chip), allStats(*ref2))
                << schedulerName(kind);
        }
    }
}

TEST(SchedulerEquivalence, SteppedRunMatchesBatchOnFastPaths)
{
    auto build = [](SchedulerKind kind) {
        ChipConfig cfg;
        cfg.dividers = {2, 5};
        cfg.scheduler = kind;
        auto chip = std::make_unique<Chip>(cfg);
        for (unsigned c = 0; c < 2; ++c) {
            chip->column(c).controller().loadProgram(assemble(R"(
                movi r0, 0
                lsetup lc0, e, 60
                addi r0, 1
            e:
                halt
            )"));
        }
        return chip;
    };
    for (SchedulerKind kind : AllSchedulerKinds) {
        auto batch = build(kind);
        auto batch_res = batch->run(100'000);
        ASSERT_EQ(int(batch_res.exit), int(RunExit::AllHalted))
            << schedulerName(kind);

        auto stepped = build(kind);
        Tick guard = 0;
        while (!stepped->allHalted() && guard++ < 100'000)
            stepped->run(1);
        EXPECT_EQ(stepped->curTick(), batch->curTick())
            << schedulerName(kind);
        EXPECT_EQ(allStats(*stepped), allStats(*batch))
            << schedulerName(kind);
    }
}

TEST(SchedulerEquivalence, FastPathSkipsWork)
{
    // Sanity that the fast path actually exploits the edge pattern:
    // with dividers {8,8,4,2} and idle DOUs, the per-tick DOU step
    // stats must still match the event queue exactly (the skipped
    // ticks are credited arithmetically).
    ChipConfig cfg;
    cfg.dividers = {8, 8, 4, 2};
    crossCheck(cfg, [](Chip &chip) {
        for (unsigned c = 0; c < chip.numColumns(); ++c) {
            chip.column(c).controller().loadProgram(assemble(R"(
                movi r0, 0
                lsetup lc0, e, 1000
                addi r0, 1
            e:
                halt
            )"));
        }
    });
}

TEST(SchedulerFactory, NamesAndKinds)
{
    const char *names[] = {"eventq", "fastedge", "compiled",
                           "parallel"};
    int i = 0;
    for (SchedulerKind kind : AllSchedulerKinds) {
        auto sched = makeScheduler(kind);
        EXPECT_EQ(std::string(sched->name()), names[i++]);
        EXPECT_EQ(int(sched->kind()), int(kind));
        EXPECT_EQ(sched->curTick(), 0u);
    }

    SchedulerKind parsed;
    for (SchedulerKind kind : AllSchedulerKinds) {
        ASSERT_TRUE(parseSchedulerKind(schedulerName(kind), parsed));
        EXPECT_EQ(int(parsed), int(kind));
    }
    EXPECT_FALSE(parseSchedulerKind("warp-drive", parsed));
}
