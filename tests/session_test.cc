/** @file SimSession: multi-chip batches, thread-count-independent
 * determinism, and cross-chip stat aggregation. */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "common/log.hh"
#include "isa/assembler.hh"
#include "sim/session.hh"

using namespace synchro;
using namespace synchro::arch;
using synchro::isa::assemble;

namespace
{

/** A small heterogeneous fleet: varied dividers and loop counts. */
void
populate(sim::SimSession &session, unsigned n_chips)
{
    for (unsigned i = 0; i < n_chips; ++i) {
        ChipConfig cfg;
        cfg.dividers = {1u + i % 4, 2u + i % 3};
        cfg.tiles_per_column = 1 + i % 4;
        unsigned id = session.admit(sim::ChipSpec(cfg));
        EXPECT_EQ(id, i);
        for (unsigned c = 0; c < session.chip(id).numColumns(); ++c) {
            session.chip(id).column(c).controller().loadProgram(
                assemble(strprintf(R"(
                movi r0, 0
                lsetup lc0, e, %u
                addi r0, 1
            e:
                halt
            )", 50 + 13 * i)));
        }
    }
}

std::map<std::string, uint64_t>
chipStats(const Chip &chip)
{
    std::map<std::string, uint64_t> out;
    chip.forEachStat([&out](const std::string &name, uint64_t v) {
        out[name] = v;
    });
    return out;
}

} // namespace

TEST(SimSession, RunsEveryChipToCompletion)
{
    sim::SimSession session;
    populate(session, 6);
    auto results = session.runAll(1'000'000);
    ASSERT_EQ(results.size(), 6u);
    for (unsigned i = 0; i < 6; ++i) {
        EXPECT_EQ(int(results[i].exit), int(RunExit::AllHalted)) << i;
        EXPECT_EQ(session.chip(i).column(0).tile(0).reg(0),
                  50u + 13 * i);
    }
    EXPECT_EQ(session.results().size(), 6u);
}

TEST(SimSession, DeterministicAcrossThreadCounts)
{
    // Same fleet, 1 worker vs many workers: per-chip results and
    // every statistic must be identical.
    sim::SessionConfig one;
    one.threads = 1;
    sim::SimSession serial(one);
    populate(serial, 8);
    auto serial_results = serial.runAll(1'000'000);

    sim::SessionConfig many;
    many.threads = 4;
    sim::SimSession parallel(many);
    populate(parallel, 8);
    auto parallel_results = parallel.runAll(1'000'000);

    ASSERT_EQ(serial_results.size(), parallel_results.size());
    for (size_t i = 0; i < serial_results.size(); ++i) {
        EXPECT_EQ(int(parallel_results[i].exit),
                  int(serial_results[i].exit))
            << i;
        EXPECT_EQ(parallel_results[i].ticks, serial_results[i].ticks)
            << i;
        EXPECT_EQ(chipStats(parallel.chip(unsigned(i))),
                  chipStats(serial.chip(unsigned(i))))
            << i;
    }

    auto sa = serial.aggregate();
    auto pa = parallel.aggregate();
    EXPECT_EQ(pa.counters, sa.counters);
    EXPECT_EQ(pa.total_ticks, sa.total_ticks);
    EXPECT_EQ(pa.halted, sa.halted);
}

TEST(SimSession, AggregateCountsExitsAndSumsCounters)
{
    sim::SimSession session;
    // Chip 0 halts; chip 1 spins into its tick budget.
    ChipConfig cfg;
    cfg.dividers = {1};
    cfg.tiles_per_column = 1;
    session.addChip(cfg);
    session.addChip(cfg);
    session.chip(0).column(0).controller().loadProgram(assemble(R"(
        movi r0, 7
        halt
    )"));
    session.chip(1).column(0).controller().loadProgram(assemble(R"(
    spin:
        jump spin
    )"));

    auto results = session.runAll(500);
    EXPECT_EQ(int(results[0].exit), int(RunExit::AllHalted));
    EXPECT_EQ(int(results[1].exit), int(RunExit::TickLimit));

    auto agg = session.aggregate();
    EXPECT_EQ(agg.chips, 2u);
    EXPECT_EQ(agg.halted, 1u);
    EXPECT_EQ(agg.tick_limited, 1u);
    EXPECT_EQ(agg.deadlocked, 0u);
    EXPECT_EQ(agg.max_ticks_reached, 500u);

    // Summed counters equal the per-chip sums.
    uint64_t issued0 =
        session.chip(0).column(0).controller().stats().value("issued");
    uint64_t issued1 =
        session.chip(1).column(0).controller().stats().value("issued");
    EXPECT_EQ(agg.counters.at("col0.ctrl.issued"), issued0 + issued1);
    EXPECT_GT(agg.counters.at("col0.dou.steps"), 0u);
}

TEST(SimSession, RepeatedRunAllAccumulatesTime)
{
    sim::SimSession session;
    ChipConfig cfg;
    cfg.dividers = {1};
    cfg.tiles_per_column = 1;
    session.addChip(cfg);
    session.chip(0).column(0).controller().loadProgram(assemble(R"(
    spin:
        jump spin
    )"));
    auto first = session.runAll(100);
    EXPECT_EQ(first[0].ticks, 100u);
    auto second = session.runAll(100);
    EXPECT_EQ(second[0].ticks, 200u);
}

TEST(SimSession, MixedSchedulerBackendsAgree)
{
    // A session may mix backends chip-by-chip; both halves of a
    // mirrored fleet must produce identical results.
    sim::SimSession session;
    for (auto kind :
         {SchedulerKind::EventQueue, SchedulerKind::FastEdge}) {
        ChipConfig cfg;
        cfg.dividers = {8, 8, 4, 2};
        cfg.scheduler = kind;
        unsigned id = session.addChip(cfg);
        for (unsigned c = 0; c < 4; ++c) {
            session.chip(id).column(c).controller().loadProgram(
                assemble(R"(
                movi r0, 0
                lsetup lc0, e, 400
                addi r0, 1
            e:
                halt
            )"));
        }
    }
    auto results = session.runAll(1'000'000);
    EXPECT_EQ(results[0].ticks, results[1].ticks);
    EXPECT_EQ(chipStats(session.chip(0)), chipStats(session.chip(1)));
}

TEST(SimSession, HeterogeneousBatchMixesAddAdoptAttach)
{
    // One batch, three provenances: a session-built chip, an adopted
    // externally built chip with a different config, and an attached
    // caller-owned chip — each with its own program.
    sim::SimSession session;

    ChipConfig built;
    built.dividers = {2};
    built.tiles_per_column = 1;
    unsigned a = session.addChip(built);
    session.chip(a).column(0).controller().loadProgram(assemble(R"(
        movi r0, 11
        halt
    )"));

    ChipConfig adopted_cfg;
    adopted_cfg.dividers = {1, 3};
    adopted_cfg.tiles_per_column = 2;
    adopted_cfg.scheduler = SchedulerKind::EventQueue;
    auto adopted = std::make_unique<Chip>(adopted_cfg);
    for (unsigned c = 0; c < 2; ++c) {
        adopted->column(c).controller().loadProgram(assemble(R"(
            movi r0, 22
            halt
        )"));
    }
    unsigned b = session.adoptChip(std::move(adopted));

    ChipConfig attached_cfg;
    attached_cfg.dividers = {4};
    attached_cfg.tiles_per_column = 1;
    Chip attached(attached_cfg);
    attached.column(0).controller().loadProgram(assemble(R"(
        movi r0, 33
        halt
    )"));
    unsigned c = session.attachChip(attached);

    auto results = session.runAll(1'000'000);
    ASSERT_EQ(results.size(), 3u);
    for (const auto &r : results)
        EXPECT_EQ(int(r.exit), int(RunExit::AllHalted));
    EXPECT_EQ(session.chip(a).column(0).tile(0).reg(0), 11u);
    EXPECT_EQ(session.chip(b).column(0).tile(0).reg(0), 22u);
    EXPECT_EQ(session.chip(c).column(0).tile(0).reg(0), 33u);
    EXPECT_EQ(&session.chip(c), &attached);

    // Per-chip stats isolation: the attached chip's statistics are
    // exactly what the same chip produces running solo.
    Chip solo(attached_cfg);
    solo.column(0).controller().loadProgram(assemble(R"(
        movi r0, 33
        halt
    )"));
    solo.run(1'000'000);
    EXPECT_EQ(chipStats(attached), chipStats(solo));

    // And the aggregate is the sum of all three distinct chips.
    auto agg = session.aggregate();
    EXPECT_EQ(agg.chips, 3u);
    EXPECT_EQ(agg.halted, 3u);
}

TEST(SimSession, PerChipTickLimitsGovern)
{
    sim::SimSession session;
    ChipConfig cfg;
    cfg.dividers = {1};
    cfg.tiles_per_column = 1;
    auto spinner = [&] {
        auto chip = std::make_unique<Chip>(cfg);
        chip->column(0).controller().loadProgram(assemble(R"(
        spin:
            jump spin
        )"));
        return chip;
    };
    session.adoptChip(spinner(), 100);
    session.adoptChip(spinner()); // 0 = use runAll's budget
    unsigned third = session.adoptChip(spinner(), 1000);
    session.setTickLimit(third, 50);

    auto results = session.runAll(500);
    EXPECT_EQ(results[0].ticks, 100u);
    EXPECT_EQ(results[1].ticks, 500u);
    EXPECT_EQ(results[2].ticks, 50u);
}

TEST(SimSession, HeterogeneousBatchDeterministicAcrossThreadCounts)
{
    // The same heterogeneous batch — mixed dividers, schedulers and
    // per-chip budgets — run under different pool widths must
    // produce identical per-chip ticks and statistics.
    auto build = [](unsigned threads) {
        sim::SessionConfig scfg;
        scfg.threads = threads;
        auto session = std::make_unique<sim::SimSession>(scfg);
        for (unsigned i = 0; i < 9; ++i) {
            ChipConfig cfg;
            cfg.dividers = {1u + i % 5, 2u + i % 4};
            cfg.tiles_per_column = 1 + i % 4;
            cfg.scheduler = i % 2 ? SchedulerKind::EventQueue
                                  : SchedulerKind::FastEdge;
            auto chip = std::make_unique<Chip>(cfg);
            for (unsigned c = 0; c < chip->numColumns(); ++c) {
                chip->column(c).controller().loadProgram(
                    assemble(strprintf(R"(
                    movi r0, 0
                    lsetup lc0, e, %u
                    addi r0, 1
                e:
                    halt
                )", 40 + 17 * i)));
            }
            session->adoptChip(std::move(chip),
                               i % 3 == 0 ? 200 + 100 * i : 0);
        }
        return session;
    };

    auto serial = build(1);
    auto parallel = build(4);
    auto rs = serial->runAll(1'000'000);
    auto rp = parallel->runAll(1'000'000);
    ASSERT_EQ(rs.size(), rp.size());
    for (size_t i = 0; i < rs.size(); ++i) {
        EXPECT_EQ(int(rp[i].exit), int(rs[i].exit)) << i;
        EXPECT_EQ(rp[i].ticks, rs[i].ticks) << i;
        EXPECT_EQ(chipStats(parallel->chip(unsigned(i))),
                  chipStats(serial->chip(unsigned(i))))
            << i;
    }
}

TEST(SimSession, EmptySessionIsHarmless)
{
    sim::SimSession session;
    EXPECT_EQ(session.numChips(), 0u);
    auto results = session.runAll(100);
    EXPECT_TRUE(results.empty());
    auto agg = session.aggregate();
    EXPECT_EQ(agg.chips, 0u);
    EXPECT_TRUE(agg.counters.empty());
}

TEST(SimSession, AdmitCoversEveryProvenanceAndKnob)
{
    // The one admission path: session-built from a config (with a
    // backend override folded in before construction), adopted with
    // a per-chip budget, and borrowed with a post-hoc re-home.
    sim::SimSession session;

    ChipConfig cfg;
    cfg.dividers = {1};
    cfg.tiles_per_column = 1;
    cfg.scheduler = SchedulerKind::FastEdge;
    unsigned a = session.admit(
        sim::ChipSpec(cfg).backend(SchedulerKind::EventQueue));
    EXPECT_EQ(int(session.chip(a).schedulerKind()),
              int(SchedulerKind::EventQueue));
    session.chip(a).column(0).controller().loadProgram(assemble(R"(
        movi r0, 5
        halt
    )"));

    auto spinner = std::make_unique<Chip>(cfg);
    spinner->column(0).controller().loadProgram(assemble(R"(
    spin:
        jump spin
    )"));
    unsigned b =
        session.admit(sim::ChipSpec(std::move(spinner)).tickLimit(70));

    Chip borrowed(cfg);
    borrowed.column(0).controller().loadProgram(assemble(R"(
        movi r0, 9
        halt
    )"));
    unsigned c = session.admit(
        sim::ChipSpec(borrowed).backend(SchedulerKind::EventQueue));
    EXPECT_EQ(int(borrowed.schedulerKind()),
              int(SchedulerKind::EventQueue));

    auto results = session.runAll(500);
    EXPECT_EQ(int(results[a].exit), int(RunExit::AllHalted));
    EXPECT_EQ(results[b].ticks, 70u);
    EXPECT_EQ(int(results[c].exit), int(RunExit::AllHalted));
    EXPECT_EQ(borrowed.column(0).tile(0).reg(0), 9u);
}

TEST(SimSession, AdmitRejectsAnEmptySpec)
{
    sim::SimSession session;
    EXPECT_THROW(
        session.admit(sim::ChipSpec(std::unique_ptr<Chip>())),
        FatalError);
}

TEST(SimSession, SingleChipRunsInline)
{
    // One chip (or a one-thread pool) must not cost a thread spawn:
    // the chip runs on the caller's thread, and errors surface
    // directly. Observable contract: the run works and a fatal()
    // from inside the chip still arrives as FatalError.
    sim::SimSession session;
    ChipConfig cfg;
    cfg.dividers = {1};
    cfg.tiles_per_column = 1;
    unsigned id = session.admit(sim::ChipSpec(cfg));
    EXPECT_EQ(session.effectiveThreads(), 1u);
    session.chip(id).column(0).controller().loadProgram(assemble(R"(
        movi r0, 3
        halt
    )"));
    auto results = session.runAll(1'000);
    EXPECT_EQ(int(results[0].exit), int(RunExit::AllHalted));
    EXPECT_EQ(session.chip(id).column(0).tile(0).reg(0), 3u);
}
