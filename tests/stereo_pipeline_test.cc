/** @file End-to-end mapped stereo vision: the prefilter ->
 * fork(SAD x4) -> min-SAD join DAG planned by the AutoMapper, lowered
 * by the DAG codegen, run cycle-accurately and checked bit-exactly
 * against dsp::stereoBlockDisparities — on every scheduler backend,
 * with the measured power priced against the paper's Table 4 SV row. */

#include <gtest/gtest.h>

#include "test_util.hh"

#include "apps/paper_workloads.hh"
#include "apps/stereo_runner.hh"
#include "common/rng.hh"
#include "dsp/stereo.hh"

using namespace synchro;
using namespace synchro::apps;
using namespace synchro::dsp;

namespace
{

StereoPipelineParams
smallRun(SchedulerKind kind)
{
    StereoPipelineParams p;
    p.scheduler = kind;
    return p;
}

} // namespace

TEST(StereoGolden, PrefilterMatchesHandComputedRow)
{
    Image img(4, 1);
    img(0, 0) = 10;
    img(1, 0) = 20;
    img(2, 0) = 100;
    img(3, 0) = 200;
    Image f = prefilter3(img);
    // (at(x-1) + 2 at(x) + at(x+1) + 2) >> 2, edges clamped.
    EXPECT_EQ(f(0, 0), (10 + 2 * 10 + 20 + 2) >> 2);
    EXPECT_EQ(f(1, 0), (10 + 2 * 20 + 100 + 2) >> 2);
    EXPECT_EQ(f(2, 0), (20 + 2 * 100 + 200 + 2) >> 2);
    EXPECT_EQ(f(3, 0), (100 + 2 * 200 + 200 + 2) >> 2);
}

TEST(StereoGolden, PadReplicateReadsClampedColumns)
{
    Image img(2, 2);
    img(0, 0) = 7;
    img(1, 0) = 9;
    img(0, 1) = 3;
    img(1, 1) = 5;
    Image p = padLeftReplicate(img, 3);
    ASSERT_EQ(p.width(), 5u);
    // Columns 0..3 all read the clamped first column.
    for (unsigned x = 0; x <= 3; ++x) {
        EXPECT_EQ(p(x, 0), 7);
        EXPECT_EQ(p(x, 1), 3);
    }
    EXPECT_EQ(p(4, 0), 9);
    EXPECT_EQ(p(4, 1), 5);
}

TEST(StereoGolden, UniformShiftRecoversItsDisparity)
{
    // right(x) = left(x + 6) everywhere: every interior block's best
    // disparity is 6 under the sadKey ordering.
    Image left(32, 16), right(32, 16);
    Rng rng(99);
    for (unsigned y = 0; y < 16; ++y)
        for (unsigned x = 0; x < 32; ++x)
            left(x, y) = uint8_t(rng.below(256));
    for (unsigned y = 0; y < 16; ++y)
        for (unsigned x = 0; x < 32; ++x)
            right(x, y) = left.at(int(x) + 6, int(y));
    auto disp = stereoBlockDisparities(left, right, 8, 16);
    ASSERT_EQ(disp.size(), 8u);
    // The rightmost block column folds into the clamped edge; all
    // others must recover the shift exactly.
    for (unsigned by = 0; by < 2; ++by)
        for (unsigned bx = 0; bx + 1 < 4; ++bx)
            EXPECT_EQ(disp[by * 4 + bx], 6) << "block " << bx;
}

TEST(StereoPipeline, MappedStereoMatchesGoldenOnEveryBackend)
{
    MappedStereoRun evq =
        runMappedStereo(smallRun(SchedulerKind::EventQueue));

    ASSERT_EQ(evq.output.size(), StereoBlocks);
    EXPECT_TRUE(evq.bit_exact);
    EXPECT_EQ(evq.output, evq.golden);

    // The disparity map must recover the scene's two depth bands.
    EXPECT_GE(evq.truth_hit_rate, 0.8);

    // The self-timed schedule must never destroy data; deferral (not
    // overrun) is the flow-control mechanism.
    EXPECT_EQ(evq.overruns, 0u);
    EXPECT_EQ(evq.conflicts, 0u);
    EXPECT_GT(evq.bus_transfers, 0u);

    for (SchedulerKind kind : synchro::test::AllSchedulerKinds) {
        if (kind == SchedulerKind::EventQueue)
            continue;
        MappedStereoRun run = runMappedStereo(smallRun(kind));
        const char *name = schedulerName(kind);

        // Backend equivalence: same exit, same final tick, same
        // disparity map, every statistic of the chip identical.
        EXPECT_TRUE(run.bit_exact) << name;
        EXPECT_EQ(run.output, evq.output) << name;
        EXPECT_EQ(run.result.exit, evq.result.exit) << name;
        EXPECT_EQ(run.ticks, evq.ticks) << name;
        EXPECT_EQ(run.stats, evq.stats) << name;
    }
}

TEST(StereoPipeline, PlanMapsTheDagToSixColumns)
{
    StereoPipelineParams p;
    auto plan = planStereo(p);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->placements.size(), 2u + StereoSadColumns);
    EXPECT_EQ(plan->total_columns, 2u + StereoSadColumns);
    // The paper's SV shape emerges: the serial prefilter column
    // needs the top supply while the four SAD columns idle down.
    double vmin = 10, vmax = 0;
    for (const auto &pl : plan->placements) {
        vmin = std::min(vmin, pl.v);
        vmax = std::max(vmax, pl.v);
    }
    EXPECT_LT(vmin, vmax);
    EXPECT_EQ(plan->placements[0].actor, "prefilter");
    EXPECT_EQ(plan->placements[0].divider, 1u);
    for (unsigned i = 1; i <= StereoSadColumns; ++i)
        EXPECT_GT(plan->placements[i].divider, 1u);
}

TEST(StereoPipeline, MeasuredPowerComparisonIsTable4Consistent)
{
    MappedStereoRun run =
        runMappedStereo(smallRun(SchedulerKind::FastEdge));

    // Table 4's SV row: 32% saved by multiple voltage domains (the
    // serial stage pins the single-voltage baseline at the top
    // supply while the parallel correlation farm runs far below it).
    int paper_pct = 0;
    for (const auto &row : paperAppTotals()) {
        if (row.app == "SV")
            paper_pct = row.savings_pct;
    }
    EXPECT_EQ(paper_pct, 32);
    EXPECT_GT(run.power.single_v.total(), run.power.multi_v.total());
    EXPECT_NEAR(run.power.savingsPct(), double(paper_pct), 10.0);

    for (const auto &load : run.power.loads)
        EXPECT_LE(load.v, run.power.vmax);
    EXPECT_GT(run.achieved_block_rate_hz, 0);
}
