/** @file Integration tests: DOU-scheduled communication over the
 * segmented bus, within and across columns and clock domains. */

#include <gtest/gtest.h>

#include "arch/chip.hh"
#include "common/log.hh"
#include "isa/assembler.hh"

using namespace synchro;
using namespace synchro::arch;
using synchro::isa::assemble;

namespace
{

/** DOU program: one repeating state with the given controls. */
DouProgram
steadyState(std::array<uint8_t, 4> seg, std::array<BufferCtl, 4> bufs)
{
    DouProgram p;
    DouState s;
    s.seg = seg;
    for (unsigned t = 0; t < 4; ++t)
        s.buf[t] = bufs[t].byte();
    p.states = {s};
    return p;
}

BufferCtl
driveOn(unsigned lane)
{
    BufferCtl c;
    c.drive = true;
    c.drive_lane = uint8_t(lane);
    return c;
}

BufferCtl
captureOn(unsigned lane)
{
    BufferCtl c;
    c.capture = true;
    c.capture_lane = uint8_t(lane);
    return c;
}

BufferCtl
driveAndCapture(unsigned lane)
{
    BufferCtl c = driveOn(lane);
    c.capture = true;
    c.capture_lane = uint8_t(lane);
    return c;
}

} // namespace

TEST(ChipComm, CrossColumnProducerConsumer)
{
    // Column 0 (1 tile) streams five values to column 1 (1 tile)
    // through the horizontal bus; the consumer accumulates them.
    ChipConfig cfg;
    cfg.dividers = {1, 1};
    cfg.tiles_per_column = 1;
    Chip chip(cfg);

    chip.column(0).controller().loadProgram(assemble(R"(
        movi r7, 0
        lsetup lc0, send_end, 5
        addi r7, 1       ; values 1..5
        cwr r7
    send_end:
        halt
    )"));
    chip.column(1).controller().loadProgram(assemble(R"(
        movi r1, 0
        lsetup lc0, recv_end, 5
        crd r0
        add r1, r1, r0
    recv_end:
        halt
    )"));

    // Producer drives lane 0 through its boundary switch onto the
    // horizontal bus; consumer captures lane 0 from it.
    auto seg_h = std::array<uint8_t, 4>{0, 0, 0, 0x1}; // seg[3] lane0/1
    chip.column(0).dou().load(
        steadyState(seg_h, {driveOn(0), {}, {}, {}}));
    chip.column(1).dou().load(
        steadyState(seg_h, {captureOn(0), {}, {}, {}}));

    auto res = chip.run(10'000);
    ASSERT_EQ(res.exit, RunExit::AllHalted);
    EXPECT_EQ(chip.column(1).tile(0).reg(1), 15u); // 1+2+3+4+5
    EXPECT_EQ(chip.fabric().stats().value("conflicts"), 0u);
    EXPECT_EQ(chip.fabric().stats().value("overruns"), 0u);
    EXPECT_EQ(chip.fabric().transfers(), 5u);
}

TEST(ChipComm, SegmentedBusCarriesParallelTransfers)
{
    // Paper Section 2.3: "two messages can pass between neighboring
    // tiles using the same wires in different segments". Tiles 0->1
    // and 2->3 exchange on lane 0 simultaneously; segment point 1
    // stays open so the groups are disjoint.
    ChipConfig cfg;
    cfg.dividers = {1};
    cfg.tiles_per_column = 4;
    Chip chip(cfg);

    chip.column(0).controller().loadProgram(assemble(R"(
        tid r7
        addi r7, 100     ; tile t sends 100 + t
        cwr r7
        crd r0
        halt
    )"));

    auto seg = std::array<uint8_t, 4>{0x1, 0x0, 0x1, 0x0};
    chip.column(0).dou().load(steadyState(
        seg, {driveAndCapture(0), captureOn(0), driveAndCapture(0),
              captureOn(0)}));

    auto res = chip.run(1'000);
    ASSERT_EQ(res.exit, RunExit::AllHalted);
    EXPECT_EQ(chip.column(0).tile(0).reg(0), 100u); // own value back
    EXPECT_EQ(chip.column(0).tile(1).reg(0), 100u); // from tile 0
    EXPECT_EQ(chip.column(0).tile(2).reg(0), 102u); // own value back
    EXPECT_EQ(chip.column(0).tile(3).reg(0), 102u); // from tile 2
    EXPECT_EQ(chip.fabric().stats().value("conflicts"), 0u);
    // Both transfers happened in the same bus cycle on the same lane.
    EXPECT_EQ(chip.fabric().transfers(), 2u);
}

TEST(ChipComm, BroadcastWhenAllSwitchesClosed)
{
    // "if all the controllers are turned on, the bus becomes a
    // low-latency broadcast bus".
    ChipConfig cfg;
    cfg.dividers = {1};
    cfg.tiles_per_column = 4;
    Chip chip(cfg);

    chip.column(0).controller().loadProgram(assemble(R"(
        tid r0
        movi r1, 0
        cmpeq r0, r1
        movi r7, 777
        jncc skip_send
        cwr r7          ; only reached by the column, but the DOU only
    skip_send:          ; drives tile 0's buffer anyway
        crd r2
        halt
    )"));

    // All tiles capture lane 3; only tile 0 drives it.
    auto seg = std::array<uint8_t, 4>{0xf, 0xf, 0xf, 0x0};
    chip.column(0).dou().load(steadyState(
        seg, {driveAndCapture(3), captureOn(3), captureOn(3),
              captureOn(3)}));

    auto res = chip.run(1'000);
    ASSERT_EQ(res.exit, RunExit::AllHalted);
    for (unsigned t = 0; t < 4; ++t)
        EXPECT_EQ(chip.column(0).tile(t).reg(2), 777u) << "tile " << t;
    EXPECT_EQ(chip.fabric().transfers(), 1u);
}

TEST(ChipComm, ConflictDetectedWhenSegmentsMerge)
{
    // Same two pairs as the parallel-transfer test, but with every
    // switch closed the two drivers collide in one group.
    ChipConfig cfg;
    cfg.dividers = {1};
    cfg.tiles_per_column = 4;
    Chip chip(cfg);

    chip.column(0).controller().loadProgram(assemble(R"(
        tid r7
        cwr r7
        halt
    )"));
    auto seg = std::array<uint8_t, 4>{0x1, 0x1, 0x1, 0x0};
    chip.column(0).dou().load(steadyState(
        seg, {driveOn(0), {}, driveOn(0), {}}));

    auto res = chip.run(1'000);
    ASSERT_EQ(res.exit, RunExit::AllHalted);
    EXPECT_EQ(chip.fabric().stats().value("conflicts"), 1u);
}

TEST(ChipComm, ConflictIsFatalInStrictMode)
{
    // In strict mode the schedule must be exact, so the DOU waits one
    // cycle (for the cwr to land) and then creates the collision.
    ChipConfig cfg;
    cfg.dividers = {1};
    cfg.tiles_per_column = 4;
    cfg.strict = true;
    Chip chip(cfg);
    chip.column(0).controller().loadProgram(assemble(R"(
        tid r7
        cwr r7
        halt
    )"));
    DouProgram p;
    DouState wait; // tick 0: tid executes, nothing on the bus
    wait.nxt0 = wait.nxt1 = 1;
    DouState clash; // tick 1: both drivers in one merged group
    clash.seg = {0x1, 0x1, 0x1, 0x0};
    clash.buf[0] = driveOn(0).byte();
    clash.buf[2] = driveOn(0).byte();
    clash.nxt0 = clash.nxt1 = 2;
    DouState done;
    done.nxt0 = done.nxt1 = 2;
    p.states = {wait, clash, done};
    chip.column(0).dou().load(p);
    EXPECT_THROW(chip.run(1'000), FatalError);
}

TEST(ChipComm, CrossClockDomainTransferWithStalls)
{
    // Producer at 600 MHz (divider 1), consumer at 200 MHz (divider
    // 3): the consumer is the bottleneck, so the *producer* stalls on
    // its write buffer. The data still arrives intact — this is the
    // cross-domain synchronization the buffers provide.
    ChipConfig cfg;
    cfg.dividers = {1, 3};
    cfg.tiles_per_column = 1;
    Chip chip(cfg);

    chip.column(0).controller().loadProgram(assemble(R"(
        movi r7, 0
        lsetup lc0, e, 8
        addi r7, 1
        cwr r7
    e:
        halt
    )"));
    chip.column(1).controller().loadProgram(assemble(R"(
        movi r1, 0
        lsetup lc0, e, 8
        crd r0
        add r1, r1, r0
    e:
        halt
    )"));

    // Rate-matched schedule: the consumer's 2-instruction loop at
    // divider 3 consumes one value every 6 bus cycles, so the
    // producer's DOU drives once per 6 bus cycles; write-buffer
    // backpressure throttles the faster producer in between.
    DouProgram prod;
    for (unsigned s = 0; s < 6; ++s) {
        DouState st;
        if (s == 0) {
            st.seg = {0, 0, 0, 0x1};
            st.buf[0] = driveOn(0).byte();
        }
        st.nxt0 = st.nxt1 = uint8_t((s + 1) % 6);
        prod.states.push_back(st);
    }
    chip.column(0).dou().load(prod);
    chip.column(1).dou().load(steadyState(
        {0, 0, 0, 0x1}, {captureOn(0), {}, {}, {}}));

    auto res = chip.run(10'000);
    ASSERT_EQ(res.exit, RunExit::AllHalted);
    EXPECT_EQ(chip.column(1).tile(0).reg(1), 36u); // 1+..+8
    EXPECT_EQ(chip.fabric().stats().value("overruns"), 0u);
    // The fast producer had to wait on its write buffer: these stalls
    // are the cross-domain synchronization nops of paper Section 4.5.
    EXPECT_GT(chip.column(0).controller().stats().value("commStalls"),
              0u);
}

TEST(ChipComm, WriteBufferBackpressureStallsProducer)
{
    // No consumer ever captures, and the DOU never drives: the second
    // cwr must stall the producer column forever.
    ChipConfig cfg;
    cfg.dividers = {1};
    cfg.tiles_per_column = 1;
    Chip chip(cfg);
    chip.column(0).controller().loadProgram(assemble(R"(
        movi r7, 1
        cwr r7
        cwr r7
        halt
    )"));
    auto res = chip.run(500);
    EXPECT_EQ(res.exit, RunExit::TickLimit);
    EXPECT_GT(chip.column(0).controller().stats().value("commStalls"),
              400u);
}

TEST(ChipComm, GatherOverHorizontalBus)
{
    // Three producer columns send their column id; a fourth column
    // gathers all three values in schedule order — the gather-scatter
    // pattern the single horizontal bus supports (Section 2.3).
    ChipConfig cfg;
    cfg.dividers = {1, 1, 1, 1};
    cfg.tiles_per_column = 1;
    Chip chip(cfg);

    for (unsigned c = 0; c < 3; ++c) {
        chip.column(c).controller().loadProgram(assemble(strprintf(R"(
            movi r7, %u
            cwr r7
            halt
        )", c + 10)));
    }
    chip.column(3).controller().loadProgram(assemble(R"(
        crd r1
        crd r2
        crd r3
        add r0, r1, r2
        add r0, r0, r3
        halt
    )"));

    // Gather DOU schedules: producer c drives the horizontal bus in
    // bus cycle c+1 (its cwr lands at tick 1; one producer per cycle
    // avoids conflicts); the consumer captures every cycle.
    for (unsigned c = 0; c < 3; ++c) {
        DouProgram p;
        // waiting states (seg open, no buffers)
        for (unsigned w = 0; w < c + 1; ++w) {
            DouState idle;
            idle.nxt0 = idle.nxt1 = uint8_t(w + 1);
            p.states.push_back(idle);
        }
        DouState send;
        send.seg = {0, 0, 0, 0x1};
        BufferCtl d = driveOn(0);
        send.buf[0] = d.byte();
        send.nxt0 = send.nxt1 = uint8_t(c + 1);
        p.states.push_back(send);
        DouState done;
        done.nxt0 = done.nxt1 = uint8_t(p.states.size());
        p.states.push_back(done);
        chip.column(c).dou().load(p);
    }
    chip.column(3).dou().load(steadyState(
        {0, 0, 0, 0x1}, {captureOn(0), {}, {}, {}}));

    auto res = chip.run(10'000);
    ASSERT_EQ(res.exit, RunExit::AllHalted);
    EXPECT_EQ(chip.column(3).tile(0).reg(0), 10u + 11u + 12u);
}

TEST(CommBuffer, FailedPushLeavesPendingWordUntouched)
{
    // Drop-new semantics: the unread word survives a refused push.
    CommBuffer buf;
    EXPECT_TRUE(buf.push(111));
    EXPECT_FALSE(buf.push(222));
    EXPECT_TRUE(buf.valid());
    EXPECT_EQ(buf.peek(), 111u);
    EXPECT_EQ(buf.pop(), 111u);
    EXPECT_FALSE(buf.valid());
    EXPECT_TRUE(buf.push(222));
    EXPECT_EQ(buf.pop(), 222u);
}

TEST(ChipComm, NonStrictOverrunDropsNewWordDeliversFirst)
{
    // The producer fires two values onto the bus in back-to-back
    // cycles while the consumer is still busy, forcing a read-buffer
    // overrun. The *first* word must survive (drop-new) and be the
    // one the consumer's crd eventually sees; overruns_ records that
    // the second word was the casualty.
    ChipConfig cfg;
    cfg.dividers = {1, 1};
    cfg.tiles_per_column = 1;
    Chip chip(cfg);

    chip.column(0).controller().loadProgram(assemble(R"(
        movi r7, 111
        cwr r7
        movi r7, 222
        cwr r7
        halt
    )"));
    chip.column(1).controller().loadProgram(assemble(R"(
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        crd r0
        halt
    )"));

    auto seg_h = std::array<uint8_t, 4>{0, 0, 0, 0x1};
    chip.column(0).dou().load(
        steadyState(seg_h, {driveOn(0), {}, {}, {}}));
    chip.column(1).dou().load(
        steadyState(seg_h, {captureOn(0), {}, {}, {}}));

    auto res = chip.run(1'000);
    ASSERT_EQ(res.exit, RunExit::AllHalted);
    EXPECT_EQ(chip.column(1).tile(0).reg(0), 111u);
    EXPECT_EQ(chip.fabric().stats().value("overruns"), 1u);
}

TEST(ChipComm, SelfTimedBusDefersInsteadOfOverrunning)
{
    // The same back-to-back producer / busy consumer race as the
    // drop-new test above, but on the self-timed bus: the second
    // transfer defers (the producer keeps the word and its cwr
    // backpressure self-times the retry), so BOTH words arrive and
    // nothing overruns.
    ChipConfig cfg;
    cfg.dividers = {1, 1};
    cfg.tiles_per_column = 1;
    cfg.self_timed_bus = true;
    Chip chip(cfg);

    chip.column(0).controller().loadProgram(assemble(R"(
        movi r7, 111
        cwr r7
        movi r7, 222
        cwr r7
        halt
    )"));
    chip.column(1).controller().loadProgram(assemble(R"(
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        crd r0
        crd r1
        halt
    )"));

    auto seg_h = std::array<uint8_t, 4>{0, 0, 0, 0x1};
    chip.column(0).dou().load(
        steadyState(seg_h, {driveOn(0), {}, {}, {}}));
    chip.column(1).dou().load(
        steadyState(seg_h, {captureOn(0), {}, {}, {}}));

    auto res = chip.run(1'000);
    ASSERT_EQ(res.exit, RunExit::AllHalted);
    EXPECT_EQ(chip.column(1).tile(0).reg(0), 111u);
    EXPECT_EQ(chip.column(1).tile(0).reg(1), 222u);
    EXPECT_EQ(chip.fabric().stats().value("overruns"), 0u);
    EXPECT_GT(chip.fabric().stats().value("deferrals"), 0u);
}

TEST(ChipComm, LaneTaggedWordsWaitForTheirDriveSlot)
{
    // A producer emits one word for lane 0 and one for lane 1; its
    // DOU alternates drive slots lane1-first. The lane-1 slot must
    // defer while the buffered word is tagged for lane 0, so each
    // word still departs on its own lane — the binding that lets one
    // producer feed two DAG edges through a single write buffer.
    ChipConfig cfg;
    cfg.dividers = {1, 1};
    cfg.tiles_per_column = 1;
    cfg.self_timed_bus = true;
    Chip chip(cfg);

    chip.column(0).controller().loadProgram(assemble(R"(
        movi r7, 1111
        cwr r7, 0
        movi r7, 2222
        cwr r7, 1
        halt
    )"));
    chip.column(1).controller().loadProgram(assemble(R"(
        crd r1, 1
        crd r0, 0
        halt
    )"));

    // Alternate lane-1 and lane-0 drive/capture slots every cycle.
    DouProgram prod;
    DouState d1, d0;
    d1.seg = {0, 0, 0, 0x3};
    d1.buf[0] = driveOn(1).byte();
    d0.seg = {0, 0, 0, 0x3};
    d0.buf[0] = driveOn(0).byte();
    d1.nxt0 = d1.nxt1 = 1;
    d0.nxt0 = d0.nxt1 = 0;
    prod.states = {d1, d0};
    chip.column(0).dou().load(prod);

    DouProgram cons;
    DouState c1 = d1, c0 = d0;
    c1.buf[0] = captureOn(1).byte();
    c0.buf[0] = captureOn(0).byte();
    cons.states = {c1, c0};
    chip.column(1).dou().load(cons);

    auto res = chip.run(1'000);
    ASSERT_EQ(res.exit, RunExit::AllHalted);
    // The consumer read lane 1's word into r1 and lane 0's into r0:
    // tags beat slot order.
    EXPECT_EQ(chip.column(1).tile(0).reg(0), 1111u);
    EXPECT_EQ(chip.column(1).tile(0).reg(1), 2222u);
    EXPECT_EQ(chip.fabric().stats().value("overruns"), 0u);
}

TEST(ChipComm, StrictModeOverrunIsFatal)
{
    ChipConfig cfg;
    cfg.dividers = {1, 1};
    cfg.tiles_per_column = 1;
    cfg.strict = true;
    Chip chip(cfg);

    chip.column(0).controller().loadProgram(assemble(R"(
        movi r7, 111
        cwr r7
        movi r7, 222
        cwr r7
        halt
    )"));
    // The consumer never reads, so the second capture must overrun.
    chip.column(1).controller().loadProgram(assemble(R"(
        nop
        nop
        nop
        nop
        nop
        nop
        halt
    )"));

    // Strict mode demands an exact schedule, so the DOUs touch the
    // bus only on the two cycles the cwr values are actually there
    // (ticks 1 and 3): state sequence idle, xfer, idle, xfer, park.
    auto timed = [](bool capture) {
        DouProgram p;
        for (unsigned s = 0; s < 5; ++s) {
            DouState st;
            if (s == 1 || s == 3) {
                st.seg = {0, 0, 0, 0x1};
                st.buf[0] =
                    capture ? captureOn(0).byte() : driveOn(0).byte();
            }
            st.nxt0 = st.nxt1 = uint8_t(std::min(s + 1, 4u));
            p.states.push_back(st);
        }
        return p;
    };
    chip.column(0).dou().load(timed(false));
    chip.column(1).dou().load(timed(true));

    EXPECT_THROW(chip.run(1'000), FatalError);
}

TEST(ChipComm, WireSpanShorterWithSegmentation)
{
    // Energy proxy: the same transfer touches fewer bus nodes when
    // the unused switches stay open.
    auto run_one = [](uint8_t seg0_all) -> uint64_t {
        ChipConfig cfg;
        cfg.dividers = {1};
        cfg.tiles_per_column = 4;
        Chip chip(cfg);
        chip.column(0).controller().loadProgram(assemble(R"(
            tid r7
            cwr r7
            halt
        )"));
        std::array<uint8_t, 4> seg{0x1, seg0_all, seg0_all, seg0_all};
        chip.column(0).dou().load(steadyState(
            seg, {driveOn(0), captureOn(0), {}, {}}));
        chip.run(1'000);
        return chip.fabric().wireSpanSum();
    };
    uint64_t segmented = run_one(0x0);
    uint64_t flat = run_one(0x1);
    EXPECT_LT(segmented, flat);
}
