/** @file The shared mapped-app harness: reject paths (empty graphs,
 * unset run budgets), golden-mismatch reporting, and a regression
 * pin that the refactored DDC/wifi runners still produce exactly the
 * pre-refactor cycle traces. */

#include <gtest/gtest.h>

#include "apps/app_harness.hh"
#include "apps/pipeline_runner.hh"
#include "apps/wifi_runner.hh"
#include "common/log.hh"

using namespace synchro;
using namespace synchro::apps;

TEST(AppHarness, RejectsAnEmptyGraph)
{
    mapping::SdfGraph empty;
    EXPECT_THROW(planApp(empty, {}, 1e6), FatalError);
}

TEST(AppHarness, RejectsANonPositiveRate)
{
    mapping::SdfGraph g;
    g.addActor("lonely", 10);
    EXPECT_THROW(planApp(g, {}, 0.0), FatalError);
    EXPECT_THROW(planApp(g, {}, -5.0), FatalError);
}

TEST(AppHarness, RejectsUnsetRunBudgets)
{
    // A real plan and program, but harness parameters that forgot
    // the items/tick budget: both must fail loudly, not misprice.
    DdcPipelineParams p;
    p.samples = 64;
    auto plan = planDdc(p);
    ASSERT_TRUE(plan.has_value());
    auto prog = mapping::lowerPipeline(ddcStages(p, ddcInput(p)),
                                       *plan, p.sample_rate_hz / 8,
                                       p.slack);

    MappedAppParams no_items;
    no_items.app = "test";
    no_items.tick_limit = 1000;
    EXPECT_THROW(MappedApp(no_items, *plan, prog), FatalError);

    MappedAppParams no_limit;
    no_limit.app = "test";
    no_limit.priced_items = 64;
    EXPECT_THROW(MappedApp(no_limit, *plan, prog), FatalError);
}

TEST(AppHarness, DescribesGoldenMismatches)
{
    std::vector<int16_t> got = {1, 2, 3}, want = {1, 9, 3};
    EXPECT_EQ(describeMismatch("out", got, got), "");

    std::string diff = describeMismatch("out", got, want);
    EXPECT_NE(diff.find("index 1"), std::string::npos) << diff;
    EXPECT_NE(diff.find("got 2"), std::string::npos) << diff;
    EXPECT_NE(diff.find("want 9"), std::string::npos) << diff;

    std::vector<int16_t> shorter = {1, 2};
    std::string size_diff = describeMismatch("out", shorter, want);
    EXPECT_NE(size_diff.find("size mismatch"), std::string::npos)
        << size_diff;

    std::vector<uint8_t> b0 = {0, 1}, b1 = {0, 2};
    EXPECT_NE(describeMismatch("bytes", b0, b1).find("index 1"),
              std::string::npos);
}

/**
 * The harness refactor must be a pure extraction: the mapped DDC and
 * 802.11a runs are deterministic, so their final tick counts and bus
 * transfer totals must equal the values the pre-refactor runners
 * produced (captured from the PR 3 tree at these exact parameters).
 * A change here means the rebuilt runners are NOT behaviorally
 * identical — investigate before touching these constants.
 */
TEST(AppHarness, RefactoredRunnersKeepPreRefactorTraces)
{
    DdcPipelineParams dp;
    dp.samples = 512;
    MappedDdcRun ddc = runMappedDdc(dp);
    EXPECT_TRUE(ddc.bit_exact);
    EXPECT_EQ(ddc.ticks, 80712u);
    EXPECT_EQ(ddc.bus_transfers, 704u);

    WifiPipelineParams wp;
    wp.symbols = 8;
    MappedWifiRun wifi = runMappedWifi(wp);
    EXPECT_TRUE(wifi.bit_exact);
    EXPECT_EQ(wifi.ticks, 462960u);
    EXPECT_EQ(wifi.bus_transfers, 1536u);
}
