/** @file Unit tests for the common substrate. */

#include <gtest/gtest.h>

#include "common/bitfield.hh"
#include "common/fixed.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/strutil.hh"

using namespace synchro;

TEST(Bitfield, MaskBasics)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(8), 0xffu);
    EXPECT_EQ(mask(64), ~uint64_t(0));
}

TEST(Bitfield, BitsExtract)
{
    EXPECT_EQ(bits(0xdeadbeef, 31, 16), 0xdeadu);
    EXPECT_EQ(bits(0xdeadbeef, 15, 0), 0xbeefu);
    EXPECT_EQ(bits(0xf0, 7, 4), 0xfu);
    EXPECT_EQ(bits(0x80, 7), 1u);
    EXPECT_EQ(bits(0x80, 6), 0u);
}

TEST(Bitfield, InsertBits)
{
    EXPECT_EQ(insertBits(0, 15, 8, 0xab), 0xab00u);
    EXPECT_EQ(insertBits(0xffffffff, 7, 0, 0), 0xffffff00u);
    // Field wider than slot is truncated.
    EXPECT_EQ(insertBits(0, 3, 0, 0x1f), 0xfu);
}

TEST(Bitfield, SignExtend)
{
    EXPECT_EQ(sext(0xff, 8), -1);
    EXPECT_EQ(sext(0x7f, 8), 127);
    EXPECT_EQ(sext(0x80, 8), -128);
    EXPECT_EQ(sext(0x3ff, 10), -1);
    EXPECT_EQ(sext(0x1ff, 10), 511);
}

TEST(Bitfield, DegenerateWidthsAreDefined)
{
    // Regression for shift-width overflow: these used to shift by
    // out-of-range amounts (undefined behaviour); now they have
    // defined, do-nothing results.
    EXPECT_EQ(bits(0xdeadbeef, 3, 8), 0u);  // last < first
    EXPECT_EQ(bits(0xdeadbeef, 70, 64), 0u); // first >= 64
    EXPECT_EQ(bits(~uint64_t(0), 63, 0), ~uint64_t(0));

    EXPECT_EQ(insertBits(0x1234, 3, 8, 0xff), 0x1234u);
    EXPECT_EQ(insertBits(0x1234, 70, 64, 0xff), 0x1234u);
    EXPECT_EQ(insertBits(0, 63, 0, ~uint64_t(0)), ~uint64_t(0));

    EXPECT_EQ(sext(0xff, 0), 0);
    EXPECT_EQ(sext(0x8000000000000000ull, 64),
              int64_t(0x8000000000000000ull));
    EXPECT_EQ(sext(0xff, 100), 0xff);
}

TEST(Bitfield, DivCeil)
{
    EXPECT_EQ(divCeil(10, 4), 3);
    EXPECT_EQ(divCeil(8, 4), 2);
    EXPECT_EQ(divCeil(1, 4), 1);
}

TEST(Fixed, Saturation)
{
    EXPECT_EQ(sat16(40000), INT16_MAX);
    EXPECT_EQ(sat16(-40000), INT16_MIN);
    EXPECT_EQ(sat16(1234), 1234);
    EXPECT_EQ(sat32(int64_t(1) << 40), INT32_MAX);
    EXPECT_EQ(sat40(int64_t(1) << 45), (int64_t(1) << 39) - 1);
    EXPECT_EQ(sat40(-(int64_t(1) << 45)), -(int64_t(1) << 39));
}

TEST(Fixed, Q15RoundTrip)
{
    EXPECT_EQ(toQ15(0.5), 16384);
    EXPECT_NEAR(fromQ15(toQ15(0.25)), 0.25, 1e-4);
    EXPECT_EQ(toQ15(1.0), INT16_MAX); // saturates
    EXPECT_EQ(toQ15(-1.0), INT16_MIN);
}

TEST(Fixed, MulQ15)
{
    // 0.5 * 0.5 = 0.25
    EXPECT_NEAR(fromQ15(mulQ15(toQ15(0.5), toQ15(0.5))), 0.25, 1e-3);
    // -1 * -1 saturates to just under 1.
    EXPECT_EQ(mulQ15(INT16_MIN, INT16_MIN), INT16_MAX);
}

TEST(Fixed, ComplexMultiply)
{
    // (1+0j) * (0+1j) = j, at half scale to avoid saturation:
    CplxQ15 a{toQ15(0.5), 0};
    CplxQ15 b{0, toQ15(0.5)};
    CplxQ15 p = mulCplxQ15(a, b);
    EXPECT_NEAR(fromQ15(p.re), 0.0, 1e-3);
    EXPECT_NEAR(fromQ15(p.im), 0.25, 1e-3);
}

TEST(Strutil, TrimAndCase)
{
    EXPECT_EQ(trim("  hi \t"), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim(" \t "), "");
    EXPECT_EQ(toLower("MoVi R7"), "movi r7");
}

TEST(Strutil, Split)
{
    auto v = split("a,b,,c", ',');
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[2], "");
    auto w = splitWs("  one  two\tthree ");
    ASSERT_EQ(w.size(), 3u);
    EXPECT_EQ(w[1], "two");
}

TEST(Strutil, ParseInt)
{
    int64_t v = 0;
    EXPECT_TRUE(parseInt("42", v));
    EXPECT_EQ(v, 42);
    EXPECT_TRUE(parseInt("-17", v));
    EXPECT_EQ(v, -17);
    EXPECT_TRUE(parseInt("0x1f", v));
    EXPECT_EQ(v, 31);
    EXPECT_TRUE(parseInt("0b101", v));
    EXPECT_EQ(v, 5);
    EXPECT_FALSE(parseInt("12x", v));
    EXPECT_FALSE(parseInt("", v));
    EXPECT_FALSE(parseInt("0x", v));
}

TEST(Rng, Deterministic)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformBounds)
{
    Rng r(3);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        EXPECT_LT(r.below(10), 10u);
        int64_t x = r.range(-5, 5);
        EXPECT_GE(x, -5);
        EXPECT_LE(x, 5);
    }
}

TEST(Rng, GaussMoments)
{
    Rng r(11);
    double sum = 0, sum2 = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double g = r.gauss();
        sum += g;
        sum2 += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Stats, CountersByName)
{
    StatGroup g;
    g.counter("a") += 3;
    ++g.counter("a");
    EXPECT_EQ(g.value("a"), 4u);
    EXPECT_EQ(g.value("missing"), 0u);
    EXPECT_TRUE(g.has("a"));
    EXPECT_FALSE(g.has("missing"));
    g.resetAll();
    EXPECT_EQ(g.value("a"), 0u);
}

TEST(Log, PanicAndFatalThrow)
{
    EXPECT_THROW(panic("boom %d", 3), PanicError);
    EXPECT_THROW(fatal("bad %s", "config"), FatalError);
}

TEST(Log, Strprintf)
{
    EXPECT_EQ(strprintf("x=%d y=%s", 5, "z"), "x=5 y=z");
}

TEST(Log, AssertMacro)
{
    EXPECT_NO_THROW(sync_assert(1 + 1 == 2, "fine"));
    EXPECT_THROW(sync_assert(false, "ctx %d", 9), PanicError);
}
