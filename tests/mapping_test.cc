/** @file Mapping-layer tests: SDF analysis, rate matching, the
 * optimizer, and the DOU schedule compiler run on the simulator. */

#include <gtest/gtest.h>

#include "arch/chip.hh"
#include "common/log.hh"
#include "isa/assembler.hh"
#include "mapping/comm_schedule.hh"
#include "mapping/optimizer.hh"
#include "mapping/rate_match.hh"
#include "mapping/sdf.hh"

using namespace synchro;
using namespace synchro::mapping;

// ---------------------------------------------------------------
// SDF

TEST(Sdf, ChainRepetitionVector)
{
    // A --2:1--> B --1:3--> C : q = (3, 6, 2) normalized.
    SdfGraph g;
    unsigned a = g.addActor("A");
    unsigned b = g.addActor("B");
    unsigned c = g.addActor("C");
    g.addEdge(a, b, 2, 1);
    g.addEdge(b, c, 1, 3);
    auto q = g.repetitionVector();
    ASSERT_TRUE(q.has_value());
    // qA*2 = qB, qB = 3*qC -> minimal (3, 6, 2).
    EXPECT_EQ(*q, (std::vector<uint64_t>{3, 6, 2}));
}

TEST(Sdf, DdcChainIsConsistent)
{
    // The DDC: mixer (1:1) -> integrator (1:1) -> decimate 8 ->
    // comb (1:1) -> CFIR (1:1) -> PFIR (1:1).
    SdfGraph g;
    unsigned mixer = g.addActor("mixer", 15);
    unsigned integ = g.addActor("integrator", 25);
    unsigned comb = g.addActor("comb", 20);
    unsigned cfir = g.addActor("cfir", 70);
    unsigned pfir = g.addActor("pfir", 200);
    g.addEdge(mixer, integ, 1, 1);
    g.addEdge(integ, comb, 1, 8); // CIC decimation by 8
    g.addEdge(comb, cfir, 1, 1);
    g.addEdge(cfir, pfir, 1, 1);
    auto q = g.repetitionVector();
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(*q, (std::vector<uint64_t>{8, 8, 1, 1, 1}));
    EXPECT_TRUE(g.deadlockFree());
    // Iteration work = 8*(15+25) + 20 + 70 + 200.
    EXPECT_EQ(g.iterationWork().value(), 8u * 40 + 290);
}

TEST(Sdf, InconsistentGraphDetected)
{
    // A -2:1-> B and A -1:1-> B cannot balance.
    SdfGraph g;
    unsigned a = g.addActor("A");
    unsigned b = g.addActor("B");
    g.addEdge(a, b, 2, 1);
    g.addEdge(a, b, 1, 1);
    EXPECT_FALSE(g.repetitionVector().has_value());
    EXPECT_FALSE(g.deadlockFree());
}

TEST(Sdf, DeadlockWithoutInitialTokens)
{
    SdfGraph g;
    unsigned a = g.addActor("A");
    unsigned b = g.addActor("B");
    g.addEdge(a, b, 1, 1);
    g.addEdge(b, a, 1, 1); // cycle with no delay
    ASSERT_TRUE(g.repetitionVector().has_value());
    EXPECT_FALSE(g.deadlockFree());
    // One initial token breaks the deadlock.
    SdfGraph g2;
    a = g2.addActor("A");
    b = g2.addActor("B");
    g2.addEdge(a, b, 1, 1);
    g2.addEdge(b, a, 1, 1, 1);
    EXPECT_TRUE(g2.deadlockFree());
}

TEST(Sdf, BufferBoundsOfDecimationChain)
{
    SdfGraph g;
    unsigned src = g.addActor("src");
    unsigned dec = g.addActor("dec");
    g.addEdge(src, dec, 1, 8);
    auto bounds = g.bufferBounds();
    ASSERT_TRUE(bounds.has_value());
    EXPECT_EQ((*bounds)[0], 8u); // at most 8 tokens queue up
}

TEST(Sdf, BadEdgesRejected)
{
    SdfGraph g;
    unsigned a = g.addActor("A");
    EXPECT_THROW(g.addEdge(a, 5, 1, 1), FatalError);
    unsigned b = g.addActor("B");
    EXPECT_THROW(g.addEdge(a, b, 0, 1), FatalError);
}

// ---------------------------------------------------------------
// Rate matching

TEST(RateMatch, ExactFractionReduction)
{
    // Column at 200 MHz, work needs 150 M slots/s: insert 1 nop per
    // 4 slots.
    ZormSetting z = exactRateMatch(200'000'000, 150'000'000);
    EXPECT_EQ(z.nops, 1u);
    EXPECT_EQ(z.period, 4u);
    EXPECT_DOUBLE_EQ(z.usefulFraction(), 0.75);
}

TEST(RateMatch, NoThrottlingWhenMatched)
{
    ZormSetting z = exactRateMatch(120'000'000, 120'000'000);
    EXPECT_EQ(z.period, 0u);
    EXPECT_DOUBLE_EQ(z.usefulFraction(), 1.0);
}

TEST(RateMatch, TooSlowIsFatal)
{
    EXPECT_THROW(exactRateMatch(100, 101), FatalError);
}

TEST(RateMatch, BoundedNeverUndershoots)
{
    // Property over awkward fractions: the realized useful fraction
    // must be >= requested (the column may only run slightly fast).
    for (double f : {0.9999, 0.87654, 0.5001, 0.333, 0.0101}) {
        ZormSetting z = boundedRateMatch(f, 1000);
        EXPECT_GE(z.usefulFraction(), f - 1e-12) << f;
        EXPECT_LE(z.usefulFraction() - f, 0.01) << f;
        if (z.period)
            EXPECT_LE(z.period, 1000u);
    }
}

TEST(RateMatch, ZormBeatsLoopPadding)
{
    // The paper's motivation for ZORM: padding whole nops into a
    // short loop cannot hit awkward ratios; ZORM can. A 7-slot loop
    // throttled to 0.9 useful: padding gives 7/8 = 0.875 (wastes
    // 2.9%); ZORM with period <= 64 lands within 0.2%.
    double target = 0.9;
    double padded = loopPaddingFraction(7, target);
    ZormSetting z = boundedRateMatch(target, 64);
    EXPECT_LT(padded, target); // padding overshoots the slowdown
    EXPECT_GE(z.usefulFraction(), target - 1e-12);
    EXPECT_LT(std::abs(z.usefulFraction() - target), 0.002);
    EXPECT_GT(target - padded, 0.02);
}

// ---------------------------------------------------------------
// Optimizer

namespace
{

power::SystemPowerModel &
model()
{
    static power::SystemPowerModel m;
    return m;
}

power::VfModel &
vf()
{
    static power::VfModel v;
    return v;
}

power::SupplyLevels &
levels()
{
    static power::SupplyLevels l(vf());
    return l;
}

} // namespace

TEST(Optimizer, MapAlgoQuantizesVoltage)
{
    Optimizer opt(model(), levels());
    AlgoLoad algo{"fir", 960.0, 64e6, 8, 1, 64,
                  CommScaling::Constant};
    // 8 tiles -> 120 MHz -> 0.8 V (a paper operating point).
    auto load = opt.mapAlgo(algo, 8);
    ASSERT_TRUE(load.has_value());
    EXPECT_DOUBLE_EQ(load->f_mhz, 120.0);
    EXPECT_DOUBLE_EQ(load->v, 0.8);
    // 3 tiles -> 320 MHz -> next level up (330 MHz @ 1.2 V).
    load = opt.mapAlgo(algo, 3);
    ASSERT_TRUE(load.has_value());
    EXPECT_DOUBLE_EQ(load->v, 1.2);
}

TEST(Optimizer, InfeasibleWhenTooFast)
{
    Optimizer opt(model(), levels());
    AlgoLoad algo{"hot", 5000.0, 0.0, 8, 1, 2,
                  CommScaling::Constant};
    // 2 tiles -> 2500 MHz: no supply level reaches that.
    EXPECT_FALSE(opt.mapAlgo(algo, 2).has_value());
}

TEST(Optimizer, ParallelizingSavesPowerUntilFloor)
{
    // Voltage scaling: more tiles -> lower f -> lower V -> less
    // power, until the voltage floor flattens the curve (paper
    // Section 5.2's diminishing returns).
    Optimizer opt(model(), levels());
    AlgoLoad algo{"x", 1600.0, 0.0, 8, 1, 64,
                  CommScaling::Constant};
    double p4 = model().loadPower(*opt.mapAlgo(algo, 4)).total();
    double p8 = model().loadPower(*opt.mapAlgo(algo, 8)).total();
    double p16 = model().loadPower(*opt.mapAlgo(algo, 16)).total();
    EXPECT_GT(p4, p8);
    EXPECT_GT(p8, p16);
    // At the floor voltage, doubling tiles no longer halves power —
    // leakage starts to climb.
    unsigned best = opt.bestTiles(algo);
    auto at_best = opt.mapAlgo(algo, best);
    auto doubled = opt.mapAlgo(algo, std::min(64u, best * 2));
    if (doubled) {
        EXPECT_LE(model().loadPower(*at_best).total(),
                  model().loadPower(*doubled).total());
    }
}

TEST(Optimizer, CommunicationCreatesDiminishingReturns)
{
    // With linear comm scaling, enough tiles makes power rise again.
    Optimizer opt(model(), levels());
    AlgoLoad algo{"chatty", 960.0, 2e9, 8, 1, 64,
                  CommScaling::Linear};
    unsigned best = opt.bestTiles(algo);
    EXPECT_LT(best, 64u);
    double p_best =
        model().loadPower(*opt.mapAlgo(algo, best)).total();
    double p_64 = model().loadPower(*opt.mapAlgo(algo, 64)).total();
    EXPECT_LT(p_best, p_64);
}

TEST(Optimizer, BudgetDpMatchesExhaustive)
{
    Optimizer opt(model(), levels());
    AppWorkload app;
    app.name = "toy";
    app.sample_rate_hz = 1e6;
    app.algos = {
        {"a", 800.0, 1e8, 4, 1, 16, CommScaling::Constant},
        {"b", 1200.0, 2e8, 6, 1, 16, CommScaling::Linear},
    };
    auto best = opt.mapWithBudget(app, 12);
    ASSERT_TRUE(best.has_value());

    // Exhaustive check over all feasible splits within 12 tiles.
    double exhaustive = 1e300;
    for (unsigned na = 1; na <= 11; ++na) {
        for (unsigned nb = 1; na + nb <= 12; ++nb) {
            auto m = opt.mapWithTiles(app, {na, nb});
            if (m)
                exhaustive =
                    std::min(exhaustive, m->power.total());
        }
    }
    EXPECT_NEAR(best->power.total(), exhaustive, 1e-9);
}

TEST(Optimizer, BudgetBelowFloorIsEmpty)
{
    Optimizer opt(model(), levels());
    AppWorkload app;
    app.algos = {
        {"a", 3000.0, 0.0, 8, 1, 64, CommScaling::Constant},
        {"b", 3000.0, 0.0, 8, 1, 64, CommScaling::Constant},
    };
    // Each algorithm needs >= ceil(3000/top-frequency) tiles; a
    // 2-tile budget cannot host both.
    EXPECT_FALSE(opt.mapWithBudget(app, 2).has_value());
}

TEST(Optimizer, SingleVoltageBaselineNeverCheaper)
{
    Optimizer opt(model(), levels());
    AppWorkload app;
    app.algos = {
        {"slow", 200.0, 1e7, 4, 1, 16, CommScaling::Constant},
        {"fast", 3000.0, 1e8, 8, 1, 16, CommScaling::Constant},
    };
    auto m = opt.mapWithBudget(app, 24);
    ASSERT_TRUE(m.has_value());
    EXPECT_GE(m->single_voltage.total(), m->power.total());
    EXPECT_GE(m->savingsPercent(), 0.0);
}

// ---------------------------------------------------------------
// Comm-schedule compiler

TEST(CommSchedule, CompiledProgramMatchesReferenceTrace)
{
    // A period-12 schedule with transfers at offsets 2 and 7 and a
    // 5-cycle prologue: the compiled DOU must emit exactly the
    // reference outputs for 5 periods.
    CommSchedule sched;
    sched.period = 12;
    sched.prologue = 5;
    sched.transfers = {
        {2, 0, 0, {1}, false},
        {7, 3, 2, {3}, false},
    };
    arch::DouProgram prog = compileSchedule(sched);
    EXPECT_LE(prog.states.size(), size_t(arch::DouMaxStates));

    arch::Dou dou(0);
    dou.load(prog);
    for (uint64_t cycle = 0; cycle < 5 + 12 * 5; ++cycle) {
        arch::DouState want = scheduleOutputAt(sched, cycle);
        const arch::DouState &got = dou.current();
        for (unsigned t = 0; t < arch::TilesPerColumn; ++t)
            EXPECT_EQ(got.buf[t], want.buf[t])
                << "cycle " << cycle << " tile " << t;
        for (unsigned s = 0; s < arch::SegPointsPerColumn; ++s)
            EXPECT_EQ(got.seg[s], want.seg[s])
                << "cycle " << cycle << " seg " << s;
        dou.step();
    }
}

TEST(CommSchedule, LongIdleGapsUseCounters)
{
    // A sparse schedule (1 transfer per 100 cycles) must compress
    // into a handful of states, not 100.
    CommSchedule sched;
    sched.period = 100;
    sched.transfers = {{0, 0, 0, {1}, false}};
    arch::DouProgram prog = compileSchedule(sched);
    EXPECT_LE(prog.states.size(), 4u);
}

TEST(CommSchedule, ConflictsRejected)
{
    CommSchedule sched;
    sched.period = 4;
    sched.transfers = {
        {1, 0, 0, {1}, false},
        {1, 0, 2, {3}, false}, // same lane, same offset
    };
    EXPECT_THROW(compileSchedule(sched), FatalError);
}

TEST(CommSchedule, OffsetsBeyondPeriodRejected)
{
    CommSchedule sched;
    sched.period = 4;
    sched.transfers = {{4, 0, 0, {1}, false}};
    EXPECT_THROW(compileSchedule(sched), FatalError);
}

TEST(CommSchedule, SegmentsSpanExactlyTheTransfer)
{
    CommSchedule sched;
    sched.period = 1;
    sched.transfers = {{0, 4, 1, {2}, false}}; // tiles 1 -> 2, lane 4
    arch::DouState st = scheduleOutputAt(sched, 0);
    // Lane 4 lives in pair bit 2; only segment point 1 (between
    // tiles 1 and 2) closes.
    EXPECT_EQ(st.seg[0], 0u);
    EXPECT_EQ(st.seg[1], 1u << 2);
    EXPECT_EQ(st.seg[2], 0u);
    EXPECT_EQ(st.seg[3], 0u);
}

TEST(CommSchedule, EndToEndOnChip)
{
    // Compile a producer->consumer schedule and run real programs
    // under it: column 0 tile 0 sends 8 values to column 0 tile 3
    // every 6 cycles (matching the producer's 6-slot loop).
    arch::ChipConfig cfg;
    cfg.dividers = {1};
    cfg.tiles_per_column = 4;
    arch::Chip chip(cfg);

    // All tiles run the same SIMD code; only tile 0's buffer is
    // drained and only tile 3's receive matters.
    chip.column(0).controller().loadProgram(isa::assemble(R"(
        movi r1, 0
        movi r7, 0
        lsetup lc0, e, 8
        addi r7, 1
        cwr r7
        crd r0
        add r1, r1, r0
        nop
        nop
    e:
        halt
    )"));

    CommSchedule sched;
    sched.period = 6;
    // First cwr issues at cycle 4 (movi, movi, lsetup, addi, cwr):
    // transfer offset 4 mod 6.
    sched.transfers = {
        {4, 0, 0, {0, 1, 2, 3}, false}, // broadcast so every tile's
                                        // crd is satisfied
        {4, 1, 1, {}, false},           // drain the other tiles
        {4, 2, 2, {}, false},
        {4, 3, 3, {}, false},
    };
    chip.column(0).dou().load(compileSchedule(sched));

    auto res = chip.run(10'000);
    ASSERT_EQ(res.exit, arch::RunExit::AllHalted);
    // Tile 3 accumulated 1+2+..+8 = 36 via the segmented bus.
    EXPECT_EQ(chip.column(0).tile(3).reg(1), 36u);
    EXPECT_EQ(chip.fabric().stats().value("overruns"), 0u);
    EXPECT_EQ(chip.fabric().stats().value("conflicts"), 0u);
}
