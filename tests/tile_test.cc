/** @file Tile datapath semantics, one behaviour per test. */

#include <gtest/gtest.h>

#include "arch/tile.hh"
#include "common/log.hh"
#include "isa/inst.hh"

using namespace synchro;
using namespace synchro::arch;
using namespace synchro::isa;
namespace b = synchro::isa::build;

class TileTest : public ::testing::Test
{
  protected:
    Tile t{0, 2}; // column 0, position 2 (TID must read 2)
};

TEST_F(TileTest, AddSubWrap)
{
    t.setReg(1, 0xffffffff);
    t.setReg(2, 2);
    t.execute(b::alu3(Opcode::ADD, 0, 1, 2));
    EXPECT_EQ(t.reg(0), 1u); // wraps, no saturation on 32-bit add
    t.execute(b::alu3(Opcode::SUB, 0, 1, 2));
    EXPECT_EQ(t.reg(0), 0xfffffffdu);
}

TEST_F(TileTest, Logic)
{
    t.setReg(1, 0xf0f0);
    t.setReg(2, 0x0ff0);
    t.execute(b::alu3(Opcode::AND_, 0, 1, 2));
    EXPECT_EQ(t.reg(0), 0x00f0u);
    t.execute(b::alu3(Opcode::OR_, 0, 1, 2));
    EXPECT_EQ(t.reg(0), 0xfff0u);
    t.execute(b::alu3(Opcode::XOR_, 0, 1, 2));
    EXPECT_EQ(t.reg(0), 0xff00u);
    t.execute(b::alu2(Opcode::NOT_, 0, 1));
    EXPECT_EQ(t.reg(0), 0xffff0f0fu);
}

TEST_F(TileTest, MinMaxAreSigned)
{
    t.setReg(1, uint32_t(-5));
    t.setReg(2, 3);
    t.execute(b::alu3(Opcode::MIN, 0, 1, 2));
    EXPECT_EQ(int32_t(t.reg(0)), -5);
    t.execute(b::alu3(Opcode::MAX, 0, 1, 2));
    EXPECT_EQ(int32_t(t.reg(0)), 3);
}

TEST_F(TileTest, Shifts)
{
    t.setReg(1, 0x80000001);
    t.setReg(2, 4);
    t.execute(b::alu3(Opcode::LSL, 0, 1, 2));
    EXPECT_EQ(t.reg(0), 0x00000010u);
    t.execute(b::alu3(Opcode::LSR, 0, 1, 2));
    EXPECT_EQ(t.reg(0), 0x08000000u);
    t.execute(b::alu3(Opcode::ASR, 0, 1, 2));
    EXPECT_EQ(t.reg(0), 0xf8000000u);
    // Shift amounts use only the low 5 bits.
    t.setReg(2, 36);
    t.execute(b::alu3(Opcode::LSL, 0, 1, 2));
    EXPECT_EQ(t.reg(0), 0x00000010u);
}

TEST_F(TileTest, ShiftImmediates)
{
    t.setReg(1, 0xffff0000);
    t.execute(b::shiftImm(Opcode::LSRI, 0, 1, 16));
    EXPECT_EQ(t.reg(0), 0x0000ffffu);
    t.execute(b::shiftImm(Opcode::ASRI, 0, 1, 16));
    EXPECT_EQ(t.reg(0), 0xffffffffu);
    t.execute(b::shiftImm(Opcode::LSLI, 0, 1, 8));
    EXPECT_EQ(t.reg(0), 0xff000000u);
}

TEST_F(TileTest, MulLow32Signed)
{
    t.setReg(1, uint32_t(-3));
    t.setReg(2, 100000);
    t.execute(b::alu3(Opcode::MUL, 0, 1, 2));
    EXPECT_EQ(int32_t(t.reg(0)), -300000);
}

TEST_F(TileTest, AbsSaturates)
{
    t.setReg(1, uint32_t(INT32_MIN));
    t.execute(b::alu2(Opcode::ABS, 0, 1));
    EXPECT_EQ(int32_t(t.reg(0)), INT32_MAX);
    t.setReg(1, uint32_t(-7));
    t.execute(b::alu2(Opcode::ABS, 0, 1));
    EXPECT_EQ(t.reg(0), 7u);
}

TEST_F(TileTest, SelUsesCc)
{
    t.setReg(1, 11);
    t.setReg(2, 22);
    t.setCc(true);
    t.execute(b::alu3(Opcode::SEL, 0, 1, 2));
    EXPECT_EQ(t.reg(0), 11u);
    t.setCc(false);
    t.execute(b::alu3(Opcode::SEL, 0, 1, 2));
    EXPECT_EQ(t.reg(0), 22u);
}

TEST_F(TileTest, Add16SaturatesPerHalf)
{
    t.setReg(1, (uint32_t(30000) << 16) | uint16_t(-30000));
    t.setReg(2, (uint32_t(10000) << 16) | uint16_t(-10000));
    t.execute(b::alu3(Opcode::ADD16, 0, 1, 2));
    EXPECT_EQ(int16_t(t.reg(0) >> 16), INT16_MAX);
    EXPECT_EQ(int16_t(t.reg(0) & 0xffff), INT16_MIN);
}

TEST_F(TileTest, MacHalfSelection)
{
    // rs1 = [hi=3 | lo=5], rs2 = [hi=7 | lo=11]
    t.setReg(1, (3u << 16) | 5u);
    t.setReg(2, (7u << 16) | 11u);
    t.execute(b::mac(Opcode::MAC, 0, 1, 2, HalfSel::LL));
    EXPECT_EQ(t.acc(0), 55);
    t.execute(b::mac(Opcode::MAC, 0, 1, 2, HalfSel::HH));
    EXPECT_EQ(t.acc(0), 55 + 21);
    t.execute(b::mac(Opcode::MAC, 0, 1, 2, HalfSel::LH));
    EXPECT_EQ(t.acc(0), 55 + 21 + 35); // lo(rs1) * hi(rs2)
    t.execute(b::mac(Opcode::MSU, 0, 1, 2, HalfSel::HL));
    EXPECT_EQ(t.acc(0), 55 + 21 + 35 - 33);
}

TEST_F(TileTest, MacNegativeHalves)
{
    t.setReg(1, uint16_t(-4));
    t.setReg(2, uint16_t(9));
    t.execute(b::mac(Opcode::MAC, 1, 1, 2, HalfSel::LL));
    EXPECT_EQ(t.acc(1), -36);
}

TEST_F(TileTest, AccumulatorSaturatesAt40Bits)
{
    t.setAcc(0, (int64_t(1) << 39) - 10);
    t.setReg(1, 100);
    t.setReg(2, 100);
    t.execute(b::mac(Opcode::MAC, 0, 1, 2, HalfSel::LL));
    EXPECT_EQ(t.acc(0), (int64_t(1) << 39) - 1);
}

TEST_F(TileTest, SaaSumsAbsByteDiffs)
{
    t.setReg(1, 0x10'20'30'40u);
    t.setReg(2, 0x40'10'20'80u);
    // |0x10-0x40| + |0x20-0x10| + |0x30-0x20| + |0x40-0x80|
    t.execute(b::saa(0, 1, 2));
    EXPECT_EQ(t.acc(0), 0x30 + 0x10 + 0x10 + 0x40);
}

TEST_F(TileTest, AclrAndAext)
{
    t.setAcc(0, 0x12345678);
    t.execute(b::aext(0, 0, 8));
    EXPECT_EQ(t.reg(0), 0x123456u);
    t.setAcc(0, int64_t(1) << 38);
    t.execute(b::aext(0, 0, 0));
    EXPECT_EQ(int32_t(t.reg(0)), INT32_MAX); // saturating extract
    t.execute(b::aclr(0));
    EXPECT_EQ(t.acc(0), 0);
}

TEST_F(TileTest, MoveImmediates)
{
    t.execute(b::movi(0, -2));
    EXPECT_EQ(t.reg(0), 0xfffffffeu);
    t.execute(b::movih(0, 0x1234));
    EXPECT_EQ(t.reg(0), 0x1234fffeu);
    t.execute(b::movpi(3, 0x7f00));
    EXPECT_EQ(t.preg(3), 0x7f00u);
    t.execute(b::paddi(3, -0x100));
    EXPECT_EQ(t.preg(3), 0x7e00u);
}

TEST_F(TileTest, PointerMoves)
{
    t.setReg(1, 0x400);
    t.execute(b::movp(2, 1));
    EXPECT_EQ(t.preg(2), 0x400u);
    t.execute(b::movrp(5, 2));
    EXPECT_EQ(t.reg(5), 0x400u);
}

TEST_F(TileTest, TidReadsPosition)
{
    t.execute(b::tid(4));
    EXPECT_EQ(t.reg(4), 2u); // constructed at position 2
}

TEST_F(TileTest, LoadStoreWidths)
{
    t.setPreg(0, 0x100);
    t.setReg(1, 0xdeadbeef);
    t.execute(b::store(Opcode::STW, 1, 0, MemMode::Offset, 0));
    t.execute(b::load(Opcode::LDW, 2, 0, MemMode::Offset, 0));
    EXPECT_EQ(t.reg(2), 0xdeadbeefu);
    t.execute(b::load(Opcode::LDH, 3, 0, MemMode::Offset, 0));
    EXPECT_EQ(int32_t(t.reg(3)), int32_t(int16_t(0xbeef)));
    t.execute(b::load(Opcode::LDHU, 3, 0, MemMode::Offset, 0));
    EXPECT_EQ(t.reg(3), 0xbeefu);
    t.execute(b::load(Opcode::LDB, 4, 0, MemMode::Offset, 3));
    EXPECT_EQ(int32_t(t.reg(4)), int32_t(int8_t(0xde)));
    t.execute(b::load(Opcode::LDBU, 4, 0, MemMode::Offset, 3));
    EXPECT_EQ(t.reg(4), 0xdeu);
}

TEST_F(TileTest, PostModifyUpdatesPointerAfterAccess)
{
    t.setPreg(1, 0x200);
    t.writeMemWords(0x200, {111, 222});
    t.execute(b::load(Opcode::LDW, 0, 1, MemMode::PostMod, 4));
    EXPECT_EQ(t.reg(0), 111u); // value at the *old* pointer
    EXPECT_EQ(t.preg(1), 0x204u);
    t.execute(b::load(Opcode::LDW, 0, 1, MemMode::PostMod, -4));
    EXPECT_EQ(t.reg(0), 222u);
    EXPECT_EQ(t.preg(1), 0x200u);
}

TEST_F(TileTest, OffsetModeLeavesPointer)
{
    t.setPreg(1, 0x200);
    t.writeMemWords(0x204, {42});
    t.execute(b::load(Opcode::LDW, 0, 1, MemMode::Offset, 4));
    EXPECT_EQ(t.reg(0), 42u);
    EXPECT_EQ(t.preg(1), 0x200u);
}

TEST_F(TileTest, UnalignedAndOutOfRangeAccessesAreFatal)
{
    t.setPreg(0, 0x101);
    EXPECT_THROW(
        t.execute(b::load(Opcode::LDW, 0, 0, MemMode::Offset, 0)),
        FatalError);
    t.setPreg(0, Tile::MemBytes - 2);
    EXPECT_THROW(
        t.execute(b::load(Opcode::LDW, 0, 0, MemMode::Offset, 0)),
        FatalError);
    EXPECT_THROW(
        t.execute(b::store(Opcode::STW, 0, 0, MemMode::Offset, 0)),
        FatalError);
}

TEST_F(TileTest, Compares)
{
    t.setReg(1, uint32_t(-1));
    t.setReg(2, 1);
    t.execute(b::cmp(Opcode::CMPLT, 1, 2)); // -1 < 1 signed
    EXPECT_TRUE(t.cc());
    t.execute(b::cmp(Opcode::CMPLTU, 1, 2)); // 0xffffffff < 1 unsigned
    EXPECT_FALSE(t.cc());
    t.execute(b::cmp(Opcode::CMPEQ, 1, 1));
    EXPECT_TRUE(t.cc());
    t.execute(b::cmp(Opcode::CMPLE, 2, 2));
    EXPECT_TRUE(t.cc());
}

TEST_F(TileTest, CommBuffersThroughCwrCrd)
{
    t.setReg(7, 0xabcd);
    t.execute(b::cwr(7));
    EXPECT_TRUE(t.writeBuffer().valid());
    EXPECT_EQ(t.writeBuffer().peek(), 0xabcdu);
    // Simulate the DOU moving it to another tile's read buffer.
    uint32_t v = t.writeBuffer().pop();
    t.readBuffer().push(v);
    t.execute(b::crd(3));
    EXPECT_EQ(t.reg(3), 0xabcdu);
    EXPECT_FALSE(t.readBuffer().valid());
}

TEST_F(TileTest, UncheckedCommIsPanic)
{
    EXPECT_THROW(t.execute(b::crd(0)), PanicError);
    t.setReg(7, 1);
    t.execute(b::cwr(7));
    EXPECT_THROW(t.execute(b::cwr(7)), PanicError);
}

TEST_F(TileTest, ControlOpcodeOnTileIsPanic)
{
    EXPECT_THROW(t.execute(b::jump(0)), PanicError);
}

TEST_F(TileTest, AccessorIndicesAreBoundsChecked)
{
    // Regression for the latent-UB audit: every architectural-state
    // accessor rejects out-of-range indices instead of indexing past
    // the register file.
    EXPECT_THROW(t.reg(NumDataRegs), PanicError);
    EXPECT_THROW(t.setReg(NumDataRegs, 1), PanicError);
    EXPECT_THROW(t.preg(NumPtrRegs), PanicError);
    EXPECT_THROW(t.setPreg(NumPtrRegs, 1), PanicError);
    EXPECT_THROW(t.acc(NumAccums), PanicError);
    EXPECT_THROW(t.setAcc(NumAccums, 1), PanicError);
    // In-range indices still work after the failed accesses.
    t.setReg(NumDataRegs - 1, 7);
    EXPECT_EQ(t.reg(NumDataRegs - 1), 7u);
}

TEST_F(TileTest, BroadcastOperandsAreBoundsChecked)
{
    // A hand-built instruction with a bad register index is rejected
    // at decode time (fatal), never reaching the datapath arrays.
    EXPECT_THROW(t.execute(b::alu3(Opcode::ADD, 9, 0, 0)),
                 FatalError);
    EXPECT_THROW(t.execute(b::movp(7, 0)), FatalError);
    EXPECT_THROW(t.execute(b::shiftImm(Opcode::LSRI, 0, 0, 33)),
                 FatalError);
}

TEST_F(TileTest, StatsCountInstructions)
{
    t.setPreg(0, 0);
    t.execute(b::movi(0, 1));
    t.execute(b::load(Opcode::LDW, 1, 0, MemMode::Offset, 0));
    t.execute(b::mac(Opcode::MAC, 0, 0, 1, HalfSel::LL));
    EXPECT_EQ(t.stats().value("instructions"), 3u);
    EXPECT_EQ(t.stats().value("memOps"), 1u);
    EXPECT_EQ(t.stats().value("macOps"), 1u);
}

TEST_F(TileTest, MemoryHelpersRoundTrip)
{
    std::vector<int16_t> h{1, -2, 3, -4};
    t.writeMemHalves(0x40, h);
    EXPECT_EQ(t.readMemHalves(0x40, 4), h);
    std::vector<int32_t> w{100, -200};
    t.writeMemWords(0x80, w);
    EXPECT_EQ(t.readMemWords(0x80, 2), w);
}
