/** @file Assembler tests: syntax, labels, directives, diagnostics. */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "isa/assembler.hh"
#include "isa/disasm.hh"
#include "isa/encoding.hh"

using namespace synchro;
using namespace synchro::isa;

TEST(Assembler, BasicProgram)
{
    Program p = assemble(R"(
        ; a trivial program
        movi r0, 5
        movi r1, 7
        add  r2, r0, r1
        halt
    )");
    ASSERT_EQ(p.size(), 4u);
    EXPECT_EQ(p.insts[0].op, Opcode::MOVI);
    EXPECT_EQ(p.insts[2].op, Opcode::ADD);
    EXPECT_EQ(p.insts[2].rd, 2);
    EXPECT_EQ(p.insts[3].op, Opcode::HALT);
}

TEST(Assembler, LabelsResolveForwardAndBack)
{
    Program p = assemble(R"(
    start:
        movi r0, 0
        jump end
        movi r0, 1    ; skipped
    end:
        halt
    )");
    EXPECT_EQ(p.label("start"), 0u);
    EXPECT_EQ(p.label("end"), 3u);
    EXPECT_EQ(p.insts[1].imm, 3);
}

TEST(Assembler, LsetupWithLabel)
{
    Program p = assemble(R"(
        lsetup lc0, body_end, 21
        mac a0, r1, r2, ll
        ld.h r1, [p0]++
    body_end:
        aext r3, a0, 15
        halt
    )");
    EXPECT_EQ(p.insts[0].op, Opcode::LSETUP);
    EXPECT_EQ(p.insts[0].end, 3);
    EXPECT_EQ(p.insts[0].imm, 21);
    // [p0]++ with ld.h means post-increment by 2.
    EXPECT_EQ(p.insts[2].mode, MemMode::PostMod);
    EXPECT_EQ(p.insts[2].imm, 2);
}

TEST(Assembler, MemoryAddressingForms)
{
    Program p = assemble(R"(
        ld.w r0, [p0]
        ld.w r1, [p1+8]
        ld.w r2, [p2-4]
        ld.w r3, [p3]+12
        ld.w r4, [p4]-16
        st.b r5, [p5]++
        ld.b r6, [p0]--
        halt
    )");
    EXPECT_EQ(p.insts[0].mode, MemMode::Offset);
    EXPECT_EQ(p.insts[0].imm, 0);
    EXPECT_EQ(p.insts[1].imm, 8);
    EXPECT_EQ(p.insts[2].imm, -4);
    EXPECT_EQ(p.insts[3].mode, MemMode::PostMod);
    EXPECT_EQ(p.insts[3].imm, 12);
    EXPECT_EQ(p.insts[4].imm, -16);
    EXPECT_EQ(p.insts[5].imm, 1);  // st.b size
    EXPECT_EQ(p.insts[6].imm, -1); // ld.b size
}

TEST(Assembler, EquAndNumericBases)
{
    Program p = assemble(R"(
        .equ TAPS, 21
        .equ BASE, 0x100
        movi r0, TAPS
        movpi p0, BASE
        movi r1, 0b1010
        halt
    )");
    EXPECT_EQ(p.insts[0].imm, 21);
    EXPECT_EQ(p.insts[1].imm, 0x100);
    EXPECT_EQ(p.insts[2].imm, 10);
}

TEST(Assembler, CommentsEverywhere)
{
    Program p = assemble(R"(
        movi r0, 1   ; trailing semicolon comment
        movi r1, 2   # hash comment
        movi r2, 3   // slash comment
        halt
    )");
    EXPECT_EQ(p.size(), 4u);
}

TEST(Assembler, HselVariants)
{
    Program p = assemble(R"(
        mac a0, r0, r1
        mac a0, r0, r1, lh
        msu a1, r2, r3, hh
        halt
    )");
    EXPECT_EQ(p.insts[0].hsel, HalfSel::LL); // default
    EXPECT_EQ(p.insts[1].hsel, HalfSel::LH);
    EXPECT_EQ(p.insts[2].op, Opcode::MSU);
    EXPECT_EQ(p.insts[2].hsel, HalfSel::HH);
    EXPECT_EQ(p.insts[2].acc, 1);
}

TEST(Assembler, ErrorsCarryLineNumbers)
{
    try {
        assemble("movi r0, 1\nbogus r1, r2\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Assembler, DiagnosesCommonMistakes)
{
    EXPECT_THROW(assemble("movi r9, 1"), FatalError);   // bad reg
    EXPECT_THROW(assemble("add r0, r1"), FatalError);   // arity
    EXPECT_THROW(assemble("jump nowhere"), FatalError); // undef label
    EXPECT_THROW(assemble("ld.w r0, [r1]"), FatalError); // not a preg
    EXPECT_THROW(assemble("x: x: halt"), FatalError);   // dup label
    EXPECT_THROW(assemble(".weird 3"), FatalError);     // directive
    EXPECT_THROW(assemble("movi r0, 70000"), FatalError); // range
    EXPECT_THROW(assemble("lsetup lc2, 4, 5\nhalt"), FatalError);
}

TEST(Assembler, WordsEncodeDecodeConsistency)
{
    Program p = assemble(R"(
        movi r0, -42
        lsl r1, r0, r0
        st.w r1, [p0]+4
        jcc 0
        halt
    )");
    auto ws = p.words();
    ASSERT_EQ(ws.size(), p.size());
    for (size_t i = 0; i < ws.size(); ++i)
        EXPECT_EQ(decode(ws[i]), p.insts[i]) << "inst " << i;
}

TEST(Assembler, DisasmReassembles)
{
    // Disassembled text must re-assemble to identical instructions.
    Program p = assemble(R"(
        movi r0, 100
        movih r0, 0xdead
        add r1, r0, r0
        mac a0, r1, r1, hl
        aext r2, a0, 12
        ld.hu r3, [p1]+2
        cmplt r3, r2
        sel r4, r3, r2
        cwr r7
        crd r5
        halt
    )");
    std::string round;
    for (const auto &inst : p.insts)
        round += disassemble(inst) + "\n";
    Program q = assemble(round);
    ASSERT_EQ(q.size(), p.size());
    for (size_t i = 0; i < p.size(); ++i)
        EXPECT_EQ(q.insts[i], p.insts[i]) << disassemble(p.insts[i]);
}

TEST(Assembler, InlineLabelWithInstruction)
{
    Program p = assemble("top: movi r0, 1\n jump top\n");
    EXPECT_EQ(p.label("top"), 0u);
    EXPECT_EQ(p.insts[1].imm, 0);
}
