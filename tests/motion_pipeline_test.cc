/** @file End-to-end mapped MPEG-4 motion estimation: two
 * macroblock-sharded SAA search columns and a best-vector join,
 * planned by the AutoMapper, lowered by the DAG codegen, run
 * cycle-accurately and checked bit-exactly against dsp::fullSearch —
 * on every scheduler backend, with the measured power priced against
 * the paper's Table 4 MPEG4-QCIF row. */

#include <cstdlib>

#include <gtest/gtest.h>

#include "test_util.hh"

#include "apps/motion_runner.hh"
#include "apps/paper_workloads.hh"

using namespace synchro;
using namespace synchro::apps;

namespace
{

MotionPipelineParams
smallRun(SchedulerKind kind)
{
    MotionPipelineParams p;
    p.scheduler = kind;
    return p;
}

} // namespace

TEST(MotionPipeline, CandidateOrderMatchesFullSearchTieBreak)
{
    auto cands = motionCandidates();
    ASSERT_EQ(cands.size(), MotionCands);
    // (0,0) first — a zero-residual macroblock must prefer the null
    // vector — then strictly non-decreasing |v|1 with (dy, dx) as
    // the within-norm order, exactly dsp::fullSearch's better().
    EXPECT_EQ(cands[0].first, 0);
    EXPECT_EQ(cands[0].second, 0);
    for (size_t i = 1; i < cands.size(); ++i) {
        int na = std::abs(cands[i - 1].first) +
                 std::abs(cands[i - 1].second);
        int nb =
            std::abs(cands[i].first) + std::abs(cands[i].second);
        bool ordered =
            na < nb ||
            (na == nb &&
             (cands[i - 1].second < cands[i].second ||
              (cands[i - 1].second == cands[i].second &&
               cands[i - 1].first < cands[i].first)));
        EXPECT_TRUE(ordered) << "candidate " << i;
    }
}

TEST(MotionPipeline, MappedSearchMatchesFullSearchOnEveryBackend)
{
    MappedMotionRun evq =
        runMappedMotion(smallRun(SchedulerKind::EventQueue));

    ASSERT_EQ(evq.output_keys.size(), MotionMbs);
    EXPECT_TRUE(evq.bit_exact);
    EXPECT_EQ(evq.output_keys, evq.golden_keys);

    // Most macroblocks must recover the true camera pan (edge
    // blocks may lock onto the clamped border instead).
    EXPECT_GE(evq.pan_hit_rate, 0.75);

    // The self-timed schedule must never destroy data.
    EXPECT_EQ(evq.overruns, 0u);
    EXPECT_EQ(evq.conflicts, 0u);
    EXPECT_GT(evq.bus_transfers, 0u);

    for (SchedulerKind kind : synchro::test::AllSchedulerKinds) {
        if (kind == SchedulerKind::EventQueue)
            continue;
        MappedMotionRun run = runMappedMotion(smallRun(kind));
        const char *name = schedulerName(kind);

        // Backend equivalence: same exit, same final tick, same
        // motion vectors, every statistic of the chip identical.
        EXPECT_TRUE(run.bit_exact) << name;
        EXPECT_EQ(run.output_keys, evq.output_keys) << name;
        EXPECT_EQ(run.result.exit, evq.result.exit) << name;
        EXPECT_EQ(run.ticks, evq.ticks) << name;
        EXPECT_EQ(run.stats, evq.stats) << name;
    }
}

TEST(MotionPipeline, PlanMapsTheDagToThreeColumns)
{
    MotionPipelineParams p;
    auto plan = planMotion(p);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->placements.size(), 3u);
    EXPECT_EQ(plan->total_columns, 3u);
    // The two search shards are symmetric — same divider, same
    // voltage — which is exactly why Table 4 reports ~no multi-V
    // win for this workload.
    EXPECT_EQ(plan->placements[0].divider,
              plan->placements[1].divider);
    EXPECT_EQ(plan->placements[0].v, plan->placements[1].v);
    EXPECT_LE(plan->placements[2].v, plan->placements[0].v);
}

TEST(MotionPipeline, ShardWidthVariantsStayBitExact)
{
    // The kernel generator regenerates the whole DAG for any farm
    // width that divides the macroblock count: the serial 1-column
    // search and the 4-wide farm must reproduce dsp::fullSearch bit
    // for bit on both backends, like the paper-shaped 2-wide does.
    for (unsigned cols : {1u, 4u}) {
        for (auto kind :
             {SchedulerKind::FastEdge, SchedulerKind::EventQueue}) {
            MotionPipelineParams p = smallRun(kind);
            p.columns = cols;
            // A single serial column cannot sustain the default
            // rate (its demand exceeds the 600 MHz reference), so
            // map it at a rate one column can carry.
            if (cols == 1)
                p.mb_rate_hz = 20000;
            MappedMotionRun run = runMappedMotion(p);
            EXPECT_TRUE(run.bit_exact)
                << cols << " columns on " << schedulerName(kind);
            EXPECT_EQ(run.overruns, 0u);
            EXPECT_EQ(run.conflicts, 0u);
        }
    }

    // Unsupported widths are rejected up front.
    MotionPipelineParams bad;
    bad.columns = 5; // does not divide 12 macroblocks
    EXPECT_THROW(runMappedMotion(bad), FatalError);
}

TEST(MotionPipeline, MeasuredPowerComparisonIsTable4Consistent)
{
    MappedMotionRun run =
        runMappedMotion(smallRun(SchedulerKind::FastEdge));

    // Table 4's MPEG4-QCIF row: 0% saved — the symmetric search
    // columns dominate at the top supply in both pricings.
    int paper_pct = -1;
    for (const auto &row : paperAppTotals()) {
        if (row.app == "MPEG4-QCIF")
            paper_pct = row.savings_pct;
    }
    EXPECT_EQ(paper_pct, 0);
    EXPECT_GE(run.power.single_v.total(), run.power.multi_v.total());
    EXPECT_NEAR(run.power.savingsPct(), double(paper_pct), 10.0);

    for (const auto &load : run.power.loads)
        EXPECT_LE(load.v, run.power.vmax);
    EXPECT_GT(run.achieved_mb_rate_hz, 0);
}
