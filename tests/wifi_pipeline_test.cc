/** @file End-to-end mapped 802.11a receiver: the demap ->
 * de-interleave -> fork(ACS x2) -> join(traceback) DAG planned by the
 * AutoMapper, lowered by the DAG codegen, run cycle-accurately and
 * checked bit-exactly against the dsp:: golden chain — on every
 * scheduler backend, with the measured power priced against the
 * paper's Table 4 802.11a row. */

#include <gtest/gtest.h>

#include "test_util.hh"

#include "apps/paper_workloads.hh"
#include "apps/wifi_runner.hh"
#include "dsp/ofdm.hh"

using namespace synchro;
using namespace synchro::apps;

namespace
{

WifiPipelineParams
smallRun(SchedulerKind kind)
{
    WifiPipelineParams p;
    p.symbols = 8; // keep the EventQueue leg fast
    p.scheduler = kind;
    return p;
}

} // namespace

TEST(WifiPipeline, MappedReceiverMatchesGoldenOnEveryBackend)
{
    MappedWifiRun evq =
        runMappedWifi(smallRun(SchedulerKind::EventQueue));

    // Bit-exact against the dsp:: reference chain, which itself
    // recovers the transmitted payload through dsp::ofdmTransmit's
    // encoder + interleaver on the clean channel.
    ASSERT_EQ(evq.output.size(), 8u * WifiFrameBits);
    EXPECT_TRUE(evq.demap_matches_float);
    EXPECT_TRUE(evq.golden_matches_tx);
    EXPECT_TRUE(evq.bit_exact);
    EXPECT_EQ(evq.output, evq.golden);
    EXPECT_EQ(evq.output, evq.tx_bits);

    // The self-timed schedule must never destroy data; deferral (not
    // overrun) is the flow-control mechanism.
    EXPECT_EQ(evq.overruns, 0u);
    EXPECT_EQ(evq.conflicts, 0u);
    EXPECT_GT(evq.bus_transfers, 0u);

    for (SchedulerKind kind : synchro::test::AllSchedulerKinds) {
        if (kind == SchedulerKind::EventQueue)
            continue;
        MappedWifiRun run = runMappedWifi(smallRun(kind));
        const char *name = schedulerName(kind);

        // Backend equivalence: same exit, same final tick, same
        // recovered bits, every statistic of the chip identical.
        EXPECT_TRUE(run.bit_exact) << name;
        EXPECT_EQ(run.output, evq.output) << name;
        EXPECT_EQ(run.result.exit, evq.result.exit) << name;
        EXPECT_EQ(run.ticks, evq.ticks) << name;
        EXPECT_EQ(run.stats, evq.stats) << name;
    }
}

TEST(WifiPipeline, SurvivesAnImpairedChannel)
{
    // With noise the chip must still match the golden chain bit for
    // bit (both demap the same quantized symbols) even though the
    // payload itself may take bit errors.
    WifiPipelineParams p = smallRun(SchedulerKind::FastEdge);
    p.snr_db = 12.0;
    MappedWifiRun run = runMappedWifi(p);
    EXPECT_TRUE(run.bit_exact);
    EXPECT_EQ(run.overruns, 0u);
    EXPECT_EQ(run.conflicts, 0u);
}

TEST(WifiPipeline, PlanMapsTheDagToFiveColumns)
{
    WifiPipelineParams p;
    auto plan = planWifi(p);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->placements.size(), 5u);
    EXPECT_EQ(plan->total_columns, 5u);
    // The SDF certificates: q = (2, 1, 48, 48, 1), bounded buffers
    // on all five edges.
    ASSERT_EQ(plan->repetition.size(), 5u);
    EXPECT_EQ(plan->repetition[0], 2u);
    EXPECT_EQ(plan->repetition[1], 1u);
    EXPECT_EQ(plan->repetition[2], 48u);
    EXPECT_EQ(plan->repetition[3], 48u);
    EXPECT_EQ(plan->repetition[4], 1u);
    EXPECT_EQ(plan->buffer_bounds.size(), 5u);
    // Multiple clock/voltage domains actually emerge: the ACS
    // columns demand far more than demap/deinterleave/traceback.
    double vmin = 10, vmax = 0;
    for (const auto &pl : plan->placements) {
        vmin = std::min(vmin, pl.v);
        vmax = std::max(vmax, pl.v);
    }
    EXPECT_LT(vmin, vmax);
}

TEST(WifiPipeline, MeasuredPowerComparisonIsTable4Consistent)
{
    MappedWifiRun run =
        runMappedWifi(smallRun(SchedulerKind::FastEdge));

    // The ACS columns dominate at the top supply in both pricings,
    // so multiple voltage domains save little on this application —
    // consistent in sign and magnitude (+-10 pp) with the paper's
    // Table 4 802.11a row (3% saved).
    int paper_pct = 0;
    for (const auto &row : paperAppTotals()) {
        if (row.app == "802.11a")
            paper_pct = row.savings_pct;
    }
    EXPECT_EQ(paper_pct, 3);
    EXPECT_GE(run.power.single_v.total(), run.power.multi_v.total());
    EXPECT_NEAR(run.power.savingsPct(), double(paper_pct), 10.0);

    for (const auto &load : run.power.loads)
        EXPECT_LE(load.v, run.power.vmax);
    EXPECT_GT(run.achieved_bit_rate_hz, 0);
}
