/** @file AutoMapper tests: SDF graph -> complete chip plan (the
 * paper's future-work tool chain). */

#include <gtest/gtest.h>

#include "arch/chip.hh"
#include "common/log.hh"
#include "mapping/auto_mapper.hh"

using namespace synchro;
using namespace synchro::mapping;
using namespace synchro::power;

namespace
{

SystemPowerModel &
model()
{
    static SystemPowerModel m;
    return m;
}

SupplyLevels &
levels()
{
    static VfModel vf;
    static SupplyLevels l(vf);
    return l;
}

/** A DDC-shaped chain: mixer -> integrator -> (decimate 8) comb. */
SdfGraph
ddcGraph()
{
    SdfGraph g;
    unsigned mixer = g.addActor("mixer", 15);
    unsigned integ = g.addActor("integrator", 25);
    unsigned comb = g.addActor("comb", 20);
    g.addEdge(mixer, integ, 1, 1);
    g.addEdge(integ, comb, 1, 8);
    return g;
}

} // namespace

TEST(AutoMapper, MapsDdcChain)
{
    AutoMapper mapper(model(), levels());
    // One iteration = 8 front-end samples; 8 MHz iterations = the
    // 64 MS/s GSM rate.
    auto plan = mapper.map(ddcGraph(), 8e6);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->placements.size(), 3u);
    EXPECT_EQ(plan->repetition,
              (std::vector<uint64_t>{8, 8, 1}));
    EXPECT_GT(plan->total_tiles, 0u);
    EXPECT_GT(plan->power.total(), 0.0);
    EXPECT_GE(plan->single_voltage.total(), plan->power.total());
    EXPECT_FALSE(plan->report().empty());
}

TEST(AutoMapper, DividersCoverDemandExactly)
{
    AutoMapper mapper(model(), levels());
    auto plan = mapper.map(ddcGraph(), 8e6);
    ASSERT_TRUE(plan.has_value());
    for (const auto &p : plan->placements) {
        // The divided clock must cover the demand...
        EXPECT_GE(p.f_column_mhz, p.f_needed_mhz - 1e-9) << p.actor;
        // ...and be an exact divider of the reference.
        EXPECT_NEAR(p.f_column_mhz * p.divider,
                    plan->ref_freq_mhz, 1e-9);
        // ZORM closes the residual: effective rate == demand.
        double effective =
            p.f_column_mhz * p.zorm.usefulFraction();
        EXPECT_NEAR(effective, p.f_needed_mhz,
                    1e-6 * p.f_needed_mhz)
            << p.actor;
    }
}

TEST(AutoMapper, PlanDrivesARealChip)
{
    // The produced divider list must configure an actual Chip.
    AutoMapper mapper(model(), levels());
    auto plan = mapper.map(ddcGraph(), 8e6);
    ASSERT_TRUE(plan.has_value());
    arch::ChipConfig cfg;
    cfg.dividers = plan->dividers();
    ASSERT_EQ(cfg.dividers.size(), plan->total_columns);
    arch::Chip chip(cfg);
    for (unsigned c = 0; c < chip.numColumns(); ++c) {
        chip.column(c).controller().loadProgram(
            isa::assemble("movi r0, 1\nhalt\n"));
        // Apply the plan's ZORM setting for this column's actor.
        for (const auto &p : plan->placements) {
            if (c >= p.first_column &&
                c < p.first_column + p.columns) {
                chip.column(c).controller().setRateMatch(
                    p.zorm.nops, p.zorm.period);
            }
        }
    }
    auto res = chip.run(100'000);
    EXPECT_EQ(res.exit, arch::RunExit::AllHalted);
}

TEST(AutoMapper, ColumnsAllocatedContiguously)
{
    AutoMapper mapper(model(), levels());
    auto plan = mapper.map(ddcGraph(), 8e6);
    ASSERT_TRUE(plan.has_value());
    unsigned next = 0;
    for (const auto &p : plan->placements) {
        EXPECT_EQ(p.first_column, next);
        EXPECT_EQ(p.columns, (p.tiles + 3) / 4);
        next += p.columns;
    }
    EXPECT_EQ(next, plan->total_columns);
}

TEST(AutoMapper, RespectsTileBudget)
{
    AutoMapper mapper(model(), levels());
    auto small = mapper.map(ddcGraph(), 8e6, {}, 6);
    auto large = mapper.map(ddcGraph(), 8e6, {}, 40);
    ASSERT_TRUE(small.has_value());
    ASSERT_TRUE(large.has_value());
    EXPECT_LE(small->total_tiles, 6u);
    // More budget can only help (or tie): power monotone.
    EXPECT_LE(large->power.total(), small->power.total() + 1e-9);
}

TEST(AutoMapper, RejectsInconsistentGraph)
{
    SdfGraph g;
    unsigned a = g.addActor("a", 10);
    unsigned b = g.addActor("b", 10);
    g.addEdge(a, b, 2, 1);
    g.addEdge(a, b, 1, 1);
    AutoMapper mapper(model(), levels());
    EXPECT_FALSE(mapper.map(g, 1e6).has_value());
}

TEST(AutoMapper, RejectsDeadlockedGraph)
{
    SdfGraph g;
    unsigned a = g.addActor("a", 10);
    unsigned b = g.addActor("b", 10);
    g.addEdge(a, b, 1, 1);
    g.addEdge(b, a, 1, 1); // no initial tokens
    AutoMapper mapper(model(), levels());
    EXPECT_FALSE(mapper.map(g, 1e6).has_value());
}

TEST(AutoMapper, RejectsImpossibleRates)
{
    SdfGraph g;
    g.addActor("hot", 1'000'000); // 1M cycles per firing
    AutoMapper mapper(model(), levels());
    // 1M cycles x 1 MHz iterations = 1 Tcycle/s on <= 64 tiles:
    // far beyond any supply level.
    EXPECT_FALSE(mapper.map(g, 1e6, {}, 64).has_value());
}

TEST(AutoMapper, SerialActorPinnedToOneTile)
{
    SdfGraph g;
    unsigned svd = g.addActor("svd", 400);
    unsigned pfe = g.addActor("pfe", 400);
    g.addEdge(pfe, svd, 1, 1);
    std::vector<ActorCommSpec> comm(2);
    comm[svd].max_parallel = 1; // svd resists parallelization
    (void)pfe;
    AutoMapper mapper(model(), levels());
    auto plan = mapper.map(g, 1e6, comm);
    ASSERT_TRUE(plan.has_value());
    for (const auto &p : plan->placements) {
        if (p.actor == "svd") {
            EXPECT_EQ(p.tiles, 1u);
        }
    }
}

TEST(AutoMapper, CommunicationShapesAllocation)
{
    // A chatty actor should get fewer tiles than a silent one with
    // the same compute demand (linear comm scaling penalizes
    // parallelism).
    SdfGraph g;
    g.addActor("silent", 1000);
    g.addActor("chatty", 1000);
    std::vector<ActorCommSpec> comm(2);
    comm[1].words_per_firing = 40.0;
    comm[1].scaling = CommScaling::Linear;
    AutoMapper mapper(model(), levels());
    auto plan = mapper.map(g, 1e6, comm);
    ASSERT_TRUE(plan.has_value());
    unsigned silent_tiles = 0, chatty_tiles = 0;
    for (const auto &p : plan->placements) {
        if (p.actor == "silent")
            silent_tiles = p.tiles;
        else
            chatty_tiles = p.tiles;
    }
    EXPECT_GE(silent_tiles, chatty_tiles);
}

TEST(AutoMapper, BufferBoundsCertificateIncluded)
{
    AutoMapper mapper(model(), levels());
    auto plan = mapper.map(ddcGraph(), 8e6);
    ASSERT_TRUE(plan.has_value());
    ASSERT_EQ(plan->buffer_bounds.size(), 2u);
    EXPECT_EQ(plan->buffer_bounds[1], 8u); // the decimation edge
}
