/** @file The parallel-columns backend held to the project invariant:
 * bit-identical state, stats, ticks and outputs vs the single-threaded
 * backends on every mapped app, for every tested team size — plus a
 * deterministic skewed-load stress that forces a real barrier wait on
 * a known slot. */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <future>
#include <vector>

#include "apps/motion_runner.hh"
#include "apps/pipeline_runner.hh"
#include "apps/stereo_runner.hh"
#include "apps/wifi_runner.hh"
#include "sim/clock.hh"
#include "sim/scheduler.hh"
#include "test_util.hh"

using namespace synchro;
using namespace synchro::apps;

namespace
{

/**
 * The team sizes every mapped app is cross-checked at: serial, two
 * real threads, four, and "all columns" (64 clamps to the column
 * count inside the scheduler — every app here has fewer columns).
 */
constexpr unsigned TeamSizes[] = {1, 2, 4, 64};

/**
 * Run @p runApp on the two serial fast paths, then on the
 * parallel-columns backend at every team size, and EXPECT the whole
 * observable surface — golden bit-exactness, exit reason, final
 * tick, every chip statistic, and the app output extracted by
 * @p outOf — identical to the FastEdge reference.
 */
template <typename Params, typename RunFn, typename OutFn>
void
crossCheckParallelTeams(RunFn runApp, Params base, OutFn outOf)
{
    base.scheduler = SchedulerKind::FastEdge;
    base.parallel_team = 0;
    auto fe = runApp(base);
    EXPECT_TRUE(fe.bit_exact);

    base.scheduler = SchedulerKind::Compiled;
    auto co = runApp(base);
    EXPECT_TRUE(co.bit_exact);
    EXPECT_EQ(co.ticks, fe.ticks);
    EXPECT_EQ(co.stats, fe.stats);
    EXPECT_EQ(outOf(co), outOf(fe));

    for (unsigned team : TeamSizes) {
        base.scheduler = SchedulerKind::ParallelColumns;
        base.parallel_team = team;
        auto run = runApp(base);
        EXPECT_TRUE(run.bit_exact) << "team " << team;
        EXPECT_EQ(int(run.result.exit), int(fe.result.exit))
            << "team " << team;
        EXPECT_EQ(run.ticks, fe.ticks) << "team " << team;
        EXPECT_EQ(run.stats, fe.stats) << "team " << team;
        EXPECT_EQ(outOf(run), outOf(fe)) << "team " << team;
    }
}

} // namespace

TEST(ParallelChip, DdcBitExactAtEveryTeamSize)
{
    DdcPipelineParams p;
    p.samples = 256; // keep the TSan legs fast
    crossCheckParallelTeams(runMappedDdc, p,
                            [](const MappedDdcRun &r) {
                                return r.output;
                            });
}

TEST(ParallelChip, WifiBitExactAtEveryTeamSize)
{
    WifiPipelineParams p;
    p.symbols = 8;
    crossCheckParallelTeams(runMappedWifi, p,
                            [](const MappedWifiRun &r) {
                                return r.output;
                            });
}

TEST(ParallelChip, StereoBitExactAtEveryTeamSize)
{
    StereoPipelineParams p;
    crossCheckParallelTeams(runMappedStereo, p,
                            [](const MappedStereoRun &r) {
                                return r.output;
                            });
}

TEST(ParallelChip, MotionBitExactAtEveryTeamSize)
{
    MotionPipelineParams p;
    crossCheckParallelTeams(runMappedMotion, p,
                            [](const MappedMotionRun &r) {
                                return r.output_keys;
                            });
}

namespace
{

/**
 * A synthetic SchedModel for deterministic stress: four domains on
 * dividers 1/2/3/4 with skewed edge quotas (domain 0 is the slow
 * column — it issues by far the most slots), reference phases that
 * only count (so any comm-quiet claim is truthful), and a
 * commQuiet() that replays a fixed jitter sequence — every window
 * boundary lands exactly where the sequence says, on every run and
 * every team size.
 *
 * When @p gated, the slow column's second slot (tick 1, the first
 * slot inside the first window) blocks on a promise that is only
 * released by the LAST window slot of domains 1 and 3 — the whole
 * share of the other member of a two-thread team. That member must
 * then sit at the epoch barrier while the leader is still
 * free-running the slow column: a forced barrier wait on a known
 * slot, mirroring fleet_test's forced-steal setup. The gate moves
 * wall-clock timing only, never simulated state, so the gated
 * parallel run must stay bit-identical to an ungated serial one.
 */
class SkewStressModel : public SchedModel
{
  public:
    static constexpr unsigned kDomains = 4;
    static constexpr uint64_t kQuota[kDomains] = {97, 40, 10, 20};
    static constexpr uint64_t kGateEdge = 2;

    SkewStressModel(bool gated, std::vector<Tick> jitter)
        : gated_(gated), jitter_(std::move(jitter))
    {
        static constexpr unsigned divs[kDomains] = {1, 2, 3, 4};
        for (unsigned d = 0; d < kDomains; ++d)
            clocks_.emplace_back(600e6, divs[d], 0);
        if (gated_)
            release_ = gate_.get_future().share();
    }

    unsigned numDomains() const override { return kDomains; }

    const ClockDomain &
    domainClock(unsigned d) const override
    {
        return clocks_[d];
    }

    bool
    domainHalted(unsigned d) const override
    {
        return edges_[d].load(std::memory_order_relaxed) >=
               kQuota[d];
    }

    bool
    allHalted() const override
    {
        for (unsigned d = 0; d < kDomains; ++d) {
            if (!domainHalted(d))
                return false;
        }
        return true;
    }

    void
    domainEdge(unsigned d) override
    {
        const uint64_t n =
            edges_[d].load(std::memory_order_relaxed) + 1;
        if (gated_ && d == 0 && n == kGateEdge) {
            release_.wait_for(std::chrono::seconds(30));
            // The promise fires only after domains 1 and 3 drained
            // their full quotas; the promise/future pair orders
            // those (relaxed) counter writes before these reads.
            gate_order_ok_ =
                edges_[1].load(std::memory_order_relaxed) >=
                    kQuota[1] &&
                edges_[3].load(std::memory_order_relaxed) >=
                    kQuota[3];
        }
        edges_[d].store(n, std::memory_order_relaxed);
        if (gated_ && d == 3 && n == kQuota[3])
            gate_.set_value();
    }

    void
    refPhase() override
    {
        for (auto &p : phases_)
            ++p;
    }

    bool refPhaseInert() const override { return false; }

    void
    skipRefPhases(Tick n) override
    {
        for (auto &p : phases_)
            p += n;
    }

    bool domainsIndependent() const override { return true; }

    void
    domainRefAdvance(unsigned d, Tick n) override
    {
        phases_[d] += n;
    }

    Tick
    commQuiet(Tick max) const override
    {
        if (jitter_.empty())
            return 0;
        Tick q = jitter_[probe_++ % jitter_.size()];
        return std::min(q, max);
    }

    std::array<uint64_t, kDomains>
    edgesSnapshot() const
    {
        std::array<uint64_t, kDomains> out{};
        for (unsigned d = 0; d < kDomains; ++d)
            out[d] = edges_[d].load(std::memory_order_relaxed);
        return out;
    }

    std::array<uint64_t, kDomains>
    phasesSnapshot() const
    {
        return phases_;
    }

    bool gateOrderOk() const { return gate_order_ok_; }

  private:
    const bool gated_;
    const std::vector<Tick> jitter_;
    mutable size_t probe_ = 0;
    std::vector<ClockDomain> clocks_;
    std::array<std::atomic<uint64_t>, kDomains> edges_{};
    std::array<uint64_t, kDomains> phases_{};
    std::promise<void> gate_;
    std::shared_future<void> release_;
    bool gate_order_ok_ = false;
};

} // namespace

TEST(ParallelStress, JitteredWindowsMatchSerialBitExactly)
{
    // Window widths deliberately straddle the scheduler's inline
    // threshold, so both the barrier path and the leader-inline
    // path run, with boundaries jittered across the whole run.
    const std::vector<Tick> jitter = {7, 31, 3, 17, 1, 61, 11, 5};

    SkewStressModel ref(false, jitter);
    auto fe = makeScheduler(SchedulerKind::FastEdge);
    SchedStop ss = fe->run(ref, 1'000'000);
    ASSERT_EQ(int(ss), int(SchedStop::AllHalted));

    for (unsigned team : {2u, 4u}) {
        SkewStressModel par(false, jitter);
        auto ps =
            makeScheduler(SchedulerKind::ParallelColumns, team);
        SchedStop sp = ps->run(par, 1'000'000);
        EXPECT_EQ(int(sp), int(ss)) << "team " << team;
        EXPECT_EQ(ps->curTick(), fe->curTick()) << "team " << team;
        EXPECT_EQ(par.edgesSnapshot(), ref.edgesSnapshot())
            << "team " << team;
        EXPECT_EQ(par.phasesSnapshot(), ref.phasesSnapshot())
            << "team " << team;
    }
}

TEST(ParallelStress, ForcedBarrierWaitOnKnownSlot)
{
    // One huge window swallows the whole run, so the first window's
    // rendezvous is the only barrier — and the gate guarantees the
    // fast member reaches it while the slow column is still issuing.
    const std::vector<Tick> one_window = {500};

    SkewStressModel ref(false, one_window);
    auto fe = makeScheduler(SchedulerKind::FastEdge);
    SchedStop ss = fe->run(ref, 1'000'000);
    ASSERT_EQ(int(ss), int(SchedStop::AllHalted));

    SkewStressModel par(true, one_window);
    auto ps = makeScheduler(SchedulerKind::ParallelColumns, 2);
    SchedStop sp = ps->run(par, 1'000'000);
    EXPECT_EQ(int(sp), int(ss));
    // The known slot: domain 0's tick-1 issue slot saw domains 1
    // and 3 fully drained before it executed.
    EXPECT_TRUE(par.gateOrderOk());
    EXPECT_EQ(ps->curTick(), fe->curTick());
    EXPECT_EQ(par.edgesSnapshot(), ref.edgesSnapshot());
    EXPECT_EQ(par.phasesSnapshot(), ref.phasesSnapshot());
}

TEST(ParallelStress, SteppedRunsMatchOneBigRun)
{
    // run(1) in a loop must land on exactly the same state as one
    // large run — the window logic caps at the tick budget, so a
    // stepped run decomposes windows differently but credits
    // identically.
    const std::vector<Tick> jitter = {7, 31, 3, 17, 1, 61, 11, 5};

    SkewStressModel big(false, jitter);
    auto sb = makeScheduler(SchedulerKind::ParallelColumns, 2);
    ASSERT_EQ(int(sb->run(big, 1'000'000)),
              int(SchedStop::AllHalted));

    SkewStressModel stepped(false, jitter);
    auto st = makeScheduler(SchedulerKind::ParallelColumns, 2);
    SchedStop last = SchedStop::TickLimit;
    for (unsigned i = 0; i < 100'000 && last != SchedStop::AllHalted;
         ++i)
        last = st->run(stepped, 1);
    EXPECT_EQ(int(last), int(SchedStop::AllHalted));
    EXPECT_EQ(st->curTick(), sb->curTick());
    EXPECT_EQ(stepped.edgesSnapshot(), big.edgesSnapshot());
    EXPECT_EQ(stepped.phasesSnapshot(), big.phasesSnapshot());
}
