/** @file Pipeline code generation: lowering linear actor chains and
 * fork/join DAGs onto planned columns and running them bit-exactly
 * against the SDF reference firing order. */

#include <gtest/gtest.h>

#include "arch/chip.hh"
#include "common/log.hh"
#include "mapping/codegen.hh"
#include "sim/scheduler.hh"

using namespace synchro;
using namespace synchro::mapping;

namespace
{

/** A hand-built plan: one actor per column with the given dividers
 * and ZORM settings (what AutoMapper would emit, minus the search). */
ChipPlan
makePlan(const std::vector<std::string> &actors,
         const std::vector<unsigned> &dividers,
         const std::vector<ZormSetting> &zorm)
{
    ChipPlan plan;
    plan.ref_freq_mhz = 600.0;
    for (size_t i = 0; i < actors.size(); ++i) {
        ActorPlacement p;
        p.actor = actors[i];
        p.tiles = 1;
        p.first_column = unsigned(i);
        p.columns = 1;
        p.divider = dividers[i];
        p.f_column_mhz = plan.ref_freq_mhz / dividers[i];
        p.zorm = zorm[i];
        plan.placements.push_back(p);
        ++plan.total_tiles;
    }
    plan.total_columns = unsigned(actors.size());
    return plan;
}

constexpr uint32_t OutBase = 0x1000;

/**
 * Two-actor pipeline: a source streams the sequence n*3 + 1 and the
 * sink keeps a running sum it stores to SRAM — small enough that the
 * SDF reference (fire the source, then the sink, once per iteration)
 * is a five-line loop in C++.
 */
std::vector<PipelineStage>
twoActorStages(unsigned firings)
{
    PipelineStage src;
    src.actor = "source";
    src.prologue = "        movi r1, 0\n";
    src.body = R"(
        addi r1, 3
        mov r7, r1
        addi r7, -2
        cwr r7
    )";
    src.firings = firings;
    src.writes_per_firing = 1;

    PipelineStage sink;
    sink.actor = "sink";
    sink.prologue = strprintf("        movi r2, 0\n"
                              "        movpi p0, %u\n",
                              OutBase);
    sink.body = R"(
        crd r0
        add r2, r2, r0
        st.w r2, [p0]+4
    )";
    sink.firings = firings;
    sink.reads_per_firing = 1;
    return {src, sink};
}

/** The SDF reference: source then sink, in firing order. */
std::vector<int32_t>
twoActorReference(unsigned firings)
{
    std::vector<int32_t> out;
    int32_t v = 0, sum = 0;
    for (unsigned n = 0; n < firings; ++n) {
        v += 3;           // source firing n
        sum += v - 2;     // sink firing n
        out.push_back(sum);
    }
    return out;
}

} // namespace

TEST(Codegen, TwoActorPipelineBitExactOnBothBackends)
{
    const unsigned firings = 200;
    // The sink column is ZORM-throttled to 3 useful slots in 4 — the
    // generated pipeline must still deliver every token in order.
    ChipPlan plan = makePlan({"source", "sink"}, {2, 3},
                             {ZormSetting{}, ZormSetting{1, 4}});
    auto prog = lowerPipeline(twoActorStages(firings), plan,
                              /*iterations_per_sec=*/20e6);
    ASSERT_EQ(prog.columns.size(), 2u);
    EXPECT_EQ(prog.columns[0].column, 0u);
    EXPECT_EQ(prog.columns[1].column, 1u);

    std::vector<int32_t> expect = twoActorReference(firings);

    for (auto kind :
         {SchedulerKind::FastEdge, SchedulerKind::EventQueue}) {
        arch::ChipConfig cfg;
        cfg.dividers = plan.dividers();
        cfg.scheduler = kind;
        arch::Chip chip(cfg);
        prog.load(chip);

        auto res = chip.run(10'000'000);
        ASSERT_EQ(res.exit, arch::RunExit::AllHalted)
            << schedulerName(kind);
        auto got = chip.column(1).tile(0).readMemWords(OutBase,
                                                       firings);
        EXPECT_EQ(got, expect) << schedulerName(kind);
        // The static schedule must never destroy data.
        EXPECT_EQ(chip.fabric().stats().value("overruns"), 0u)
            << schedulerName(kind);
        EXPECT_EQ(chip.fabric().stats().value("conflicts"), 0u)
            << schedulerName(kind);
        EXPECT_EQ(chip.fabric().transfers(), firings);
        // The ZORM throttle was actually applied to the sink column.
        EXPECT_GT(
            chip.column(1).controller().stats().value("zormNops"),
            0u);
    }
}

TEST(Codegen, MultiRateChainDecimatesCorrectly)
{
    // source fires 4x per iteration, the decimator consumes 4 tokens
    // per firing and forwards their sum: a rate change like the DDC's
    // CIC, checked against the same C++ reference.
    const unsigned iters = 64;
    PipelineStage src;
    src.actor = "source";
    src.prologue = "        movi r1, 0\n";
    src.body = R"(
        addi r1, 1
        mov r7, r1
        cwr r7
    )";
    src.firings = iters * 4;
    src.per_iteration = 4;
    src.writes_per_firing = 1;

    PipelineStage dec;
    dec.actor = "decim";
    dec.prologue = strprintf("        movpi p0, %u\n", OutBase);
    dec.body = R"(
        movi r2, 0
        lsetup lc1, __acc, 4
        crd r0
        add r2, r2, r0
    __acc:
        st.w r2, [p0]+4
    )";
    dec.firings = iters;
    dec.reads_per_firing = 4;

    ChipPlan plan = makePlan({"source", "decim"}, {1, 4},
                             {ZormSetting{}, ZormSetting{}});
    auto prog =
        lowerPipeline({src, dec}, plan, /*iterations_per_sec=*/5e6);

    arch::ChipConfig cfg;
    cfg.dividers = plan.dividers();
    arch::Chip chip(cfg);
    prog.load(chip);
    auto res = chip.run(10'000'000);
    ASSERT_EQ(res.exit, arch::RunExit::AllHalted);

    std::vector<int32_t> expect;
    int32_t v = 0;
    for (unsigned n = 0; n < iters; ++n) {
        int32_t sum = 0;
        for (unsigned k = 0; k < 4; ++k)
            sum += ++v;
        expect.push_back(sum);
    }
    EXPECT_EQ(chip.column(1).tile(0).readMemWords(OutBase, iters),
              expect);
    EXPECT_EQ(chip.fabric().stats().value("overruns"), 0u);
}

namespace
{

/**
 * Diamond fork/join DAG on the self-timed bus:
 *
 *   source -+-> double -+-> merge
 *           +-> triple -+
 *
 * The source streams n+1 and forks each value to both workers on
 * separate lanes; the join reads doubled then tripled per firing and
 * stores their sum — so word k of the output must be 5*(k+1), easy
 * to check without modelling any timing.
 */
DagSpec
diamondSpec(unsigned firings)
{
    DagStage src;
    src.actor = "source";
    src.prologue = "        movi r1, 0\n";
    src.body = R"(
        addi r1, 1
        cwr r1, 0
        cwr r1, 1
    )";
    src.firings = firings;

    DagStage dbl;
    dbl.actor = "double";
    dbl.body = R"(
        crd r0, 0
        add r0, r0, r0
        cwr r0, 2
    )";
    dbl.firings = firings;

    DagStage tpl;
    tpl.actor = "triple";
    tpl.body = R"(
        crd r0, 1
        add r2, r0, r0
        add r0, r2, r0
        cwr r0, 3
    )";
    tpl.firings = firings;

    DagStage merge;
    merge.actor = "merge";
    merge.prologue = strprintf("        movpi p0, %u\n", OutBase);
    merge.body = R"(
        crd r0, 2
        crd r1, 3
        add r0, r0, r1
        st.w r0, [p0]+4
    )";
    merge.firings = firings;

    DagSpec spec;
    spec.stages = {src, dbl, tpl, merge};
    spec.edges = {
        {"source", "double", 1, 1},
        {"source", "triple", 1, 1},
        {"double", "merge", 1, 1},
        {"triple", "merge", 1, 1},
    };
    return spec;
}

} // namespace

TEST(Codegen, ForkJoinDiamondBitExactOnBothBackends)
{
    const unsigned firings = 150;
    // Mismatched dividers plus a ZORM throttle on one fork leg: the
    // self-timed delivery must still bind every token to its edge.
    ChipPlan plan =
        makePlan({"source", "double", "triple", "merge"},
                 {2, 1, 3, 2},
                 {ZormSetting{}, ZormSetting{}, ZormSetting{1, 5},
                  ZormSetting{}});
    auto prog = lowerDag(diamondSpec(firings), plan,
                         /*iterations_per_sec=*/10e6);
    EXPECT_TRUE(prog.self_timed);
    ASSERT_EQ(prog.columns.size(), 4u);
    ASSERT_EQ(prog.lanes.size(), 4u);

    std::vector<int32_t> expect;
    for (unsigned n = 1; n <= firings; ++n)
        expect.push_back(int32_t(5 * n));

    for (auto kind :
         {SchedulerKind::FastEdge, SchedulerKind::EventQueue}) {
        arch::ChipConfig cfg;
        cfg.dividers = plan.dividers();
        cfg.scheduler = kind;
        cfg.self_timed_bus = true;
        arch::Chip chip(cfg);
        prog.load(chip);

        auto res = chip.run(10'000'000);
        ASSERT_EQ(res.exit, arch::RunExit::AllHalted)
            << schedulerName(kind);
        auto got = chip.column(3).tile(0).readMemWords(OutBase,
                                                       firings);
        EXPECT_EQ(got, expect) << schedulerName(kind);
        // Deferral, not data loss, is the flow-control mechanism.
        EXPECT_EQ(chip.fabric().stats().value("overruns"), 0u)
            << schedulerName(kind);
        EXPECT_EQ(chip.fabric().stats().value("conflicts"), 0u)
            << schedulerName(kind);
        // Every token crossed the bus exactly once: two fork copies
        // and two join inputs per firing.
        EXPECT_EQ(chip.fabric().transfers(), 4u * firings);
    }
}

TEST(Codegen, RejectsBadDags)
{
    ChipPlan plan =
        makePlan({"source", "double", "triple", "merge"},
                 {1, 1, 1, 1},
                 {ZormSetting{}, ZormSetting{}, ZormSetting{},
                  ZormSetting{}});
    DagSpec good = diamondSpec(16);
    // The baseline spec itself must lower.
    lowerDag(good, plan, 1e6);

    {
        // Cyclic graph: feed the merge output back into the source.
        DagSpec bad = good;
        bad.edges.push_back({"merge", "source", 1, 1});
        bad.stages[0].body += "        crd r2, 4\n";
        EXPECT_THROW(lowerDag(bad, plan, 1e6), FatalError);
    }
    {
        // Self-loop is the smallest cycle.
        DagSpec bad = good;
        bad.edges.push_back({"double", "double", 1, 1});
        EXPECT_THROW(lowerDag(bad, plan, 1e6), FatalError);
    }
    {
        // Fan-out exceeding the 8 bus lanes.
        DagSpec bad = good;
        for (unsigned e = 0; e < 6; ++e)
            bad.edges.push_back({"source", "merge", 1, 1});
        EXPECT_THROW(lowerDag(bad, plan, 1e6), FatalError);
    }
    {
        // Join with mismatched rates: merge consumes two words per
        // firing on a lane the producer feeds with one.
        DagSpec bad = good;
        bad.edges[3].dst_words_per_firing = 2;
        EXPECT_THROW(lowerDag(bad, plan, 1e6), FatalError);
    }
    {
        // Unknown actor in an edge.
        DagSpec bad = good;
        bad.edges[0].dst = "nobody";
        EXPECT_THROW(lowerDag(bad, plan, 1e6), FatalError);
    }
    {
        // Disconnected stage: drop both of triple's edges.
        DagSpec bad = good;
        bad.edges.erase(bad.edges.begin() + 3);
        bad.edges.erase(bad.edges.begin() + 1);
        EXPECT_THROW(lowerDag(bad, plan, 1e6), FatalError);
    }
    {
        // An edge that carries no data.
        DagSpec bad = good;
        bad.edges[1].src_words_per_firing = 0;
        bad.edges[1].dst_words_per_firing = 0;
        EXPECT_THROW(lowerDag(bad, plan, 1e6), FatalError);
    }
}

TEST(Codegen, RejectsInconsistentPipelines)
{
    ChipPlan plan = makePlan({"source", "sink"}, {1, 1},
                             {ZormSetting{}, ZormSetting{}});
    auto stages = twoActorStages(16);

    {
        auto bad = stages;
        bad[1].actor = "nobody";
        EXPECT_THROW(lowerPipeline(bad, plan, 1e6), FatalError);
    }
    {
        auto bad = stages;
        bad[1].reads_per_firing = 2; // token-rate imbalance
        EXPECT_THROW(lowerPipeline(bad, plan, 1e6), FatalError);
    }
    {
        auto bad = stages;
        bad[1].firings = 8; // different iteration count
        EXPECT_THROW(lowerPipeline(bad, plan, 1e6), FatalError);
    }
    {
        auto bad = stages;
        bad[0].firings = bad[1].firings = 5000; // beyond lsetup
        EXPECT_THROW(lowerPipeline(bad, plan, 1e6), FatalError);
    }
    {
        auto bad = stages;
        bad[0].per_iteration = 0; // would divide by zero
        EXPECT_THROW(lowerPipeline(bad, plan, 1e6), FatalError);
    }
    {
        // Plans that provisioned parallel columns are rejected: the
        // kernels are sequential single-column programs.
        ChipPlan wide = plan;
        wide.placements[0].columns = 2;
        EXPECT_THROW(lowerPipeline(stages, wide, 1e6), FatalError);
    }
}
