/** @file Pre-decoded micro-ops: decode correctness, decode-time
 * operand validation (the UB fix), and the decoded-program cache. */

#include <gtest/gtest.h>

#include "arch/tile.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "isa/assembler.hh"
#include "isa/uop.hh"

using namespace synchro;
using namespace synchro::isa;
namespace b = synchro::isa::build;

namespace
{

/** Reset the cache to a known state for each cache test. */
struct CacheReset
{
    CacheReset()
    {
        clearDecodeCache();
        setDecodeCacheCapacity(1024);
    }
};

} // namespace

// ---------------------------------------------------------------
// decodeInst field mapping

TEST(UopDecode, ControlComputeSplitMatchesOpInfo)
{
    for (unsigned op = 0; op < unsigned(Opcode::NumOpcodes); ++op) {
        Inst i;
        i.op = Opcode(op);
        i.end = 2; // keep lsetup decodable
        MicroOp u = decodeInst(i);
        EXPECT_EQ(u.isControl(), i.isControl())
            << mnemonic(Opcode(op));
    }
}

TEST(UopDecode, MemoryOpsPreResolveSizeAndSign)
{
    auto ldw = decodeInst(
        b::load(Opcode::LDW, 1, 2, MemMode::Offset, 8));
    EXPECT_EQ(int(ldw.kind), int(UopKind::Load));
    EXPECT_EQ(ldw.mem_size, 4u);
    EXPECT_TRUE(ldw.flags & UopSignExtend);
    EXPECT_FALSE(ldw.flags & UopPostMod);

    auto ldhu = decodeInst(
        b::load(Opcode::LDHU, 1, 2, MemMode::PostMod, 2));
    EXPECT_EQ(ldhu.mem_size, 2u);
    EXPECT_FALSE(ldhu.flags & UopSignExtend);
    EXPECT_TRUE(ldhu.flags & UopPostMod);

    auto stb = decodeInst(
        b::store(Opcode::STB, 3, 4, MemMode::Offset, 1));
    EXPECT_EQ(int(stb.kind), int(UopKind::Store));
    EXPECT_EQ(stb.mem_size, 1u);
}

TEST(UopDecode, MacHalfSelectsBecomeFlags)
{
    auto ll = decodeInst(b::mac(Opcode::MAC, 0, 1, 2, HalfSel::LL));
    EXPECT_FALSE(ll.flags & UopAHigh);
    EXPECT_FALSE(ll.flags & UopBHigh);
    auto hl = decodeInst(b::mac(Opcode::MAC, 0, 1, 2, HalfSel::HL));
    EXPECT_TRUE(hl.flags & UopAHigh);
    EXPECT_FALSE(hl.flags & UopBHigh);
    auto lh = decodeInst(b::mac(Opcode::MSU, 1, 1, 2, HalfSel::LH));
    EXPECT_EQ(int(lh.kind), int(UopKind::Msu));
    EXPECT_FALSE(lh.flags & UopAHigh);
    EXPECT_TRUE(lh.flags & UopBHigh);
    EXPECT_EQ(lh.acc, 1u);
}

// ---------------------------------------------------------------
// Decode-time operand validation: out-of-range indices that would
// previously have indexed register files unchecked now fatal().

TEST(UopDecode, RejectsOutOfRangeOperands)
{
    EXPECT_THROW(decodeInst(b::alu3(Opcode::ADD, 8, 0, 0)),
                 FatalError);
    EXPECT_THROW(decodeInst(b::alu3(Opcode::ADD, 0, 9, 0)),
                 FatalError);
    EXPECT_THROW(decodeInst(b::movp(6, 0)), FatalError); // p6 absent
    EXPECT_THROW(decodeInst(b::movrp(0, 7)), FatalError);
    EXPECT_THROW(decodeInst(b::load(Opcode::LDW, 0, 6,
                                    MemMode::Offset, 0)),
                 FatalError);
    EXPECT_THROW(decodeInst(b::aclr(2)), FatalError);
    EXPECT_THROW(decodeInst(b::shiftImm(Opcode::LSLI, 0, 0, 32)),
                 FatalError);
    EXPECT_THROW(decodeInst(b::aext(0, 0, 40)), FatalError);
    Inst bad_lsetup = b::lsetup(0, 4, 2);
    bad_lsetup.lc = 2;
    EXPECT_THROW(decodeInst(bad_lsetup), FatalError);
}

TEST(UopDecode, TileRejectsBadRegisterInstruction)
{
    // The tile-facing regression for the latent UB: executing a
    // hand-built instruction with a bad register index must throw,
    // not silently index past the register file.
    arch::Tile t(0, 0);
    EXPECT_THROW(t.execute(b::alu3(Opcode::ADD, 0, 0, 12)),
                 FatalError);
    EXPECT_THROW(t.execute(b::cwr(9)), FatalError);
}

// ---------------------------------------------------------------
// Inst-path and MicroOp-path execution agree

TEST(UopExecute, WrapperMatchesDirectMicroOpPath)
{
    Rng rng(4242);
    arch::Tile via_inst(0, 0), via_uop(0, 1);
    for (int trial = 0; trial < 500; ++trial) {
        Inst inst;
        switch (rng.below(6)) {
          case 0:
            inst = b::alu3(Opcode::ADD, unsigned(rng.below(8)),
                           unsigned(rng.below(8)),
                           unsigned(rng.below(8)));
            break;
          case 1:
            inst = b::movi(unsigned(rng.below(8)),
                           int32_t(rng.range(-32768, 32767)));
            break;
          case 2:
            inst = b::mac(Opcode::MAC, unsigned(rng.below(2)),
                          unsigned(rng.below(8)),
                          unsigned(rng.below(8)),
                          HalfSel(rng.below(4)));
            break;
          case 3:
            inst = b::shiftImm(Opcode::ASRI, unsigned(rng.below(8)),
                               unsigned(rng.below(8)),
                               unsigned(rng.below(32)));
            break;
          case 4:
            inst = b::cmp(Opcode::CMPLT, unsigned(rng.below(8)),
                          unsigned(rng.below(8)));
            break;
          default:
            inst = b::alu2(Opcode::ABS, unsigned(rng.below(8)),
                           unsigned(rng.below(8)));
        }
        via_inst.execute(inst);
        via_uop.execute(decodeInst(inst));
    }
    for (unsigned r = 0; r < NumDataRegs; ++r)
        EXPECT_EQ(via_uop.reg(r), via_inst.reg(r)) << r;
    for (unsigned a = 0; a < NumAccums; ++a)
        EXPECT_EQ(via_uop.acc(a), via_inst.acc(a)) << a;
    EXPECT_EQ(via_uop.cc(), via_inst.cc());
}

// ---------------------------------------------------------------
// Decoded-program cache

TEST(DecodeCache, HitOnIdenticalProgram)
{
    CacheReset reset;
    Program p = assemble(R"(
        movi r0, 1
        addi r0, 2
        halt
    )");
    auto base = decodeCacheStats();
    auto d1 = decodeProgram(p);
    auto d2 = decodeProgram(p);
    EXPECT_EQ(d1.get(), d2.get()); // literally shared
    auto s = decodeCacheStats();
    EXPECT_EQ(s.misses, base.misses + 1);
    EXPECT_EQ(s.hits, base.hits + 1);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_EQ(d1->uops.size(), 3u);
    EXPECT_EQ(d1->insts.size(), 3u);
}

TEST(DecodeCache, DifferentProgramMisses)
{
    CacheReset reset;
    auto d1 = decodeProgram(assemble("movi r0, 1\nhalt\n"));
    auto d2 = decodeProgram(assemble("movi r0, 2\nhalt\n"));
    EXPECT_NE(d1.get(), d2.get());
    EXPECT_NE(d1->hash, d2->hash);
    EXPECT_EQ(decodeCacheStats().entries, 2u);
}

TEST(DecodeCache, ClearInvalidates)
{
    CacheReset reset;
    Program p = assemble("halt\n");
    auto d1 = decodeProgram(p);
    clearDecodeCache();
    EXPECT_EQ(decodeCacheStats().entries, 0u);
    auto d2 = decodeProgram(p);
    // A fresh decode after invalidation: new object, same content.
    EXPECT_NE(d1.get(), d2.get());
    EXPECT_EQ(d1->hash, d2->hash);
    EXPECT_EQ(d1->insts, d2->insts);
}

TEST(DecodeCache, CapacityFlushEvicts)
{
    CacheReset reset;
    setDecodeCacheCapacity(4);
    auto before = decodeCacheStats();
    for (int i = 0; i < 6; ++i) {
        decodeProgram(
            assemble(strprintf("movi r0, %d\nhalt\n", i)));
    }
    auto s = decodeCacheStats();
    EXPECT_GT(s.evictions, before.evictions);
    EXPECT_LE(s.entries, 4u);
    setDecodeCacheCapacity(1024);
}

TEST(DecodeCache, ZeroCapacityDisablesCaching)
{
    CacheReset reset;
    setDecodeCacheCapacity(0);
    Program p = assemble("halt\n");
    auto d1 = decodeProgram(p);
    auto d2 = decodeProgram(p);
    EXPECT_NE(d1.get(), d2.get());
    EXPECT_EQ(decodeCacheStats().entries, 0u);
    setDecodeCacheCapacity(1024);
}
