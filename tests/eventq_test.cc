/** @file Unit tests for the discrete-event queue. */

#include <gtest/gtest.h>

#include <vector>

#include "common/log.hh"
#include "sim/eventq.hh"

using namespace synchro;

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    LambdaEvent a("a", [&] { order.push_back(1); });
    LambdaEvent b("b", [&] { order.push_back(2); });
    LambdaEvent c("c", [&] { order.push_back(3); });
    eq.schedule(&b, 20);
    eq.schedule(&a, 10);
    eq.schedule(&c, 30);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickPriorityOrder)
{
    EventQueue eq;
    std::vector<int> order;
    LambdaEvent bus("bus", [&] { order.push_back(2); },
                    Event::BusPri);
    LambdaEvent edge("edge", [&] { order.push_back(1); },
                     Event::ClockEdgePri);
    // Schedule the later-priority event first to prove priority wins.
    eq.schedule(&bus, 5);
    eq.schedule(&edge, 5);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, SameTickSamePriorityInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    LambdaEvent a("a", [&] { order.push_back(1); });
    LambdaEvent b("b", [&] { order.push_back(2); });
    eq.schedule(&a, 7);
    eq.schedule(&b, 7);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, SelfRescheduling)
{
    EventQueue eq;
    int fires = 0;
    LambdaEvent *tickp = nullptr;
    LambdaEvent tick("tick", [&] {
        if (++fires < 5)
            eq.schedule(tickp, eq.curTick() + 3);
    });
    tickp = &tick;
    eq.schedule(&tick, 0);
    eq.run();
    EXPECT_EQ(fires, 5);
    EXPECT_EQ(eq.curTick(), 12u);
}

TEST(EventQueue, RunLimitStopsBeforeLaterEvents)
{
    EventQueue eq;
    int fired = 0;
    LambdaEvent a("a", [&] { ++fired; });
    LambdaEvent b("b", [&] { ++fired; });
    eq.schedule(&a, 10);
    eq.schedule(&b, 100);
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(b.scheduled());
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, DescheduleCancels)
{
    EventQueue eq;
    int fired = 0;
    LambdaEvent a("a", [&] { ++fired; });
    eq.schedule(&a, 10);
    eq.deschedule(&a);
    eq.run();
    EXPECT_EQ(fired, 0);
    EXPECT_TRUE(eq.empty() || eq.size() <= 1); // lazy entry may remain
}

TEST(EventQueue, RescheduleAfterDeschedule)
{
    EventQueue eq;
    int fired = 0;
    LambdaEvent a("a", [&] { ++fired; });
    eq.schedule(&a, 10);
    eq.deschedule(&a);
    eq.schedule(&a, 20);
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.curTick(), 20u);
}

TEST(EventQueue, DoubleScheduleIsPanic)
{
    EventQueue eq;
    LambdaEvent a("a", [] {});
    eq.schedule(&a, 10);
    EXPECT_THROW(eq.schedule(&a, 20), PanicError);
}

TEST(EventQueue, PastScheduleIsPanic)
{
    EventQueue eq;
    LambdaEvent a("a", [] {});
    LambdaEvent b("b", [] {});
    eq.schedule(&a, 10);
    eq.run();
    EXPECT_THROW(eq.schedule(&b, 5), PanicError);
}
