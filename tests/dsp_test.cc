/** @file Golden-kernel tests: NCO, mixer, CIC, FIR, FFT, QAM,
 * interleaver — the DDC and 802.11a signal-chain primitives. */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "common/log.hh"
#include "common/rng.hh"
#include "dsp/cic.hh"
#include "dsp/fft.hh"
#include "dsp/fir.hh"
#include "dsp/interleaver.hh"
#include "dsp/mixer.hh"
#include "dsp/nco.hh"
#include "dsp/qam.hh"

using namespace synchro;
using namespace synchro::dsp;

TEST(Nco, MatchesIdealOscillator)
{
    Nco nco(1e6, 64e6);
    for (int i = 0; i < 1000; ++i) {
        CplxQ15 s = nco.next();
        double phi = 2.0 * M_PI * 1e6 / 64e6 * i;
        EXPECT_NEAR(fromQ15(s.re), std::cos(phi), 0.01) << i;
        EXPECT_NEAR(fromQ15(s.im), -std::sin(phi), 0.01) << i;
    }
}

TEST(Nco, RejectsAliasedFrequency)
{
    EXPECT_THROW(Nco(40e6, 64e6), FatalError);
    EXPECT_THROW(Nco(1e6, 0.0), FatalError);
}

TEST(Nco, PhaseStepExact)
{
    // A quarter-rate NCO steps the 32-bit accumulator by 2^30.
    Nco nco(16e6, 64e6);
    EXPECT_EQ(nco.phaseStep(), 1u << 30);
}

TEST(Mixer, ShiftsToneToBaseband)
{
    // Mix a 5 MHz tone with a 5 MHz LO: the product has a DC
    // component of half the tone amplitude (image at 10 MHz).
    const double fs = 64e6, f0 = 5e6;
    const size_t n = 4096;
    std::vector<int16_t> x(n);
    for (size_t i = 0; i < n; ++i)
        x[i] = toQ15(0.5 * std::cos(2.0 * M_PI * f0 / fs * i));
    Nco nco(f0, fs);
    auto mixed = mixBlock(x, nco.generate(n));

    double dc_i = 0;
    for (const auto &s : mixed)
        dc_i += fromQ15(s.re);
    dc_i /= double(n);
    EXPECT_NEAR(dc_i, 0.25, 0.01); // cos*cos = 1/2 DC + image
}

TEST(Mixer, SizesMustAgree)
{
    std::vector<int16_t> x(8);
    Nco nco(1e6, 64e6);
    EXPECT_THROW(mixBlock(x, nco.generate(9)), FatalError);
}

TEST(CicIntegrator, CumulativeSums)
{
    CicIntegrator integ(1);
    std::vector<int32_t> x{1, 2, 3, 4};
    auto y = integ.process(x);
    EXPECT_EQ(y, (std::vector<int32_t>{1, 3, 6, 10}));
}

TEST(CicIntegrator, WrapsModularly)
{
    CicIntegrator integ(1);
    integ.step(INT32_MAX);
    // Adding 1 wraps to INT32_MIN: modular arithmetic by design.
    EXPECT_EQ(integ.step(1), INT32_MIN);
}

TEST(CicComb, FirstDifference)
{
    CicComb comb(1, 1);
    std::vector<int32_t> x{5, 7, 4, 4};
    auto y = comb.process(x);
    EXPECT_EQ(y, (std::vector<int32_t>{5, 2, -3, 0}));
}

TEST(CicDecimator, ImpulseResponseMatchesBoxcarCascade)
{
    // A 1-stage CIC with R=4 is a length-4 boxcar + decimate: the
    // impulse response decimated output is {1} then zeros, and a step
    // input converges to gain = R.
    CicDecimator cic(1, 4);
    std::vector<int32_t> step(64, 1);
    auto y = cic.process(step);
    ASSERT_EQ(y.size(), 16u);
    EXPECT_EQ(y.back(), 4);
    EXPECT_DOUBLE_EQ(cic.gain(), 4.0);
}

TEST(CicDecimator, GainIsRMtoN)
{
    CicDecimator cic(5, 8); // the GSM-ish 5-stage configuration
    EXPECT_DOUBLE_EQ(cic.gain(), std::pow(8.0, 5.0));
    // DC convergence: a constant input converges to gain * input.
    std::vector<int32_t> dc(8 * 64, 3);
    auto y = cic.process(dc);
    ASSERT_FALSE(y.empty());
    EXPECT_EQ(y.back(), int32_t(3 * std::pow(8.0, 5.0)));
}

TEST(CicDecimator, RejectsOverflowingConfigurations)
{
    // 8-stage R=64: growth 8*log2(64) = 48 bits > 24 allowed.
    EXPECT_THROW(CicDecimator(8, 64), FatalError);
}

TEST(CicDecimator, OutputCountIsFloorNOverR)
{
    CicDecimator cic(2, 5);
    EXPECT_EQ(cic.process(std::vector<int32_t>(23, 1)).size(), 4u);
}

TEST(Fir, ImpulseResponseIsTaps)
{
    std::vector<int16_t> taps{100, -200, 300};
    FirQ15 fir(taps);
    std::vector<int16_t> x{toQ15(0.99), 0, 0, 0};
    auto y = fir.process(x);
    // Impulse of ~1.0 recovers ~taps (Q15 x Q15 >> 15).
    EXPECT_NEAR(y[0], 99, 2);
    EXPECT_NEAR(y[1], -198, 3);
    EXPECT_NEAR(y[2], 297, 4);
    EXPECT_EQ(y[3], 0);
}

TEST(Fir, LinearityAndShift)
{
    Rng rng(5);
    std::vector<int16_t> taps = designLowpassQ15(21, 0.2);
    std::vector<int16_t> x(128);
    for (auto &v : x)
        v = int16_t(rng.range(-8000, 8000));

    // Shifted input gives shifted output (time invariance).
    FirQ15 f1(taps), f2(taps);
    auto y = f1.process(x);
    std::vector<int16_t> xs(x.size() + 5, 0);
    std::copy(x.begin(), x.end(), xs.begin() + 5);
    auto ys = f2.process(xs);
    for (size_t i = 0; i + 5 < y.size(); ++i)
        EXPECT_EQ(ys[i + 5], y[i]) << i;
}

TEST(Fir, LowpassAttenuatesHighFrequency)
{
    auto taps = designLowpassQ15(63, 0.1);
    const size_t n = 512;
    auto tone = [&](double f) {
        std::vector<int16_t> x(n);
        for (size_t i = 0; i < n; ++i)
            x[i] = toQ15(0.4 * std::cos(2.0 * M_PI * f * i));
        FirQ15 fir(taps);
        auto y = fir.process(x);
        double rms = 0;
        for (size_t i = n / 2; i < n; ++i) // skip transient
            rms += double(y[i]) * y[i];
        return std::sqrt(rms / (n / 2));
    };
    double low = tone(0.02);
    double high = tone(0.35);
    EXPECT_GT(low, 10 * high); // > 20 dB separation
}

TEST(Fir, CfirCompensatesCicDroop)
{
    // The CIC's sinc^N droop attenuates the passband edge; CFIR must
    // boost it: its response at the passband edge should exceed its
    // DC response ratio of a plain low-pass.
    auto cfir = designCfir21(5, 8);
    ASSERT_EQ(cfir.size(), 21u);
    auto mag_at = [&](const std::vector<int16_t> &taps, double f) {
        std::complex<double> acc = 0;
        for (size_t k = 0; k < taps.size(); ++k)
            acc += fromQ15(taps[k]) *
                   std::exp(std::complex<double>(
                       0, -2.0 * M_PI * f * double(k)));
        return std::abs(acc);
    };
    double dc = mag_at(cfir, 0.0);
    double edge = mag_at(cfir, 0.15);
    EXPECT_GT(edge / dc, 1.02); // rising response inside passband
    double stop = mag_at(cfir, 0.35);
    EXPECT_LT(stop / dc, 0.35); // still a low-pass
}

TEST(Fir, Pfir63IsUnitDcLowpass)
{
    auto taps = designPfir63();
    ASSERT_EQ(taps.size(), 63u);
    double dc = 0;
    for (auto t : taps)
        dc += fromQ15(t);
    EXPECT_NEAR(dc, 1.0, 0.01);
}

TEST(Fft, MatchesDftOnRandomInput)
{
    Rng rng(17);
    std::vector<Cplx> x(64);
    for (auto &v : x)
        v = Cplx(rng.uniform() - 0.5, rng.uniform() - 0.5);
    auto ref = x;
    fft(x);
    for (unsigned k = 0; k < 64; ++k) {
        Cplx acc = 0;
        for (unsigned n = 0; n < 64; ++n)
            acc += ref[n] * std::exp(Cplx(0, -2.0 * M_PI * k * n /
                                                 64.0));
        EXPECT_NEAR(std::abs(x[k] - acc), 0.0, 1e-9) << k;
    }
}

TEST(Fft, InverseRoundTrip)
{
    Rng rng(3);
    for (size_t n : {8, 64, 256}) {
        std::vector<Cplx> x(n);
        for (auto &v : x)
            v = Cplx(rng.gauss(), rng.gauss());
        auto orig = x;
        fft(x);
        ifft(x);
        for (size_t i = 0; i < n; ++i)
            EXPECT_NEAR(std::abs(x[i] - orig[i]), 0.0, 1e-9);
    }
}

TEST(Fft, ParsevalHolds)
{
    Rng rng(29);
    std::vector<Cplx> x(128);
    for (auto &v : x)
        v = Cplx(rng.gauss(), rng.gauss());
    double time_e = 0;
    for (const auto &v : x)
        time_e += std::norm(v);
    fft(x);
    double freq_e = 0;
    for (const auto &v : x)
        freq_e += std::norm(v);
    EXPECT_NEAR(freq_e, time_e * 128.0, 1e-6 * freq_e);
}

TEST(Fft, RejectsNonPowerOfTwo)
{
    std::vector<Cplx> x(48);
    EXPECT_THROW(fft(x), FatalError);
}

TEST(FftQ15, MatchesReferenceScaledByN)
{
    Rng rng(7);
    const size_t n = 64;
    std::vector<CplxQ15> xq(n);
    std::vector<Cplx> xd(n);
    for (size_t i = 0; i < n; ++i) {
        double re = 0.6 * (rng.uniform() - 0.5);
        double im = 0.6 * (rng.uniform() - 0.5);
        xq[i] = {toQ15(re), toQ15(im)};
        xd[i] = Cplx(fromQ15(xq[i].re), fromQ15(xq[i].im));
    }
    fftQ15(xq);
    fft(xd);
    for (size_t k = 0; k < n; ++k) {
        // Q15 FFT output = FFT/n; quantization noise ~ a few LSB
        // per stage.
        EXPECT_NEAR(fromQ15(xq[k].re), xd[k].real() / double(n),
                    0.01)
            << k;
        EXPECT_NEAR(fromQ15(xq[k].im), xd[k].imag() / double(n),
                    0.01)
            << k;
    }
}

TEST(FftQ15, NeverOverflows)
{
    // Worst-case full-scale input must not wrap (per-stage scaling).
    std::vector<CplxQ15> x(64, CplxQ15{INT16_MAX, INT16_MIN});
    EXPECT_NO_THROW(fftQ15(x));
    std::vector<CplxQ15> y(64, CplxQ15{INT16_MIN, INT16_MIN});
    EXPECT_NO_THROW(fftQ15(y));
}

TEST(BitReverse, KnownValues)
{
    EXPECT_EQ(bitReverse(1, 6), 32u);
    EXPECT_EQ(bitReverse(0b110, 6), 0b011000u);
    EXPECT_EQ(bitReverse(bitReverse(45, 6), 6), 45u);
}

class QamRoundTrip : public ::testing::TestWithParam<Modulation>
{
};

TEST_P(QamRoundTrip, MapDemapIdentity)
{
    Rng rng(11);
    Modulation m = GetParam();
    std::vector<uint8_t> bits(48 * bitsPerSymbol(m));
    for (auto &b : bits)
        b = uint8_t(rng.below(2));
    auto syms = qamMap(bits, m);
    EXPECT_EQ(syms.size(), 48u);
    auto back = qamDemap(syms, m);
    EXPECT_EQ(back, bits);
}

TEST_P(QamRoundTrip, UnitAveragePower)
{
    Rng rng(13);
    Modulation m = GetParam();
    std::vector<uint8_t> bits(6000 * bitsPerSymbol(m));
    for (auto &b : bits)
        b = uint8_t(rng.below(2));
    auto syms = qamMap(bits, m);
    double p = 0;
    for (const auto &s : syms)
        p += std::norm(s);
    EXPECT_NEAR(p / double(syms.size()), 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(AllModulations, QamRoundTrip,
                         ::testing::Values(Modulation::BPSK,
                                           Modulation::QPSK,
                                           Modulation::QAM16,
                                           Modulation::QAM64));

TEST_P(QamRoundTrip, SurvivesSmallNoise)
{
    Rng rng(19);
    Modulation m = GetParam();
    std::vector<uint8_t> bits(48 * bitsPerSymbol(m));
    for (auto &b : bits)
        b = uint8_t(rng.below(2));
    auto syms = qamMap(bits, m);
    // Perturb by less than half the minimum constellation distance.
    double half_min = modNorm(m) * 0.9;
    for (auto &s : syms)
        s += std::complex<double>(0.3 * half_min, -0.3 * half_min);
    EXPECT_EQ(qamDemap(syms, m), bits);
}

class InterleaverTest : public ::testing::TestWithParam<Modulation>
{
};

TEST_P(InterleaverTest, RoundTripIdentity)
{
    Rng rng(23);
    Interleaver il(GetParam());
    std::vector<uint8_t> bits(il.blockBits());
    for (auto &b : bits)
        b = uint8_t(rng.below(2));
    EXPECT_EQ(il.deinterleave(il.interleave(bits)), bits);
}

TEST_P(InterleaverTest, PermutationIsBijective)
{
    Interleaver il(GetParam());
    std::vector<bool> hit(il.blockBits(), false);
    for (unsigned p : il.permutation()) {
        ASSERT_LT(p, il.blockBits());
        EXPECT_FALSE(hit[p]);
        hit[p] = true;
    }
}

TEST_P(InterleaverTest, SpreadsAdjacentBits)
{
    // The point of the interleaver: adjacent coded bits must not land
    // on the same subcarrier.
    Interleaver il(GetParam());
    unsigned n_bpsc = bitsPerSymbol(GetParam());
    const auto &perm = il.permutation();
    for (unsigned k = 0; k + 1 < perm.size(); ++k) {
        unsigned carrier_a = perm[k] / n_bpsc;
        unsigned carrier_b = perm[k + 1] / n_bpsc;
        EXPECT_NE(carrier_a, carrier_b) << "bit " << k;
    }
}

INSTANTIATE_TEST_SUITE_P(AllModulations, InterleaverTest,
                         ::testing::Values(Modulation::BPSK,
                                           Modulation::QPSK,
                                           Modulation::QAM16,
                                           Modulation::QAM64));

TEST(Interleaver, RejectsWrongBlockSize)
{
    Interleaver il(Modulation::QPSK);
    EXPECT_THROW(il.interleave(std::vector<uint8_t>(5)), FatalError);
    EXPECT_THROW(il.deinterleave(std::vector<uint8_t>(95)),
                 FatalError);
}
