/** @file Assembly kernels vs golden DSP models: bit-exact results
 * plus cycle-cost sanity (the paper's methodology step 6). */

#include <gtest/gtest.h>

#include "apps/kernels.hh"
#include "common/rng.hh"
#include "dsp/cic.hh"
#include "dsp/fir.hh"
#include "dsp/mixer.hh"
#include "dsp/nco.hh"
#include "dsp/dct.hh"
#include "dsp/viterbi.hh"

using namespace synchro;
using namespace synchro::apps::kernels;

namespace
{

std::vector<int16_t>
randomQ15(size_t n, uint64_t seed, int16_t bound = 30000)
{
    Rng rng(seed);
    std::vector<int16_t> x(n);
    for (auto &v : x)
        v = int16_t(rng.range(-bound, bound));
    return x;
}

} // namespace

TEST(KernelFir, BitExactVsGolden21Taps)
{
    auto taps = dsp::designLowpassQ15(21, 0.2);
    auto x = randomQ15(100, 7);
    KernelRun run = runFir(taps, x);
    dsp::FirQ15 golden(taps);
    auto want = golden.process(x);
    EXPECT_EQ(run.halves, want);
}

TEST(KernelFir, BitExactVsGolden63Taps)
{
    auto taps = dsp::designPfir63();
    auto x = randomQ15(60, 9);
    KernelRun run = runFir(taps, x);
    dsp::FirQ15 golden(taps);
    EXPECT_EQ(run.halves, golden.process(x));
}

TEST(KernelFir, CyclesPerSampleScalesWithTaps)
{
    // Inner loop is 3 cycles/tap + constant per-sample overhead.
    auto taps21 = dsp::designLowpassQ15(21, 0.2);
    auto x1 = randomQ15(32, 3), x2 = randomQ15(96, 3);
    KernelCost c21 = marginalCost(runFir(taps21, x1), 32,
                                  runFir(taps21, x2), 96);
    EXPECT_NEAR(c21.cycles_per_sample, 3 * 21 + 9, 1.0);

    auto taps63 = dsp::designPfir63();
    KernelCost c63 = marginalCost(runFir(taps63, x1), 32,
                                  runFir(taps63, x2), 96);
    EXPECT_NEAR(c63.cycles_per_sample, 3 * 63 + 9, 1.0);
}

TEST(KernelMixer, BitExactVsGolden)
{
    auto x = randomQ15(128, 21, 32767);
    dsp::Nco nco(5e6, 64e6);
    auto lo = nco.generate(x.size());
    KernelRun run = runMixer(x, lo);
    auto want = dsp::mixBlock(x, lo);
    ASSERT_EQ(run.halves.size(), 2 * want.size());
    for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(run.halves[2 * i], want[i].re) << i;
        EXPECT_EQ(run.halves[2 * i + 1], want[i].im) << i;
    }
}

TEST(KernelMixer, SeventeenCyclesPerSample)
{
    auto x1 = randomQ15(32, 5), x2 = randomQ15(128, 5);
    dsp::Nco nco(1e6, 64e6);
    auto lo1 = nco.generate(32);
    nco.reset();
    auto lo2 = nco.generate(128);
    KernelCost c = marginalCost(runMixer(x1, lo1), 32,
                                runMixer(x2, lo2), 128);
    EXPECT_NEAR(c.cycles_per_sample, 17.0, 1.0);
}

TEST(KernelCic, BitExactVsGoldenFiveStages)
{
    Rng rng(31);
    std::vector<int32_t> x(200);
    for (auto &v : x)
        v = int32_t(rng.range(-1000, 1000));
    KernelRun run = runCicIntegrator(x, 5);
    dsp::CicIntegrator golden(5);
    EXPECT_EQ(run.words, golden.process(x));
}

TEST(KernelCic, WrapsExactlyLikeGolden)
{
    // Drive the integrator into 32-bit wraparound: results must
    // still agree word-for-word (modular arithmetic by design).
    std::vector<int32_t> x(300, INT32_MAX / 2);
    KernelRun run = runCicIntegrator(x, 3);
    dsp::CicIntegrator golden(3);
    EXPECT_EQ(run.words, golden.process(x));
}

TEST(KernelCic, SevenCyclesPerSampleAtFiveStages)
{
    std::vector<int32_t> x1(32, 5), x2(160, 5);
    KernelCost c = marginalCost(runCicIntegrator(x1), 32,
                                runCicIntegrator(x2), 160);
    EXPECT_NEAR(c.cycles_per_sample, 7.0, 0.5);
}

TEST(KernelSad, MatchesByteSum)
{
    Rng rng(17);
    std::vector<uint8_t> a(256), b(256);
    for (auto &v : a)
        v = uint8_t(rng.below(256));
    for (auto &v : b)
        v = uint8_t(rng.below(256));
    KernelRun run = runSad16(a, b);
    uint32_t want = 0;
    for (unsigned i = 0; i < 256; ++i)
        want += uint32_t(std::abs(int(a[i]) - int(b[i])));
    ASSERT_EQ(run.words.size(), 1u);
    EXPECT_EQ(uint32_t(run.words[0]), want);
    // 64 SAA iterations x 3 cycles + setup.
    EXPECT_LT(run.cycles, 220u);
}

TEST(KernelDct, RowPassBitExactVsGolden)
{
    // The fixed-point golden's first (row) pass, replicated here.
    Rng rng(13);
    const unsigned rows = 8;
    std::vector<int16_t> x(rows * 8);
    for (auto &v : x)
        v = int16_t(rng.range(-255, 255));
    KernelRun run = runDct8Rows(x, rows);

    std::vector<int16_t> want(rows * 8);
    for (unsigned r = 0; r < rows; ++r) {
        dsp::Block8x8 block{};
        for (unsigned n = 0; n < 8; ++n)
            block[n] = x[r * 8 + n];
        // One row through the full golden: read out the row pass by
        // computing with a block whose other rows are zero — the
        // row pass of dct8x8 on row 0 equals columns of tmp, so
        // instead compute the 1-D transform directly.
        for (unsigned k = 0; k < 8; ++k) {
            int64_t acc = 1 << 12;
            for (unsigned n = 0; n < 8; ++n) {
                double a = k == 0 ? std::sqrt(1.0 / 8.0)
                                  : std::sqrt(2.0 / 8.0);
                int16_t c = int16_t(std::lround(
                    a * std::cos((2.0 * n + 1.0) * k * M_PI /
                                 16.0) *
                    8192.0));
                acc += int32_t(c) * block[n];
            }
            want[r * 8 + k] = sat16(acc >> 13);
        }
    }
    EXPECT_EQ(run.halves, want);
}

TEST(KernelAcs, DistributedMatchesGoldenUniformMetrics)
{
    // Zero branch metrics: every new metric is the min of its two
    // predecessors.
    std::vector<int32_t> init(64);
    for (unsigned s = 0; s < 64; ++s)
        init[s] = int32_t(1000 + 7 * s);
    std::vector<std::vector<int32_t>> bm(
        1, std::vector<int32_t>(128, 0));
    KernelRun run = runAcs4(init, bm);

    for (unsigned s = 0; s < 64; ++s) {
        unsigned low = s & 31;
        int32_t want = std::min(init[2 * low], init[2 * low + 1]);
        EXPECT_EQ(run.words[s], want) << "state " << s;
    }
}

TEST(KernelAcs, MultiStageMatchesGoldenViterbi)
{
    // Real branch metrics from a coded stream: the distributed
    // kernel must track dsp::viterbiAcsStage exactly across stages.
    Rng rng(41);
    std::vector<uint8_t> bits(24);
    for (auto &b : bits)
        b = uint8_t(rng.below(2));
    auto coded = dsp::convEncode(bits, false);
    const unsigned stages = unsigned(coded.size() / 2);

    // Golden metric evolution.
    std::vector<uint32_t> gold(64, 1u << 20);
    gold[0] = 0;
    std::vector<uint8_t> survivors;

    // Branch metric tables in the kernel's layout: bm[s*2 + tail] =
    // metric cost of reaching state s from predecessor (low<<1)|tail.
    std::vector<std::vector<int32_t>> bm(stages);
    for (unsigned t = 0; t < stages; ++t) {
        unsigned r0 = coded[2 * t], r1 = coded[2 * t + 1];
        bm[t].resize(128);
        for (unsigned s = 0; s < 64; ++s) {
            unsigned b = s >> 5;
            unsigned low = s & 31;
            for (unsigned tail = 0; tail < 2; ++tail) {
                unsigned pred = (low << 1) | tail;
                unsigned reg = (b << 6) | pred;
                unsigned c0 = __builtin_popcount(reg & 0133) & 1;
                unsigned c1 = __builtin_popcount(reg & 0171) & 1;
                bm[t][s * 2 + tail] =
                    int32_t((c0 ^ r0) + (c1 ^ r1));
            }
        }
    }

    std::vector<int32_t> init(64);
    for (unsigned s = 0; s < 64; ++s)
        init[s] = int32_t(gold[s]);
    KernelRun run = runAcs4(init, bm);

    for (unsigned t = 0; t < stages; ++t)
        dsp::viterbiAcsStage(gold, survivors, coded[2 * t],
                             coded[2 * t + 1]);
    for (unsigned s = 0; s < 64; ++s)
        EXPECT_EQ(uint32_t(run.words[s]), gold[s]) << "state " << s;
    // The clean stream's zero-error path survives: state 0 after the
    // tailless stream has metric 0 only if bits end in zeros; just
    // check the minimum metric is 0 (no channel errors).
    int32_t best = run.words[0];
    for (int32_t m : run.words)
        best = std::min(best, m);
    EXPECT_EQ(best, 0);
}

TEST(KernelAcs, ExchangeUsesFourLanesInParallel)
{
    std::vector<int32_t> init(64, 1);
    std::vector<std::vector<int32_t>> bm(
        4, std::vector<int32_t>(128, 0));
    KernelRun run = runAcs4(init, bm);
    // 4 tiles x 32 sends x 4 stages bus transactions.
    EXPECT_EQ(run.bus_transfers, uint64_t(4 * 32 * 4));
    // The send loop is 4 cycles/iteration with 4 lanes running in
    // parallel; the whole stage (exchange + ACS + refill) stays
    // within ~360 cycles.
    double per_stage = double(run.cycles) / 4.0;
    EXPECT_LT(per_stage, 400.0);
    EXPECT_GT(per_stage, 250.0);
}
