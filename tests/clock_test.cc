/** @file Unit tests for rationally-related clock domains. */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "sim/clock.hh"

using namespace synchro;

TEST(ClockDomain, FrequencyFromDivider)
{
    // The paper's DDC example: 120 MHz and 200 MHz both derived from
    // a 600 MHz reference (dividers 5 and 3).
    ClockDomain mixer(600e6, 5);
    ClockDomain integ(600e6, 3);
    EXPECT_DOUBLE_EQ(mixer.frequencyMHz(), 120.0);
    EXPECT_DOUBLE_EQ(integ.frequencyMHz(), 200.0);
}

TEST(ClockDomain, EdgesAtMultiplesOfDivider)
{
    ClockDomain d(600e6, 4);
    EXPECT_TRUE(d.onEdge(0));
    EXPECT_FALSE(d.onEdge(1));
    EXPECT_FALSE(d.onEdge(3));
    EXPECT_TRUE(d.onEdge(8));
    EXPECT_EQ(d.cycleToTick(0), 0u);
    EXPECT_EQ(d.cycleToTick(3), 12u);
}

TEST(ClockDomain, PhaseOffset)
{
    ClockDomain d(600e6, 4, 2);
    EXPECT_FALSE(d.onEdge(0));
    EXPECT_TRUE(d.onEdge(2));
    EXPECT_TRUE(d.onEdge(6));
    EXPECT_EQ(d.nextEdgeAfter(0), 2u);
    EXPECT_EQ(d.nextEdgeAfter(2), 6u);
}

TEST(ClockDomain, NextEdgeAfterIsStrict)
{
    ClockDomain d(600e6, 5);
    EXPECT_EQ(d.nextEdgeAfter(0), 5u);
    EXPECT_EQ(d.nextEdgeAfter(4), 5u);
    EXPECT_EQ(d.nextEdgeAfter(5), 10u);
}

TEST(ClockDomain, TickToCycleCountsCompletedEdges)
{
    ClockDomain d(600e6, 3);
    // Edges at 0, 3, 6, ...: at tick t the edges at <= t have fired.
    EXPECT_EQ(d.tickToCycle(0), 1u);
    EXPECT_EQ(d.tickToCycle(2), 1u);
    EXPECT_EQ(d.tickToCycle(3), 2u);
    EXPECT_EQ(d.tickToCycle(7), 3u);
}

TEST(ClockDomain, RationalRelation)
{
    // Any two domains' edges coincide every lcm(d1, d2) ticks — the
    // property that lets Synchroscalar avoid GALS async FIFOs.
    ClockDomain a(600e6, 5);
    ClockDomain b(600e6, 3);
    for (Tick t = 0; t < 200; ++t) {
        bool coincide = a.onEdge(t) && b.onEdge(t);
        EXPECT_EQ(coincide, t % 15 == 0) << "tick " << t;
    }
}

TEST(ClockDomain, ZeroDividerRejected)
{
    EXPECT_THROW(ClockDomain(600e6, 0), FatalError);
}

TEST(ClockDomain, PhaseBeyondDividerRejected)
{
    EXPECT_THROW(ClockDomain(600e6, 4, 4), FatalError);
}
