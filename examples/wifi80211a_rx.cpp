/**
 * @file
 * 802.11a receiver example — the paper's end-to-end wireless
 * workload (Section 3): transmit OFDM frames through an AWGN
 * channel and receive them with the FFT -> demap -> de-interleave
 * -> Viterbi chain, sweeping SNR and modulation; then price the
 * mapped receiver with the power model.
 */

#include <cstdio>

#include "apps/paper_workloads.hh"
#include "common/rng.hh"
#include "dsp/ofdm.hh"
#include "power/system_power.hh"

using namespace synchro;
using namespace synchro::dsp;

int
main()
{
    Rng rng(80211);

    std::printf("802.11a OFDM link: 48 data carriers, rate-1/2 "
                "K=7 code, 64-point FFT, CP %u\n\n",
                OfdmCpLen);
    std::printf("  %-8s %-10s", "SNR dB", "");
    for (Modulation m : {Modulation::BPSK, Modulation::QPSK,
                         Modulation::QAM16, Modulation::QAM64}) {
        std::printf(" %10s", m == Modulation::BPSK    ? "BPSK"
                             : m == Modulation::QPSK  ? "QPSK"
                             : m == Modulation::QAM16 ? "16-QAM"
                                                      : "64-QAM");
    }
    std::printf("\n");

    for (double snr : {30.0, 20.0, 15.0, 10.0, 5.0}) {
        std::printf("  %-8.0f %-10s", snr, "BER:");
        for (Modulation m : {Modulation::BPSK, Modulation::QPSK,
                             Modulation::QAM16, Modulation::QAM64}) {
            OfdmConfig cfg{m};
            std::vector<uint8_t> bits(20 * cfg.dataBitsPerSymbol());
            for (auto &b : bits)
                b = uint8_t(rng.below(2));
            auto tx = ofdmTransmit(bits, cfg);
            addAwgn(tx, snr, rng);
            auto rx = ofdmReceive(tx, cfg);
            rx.resize(bits.size());
            double ber = bitErrorRate(bits, rx);
            if (ber == 0)
                std::printf(" %10s", "clean");
            else
                std::printf(" %10.2e", ber);
        }
        std::printf("\n");
    }

    // --- Synchroscalar receiver mapping (Table 4) -----------------
    power::SystemPowerModel model;
    std::printf("\nSynchroscalar mapping of the 54 Mbps receiver "
                "(Table 4):\n");
    double total = 0;
    for (const auto &row : apps::paperTable4()) {
        if (row.app != "802.11a")
            continue;
        power::DomainLoad load{row.algo, row.tiles, row.f_mhz,
                               row.v,
                               apps::calibrateTransfers(row, model)};
        double p = model.loadPower(load).total();
        total += p;
        std::printf("  %-22s %2u tiles @ %3.0f MHz / %.1f V : "
                    "%8.2f mW\n",
                    row.algo.c_str(), row.tiles, row.f_mhz, row.v,
                    p);
    }
    std::printf("  total: %.2f mW for 54 Mbps = %.1f nJ per bit\n",
                total, total * 1e-3 / 54e6 * 1e9);
    std::printf("  (the Viterbi ACS column dominates: its trellis "
                "exchange is why Figure 8 studies the bus width)\n");
    return 0;
}
