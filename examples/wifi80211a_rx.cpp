/**
 * @file
 * 802.11a receiver example — the paper's end-to-end wireless
 * workload (Section 3), now executed *mapped* on the simulated chip:
 * the demap -> de-interleave -> fork(Viterbi ACS x2) -> join
 * (traceback) DAG is planned by the AutoMapper, lowered by the DAG
 * codegen, run cycle-accurately on all three scheduler backends,
 * checked
 * bit-exactly against the dsp:: golden chain, and priced next to the
 * paper's Table 4 802.11a row from its measured activity.
 *
 * A BER sweep of the pure dsp:: link (FFT -> demap -> de-interleave
 * -> Viterbi across SNR and modulations) still opens the report, as
 * the golden context for what the mapped receiver implements.
 */

#include <cstdio>

#include "apps/paper_workloads.hh"
#include "apps/wifi_runner.hh"
#include "common/rng.hh"
#include "dsp/ofdm.hh"
#include "sim/scheduler.hh"

using namespace synchro;
using namespace synchro::dsp;
using namespace synchro::apps;

int
main(int argc, char **argv)
{
    // --backend picks the run used for the power report; the
    // cross-check always covers all three backends.
    const SchedulerKind primary = backendFromArgs(argc, argv);
    Rng rng(80211);

    std::printf("802.11a OFDM link: 48 data carriers, rate-1/2 "
                "K=7 code, 64-point FFT, CP %u\n\n",
                OfdmCpLen);
    std::printf("  %-8s %-10s", "SNR dB", "");
    for (Modulation m : {Modulation::BPSK, Modulation::QPSK,
                         Modulation::QAM16, Modulation::QAM64}) {
        std::printf(" %10s", m == Modulation::BPSK    ? "BPSK"
                             : m == Modulation::QPSK  ? "QPSK"
                             : m == Modulation::QAM16 ? "16-QAM"
                                                      : "64-QAM");
    }
    std::printf("\n");

    for (double snr : {30.0, 20.0, 15.0, 10.0, 5.0}) {
        std::printf("  %-8.0f %-10s", snr, "BER:");
        for (Modulation m : {Modulation::BPSK, Modulation::QPSK,
                             Modulation::QAM16, Modulation::QAM64}) {
            OfdmConfig cfg{m};
            std::vector<uint8_t> bits(20 * cfg.dataBitsPerSymbol());
            for (auto &b : bits)
                b = uint8_t(rng.below(2));
            auto tx = ofdmTransmit(bits, cfg);
            addAwgn(tx, snr, rng);
            auto rx = ofdmReceive(tx, cfg);
            rx.resize(bits.size());
            double ber = bitErrorRate(bits, rx);
            if (ber == 0)
                std::printf(" %10s", "clean");
            else
                std::printf(" %10.2e", ber);
        }
        std::printf("\n");
    }

    // --- the mapped receiver: plan, lower, run, verify ----------
    WifiPipelineParams params;
    params.symbols = 16;

    auto plan = planWifi(params);
    if (!plan) {
        std::printf("no feasible mapping\n");
        return 1;
    }
    std::printf("\nmapped receiver (QPSK, %u frames of %u data "
                "bits):\n%s",
                params.symbols, WifiFrameBits,
                plan->report().c_str());

    MappedWifiRun runs[3];
    const SchedulerKind kinds[3] = {SchedulerKind::FastEdge,
                                    SchedulerKind::EventQueue,
                                    SchedulerKind::Compiled};
    int pidx = 0;
    for (int i = 0; i < 3; ++i) {
        if (kinds[i] == primary)
            pidx = i;
        params.scheduler = kinds[i];
        runs[i] = runMappedWifi(params);
        const MappedWifiRun &r = runs[i];
        std::printf("\n%s: %zu data bits in %llu ticks (%.1f kbit/s "
                    "sustained)\n",
                    schedulerName(kinds[i]), r.output.size(),
                    (unsigned long long)r.ticks,
                    r.achieved_bit_rate_hz / 1e3);
        std::printf("  vs dsp:: golden chain: %s (payload %s); "
                    "%llu bus transfers, %llu deferrals, "
                    "%llu overruns, %llu conflicts\n",
                    r.bit_exact ? "bit-exact" : "MISMATCH",
                    r.golden_matches_tx ? "recovered" : "DAMAGED",
                    (unsigned long long)r.bus_transfers,
                    (unsigned long long)r.deferrals,
                    (unsigned long long)r.overruns,
                    (unsigned long long)r.conflicts);
    }

    bool identical = true;
    for (int i = 0; i < 3; ++i) {
        identical = identical &&
                    runs[i].result.exit == runs[1].result.exit &&
                    runs[i].ticks == runs[1].ticks &&
                    runs[i].output == runs[1].output &&
                    runs[i].stats == runs[1].stats;
    }
    std::printf("\nbackend cross-check (fastedge/compiled vs "
                "event-queue): %s (all at tick %llu, all stats "
                "compared)\n",
                identical ? "identical" : "MISMATCH",
                (unsigned long long)runs[1].ticks);

    // --- measured power next to the paper's Table 4 row ----------
    std::printf("\npower report from the %s run:\n",
                schedulerName(kinds[pidx]));
    const auto &pw = runs[pidx].power;
    double paper_multi = 0, paper_single = 0;
    int paper_pct = 0;
    for (const auto &row : apps::paperAppTotals()) {
        if (row.app == "802.11a") {
            paper_multi = row.total_mw;
            paper_single = row.single_v_mw;
            paper_pct = row.savings_pct;
        }
    }
    std::printf("\nmulti-V vs single-V (measured activity, %.1f "
                "kbit/s sustained):\n",
                runs[pidx].achieved_bit_rate_hz / 1e3);
    std::printf("  %-30s %10s %12s %8s\n", "", "multi-V", "single-V",
                "saved");
    std::printf("  %-30s %7.2f mW %9.2f mW %6.1f%%\n",
                "this run (1 tile/stage)", pw.multi_v.total(),
                pw.single_v.total(), pw.savingsPct());
    std::printf("  %-30s %7.2f mW %9.2f mW %6d%%\n",
                "paper Table 4 802.11a (20 tiles)", paper_multi,
                paper_single, paper_pct);
    std::printf("  (the Viterbi ACS columns dominate at the top "
                "supply in both pricings — why the paper's own "
                "802.11a row saves so little, and why Figure 8 "
                "studies the ACS bus traffic)\n");

    bool ok = runs[0].bit_exact && runs[1].bit_exact &&
              runs[2].bit_exact && identical &&
              runs[pidx].overruns == 0 && runs[pidx].conflicts == 0;
    return ok ? 0 : 1;
}
