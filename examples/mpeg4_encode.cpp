/**
 * @file
 * MPEG-4 encoder core example — the paper's video workload
 * (Section 3): motion estimation + DCT + quantization over a
 * synthetic moving scene ("constitute about 90% of the video
 * encoder"), with PSNR/residual statistics, the Table 4 mapping —
 * and then the motion-estimation core *executed on the simulated
 * chip* (two macroblock-sharded SAA search columns + best-vector
 * join via apps::runMappedMotion), bit-exact against
 * dsp::fullSearch and priced next to Table 4's MPEG4-QCIF row.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "apps/motion_runner.hh"
#include "apps/paper_workloads.hh"
#include "common/rng.hh"
#include "dsp/dct.hh"
#include "dsp/motion.hh"
#include "power/system_power.hh"

using namespace synchro;
using namespace synchro::dsp;

namespace
{

/** A textured scene translated by (dx, dy) with a little noise. */
Image
scene(unsigned w, unsigned h, int dx, int dy, Rng &rng)
{
    Image img(w, h);
    for (unsigned y = 0; y < h; ++y) {
        for (unsigned x = 0; x < w; ++x) {
            double v =
                128 + 50 * std::sin((int(x) + dx) / 7.0) +
                40 * std::cos((int(y) + dy) / 9.0) +
                20 * std::sin(((int(x) + dx) + (int(y) + dy)) / 5.0);
            v += rng.gauss() * 2.0;
            img(x, y) = uint8_t(std::clamp(v, 0.0, 255.0));
        }
    }
    return img;
}

} // namespace

int
main()
{
    // QCIF luma: 176x144, 16x16 macroblocks.
    const unsigned w = 176, h = 144, mb = 16;
    Rng rng(4);
    Image ref = scene(w, h, 0, 0, rng);
    Rng rng2(4);
    Image cur = scene(w, h, 3, -2, rng2); // camera pan (3, -2)

    // Motion estimation per macroblock (full search +-7).
    unsigned good_mv = 0, blocks = 0;
    uint64_t residual_sad = 0, intra_sad = 0;
    for (unsigned by = 0; by + mb <= h; by += mb) {
        for (unsigned bx = 0; bx + mb <= w; bx += mb) {
            MotionVector mv = fullSearch(cur, ref, bx, by, 7, mb);
            ++blocks;
            if (mv.dx == 3 && mv.dy == -2)
                ++good_mv;
            residual_sad += mv.sad;
            intra_sad += blockSad(cur, ref, bx, by, 0, 0, mb);
        }
    }
    std::printf("motion estimation: %u/%u macroblocks found the "
                "(3,-2) pan; residual SAD %.1f%% of uncompensated\n",
                good_mv, blocks,
                100.0 * double(residual_sad) / double(intra_sad));

    // DCT + quantization round trip on the residual blocks.
    double mse = 0;
    unsigned coeffs_kept = 0, coeffs_total = 0;
    const int qp = 8;
    for (unsigned by = 0; by + 8 <= h; by += 8) {
        for (unsigned bx = 0; bx + 8 <= w; bx += 8) {
            Block8x8 block{};
            for (unsigned j = 0; j < 8; ++j)
                for (unsigned i = 0; i < 8; ++i)
                    block[j * 8 + i] =
                        int16_t(int(cur(bx + i, by + j)) - 128);
            Block8x8 coef = dct8x8(block);
            Block8x8 q = quantize(coef, qp);
            for (int16_t v : zigzag(q)) {
                ++coeffs_total;
                if (v != 0)
                    ++coeffs_kept;
            }
            Block8x8 rec = idct8x8(dequantize(q, qp));
            for (unsigned k = 0; k < 64; ++k) {
                double d = double(rec[k]) - block[k];
                mse += d * d;
            }
        }
    }
    mse /= double(coeffs_total);
    double psnr = 10.0 * std::log10(255.0 * 255.0 / mse);
    std::printf("transform coding at qp=%d: %.1f%% nonzero "
                "coefficients, reconstruction PSNR %.1f dB\n",
                qp, 100.0 * coeffs_kept / coeffs_total, psnr);

    // --- Synchroscalar mapping (Table 4, QCIF and CIF) ------------
    power::SystemPowerModel model;
    for (const char *app : {"MPEG4-QCIF", "MPEG4-CIF"}) {
        double total = 0;
        std::printf("\n%s @ 30 f/s on Synchroscalar:\n", app);
        for (const auto &row : apps::paperTable4()) {
            if (row.app != app)
                continue;
            power::DomainLoad load{
                row.algo, row.tiles, row.f_mhz, row.v,
                apps::calibrateTransfers(row, model)};
            double p = model.loadPower(load).total();
            total += p;
            std::printf("  %-20s %2u tiles @ %3.0f MHz / %.1f V : "
                        "%7.2f mW\n",
                        row.algo.c_str(), row.tiles, row.f_mhz,
                        row.v, p);
        }
        std::printf("  total: %.2f mW\n", total);
    }

    // --- the mapped search, executed on the chip ------------------
    std::printf("\nmapped motion estimation on the chip (%ux%u, "
                "+-%d full search over %u shard columns):\n",
                apps::MotionWidth, apps::MotionHeight,
                apps::MotionRange, apps::MotionColumns);
    apps::MotionPipelineParams mp;
    apps::MappedMotionRun run = apps::runMappedMotion(mp);
    std::printf("%s\n", run.plan.report().c_str());
    std::printf("  %llu ticks, %s vs dsp::fullSearch, pan hit rate "
                "%.0f%%, %.1f kMB/s sustained\n",
                (unsigned long long)run.ticks,
                run.bit_exact ? "bit-exact" : "MISMATCH",
                100.0 * run.pan_hit_rate,
                run.achieved_mb_rate_hz / 1e3);
    std::printf("  measured power: %.2f mW multi-V vs %.2f mW "
                "single-V = %.1f%% saved (Table 4 MPEG4-QCIF: 0%%) "
                "— the symmetric search shards dominate at the top "
                "supply, so multiple voltage domains buy almost "
                "nothing here, exactly the paper's observation\n",
                run.power.multi_v.total(), run.power.single_v.total(),
                run.power.savingsPct());
    return run.bit_exact ? 0 : 1;
}
