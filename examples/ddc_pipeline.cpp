/**
 * @file
 * Digital Down Converter example — the paper's GSM workload
 * (Section 3): NCO -> mixer -> 5-stage CIC decimator -> CFIR ->
 * PFIR, run through the golden kernels on a synthetic carrier, then
 * mapped onto Synchroscalar columns with the paper's Table 4
 * configuration and priced with the power model.
 */

#include <cmath>
#include <cstdio>

#include "apps/paper_workloads.hh"
#include "common/fixed.hh"
#include "common/rng.hh"
#include "dsp/cic.hh"
#include "dsp/fir.hh"
#include "dsp/mixer.hh"
#include "dsp/nco.hh"
#include "power/system_power.hh"

using namespace synchro;
using namespace synchro::dsp;

int
main()
{
    // A 5 MHz tone of interest riding at the 64 MS/s GSM front-end
    // rate, plus an interferer at 20 MHz and noise.
    const double fs = 64e6;
    const double f_signal = 5.0e6;
    const double f_interferer = 20.0e6;
    const size_t n = 1 << 15;

    Rng rng(2004);
    std::vector<int16_t> rf(n);
    for (size_t i = 0; i < n; ++i) {
        double t = double(i);
        double v = 0.4 * std::cos(2.0 * M_PI * f_signal / fs * t) +
                   0.25 * std::cos(2.0 * M_PI * f_interferer / fs *
                                   t) +
                   0.02 * rng.gauss();
        rf[i] = toQ15(v * 0.9);
    }
    std::printf("DDC input: %zu samples at %.0f MS/s (tone at %.1f "
                "MHz, interferer at %.1f MHz)\n",
                n, fs / 1e6, f_signal / 1e6, f_interferer / 1e6);

    // Stage 1+2: NCO + mixer shift the tone to baseband.
    Nco nco(f_signal, fs);
    auto mixed = mixBlock(rf, nco.generate(n));

    // Stage 3: 5-stage CIC decimates by 8 (I and Q independently).
    CicDecimator cic_i(5, 8), cic_q(5, 8);
    std::vector<int32_t> i_in(n), q_in(n);
    for (size_t k = 0; k < n; ++k) {
        i_in[k] = mixed[k].re;
        q_in[k] = mixed[k].im;
    }
    auto i_dec = cic_i.process(i_in);
    auto q_dec = cic_q.process(q_in);
    double gain = cic_i.gain();

    // Stages 4+5: CFIR (droop compensation) then PFIR (channel).
    auto cfir = designCfir21(5, 8);
    auto pfir = designPfir63(0.2);
    FirQ15 cf_i(cfir), cf_q(cfir), pf_i(pfir), pf_q(pfir);
    std::vector<int16_t> i16(i_dec.size()), q16(q_dec.size());
    for (size_t k = 0; k < i_dec.size(); ++k) {
        i16[k] = sat16(int64_t(std::lround(i_dec[k] / gain)));
        q16[k] = sat16(int64_t(std::lround(q_dec[k] / gain)));
    }
    auto i_out = pf_i.process(cf_i.process(i16));
    auto q_out = pf_q.process(cf_q.process(q16));

    // The recovered baseband should be a strong DC-ish I component
    // (tone mixed to 0 Hz) with the interferer crushed by the CIC +
    // FIR stopband.
    double dc = 0, ac = 0;
    size_t settle = 96; // filter group delays
    for (size_t k = settle; k < i_out.size(); ++k) {
        double iv = fromQ15(i_out[k]);
        dc += iv;
    }
    dc /= double(i_out.size() - settle);
    for (size_t k = settle; k < i_out.size(); ++k) {
        double iv = fromQ15(i_out[k]) - dc;
        ac += iv * iv;
    }
    ac = std::sqrt(ac / double(i_out.size() - settle));
    std::printf("baseband I: mean %.4f (recovered tone), residual "
                "ripple %.4f rms -> %.1f dB down\n",
                dc, ac, 20.0 * std::log10(std::abs(dc) / ac));

    // --- Synchroscalar mapping (paper Table 4) --------------------
    power::SystemPowerModel model;
    std::printf("\nSynchroscalar mapping of this pipeline "
                "(Table 4):\n");
    double total = 0;
    for (const auto &row : apps::paperTable4()) {
        if (row.app != "DDC")
            continue;
        power::DomainLoad load{row.algo, row.tiles, row.f_mhz,
                               row.v,
                               apps::calibrateTransfers(row, model)};
        double p = model.loadPower(load).total();
        total += p;
        std::printf("  %-16s %2u tiles @ %3.0f MHz / %.1f V : %8.2f "
                    "mW\n",
                    row.algo.c_str(), row.tiles, row.f_mhz, row.v,
                    p);
    }
    std::printf("  total: %.2f mW for 64 MS/s = %.1f nW per "
                "sample\n",
                total, total * 1e-3 / 64e6 * 1e9);
    return 0;
}
