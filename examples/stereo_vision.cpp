/**
 * @file
 * Stereo vision example — the paper's Mars-Rover workload (Section
 * 3): Tomasi-Kanade point feature extraction on a synthetic stereo
 * pair, SVD-based feature correlation (Pilu), disparity/depth
 * recovery — and then the real thing: the dense block-matching
 * disparity pipeline *executed on the simulated chip* (prefilter ->
 * fork(SAD x4) -> min-SAD join via apps::runMappedStereo), bit-exact
 * against the dsp:: golden and priced next to Table 4's SV row.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "apps/paper_workloads.hh"
#include "apps/stereo_runner.hh"
#include "common/rng.hh"
#include "dsp/stereo.hh"
#include "dsp/svd.hh"
#include "dsp/tomasi.hh"
#include "power/system_power.hh"

using namespace synchro;
using namespace synchro::dsp;

namespace
{

/**
 * A synthetic scene of textured square "rocks" at known depths; the
 * right view shifts each rock left by its disparity = B*f/Z.
 */
struct Rock
{
    unsigned x, y, size;
    double depth_m;
};

void
drawRock(Image &img, const Rock &r, int shift, Rng &rng)
{
    for (unsigned j = 0; j < r.size; ++j) {
        for (unsigned i = 0; i < r.size; ++i) {
            int x = int(r.x) + int(i) - shift;
            int y = int(r.y) + int(j);
            if (x < 0 || y < 0 || x >= int(img.width()) ||
                y >= int(img.height())) {
                continue;
            }
            // Checker texture so corners are trackable.
            uint8_t v = ((i / 3 + j / 3) % 2) ? 210 : 70;
            img(unsigned(x), unsigned(y)) =
                uint8_t(std::clamp(int(v) + int(rng.gauss() * 3), 0,
                                   255));
        }
    }
}

} // namespace

int
main()
{
    const unsigned w = 256, h = 256; // the paper's frame size
    const double baseline_focal = 600.0; // B*f in pixel-metres

    std::vector<Rock> rocks = {
        {40, 60, 24, 50.0},  // far rock: disparity 12
        {150, 90, 28, 30.0}, // mid rock: disparity 20
        {90, 170, 32, 20.0}, // near rock: disparity 30
    };

    Rng rng(7);
    Image left(w, h, 128), right(w, h, 128);
    for (const auto &r : rocks) {
        int disparity = int(std::lround(baseline_focal / r.depth_m));
        Rng tex(unsigned(r.x * 31 + r.y));
        drawRock(left, r, 0, tex);
        Rng tex2(unsigned(r.x * 31 + r.y));
        drawRock(right, r, disparity, tex2);
    }

    auto lf = extractFeatures(left, 60, 0.02, 8);
    auto rf = extractFeatures(right, 60, 0.02, 8);
    std::printf("feature extraction: %zu left, %zu right features "
                "(Tomasi-Kanade min-eigenvalue)\n",
                lf.size(), rf.size());

    auto matches = svdCorrelate(left, lf, right, rf, 40.0, 4);
    auto disp = disparities(lf, rf, matches);
    std::printf("SVD correlation: %zu matches\n", matches.size());

    // Cluster matched disparities against the known rock depths.
    for (const auto &r : rocks) {
        double want = baseline_focal / r.depth_m;
        unsigned hits = 0;
        double sum = 0;
        for (size_t k = 0; k < matches.size(); ++k) {
            const Feature &f = lf[matches[k].left];
            if (f.x >= r.x && f.x < r.x + r.size && f.y >= r.y &&
                f.y < r.y + r.size && std::abs(disp[k] - want) < 4) {
                ++hits;
                sum += disp[k];
            }
        }
        if (hits > 0) {
            double d = sum / hits;
            std::printf("  rock at (%3u,%3u): disparity %.1f px -> "
                        "depth %.1f m (truth %.1f m, %u features)\n",
                        r.x, r.y, d, baseline_focal / d, r.depth_m,
                        hits);
        } else {
            std::printf("  rock at (%3u,%3u): no matched features\n",
                        r.x, r.y);
        }
    }

    // --- Synchroscalar mapping (Table 4) --------------------------
    power::SystemPowerModel model;
    std::printf("\nSynchroscalar mapping at 10 f/s, 256x256 stereo "
                "(Table 4):\n");
    double total = 0;
    for (const auto &row : apps::paperTable4()) {
        if (row.app != "SV")
            continue;
        power::DomainLoad load{row.algo, row.tiles, row.f_mhz, row.v,
                               apps::calibrateTransfers(row, model)};
        double p = model.loadPower(load).total();
        total += p;
        std::printf("  %-6s %2u tiles @ %3.0f MHz / %.1f V : %8.2f "
                    "mW\n",
                    row.algo.c_str(), row.tiles, row.f_mhz, row.v,
                    p);
    }
    std::printf("  total: %.2f mW (the serial SVD forces one tile "
                "to 500 MHz / 1.5 V — the voltage-scaling win of "
                "Table 4's 32%% savings)\n",
                total);

    // --- the mapped pipeline, executed on the chip ----------------
    std::printf("\nmapped block-matching disparity on the chip "
                "(%ux%u, %u disparities over %u SAD columns):\n",
                apps::StereoWidth, apps::StereoHeight,
                apps::StereoMaxDisp, apps::StereoSadColumns);
    apps::StereoPipelineParams sp;
    apps::MappedStereoRun run = apps::runMappedStereo(sp);
    std::printf("%s\n", run.plan.report().c_str());
    std::printf("  %llu ticks, %s vs dsp::stereoBlockDisparities, "
                "truth hit rate %.0f%%, %.1f kblocks/s sustained\n",
                (unsigned long long)run.ticks,
                run.bit_exact ? "bit-exact" : "MISMATCH",
                100.0 * run.truth_hit_rate,
                run.achieved_block_rate_hz / 1e3);
    std::printf("  measured power: %.2f mW multi-V vs %.2f mW "
                "single-V = %.1f%% saved (Table 4 SV: 32%%) — the "
                "serial prefilter column pins the top supply while "
                "the SAD farm idles down, the paper's SV shape\n",
                run.power.multi_v.total(), run.power.single_v.total(),
                run.power.savingsPct());
    return run.bit_exact ? 0 : 1;
}
