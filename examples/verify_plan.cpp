/**
 * @file
 * Static verification reports for the four mapped Table 4 apps.
 *
 * Prints mapping::verifyLowered()'s full report — per-check
 * pass/fail plus every finding — for exactly the lowered artifacts
 * the mapped runners execute (DDC receiver, 802.11a receiver, stereo
 * disparity, MPEG-4 motion estimation), without running a single
 * tick. Exits non-zero if any committed lowering fails to verify;
 * CI smoke-runs it under the "example" ctest label.
 */

#include <cstdio>

#include "apps/app_registry.hh"
#include "mapping/verifier.hh"

using namespace synchro;

int
main()
{
    bool all_ok = true;
    // Every registered app's committed lowering, at default params.
    for (const std::string &name :
         apps::AppRegistry::instance().names()) {
        const mapping::LoweredArtifact art =
            apps::AppRegistry::instance().at(name).verifiable();
        const mapping::VerifyReport rep = art.verify();
        all_ok = all_ok && rep.ok();
        std::printf("=== %s (%zu columns, period %u, %s bus) ===\n",
                    art.name.c_str(), art.prog.columns.size(),
                    art.prog.period,
                    art.prog.self_timed ? "self-timed" : "legacy");
        std::printf("%s\n", rep.render().c_str());
    }

    if (!all_ok) {
        std::printf("verify_plan: FAIL — a committed lowering has a "
                    "provable safety violation\n");
        return 1;
    }
    std::printf("verify_plan: all four mapped apps verify clean\n");
    return 0;
}
