/**
 * @file
 * Automated mapping example — the paper's future-work tool chain
 * (Section 7: "a software tool chain to automate and optimize
 * application parallelization and communication scheduling").
 *
 * Describe a software-radio receiver as an SDF graph with measured
 * per-firing cycle costs; the AutoMapper checks the SDF certificates
 * (consistency, deadlock freedom, buffer bounds), chooses
 * power-optimal tile counts, dividers off the 600 MHz reference,
 * supply voltages, and exact ZORM settings — then the plan
 * configures a real simulated chip.
 */

#include <cstdio>

#include "arch/chip.hh"
#include "isa/assembler.hh"
#include "mapping/auto_mapper.hh"

using namespace synchro;
using namespace synchro::mapping;

int
main()
{
    // A software-radio receiver: front end at 8 M iterations/s
    // (one iteration = 8 input samples through the decimator).
    SdfGraph g;
    unsigned mixer = g.addActor("mixer", 17);       // measured on
    unsigned integ = g.addActor("integrator", 7);   // the simulator
    unsigned comb = g.addActor("comb", 7);          // (see
    unsigned chan = g.addActor("channel-fir", 72);  // bench_micro_
    unsigned demod = g.addActor("demod", 30);       // kernels)
    g.addEdge(mixer, integ, 1, 1);
    g.addEdge(integ, comb, 1, 8); // decimate by 8
    g.addEdge(comb, chan, 1, 1);
    g.addEdge(chan, demod, 1, 1);

    std::vector<ActorCommSpec> comm(g.numActors());
    comm[mixer].words_per_firing = 1; // stream to the next column
    comm[integ].words_per_firing = 1;
    comm[comb].words_per_firing = 1;
    comm[chan].words_per_firing = 1;
    comm[demod].max_parallel = 2; // mostly serial bit logic

    power::SystemPowerModel model;
    power::VfModel vf;
    power::SupplyLevels levels(vf);
    AutoMapper mapper(model, levels);

    auto plan = mapper.map(g, 8e6, comm);
    if (!plan) {
        std::printf("no feasible mapping\n");
        return 1;
    }

    std::printf("%s", plan->report().c_str());
    std::printf("\nSDF certificates:\n  repetition vector:");
    for (uint64_t q : plan->repetition)
        std::printf(" %llu", (unsigned long long)q);
    std::printf("\n  buffer bounds (tokens):");
    for (uint64_t b : plan->buffer_bounds)
        std::printf(" %llu", (unsigned long long)b);
    std::printf("\n");

    // Bring up the planned chip and spot-check that every column
    // runs at its planned rate (a trivial counting program under the
    // plan's ZORM throttling).
    arch::ChipConfig cfg;
    cfg.dividers = plan->dividers();
    arch::Chip chip(cfg);
    for (unsigned c = 0; c < chip.numColumns(); ++c) {
        chip.column(c).controller().loadProgram(isa::assemble(R"(
            movi r0, 0
            lsetup lc0, e, 1000
            addi r0, 1
        e:
            halt
        )"));
        for (const auto &p : plan->placements) {
            if (c >= p.first_column &&
                c < p.first_column + p.columns) {
                chip.column(c).controller().setRateMatch(
                    p.zorm.nops, p.zorm.period);
            }
        }
    }
    auto res = chip.run(10'000'000);
    std::printf("\nplanned chip executed: %s at tick %llu\n",
                res.exit == arch::RunExit::AllHalted ? "halted"
                                                     : "running",
                (unsigned long long)res.ticks);
    for (unsigned c = 0; c < chip.numColumns(); ++c) {
        const auto &st = chip.column(c).controller().stats();
        uint64_t real = st.value("issued");
        uint64_t nops = st.value("zormNops");
        std::printf("  column %u (/%u): %llu compute slots, %llu "
                    "ZORM nops (%.1f%% throttle)\n",
                    c, chip.column(c).clock().divider(),
                    (unsigned long long)real,
                    (unsigned long long)nops,
                    100.0 * double(nops) / double(real + nops));
    }
    return 0;
}
