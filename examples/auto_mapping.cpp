/**
 * @file
 * Automated mapping example — the paper's future-work tool chain
 * (Section 7: "a software tool chain to automate and optimize
 * application parallelization and communication scheduling").
 *
 * Describe a software-radio receiver as an SDF graph with measured
 * per-firing cycle costs; the AutoMapper checks the SDF certificates
 * (consistency, deadlock freedom, buffer bounds), chooses
 * power-optimal tile counts, dividers off the 600 MHz reference,
 * supply voltages, and exact ZORM settings — then the plan
 * configures a real simulated chip.
 */

#include <cstdio>
#include <map>
#include <string>

#include "arch/chip.hh"
#include "isa/assembler.hh"
#include "mapping/auto_mapper.hh"
#include "sim/session.hh"

using namespace synchro;
using namespace synchro::mapping;

int
main()
{
    // A software-radio receiver: front end at 8 M iterations/s
    // (one iteration = 8 input samples through the decimator).
    SdfGraph g;
    unsigned mixer = g.addActor("mixer", 17);       // measured on
    unsigned integ = g.addActor("integrator", 7);   // the simulator
    unsigned comb = g.addActor("comb", 7);          // (see
    unsigned chan = g.addActor("channel-fir", 72);  // bench_micro_
    unsigned demod = g.addActor("demod", 30);       // kernels)
    g.addEdge(mixer, integ, 1, 1);
    g.addEdge(integ, comb, 1, 8); // decimate by 8
    g.addEdge(comb, chan, 1, 1);
    g.addEdge(chan, demod, 1, 1);

    std::vector<ActorCommSpec> comm(g.numActors());
    comm[mixer].words_per_firing = 1; // stream to the next column
    comm[integ].words_per_firing = 1;
    comm[comb].words_per_firing = 1;
    comm[chan].words_per_firing = 1;
    comm[demod].max_parallel = 2; // mostly serial bit logic

    power::SystemPowerModel model;
    power::VfModel vf;
    power::SupplyLevels levels(vf);
    AutoMapper mapper(model, levels);

    auto plan = mapper.map(g, 8e6, comm);
    if (!plan) {
        std::printf("no feasible mapping\n");
        return 1;
    }

    std::printf("%s", plan->report().c_str());
    std::printf("\nSDF certificates:\n  repetition vector:");
    for (uint64_t q : plan->repetition)
        std::printf(" %llu", (unsigned long long)q);
    std::printf("\n  buffer bounds (tokens):");
    for (uint64_t b : plan->buffer_bounds)
        std::printf(" %llu", (unsigned long long)b);
    std::printf("\n");

    // Bring up the planned chip and spot-check that every column
    // runs at its planned rate (a trivial counting program under the
    // plan's ZORM throttling). The batch runs through SimSession —
    // one chip per scheduler backend, executed across the worker
    // pool — so the plan is validated on the fast path and
    // cross-checked against the event queue in one call.
    sim::SimSession session;
    for (auto kind : {SchedulerKind::FastEdge,
                      SchedulerKind::EventQueue}) {
        arch::ChipConfig cfg;
        cfg.dividers = plan->dividers();
        cfg.scheduler = kind;
        unsigned id = session.addChip(cfg);
        arch::Chip &chip = session.chip(id);
        for (unsigned c = 0; c < chip.numColumns(); ++c) {
            chip.column(c).controller().loadProgram(isa::assemble(R"(
                movi r0, 0
                lsetup lc0, e, 1000
                addi r0, 1
            e:
                halt
            )"));
            for (const auto &p : plan->placements) {
                if (c >= p.first_column &&
                    c < p.first_column + p.columns) {
                    chip.column(c).controller().setRateMatch(
                        p.zorm.nops, p.zorm.period);
                }
            }
        }
    }
    auto results = session.runAll(10'000'000);

    arch::Chip &chip = session.chip(0);
    std::printf("\nplanned chip executed (%s): %s at tick %llu\n",
                schedulerName(chip.schedulerKind()),
                results[0].exit == arch::RunExit::AllHalted
                    ? "halted"
                    : "running",
                (unsigned long long)results[0].ticks);
    for (unsigned c = 0; c < chip.numColumns(); ++c) {
        const auto &st = chip.column(c).controller().stats();
        uint64_t real = st.value("issued");
        uint64_t nops = st.value("zormNops");
        std::printf("  column %u (/%u): %llu compute slots, %llu "
                    "ZORM nops (%.1f%% throttle)\n",
                    c, chip.column(c).clock().divider(),
                    (unsigned long long)real,
                    (unsigned long long)nops,
                    100.0 * double(nops) / double(real + nops));
    }

    // The gate compares everything observable: exit reason, final
    // tick, and every statistic of both chips.
    auto statsOf = [](const arch::Chip &c) {
        std::map<std::string, uint64_t> out;
        c.forEachStat([&out](const std::string &n, uint64_t v) {
            out[n] = v;
        });
        return out;
    };
    bool identical =
        results[0].exit == results[1].exit &&
        results[0].ticks == results[1].ticks &&
        statsOf(session.chip(0)) == statsOf(session.chip(1));
    std::printf("\nfast-path vs event-queue cross-check: %s "
                "(both at tick %llu, all stats compared)\n",
                identical ? "identical" : "MISMATCH",
                (unsigned long long)results[1].ticks);
    return identical ? 0 : 1;
}
