/**
 * @file
 * Automated mapping example — the paper's future-work tool chain
 * (Section 7: "a software tool chain to automate and optimize
 * application parallelization and communication scheduling"), now
 * closed end to end:
 *
 * The DDC receiver is described as an SDF graph with measured
 * per-firing cycle costs; the AutoMapper checks the SDF certificates
 * (consistency, deadlock freedom, buffer bounds) and chooses
 * power-optimal tile counts, dividers off the 600 MHz reference,
 * supply voltages and exact ZORM settings; codegen lowers the real
 * kernels and the static transfer schedule onto the planned columns;
 * the chip then streams samples through the mapped receiver and the
 * output is checked bit-exactly against the dsp:: golden chain —
 * cross-checked on all three scheduler backends, with
 * measured-activity power priced next to the plan's analytic
 * estimate.
 *
 * `--backend eventq|fastedge|compiled` picks the run used for the
 * power report; the cross-check always covers all three.
 */

#include <cstdio>

#include "apps/pipeline_runner.hh"
#include "sim/scheduler.hh"

using namespace synchro;
using namespace synchro::apps;

int
main(int argc, char **argv)
{
    const SchedulerKind primary = backendFromArgs(argc, argv);
    DdcPipelineParams params;
    params.samples = 2048;

    // --- the plan and its SDF certificates ----------------------
    auto plan = planDdc(params);
    if (!plan) {
        std::printf("no feasible mapping\n");
        return 1;
    }
    std::printf("%s", plan->report().c_str());
    std::printf("\nSDF certificates:\n  repetition vector:");
    for (uint64_t q : plan->repetition)
        std::printf(" %llu", (unsigned long long)q);
    std::printf("\n  buffer bounds (tokens):");
    for (uint64_t b : plan->buffer_bounds)
        std::printf(" %llu", (unsigned long long)b);
    std::printf("\n");

    // --- run the real mapped receiver on every backend ----------
    MappedDdcRun runs[3];
    const SchedulerKind kinds[3] = {SchedulerKind::FastEdge,
                                    SchedulerKind::EventQueue,
                                    SchedulerKind::Compiled};
    int pidx = 0;
    for (int i = 0; i < 3; ++i) {
        if (kinds[i] == primary)
            pidx = i;
        params.scheduler = kinds[i];
        runs[i] = runMappedDdc(params);
        const MappedDdcRun &r = runs[i];
        std::printf("\n%s: %u samples -> %zu outputs in %llu ticks "
                    "(%.2f MS/s sustained)\n",
                    schedulerName(kinds[i]), params.samples,
                    r.output.size(), (unsigned long long)r.ticks,
                    r.achieved_sample_rate_hz / 1e6);
        std::printf("  vs dsp:: golden chain: %s; %llu bus "
                    "transfers, %llu overruns, %llu conflicts\n",
                    r.bit_exact ? "bit-exact" : "MISMATCH",
                    (unsigned long long)r.bus_transfers,
                    (unsigned long long)r.overruns,
                    (unsigned long long)r.conflicts);
    }

    // --- cross-check: everything observable must be identical ---
    bool identical = true;
    for (int i = 0; i < 3; ++i) {
        identical = identical &&
                    runs[i].result.exit == runs[1].result.exit &&
                    runs[i].ticks == runs[1].ticks &&
                    runs[i].output == runs[1].output &&
                    runs[i].stats == runs[1].stats;
    }
    std::printf("\nbackend cross-check (fastedge/compiled vs "
                "event-queue): %s (all at tick %llu, all stats "
                "compared)\n",
                identical ? "identical" : "MISMATCH",
                (unsigned long long)runs[1].ticks);

    // --- measured power vs the plan's analytic estimate ---------
    std::printf("\npower report from the %s run:\n",
                schedulerName(kinds[pidx]));
    const auto &pw = runs[pidx].power;
    std::printf("\nmeasured power (priced at the sustained rate):\n");
    for (const auto &load : pw.loads) {
        std::printf("  %-10s %.1f MHz @ %.2f V\n", load.name.c_str(),
                    load.f_mhz, load.v);
    }
    std::printf("  multi-V %.2f mW vs single-V %.2f mW -> %.1f%% "
                "saved (plan estimated %.2f / %.2f mW)\n",
                pw.multi_v.total(), pw.single_v.total(),
                pw.savingsPct(), plan->power.total(),
                plan->single_voltage.total());

    bool ok = identical && runs[0].bit_exact && runs[1].bit_exact &&
              runs[2].bit_exact && runs[pidx].overruns == 0 &&
              runs[pidx].conflicts == 0;
    return ok ? 0 : 1;
}
