/**
 * @file
 * Quickstart: the whole Synchroscalar API in one small program.
 *
 *  1. Assemble a SyncBF kernel and run it on the cycle-accurate
 *     simulator (one column, SIMD over 4 tiles).
 *  2. Schedule a bus transfer with the DOU compiler.
 *  3. Map the measured workload onto frequency/voltage domains and
 *     estimate power with the paper's Section 4.1 model.
 *
 * Build & run:  ./examples/quickstart
 */

#include <cstdio>

#include "arch/chip.hh"
#include "isa/assembler.hh"
#include "mapping/comm_schedule.hh"
#include "mapping/rate_match.hh"
#include "power/system_power.hh"
#include "power/vf_model.hh"

using namespace synchro;

int
main()
{
    // --- 1. A SIMD kernel: every tile sums its own slice ---------
    arch::ChipConfig cfg;
    cfg.dividers = {1}; // one column at the reference clock
    cfg.tiles_per_column = 4;
    arch::Chip chip(cfg);

    // Each tile sums 16 words starting at tid*64 and parks the
    // result in r1; tile-private pointers come from `tid`.
    chip.column(0).controller().loadProgram(isa::assemble(R"(
        tid r0
        lsli r0, r0, 6     ; tid * 64 bytes
        movp p0, r0
        movi r1, 0
        lsetup lc0, sum_end, 16
        ld.w r2, [p0]+4
        add r1, r1, r2
    sum_end:
        halt
    )"));

    // Give every tile the same data block; slices differ by tid.
    for (unsigned t = 0; t < 4; ++t) {
        std::vector<int32_t> data(64);
        for (int i = 0; i < 64; ++i)
            data[i] = i;
        chip.column(0).tile(t).writeMemWords(0, data);
    }

    auto result = chip.run();
    std::printf("simulation: %s after %llu reference cycles\n",
                result.exit == arch::RunExit::AllHalted
                    ? "all columns halted"
                    : "tick limit",
                (unsigned long long)result.ticks);
    for (unsigned t = 0; t < 4; ++t) {
        std::printf("  tile %u partial sum = %u\n", t,
                    chip.column(0).tile(t).reg(1));
    }

    // --- 2. Cycle cost & rate matching ---------------------------
    uint64_t cycles =
        chip.column(0).controller().stats().value("issued");
    std::printf("\nkernel cost: %llu issue slots for 16 samples "
                "per tile\n",
                (unsigned long long)cycles);

    // Say the data arrives at 10 MS/s per tile and the kernel needs
    // ~5 cycles/sample: a 100 MHz column over-delivers; ZORM pads
    // the difference exactly.
    auto zorm = mapping::exactRateMatch(100'000'000, 80'000'000);
    std::printf("rate match 80/100 Msps: insert %u nops per %u "
                "slots\n",
                zorm.nops, zorm.period);

    // --- 3. Power estimation (paper Section 4.1) ------------------
    power::SystemPowerModel model;
    power::VfModel vf;
    power::SupplyLevels levels(vf);

    double f_mhz = 100.0;
    double v = levels.voltageFor(f_mhz);
    power::DomainLoad load{"quickstart", 4, f_mhz, v, 10e6};
    auto p = model.loadPower(load);
    std::printf("\npower at %.0f MHz / %.2f V on 4 tiles:\n", f_mhz,
                v);
    std::printf("  tiles %.2f mW + bus %.2f mW + leakage %.2f mW = "
                "%.2f mW\n",
                p.tile_mw, p.bus_mw, p.leak_mw, p.total());
    return 0;
}
