/**
 * @file
 * Measured design-space exploration (mapping/explorer.hh): enumerate
 * plan variants around the AutoMapper's pick for the DDC receiver
 * and the MPEG-4 motion-estimation farm, lower and run every
 * candidate concurrently on one heterogeneous SimSession, and reduce
 * the measurements to a power-vs-throughput Pareto frontier with an
 * agreement verdict for the analytic Optimizer — what the paper's
 * Section 4.1 flow picks from a model, measured cycle-accurately.
 *
 * Exits nonzero if any measured point misses its dsp:: golden, a
 * frontier point diverges across scheduler backends, or the analytic
 * pick falls off the measured frontier.
 */

#include <cstdio>

#include "apps/app_registry.hh"
#include "apps/motion_runner.hh"
#include "apps/pipeline_runner.hh"
#include "mapping/explorer.hh"

using namespace synchro;

int
main()
{
    bool ok = true;

    // A quick sweep: fewer rate factors than the bench, one divider
    // step, both verdicts still enforced.
    mapping::ExploreOptions opt;
    opt.rate_factors = {0.8, 1.2};
    opt.divider_steps = 1;

    const apps::AppRegistry &reg = apps::AppRegistry::instance();

    {
        apps::DdcPipelineParams p;
        p.samples = 512;
        auto res = mapping::explorePlans(
            reg.at("ddc").explorable(p), opt);
        std::printf("%s\n", res.report().c_str());
        ok = ok && res.all_bit_exact && res.agreement;
    }

    {
        auto res = mapping::explorePlans(
            reg.at("motion").explorable(
                apps::MotionPipelineParams{}),
            opt);
        std::printf("%s\n", res.report().c_str());
        ok = ok && res.all_bit_exact && res.agreement;
    }

    std::printf("design space: %s\n",
                ok ? "frontiers bit-exact, optimizer picks agree"
                   : "FAILED");
    return ok ? 0 : 1;
}
