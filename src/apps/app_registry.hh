/**
 * @file
 * The unified per-app capability registry.
 *
 * Every mapped application used to export one free function per
 * capability — explorableX (design-space exploration), verifiableX
 * (static re-verification), fleetX (streaming fleet serving) — four
 * apps x three hooks scattered over four headers, and each new
 * capability meant touching all of them again. AppRegistry collapses
 * that into ONE registration per app: an AppDescriptor owns the
 * app's typed parameter struct (behind std::any, so the registry
 * stays app-agnostic) and exposes every capability as a view —
 * explorable() / verifiable() / fleet() / dvfs() — with the legacy
 * free functions reduced to one-line wrappers over the registry.
 *
 * Capability views take the app's own params struct (DdcPipelineParams,
 * WifiPipelineParams, ...) wrapped in std::any; an empty any means
 * the app's defaults. Callers that only need the common knobs
 * (backend, team size, seed) can build params generically from an
 * AppTuning via AppDescriptor::params() without naming the app's
 * type at all — that's what lets the explorer/fleet tests and
 * benches iterate "for every registered app".
 *
 * Registration is lazy and centralized: AppRegistry::instance()
 * registers all four apps on first use (detail::registerXApp, each
 * defined next to its runner), so there is no static-initialization
 * order to worry about and no registration object for the linker to
 * dead-strip.
 */

#ifndef SYNC_APPS_APP_REGISTRY_HH
#define SYNC_APPS_APP_REGISTRY_HH

#include <any>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/log.hh"
#include "mapping/explorer.hh"
#include "mapping/verifier.hh"
#include "power/dvfs.hh"
#include "sim/fleet.hh"

namespace synchro::apps
{

/**
 * The app-agnostic tuning knobs every runner's params struct shares.
 * AppDescriptor::params() folds these into the app's own defaults so
 * generic callers (tests sweeping backends, fleets sweeping seeds)
 * never need the concrete params type.
 */
struct AppTuning
{
    std::optional<SchedulerKind> scheduler;
    std::optional<unsigned> parallel_team;
    std::optional<uint32_t> seed;
};

/** One registered application: its name plus every capability. */
class AppDescriptor
{
  public:
    std::string name;

    /** The app's params struct with @p tuning folded in. */
    std::function<std::any(const AppTuning &)> make_params;

    std::function<mapping::ExplorableApp(const std::any &)>
        explorable_hook;
    std::function<mapping::LoweredArtifact(const std::any &)>
        verifiable_hook;
    std::function<sim::FleetWorkload(const std::any &)> fleet_hook;
    std::function<power::DvfsAppHooks(const std::any &)> dvfs_hook;

    /// @name Capability views (empty any = the app's defaults)
    /// @{
    mapping::ExplorableApp explorable(const std::any &params = {})
        const;
    mapping::LoweredArtifact verifiable(const std::any &params = {})
        const;
    sim::FleetWorkload fleet(const std::any &params = {}) const;
    power::DvfsAppHooks dvfs(const std::any &params = {}) const;
    /// @}

    /** Typed params (wrapped in any) with @p tuning applied. */
    std::any params(const AppTuning &tuning = {}) const;
};

class AppRegistry
{
  public:
    /** The registry with all four mapped apps registered. */
    static AppRegistry &instance();

    /** Register (or replace) one app. */
    void add(AppDescriptor desc);

    /** The descriptor of @p name; fatal() when unregistered. */
    const AppDescriptor &at(const std::string &name) const;

    /** Registered app names, sorted. */
    std::vector<std::string> names() const;

    const std::map<std::string, AppDescriptor> &
    apps() const
    {
        return apps_;
    }

  private:
    std::map<std::string, AppDescriptor> apps_;
};

/**
 * Adapt a typed hook (taking the app's params struct) to the
 * registry's std::any calling convention: an empty any becomes
 * default-constructed params; a mismatched payload type is fatal.
 */
template <typename Params, typename Result>
std::function<Result(const std::any &)>
appHook(std::string app, Result (*fn)(const Params &))
{
    return [app = std::move(app), fn](const std::any &a) -> Result {
        if (!a.has_value())
            return fn(Params{});
        const Params *p = std::any_cast<Params>(&a);
        if (!p) {
            fatal("AppRegistry: '%s' hook was handed params of the "
                  "wrong type (expected the app's own params struct)",
                  app.c_str());
        }
        return fn(*p);
    };
}

namespace detail
{
/** Per-runner registration entry points (defined in each runner's
 *  .cc, called once by AppRegistry::instance()). */
void registerDdcApp(AppRegistry &reg);
void registerWifiApp(AppRegistry &reg);
void registerStereoApp(AppRegistry &reg);
void registerMotionApp(AppRegistry &reg);
} // namespace detail

} // namespace synchro::apps

#endif // SYNC_APPS_APP_REGISTRY_HH
