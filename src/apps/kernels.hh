/**
 * @file
 * Hand-scheduled SyncBF assembly kernels and their measurement
 * harness — the counterpart of the paper's hand-optimized Blackfin
 * inner loops (Section 4.5: "The applications were compiled down to
 * assembly, and the inner-loops hand-optimized").
 *
 * Every kernel runs on the cycle-accurate simulator with code and
 * data in local tile memories (methodology step 6) and is validated
 * bit-exactly against the corresponding dsp:: golden kernel. The
 * distributed Viterbi ACS kernel exercises the full machinery:
 * 4 tiles, SIMD control, and a DOU-compiled metric-exchange
 * schedule on 4 bus lanes.
 */

#ifndef SYNC_APPS_KERNELS_HH
#define SYNC_APPS_KERNELS_HH

#include <cstdint>
#include <vector>

#include "common/fixed.hh"

namespace synchro::apps::kernels
{

/** Outcome of one kernel run on the simulator. */
struct KernelRun
{
    std::vector<int32_t> words;   //!< result words (kernel-defined)
    std::vector<int16_t> halves;  //!< result halfwords
    uint64_t cycles = 0;          //!< column issue slots to halt
    uint64_t bus_transfers = 0;
    uint64_t comm_stalls = 0;
};

/** Marginal cycles per sample from two run sizes. */
struct KernelCost
{
    double cycles_per_sample = 0;
    double overhead_cycles = 0;
};

KernelCost marginalCost(const KernelRun &small, unsigned n_small,
                        const KernelRun &big, unsigned n_big);

/**
 * FIR filter: y[n] = sat16((sum_k taps[k] x[n-k] + 2^14) >> 15) over
 * @p n samples, zero initial history — bit-exact vs dsp::FirQ15.
 */
KernelRun runFir(const std::vector<int16_t> &taps,
                 const std::vector<int16_t> &x);

/** DDC digital mixer: (x * lo_re, x * lo_im) in rounded Q15. */
KernelRun runMixer(const std::vector<int16_t> &x,
                   const std::vector<CplxQ15> &lo);

/** 5-stage CIC integrator (wrapping int32), one output per input. */
KernelRun runCicIntegrator(const std::vector<int32_t> &x,
                           unsigned stages = 5);

/** 16x16 SAD via the SAA video-ALU op; result word 0 = SAD. */
KernelRun runSad16(const std::vector<uint8_t> &a,
                   const std::vector<uint8_t> &b);

/** 8-point DCT row pass (Q13), @p rows rows of 8 samples. */
KernelRun runDct8Rows(const std::vector<int16_t> &x, unsigned rows);

/**
 * Distributed Viterbi ACS: 64 path metrics block-partitioned over 4
 * tiles in one column; each stage the tiles exchange all metrics
 * over 4 bus lanes under a DOU-compiled schedule, then
 * add-compare-select. Returns the final 64 metrics (words) after
 * running the given per-stage branch metric tables.
 *
 * @param initial      64 initial path metrics
 * @param branch_metrics  [stage][state*2 + tail] costs
 */
KernelRun runAcs4(const std::vector<int32_t> &initial,
                  const std::vector<std::vector<int32_t>>
                      &branch_metrics);

} // namespace synchro::apps::kernels

#endif // SYNC_APPS_KERNELS_HH
