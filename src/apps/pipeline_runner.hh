/**
 * @file
 * End-to-end mapped-pipeline execution of the paper's DDC receiver
 * (Section 3): mixer -> 5-stage CIC integrator (decimate by 8) ->
 * 5-stage CIC comb -> channel FIR -> power demodulator, closing the
 * whole Section 4.1 methodology loop on the simulator:
 *
 *   1. describe the receiver as an SDF graph with kernel cycle costs
 *   2. AutoMapper picks tiles, columns, dividers, voltages, ZORM
 *   3. codegen lowers the kernels + transfer schedule onto the plan
 *   4. the chip streams N samples cycle-accurately
 *   5. outputs are checked bit-exactly against the dsp:: goldens
 *   6. priceSimulation turns measured activity into the multi-V vs
 *      single-V comparison of Table 4
 *
 * The fixed-point contract: samples travel the bus as one 32-bit
 * word per token, I in the low half and Q in the high half, with the
 * CIC's 2^15 gain removed by a rounding right-shift at the decimator
 * (Hogenauer-style width pruning, mirrored exactly in the golden
 * model).
 */

#ifndef SYNC_APPS_PIPELINE_RUNNER_HH
#define SYNC_APPS_PIPELINE_RUNNER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "apps/app_harness.hh"
#include "mapping/explorer.hh"
#include "mapping/verifier.hh"
#include "power/dvfs.hh"
#include "sim/fleet.hh"

namespace synchro::apps
{

struct DdcPipelineParams
{
    /** Input samples to stream (multiple of 8, <= 4088). */
    unsigned samples = 2048;

    /** Input rate the mapping targets (Hz). */
    double sample_rate_hz = 5.5e6;

    /** Channel (PFIR-style) filter length. */
    unsigned chan_taps = 63;

    /** Delivery-grid slack passed to the lowerer. */
    double slack = 1.4;

    /** Synthetic-input RNG seed. */
    uint32_t seed = 2004;

    /** Execution backend. */
    SchedulerKind scheduler = defaultSchedulerKind();

    /**
     * Column team size for the ParallelColumns backend
     * (arch::ChipConfig::parallel_columns): 0 = automatic,
     * 1 = serial, larger = that many team threads. Ignored
     * by the serial backends.
     */
    unsigned parallel_team = 0;
};

/**
 * Everything a finished mapped-DDC run produced; the common slice
 * (plan, ticks, fabric stats, power, ...) comes from the harness.
 */
struct MappedDdcRun : MappedAppRun
{
    std::vector<int16_t> output; //!< demod output read from the chip
    std::vector<int16_t> golden; //!< dsp:: reference chain
    bool bit_exact = false;

    /** Input throughput the run actually sustained. */
    double achieved_sample_rate_hz = 0;
};

/** The synthetic RF input (tone + interferer + noise). */
std::vector<int16_t> ddcInput(const DdcPipelineParams &p);

/** Golden reference: the dsp:: chain the chip must match bit-exactly. */
std::vector<int16_t> ddcGolden(const DdcPipelineParams &p,
                               const std::vector<int16_t> &x);

/**
 * The receiver's SDF graph with measured per-firing cycle costs;
 * optionally also the per-actor bus annotations.
 */
mapping::SdfGraph ddcGraph(
    const DdcPipelineParams &p,
    std::vector<mapping::ActorCommSpec> *comm = nullptr);

/** Map the receiver; nullopt if no feasible allocation exists. */
std::optional<mapping::ChipPlan> planDdc(const DdcPipelineParams &p);

/**
 * The kernel stages ready for mapping::lowerPipeline (exposed for
 * tests that want to lower onto hand-built plans).
 */
std::vector<mapping::PipelineStage> ddcStages(
    const DdcPipelineParams &p, const std::vector<int16_t> &x);

/**
 * The whole loop: plan, lower, load, run, verify, price. fatal() if
 * no feasible mapping exists or the run does not halt.
 */
MappedDdcRun runMappedDdc(const DdcPipelineParams &p);

/*
 * The capability hooks below are legacy wrappers: the receiver
 * registers once with apps::AppRegistry (app_registry.hh) and these
 * forward to AppRegistry::instance().at("ddc")'s views.
 */

/**
 * Package the receiver for mapping::explorePlans — the plan-variant
 * hook: lowers, budgets, and golden-verifies an arbitrary candidate
 * ChipPlan. fatal() if no feasible baseline mapping exists.
 */
mapping::ExplorableApp explorableDdc(const DdcPipelineParams &p);

/**
 * The committed lowering bundled for mapping::verifyLowered — the
 * report hook the verify_plan example and the verifier regression
 * tests use to re-verify exactly what runMappedDdc() runs.
 */
mapping::LoweredArtifact verifiableDdc(const DdcPipelineParams &p);

/**
 * Package the receiver for sim::FleetExecutor — the per-work-item
 * hook set: one cold build (plan + lowering + load), then a
 * restart/refeed per item with input data seeded by
 * sim::fleetItemSeed(p.seed, item). Each item is one p.samples-long
 * channel block; outputs and goldens travel as raw halfword bytes.
 * fatal() if no feasible mapping exists.
 */
sim::FleetWorkload fleetDdc(const DdcPipelineParams &p);

/**
 * Package the receiver for the online DVFS governor (power/dvfs.hh):
 * the verifier-gated artifact, the fleet hooks, the canonical bursty
 * traffic shape, and the item <-> iteration exchange rate.
 */
power::DvfsAppHooks dvfsDdc(const DdcPipelineParams &p);

} // namespace synchro::apps

#endif // SYNC_APPS_PIPELINE_RUNNER_HH
