/**
 * @file
 * End-to-end mapped execution of the paper's MPEG-4 motion
 * estimation core (Section 3, Table 4 "MPEG4-QCIF"): exhaustive
 * block-matching SAD search on the chip, macroblock-sharded across
 * two symmetric search columns with a best-vector join behind them:
 *
 *   me-0 (even macroblocks) --+
 *                             +-> join
 *   me-1 (odd macroblocks)  --+
 *
 * The host preloads each search column's SRAM with the current
 * frame, four byte-shifted mirror copies of the replicate-padded
 * reference frame (one per load alignment, so every candidate row
 * read stays on aligned 4-byte SAA words whatever the candidate's
 * dx), and a per-macroblock candidate table: the (2r+1)^2 search
 * positions as precomputed SRAM addresses, ordered by
 * dsp::fullSearch's tie-break (lower |v|1, then dy, then dx). On the
 * chip each column walks its macroblocks' tables, accumulates each
 * candidate's 16x16 SAD through the SAA video-ALU op, and folds
 * (SAD << 7 | candidate index) through a branch-free `min` — visiting
 * candidates in tie-break order makes the packed key's argmin
 * reproduce dsp::fullSearch exactly, bit for bit. The join
 * interleaves both columns' winning keys back into macroblock order.
 *
 * The decoded motion vectors and SADs are checked bit-exactly
 * against dsp::fullSearch on both scheduler backends, and the
 * measured activity is priced against the paper's Table 4
 * MPEG4-QCIF row (0% saved: the two search columns are symmetric
 * and dominate, so multiple voltage domains buy almost nothing —
 * the paper's observation for this workload).
 */

#ifndef SYNC_APPS_MOTION_RUNNER_HH
#define SYNC_APPS_MOTION_RUNNER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "apps/app_harness.hh"
#include "dsp/image.hh"
#include "dsp/motion.hh"
#include "mapping/explorer.hh"
#include "mapping/verifier.hh"
#include "power/dvfs.hh"
#include "sim/fleet.hh"

namespace synchro::apps
{

/** Fixed geometry of the mapped motion-estimation pipeline. */
constexpr unsigned MotionWidth = 64;
constexpr unsigned MotionHeight = 48;
constexpr unsigned MotionMb = 16;
constexpr int MotionRange = 4;
constexpr unsigned MotionColumns = 2;

/** Macroblocks per frame (one motion vector each). */
constexpr unsigned MotionMbs =
    (MotionWidth / MotionMb) * (MotionHeight / MotionMb);

/** Search candidates per macroblock: (2 range + 1)^2. */
constexpr unsigned MotionCands =
    unsigned(2 * MotionRange + 1) * unsigned(2 * MotionRange + 1);

struct MotionPipelineParams
{
    /**
     * Macroblock rate the mapping targets (Hz). The small 64x48
     * frame stands in for QCIF at 30 f/s; the rate is scaled up so
     * the search columns present the same compute density the
     * Table 4 MPEG4-QCIF row prices.
     */
    double mb_rate_hz = 58000;

    /** Delivery-grid slack passed to the lowerer. */
    double slack = 1.3;

    /** True camera pan of the synthetic scene (and RNG seed). */
    int pan_dx = 3;
    int pan_dy = -2;
    uint32_t seed = 4;

    /**
     * Macroblock-sharded search columns (the kernel generator
     * regenerates the whole DAG for any width): must divide
     * MotionMbs and fit the join's input lanes. The paper's Table 4
     * shape is MotionColumns = 2; the design-space explorer sweeps
     * the others as shard variants.
     */
    unsigned columns = MotionColumns;

    /** Execution backend. */
    SchedulerKind scheduler = defaultSchedulerKind();

    /**
     * Column team size for the ParallelColumns backend
     * (arch::ChipConfig::parallel_columns): 0 = automatic,
     * 1 = serial, larger = that many team threads. Ignored
     * by the serial backends.
     */
    unsigned parallel_team = 0;
};

/**
 * Everything a finished mapped motion-estimation run produced; the
 * common slice (plan, ticks, fabric stats, power, ...) comes from
 * the harness.
 */
struct MappedMotionRun : MappedAppRun
{
    /** Packed (SAD << 7 | candidate index) keys, macroblock order. */
    std::vector<int32_t> output_keys;
    std::vector<int32_t> golden_keys; //!< same, from dsp::fullSearch

    /** The chip's keys decoded back to vectors. */
    std::vector<dsp::MotionVector> vectors;
    bool bit_exact = false;

    /** Macroblocks searched per second, as actually sustained. */
    double achieved_mb_rate_hz = 0;

    /** Fraction of macroblocks that recovered the true pan. */
    double pan_hit_rate = 0;
};

/** The synthetic scene pair: textured frame panned by (dx, dy). */
void motionScene(const MotionPipelineParams &p, dsp::Image &cur,
                 dsp::Image &ref);

/**
 * The search candidates (dx, dy) in the visiting order that makes
 * the packed-key argmin match dsp::fullSearch's tie-break.
 */
std::vector<std::pair<int, int>> motionCandidates();

/**
 * The pipeline's SDF graph with static per-firing cycle costs;
 * optionally also the per-actor bus annotations.
 */
mapping::SdfGraph motionGraph(
    const MotionPipelineParams &p,
    std::vector<mapping::ActorCommSpec> *comm = nullptr);

/** Map the pipeline; nullopt if no feasible allocation exists. */
std::optional<mapping::ChipPlan> planMotion(
    const MotionPipelineParams &p);

/**
 * The DAG spec ready for mapping::lowerDag (exposed for tests that
 * want to lower onto hand-built plans).
 */
mapping::DagSpec motionDag(const MotionPipelineParams &p,
                           const dsp::Image &cur,
                           const dsp::Image &ref);

/**
 * The whole loop: plan, lower, load, run, verify, price. fatal() if
 * no feasible mapping exists or the run does not drain.
 */
MappedMotionRun runMappedMotion(const MotionPipelineParams &p);

/*
 * The capability hooks below are legacy wrappers: the estimator
 * registers once with apps::AppRegistry (app_registry.hh) and these
 * forward to AppRegistry::instance().at("motion")'s views.
 */

/**
 * Package the pipeline for mapping::explorePlans — the plan-variant
 * hook: lowers, budgets, and golden-verifies an arbitrary candidate
 * ChipPlan, and offers the alternative search-farm widths as shard
 * variants. fatal() if no feasible baseline mapping exists.
 */
mapping::ExplorableApp explorableMotion(const MotionPipelineParams &p);

/**
 * The committed lowering bundled for mapping::verifyLowered — the
 * report hook the verify_plan example and the verifier regression
 * tests use to re-verify exactly what runMappedMotion() runs.
 */
mapping::LoweredArtifact
verifiableMotion(const MotionPipelineParams &p);

/**
 * Package the estimator for sim::FleetExecutor — the per-work-item
 * hook set: one cold build, then a restart/refeed per item with a
 * scene seeded by sim::fleetItemSeed(p.seed, item). Each item is one
 * frame pair's macroblock search; outputs and goldens are the packed
 * search-key words as bytes. fatal() if no feasible mapping exists.
 */
sim::FleetWorkload fleetMotion(const MotionPipelineParams &p);

/**
 * Package the estimator for the online DVFS governor (power/dvfs.hh):
 * the verifier-gated artifact, the fleet hooks, the canonical bursty
 * traffic shape, and the item <-> iteration exchange rate.
 */
power::DvfsAppHooks dvfsMotion(const MotionPipelineParams &p);

} // namespace synchro::apps

#endif // SYNC_APPS_MOTION_RUNNER_HH
