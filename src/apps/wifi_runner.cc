#include "apps/wifi_runner.hh"

#include <cstring>
#include <memory>

#include "apps/app_registry.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "dsp/fft.hh"
#include "dsp/interleaver.hh"
#include "dsp/ofdm.hh"
#include "dsp/qam.hh"
#include "dsp/viterbi.hh"

namespace synchro::apps
{

using mapping::DagEdgeSpec;
using mapping::DagSpec;
using mapping::DagStage;

namespace
{

constexpr unsigned CodedPerSymbol = 96; //!< QPSK N_CBPS
constexpr dsp::Modulation Mod = dsp::Modulation::QPSK;

// Tile-SRAM layout per column.
constexpr uint32_t DemapIqBase = 0x0000; //!< 48 x (I,Q) per symbol
constexpr uint32_t DeintScr = 0x0000;    //!< 192 unpacked bit bytes
constexpr uint32_t DeintIdx = 0x0200;    //!< 192 address halfwords
constexpr uint32_t AcsMetA = 0x0000;     //!< 64 path metrics (ping)
constexpr uint32_t AcsMetB = 0x0100;     //!< 64 path metrics (pong)
constexpr uint32_t AcsEtab = 0x0200;     //!< 128 branch-label halves
constexpr uint32_t TbSurvA = 0x0000;     //!< 96 survivor words (A)
constexpr uint32_t TbSurvB = 0x0200;     //!< 96 survivor words (B)
constexpr uint32_t TbOut = 0x1000;       //!< decoded bit bytes

// DAG edge indices == bus lanes (the lowerer's contract).
constexpr unsigned LaneDemapDeint = 0;
constexpr unsigned LaneDeintAcs0 = 1;
constexpr unsigned LaneDeintAcs1 = 2;
constexpr unsigned LaneAcs0Tb = 3;
constexpr unsigned LaneAcs1Tb = 4;

/**
 * Static issue-slot costs per firing (straight-line slots plus loop
 * bodies; zero-overhead loops and the outer firing loop are free,
 * conditional branches pay their one stall). These feed the SDF
 * graph so the AutoMapper's frequency demands match what the
 * simulator will actually execute.
 */
constexpr uint64_t DemapCost = 1 + 48 * 9;
constexpr uint64_t DeintCost = (2 + 96 * 5) + (2 + 48 * 18);
constexpr uint64_t AcsStageCost = 5 + 2 + 2 * (1 + 32 * 21 + 1) + 7 +
                                  (5 + 64 + 3) / 16; //!< init amortized
constexpr uint64_t TbCost = (3 + 96 * 4) + 2 * (3 + 48 * 14 + 1);

/**
 * Demand margin for the latency-critical light columns: demap,
 * deinterleave and traceback run multi-phase firings whose *latency*
 * (consume a whole window, then produce) sits on the pipeline's
 * critical path, so clocking them at exactly their throughput demand
 * would stretch every iteration. The ACS columns are the throughput
 * bottleneck and are planned at their true demand.
 */
constexpr unsigned LightColumnMargin = 3;

std::vector<uint8_t>
halvesToBytes(const std::vector<int16_t> &h)
{
    std::vector<uint8_t> bytes(h.size() * 2);
    std::memcpy(bytes.data(), h.data(), bytes.size());
    return bytes;
}

void
checkParams(const WifiPipelineParams &p)
{
    if (p.symbols < 2 || p.symbols % 2 != 0 || p.symbols > 128)
        fatal("wifi: symbols must be even and within 2..128 (the "
              "decoders' lsetup range and the demap column's SRAM)");
}

/** Frame f's slice [f * n, (f+1) * n) of @p v. */
template <typename T>
std::vector<T>
frameSlice(const std::vector<T> &v, unsigned f, unsigned n)
{
    return std::vector<T>(v.begin() + size_t(f) * n,
                          v.begin() + size_t(f + 1) * n);
}

/**
 * Tick budget for one run: generous — the delivery grid paces one
 * token per lane per slot_spacing ticks, 96 tokens per iteration on
 * the widest lane, plus pipeline fill and drain.
 */
Tick
wifiTickLimit(const WifiPipelineParams &p,
              const mapping::PipelineProgram &prog)
{
    return Tick(p.symbols / 2) * prog.slot_spacing * 96 * 6 +
           2'000'000;
}

/**
 * The decoded payload bits, read back from a finished chip: the
 * traceback column wrote one byte per trellis stage; the first
 * WifiFrameBits of each frame are the payload (the rest are the
 * flushed tail).
 */
std::vector<uint8_t>
readWifiOutput(arch::Chip &chip,
               const mapping::PipelineProgram &prog,
               unsigned symbols)
{
    const auto &tb_col = prog.columnFor("traceback");
    arch::Tile &tb_tile = chip.column(tb_col.column).tile(0);
    std::vector<uint8_t> out;
    out.reserve(size_t(symbols) * WifiFrameBits);
    for (unsigned f = 0; f < symbols; ++f) {
        std::vector<uint8_t> frame(WifiFrameStages);
        tb_tile.readMem(TbOut + f * WifiFrameStages, frame.data(),
                        WifiFrameStages);
        out.insert(out.end(), frame.begin(),
                   frame.begin() + WifiFrameBits);
    }
    return out;
}

} // namespace

std::vector<uint8_t>
wifiPayload(const WifiPipelineParams &p)
{
    checkParams(p);
    Rng rng(p.seed);
    std::vector<uint8_t> bits(size_t(p.symbols) * WifiFrameBits);
    for (auto &b : bits)
        b = uint8_t(rng.below(2));
    return bits;
}

std::vector<CplxQ15>
wifiCarriers(const WifiPipelineParams &p,
             const std::vector<uint8_t> &bits)
{
    checkParams(p);
    sync_assert(bits.size() == size_t(p.symbols) * WifiFrameBits,
                "wifi: payload is %zu bits, want %u x %u",
                bits.size(), p.symbols, WifiFrameBits);
    const unsigned sym_len = dsp::OfdmFftSize + dsp::OfdmCpLen;

    // Each frame is transmitted independently (its tail bits
    // terminate the trellis) and fills exactly one OFDM symbol.
    std::vector<std::complex<double>> stream;
    stream.reserve(size_t(p.symbols) * sym_len);
    for (unsigned f = 0; f < p.symbols; ++f) {
        auto tx = dsp::ofdmTransmit(
            frameSlice(bits, f, WifiFrameBits), dsp::OfdmConfig{Mod});
        sync_assert(tx.size() == sym_len,
                    "wifi: frame %u transmitted as %zu samples", f,
                    tx.size());
        stream.insert(stream.end(), tx.begin(), tx.end());
    }
    if (p.snr_db > 0) {
        Rng noise(p.seed ^ 0xc0ffee);
        dsp::addAwgn(stream, p.snr_db, noise);
    }

    // Receiver front end (not mapped): FFT, data-carrier extraction,
    // Q15 quantization.
    std::vector<CplxQ15> carriers;
    carriers.reserve(size_t(p.symbols) * dsp::OfdmDataCarriers);
    const auto &bins = dsp::dataCarrierBins();
    for (unsigned s = 0; s < p.symbols; ++s) {
        std::vector<dsp::Cplx> freq(
            stream.begin() + size_t(s) * sym_len + dsp::OfdmCpLen,
            stream.begin() + size_t(s + 1) * sym_len);
        dsp::fft(freq);
        for (unsigned i = 0; i < dsp::OfdmDataCarriers; ++i) {
            const auto &v = freq[bins[i]];
            carriers.push_back(
                {toQ15(v.real()), toQ15(v.imag())});
        }
    }
    return carriers;
}

std::vector<uint8_t>
wifiGolden(const WifiPipelineParams &p,
           const std::vector<CplxQ15> &carriers)
{
    checkParams(p);
    std::vector<uint8_t> demapped = dsp::qamDemapHardQ15(carriers, Mod);
    dsp::Interleaver il(Mod);
    std::vector<uint8_t> out;
    out.reserve(size_t(p.symbols) * WifiFrameBits);
    for (unsigned f = 0; f < p.symbols; ++f) {
        auto deinter =
            il.deinterleave(frameSlice(demapped, f, CodedPerSymbol));
        auto bits = dsp::viterbiDecode(deinter, /*tailed=*/true);
        sync_assert(bits.size() == WifiFrameBits,
                    "wifi: frame %u decoded to %zu bits", f,
                    bits.size());
        out.insert(out.end(), bits.begin(), bits.end());
    }
    return out;
}

mapping::SdfGraph
wifiGraph(const WifiPipelineParams &p,
          std::vector<mapping::ActorCommSpec> *comm)
{
    checkParams(p);
    mapping::SdfGraph g;
    unsigned demap =
        g.addActor("demap", DemapCost * LightColumnMargin);
    unsigned deint =
        g.addActor("deinterleave", DeintCost * LightColumnMargin);
    unsigned acs0 = g.addActor("viterbi-acs-0", AcsStageCost);
    unsigned acs1 = g.addActor("viterbi-acs-1", AcsStageCost);
    unsigned tb = g.addActor("traceback", TbCost * LightColumnMargin);
    // One iteration = 2 frames: q = (2, 1, 48, 48, 1).
    g.addEdge(demap, deint, 48, CodedPerSymbol);
    g.addEdge(deint, acs0, WifiFrameStages, 1);
    g.addEdge(deint, acs1, WifiFrameStages, 1);
    g.addEdge(acs0, tb, 2, 2 * WifiFrameStages);
    g.addEdge(acs1, tb, 2, 2 * WifiFrameStages);

    if (comm) {
        comm->assign(g.numActors(), {});
        (*comm)[demap].words_per_firing = 48;
        (*comm)[deint].words_per_firing = 2 * WifiFrameStages;
        (*comm)[acs0].words_per_firing = 2;
        (*comm)[acs1].words_per_firing = 2;
        // The kernels keep streaming state (trellis metrics, the
        // traceback window), so none of them parallelize further.
        for (auto &spec : *comm)
            spec.max_parallel = 1;
    }
    return g;
}

std::optional<mapping::ChipPlan>
planWifi(const WifiPipelineParams &p)
{
    std::vector<mapping::ActorCommSpec> comm;
    mapping::SdfGraph g = wifiGraph(p, &comm);
    return planApp(g, comm, p.bit_rate_hz / (2 * WifiFrameBits));
}

namespace
{

DagStage
demapStage(const WifiPipelineParams &p,
           const std::vector<CplxQ15> &carriers)
{
    DagStage s;
    s.actor = "demap";
    s.firings = p.symbols;
    s.per_iteration = 2;
    s.prologue = strprintf("        movpi p0, %u\n", DemapIqBase);
    // Gray QPSK hard decision: bit = (component > 0), computed as
    // the sign bit of the negated Q15 sample; one packed word
    // (b0 | b1 << 1) per carrier onto the demap->deint lane.
    s.body = strprintf(R"(
        lsetup lc1, __dm_end, 48
        ld.h r0, [p0]+2
        ld.h r1, [p0]+2
        neg r2, r0
        lsri r2, r2, 31
        neg r3, r1
        lsri r3, r3, 31
        lsli r3, r3, 1
        or r2, r2, r3
        cwr r2, %u
    __dm_end:
)",
                       LaneDemapDeint);
    std::vector<int16_t> iq;
    iq.reserve(carriers.size() * 2);
    for (const auto &c : carriers) {
        iq.push_back(c.re);
        iq.push_back(c.im);
    }
    s.images.push_back({DemapIqBase, halvesToBytes(iq)});
    return s;
}

DagStage
deintStage(const WifiPipelineParams &p)
{
    DagStage s;
    s.actor = "deinterleave";
    s.firings = p.symbols / 2;
    s.per_iteration = 1;
    s.prologue = "        movi r5, 1\n";
    // Unpack two symbols' carrier words into per-bit scratch bytes,
    // then emit decode-order pair words through the precomputed
    // inverse-permutation address table — symbol A to decoder 0's
    // lane and symbol B to decoder 1's, *interleaved pair by pair*
    // (the fork), so both decoder columns stream in parallel instead
    // of serializing behind this column's write buffer.
    auto pair_emit = [](unsigned lane) {
        return strprintf(R"(
        ld.h r1, [p1]+2
        movp p2, r1
        ld.bu r0, [p2]
        ld.h r1, [p1]+2
        movp p2, r1
        ld.bu r2, [p2]
        lsli r2, r2, 1
        or r0, r0, r2
        cwr r0, %u
)",
                         lane);
    };
    s.body = strprintf(R"(
        movpi p0, %u
        lsetup lc1, __un_end, %u
        crd r0, %u
        and r1, r0, r5
        st.b r1, [p0]+1
        lsri r1, r0, 1
        st.b r1, [p0]+1
    __un_end:
        movpi p1, %u
        lsetup lc1, __pp_end, %u
%s%s    __pp_end:
)",
                       DeintScr, CodedPerSymbol, LaneDemapDeint,
                       DeintIdx, WifiFrameStages,
                       pair_emit(LaneDeintAcs0).c_str(),
                       pair_emit(LaneDeintAcs1).c_str());

    // Address table, in emission order: decode-order bit j of symbol
    // A lives at scratch[perm[j]] (Interleaver::deinterleave reads
    // in[perm[k]]), symbol B at +96; pairs of A and B alternate.
    dsp::Interleaver il(Mod);
    const auto &perm = il.permutation();
    std::vector<int16_t> idx;
    idx.reserve(2 * CodedPerSymbol);
    for (unsigned i = 0; i < WifiFrameStages; ++i) {
        for (unsigned half = 0; half < 2; ++half) {
            unsigned base = DeintScr + half * CodedPerSymbol;
            idx.push_back(int16_t(base + perm[2 * i]));
            idx.push_back(int16_t(base + perm[2 * i + 1]));
        }
    }
    s.images.push_back({DeintIdx, halvesToBytes(idx)});
    return s;
}

DagStage
acsStage(const WifiPipelineParams &p, unsigned which)
{
    DagStage s;
    s.actor = strprintf("viterbi-acs-%u", which);
    s.firings = uint64_t(WifiFrameStages) * (p.symbols / 2);
    s.per_iteration = WifiFrameStages;
    s.prologue = strprintf(R"(
        movpi p0, %u
        movpi p2, %u
        movpi p1, %u
        movi r5, 1
        movi r4, 0
        movi r7, 0
)",
                           AcsMetA, AcsMetB, AcsEtab);

    // One 32-state half of the trellis: predecessors of state s are
    // the consecutive old metrics 2*(s&31) and +1; branch metrics
    // come from the XOR of the preloaded expected code pair with the
    // received pair; the survivor bit (m1 < m0, matching the
    // golden's strict-less tie-break) is packed LSB-first into r7.
    const char *half_loop = R"(
        lsetup lc1, %s, 32
        ld.w r0, [p0]+4
        ld.w r1, [p0]+4
        ld.h r2, [p1]+2
        xor r2, r2, r3
        lsri r6, r2, 1
        and r2, r2, r5
        add r2, r2, r6
        add r0, r0, r2
        ld.h r2, [p1]+2
        xor r2, r2, r3
        lsri r6, r2, 1
        and r2, r2, r5
        add r2, r2, r6
        add r1, r1, r2
        sub r2, r1, r0
        lsri r2, r2, 31
        lsri r7, r7, 1
        lsli r2, r2, 31
        or r7, r7, r2
        min r0, r0, r1
        st.w r0, [p2]+4
    %s:
)";
    std::string body = strprintf(R"(
        crd r3, %u
        cmplt r4, r5
        jncc __acs_go
        movi r4, %u
        movi r0, 0
        movih r0, 16
        lsetup lc1, __acs_init, 64
        st.w r0, [p0]+4
    __acs_init:
        paddi p0, -256
        movi r0, 0
        st.w r0, [p0]
    __acs_go:
        addi r4, -1
)",
                                 which == 0 ? LaneDeintAcs0
                                            : LaneDeintAcs1,
                                 WifiFrameStages);
    body += strprintf(half_loop, "__acs_h0", "__acs_h0");
    body += strprintf("        cwr r7, %u\n        paddi p0, -256\n",
                      which == 0 ? LaneAcs0Tb : LaneAcs1Tb);
    body += strprintf(half_loop, "__acs_h1", "__acs_h1");
    body += strprintf(R"(        cwr r7, %u
        paddi p0, -256
        paddi p1, -256
        paddi p2, -256
        movrp r0, p0
        movrp r1, p2
        movp p0, r1
        movp p2, r0
)",
                      which == 0 ? LaneAcs0Tb : LaneAcs1Tb);
    s.body = std::move(body);

    // Branch-label table: expected code pair of the transition into
    // state s from predecessor 2*(s&31)+tail consuming bit s>>5.
    std::vector<int16_t> etab;
    etab.reserve(2 * dsp::ConvStates);
    for (unsigned st = 0; st < dsp::ConvStates; ++st) {
        unsigned b = st >> 5;
        for (unsigned tail = 0; tail < 2; ++tail) {
            unsigned pred = ((st & 31) << 1) | tail;
            etab.push_back(int16_t(dsp::convCodePair(pred, b)));
        }
    }
    s.images.push_back({AcsEtab, halvesToBytes(etab)});
    return s;
}

DagStage
tracebackStage(const WifiPipelineParams &p)
{
    DagStage s;
    s.actor = "traceback";
    s.firings = p.symbols / 2;
    s.per_iteration = 1;
    s.prologue = strprintf(R"(
        movi r5, 1
        movi r6, 31
        movpi p2, %u
)",
                           TbOut + WifiFrameStages - 1);
    // The join: buffer both decoders' survivor streams word by word,
    // alternating between the two input lanes (each crd waits on its
    // own lane's buffer) so neither producer column ever backs up
    // behind the other; then walk each frame's trellis backwards
    // from state 0 — tailed frames terminate there — emitting the
    // consumed bit of every stage.
    auto walk = [](uint32_t surv, const char *lbl) {
        return strprintf(R"(
        movi r0, 0
        movi r4, %u
        lsetup lc1, %s, %u
        lsri r1, r0, 5
        lsli r1, r1, 2
        add r1, r1, r4
        movp p3, r1
        ld.w r1, [p3]
        and r2, r0, r6
        lsr r1, r1, r2
        and r1, r1, r5
        lsri r2, r0, 5
        st.b r2, [p2]--
        and r0, r0, r6
        lsli r0, r0, 1
        or r0, r0, r1
        addi r4, -8
    %s:
        paddi p2, %u
)",
                         surv + 8 * (WifiFrameStages - 1), lbl,
                         WifiFrameStages, lbl,
                         2 * WifiFrameStages);
    };
    s.body = strprintf(R"(
        movpi p0, %u
        movpi p1, %u
        lsetup lc1, __rd_end, %u
        crd r0, %u
        st.w r0, [p0]+4
        crd r0, %u
        st.w r0, [p1]+4
    __rd_end:
)",
                       TbSurvA, TbSurvB, 2 * WifiFrameStages,
                       LaneAcs0Tb, LaneAcs1Tb) +
             walk(TbSurvA, "__tba") + walk(TbSurvB, "__tbb");
    return s;
}

} // namespace

DagSpec
wifiDag(const WifiPipelineParams &p,
        const std::vector<CplxQ15> &carriers)
{
    checkParams(p);
    sync_assert(carriers.size() ==
                    size_t(p.symbols) * dsp::OfdmDataCarriers,
                "wifi: %zu carriers for %u symbols", carriers.size(),
                p.symbols);
    DagSpec spec;
    spec.stages = {demapStage(p, carriers), deintStage(p),
                   acsStage(p, 0), acsStage(p, 1),
                   tracebackStage(p)};
    // Edge order defines the bus lanes the kernels above tag. The
    // 96-word edges get two delivery slots per grid period: deint's
    // unpack phase and the survivor streams then overlap the rest of
    // the pipeline instead of stretching its critical path.
    spec.edges = {
        {"demap", "deinterleave", 48, CodedPerSymbol, 4},
        {"deinterleave", "viterbi-acs-0", WifiFrameStages, 1, 2},
        {"deinterleave", "viterbi-acs-1", WifiFrameStages, 1, 2},
        {"viterbi-acs-0", "traceback", 2, 2 * WifiFrameStages, 2},
        {"viterbi-acs-1", "traceback", 2, 2 * WifiFrameStages, 2},
    };
    return spec;
}

MappedWifiRun
runMappedWifi(const WifiPipelineParams &p)
{
    checkParams(p);
    MappedWifiRun run;
    run.tx_bits = wifiPayload(p);
    auto carriers = wifiCarriers(p, run.tx_bits);
    run.golden = wifiGolden(p, carriers);
    run.golden_matches_tx = run.golden == run.tx_bits;

    // Cross-check the integer demap against the floating-point
    // dsp:: demap of the unquantized symbols (they agree whenever
    // quantization does not move a component across zero — always,
    // on a clean channel).
    {
        std::vector<std::complex<double>> sym;
        sym.reserve(carriers.size());
        for (const auto &c : carriers)
            sym.emplace_back(fromQ15(c.re), fromQ15(c.im));
        run.demap_matches_float =
            dsp::qamDemap(sym, Mod) ==
            dsp::qamDemapHardQ15(carriers, Mod);
    }

    auto plan = planWifi(p);
    if (!plan)
        fatal("wifi: no feasible mapping at %.1f kbit/s",
              p.bit_rate_hz / 1e3);

    auto prog =
        mapping::lowerDag(wifiDag(p, carriers), *plan,
                          p.bit_rate_hz / (2 * WifiFrameBits),
                          p.slack);

    MappedAppParams hp;
    hp.app = "wifi";
    hp.scheduler = p.scheduler;
    hp.parallel_team = p.parallel_team;
    hp.tick_limit = wifiTickLimit(p, prog);
    hp.priced_items = uint64_t(p.symbols) * WifiFrameBits;
    MappedApp app(hp, *plan, prog);
    static_cast<MappedAppRun &>(run) = app.run();
    run.achieved_bit_rate_hz = run.achieved_items_per_sec;

    run.output = readWifiOutput(app.chip(), prog, p.symbols);
    run.bit_exact = run.output == run.golden;
    if (!run.bit_exact)
        warn("%s",
             describeMismatch("wifi decoded bits", run.output,
                              run.golden)
                 .c_str());
    return run;
}

static mapping::ExplorableApp
explorableWifiImpl(const WifiPipelineParams &p)
{
    checkParams(p);
    auto bits =
        std::make_shared<std::vector<uint8_t>>(wifiPayload(p));
    auto carriers = std::make_shared<std::vector<CplxQ15>>(
        wifiCarriers(p, *bits));
    auto golden = std::make_shared<std::vector<uint8_t>>(
        wifiGolden(p, *carriers));
    auto plan = planWifi(p);
    if (!plan)
        fatal("wifi: no feasible mapping at %.1f kbit/s",
              p.bit_rate_hz / 1e3);

    mapping::ExplorableApp app;
    app.name = "wifi";
    app.iterations_per_sec = p.bit_rate_hz / (2 * WifiFrameBits);
    app.priced_items = uint64_t(p.symbols) * WifiFrameBits;
    app.baseline = *plan;
    app.lower = [p, carriers](const mapping::ChipPlan &candidate,
                              double rate) {
        return mapping::lowerDag(wifiDag(p, *carriers), candidate,
                                 rate, p.slack);
    };
    app.tick_limit = [p](const mapping::ChipPlan &,
                         const mapping::PipelineProgram &prog) {
        return wifiTickLimit(p, prog);
    };
    app.verify = [p, golden](arch::Chip &chip,
                             const mapping::PipelineProgram &prog) {
        return describeMismatch("wifi decoded bits",
                                readWifiOutput(chip, prog, p.symbols),
                                *golden);
    };
    return app;
}

static mapping::LoweredArtifact
verifiableWifiImpl(const WifiPipelineParams &p)
{
    checkParams(p);
    std::vector<uint8_t> bits = wifiPayload(p);
    std::vector<CplxQ15> carriers = wifiCarriers(p, bits);
    auto plan = planWifi(p);
    if (!plan)
        fatal("wifi: no feasible mapping at %.1f kbit/s",
              p.bit_rate_hz / 1e3);

    mapping::LoweredArtifact art;
    art.name = "wifi";
    art.spec = wifiDag(p, carriers);
    art.plan = *plan;
    art.iterations_per_sec = p.bit_rate_hz / (2 * WifiFrameBits);
    art.slack = p.slack;
    art.prog = mapping::lowerDag(art.spec, art.plan,
                                 art.iterations_per_sec, art.slack);
    return art;
}

static sim::FleetWorkload
fleetWifiImpl(const WifiPipelineParams &p)
{
    checkParams(p);
    auto base_plan = planWifi(p);
    if (!base_plan)
        fatal("wifi: no feasible mapping at %.1f kbit/s",
              p.bit_rate_hz / 1e3);
    auto plan =
        std::make_shared<mapping::ChipPlan>(std::move(*base_plan));

    // The canonical program for the warm-path hooks: the lowering
    // depends only on the app parameters (its images are replaced
    // per item), so one program serves every stream and item.
    const double rate = p.bit_rate_hz / (2 * WifiFrameBits);
    auto prog = std::make_shared<mapping::PipelineProgram>(
        mapping::lowerDag(wifiDag(p, wifiCarriers(p, wifiPayload(p))),
                          *plan, rate, p.slack));

    sim::FleetWorkload wl;
    wl.name = "wifi";
    wl.tick_limit = wifiTickLimit(p, *prog);
    wl.build = [p, plan, rate](SchedulerKind kind) {
        auto built = mapping::lowerDag(
            wifiDag(p, wifiCarriers(p, wifiPayload(p))), *plan, rate,
            p.slack);
        return buildFleetChip(*plan, built, kind);
    };
    wl.feed = [p, prog](arch::Chip &chip, uint64_t item) {
        WifiPipelineParams q = p;
        q.seed = sim::fleetItemSeed(p.seed, item);
        refeedImages(chip, *prog,
                     wifiDag(q, wifiCarriers(q, wifiPayload(q))));
    };
    wl.read_output = [p, prog](arch::Chip &chip) {
        return readWifiOutput(chip, *prog, p.symbols);
    };
    wl.golden = [p](uint64_t item) {
        WifiPipelineParams q = p;
        q.seed = sim::fleetItemSeed(p.seed, item);
        return wifiGolden(q, wifiCarriers(q, wifiPayload(q)));
    };
    return wl;
}

static power::DvfsAppHooks
dvfsWifiImpl(const WifiPipelineParams &p)
{
    power::DvfsAppHooks h;
    h.name = "wifi";
    h.artifact = verifiableWifiImpl(p);
    h.workload = fleetWifiImpl(p);
    h.traffic = sim::TrafficSpec::bursty(p.seed);
    // One SDF iteration decodes two frames; one item is p.symbols
    // frames.
    h.iterations_per_item = p.symbols / 2;
    return h;
}

void
detail::registerWifiApp(AppRegistry &reg)
{
    AppDescriptor desc;
    desc.name = "wifi";
    desc.make_params = [](const AppTuning &t) {
        WifiPipelineParams p;
        if (t.scheduler)
            p.scheduler = *t.scheduler;
        if (t.parallel_team)
            p.parallel_team = *t.parallel_team;
        if (t.seed)
            p.seed = *t.seed;
        return std::any(p);
    };
    desc.explorable_hook = appHook("wifi", &explorableWifiImpl);
    desc.verifiable_hook = appHook("wifi", &verifiableWifiImpl);
    desc.fleet_hook = appHook("wifi", &fleetWifiImpl);
    desc.dvfs_hook = appHook("wifi", &dvfsWifiImpl);
    reg.add(std::move(desc));
}

// Legacy free functions, reduced to registry wrappers.
mapping::ExplorableApp
explorableWifi(const WifiPipelineParams &p)
{
    return AppRegistry::instance().at("wifi").explorable(p);
}

mapping::LoweredArtifact
verifiableWifi(const WifiPipelineParams &p)
{
    return AppRegistry::instance().at("wifi").verifiable(p);
}

sim::FleetWorkload
fleetWifi(const WifiPipelineParams &p)
{
    return AppRegistry::instance().at("wifi").fleet(p);
}

power::DvfsAppHooks
dvfsWifi(const WifiPipelineParams &p)
{
    return AppRegistry::instance().at("wifi").dvfs(p);
}

} // namespace synchro::apps
