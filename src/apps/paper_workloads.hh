/**
 * @file
 * The paper's application workloads (Table 4) as data.
 *
 * Each row carries the published mapping (tiles, frequency, voltage)
 * and power numbers. Bus-transfer rates are *calibrated*: the paper
 * never reports its per-algorithm bus traffic, so we invert the
 * Section 4.1 power model against each row's published power
 * (transfers = (P_paper - P_tile - P_leak) / E_transfer), which
 * reconstructs rates that are physically sensible (e.g. the DDC
 * mixer lands at ~64e6 transfers/s — one bus word per input sample).
 * DESIGN.md documents this substitution; EXPERIMENTS.md records the
 * rows where the paper's own arithmetic is internally inconsistent.
 */

#ifndef SYNC_APPS_PAPER_WORKLOADS_HH
#define SYNC_APPS_PAPER_WORKLOADS_HH

#include <string>
#include <vector>

#include "mapping/workload.hh"
#include "power/system_power.hh"

namespace synchro::apps
{

/** One Table 4 row. */
struct PaperAlgoRow
{
    std::string app;
    std::string algo;
    unsigned tiles;
    double f_mhz;
    double v;
    double paper_power_mw;
    double paper_single_v_mw;
    int paper_savings_pct;
    mapping::CommScaling scaling;
    unsigned max_parallel; //!< 1 for serial kernels (SVD, traceback)
};

/** Every row of Table 4, in paper order. */
const std::vector<PaperAlgoRow> &paperTable4();

/** Application names in Table 4 order. */
const std::vector<std::string> &paperAppNames();

/** The paper's published per-application totals (multi-V, single-V). */
struct PaperAppTotal
{
    std::string app;
    unsigned tiles;
    double total_mw;
    double single_v_mw;
    int savings_pct;
};
const std::vector<PaperAppTotal> &paperAppTotals();

/** Headline data rate of an application (samples, frames or bits). */
double appSampleRate(const std::string &app);

/**
 * Calibrated bus-transfer rate for a row under the given power
 * model: transfers = max(0, residual) / transfer energy.
 */
double calibrateTransfers(const PaperAlgoRow &row,
                          const power::SystemPowerModel &model);

/**
 * Build the AppWorkload (mapping-layer descriptor) for one
 * application, with calibrated communication rates.
 */
mapping::AppWorkload appWorkload(const std::string &app,
                                 const power::SystemPowerModel &model);

/** The Figure 7 parallelization sweep points per application. */
const std::vector<std::pair<std::string, std::vector<unsigned>>> &
fig7TileSweeps();

/** The Figure 9/10 leakage sweep values (mA per tile). */
const std::vector<double> &leakageSweepMa();

} // namespace synchro::apps

#endif // SYNC_APPS_PAPER_WORKLOADS_HH
