#include "apps/paper_workloads.hh"

#include <algorithm>

#include "common/log.hh"

namespace synchro::apps
{

using mapping::CommScaling;

const std::vector<PaperAlgoRow> &
paperTable4()
{
    static const std::vector<PaperAlgoRow> rows = {
        // app, algo, tiles, MHz, V, P_mw, P_single_mw, savings%
        {"DDC", "Digital Mixer", 8, 120, 0.8, 76.29, 191.83, 60,
         CommScaling::Constant, 64},
        {"DDC", "CIC Integrator", 8, 200, 1.0, 241.54, 403.58, 40,
         CommScaling::Linear, 64},
        {"DDC", "CIC Comb", 2, 40, 0.7, 18.86, 18.86, 66,
         CommScaling::Linear, 64},
        {"DDC", "CFIR", 16, 380, 1.3, 1071.22, 1071.22, 0,
         CommScaling::Constant, 64},
        {"DDC", "PFIR", 16, 370, 1.3, 1031.75, 1031.75, 0,
         CommScaling::Constant, 64},

        {"SV", "SVD", 1, 500, 1.5, 114.27, 114.27, 0,
         CommScaling::Constant, 1},
        {"SV", "PFE", 16, 310, 1.2, 742.68, 1151.55, 36,
         CommScaling::Linear, 64},

        {"802.11a", "FFT", 2, 90, 0.8, 16.74, 79.60, 79,
         CommScaling::Linear, 64},
        {"802.11a", "De-mod/De-Interleave", 1, 60, 0.7, 4.71, 28.45,
         83, CommScaling::Constant, 4},
        {"802.11a", "Viterbi ACS", 16, 540, 1.7, 3848.01, 3848.01, 0,
         CommScaling::Trellis, 32},
        {"802.11a", "Viterbi Traceback", 1, 330, 1.2, 61.07, 83.22,
         27, CommScaling::Constant, 1},

        {"802.11a+AES", "FFT", 2, 90, 0.8, 14.80, 49.36, 75,
         CommScaling::Linear, 64},
        {"802.11a+AES", "De-mod/De-Interleave", 1, 60, 0.7, 4.71,
         28.45, 83, CommScaling::Constant, 4},
        {"802.11a+AES", "Viterbi ACS", 16, 540, 1.7, 3848.01,
         3848.01, 0, CommScaling::Trellis, 32},
        {"802.11a+AES", "Viterbi Traceback", 1, 330, 1.2, 61.07,
         83.22, 27, CommScaling::Constant, 1},
        {"802.11a+AES", "AES", 16, 110, 0.8, 159.50, 556.56, 71,
         CommScaling::Linear, 64},

        {"MPEG4-QCIF", "Motion Estimation", 8, 70, 0.7, 42.53, 42.53,
         0, CommScaling::Linear, 64},
        {"MPEG4-QCIF", "DCT/Quant/IQ/IDCT", 2, 60, 0.7, 4.71, 4.71,
         0, CommScaling::Linear, 64},

        {"MPEG4-CIF", "Motion Estimation", 8, 280, 1.1, 351.21,
         351.21, 0, CommScaling::Linear, 64},
        {"MPEG4-CIF", "DCT/Quant/IQ/IDCT", 8, 60, 0.7, 18.82, 46.48,
         60, CommScaling::Linear, 64},
    };
    return rows;
}

const std::vector<std::string> &
paperAppNames()
{
    static const std::vector<std::string> names = {
        "DDC", "SV", "802.11a", "802.11a+AES", "MPEG4-QCIF",
        "MPEG4-CIF",
    };
    return names;
}

const std::vector<PaperAppTotal> &
paperAppTotals()
{
    static const std::vector<PaperAppTotal> totals = {
        {"DDC", 50, 2427.23, 2717.24, 11},
        {"SV", 17, 857.40, 1266.28, 32},
        {"802.11a", 20, 3930.53, 4039.28, 3},
        {"802.11a+AES", 36, 2443.68, 2866.14, 11},
        {"MPEG4-QCIF", 10, 47.24, 47.24, 0},
        {"MPEG4-CIF", 16, 370.03, 397.68, 7},
    };
    return totals;
}

double
appSampleRate(const std::string &app)
{
    if (app == "DDC")
        return 64e6; // 64 MS/s GSM requirement
    if (app == "SV")
        return 10.0; // frames/s, 256x256 stereo
    if (app == "802.11a" || app == "802.11a+AES")
        return 54e6; // bits/s
    if (app == "MPEG4-QCIF" || app == "MPEG4-CIF")
        return 30.0; // frames/s
    fatal("unknown application '%s'", app.c_str());
}

double
calibrateTransfers(const PaperAlgoRow &row,
                   const power::SystemPowerModel &model)
{
    power::DomainLoad no_bus{row.algo, row.tiles, row.f_mhz, row.v,
                             0.0};
    double base = model.loadPower(no_bus).total();
    double residual = row.paper_power_mw - base;
    if (residual <= 0)
        return 0.0; // paper row below the tile+leak floor; see
                    // EXPERIMENTS.md for the affected rows
    double e = model.busModel().transferEnergyJ(32, row.v);
    return residual * 1e-3 / e;
}

mapping::AppWorkload
appWorkload(const std::string &app,
            const power::SystemPowerModel &model)
{
    mapping::AppWorkload w;
    w.name = app;
    w.sample_rate_hz = appSampleRate(app);
    for (const auto &row : paperTable4()) {
        if (row.app != app)
            continue;
        mapping::AlgoLoad a;
        a.name = row.algo;
        a.demand_mcycles_s = double(row.tiles) * row.f_mhz;
        a.ref_transfers_s = calibrateTransfers(row, model);
        a.ref_tiles = row.tiles;
        a.min_tiles = 1;
        a.max_tiles = row.max_parallel;
        a.scaling = row.scaling;
        if (row.scaling == CommScaling::Trellis)
            a.divisor_of = 64; // block-partitioned trellis states
        w.algos.push_back(a);
    }
    if (w.algos.empty())
        fatal("unknown application '%s'", app.c_str());
    return w;
}

const std::vector<std::pair<std::string, std::vector<unsigned>>> &
fig7TileSweeps()
{
    // The exact tile counts on Figure 7's x-axis.
    static const std::vector<
        std::pair<std::string, std::vector<unsigned>>>
        sweeps = {
            {"DDC", {14, 26, 50}},
            {"SV", {5, 9, 17}},
            {"802.11a", {12, 20, 36}},
            {"MPEG4-CIF", {8, 12, 20, 36}},
        };
    return sweeps;
}

const std::vector<double> &
leakageSweepMa()
{
    // Figure 9/10 x-axis: 1.5 mA (the Section 4.4 calibration) up to
    // 59.3 mA (every transistor low-Vt per Intel's 130 nm numbers).
    static const std::vector<double> sweep = {
        1.5, 7.4, 14.8, 22.2, 29.6, 37.0, 44.4, 51.8, 59.3,
    };
    return sweep;
}

} // namespace synchro::apps
