#include "apps/platforms.hh"

#include "common/log.hh"

namespace synchro::apps
{

const std::vector<PlatformRow> &
paperTable3Platforms()
{
    // Values transcribed from Table 3; rates converted to the
    // application's headline unit (DDC: samples/s, 802.11a: bits/s,
    // SV/MPEG4: frames/s).
    static const std::vector<PlatformRow> rows = {
        {"DDC", "Intel Xeon 2.8 GHz", PlatformKind::Programmable,
         0.13, 146, 71000, 1.45, 19.0e6, "1/3 required rate"},
        {"DDC", "Blackfin 600 MHz", PlatformKind::Programmable, 0.13,
         2.5, 280, 1.2, 112.6e3, "1/500 required rate"},
        {"DDC", "Graychip GC4014", PlatformKind::Asic, 0, 0, 250,
         3.3, 64e6, "ASIC, full rate"},

        {"SV", "Intel Xeon 2.8 GHz", PlatformKind::Programmable,
         0.13, 146, 71000, 1.45, 4.96, "1/3 required rate"},
        {"SV", "Blackfin 600 MHz", PlatformKind::Programmable, 0.13,
         2.5, 280, 1.2, 1.46, "1/7 required rate"},
        {"SV", "FPGA (Benedetti)", PlatformKind::Asic, 0, 0, 20000,
         0, 30, "320x240, not stereo, no SVD"},

        {"802.11a", "Atheros", PlatformKind::Asic, 0.25, 34.68, 203,
         2.5, 54e6, "ASIC"},
        {"802.11a", "Icefyre", PlatformKind::Asic, 0.18, 0, 720, 0,
         54e6, "ASIC chipset incl. ADC"},
        {"802.11a", "IMEC", PlatformKind::Asic, 0.18, 20.8, 146, 1.8,
         54e6, "ASIC, area incl. ADC/DAC"},
        {"802.11a", "NEC", PlatformKind::Asic, 0.18, 119, 474, 1.5,
         54e6, "ASIC, MAC+PHY, core power"},
        {"802.11a", "D. Su", PlatformKind::Asic, 0.25, 22, 121.5,
         2.7, 54e6, "PHY layer only"},
        {"802.11a", "Blackfin 600 MHz", PlatformKind::Programmable,
         0.13, 2.5, 280, 1.2, 556e3, "1/100 required rate"},

        {"MPEG4-QCIF", "Amphion CS6701", PlatformKind::Asic, 0.18, 0,
         15, 0, 15, "application-specific core"},
        {"MPEG4-QCIF", "Philips", PlatformKind::Asic, 0.18, 20, 30,
         1.8, 15, "ASIP"},
        {"MPEG4-QCIF", "Blackfin 600 MHz",
         PlatformKind::Programmable, 0.13, 2.5, 280, 1.2, 15,
         "QCIF @ 15 f/s"},

        {"MPEG4-CIF", "Toshiba", PlatformKind::Asic, 0.13, 43, 160,
         1.5, 15, "SOC, CIF @ 15 f/s"},
    };
    return rows;
}

double
energyPerUnitNj(const PlatformRow &row)
{
    if (row.rate <= 0)
        fatal("platform '%s' has no rate", row.platform.c_str());
    return row.power_mw * 1e-3 / row.rate * 1e9;
}

} // namespace synchro::apps
