/**
 * @file
 * End-to-end mapped execution of the paper's stereo vision workload
 * (Section 3, Table 4 "SV"): dense block-matching disparity on the
 * chip, mirroring the shape of the paper's mapping — one serial
 * front-end column feeding a farm of parallel correlation columns,
 * with a light reduction behind them:
 *
 *               +-> sad-0 --+
 *               +-> sad-1 --+
 *   prefilter --+           +-> select
 *               +-> sad-2 --+
 *               +-> sad-3 --+
 *
 * The host preloads the raw left image and the replicate-padded raw
 * right image into the prefilter column's SRAM. On the chip:
 *
 *  - `prefilter` runs the horizontal [1 2 1]/4 intensity smoothing
 *    over both images row by row (the serial, whole-frame stage —
 *    the analogue of Table 4's one 500 MHz SVD tile) and streams
 *    every filtered row to ALL four correlation columns, each on its
 *    own bus lane at its own byte alignment,
 *  - each `sad-i` column buffers the rows of a block row and runs
 *    the SAD search for the disparities d congruent to i (mod 4) —
 *    the row-parallel fork: all four columns chew the same rows
 *    concurrently, each on a quarter of the search range. Sharding
 *    by disparity *residue* keeps every right-image load of column i
 *    at one constant byte alignment, so the prefilter can emit each
 *    column's words pre-shifted and the inner loop stays on the
 *    4-byte SAA instruction,
 *  - each block's best candidate leaves as one packed dsp::sadKey
 *    word (SAD high, disparity low), and `select` is the min-SAD
 *    join: four lane-tagged `crd`s and a branch-free `min` reduction
 *    pick the winning disparity, ties toward the smaller d — the
 *    same total order the golden minimizes.
 *
 * The output disparity map is checked bit-exactly against
 * dsp::stereoBlockDisparities on both scheduler backends, and the
 * measured activity is priced against the paper's Table 4 SV row
 * (32% saved by multiple voltage domains: the serial filter column
 * needs the top supply while the four SAD columns idle down).
 */

#ifndef SYNC_APPS_STEREO_RUNNER_HH
#define SYNC_APPS_STEREO_RUNNER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "apps/app_harness.hh"
#include "dsp/image.hh"
#include "mapping/explorer.hh"
#include "mapping/verifier.hh"
#include "power/dvfs.hh"
#include "sim/fleet.hh"

namespace synchro::apps
{

/** Fixed geometry of the mapped stereo pipeline. */
constexpr unsigned StereoWidth = 64;
constexpr unsigned StereoHeight = 32;
constexpr unsigned StereoBlock = 8;
constexpr unsigned StereoMaxDisp = 16;
constexpr unsigned StereoSadColumns = 4;

/** Blocks per frame (one disparity byte each). */
constexpr unsigned StereoBlocks =
    (StereoWidth / StereoBlock) * (StereoHeight / StereoBlock);

struct StereoPipelineParams
{
    /**
     * Frame rate the mapping targets (Hz). The tiny 64x32 frame
     * stands in for the paper's 256x256 stereo pair at 10 f/s, so
     * the rate is scaled up to present the same per-column compute
     * density the Table 4 SV row prices.
     */
    double frame_rate_hz = 7300;

    /** Delivery-grid slack passed to the lowerer. */
    double slack = 1.3;

    /** Synthetic-scene RNG seed. */
    uint32_t seed = 32;

    /** Execution backend. */
    SchedulerKind scheduler = defaultSchedulerKind();

    /**
     * Column team size for the ParallelColumns backend
     * (arch::ChipConfig::parallel_columns): 0 = automatic,
     * 1 = serial, larger = that many team threads. Ignored
     * by the serial backends.
     */
    unsigned parallel_team = 0;
};

/**
 * Everything a finished mapped-stereo run produced; the common slice
 * (plan, ticks, fabric stats, power, ...) comes from the harness.
 */
struct MappedStereoRun : MappedAppRun
{
    std::vector<uint8_t> output; //!< per-block disparity from the chip
    std::vector<uint8_t> golden; //!< dsp::stereoBlockDisparities
    bool bit_exact = false;

    /** Blocks correlated per second, as actually sustained. */
    double achieved_block_rate_hz = 0;

    /** Fraction of blocks whose disparity matches the scene truth. */
    double truth_hit_rate = 0;
};

/**
 * The synthetic stereo pair: a random texture split into two depth
 * bands, the right view shifted by each band's disparity. @p truth
 * gets the per-block ground-truth disparity; blocks without exact
 * truth (seam- or edge-straddling support) are marked 255.
 */
void stereoScene(const StereoPipelineParams &p, dsp::Image &left,
                 dsp::Image &right,
                 std::vector<uint8_t> *truth = nullptr);

/**
 * The pipeline's SDF graph with static per-firing cycle costs;
 * optionally also the per-actor bus annotations.
 */
mapping::SdfGraph stereoGraph(
    const StereoPipelineParams &p,
    std::vector<mapping::ActorCommSpec> *comm = nullptr);

/** Map the pipeline; nullopt if no feasible allocation exists. */
std::optional<mapping::ChipPlan> planStereo(
    const StereoPipelineParams &p);

/**
 * The DAG spec ready for mapping::lowerDag (exposed for tests that
 * want to lower onto hand-built plans).
 */
mapping::DagSpec stereoDag(const StereoPipelineParams &p,
                           const dsp::Image &left,
                           const dsp::Image &right);

/**
 * The whole loop: plan, lower, load, run, verify, price. fatal() if
 * no feasible mapping exists or the run does not drain.
 */
MappedStereoRun runMappedStereo(const StereoPipelineParams &p);

/*
 * The capability hooks below are legacy wrappers: the pipeline
 * registers once with apps::AppRegistry (app_registry.hh) and these
 * forward to AppRegistry::instance().at("stereo")'s views.
 */

/**
 * Package the pipeline for mapping::explorePlans — the plan-variant
 * hook: lowers, budgets, and golden-verifies an arbitrary candidate
 * ChipPlan. fatal() if no feasible baseline mapping exists.
 */
mapping::ExplorableApp explorableStereo(const StereoPipelineParams &p);

/**
 * The committed lowering bundled for mapping::verifyLowered — the
 * report hook the verify_plan example and the verifier regression
 * tests use to re-verify exactly what runMappedStereo() runs.
 */
mapping::LoweredArtifact
verifiableStereo(const StereoPipelineParams &p);

/**
 * Package the pipeline for sim::FleetExecutor — the per-work-item
 * hook set: one cold build, then a restart/refeed per item with a
 * scene seeded by sim::fleetItemSeed(p.seed, item). Each item is one
 * stereo frame pair; outputs and goldens are the per-block disparity
 * bytes. fatal() if no feasible mapping exists.
 */
sim::FleetWorkload fleetStereo(const StereoPipelineParams &p);

/**
 * Package the pipeline for the online DVFS governor (power/dvfs.hh):
 * the verifier-gated artifact, the fleet hooks, the canonical bursty
 * traffic shape, and the item <-> iteration exchange rate.
 */
power::DvfsAppHooks dvfsStereo(const StereoPipelineParams &p);

} // namespace synchro::apps

#endif // SYNC_APPS_STEREO_RUNNER_HH
