#include "apps/stereo_runner.hh"

#include <memory>

#include "apps/app_registry.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "dsp/stereo.hh"

namespace synchro::apps
{

using mapping::DagEdgeSpec;
using mapping::DagSpec;
using mapping::DagStage;

namespace
{

constexpr unsigned W = StereoWidth;
constexpr unsigned H = StereoHeight;
constexpr unsigned B = StereoBlock;
constexpr unsigned D = StereoMaxDisp;
constexpr unsigned N = StereoSadColumns;
constexpr unsigned PadW = W + D; //!< padded right row stride

// Tile-SRAM layout, prefilter column: raw images preloaded by the
// host, one filtered row buffer per image (the right buffer has 3
// trailing pad bytes so byte-assembled emission at shifts 1..3 never
// reads past it).
constexpr uint32_t PfLeftRaw = 0x0000;  //!< W x H bytes
constexpr uint32_t PfRightRaw = 0x0800; //!< PadW x H bytes
constexpr uint32_t PfLeftRow = 0x2000;  //!< W filtered bytes
constexpr uint32_t PfRightRow = 0x2100; //!< PadW + 3 filtered bytes

// Tile-SRAM layout, sad columns: the streamed filtered strips.
constexpr uint32_t SadLeft = 0x0000;  //!< W x H bytes (stride W)
constexpr uint32_t SadRight = 0x0800; //!< PadW x H bytes (stride PadW)

// Tile-SRAM layout, select column.
constexpr uint32_t SelOut = 0x1000; //!< one disparity byte per block

// DAG edge indices == bus lanes (the lowerer's contract): edges
// 0..3 feed the sad columns, 4..7 carry their candidate keys.
constexpr unsigned LaneRows(unsigned i) { return i; }
constexpr unsigned LaneKeys(unsigned i) { return N + i; }

/** Right-row words streamed to each sad column per image row. */
constexpr unsigned RightWords = PadW / 4;
/** Left-row words streamed to each sad column per image row. */
constexpr unsigned LeftWords = W / 4;
/** Words per prefilter firing on each rows lane. */
constexpr unsigned RowWords = LeftWords + RightWords;

// The packed candidate key is dsp::sadKey = (SAD << 6 | d): the
// disparity must fit its 6-bit field and the worst-case SAD must
// leave the shifted key positive, because the kernels seed the
// reduction with INT32_MAX and fold through the signed `min`
// (dsp::blockMatchDisparities runtime-asserts the same bounds).
static_assert(D <= 63, "disparity overflows the 6-bit key field");
static_assert(uint64_t(B) * B * 255 < (uint64_t(1) << 25),
              "worst-case SAD overflows the packed key");

/**
 * Byte shift of sad column i: it searches the disparities d with
 * d = i (mod 4), whose right-image reads all start at global byte
 * offsets congruent to (4 - i) % 4 — storing the streamed row
 * shifted by that amount keeps every SAA word load 4-byte aligned.
 */
constexpr unsigned
shiftOf(unsigned i)
{
    return (4 - i) % 4;
}

/**
 * Static issue-slot costs per firing (straight-line slots plus loop
 * bodies; zero-overhead loops and the outer firing loop are free,
 * conditional branches pay their one stall). These feed the SDF
 * graph so the AutoMapper's frequency demands match what the
 * simulator will actually execute.
 */
constexpr uint64_t FilterCost(unsigned px) { return 4 + (px - 1) * 9 + 6; }
constexpr uint64_t EmitCost =
    N * (1 + LeftWords * 2 + 1 + RightWords * 11);
constexpr uint64_t PrefilterCost =
    FilterCost(W) + FilterCost(PadW) + EmitCost;
constexpr uint64_t SadReceiveCost =
    1 + B * (LeftWords * 2 + RightWords * 2 + 4);
constexpr uint64_t SadBlockCost =
    2 + (D / N) * (8 + B * 8 + 4) + 6;
constexpr uint64_t SadCost =
    SadReceiveCost + 1 + (W / B) * SadBlockCost + 2;
constexpr uint64_t SelectCost = 9;

/**
 * Demand margins. The sad columns must finish a block row a little
 * faster than the prefilter can stream the next one (they sit just
 * off the critical path, and clocking them at exactly their
 * throughput demand would stall the serial column on every write);
 * the tiny select join is latency-critical the same way the wifi
 * traceback is — without a margin the mapper would clock it so low
 * that draining four candidate lanes would become the bottleneck.
 */
constexpr unsigned SadMarginNum = 5, SadMarginDen = 4; //!< x1.25
constexpr unsigned SelectMargin = 16;

void
checkParams(const StereoPipelineParams &p)
{
    if (p.frame_rate_hz <= 0)
        fatal("stereo: need a positive frame rate");
}

/** The horizontal [1 2 1]/4 filter over @p px bytes at the cursor
 * pointer @p raw (post-advanced to the next row), storing filtered
 * bytes through p2 (caller positions it). Clamps both edges, exactly
 * like dsp::prefilter3. */
std::string
filterRowAsm(const char *raw, unsigned px, const char *lbl)
{
    return strprintf(R"(
        ld.bu r2, [%s]
        mov r3, r2
        paddi %s, 1
        lsetup lc1, %s, %u
        ld.bu r4, [%s]+1
        add r5, r2, r3
        add r5, r5, r3
        add r5, r5, r4
        addi r5, 2
        asri r5, r5, 2
        st.b r5, [p2]+1
        mov r2, r3
        mov r3, r4
    %s:
        add r5, r2, r3
        add r5, r5, r3
        add r5, r5, r3
        addi r5, 2
        asri r5, r5, 2
        st.b r5, [p2]+1
)",
                     raw, raw, lbl, px - 1, raw, lbl);
}

DagStage
prefilterStage(const dsp::Image &left, const dsp::Image &right)
{
    DagStage s;
    s.actor = "prefilter";
    s.firings = H;
    s.per_iteration = H;
    // p0/p1 walk the raw images row by row across firings.
    s.prologue = strprintf("        movpi p0, %u\n"
                           "        movpi p1, %u\n",
                           PfLeftRaw, PfRightRaw);

    std::string body;
    body += strprintf("        movpi p2, %u\n", PfLeftRow);
    body += filterRowAsm("p0", W, "__fl");
    body += strprintf("        movpi p2, %u\n", PfRightRow);
    body += filterRowAsm("p1", PadW, "__fr");

    // Fan the filtered row out to every sad column: aligned left
    // words, then the right row re-packed at the column's byte shift
    // (the corner-turn that keeps the SAA loops aligned).
    for (unsigned i = 0; i < N; ++i) {
        body += strprintf(R"(
        movpi p2, %u
        lsetup lc1, __el%u, %u
        ld.w r2, [p2]+4
        cwr r2, %u
    __el%u:
        movpi p3, %u
        lsetup lc1, __er%u, %u
        ld.bu r2, [p3]+1
        ld.bu r4, [p3]+1
        lsli r4, r4, 8
        or r2, r2, r4
        ld.bu r4, [p3]+1
        lsli r4, r4, 16
        or r2, r2, r4
        ld.bu r4, [p3]+1
        lsli r4, r4, 24
        or r2, r2, r4
        cwr r2, %u
    __er%u:
)",
                          PfLeftRow, i, LeftWords, LaneRows(i), i,
                          PfRightRow + shiftOf(i), i, RightWords,
                          LaneRows(i), i);
    }
    s.body = std::move(body);

    s.images.push_back({PfLeftRaw, left.pixels()});
    s.images.push_back(
        {PfRightRaw, dsp::padLeftReplicate(right, D).pixels()});
    return s;
}

DagStage
sadStage(unsigned i)
{
    DagStage s;
    s.actor = strprintf("sad-%u", i);
    s.firings = H / B;
    s.per_iteration = H / B;
    // p0/p1: store cursors for the incoming rows; p4/p5: base of the
    // strip the current firing correlates.
    s.prologue = strprintf(R"(
        movpi p0, %u
        movpi p1, %u
        movpi p4, %u
        movpi p5, %u
        movi r5, 0
)",
                           SadLeft, SadRight, SadLeft, SadRight);

    // Phase 1: buffer one block row's worth of filtered rows.
    std::string body = strprintf(R"(
        movi r6, %u
    __rx:
        lsetup lc1, __rxl, %u
        crd r0, %u
        st.w r0, [p0]+4
    __rxl:
        lsetup lc1, __rxr, %u
        crd r0, %u
        st.w r0, [p1]+4
    __rxr:
        addi r6, -1
        cmplt r5, r6
        jcc __rx
        movi r4, 0
    __bx:
        movi r2, -1
        movih r2, 32767
)",
                                 B, LeftWords, LaneRows(i),
                                 RightWords, LaneRows(i));

    // Phase 2: for every block of the strip, SAD the column's D/N
    // disparities with the 4-byte SAA op and fold each into the
    // packed sadKey; the strict `min` keeps the lowest SAD and
    // breaks ties toward the smaller disparity.
    for (unsigned k = 0; k < D / N; ++k) {
        unsigned d = N * k + i;
        unsigned off = D - d - shiftOf(i);
        body += strprintf(R"(
        movrp r0, p4
        add r0, r0, r4
        movp p2, r0
        movrp r0, p5
        add r0, r0, r4
        addi r0, %u
        movp p3, r0
        aclr a0
        lsetup lc1, __sk%u, %u
        ld.w r0, [p2]+4
        ld.w r1, [p3]+4
        saa a0, r0, r1
        ld.w r0, [p2]+4
        ld.w r1, [p3]+4
        saa a0, r0, r1
        paddi p2, %u
        paddi p3, %u
    __sk%u:
        aext r0, a0, 0
        lsli r0, r0, 6
        addi r0, %u
        min r2, r2, r0
)",
                          off, k, B, W - B, PadW - B, k, d);
    }
    body += strprintf(R"(
        cwr r2, %u
        addi r4, %u
        movi r1, %u
        cmplt r4, r1
        jcc __bx
        paddi p4, %u
        paddi p5, %u
)",
                      LaneKeys(i), B, W, B * W, B * PadW);
    s.body = std::move(body);
    return s;
}

DagStage
selectStage()
{
    DagStage s;
    s.actor = "select";
    s.firings = StereoBlocks;
    s.per_iteration = StereoBlocks;
    s.prologue = strprintf("        movpi p0, %u\n"
                           "        movi r4, 63\n",
                           SelOut);
    // The min-SAD join: one candidate key per sad column, each crd
    // waiting on its own lane's buffer; the winning key's low bits
    // are the block's disparity.
    s.body = strprintf(R"(
        crd r0, %u
        crd r1, %u
        min r0, r0, r1
        crd r1, %u
        min r0, r0, r1
        crd r1, %u
        min r0, r0, r1
        and r0, r0, r4
        st.b r0, [p0]+1
)",
                       LaneKeys(0), LaneKeys(1), LaneKeys(2),
                       LaneKeys(3));
    return s;
}

/**
 * Tick budget for one run: generous — the delivery grid paces
 * RowWords tokens per row lane per slot_spacing ticks, H rows, plus
 * fill and drain.
 */
Tick
stereoTickLimit(const mapping::PipelineProgram &prog)
{
    return Tick(H) * RowWords * prog.slot_spacing * 4 + 1'000'000;
}

/** The per-block disparity map, read back from a finished chip. */
std::vector<uint8_t>
readStereoOutput(arch::Chip &chip,
                 const mapping::PipelineProgram &prog)
{
    const auto &sel_col = prog.columnFor("select");
    arch::Tile &tile = chip.column(sel_col.column).tile(0);
    std::vector<uint8_t> out(StereoBlocks);
    tile.readMem(SelOut, out.data(), StereoBlocks);
    return out;
}

} // namespace

void
stereoScene(const StereoPipelineParams &p, dsp::Image &left,
            dsp::Image &right, std::vector<uint8_t> *truth)
{
    checkParams(p);
    // A random texture split into two depth bands: the left band at
    // disparity 5, the right at 12. Every right pixel is the left
    // pixel shifted by its band's disparity, so interior blocks have
    // exact ground truth; blocks whose support straddles the seam or
    // the clamped right edge are left out of the truth map (255).
    constexpr unsigned NearD = 5, FarD = 12, Seam = 20;
    Rng rng(p.seed);
    for (unsigned y = 0; y < H; ++y)
        for (unsigned x = 0; x < W; ++x)
            left(x, y) = uint8_t(rng.below(256));
    for (unsigned y = 0; y < H; ++y)
        for (unsigned x = 0; x < W; ++x)
            right(x, y) =
                left.at(int(x + (x < Seam ? NearD : FarD)), int(y));

    if (truth) {
        truth->assign(StereoBlocks, 255);
        for (unsigned by = 0; by < H / B; ++by) {
            for (unsigned bx = 0; bx < W / B; ++bx) {
                unsigned x0 = bx * B;
                // A block has exact truth when all the right-image
                // pixels it correlates against ([x0-d, x0+B-d)) lie
                // inside one band AND inside the image (the first
                // block column's support would read the replicate-
                // clamped left edge, where the shift identity
                // breaks).
                unsigned d = x0 >= Seam + FarD ? FarD
                             : (x0 >= NearD &&
                                x0 + B - NearD <= Seam)
                                 ? NearD
                                 : 255;
                (*truth)[by * (W / B) + bx] = uint8_t(d);
            }
        }
    }
}

mapping::SdfGraph
stereoGraph(const StereoPipelineParams &p,
            std::vector<mapping::ActorCommSpec> *comm)
{
    checkParams(p);
    mapping::SdfGraph g;
    unsigned pf = g.addActor("prefilter", PrefilterCost);
    unsigned sad[N];
    for (unsigned i = 0; i < N; ++i)
        sad[i] = g.addActor(strprintf("sad-%u", i),
                            SadCost * SadMarginNum / SadMarginDen);
    unsigned sel = g.addActor("select", SelectCost * SelectMargin);
    // The minimal SDF iteration is one BLOCK ROW: the balance
    // equations solve to q = (B, 1, 1, 1, 1, W/B) — B prefilter row
    // firings feed one firing of each sad column, which feeds W/B
    // select firings. planStereo scales the mapper rate by the H/B
    // block rows per frame accordingly.
    for (unsigned i = 0; i < N; ++i) {
        g.addEdge(pf, sad[i], RowWords, RowWords * B);
        g.addEdge(sad[i], sel, W / B, 1);
    }

    if (comm) {
        comm->assign(g.numActors(), {});
        (*comm)[pf].words_per_firing = N * RowWords;
        for (unsigned i = 0; i < N; ++i)
            (*comm)[sad[i]].words_per_firing = W / B;
        // The kernels keep streaming state (row cursors, strip
        // buffers), so none of them parallelize further.
        for (auto &spec : *comm)
            spec.max_parallel = 1;
    }
    return g;
}

std::optional<mapping::ChipPlan>
planStereo(const StereoPipelineParams &p)
{
    std::vector<mapping::ActorCommSpec> comm;
    mapping::SdfGraph g = stereoGraph(p, &comm);
    // The graph's minimal SDF iteration is one *block row* (the
    // repetition vector solves to q = (B, 1, 1, 1, 1, W/B)), so the
    // mapper's iteration rate is H/B of them per frame.
    return planApp(g, comm, p.frame_rate_hz * (H / B));
}

DagSpec
stereoDag(const StereoPipelineParams &p, const dsp::Image &left,
          const dsp::Image &right)
{
    checkParams(p);
    sync_assert(left.width() == W && left.height() == H &&
                    right.width() == W && right.height() == H,
                "stereo: the mapped pipeline is fixed at %ux%u", W,
                H);
    DagSpec spec;
    spec.stages.push_back(prefilterStage(left, right));
    for (unsigned i = 0; i < N; ++i)
        spec.stages.push_back(sadStage(i));
    spec.stages.push_back(selectStage());
    // Edge order defines the bus lanes the kernels above tag. The
    // row lanes carry the bulk of the traffic and get two delivery
    // slots per grid period so the fan-out never throttles the
    // serial prefilter column.
    for (unsigned i = 0; i < N; ++i)
        spec.edges.push_back({"prefilter", strprintf("sad-%u", i),
                              RowWords, RowWords * B, 2});
    for (unsigned i = 0; i < N; ++i)
        spec.edges.push_back(
            {strprintf("sad-%u", i), "select", W / B, 1, 1});
    return spec;
}

MappedStereoRun
runMappedStereo(const StereoPipelineParams &p)
{
    checkParams(p);
    MappedStereoRun run;
    dsp::Image left(W, H), right(W, H);
    std::vector<uint8_t> truth;
    stereoScene(p, left, right, &truth);
    run.golden = dsp::stereoBlockDisparities(left, right, B, D);

    auto plan = planStereo(p);
    if (!plan)
        fatal("stereo: no feasible mapping at %.0f frames/s",
              p.frame_rate_hz);

    auto prog = mapping::lowerDag(stereoDag(p, left, right), *plan,
                                  p.frame_rate_hz, p.slack);

    MappedAppParams hp;
    hp.app = "stereo";
    hp.scheduler = p.scheduler;
    hp.parallel_team = p.parallel_team;
    hp.tick_limit = stereoTickLimit(prog);
    hp.priced_items = StereoBlocks;
    MappedApp app(hp, *plan, prog);
    static_cast<MappedAppRun &>(run) = app.run();
    run.achieved_block_rate_hz = run.achieved_items_per_sec;

    run.output = readStereoOutput(app.chip(), prog);
    run.bit_exact = run.output == run.golden;
    if (!run.bit_exact)
        warn("%s",
             describeMismatch("stereo disparity map", run.output,
                              run.golden)
                 .c_str());

    unsigned scored = 0, hits = 0;
    for (unsigned b = 0; b < StereoBlocks; ++b) {
        if (truth[b] == 255)
            continue;
        ++scored;
        hits += run.output[b] == truth[b];
    }
    run.truth_hit_rate = scored ? double(hits) / scored : 0.0;
    return run;
}

static mapping::ExplorableApp
explorableStereoImpl(const StereoPipelineParams &p)
{
    checkParams(p);
    auto left = std::make_shared<dsp::Image>(W, H);
    auto right = std::make_shared<dsp::Image>(W, H);
    stereoScene(p, *left, *right);
    auto golden = std::make_shared<std::vector<uint8_t>>(
        dsp::stereoBlockDisparities(*left, *right, B, D));
    auto plan = planStereo(p);
    if (!plan)
        fatal("stereo: no feasible mapping at %.0f frames/s",
              p.frame_rate_hz);

    mapping::ExplorableApp app;
    app.name = "stereo";
    app.iterations_per_sec = p.frame_rate_hz;
    app.priced_items = StereoBlocks;
    app.baseline = *plan;
    app.lower = [p, left, right](const mapping::ChipPlan &candidate,
                                 double rate) {
        return mapping::lowerDag(stereoDag(p, *left, *right),
                                 candidate, rate, p.slack);
    };
    app.tick_limit = [](const mapping::ChipPlan &,
                        const mapping::PipelineProgram &prog) {
        return stereoTickLimit(prog);
    };
    app.verify = [golden](arch::Chip &chip,
                          const mapping::PipelineProgram &prog) {
        return describeMismatch("stereo disparity map",
                                readStereoOutput(chip, prog),
                                *golden);
    };
    return app;
}

static mapping::LoweredArtifact
verifiableStereoImpl(const StereoPipelineParams &p)
{
    checkParams(p);
    dsp::Image left(W, H), right(W, H);
    stereoScene(p, left, right);
    auto plan = planStereo(p);
    if (!plan)
        fatal("stereo: no feasible mapping at %.0f frames/s",
              p.frame_rate_hz);

    mapping::LoweredArtifact art;
    art.name = "stereo";
    art.spec = stereoDag(p, left, right);
    art.plan = *plan;
    art.iterations_per_sec = p.frame_rate_hz;
    art.slack = p.slack;
    art.prog = mapping::lowerDag(art.spec, art.plan,
                                 art.iterations_per_sec, art.slack);
    return art;
}

static sim::FleetWorkload
fleetStereoImpl(const StereoPipelineParams &p)
{
    checkParams(p);
    auto base_plan = planStereo(p);
    if (!base_plan)
        fatal("stereo: no feasible mapping at %.0f frames/s",
              p.frame_rate_hz);
    auto plan =
        std::make_shared<mapping::ChipPlan>(std::move(*base_plan));

    // The canonical program for the warm-path hooks: the lowering
    // depends only on the app parameters (its images are replaced
    // per item), so one program serves every stream and item.
    auto canon = [&] {
        dsp::Image left(W, H), right(W, H);
        stereoScene(p, left, right);
        return mapping::lowerDag(stereoDag(p, left, right), *plan,
                                 p.frame_rate_hz, p.slack);
    };
    auto prog =
        std::make_shared<mapping::PipelineProgram>(canon());

    sim::FleetWorkload wl;
    wl.name = "stereo";
    wl.tick_limit = stereoTickLimit(*prog);
    wl.build = [p, plan](SchedulerKind kind) {
        dsp::Image left(W, H), right(W, H);
        stereoScene(p, left, right);
        auto built = mapping::lowerDag(stereoDag(p, left, right),
                                       *plan, p.frame_rate_hz,
                                       p.slack);
        return buildFleetChip(*plan, built, kind);
    };
    wl.feed = [p, prog](arch::Chip &chip, uint64_t item) {
        StereoPipelineParams q = p;
        q.seed = sim::fleetItemSeed(p.seed, item);
        dsp::Image left(W, H), right(W, H);
        stereoScene(q, left, right);
        refeedImages(chip, *prog, stereoDag(q, left, right));
    };
    wl.read_output = [prog](arch::Chip &chip) {
        return readStereoOutput(chip, *prog);
    };
    wl.golden = [p](uint64_t item) {
        StereoPipelineParams q = p;
        q.seed = sim::fleetItemSeed(p.seed, item);
        dsp::Image left(W, H), right(W, H);
        stereoScene(q, left, right);
        return dsp::stereoBlockDisparities(left, right, B, D);
    };
    return wl;
}

static power::DvfsAppHooks
dvfsStereoImpl(const StereoPipelineParams &p)
{
    power::DvfsAppHooks h;
    h.name = "stereo";
    h.artifact = verifiableStereoImpl(p);
    h.workload = fleetStereoImpl(p);
    h.traffic = sim::TrafficSpec::bursty(p.seed);
    // One SDF iteration correlates one whole frame pair, and one
    // item is one frame pair.
    h.iterations_per_item = 1;
    return h;
}

void
detail::registerStereoApp(AppRegistry &reg)
{
    AppDescriptor desc;
    desc.name = "stereo";
    desc.make_params = [](const AppTuning &t) {
        StereoPipelineParams p;
        if (t.scheduler)
            p.scheduler = *t.scheduler;
        if (t.parallel_team)
            p.parallel_team = *t.parallel_team;
        if (t.seed)
            p.seed = *t.seed;
        return std::any(p);
    };
    desc.explorable_hook = appHook("stereo", &explorableStereoImpl);
    desc.verifiable_hook = appHook("stereo", &verifiableStereoImpl);
    desc.fleet_hook = appHook("stereo", &fleetStereoImpl);
    desc.dvfs_hook = appHook("stereo", &dvfsStereoImpl);
    reg.add(std::move(desc));
}

// Legacy free functions, reduced to registry wrappers.
mapping::ExplorableApp
explorableStereo(const StereoPipelineParams &p)
{
    return AppRegistry::instance().at("stereo").explorable(p);
}

mapping::LoweredArtifact
verifiableStereo(const StereoPipelineParams &p)
{
    return AppRegistry::instance().at("stereo").verifiable(p);
}

sim::FleetWorkload
fleetStereo(const StereoPipelineParams &p)
{
    return AppRegistry::instance().at("stereo").fleet(p);
}

power::DvfsAppHooks
dvfsStereo(const StereoPipelineParams &p)
{
    return AppRegistry::instance().at("stereo").dvfs(p);
}

} // namespace synchro::apps
