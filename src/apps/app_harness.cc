#include "apps/app_harness.hh"

#include <chrono>

#include "common/log.hh"
#include "power/vf_model.hh"

namespace synchro::apps
{

std::optional<mapping::ChipPlan>
planApp(const mapping::SdfGraph &graph,
        const std::vector<mapping::ActorCommSpec> &comm,
        double iterations_per_sec)
{
    if (graph.numActors() == 0)
        fatal("planApp: the SDF graph has no actors — a mapped "
              "application needs at least one kernel");
    if (iterations_per_sec <= 0)
        fatal("planApp: need a positive iteration rate, got %g",
              iterations_per_sec);
    power::SystemPowerModel model;
    power::VfModel vf;
    power::SupplyLevels levels(vf);
    mapping::AutoMapper mapper(model, levels);
    return mapper.map(graph, iterations_per_sec, comm);
}

MappedApp::MappedApp(const MappedAppParams &params,
                     const mapping::ChipPlan &plan,
                     const mapping::PipelineProgram &prog)
    : params_(params), plan_(plan)
{
    if (params_.priced_items == 0)
        fatal("%s: MappedAppParams::priced_items must be set (the "
              "harness prices power per item)",
              params_.app.c_str());
    if (params_.tick_limit == 0)
        fatal("%s: MappedAppParams::tick_limit must be set",
              params_.app.c_str());
    arch::ChipConfig cfg;
    cfg.ref_freq_mhz = plan_.ref_freq_mhz;
    cfg.dividers = plan_.dividers();
    cfg.scheduler = params_.scheduler;
    cfg.parallel_columns = params_.parallel_team;
    cfg.self_timed_bus = prog.self_timed;
    chip_ = std::make_unique<arch::Chip>(cfg);
    prog.load(*chip_);
}

MappedApp::~MappedApp() = default;

MappedAppRun
MappedApp::run()
{
    MappedAppRun run;
    run.plan = plan_;

    auto t0 = std::chrono::steady_clock::now();
    run.result = chip_->run(params_.tick_limit);
    run.sim_seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (run.result.exit != arch::RunExit::AllHalted)
        fatal("%s: mapped pipeline did not drain (%s at tick %llu)",
              params_.app.c_str(),
              run.result.exit == arch::RunExit::Deadlock
                  ? "deadlock"
                  : "tick limit",
              (unsigned long long)run.result.ticks);
    run.ticks = run.result.ticks;

    run.overruns = chip_->fabric().stats().value("overruns");
    run.conflicts = chip_->fabric().stats().value("conflicts");
    run.deferrals = chip_->fabric().stats().value("deferrals");
    run.bus_transfers = chip_->fabric().transfers();

    // Price the run at the throughput it actually sustained, so the
    // derived per-column frequencies are exactly what this silicon
    // would need to process the stream in real time.
    double ref_hz = plan_.ref_freq_mhz * 1e6;
    run.achieved_items_per_sec = double(params_.priced_items) *
                                 ref_hz / double(run.ticks);
    power::SystemPowerModel model;
    power::VfModel vf;
    power::SupplyLevels levels(vf);
    run.power = power::priceSimulationComparison(
        *chip_, params_.priced_items, run.achieved_items_per_sec,
        levels, model);

    chip_->forEachStat([&run](const std::string &name, uint64_t v) {
        run.stats[name] = v;
    });
    return run;
}

std::unique_ptr<arch::Chip>
buildFleetChip(const mapping::ChipPlan &plan,
               const mapping::PipelineProgram &prog,
               SchedulerKind scheduler)
{
    arch::ChipConfig cfg;
    cfg.ref_freq_mhz = plan.ref_freq_mhz;
    cfg.dividers = plan.dividers();
    cfg.scheduler = scheduler;
    cfg.self_timed_bus = prog.self_timed;
    auto chip = std::make_unique<arch::Chip>(cfg);
    prog.load(*chip);
    return chip;
}

void
refeedImages(arch::Chip &chip, const mapping::PipelineProgram &prog,
             const mapping::DagSpec &spec)
{
    chip.restart();
    // restart() keeps tile SRAM; wipe the working tiles so no
    // residue of the previous item survives, then lay down this
    // item's images exactly as PipelineProgram::load would.
    for (const auto &col : prog.columns)
        chip.column(col.column).tile(0).clearMem();
    for (const auto &stage : spec.stages) {
        const mapping::ColumnProgram &col =
            prog.columnFor(stage.actor);
        for (const auto &[addr, bytes] : stage.images)
            chip.column(col.column)
                .tile(0)
                .writeMem(addr, bytes.data(),
                          uint32_t(bytes.size()));
    }
}

std::vector<uint8_t>
bytesOfHalves(const std::vector<int16_t> &h)
{
    std::vector<uint8_t> b(h.size() * 2);
    for (size_t i = 0; i < h.size(); ++i) {
        b[2 * i] = uint8_t(uint16_t(h[i]) & 0xff);
        b[2 * i + 1] = uint8_t(uint16_t(h[i]) >> 8);
    }
    return b;
}

std::vector<uint8_t>
bytesOfWords(const std::vector<int32_t> &w)
{
    std::vector<uint8_t> b(w.size() * 4);
    for (size_t i = 0; i < w.size(); ++i) {
        uint32_t v = uint32_t(w[i]);
        b[4 * i] = uint8_t(v & 0xff);
        b[4 * i + 1] = uint8_t((v >> 8) & 0xff);
        b[4 * i + 2] = uint8_t((v >> 16) & 0xff);
        b[4 * i + 3] = uint8_t((v >> 24) & 0xff);
    }
    return b;
}

namespace
{

template <typename T>
std::string
describeMismatchT(const std::string &what, const std::vector<T> &got,
                  const std::vector<T> &want)
{
    if (got.size() != want.size())
        return strprintf("%s: size mismatch (got %zu, want %zu)",
                         what.c_str(), got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
        if (got[i] != want[i])
            return strprintf(
                "%s: first mismatch at index %zu (got %lld, want "
                "%lld)",
                what.c_str(), i, (long long)got[i],
                (long long)want[i]);
    }
    return "";
}

} // namespace

std::string
describeMismatch(const std::string &what,
                 const std::vector<uint8_t> &got,
                 const std::vector<uint8_t> &want)
{
    return describeMismatchT(what, got, want);
}

std::string
describeMismatch(const std::string &what,
                 const std::vector<int16_t> &got,
                 const std::vector<int16_t> &want)
{
    return describeMismatchT(what, got, want);
}

std::string
describeMismatch(const std::string &what,
                 const std::vector<int32_t> &got,
                 const std::vector<int32_t> &want)
{
    return describeMismatchT(what, got, want);
}

} // namespace synchro::apps
