/**
 * @file
 * End-to-end mapped execution of the paper's 802.11a receiver
 * (Section 3, Table 4, Figure 8): OFDM demap -> de-interleave -> a
 * Viterbi decoder parallelized across two columns -> traceback — the
 * first *DAG* workload on the simulator, exercising fork fan-out,
 * multi-input join actors and multi-rate edges through
 * mapping::lowerDag:
 *
 *                   +-> viterbi-acs-0 --+
 *   demap -> deint -+                   +-> traceback
 *                   +-> viterbi-acs-1 --+
 *
 * The host performs the front end that is not mapped (per-frame
 * convolutional encoding + interleaving + IFFT via dsp::ofdmTransmit,
 * then the receiver's FFT and data-carrier extraction) and quantizes
 * the 48 data carriers of each OFDM symbol to Q15. On the chip:
 *
 *  - `demap` slices each carrier's I/Q signs into the two Gray-coded
 *    QPSK bits (one packed word per carrier on the bus),
 *  - `deint` undoes the 802.11a block interleaver via a precomputed
 *    index table and forks whole frames alternately to the two
 *    decoder columns (fan-out on separate bus lanes),
 *  - each `viterbi-acs` column runs the full 64-state
 *    add-compare-select trellis for its frames and streams two
 *    packed survivor words per stage to the traceback column — the
 *    Figure 8 trellis-exchange traffic,
 *  - `traceback` joins both survivor streams (multi-input actor:
 *    its `crd`s wait on each input lane's buffer) and walks the
 *    survivors backwards to emit the decoded bits.
 *
 * One frame = one OFDM symbol: 42 data bits + 6 tail bits = 48
 * trellis stages = 96 coded bits = exactly one QPSK symbol, so each
 * frame is independently decodable and the two decoder columns work
 * on alternate frames in parallel. One SDF iteration = 2 frames.
 *
 * The output is checked bit-exactly against the dsp:: golden chain
 * (qamDemapHardQ15 -> Interleaver::deinterleave -> viterbiDecode) on
 * both scheduler backends, and the measured activity is priced
 * against the Table 4 802.11a row via power::priceSimulationComparison.
 */

#ifndef SYNC_APPS_WIFI_RUNNER_HH
#define SYNC_APPS_WIFI_RUNNER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "apps/app_harness.hh"
#include "common/fixed.hh"
#include "mapping/explorer.hh"
#include "mapping/verifier.hh"
#include "power/dvfs.hh"
#include "sim/fleet.hh"

namespace synchro::apps
{

/** Data bits per frame (one OFDM symbol's worth under QPSK). */
constexpr unsigned WifiFrameBits = 42;

/** Trellis stages per frame (data + K-1 tail). */
constexpr unsigned WifiFrameStages = 48;

struct WifiPipelineParams
{
    /** OFDM symbols (= frames) to stream; even, 2..128. */
    unsigned symbols = 8;

    /** Data-bit rate the mapping targets (Hz). */
    double bit_rate_hz = 600e3;

    /** Delivery-grid slack passed to the lowerer. */
    double slack = 1.3;

    /** Synthetic-payload RNG seed. */
    uint32_t seed = 80211;

    /**
     * Channel SNR in dB; 0 disables noise. With noise the golden
     * chain still matches the chip bit for bit (both demap the same
     * quantized symbols); only the decoded payload may differ from
     * the transmitted bits.
     */
    double snr_db = 0;

    /** Execution backend. */
    SchedulerKind scheduler = defaultSchedulerKind();

    /**
     * Column team size for the ParallelColumns backend
     * (arch::ChipConfig::parallel_columns): 0 = automatic,
     * 1 = serial, larger = that many team threads. Ignored
     * by the serial backends.
     */
    unsigned parallel_team = 0;
};

/**
 * Everything a finished mapped-802.11a run produced; the common
 * slice (plan, ticks, fabric stats, power, ...) comes from the
 * harness.
 */
struct MappedWifiRun : MappedAppRun
{
    std::vector<uint8_t> tx_bits; //!< transmitted payload bits
    std::vector<uint8_t> output;  //!< decoded bits read from the chip
    std::vector<uint8_t> golden;  //!< dsp:: reference chain
    bool bit_exact = false;       //!< output == golden

    /** Integer demap agreed with the floating-point dsp::qamDemap. */
    bool demap_matches_float = false;

    /** Golden chain recovered the transmitted payload. */
    bool golden_matches_tx = false;

    /** Data-bit throughput the run actually sustained. */
    double achieved_bit_rate_hz = 0;
};

/** The transmitted payload bits (symbols x WifiFrameBits). */
std::vector<uint8_t> wifiPayload(const WifiPipelineParams &p);

/**
 * Transmit each frame with dsp::ofdmTransmit, run the channel and
 * the receiver front end (FFT + data-carrier extraction), and
 * quantize: 48 Q15 carriers per symbol, in symbol order.
 */
std::vector<CplxQ15> wifiCarriers(const WifiPipelineParams &p,
                                  const std::vector<uint8_t> &bits);

/**
 * Golden reference: the dsp:: chain the chip must match bit-exactly
 * (hard demap of the quantized carriers, de-interleave, per-frame
 * Viterbi decode). Returns symbols x WifiFrameBits data bits.
 */
std::vector<uint8_t> wifiGolden(const WifiPipelineParams &p,
                                const std::vector<CplxQ15> &carriers);

/**
 * The receiver's SDF graph with static per-firing cycle costs;
 * optionally also the per-actor bus annotations.
 */
mapping::SdfGraph wifiGraph(
    const WifiPipelineParams &p,
    std::vector<mapping::ActorCommSpec> *comm = nullptr);

/** Map the receiver; nullopt if no feasible allocation exists. */
std::optional<mapping::ChipPlan> planWifi(const WifiPipelineParams &p);

/**
 * The DAG spec ready for mapping::lowerDag (exposed for tests that
 * want to lower onto hand-built plans).
 */
mapping::DagSpec wifiDag(const WifiPipelineParams &p,
                         const std::vector<CplxQ15> &carriers);

/**
 * The whole loop: plan, lower, load, run, verify, price. fatal() if
 * no feasible mapping exists or the run does not drain.
 */
MappedWifiRun runMappedWifi(const WifiPipelineParams &p);

/*
 * The capability hooks below are legacy wrappers: the receiver
 * registers once with apps::AppRegistry (app_registry.hh) and these
 * forward to AppRegistry::instance().at("wifi")'s views.
 */

/**
 * Package the receiver for mapping::explorePlans — the plan-variant
 * hook: lowers, budgets, and golden-verifies an arbitrary candidate
 * ChipPlan. fatal() if no feasible baseline mapping exists.
 */
mapping::ExplorableApp explorableWifi(const WifiPipelineParams &p);

/**
 * The committed lowering bundled for mapping::verifyLowered — the
 * report hook the verify_plan example and the verifier regression
 * tests use to re-verify exactly what runMappedWifi() runs.
 */
mapping::LoweredArtifact verifiableWifi(const WifiPipelineParams &p);

/**
 * Package the receiver for sim::FleetExecutor — the per-work-item
 * hook set: one cold build, then a restart/refeed per item with a
 * payload seeded by sim::fleetItemSeed(p.seed, item). Each item is
 * one p.symbols-long burst; outputs and goldens are the decoded
 * bit bytes. fatal() if no feasible mapping exists.
 */
sim::FleetWorkload fleetWifi(const WifiPipelineParams &p);

/**
 * Package the receiver for the online DVFS governor (power/dvfs.hh):
 * the verifier-gated artifact, the fleet hooks, the canonical bursty
 * traffic shape, and the item <-> iteration exchange rate.
 */
power::DvfsAppHooks dvfsWifi(const WifiPipelineParams &p);

} // namespace synchro::apps

#endif // SYNC_APPS_WIFI_RUNNER_HH
