#include "apps/motion_runner.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "apps/app_registry.hh"
#include "common/log.hh"
#include "common/rng.hh"

namespace synchro::apps
{

using mapping::DagEdgeSpec;
using mapping::DagSpec;
using mapping::DagStage;

namespace
{

constexpr unsigned W = MotionWidth;
constexpr unsigned H = MotionHeight;
constexpr unsigned Mb = MotionMb;
constexpr int R = MotionRange;
constexpr unsigned PadW = W + 2 * R; //!< padded reference stride
constexpr unsigned PadH = H + 2 * R;
constexpr unsigned RefBytes = PadW * PadH;

/** Macroblocks per search column (residue shards mod @p cols). */
constexpr unsigned
mbsPerCol(unsigned cols)
{
    return MotionMbs / cols;
}

/** Widest search farm the join's input lanes can absorb. */
constexpr unsigned MaxMotionColumns = 6;

// Tile-SRAM layout, search columns: current frame, four byte-shifted
// mirror copies of the padded reference (copy s holds the padded
// bytes starting at byte s, so a candidate row starting at padded
// byte g is 4-byte aligned in copy g % 4), and the per-macroblock
// candidate tables.
constexpr uint32_t MeCur = 0x0000;            //!< W x H bytes
constexpr uint32_t MeRef = 0x0C00;            //!< 4 x RefBytes
constexpr uint32_t MeTab = MeRef + 4 * RefBytes;

/** Table stride per macroblock: cur base + one address per cand. */
constexpr unsigned TabWords = 1 + MotionCands;

// The packed search key is (SAD << 7 | candidate index): the index
// needs the full 7-bit field and the worst-case SAD must leave the
// shifted key positive, or both the chip kernel and the golden
// re-encoding compute wrong argmins while still comparing equal.
static_assert(MotionCands <= 128,
              "candidate index overflows the 7-bit key field");
static_assert(uint64_t(Mb) * Mb * 255 < (uint64_t(1) << 24),
              "worst-case SAD overflows the packed key");

// Tile-SRAM layout, join column.
constexpr uint32_t JoinOut = 0x0000; //!< one packed key per mb

/**
 * Static issue-slot costs per firing (straight-line slots plus loop
 * bodies; zero-overhead loops and the outer firing loop are free,
 * conditional branches pay their one stall). These feed the SDF
 * graph so the AutoMapper's frequency demands match what the
 * simulator will actually execute.
 */
constexpr uint64_t CandCost = 4 + Mb * 14 + 4 + 2 + 1 + 2;
constexpr uint64_t MeCost = 5 + MotionCands * CandCost + 1;

/** Join slots per firing: one crd + one store per search column. */
constexpr uint64_t
joinCost(unsigned cols)
{
    return 2 * uint64_t(cols);
}

/**
 * Demand margin for the join: it is pure latency (two lane-tagged
 * reads), and clocking it at its raw throughput demand would make
 * draining the candidate lanes the pipeline's bottleneck.
 */
constexpr unsigned JoinMargin = 16;

void
checkParams(const MotionPipelineParams &p)
{
    if (p.mb_rate_hz <= 0)
        fatal("motion: need a positive macroblock rate");
    if (std::abs(p.pan_dx) > R || std::abs(p.pan_dy) > R)
        fatal("motion: pan (%d, %d) outside the +-%d search range",
              p.pan_dx, p.pan_dy, R);
    if (p.columns == 0 || p.columns > MaxMotionColumns ||
        MotionMbs % p.columns != 0)
        fatal("motion: %u search columns unsupported (need a "
              "divisor of %u macroblocks within 1..%u)",
              p.columns, MotionMbs, MaxMotionColumns);
}

/** Replicate-pad @p img by R pixels on every side. */
dsp::Image
padImage(const dsp::Image &img)
{
    dsp::Image out(PadW, PadH);
    for (unsigned y = 0; y < PadH; ++y)
        for (unsigned x = 0; x < PadW; ++x)
            out(x, y) = img.at(int(x) - R, int(y) - R);
    return out;
}

DagStage
meStage(unsigned which, unsigned cols, const dsp::Image &cur,
        const dsp::Image &ref)
{
    DagStage s;
    s.actor = strprintf("me-%u", which);
    s.firings = mbsPerCol(cols);
    s.per_iteration = 1;
    s.prologue = strprintf("        movpi p3, %u\n"
                           "        movi r7, 0\n",
                           MeTab);

    // One firing = one macroblock: walk its candidate table in
    // tie-break order, SAA the 16x16 SAD of each candidate, and keep
    // the minimum packed (SAD << 7 | index) key.
    s.body = strprintf(R"(
        ld.w r0, [p3]+4
        movi r2, -1
        movih r2, 32767
        movi r4, %u
        movi r6, 0
    __cand:
        ld.w r1, [p3]+4
        movp p1, r1
        movp p0, r0
        aclr a0
        lsetup lc1, __row, %u
        ld.w r1, [p0]+4
        ld.w r3, [p1]+4
        saa a0, r1, r3
        ld.w r1, [p0]+4
        ld.w r3, [p1]+4
        saa a0, r1, r3
        ld.w r1, [p0]+4
        ld.w r3, [p1]+4
        saa a0, r1, r3
        ld.w r1, [p0]+4
        ld.w r3, [p1]+4
        saa a0, r1, r3
        paddi p0, %u
        paddi p1, %u
    __row:
        aext r1, a0, 0
        lsli r1, r1, 7
        or r1, r1, r6
        min r2, r2, r1
        addi r6, 1
        addi r4, -1
        cmplt r7, r4
        jcc __cand
        cwr r2, %u
)",
                       MotionCands, Mb, W - Mb, PadW - Mb, which);

    // Current frame and the four alignment mirrors of the padded
    // reference.
    s.images.push_back({MeCur, cur.pixels()});
    dsp::Image padded = padImage(ref);
    for (unsigned shift = 0; shift < 4; ++shift) {
        std::vector<uint8_t> copy(RefBytes, 0);
        for (unsigned b = 0; b + shift < RefBytes; ++b)
            copy[b] = padded.pixels()[b + shift];
        s.images.push_back({MeRef + shift * RefBytes, std::move(copy)});
    }

    // Candidate tables for this shard's macroblocks: [cur mb base,
    // then one padded-reference address per candidate].
    // (Shard = macroblock residue mod cols.)
    auto cands = motionCandidates();
    std::vector<int32_t> tab;
    tab.reserve(mbsPerCol(cols) * TabWords);
    for (unsigned m = 0; m < mbsPerCol(cols); ++m) {
        unsigned g = cols * m + which;
        unsigned x0 = (g % (W / Mb)) * Mb;
        unsigned y0 = (g / (W / Mb)) * Mb;
        tab.push_back(int32_t(MeCur + y0 * W + x0));
        for (const auto &[dx, dy] : cands) {
            unsigned gx = unsigned(int(x0) + R + dx);
            unsigned gy = unsigned(int(y0) + R + dy);
            unsigned shift = gx % 4;
            tab.push_back(int32_t(MeRef + shift * RefBytes +
                                  gy * PadW + gx - shift));
        }
    }
    std::vector<uint8_t> tab_bytes(tab.size() * 4);
    std::memcpy(tab_bytes.data(), tab.data(), tab_bytes.size());
    s.images.push_back({MeTab, std::move(tab_bytes)});
    return s;
}

DagStage
joinStage(unsigned cols)
{
    DagStage s;
    s.actor = "join";
    s.firings = mbsPerCol(cols);
    s.per_iteration = 1;
    s.prologue = strprintf("        movpi p0, %u\n", JoinOut);
    // The best-vector join: interleave the shards' winning keys back
    // into macroblock order, each crd waiting on its own lane.
    for (unsigned c = 0; c < cols; ++c) {
        s.body += strprintf("        crd r0, %u\n"
                            "        st.w r0, [p0]+4\n",
                            c);
    }
    return s;
}

/**
 * Golden: dsp::fullSearch per macroblock, re-encoded with the
 * candidate order's packed key for the bit-exact compare.
 */
std::vector<int32_t>
motionGoldenKeys(const dsp::Image &cur, const dsp::Image &ref)
{
    auto cands = motionCandidates();
    std::vector<int32_t> keys;
    keys.reserve(MotionMbs);
    for (unsigned g = 0; g < MotionMbs; ++g) {
        unsigned x0 = (g % (W / Mb)) * Mb;
        unsigned y0 = (g / (W / Mb)) * Mb;
        dsp::MotionVector mv =
            dsp::fullSearch(cur, ref, x0, y0, R, Mb);
        unsigned idx = 0;
        while (idx < cands.size() &&
               (cands[idx].first != mv.dx ||
                cands[idx].second != mv.dy))
            ++idx;
        sync_assert(idx < cands.size(), "pan outside search range");
        keys.push_back(int32_t((mv.sad << 7) | idx));
    }
    return keys;
}

/**
 * Tick budget for one run: generous — one key per shard per
 * slot_spacing ticks plus the search itself, with plenty of slack.
 */
Tick
motionTickLimit(unsigned cols, const mapping::PipelineProgram &prog)
{
    return Tick(mbsPerCol(cols)) * (prog.slot_spacing + MeCost) * 4 +
           1'000'000;
}

/** The packed search keys, read back from a finished chip. */
std::vector<int32_t>
readMotionOutput(arch::Chip &chip,
                 const mapping::PipelineProgram &prog)
{
    const auto &join_col = prog.columnFor("join");
    return chip.column(join_col.column)
        .tile(0)
        .readMemWords(JoinOut, MotionMbs);
}

/** Search-farm width a candidate plan encodes (its me-* actors). */
unsigned
planColumns(const mapping::ChipPlan &plan)
{
    unsigned cols = 0;
    for (const auto &pl : plan.placements)
        cols += pl.actor.rfind("me-", 0) == 0;
    return cols;
}

} // namespace

void
motionScene(const MotionPipelineParams &p, dsp::Image &cur,
            dsp::Image &ref)
{
    checkParams(p);
    // A textured scene translated by the pan with a little sensor
    // noise — the same construction the mpeg4_encode example uses.
    auto scene = [&](int dx, int dy, dsp::Image &img) {
        Rng rng(p.seed);
        for (unsigned y = 0; y < H; ++y) {
            for (unsigned x = 0; x < W; ++x) {
                double v =
                    128 + 50 * std::sin((int(x) + dx) / 7.0) +
                    40 * std::cos((int(y) + dy) / 9.0) +
                    20 * std::sin(((int(x) + dx) + (int(y) + dy)) /
                                  5.0);
                v += rng.gauss() * 2.0;
                img(x, y) = uint8_t(
                    std::min(255.0, std::max(0.0, std::round(v))));
            }
        }
    };
    scene(0, 0, ref);
    scene(p.pan_dx, p.pan_dy, cur);
}

std::vector<std::pair<int, int>>
motionCandidates()
{
    std::vector<std::pair<int, int>> cands;
    cands.reserve(MotionCands);
    for (int dy = -R; dy <= R; ++dy)
        for (int dx = -R; dx <= R; ++dx)
            cands.emplace_back(dx, dy);
    // dsp::fullSearch's tie-break order: smaller |v|1, then dy, then
    // dx. Visiting candidates in this order and keeping the strict
    // minimum of (SAD << 7 | index) reproduces its argmin exactly.
    std::stable_sort(cands.begin(), cands.end(),
                     [](const auto &a, const auto &b) {
                         int na = std::abs(a.first) +
                                  std::abs(a.second);
                         int nb = std::abs(b.first) +
                                  std::abs(b.second);
                         if (na != nb)
                             return na < nb;
                         if (a.second != b.second)
                             return a.second < b.second;
                         return a.first < b.first;
                     });
    return cands;
}

mapping::SdfGraph
motionGraph(const MotionPipelineParams &p,
            std::vector<mapping::ActorCommSpec> *comm)
{
    checkParams(p);
    mapping::SdfGraph g;
    std::vector<unsigned> mes;
    for (unsigned c = 0; c < p.columns; ++c)
        mes.push_back(g.addActor(strprintf("me-%u", c), MeCost));
    unsigned join =
        g.addActor("join", joinCost(p.columns) * JoinMargin);
    // One iteration = one macroblock group: q = (1, ..., 1).
    for (unsigned me : mes)
        g.addEdge(me, join, 1, 1);

    if (comm) {
        comm->assign(g.numActors(), {});
        for (unsigned me : mes)
            (*comm)[me].words_per_firing = 1;
        // The kernels keep streaming state (table cursors), so none
        // of them parallelize further.
        for (auto &spec : *comm)
            spec.max_parallel = 1;
    }
    return g;
}

std::optional<mapping::ChipPlan>
planMotion(const MotionPipelineParams &p)
{
    std::vector<mapping::ActorCommSpec> comm;
    mapping::SdfGraph g = motionGraph(p, &comm);
    return planApp(g, comm, p.mb_rate_hz / p.columns);
}

DagSpec
motionDag(const MotionPipelineParams &p, const dsp::Image &cur,
          const dsp::Image &ref)
{
    checkParams(p);
    sync_assert(cur.width() == W && cur.height() == H &&
                    ref.width() == W && ref.height() == H,
                "motion: the mapped pipeline is fixed at %ux%u", W,
                H);
    DagSpec spec;
    for (unsigned c = 0; c < p.columns; ++c)
        spec.stages.push_back(meStage(c, p.columns, cur, ref));
    spec.stages.push_back(joinStage(p.columns));
    // Edge order defines the bus lanes: two delivery slots per grid
    // period so a deferred key never waits a whole period behind
    // another shard's.
    for (unsigned c = 0; c < p.columns; ++c)
        spec.edges.push_back(
            {strprintf("me-%u", c), "join", 1, 1, 2});
    return spec;
}

MappedMotionRun
runMappedMotion(const MotionPipelineParams &p)
{
    checkParams(p);
    MappedMotionRun run;
    dsp::Image cur(W, H), ref(W, H);
    motionScene(p, cur, ref);

    auto cands = motionCandidates();
    run.golden_keys = motionGoldenKeys(cur, ref);

    auto plan = planMotion(p);
    if (!plan)
        fatal("motion: no feasible mapping at %.0f macroblocks/s",
              p.mb_rate_hz);

    auto prog = mapping::lowerDag(motionDag(p, cur, ref), *plan,
                                  p.mb_rate_hz / p.columns,
                                  p.slack);

    MappedAppParams hp;
    hp.app = "motion";
    hp.scheduler = p.scheduler;
    hp.parallel_team = p.parallel_team;
    hp.tick_limit = motionTickLimit(p.columns, prog);
    hp.priced_items = MotionMbs;
    MappedApp app(hp, *plan, prog);
    static_cast<MappedAppRun &>(run) = app.run();
    run.achieved_mb_rate_hz = run.achieved_items_per_sec;

    run.output_keys = readMotionOutput(app.chip(), prog);
    run.bit_exact = run.output_keys == run.golden_keys;
    if (!run.bit_exact)
        warn("%s",
             describeMismatch("motion search keys", run.output_keys,
                              run.golden_keys)
                 .c_str());

    unsigned hits = 0;
    for (unsigned g = 0; g < MotionMbs; ++g) {
        uint32_t key = uint32_t(run.output_keys[g]);
        unsigned idx = key & 127;
        dsp::MotionVector mv;
        mv.dx = cands[idx].first;
        mv.dy = cands[idx].second;
        mv.sad = key >> 7;
        run.vectors.push_back(mv);
        hits += mv.dx == p.pan_dx && mv.dy == p.pan_dy;
    }
    run.pan_hit_rate = double(hits) / MotionMbs;
    return run;
}

static mapping::ExplorableApp
explorableMotionImpl(const MotionPipelineParams &p)
{
    checkParams(p);
    auto cur = std::make_shared<dsp::Image>(W, H);
    auto ref = std::make_shared<dsp::Image>(W, H);
    motionScene(p, *cur, *ref);
    auto golden = std::make_shared<std::vector<int32_t>>(
        motionGoldenKeys(*cur, *ref));
    auto plan = planMotion(p);
    if (!plan)
        fatal("motion: no feasible mapping at %.0f macroblocks/s",
              p.mb_rate_hz);

    mapping::ExplorableApp app;
    app.name = "motion";
    app.iterations_per_sec = p.mb_rate_hz / p.columns;
    app.priced_items = MotionMbs;
    app.baseline = *plan;
    // The hooks infer the search-farm width from the candidate plan
    // itself, so one lower() serves every shard variant.
    app.lower = [p, cur, ref](const mapping::ChipPlan &candidate,
                              double rate) {
        MotionPipelineParams q = p;
        q.columns = planColumns(candidate);
        return mapping::lowerDag(motionDag(q, *cur, *ref), candidate,
                                 rate, p.slack);
    };
    app.tick_limit = [](const mapping::ChipPlan &candidate,
                        const mapping::PipelineProgram &prog) {
        return motionTickLimit(planColumns(candidate), prog);
    };
    app.verify = [golden](arch::Chip &chip,
                          const mapping::PipelineProgram &prog) {
        return describeMismatch("motion search keys",
                                readMotionOutput(chip, prog),
                                *golden);
    };

    // Shard variants: the same total macroblock rate spread across
    // a different number of symmetric search columns. Each carries
    // its own AutoMapper plan (per-column demand changes with the
    // width) and per-column iteration rate.
    for (unsigned cols = 1; cols <= MaxMotionColumns; ++cols) {
        if (cols == p.columns || MotionMbs % cols != 0)
            continue;
        MotionPipelineParams q = p;
        q.columns = cols;
        auto vplan = planMotion(q);
        if (!vplan)
            continue;
        app.shard_variants.push_back(
            {strprintf("shards=%u", cols), *vplan,
             p.mb_rate_hz / cols});
    }
    return app;
}

static mapping::LoweredArtifact
verifiableMotionImpl(const MotionPipelineParams &p)
{
    checkParams(p);
    dsp::Image cur(W, H), ref(W, H);
    motionScene(p, cur, ref);
    auto plan = planMotion(p);
    if (!plan)
        fatal("motion: no feasible mapping at %.0f macroblocks/s",
              p.mb_rate_hz);

    mapping::LoweredArtifact art;
    art.name = "motion";
    art.spec = motionDag(p, cur, ref);
    art.plan = *plan;
    art.iterations_per_sec = p.mb_rate_hz / p.columns;
    art.slack = p.slack;
    art.prog = mapping::lowerDag(art.spec, art.plan,
                                 art.iterations_per_sec, art.slack);
    return art;
}

static sim::FleetWorkload
fleetMotionImpl(const MotionPipelineParams &p)
{
    checkParams(p);
    auto base_plan = planMotion(p);
    if (!base_plan)
        fatal("motion: no feasible mapping at %.0f macroblocks/s",
              p.mb_rate_hz);
    auto plan =
        std::make_shared<mapping::ChipPlan>(std::move(*base_plan));

    // The canonical program for the warm-path hooks: the lowering
    // depends only on the app parameters (its images are replaced
    // per item), so one program serves every stream and item.
    const double rate = p.mb_rate_hz / p.columns;
    auto canon = [&] {
        dsp::Image cur(W, H), ref(W, H);
        motionScene(p, cur, ref);
        return mapping::lowerDag(motionDag(p, cur, ref), *plan, rate,
                                 p.slack);
    };
    auto prog =
        std::make_shared<mapping::PipelineProgram>(canon());

    sim::FleetWorkload wl;
    wl.name = "motion";
    wl.tick_limit = motionTickLimit(p.columns, *prog);
    wl.build = [p, plan, rate](SchedulerKind kind) {
        dsp::Image cur(W, H), ref(W, H);
        motionScene(p, cur, ref);
        auto built = mapping::lowerDag(motionDag(p, cur, ref), *plan,
                                       rate, p.slack);
        return buildFleetChip(*plan, built, kind);
    };
    wl.feed = [p, prog](arch::Chip &chip, uint64_t item) {
        MotionPipelineParams q = p;
        q.seed = sim::fleetItemSeed(p.seed, item);
        dsp::Image cur(W, H), ref(W, H);
        motionScene(q, cur, ref);
        refeedImages(chip, *prog, motionDag(q, cur, ref));
    };
    wl.read_output = [prog](arch::Chip &chip) {
        return bytesOfWords(readMotionOutput(chip, *prog));
    };
    wl.golden = [p](uint64_t item) {
        MotionPipelineParams q = p;
        q.seed = sim::fleetItemSeed(p.seed, item);
        dsp::Image cur(W, H), ref(W, H);
        motionScene(q, cur, ref);
        return bytesOfWords(motionGoldenKeys(cur, ref));
    };
    return wl;
}

static power::DvfsAppHooks
dvfsMotionImpl(const MotionPipelineParams &p)
{
    power::DvfsAppHooks h;
    h.name = "motion";
    h.artifact = verifiableMotionImpl(p);
    h.workload = fleetMotionImpl(p);
    h.traffic = sim::TrafficSpec::bursty(p.seed);
    // One SDF iteration searches one macroblock per search column;
    // one item is a whole frame's MotionMbs macroblocks.
    h.iterations_per_item = MotionMbs / p.columns;
    return h;
}

void
detail::registerMotionApp(AppRegistry &reg)
{
    AppDescriptor desc;
    desc.name = "motion";
    desc.make_params = [](const AppTuning &t) {
        MotionPipelineParams p;
        if (t.scheduler)
            p.scheduler = *t.scheduler;
        if (t.parallel_team)
            p.parallel_team = *t.parallel_team;
        if (t.seed)
            p.seed = *t.seed;
        return std::any(p);
    };
    desc.explorable_hook = appHook("motion", &explorableMotionImpl);
    desc.verifiable_hook = appHook("motion", &verifiableMotionImpl);
    desc.fleet_hook = appHook("motion", &fleetMotionImpl);
    desc.dvfs_hook = appHook("motion", &dvfsMotionImpl);
    reg.add(std::move(desc));
}

// Legacy free functions, reduced to registry wrappers.
mapping::ExplorableApp
explorableMotion(const MotionPipelineParams &p)
{
    return AppRegistry::instance().at("motion").explorable(p);
}

mapping::LoweredArtifact
verifiableMotion(const MotionPipelineParams &p)
{
    return AppRegistry::instance().at("motion").verifiable(p);
}

sim::FleetWorkload
fleetMotion(const MotionPipelineParams &p)
{
    return AppRegistry::instance().at("motion").fleet(p);
}

power::DvfsAppHooks
dvfsMotion(const MotionPipelineParams &p)
{
    return AppRegistry::instance().at("motion").dvfs(p);
}

} // namespace synchro::apps
