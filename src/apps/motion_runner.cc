#include "apps/motion_runner.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/log.hh"
#include "common/rng.hh"

namespace synchro::apps
{

using mapping::DagEdgeSpec;
using mapping::DagSpec;
using mapping::DagStage;

namespace
{

constexpr unsigned W = MotionWidth;
constexpr unsigned H = MotionHeight;
constexpr unsigned Mb = MotionMb;
constexpr int R = MotionRange;
constexpr unsigned PadW = W + 2 * R; //!< padded reference stride
constexpr unsigned PadH = H + 2 * R;
constexpr unsigned RefBytes = PadW * PadH;

/** Macroblocks per search column (even/odd shards). */
constexpr unsigned MbsPerCol = MotionMbs / MotionColumns;

// Tile-SRAM layout, search columns: current frame, four byte-shifted
// mirror copies of the padded reference (copy s holds the padded
// bytes starting at byte s, so a candidate row starting at padded
// byte g is 4-byte aligned in copy g % 4), and the per-macroblock
// candidate tables.
constexpr uint32_t MeCur = 0x0000;            //!< W x H bytes
constexpr uint32_t MeRef = 0x0C00;            //!< 4 x RefBytes
constexpr uint32_t MeTab = MeRef + 4 * RefBytes;

/** Table stride per macroblock: cur base + one address per cand. */
constexpr unsigned TabWords = 1 + MotionCands;

// The packed search key is (SAD << 7 | candidate index): the index
// needs the full 7-bit field and the worst-case SAD must leave the
// shifted key positive, or both the chip kernel and the golden
// re-encoding compute wrong argmins while still comparing equal.
static_assert(MotionCands <= 128,
              "candidate index overflows the 7-bit key field");
static_assert(uint64_t(Mb) * Mb * 255 < (uint64_t(1) << 24),
              "worst-case SAD overflows the packed key");

// Tile-SRAM layout, join column.
constexpr uint32_t JoinOut = 0x0000; //!< one packed key per mb

/**
 * Static issue-slot costs per firing (straight-line slots plus loop
 * bodies; zero-overhead loops and the outer firing loop are free,
 * conditional branches pay their one stall). These feed the SDF
 * graph so the AutoMapper's frequency demands match what the
 * simulator will actually execute.
 */
constexpr uint64_t CandCost = 4 + Mb * 14 + 4 + 2 + 1 + 2;
constexpr uint64_t MeCost = 5 + MotionCands * CandCost + 1;
constexpr uint64_t JoinCost = 4;

/**
 * Demand margin for the join: it is pure latency (two lane-tagged
 * reads), and clocking it at its raw throughput demand would make
 * draining the candidate lanes the pipeline's bottleneck.
 */
constexpr unsigned JoinMargin = 16;

void
checkParams(const MotionPipelineParams &p)
{
    if (p.mb_rate_hz <= 0)
        fatal("motion: need a positive macroblock rate");
    if (std::abs(p.pan_dx) > R || std::abs(p.pan_dy) > R)
        fatal("motion: pan (%d, %d) outside the +-%d search range",
              p.pan_dx, p.pan_dy, R);
}

/** Replicate-pad @p img by R pixels on every side. */
dsp::Image
padImage(const dsp::Image &img)
{
    dsp::Image out(PadW, PadH);
    for (unsigned y = 0; y < PadH; ++y)
        for (unsigned x = 0; x < PadW; ++x)
            out(x, y) = img.at(int(x) - R, int(y) - R);
    return out;
}

DagStage
meStage(unsigned which, const dsp::Image &cur,
        const dsp::Image &ref)
{
    DagStage s;
    s.actor = strprintf("me-%u", which);
    s.firings = MbsPerCol;
    s.per_iteration = 1;
    s.prologue = strprintf("        movpi p3, %u\n"
                           "        movi r7, 0\n",
                           MeTab);

    // One firing = one macroblock: walk its candidate table in
    // tie-break order, SAA the 16x16 SAD of each candidate, and keep
    // the minimum packed (SAD << 7 | index) key.
    s.body = strprintf(R"(
        ld.w r0, [p3]+4
        movi r2, -1
        movih r2, 32767
        movi r4, %u
        movi r6, 0
    __cand:
        ld.w r1, [p3]+4
        movp p1, r1
        movp p0, r0
        aclr a0
        lsetup lc1, __row, %u
        ld.w r1, [p0]+4
        ld.w r3, [p1]+4
        saa a0, r1, r3
        ld.w r1, [p0]+4
        ld.w r3, [p1]+4
        saa a0, r1, r3
        ld.w r1, [p0]+4
        ld.w r3, [p1]+4
        saa a0, r1, r3
        ld.w r1, [p0]+4
        ld.w r3, [p1]+4
        saa a0, r1, r3
        paddi p0, %u
        paddi p1, %u
    __row:
        aext r1, a0, 0
        lsli r1, r1, 7
        or r1, r1, r6
        min r2, r2, r1
        addi r6, 1
        addi r4, -1
        cmplt r7, r4
        jcc __cand
        cwr r2, %u
)",
                       MotionCands, Mb, W - Mb, PadW - Mb, which);

    // Current frame and the four alignment mirrors of the padded
    // reference.
    s.images.push_back({MeCur, cur.pixels()});
    dsp::Image padded = padImage(ref);
    for (unsigned shift = 0; shift < 4; ++shift) {
        std::vector<uint8_t> copy(RefBytes, 0);
        for (unsigned b = 0; b + shift < RefBytes; ++b)
            copy[b] = padded.pixels()[b + shift];
        s.images.push_back({MeRef + shift * RefBytes, std::move(copy)});
    }

    // Candidate tables for this shard's macroblocks: [cur mb base,
    // then one padded-reference address per candidate].
    auto cands = motionCandidates();
    std::vector<int32_t> tab;
    tab.reserve(MbsPerCol * TabWords);
    for (unsigned m = 0; m < MbsPerCol; ++m) {
        unsigned g = MotionColumns * m + which;
        unsigned x0 = (g % (W / Mb)) * Mb;
        unsigned y0 = (g / (W / Mb)) * Mb;
        tab.push_back(int32_t(MeCur + y0 * W + x0));
        for (const auto &[dx, dy] : cands) {
            unsigned gx = unsigned(int(x0) + R + dx);
            unsigned gy = unsigned(int(y0) + R + dy);
            unsigned shift = gx % 4;
            tab.push_back(int32_t(MeRef + shift * RefBytes +
                                  gy * PadW + gx - shift));
        }
    }
    std::vector<uint8_t> tab_bytes(tab.size() * 4);
    std::memcpy(tab_bytes.data(), tab.data(), tab_bytes.size());
    s.images.push_back({MeTab, std::move(tab_bytes)});
    return s;
}

DagStage
joinStage()
{
    DagStage s;
    s.actor = "join";
    s.firings = MbsPerCol;
    s.per_iteration = 1;
    s.prologue = strprintf("        movpi p0, %u\n", JoinOut);
    // The best-vector join: interleave the shards' winning keys back
    // into macroblock order, each crd waiting on its own lane.
    s.body = R"(
        crd r0, 0
        st.w r0, [p0]+4
        crd r0, 1
        st.w r0, [p0]+4
)";
    return s;
}

} // namespace

void
motionScene(const MotionPipelineParams &p, dsp::Image &cur,
            dsp::Image &ref)
{
    checkParams(p);
    // A textured scene translated by the pan with a little sensor
    // noise — the same construction the mpeg4_encode example uses.
    auto scene = [&](int dx, int dy, dsp::Image &img) {
        Rng rng(p.seed);
        for (unsigned y = 0; y < H; ++y) {
            for (unsigned x = 0; x < W; ++x) {
                double v =
                    128 + 50 * std::sin((int(x) + dx) / 7.0) +
                    40 * std::cos((int(y) + dy) / 9.0) +
                    20 * std::sin(((int(x) + dx) + (int(y) + dy)) /
                                  5.0);
                v += rng.gauss() * 2.0;
                img(x, y) = uint8_t(
                    std::min(255.0, std::max(0.0, std::round(v))));
            }
        }
    };
    scene(0, 0, ref);
    scene(p.pan_dx, p.pan_dy, cur);
}

std::vector<std::pair<int, int>>
motionCandidates()
{
    std::vector<std::pair<int, int>> cands;
    cands.reserve(MotionCands);
    for (int dy = -R; dy <= R; ++dy)
        for (int dx = -R; dx <= R; ++dx)
            cands.emplace_back(dx, dy);
    // dsp::fullSearch's tie-break order: smaller |v|1, then dy, then
    // dx. Visiting candidates in this order and keeping the strict
    // minimum of (SAD << 7 | index) reproduces its argmin exactly.
    std::stable_sort(cands.begin(), cands.end(),
                     [](const auto &a, const auto &b) {
                         int na = std::abs(a.first) +
                                  std::abs(a.second);
                         int nb = std::abs(b.first) +
                                  std::abs(b.second);
                         if (na != nb)
                             return na < nb;
                         if (a.second != b.second)
                             return a.second < b.second;
                         return a.first < b.first;
                     });
    return cands;
}

mapping::SdfGraph
motionGraph(const MotionPipelineParams &p,
            std::vector<mapping::ActorCommSpec> *comm)
{
    checkParams(p);
    mapping::SdfGraph g;
    unsigned me0 = g.addActor("me-0", MeCost);
    unsigned me1 = g.addActor("me-1", MeCost);
    unsigned join = g.addActor("join", JoinCost * JoinMargin);
    // One iteration = one macroblock pair: q = (1, 1, 1).
    g.addEdge(me0, join, 1, 1);
    g.addEdge(me1, join, 1, 1);

    if (comm) {
        comm->assign(g.numActors(), {});
        (*comm)[me0].words_per_firing = 1;
        (*comm)[me1].words_per_firing = 1;
        // The kernels keep streaming state (table cursors), so none
        // of them parallelize further.
        for (auto &spec : *comm)
            spec.max_parallel = 1;
    }
    return g;
}

std::optional<mapping::ChipPlan>
planMotion(const MotionPipelineParams &p)
{
    std::vector<mapping::ActorCommSpec> comm;
    mapping::SdfGraph g = motionGraph(p, &comm);
    return planApp(g, comm, p.mb_rate_hz / MotionColumns);
}

DagSpec
motionDag(const MotionPipelineParams &p, const dsp::Image &cur,
          const dsp::Image &ref)
{
    checkParams(p);
    sync_assert(cur.width() == W && cur.height() == H &&
                    ref.width() == W && ref.height() == H,
                "motion: the mapped pipeline is fixed at %ux%u", W,
                H);
    DagSpec spec;
    spec.stages = {meStage(0, cur, ref), meStage(1, cur, ref),
                   joinStage()};
    // Edge order defines the bus lanes: two delivery slots per grid
    // period so a deferred key never waits a whole period behind the
    // other shard's.
    spec.edges = {
        {"me-0", "join", 1, 1, 2},
        {"me-1", "join", 1, 1, 2},
    };
    return spec;
}

MappedMotionRun
runMappedMotion(const MotionPipelineParams &p)
{
    checkParams(p);
    MappedMotionRun run;
    dsp::Image cur(W, H), ref(W, H);
    motionScene(p, cur, ref);

    // Golden: dsp::fullSearch per macroblock, re-encoded with the
    // candidate order's packed key for the bit-exact compare.
    auto cands = motionCandidates();
    std::vector<dsp::MotionVector> golden_mvs;
    for (unsigned g = 0; g < MotionMbs; ++g) {
        unsigned x0 = (g % (W / Mb)) * Mb;
        unsigned y0 = (g / (W / Mb)) * Mb;
        dsp::MotionVector mv =
            dsp::fullSearch(cur, ref, x0, y0, R, Mb);
        golden_mvs.push_back(mv);
        unsigned idx = 0;
        while (idx < cands.size() &&
               (cands[idx].first != mv.dx ||
                cands[idx].second != mv.dy))
            ++idx;
        sync_assert(idx < cands.size(), "pan outside search range");
        run.golden_keys.push_back(
            int32_t((mv.sad << 7) | idx));
    }

    auto plan = planMotion(p);
    if (!plan)
        fatal("motion: no feasible mapping at %.0f macroblocks/s",
              p.mb_rate_hz);

    auto prog = mapping::lowerDag(motionDag(p, cur, ref), *plan,
                                  p.mb_rate_hz / MotionColumns,
                                  p.slack);

    MappedAppParams hp;
    hp.app = "motion";
    hp.scheduler = p.scheduler;
    // Generous budget: one key per shard per slot_spacing ticks plus
    // the search itself, with plenty of slack.
    hp.tick_limit =
        Tick(MbsPerCol) * (prog.slot_spacing + MeCost) * 4 +
        1'000'000;
    hp.priced_items = MotionMbs;
    MappedApp app(hp, *plan, prog);
    static_cast<MappedAppRun &>(run) = app.run();
    run.achieved_mb_rate_hz = run.achieved_items_per_sec;

    const auto &join_col = prog.columnFor("join");
    run.output_keys = app.chip()
                          .column(join_col.column)
                          .tile(0)
                          .readMemWords(JoinOut, MotionMbs);
    run.bit_exact = run.output_keys == run.golden_keys;
    if (!run.bit_exact)
        warn("%s",
             describeMismatch("motion search keys", run.output_keys,
                              run.golden_keys)
                 .c_str());

    unsigned hits = 0;
    for (unsigned g = 0; g < MotionMbs; ++g) {
        uint32_t key = uint32_t(run.output_keys[g]);
        unsigned idx = key & 127;
        dsp::MotionVector mv;
        mv.dx = cands[idx].first;
        mv.dy = cands[idx].second;
        mv.sad = key >> 7;
        run.vectors.push_back(mv);
        hits += mv.dx == p.pan_dx && mv.dy == p.pan_dy;
    }
    run.pan_hit_rate = double(hits) / MotionMbs;
    return run;
}

} // namespace synchro::apps
