/**
 * @file
 * The shared scaffolding of every end-to-end mapped application —
 * the Section 4.1 methodology loop that pipeline_runner (DDC),
 * wifi_runner (802.11a), stereo_runner (stereo vision) and
 * motion_runner (MPEG-4 motion estimation) all execute:
 *
 *   1. describe the application as an SDF graph with kernel costs
 *   2. AutoMapper picks tiles, columns, dividers, voltages, ZORM
 *      (planApp)
 *   3. codegen lowers the kernels + transfer schedule onto the plan
 *      (the app's own lowerDag/lowerPipeline call)
 *   4. the chip streams the workload cycle-accurately (MappedApp)
 *   5. outputs are checked bit-exactly against the dsp:: goldens
 *      (describeMismatch reports the first divergence)
 *   6. priceSimulationComparison turns measured activity into the
 *      multi-V vs single-V comparison of Table 4
 *
 * Each app keeps only what is genuinely its own: the SDF graph, the
 * hand-scheduled kernel bodies, how to read its output back out of
 * tile SRAM, and which golden chain to compare against. Everything
 * else — chip construction from the plan, program load, the timed
 * run with drain checking, fabric statistics, achieved-rate pricing
 * — lives here once.
 */

#ifndef SYNC_APPS_APP_HARNESS_HH
#define SYNC_APPS_APP_HARNESS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "arch/chip.hh"
#include "mapping/auto_mapper.hh"
#include "mapping/codegen.hh"
#include "power/activity.hh"

namespace synchro::apps
{

/** Everything the harness needs to run a lowered application. */
struct MappedAppParams
{
    /** Short app name used in fatal()/diagnostic messages. */
    std::string app = "app";

    /** Execution backend. */
    SchedulerKind scheduler = defaultSchedulerKind();

    /**
     * Column team size for the ParallelColumns backend (see
     * arch::ChipConfig::parallel_columns): 0 = automatic, 1 =
     * serial, larger = that many team threads. Ignored by the
     * serial backends.
     */
    unsigned parallel_team = 0;

    /** Tick budget for the run; fatal() if the chip does not drain. */
    Tick tick_limit = 0;

    /**
     * Items (samples, bits, blocks, ...) the run processes; the
     * achieved item rate is priced from this and the final tick
     * count, so the derived per-column frequencies are exactly what
     * this silicon would need to sustain the stream in real time.
     */
    uint64_t priced_items = 0;
};

/** The harness's common slice of a finished mapped-app run. */
struct MappedAppRun
{
    mapping::ChipPlan plan;
    arch::RunResult result{};

    uint64_t ticks = 0;
    uint64_t overruns = 0;
    uint64_t conflicts = 0;
    uint64_t deferrals = 0;
    uint64_t bus_transfers = 0;

    /** Host wall-clock seconds spent inside Chip::run alone. */
    double sim_seconds = 0;

    /** Item throughput the run actually sustained (items/s). */
    double achieved_items_per_sec = 0;

    /** Measured-activity power, multi-V vs single-V (Table 4). */
    power::MeasuredComparison power;

    /** Full chip statistics (for backend cross-checking). */
    std::map<std::string, uint64_t> stats;
};

/**
 * Methodology step 2: map @p graph with the stock power model and
 * supply levels. fatal() on an empty graph (a mapped app must have
 * actors); returns nullopt when no feasible allocation exists.
 */
std::optional<mapping::ChipPlan> planApp(
    const mapping::SdfGraph &graph,
    const std::vector<mapping::ActorCommSpec> &comm,
    double iterations_per_sec);

/**
 * Steps 4-6 around a lowered program: build the chip the plan and
 * program ask for, load it, run it, and on success price the
 * measured activity.
 *
 * The app reads its outputs back out of tile SRAM through chip()
 * after run() — the chip outlives the run precisely for that.
 */
class MappedApp
{
  public:
    /**
     * Builds and loads the chip; the program must fit the plan (it
     * is consumed here — the caller keeps ownership for its own
     * columnFor() lookups).
     */
    MappedApp(const MappedAppParams &params,
              const mapping::ChipPlan &plan,
              const mapping::PipelineProgram &prog);
    ~MappedApp();

    /**
     * Run until every column halts. fatal() (naming the app and the
     * exit reason) if the chip deadlocks or exhausts the tick
     * budget. Fills every MappedAppRun field.
     */
    MappedAppRun run();

    arch::Chip &chip() { return *chip_; }

  private:
    MappedAppParams params_;
    mapping::ChipPlan plan_;
    std::unique_ptr<arch::Chip> chip_;
};

/**
 * Fleet-serving support (sim/fleet.hh): the pieces of MappedApp's
 * chip lifecycle that a FleetWorkload's hooks need individually.
 *
 * buildFleetChip is the COLD path — exactly the chip MappedApp's
 * constructor builds (plan-derived config, program load), returned
 * as the ownable template every stream clone warm-starts from.
 *
 * refeedImages is the per-item warm path: Chip::restart() back to
 * tick 0, wipe the programmed tiles' SRAM, and write @p spec's
 * stage images (matched to columns by actor name). After it, the
 * chip is bit-identical to a fresh buildFleetChip of a program
 * lowered from @p spec — programs, DOU schedules and ZORM settings
 * depend only on the app parameters, never on the input data, so
 * only the images differ between items.
 */
std::unique_ptr<arch::Chip> buildFleetChip(
    const mapping::ChipPlan &plan,
    const mapping::PipelineProgram &prog, SchedulerKind scheduler);

void refeedImages(arch::Chip &chip,
                  const mapping::PipelineProgram &prog,
                  const mapping::DagSpec &spec);

/** Raw little-endian bytes of a halfword/word vector, as tile SRAM
 * stores them — the fleet's output/golden exchange format. */
std::vector<uint8_t> bytesOfHalves(const std::vector<int16_t> &h);
std::vector<uint8_t> bytesOfWords(const std::vector<int32_t> &w);

/**
 * Golden-mismatch reporting: "" when @p got == @p want, otherwise a
 * one-line diagnosis (size divergence, or the first differing index
 * with both values) the runners put in their failure output instead
 * of a bare boolean.
 */
std::string describeMismatch(const std::string &what,
                             const std::vector<uint8_t> &got,
                             const std::vector<uint8_t> &want);
std::string describeMismatch(const std::string &what,
                             const std::vector<int16_t> &got,
                             const std::vector<int16_t> &want);
std::string describeMismatch(const std::string &what,
                             const std::vector<int32_t> &got,
                             const std::vector<int32_t> &want);

} // namespace synchro::apps

#endif // SYNC_APPS_APP_HARNESS_HH
