#include "apps/pipeline_runner.hh"

#include <cmath>
#include <cstring>
#include <memory>

#include "apps/app_registry.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "dsp/cic.hh"
#include "dsp/fir.hh"
#include "dsp/mixer.hh"

namespace synchro::apps
{

using mapping::PipelineStage;

namespace
{

constexpr unsigned CicStages = 5;
constexpr unsigned Decim = 8;
constexpr unsigned LoPeriod = 8; //!< LO at fs/8: tone lands at DC

// Tile-SRAM layout per stage (tile memory starts zeroed, so the CIC
// state arrays need no images).
constexpr uint32_t MixXBase = 0x0000;  //!< input samples
constexpr uint32_t MixLoBase = 0x2000; //!< interleaved LO (re, im)
constexpr uint32_t CicStateBase = 0x0000; //!< 5 I + 5 Q words
constexpr uint32_t FirCoefBase = 0x0000;  //!< reversed taps
constexpr uint32_t FirHistIBase = 0x1000; //!< (taps-1) zeros + I
constexpr uint32_t FirHistQBase = 0x2000;
constexpr uint32_t DemodOutBase = 0x1000; //!< final output halves

std::vector<uint8_t>
halvesToBytes(const std::vector<int16_t> &h)
{
    std::vector<uint8_t> bytes(h.size() * 2);
    std::memcpy(bytes.data(), h.data(), bytes.size());
    return bytes;
}

/** The local oscillator table, one entry per input sample. */
std::vector<CplxQ15>
makeLo(unsigned n)
{
    std::vector<CplxQ15> lo(n);
    for (unsigned i = 0; i < n; ++i) {
        double ph = 2.0 * M_PI * double(i % LoPeriod) / LoPeriod;
        lo[i] = {toQ15(0.98 * std::cos(ph)),
                 toQ15(-0.98 * std::sin(ph))};
    }
    return lo;
}

/** Shared pack/unpack glue: Q in the high half, I in the low half. */
const char *UnpackIq = R"(
        lsli r1, r0, 16
        asri r1, r1, 16
        asri r2, r0, 16
)";
const char *PackIqCwr = R"(
        lsli r2, r2, 16
        lsli r1, r1, 16
        lsri r1, r1, 16
        or r7, r2, r1
        cwr r7
)";

/**
 * Per-firing issue-slot costs of the kernels below, counted
 * statically (straight-line slots plus loop bodies; the zero-overhead
 * loops and the outer firing loop cost nothing). These feed the SDF
 * graph so the AutoMapper's frequency demands match what the
 * simulator will actually execute.
 */
constexpr uint64_t MixerCost = 20;               //!< per sample
constexpr uint64_t IntegCost = 8 * 35 + 1 + 13;  //!< per 8 samples
constexpr uint64_t CombCost = 44;                //!< per output
uint64_t
firCost(unsigned taps)
{
    return 6 + 2 * (4 + 3 * uint64_t(taps) + 4) + 5;
}
constexpr uint64_t DemodCost = 12;

/**
 * Tick budget for one run: generous — the delivery grid paces one
 * sample per slot_spacing ticks, plus pipeline fill and drain.
 */
Tick
ddcTickLimit(const DdcPipelineParams &p,
             const mapping::PipelineProgram &prog)
{
    return Tick(p.samples) * prog.slot_spacing * 8 + 1'000'000;
}

/** The demod output halves, read back from a finished chip. */
std::vector<int16_t>
readDdcOutput(arch::Chip &chip, const mapping::PipelineProgram &prog,
              unsigned outputs)
{
    const auto &demod_col = prog.columnFor("demod");
    return chip.column(demod_col.column)
        .tile(0)
        .readMemHalves(DemodOutBase, outputs);
}

} // namespace

std::vector<int16_t>
ddcInput(const DdcPipelineParams &p)
{
    if (p.samples == 0 || p.samples % Decim != 0 || p.samples > 4088)
        fatal("ddc: samples must be a positive multiple of %u "
              "within the 4095-firing lsetup range",
              Decim);
    Rng rng(p.seed);
    std::vector<int16_t> x(p.samples);
    for (unsigned i = 0; i < p.samples; ++i) {
        double t = double(i);
        // Tone of interest at fs/8 (lands at DC after the mixer),
        // interferer near the CIC's fs/4 null, a little noise.
        double v = 0.45 * std::cos(2.0 * M_PI * t / LoPeriod) +
                   0.22 * std::cos(2.0 * M_PI * 0.26 * t) +
                   0.02 * rng.gauss();
        x[i] = toQ15(v);
    }
    return x;
}

std::vector<int16_t>
ddcGolden(const DdcPipelineParams &p, const std::vector<int16_t> &x)
{
    auto lo = makeLo(unsigned(x.size()));
    auto mixed = dsp::mixBlock(x, lo);

    dsp::CicIntegrator integ_i(CicStages), integ_q(CicStages);
    dsp::CicComb comb_i(CicStages, 1), comb_q(CicStages, 1);
    dsp::FirQ15 fir_i(dsp::designPfir63(0.22)),
        fir_q(dsp::designPfir63(0.22));
    if (p.chan_taps != 63) {
        auto taps = dsp::designLowpassQ15(p.chan_taps, 0.22);
        fir_i = dsp::FirQ15(taps);
        fir_q = dsp::FirQ15(taps);
    }

    std::vector<int16_t> out;
    out.reserve(x.size() / Decim);
    for (size_t n = 0; n < x.size(); ++n) {
        int32_t ai = integ_i.step(mixed[n].re);
        int32_t aq = integ_q.step(mixed[n].im);
        if (n % Decim != Decim - 1)
            continue;
        int16_t si = dsp::cicScaleQ15(ai), sq = dsp::cicScaleQ15(aq);
        int16_t ci = sat16(comb_i.step(si));
        int16_t cq = sat16(comb_q.step(sq));
        int16_t fi = fir_i.step(ci);
        int16_t fq = fir_q.step(cq);
        out.push_back(dsp::powerDemodQ15({fi, fq}));
    }
    return out;
}

mapping::SdfGraph
ddcGraph(const DdcPipelineParams &p,
         std::vector<mapping::ActorCommSpec> *comm)
{
    mapping::SdfGraph g;
    unsigned mixer = g.addActor("mixer", MixerCost);
    unsigned integ = g.addActor("cic-integrator", IntegCost);
    unsigned comb = g.addActor("cic-comb", CombCost);
    unsigned fir = g.addActor("channel-fir", firCost(p.chan_taps));
    unsigned demod = g.addActor("demod", DemodCost);
    g.addEdge(mixer, integ, 1, Decim); // decimate by 8
    g.addEdge(integ, comb, 1, 1);
    g.addEdge(comb, fir, 1, 1);
    g.addEdge(fir, demod, 1, 1);

    if (comm) {
        comm->assign(g.numActors(), {});
        // One packed IQ word per firing; the sequential kernels keep
        // streaming state, so they do not parallelize.
        for (unsigned a : {mixer, integ, comb, fir})
            (*comm)[a].words_per_firing = 1;
        for (auto &spec : *comm)
            spec.max_parallel = 1;
    }
    return g;
}

std::optional<mapping::ChipPlan>
planDdc(const DdcPipelineParams &p)
{
    std::vector<mapping::ActorCommSpec> comm;
    mapping::SdfGraph g = ddcGraph(p, &comm);
    return planApp(g, comm, p.sample_rate_hz / Decim);
}

std::vector<PipelineStage>
ddcStages(const DdcPipelineParams &p, const std::vector<int16_t> &x)
{
    const unsigned n = unsigned(x.size());
    const unsigned outputs = n / Decim;
    const unsigned taps = p.chan_taps;
    sync_assert(taps >= 2 && taps <= 255, "ddc: 2..255 channel taps");

    // ---- mixer: x * LO, packed IQ out --------------------------
    PipelineStage mixer;
    mixer.actor = "mixer";
    mixer.firings = n;
    mixer.per_iteration = Decim;
    mixer.writes_per_firing = 1;
    mixer.prologue = strprintf(R"(
        movpi p0, %u
        movpi p1, %u
        movi r5, 16384
        movi r6, 1
        movi r3, 32767
        movi r4, -32768
)",
                               MixXBase, MixLoBase);
    mixer.body = strprintf(R"(
        ld.h r0, [p0]+2
        ld.h r1, [p1]+2
        ld.h r2, [p1]+2
        aclr a0
        mac a0, r5, r6, ll
        mac a0, r0, r1, ll
        aclr a1
        mac a1, r5, r6, ll
        mac a1, r0, r2, ll
        aext r1, a0, 15
        min r1, r1, r3
        max r1, r1, r4
        aext r2, a1, 15
        min r2, r2, r3
        max r2, r2, r4
%s)",
                           PackIqCwr);
    mixer.images.push_back({MixXBase, halvesToBytes(x)});
    std::vector<int16_t> lo_flat;
    lo_flat.reserve(2 * n);
    for (const auto &s : makeLo(n)) {
        lo_flat.push_back(s.re);
        lo_flat.push_back(s.im);
    }
    mixer.images.push_back({MixLoBase, halvesToBytes(lo_flat)});

    // ---- CIC integrator + decimator ----------------------------
    // Five wrapping int32 integrator stages per channel, state in
    // SRAM; every 8th sample the last stage is scaled by 2^-15 with
    // rounding and shipped.
    std::string integ_chain;
    for (unsigned ch = 0; ch < 2; ++ch) {
        const char *acc = ch == 0 ? "r1" : "r2";
        for (unsigned s = 0; s < CicStages; ++s) {
            integ_chain += strprintf("        ld.w r0, [p0]\n"
                                     "        add %s, %s, r0\n"
                                     "        st.w %s, [p0]+4\n",
                                     acc, acc, acc);
        }
    }
    PipelineStage integ;
    integ.actor = "cic-integrator";
    integ.firings = outputs;
    integ.reads_per_firing = Decim;
    integ.writes_per_firing = 1;
    integ.prologue = R"(
        movi r3, 32767
        movi r4, -32768
)";
    integ.body = strprintf(R"(
        lsetup lc1, __integ8, %u
        crd r0
%s        movpi p0, %u
%s    __integ8:
        addi r1, 16384
        asri r1, r1, 15
        min r1, r1, r3
        max r1, r1, r4
        addi r2, 16384
        asri r2, r2, 15
        min r2, r2, r3
        max r2, r2, r4
%s)",
                           Decim, UnpackIq, CicStateBase,
                           integ_chain.c_str(), PackIqCwr);

    // ---- CIC comb ----------------------------------------------
    std::string comb_chain;
    for (unsigned ch = 0; ch < 2; ++ch) {
        const char *acc = ch == 0 ? "r1" : "r2";
        for (unsigned s = 0; s < CicStages; ++s) {
            comb_chain += strprintf("        ld.w r0, [p0]\n"
                                    "        st.w %s, [p0]+4\n"
                                    "        sub %s, %s, r0\n",
                                    acc, acc, acc);
        }
    }
    PipelineStage comb;
    comb.actor = "cic-comb";
    comb.firings = outputs;
    comb.reads_per_firing = 1;
    comb.writes_per_firing = 1;
    comb.prologue = R"(
        movi r3, 32767
        movi r4, -32768
)";
    comb.body = strprintf(R"(
        crd r0
%s        movpi p0, %u
%s        min r1, r1, r3
        max r1, r1, r4
        min r2, r2, r3
        max r2, r2, r4
%s)",
                          UnpackIq, CicStateBase, comb_chain.c_str(),
                          PackIqCwr);

    // ---- channel FIR -------------------------------------------
    // The runFir idiom per channel: reversed taps walked forward
    // over an append-only padded history window (net +2 per firing).
    auto fir_channel = [&](const char *win, const char *res,
                           const char *lbl) {
        return strprintf(R"(
        movpi p0, %u
        aclr a0
        mac a0, r5, r6, ll
        lsetup lc1, %s, %u
        ld.h r0, [p0]+2
        ld.h %s, [%s]+2
        mac a0, r0, %s, ll
    %s:
        paddi %s, %d
        aext %s, a0, 15
        min %s, %s, r3
        max %s, %s, r4
)",
                         FirCoefBase, lbl, taps, res, win, res, lbl,
                         win, -int(2 * taps - 2), res, res, res, res,
                         res);
    };
    PipelineStage fir;
    fir.actor = "channel-fir";
    fir.firings = outputs;
    fir.reads_per_firing = 1;
    fir.writes_per_firing = 1;
    fir.prologue = strprintf(R"(
        movi r5, 16384
        movi r6, 1
        movi r3, 32767
        movi r4, -32768
        movpi p1, %u
        movpi p2, %u
        movpi p3, %u
        movpi p4, %u
)",
                             FirHistIBase, FirHistQBase,
                             FirHistIBase + 2 * (taps - 1),
                             FirHistQBase + 2 * (taps - 1));
    fir.body = strprintf(R"(
        crd r0
%s        st.h r1, [p3]+2
        st.h r2, [p4]+2
%s%s%s)",
                         UnpackIq,
                         fir_channel("p1", "r1", "__fir_i").c_str(),
                         fir_channel("p2", "r2", "__fir_q").c_str(),
                         PackIqCwr);
    std::vector<int16_t> taps_fwd =
        taps == 63 ? dsp::designPfir63(0.22)
                   : dsp::designLowpassQ15(taps, 0.22);
    std::vector<int16_t> taps_rev(taps_fwd.rbegin(), taps_fwd.rend());
    fir.images.push_back({FirCoefBase, halvesToBytes(taps_rev)});

    // ---- demod: I^2 + Q^2, rounded Q15 -------------------------
    PipelineStage demod;
    demod.actor = "demod";
    demod.firings = outputs;
    demod.reads_per_firing = 1;
    demod.prologue = strprintf(R"(
        movi r5, 16384
        movi r6, 1
        movi r3, 32767
        movi r4, -32768
        movpi p0, %u
)",
                               DemodOutBase);
    demod.body = strprintf(R"(
        crd r0
%s        aclr a0
        mac a0, r5, r6, ll
        mac a0, r1, r1, ll
        mac a0, r2, r2, ll
        aext r1, a0, 15
        min r1, r1, r3
        max r1, r1, r4
        st.h r1, [p0]+2
)",
                           UnpackIq);

    return {mixer, integ, comb, fir, demod};
}

MappedDdcRun
runMappedDdc(const DdcPipelineParams &p)
{
    MappedDdcRun run;
    std::vector<int16_t> x = ddcInput(p);
    run.golden = ddcGolden(p, x);

    auto plan = planDdc(p);
    if (!plan)
        fatal("ddc: no feasible mapping at %.1f MS/s",
              p.sample_rate_hz / 1e6);

    auto prog = mapping::lowerPipeline(ddcStages(p, x), *plan,
                                       p.sample_rate_hz / Decim,
                                       p.slack);

    MappedAppParams hp;
    hp.app = "ddc";
    hp.scheduler = p.scheduler;
    hp.parallel_team = p.parallel_team;
    hp.tick_limit = ddcTickLimit(p, prog);
    hp.priced_items = p.samples;
    MappedApp app(hp, *plan, prog);
    static_cast<MappedAppRun &>(run) = app.run();
    run.achieved_sample_rate_hz = run.achieved_items_per_sec;

    run.output = readDdcOutput(app.chip(), prog, p.samples / Decim);
    run.bit_exact = run.output == run.golden;
    if (!run.bit_exact)
        warn("%s",
             describeMismatch("ddc demod output", run.output,
                              run.golden)
                 .c_str());
    return run;
}

static mapping::ExplorableApp
explorableDdcImpl(const DdcPipelineParams &p)
{
    auto x = std::make_shared<std::vector<int16_t>>(ddcInput(p));
    auto golden =
        std::make_shared<std::vector<int16_t>>(ddcGolden(p, *x));
    auto plan = planDdc(p);
    if (!plan)
        fatal("ddc: no feasible mapping at %.1f MS/s",
              p.sample_rate_hz / 1e6);

    mapping::ExplorableApp app;
    app.name = "ddc";
    app.iterations_per_sec = p.sample_rate_hz / Decim;
    app.priced_items = p.samples;
    app.baseline = *plan;
    app.lower = [p, x](const mapping::ChipPlan &candidate,
                       double rate) {
        return mapping::lowerPipeline(ddcStages(p, *x), candidate,
                                      rate, p.slack);
    };
    app.tick_limit = [p](const mapping::ChipPlan &,
                         const mapping::PipelineProgram &prog) {
        return ddcTickLimit(p, prog);
    };
    app.verify = [p, golden](arch::Chip &chip,
                             const mapping::PipelineProgram &prog) {
        return describeMismatch(
            "ddc demod output",
            readDdcOutput(chip, prog, p.samples / Decim), *golden);
    };
    return app;
}

static mapping::LoweredArtifact
verifiableDdcImpl(const DdcPipelineParams &p)
{
    std::vector<int16_t> x = ddcInput(p);
    auto plan = planDdc(p);
    if (!plan)
        fatal("ddc: no feasible mapping at %.1f MS/s",
              p.sample_rate_hz / 1e6);

    mapping::LoweredArtifact art;
    art.name = "ddc";
    art.spec = mapping::linearDagSpec(ddcStages(p, x));
    art.plan = *plan;
    art.iterations_per_sec = p.sample_rate_hz / Decim;
    art.slack = p.slack;
    art.prog = mapping::lowerPipeline(ddcStages(p, x), art.plan,
                                      art.iterations_per_sec,
                                      art.slack);
    return art;
}

static sim::FleetWorkload
fleetDdcImpl(const DdcPipelineParams &p)
{
    auto base_plan = planDdc(p);
    if (!base_plan)
        fatal("ddc: no feasible mapping at %.1f MS/s",
              p.sample_rate_hz / 1e6);
    auto plan =
        std::make_shared<mapping::ChipPlan>(std::move(*base_plan));

    // The canonical program for the warm-path hooks: the lowering
    // depends only on the app parameters (its images are replaced
    // per item), so one program serves every stream and item.
    auto prog = std::make_shared<mapping::PipelineProgram>(
        mapping::lowerPipeline(ddcStages(p, ddcInput(p)), *plan,
                               p.sample_rate_hz / Decim, p.slack));

    sim::FleetWorkload wl;
    wl.name = "ddc";
    wl.tick_limit = ddcTickLimit(p, *prog);
    wl.build = [p, plan](SchedulerKind kind) {
        auto built = mapping::lowerPipeline(
            ddcStages(p, ddcInput(p)), *plan,
            p.sample_rate_hz / Decim, p.slack);
        return buildFleetChip(*plan, built, kind);
    };
    wl.feed = [p, prog](arch::Chip &chip, uint64_t item) {
        DdcPipelineParams q = p;
        q.seed = sim::fleetItemSeed(p.seed, item);
        refeedImages(
            chip, *prog,
            mapping::linearDagSpec(ddcStages(q, ddcInput(q))));
    };
    wl.read_output = [p, prog](arch::Chip &chip) {
        return bytesOfHalves(
            readDdcOutput(chip, *prog, p.samples / Decim));
    };
    wl.golden = [p](uint64_t item) {
        DdcPipelineParams q = p;
        q.seed = sim::fleetItemSeed(p.seed, item);
        return bytesOfHalves(ddcGolden(q, ddcInput(q)));
    };
    return wl;
}

static power::DvfsAppHooks
dvfsDdcImpl(const DdcPipelineParams &p)
{
    power::DvfsAppHooks h;
    h.name = "ddc";
    h.artifact = verifiableDdcImpl(p);
    h.workload = fleetDdcImpl(p);
    h.traffic = sim::TrafficSpec::bursty(p.seed);
    // One work item = one p.samples-long channel block; the lowering
    // paces one SDF iteration per Decim input samples.
    h.iterations_per_item = p.samples / Decim;
    return h;
}

void
detail::registerDdcApp(AppRegistry &reg)
{
    AppDescriptor desc;
    desc.name = "ddc";
    desc.make_params = [](const AppTuning &t) {
        DdcPipelineParams p;
        if (t.scheduler)
            p.scheduler = *t.scheduler;
        if (t.parallel_team)
            p.parallel_team = *t.parallel_team;
        if (t.seed)
            p.seed = *t.seed;
        return std::any(p);
    };
    desc.explorable_hook = appHook("ddc", &explorableDdcImpl);
    desc.verifiable_hook = appHook("ddc", &verifiableDdcImpl);
    desc.fleet_hook = appHook("ddc", &fleetDdcImpl);
    desc.dvfs_hook = appHook("ddc", &dvfsDdcImpl);
    reg.add(std::move(desc));
}

// Legacy free functions, reduced to registry wrappers.

mapping::ExplorableApp
explorableDdc(const DdcPipelineParams &p)
{
    return AppRegistry::instance().at("ddc").explorable(p);
}

mapping::LoweredArtifact
verifiableDdc(const DdcPipelineParams &p)
{
    return AppRegistry::instance().at("ddc").verifiable(p);
}

sim::FleetWorkload
fleetDdc(const DdcPipelineParams &p)
{
    return AppRegistry::instance().at("ddc").fleet(p);
}

power::DvfsAppHooks
dvfsDdc(const DdcPipelineParams &p)
{
    return AppRegistry::instance().at("ddc").dvfs(p);
}

} // namespace synchro::apps
