#include "apps/app_registry.hh"

namespace synchro::apps
{

mapping::ExplorableApp
AppDescriptor::explorable(const std::any &params) const
{
    if (!explorable_hook)
        fatal("app '%s' has no explorable hook", name.c_str());
    return explorable_hook(params);
}

mapping::LoweredArtifact
AppDescriptor::verifiable(const std::any &params) const
{
    if (!verifiable_hook)
        fatal("app '%s' has no verifiable hook", name.c_str());
    return verifiable_hook(params);
}

sim::FleetWorkload
AppDescriptor::fleet(const std::any &params) const
{
    if (!fleet_hook)
        fatal("app '%s' has no fleet hook", name.c_str());
    return fleet_hook(params);
}

power::DvfsAppHooks
AppDescriptor::dvfs(const std::any &params) const
{
    if (!dvfs_hook)
        fatal("app '%s' has no dvfs hook", name.c_str());
    return dvfs_hook(params);
}

std::any
AppDescriptor::params(const AppTuning &tuning) const
{
    if (!make_params)
        fatal("app '%s' has no params factory", name.c_str());
    return make_params(tuning);
}

AppRegistry &
AppRegistry::instance()
{
    // Lazy, centralized registration: no static-init order to get
    // wrong, nothing for a static-library link to dead-strip.
    static AppRegistry reg = [] {
        AppRegistry r;
        detail::registerDdcApp(r);
        detail::registerWifiApp(r);
        detail::registerStereoApp(r);
        detail::registerMotionApp(r);
        return r;
    }();
    return reg;
}

void
AppRegistry::add(AppDescriptor desc)
{
    if (desc.name.empty())
        fatal("AppRegistry::add: descriptor needs a name");
    apps_[desc.name] = std::move(desc);
}

const AppDescriptor &
AppRegistry::at(const std::string &name) const
{
    auto it = apps_.find(name);
    if (it == apps_.end())
        fatal("AppRegistry: no app named '%s'", name.c_str());
    return it->second;
}

std::vector<std::string>
AppRegistry::names() const
{
    std::vector<std::string> out;
    for (const auto &kv : apps_)
        out.push_back(kv.first);
    return out;
}

} // namespace synchro::apps
