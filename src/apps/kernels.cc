#include "apps/kernels.hh"

#include <cmath>

#include <cstring>

#include "arch/chip.hh"
#include "common/log.hh"
#include "isa/assembler.hh"
#include "mapping/comm_schedule.hh"

namespace synchro::apps::kernels
{

using arch::Chip;
using arch::ChipConfig;
using arch::RunExit;

namespace
{

/** Single-tile chip running @p asm_src to completion. */
struct SingleTile
{
    explicit SingleTile(const std::string &asm_src)
    {
        ChipConfig cfg;
        cfg.dividers = {1};
        cfg.tiles_per_column = 1;
        chip = std::make_unique<Chip>(cfg);
        chip->column(0).controller().loadProgram(
            isa::assemble(asm_src));
    }

    KernelRun
    finish(Tick limit = 50'000'000)
    {
        auto res = chip->run(limit);
        if (res.exit != RunExit::AllHalted)
            fatal("kernel did not halt within %llu ticks",
                  (unsigned long long)limit);
        KernelRun out;
        out.cycles =
            chip->column(0).controller().stats().value("issued") +
            chip->column(0).controller().stats().value(
                "branchStalls") +
            chip->column(0).controller().stats().value("commStalls") +
            chip->column(0).controller().stats().value("zormNops");
        out.bus_transfers = chip->fabric().transfers();
        out.comm_stalls =
            chip->column(0).controller().stats().value("commStalls");
        return out;
    }

    arch::Tile &tile() { return chip->column(0).tile(0); }

    std::unique_ptr<Chip> chip;
};

constexpr uint32_t CoefBase = 0x0000;
constexpr uint32_t InBase = 0x1000;
constexpr uint32_t In2Base = 0x2000;
constexpr uint32_t OutBase = 0x4000;

} // namespace

KernelCost
marginalCost(const KernelRun &small, unsigned n_small,
             const KernelRun &big, unsigned n_big)
{
    sync_assert(n_big > n_small, "need two distinct sizes");
    KernelCost c;
    c.cycles_per_sample = double(big.cycles - small.cycles) /
                          double(n_big - n_small);
    c.overhead_cycles =
        double(small.cycles) - c.cycles_per_sample * n_small;
    return c;
}

KernelRun
runFir(const std::vector<int16_t> &taps,
       const std::vector<int16_t> &x)
{
    const unsigned ntaps = unsigned(taps.size());
    const unsigned n = unsigned(x.size());
    sync_assert(ntaps > 0 && n > 0 && n <= 4095, "fir sizes");

    std::string src = strprintf(R"(
        movpi p0, %u        ; coefficients (reversed)
        movpi p1, %u        ; padded input
        movpi p2, %u        ; output
        movi r5, 16384      ; Q15 rounding bias
        movi r6, 1
        movi r3, 32767
        movi r4, -32768
        lsetup lc0, sample_end, %u
        aclr a0
        mac a0, r5, r6, ll
        lsetup lc1, tap_end, %u
        ld.h r0, [p0]+2
        ld.h r1, [p1]+2
        mac a0, r0, r1, ll
    tap_end:
        aext r2, a0, 15
        min r2, r2, r3
        max r2, r2, r4
        st.h r2, [p2]+2
        movpi p0, %u
        paddi p1, %d
    sample_end:
        halt
    )",
                                 CoefBase, InBase, OutBase, n, ntaps,
                                 CoefBase, -int(2 * ntaps - 2));

    SingleTile st(src);
    std::vector<int16_t> rev(taps.rbegin(), taps.rend());
    st.tile().writeMemHalves(CoefBase, rev);
    std::vector<int16_t> padded(ntaps - 1, 0);
    padded.insert(padded.end(), x.begin(), x.end());
    st.tile().writeMemHalves(InBase, padded);

    KernelRun run = st.finish();
    run.halves = st.tile().readMemHalves(OutBase, n);
    return run;
}

KernelRun
runMixer(const std::vector<int16_t> &x,
         const std::vector<CplxQ15> &lo)
{
    sync_assert(x.size() == lo.size() && !x.empty() &&
                    x.size() <= 4095,
                "mixer sizes");
    const unsigned n = unsigned(x.size());

    std::string src = strprintf(R"(
        movpi p0, %u
        movpi p1, %u
        movpi p2, %u
        movi r5, 16384
        movi r6, 1
        movi r3, 32767
        movi r4, -32768
        lsetup lc0, e, %u
        ld.h r0, [p0]+2     ; x
        ld.h r1, [p1]+2     ; lo_re
        ld.h r2, [p1]+2     ; lo_im
        aclr a0
        mac a0, r5, r6, ll
        mac a0, r0, r1, ll
        aext r1, a0, 15
        min r1, r1, r3
        max r1, r1, r4
        st.h r1, [p2]+2
        aclr a1
        mac a1, r5, r6, ll
        mac a1, r0, r2, ll
        aext r2, a1, 15
        min r2, r2, r3
        max r2, r2, r4
        st.h r2, [p2]+2
    e:
        halt
    )",
                                 InBase, In2Base, OutBase, n);

    SingleTile st(src);
    st.tile().writeMemHalves(InBase, x);
    std::vector<int16_t> lo_flat;
    lo_flat.reserve(2 * n);
    for (const auto &s : lo) {
        lo_flat.push_back(s.re);
        lo_flat.push_back(s.im);
    }
    st.tile().writeMemHalves(In2Base, lo_flat);

    KernelRun run = st.finish();
    run.halves = st.tile().readMemHalves(OutBase, 2 * n);
    return run;
}

KernelRun
runCicIntegrator(const std::vector<int32_t> &x, unsigned stages)
{
    sync_assert(stages >= 1 && stages <= 5, "1..5 stages (r1..r5)");
    sync_assert(!x.empty() && x.size() <= 4095, "cic sizes");
    const unsigned n = unsigned(x.size());

    std::string body;
    for (unsigned s = 1; s <= stages; ++s)
        body += strprintf("        add r%u, r%u, r%u\n", s, s, s - 1);
    std::string zeros;
    for (unsigned s = 1; s <= stages; ++s)
        zeros += strprintf("        movi r%u, 0\n", s);

    std::string src = strprintf(R"(
        movpi p0, %u
        movpi p1, %u
%s
        lsetup lc0, e, %u
        ld.w r0, [p0]+4
%s
        st.w r%u, [p1]+4
    e:
        halt
    )",
                                 InBase, OutBase, zeros.c_str(), n,
                                 body.c_str(), stages);

    SingleTile st(src);
    st.tile().writeMemWords(InBase, x);
    KernelRun run = st.finish();
    run.words = st.tile().readMemWords(OutBase, n);
    return run;
}

KernelRun
runSad16(const std::vector<uint8_t> &a, const std::vector<uint8_t> &b)
{
    sync_assert(a.size() == 256 && b.size() == 256,
                "sad16 wants 16x16 blocks");

    std::string src = strprintf(R"(
        movpi p0, %u
        movpi p1, %u
        movpi p2, %u
        aclr a0
        lsetup lc0, e, 64
        ld.w r0, [p0]+4
        ld.w r1, [p1]+4
        saa a0, r0, r1
    e:
        aext r2, a0, 0
        st.w r2, [p2]
        halt
    )",
                                 InBase, In2Base, OutBase);

    SingleTile st(src);
    st.tile().writeMem(InBase, a.data(), 256);
    st.tile().writeMem(In2Base, b.data(), 256);
    KernelRun run = st.finish();
    run.words = st.tile().readMemWords(OutBase, 1);
    return run;
}

KernelRun
runDct8Rows(const std::vector<int16_t> &x, unsigned rows)
{
    sync_assert(x.size() == size_t(rows) * 8 && rows >= 1 &&
                    rows <= 4095,
                "dct rows");

    // The 8 Q13 cosine rows, matching dsp::dct8x8's first pass.
    std::vector<int16_t> coef(64);
    for (unsigned k = 0; k < 8; ++k) {
        for (unsigned nn = 0; nn < 8; ++nn) {
            double a = k == 0 ? std::sqrt(1.0 / 8.0)
                              : std::sqrt(2.0 / 8.0);
            double v =
                a * std::cos((2.0 * nn + 1.0) * k * M_PI / 16.0);
            coef[k * 8 + nn] = int16_t(std::lround(v * 8192.0));
        }
    }

    std::string macs;
    for (unsigned i = 0; i < 8; ++i) {
        macs += "        ld.h r0, [p0]+2\n"
                "        ld.h r1, [p1]+2\n"
                "        mac a0, r0, r1, ll\n";
    }

    std::string src = strprintf(R"(
        movpi p0, %u        ; coefficient rows
        movpi p1, %u        ; input rows
        movpi p2, %u        ; output
        movi r5, 4096       ; Q13 rounding bias
        movi r6, 1
        movi r3, 32767
        movi r4, -32768
        lsetup lc0, row_end, %u
        movpi p0, %u
        lsetup lc1, k_end, 8
        aclr a0
        mac a0, r5, r6, ll
%s
        aext r2, a0, 13
        min r2, r2, r3
        max r2, r2, r4
        st.h r2, [p2]+2
        paddi p1, -16
    k_end:
        paddi p1, 16
    row_end:
        halt
    )",
                                 CoefBase, InBase, OutBase, rows,
                                 CoefBase, macs.c_str());

    SingleTile st(src);
    st.tile().writeMemHalves(CoefBase, coef);
    st.tile().writeMemHalves(InBase, x);
    KernelRun run = st.finish();
    run.halves = st.tile().readMemHalves(OutBase, rows * 8);
    return run;
}

// ----------------------------------------------------------------
// Distributed 4-tile Viterbi ACS

namespace
{

constexpr uint32_t AcsSend = 0x0000; //!< 32 words, metrics duplicated
constexpr uint32_t AcsRecv = 0x0100; //!< 32 words received
constexpr uint32_t AcsNew = 0x0200;  //!< 16 updated metrics
constexpr uint32_t AcsBm = 0x1000;   //!< per-stage branch metrics

std::string
acsSource(unsigned stages, unsigned pad_nops)
{
    std::string pads;
    for (unsigned i = 0; i < pad_nops; ++i)
        pads += "        nop\n";
    return strprintf(R"(
        movpi p0, %u        ; send buffer (duplicated metrics)
        movpi p1, %u        ; receive buffer write
        movpi p2, %u        ; predecessor reads
        movpi p3, %u        ; branch metric tables
        movpi p4, %u        ; new metrics
        movpi p5, %u        ; send buffer refill
        lsetup lc0, stage_end, %u
        ; -- exchange: every tile streams its 16 metrics twice over
        ;    its bus lane; the DOU routes each copy to one consumer
        lsetup lc1, send_end, 32
        ld.w r7, [p0]+4
        cwr r7
        crd r6
        st.w r6, [p1]+4
    send_end:
        ; -- ACS over this tile's 16 states, predecessors arrive in
        ;    (even, odd) interleaved order so stride-8 reads walk
        ;    each source half linearly
        lsetup lc1, c1_end, 8
        ld.w r0, [p2]+8
        ld.w r1, [p3]+4
        add r0, r0, r1
        ld.w r2, [p2]+8
        ld.w r1, [p3]+4
        add r2, r2, r1
        min r0, r0, r2
        st.w r0, [p4]+4
    c1_end:
        paddi p2, -124
        lsetup lc1, c2_end, 8
        ld.w r0, [p2]+8
        ld.w r1, [p3]+4
        add r0, r0, r1
        ld.w r2, [p2]+8
        ld.w r1, [p3]+4
        add r2, r2, r1
        min r0, r0, r2
        st.w r0, [p4]+4
    c2_end:
        ; -- refill the send buffer with the new metrics, duplicated
        paddi p4, -64
        lsetup lc1, copy_end, 16
        ld.w r0, [p4]+4
        st.w r0, [p5]+4
        st.w r0, [p5]+4
    copy_end:
        paddi p0, -128
        paddi p1, -128
        paddi p2, -132
        paddi p4, -64
        paddi p5, -128
%s
    stage_end:
        halt
    )",
                     AcsSend, AcsRecv, AcsRecv, AcsBm, AcsNew,
                     AcsSend, stages, pads.c_str());
}

struct AcsChip
{
    explicit AcsChip(unsigned stages, unsigned pad_nops)
    {
        ChipConfig cfg;
        cfg.dividers = {1};
        cfg.tiles_per_column = 4;
        chip = std::make_unique<Chip>(cfg);
        isa::Program prog = isa::assemble(acsSource(stages, pad_nops));
        chip->column(0).controller().loadProgram(prog);

        // The first cwr's issue cycle equals its instruction index
        // (straight-line prologue, zero-overhead loops).
        unsigned first_cwr = 0;
        for (unsigned i = 0; i < prog.insts.size(); ++i) {
            if (prog.insts[i].op == isa::Opcode::CWR) {
                first_cwr = i;
                break;
            }
        }
        unsigned slot_a = first_cwr % 8;
        unsigned slot_b = (slot_a + 4) % 8;

        // Slot A: even-source metrics (tiles 0 and 2); slot B: odd
        // sources (tiles 1 and 3). Consumers capture their
        // predecessor halves; undriven lanes still drain.
        mapping::CommSchedule sched;
        sched.period = 8;
        sched.transfers = {
            {slot_a, 0, 0, {0, 2}, false}, // t0 metrics -> t0, t2
            {slot_a, 1, 1, {}, false},     // drain
            {slot_a, 2, 2, {1, 3}, false}, // t2 metrics -> t1, t3
            {slot_a, 3, 3, {}, false},     // drain
            {slot_b, 0, 0, {}, false},     // drain
            {slot_b, 1, 1, {0, 2}, false}, // t1 metrics -> t0, t2
            {slot_b, 2, 2, {}, false},     // drain
            {slot_b, 3, 3, {1, 3}, false}, // t3 metrics -> t1, t3
        };
        chip->column(0).dou().load(mapping::compileSchedule(sched));
    }

    void
    loadState(const std::vector<int32_t> &metrics,
              const std::vector<std::vector<int32_t>> &bm)
    {
        for (unsigned t = 0; t < 4; ++t) {
            arch::Tile &tile = chip->column(0).tile(t);
            std::vector<int32_t> dup;
            for (unsigned i = 0; i < 16; ++i) {
                dup.push_back(metrics[16 * t + i]);
                dup.push_back(metrics[16 * t + i]);
            }
            tile.writeMemWords(AcsSend, dup);
            // Tile t owns states 16t..16t+15: entries [state*2 +
            // tail] = 32 words starting at 32*t per stage.
            std::vector<int32_t> tables;
            for (const auto &stage : bm) {
                for (unsigned i = 0; i < 32; ++i)
                    tables.push_back(stage[32 * t + i]);
            }
            tile.writeMemWords(AcsBm, tables);
        }
    }

    std::unique_ptr<Chip> chip;
};

uint64_t
acsCycles(const Chip &chip)
{
    const auto &st = chip.column(0).controller().stats();
    return st.value("issued") + st.value("branchStalls") +
           st.value("commStalls") + st.value("zormNops");
}

} // namespace

KernelRun
runAcs4(const std::vector<int32_t> &initial,
        const std::vector<std::vector<int32_t>> &branch_metrics)
{
    sync_assert(initial.size() == 64, "need 64 initial metrics");
    for (const auto &stage : branch_metrics)
        sync_assert(stage.size() == 128,
                    "branch metric stages carry 64 states x 2");
    const unsigned stages = unsigned(branch_metrics.size());
    sync_assert(stages >= 1 && stages <= 250, "1..250 stages");

    // Calibrate the per-stage cycle count so each stage spans a
    // multiple of the 8-cycle DOU period; otherwise the second
    // stage's sends land on the wrong schedule slots.
    std::vector<std::vector<int32_t>> dummy(
        2, std::vector<int32_t>(128, 0));
    std::vector<int32_t> zeros(64, 0);
    uint64_t len[2];
    for (unsigned s = 1; s <= 2; ++s) {
        AcsChip probe(s, 0);
        probe.loadState(zeros, {dummy.begin(), dummy.begin() + s});
        auto res = probe.chip->run(1'000'000);
        if (res.exit != RunExit::AllHalted)
            fatal("acs calibration run deadlocked");
        len[s - 1] = acsCycles(*probe.chip);
    }
    uint64_t stage_len = len[1] - len[0];
    unsigned pad = unsigned((8 - stage_len % 8) % 8);

    AcsChip chip(stages, pad);
    chip.loadState(initial, branch_metrics);
    auto res = chip.chip->run(100'000'000);
    if (res.exit != RunExit::AllHalted)
        fatal("acs kernel deadlocked");

    KernelRun run;
    run.cycles = acsCycles(*chip.chip);
    run.bus_transfers = chip.chip->fabric().transfers();
    run.comm_stalls =
        chip.chip->column(0).controller().stats().value("commStalls");
    run.words.resize(64);
    for (unsigned t = 0; t < 4; ++t) {
        auto m = chip.chip->column(0).tile(t).readMemWords(AcsNew, 16);
        std::copy(m.begin(), m.end(), run.words.begin() + 16 * t);
    }
    return run;
}

} // namespace synchro::apps::kernels
