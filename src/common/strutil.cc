#include "common/strutil.hh"

#include <cctype>
#include <cstdlib>

namespace synchro
{

std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

std::string
toLower(const std::string &s)
{
    std::string out = s;
    for (auto &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        size_t pos = s.find(delim, start);
        if (pos == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::vector<std::string>
splitWs(const std::string &s)
{
    std::vector<std::string> out;
    size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        size_t b = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        if (i > b)
            out.push_back(s.substr(b, i - b));
    }
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool
parseInt(const std::string &str, int64_t &out)
{
    std::string s = trim(str);
    if (s.empty())
        return false;
    bool neg = false;
    size_t i = 0;
    if (s[0] == '-' || s[0] == '+') {
        neg = s[0] == '-';
        i = 1;
    }
    if (i >= s.size())
        return false;

    int base = 10;
    if (s.size() - i > 2 && s[i] == '0' &&
        (s[i + 1] == 'x' || s[i + 1] == 'X')) {
        base = 16;
        i += 2;
    } else if (s.size() - i > 2 && s[i] == '0' &&
               (s[i + 1] == 'b' || s[i + 1] == 'B')) {
        base = 2;
        i += 2;
    }

    int64_t value = 0;
    bool any = false;
    for (; i < s.size(); ++i) {
        char c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(s[i])));
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = 10 + (c - 'a');
        else
            return false;
        if (digit >= base)
            return false;
        value = value * base + digit;
        any = true;
    }
    if (!any)
        return false;
    out = neg ? -value : value;
    return true;
}

} // namespace synchro
