/**
 * @file
 * Lightweight named statistics registry. Architecture components
 * register scalar counters; benches and tests read them back by name.
 */

#ifndef SYNC_COMMON_STATS_HH
#define SYNC_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace synchro
{

/** A monotonically increasing 64-bit event counter. */
class Counter
{
  public:
    Counter() = default;

    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    void operator+=(uint64_t n) { value_ += n; }
    uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

/**
 * A flat group of named counters. Components own a StatGroup and
 * register their counters under dotted names (e.g. "tile0.busyCycles").
 */
class StatGroup
{
  public:
    /** Register (or fetch) a counter under @p name. */
    Counter &
    counter(const std::string &name)
    {
        return counters_[name];
    }

    /** Read a counter's value; 0 if never registered. */
    uint64_t
    value(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second.value();
    }

    bool
    has(const std::string &name) const
    {
        return counters_.count(name) != 0;
    }

    void
    resetAll()
    {
        for (auto &kv : counters_)
            kv.second.reset();
    }

    const std::map<std::string, Counter> &all() const { return counters_; }

    void
    dump(std::ostream &os) const
    {
        for (const auto &kv : counters_)
            os << kv.first << " " << kv.second.value() << "\n";
    }

  private:
    std::map<std::string, Counter> counters_;
};

} // namespace synchro

#endif // SYNC_COMMON_STATS_HH
