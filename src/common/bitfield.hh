/**
 * @file
 * Bit-manipulation helpers used by the ISA encoder/decoder and the DOU
 * state-word packing.
 */

#ifndef SYNC_COMMON_BITFIELD_HH
#define SYNC_COMMON_BITFIELD_HH

#include <cstdint>
#include <type_traits>

namespace synchro
{

/** Mask of the low @p n bits (n in [0, 64]). */
constexpr uint64_t
mask(unsigned n)
{
    return n >= 64 ? ~uint64_t(0) : (uint64_t(1) << n) - 1;
}

/**
 * Extract bits [last:first] (inclusive) of @p val. A malformed range
 * (last < first, or first >= 64) extracts nothing instead of hitting
 * the undefined behaviour of an oversized shift.
 */
constexpr uint64_t
bits(uint64_t val, unsigned last, unsigned first)
{
    return (last < first || first >= 64)
               ? 0
               : (val >> first) & mask(last - first + 1);
}

/** Extract a single bit. */
constexpr uint64_t
bits(uint64_t val, unsigned bit)
{
    return bits(val, bit, bit);
}

/**
 * Return @p val with bits [last:first] replaced by @p field. A
 * malformed range (last < first, or first >= 64) replaces nothing.
 */
constexpr uint64_t
insertBits(uint64_t val, unsigned last, unsigned first, uint64_t field)
{
    if (last < first || first >= 64)
        return val;
    uint64_t m = mask(last - first + 1) << first;
    return (val & ~m) | ((field << first) & m);
}

/**
 * Sign-extend the low @p n bits of @p val to 64 bits. n == 0 yields
 * 0 and n >= 64 yields the value unchanged; both previously shifted
 * by an out-of-range amount (undefined behaviour).
 */
constexpr int64_t
sext(uint64_t val, unsigned n)
{
    if (n == 0)
        return 0;
    if (n >= 64)
        return int64_t(val);
    uint64_t sign = uint64_t(1) << (n - 1);
    uint64_t v = val & mask(n);
    return int64_t((v ^ sign) - sign);
}

/** Count of set bits. */
constexpr unsigned
popCount(uint64_t val)
{
    return static_cast<unsigned>(__builtin_popcountll(val));
}

/** True if @p val is a power of two (0 excluded). */
constexpr bool
isPowerOf2(uint64_t val)
{
    return val != 0 && (val & (val - 1)) == 0;
}

/** ceil(a / b) for positive integers. */
template <typename T>
constexpr T
divCeil(T a, T b)
{
    static_assert(std::is_integral_v<T>);
    return (a + b - 1) / b;
}

} // namespace synchro

#endif // SYNC_COMMON_BITFIELD_HH
