/**
 * @file
 * Fixed-point arithmetic helpers shared by the DSP golden kernels and
 * the tile datapath model. The Blackfin-style tiles operate on 16-bit
 * fractional (Q15) and 32-bit (Q31) data with 40-bit accumulation.
 */

#ifndef SYNC_COMMON_FIXED_HH
#define SYNC_COMMON_FIXED_HH

#include <algorithm>
#include <cstdint>

namespace synchro
{

/** Saturate a wide value into the signed 16-bit range. */
constexpr int16_t
sat16(int64_t v)
{
    return static_cast<int16_t>(std::clamp<int64_t>(v, INT16_MIN, INT16_MAX));
}

/** Saturate a wide value into the signed 32-bit range. */
constexpr int32_t
sat32(int64_t v)
{
    return static_cast<int32_t>(std::clamp<int64_t>(v, INT32_MIN, INT32_MAX));
}

/** Saturate into the signed 40-bit accumulator range. */
constexpr int64_t
sat40(int64_t v)
{
    constexpr int64_t lo = -(int64_t(1) << 39);
    constexpr int64_t hi = (int64_t(1) << 39) - 1;
    return std::clamp(v, lo, hi);
}

/** Convert a double in [-1, 1) to Q15. */
constexpr int16_t
toQ15(double v)
{
    return sat16(static_cast<int64_t>(v * 32768.0 + (v >= 0 ? 0.5 : -0.5)));
}

/** Convert Q15 to double. */
constexpr double
fromQ15(int16_t v)
{
    return static_cast<double>(v) / 32768.0;
}

/** Q15 x Q15 -> Q15 with rounding (matches fract16 multiply). */
constexpr int16_t
mulQ15(int16_t a, int16_t b)
{
    int32_t p = int32_t(a) * int32_t(b); // Q30
    return sat16((int64_t(p) + (1 << 14)) >> 15);
}

/** Q15 saturating add. */
constexpr int16_t
addQ15(int16_t a, int16_t b)
{
    return sat16(int64_t(a) + int64_t(b));
}

/** A complex Q15 sample (interleaved I/Q), the DDC/OFDM data type. */
struct CplxQ15
{
    int16_t re = 0;
    int16_t im = 0;

    friend constexpr bool
    operator==(const CplxQ15 &a, const CplxQ15 &b)
    {
        return a.re == b.re && a.im == b.im;
    }
};

/** Complex Q15 multiply with Q15 result (rounded). */
constexpr CplxQ15
mulCplxQ15(CplxQ15 a, CplxQ15 b)
{
    int32_t re = int32_t(a.re) * b.re - int32_t(a.im) * b.im; // Q30
    int32_t im = int32_t(a.re) * b.im + int32_t(a.im) * b.re;
    return {sat16((int64_t(re) + (1 << 14)) >> 15),
            sat16((int64_t(im) + (1 << 14)) >> 15)};
}

} // namespace synchro

#endif // SYNC_COMMON_FIXED_HH
