#include "common/log.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace synchro
{

namespace
{
bool throw_on_error = true;
bool quiet = false;
} // namespace

void
setThrowOnError(bool t)
{
    throw_on_error = t;
}

bool
throwOnError()
{
    return throw_on_error;
}

void
setQuiet(bool q)
{
    quiet = q;
}

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n < 0)
        return "<format error>";
    std::vector<char> buf(n + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), n);
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    if (throw_on_error)
        throw PanicError("panic: " + msg);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    if (throw_on_error)
        throw FatalError("fatal: " + msg);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace synchro
