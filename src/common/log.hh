/**
 * @file
 * Logging and error-reporting primitives in the gem5 idiom.
 *
 * panic()  — an internal invariant was violated (a bug in this library);
 *            aborts so a debugger/core dump can capture state.
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, malformed assembly, ...); exits(1).
 * warn()   — something is suspicious but the run can continue.
 * inform() — neutral status output.
 *
 * All take printf-style format strings.
 */

#ifndef SYNC_COMMON_LOG_HH
#define SYNC_COMMON_LOG_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace synchro
{

/** Exception carrying a fatal (user-error) condition. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Exception carrying a panic (internal-bug) condition. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/**
 * When true (the default for library use and tests), panic() and
 * fatal() throw PanicError/FatalError instead of terminating the
 * process. Command-line tools may set this to false to get the
 * classic abort()/exit(1) behaviour.
 */
void setThrowOnError(bool throw_on_error);
bool throwOnError();

/** Format a printf-style message into a std::string. */
std::string vstrprintf(const char *fmt, va_list ap);
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Suppress warn()/inform() output (tests use this). */
void setQuiet(bool quiet);

/** panic() unless the condition holds. */
#define sync_assert(cond, ...)                                          \
    do {                                                                \
        if (!(cond))                                                    \
            ::synchro::panic("assertion '%s' failed: %s", #cond,           \
                          ::synchro::strprintf(__VA_ARGS__).c_str());      \
    } while (0)

} // namespace synchro

#endif // SYNC_COMMON_LOG_HH
