/**
 * @file
 * Small string utilities used by the assembler and table printers.
 */

#ifndef SYNC_COMMON_STRUTIL_HH
#define SYNC_COMMON_STRUTIL_HH

#include <string>
#include <vector>

namespace synchro
{

/** Strip leading/trailing whitespace. */
std::string trim(const std::string &s);

/** Lower-case an ASCII string. */
std::string toLower(const std::string &s);

/** Split on a delimiter character; empty fields are preserved. */
std::vector<std::string> split(const std::string &s, char delim);

/** Split on runs of whitespace; empty fields are dropped. */
std::vector<std::string> splitWs(const std::string &s);

/** True if @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/**
 * Parse an integer literal (decimal, 0x hex, or 0b binary, optional
 * leading '-'). Returns false on malformed input.
 */
bool parseInt(const std::string &s, int64_t &out);

} // namespace synchro

#endif // SYNC_COMMON_STRUTIL_HH
