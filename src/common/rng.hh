/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**) used by
 * workload generators and tests. Seeded explicitly so every experiment
 * is reproducible run-to-run.
 */

#ifndef SYNC_COMMON_RNG_HH
#define SYNC_COMMON_RNG_HH

#include <cmath>
#include <cstdint>

namespace synchro
{

class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    void
    reseed(uint64_t seed)
    {
        // SplitMix64 expansion of the seed into the xoshiro state.
        uint64_t x = seed;
        for (auto &word : s_) {
            x += 0x9e3779b97f4a7c15ull;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    uint64_t
    next()
    {
        uint64_t result = rotl(s_[1] * 5, 7) * 9;
        uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). */
    uint64_t
    below(uint64_t bound)
    {
        return bound ? next() % bound : 0;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + int64_t(below(uint64_t(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return double(next() >> 11) * 0x1.0p-53;
    }

    /** Standard normal via Box-Muller. */
    double
    gauss()
    {
        double u1 = uniform();
        double u2 = uniform();
        if (u1 < 1e-300)
            u1 = 1e-300;
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * M_PI * u2);
    }

    /** Bernoulli with probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t s_[4];
};

} // namespace synchro

#endif // SYNC_COMMON_RNG_HH
