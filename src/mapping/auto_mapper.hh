/**
 * @file
 * Automated application mapping — the paper's stated future work
 * ("Future work will focus on a software tool chain to automate and
 * optimize application parallelization and communication
 * scheduling", Section 7).
 *
 * The AutoMapper consumes an SDF task graph annotated with per-firing
 * cycle costs and a target sample rate, and produces a complete chip
 * configuration: per-actor tile counts (power-optimal, via the DP
 * optimizer), column assignments with integer clock dividers off the
 * reference PLL, supply voltages from the quantized level table, ZORM
 * settings that close the residual rate gap exactly, and the SDF
 * feasibility certificates (consistency, deadlock freedom, buffer
 * bounds).
 */

#ifndef SYNC_MAPPING_AUTO_MAPPER_HH
#define SYNC_MAPPING_AUTO_MAPPER_HH

#include <optional>
#include <string>
#include <vector>

#include "mapping/optimizer.hh"
#include "mapping/rate_match.hh"
#include "mapping/sdf.hh"
#include "mapping/workload.hh"
#include "power/system_power.hh"
#include "power/vf_model.hh"

namespace synchro::mapping
{

/** Per-actor communication annotation (bus words per firing). */
struct ActorCommSpec
{
    double words_per_firing = 0;
    CommScaling scaling = CommScaling::Constant;
    unsigned max_parallel = 64;
    unsigned divisor_of = 0;
};

/** One actor's placement in the produced configuration. */
struct ActorPlacement
{
    std::string actor;
    unsigned tiles = 0;
    unsigned first_column = 0; //!< columns are allocated contiguously
    unsigned columns = 0;      //!< ceil(tiles / 4)
    unsigned divider = 1;      //!< reference-clock divider
    double f_column_mhz = 0;   //!< resulting column frequency
    double f_needed_mhz = 0;   //!< demand the divider must cover
    double v = 0;
    ZormSetting zorm;          //!< pads f_column down to f_needed
};

/** The complete mapping result. */
struct ChipPlan
{
    double ref_freq_mhz = 0;
    std::vector<ActorPlacement> placements;
    power::PowerBreakdown power;
    power::PowerBreakdown single_voltage;
    std::vector<uint64_t> repetition; //!< SDF repetition vector
    std::vector<uint64_t> buffer_bounds;
    unsigned total_tiles = 0;
    unsigned total_columns = 0;

    /** Per-column divider list, ready for arch::ChipConfig. */
    std::vector<unsigned> dividers() const;

    /** Human-readable mapping report. */
    std::string report() const;
};

class AutoMapper
{
  public:
    /**
     * @param ref_freq_mhz the PLL reference (maximum) frequency;
     *        column clocks are integer dividers of it
     */
    AutoMapper(const power::SystemPowerModel &model,
               const power::SupplyLevels &levels,
               double ref_freq_mhz = 600.0)
        : model_(model), levels_(levels), ref_mhz_(ref_freq_mhz),
          opt_(model, levels)
    {}

    /**
     * Map @p graph onto a chip sustaining @p iterations_per_sec SDF
     * iterations per second (one iteration = one input sample for
     * single-rate sources). @p comm gives per-actor bus annotations
     * (defaults: no traffic, fully parallelizable). @p tile_budget
     * caps the total tiles (0 = unlimited up to 64 per actor).
     *
     * Returns nullopt when the graph is inconsistent, deadlocked, or
     * no feasible allocation exists.
     */
    std::optional<ChipPlan> map(
        const SdfGraph &graph, double iterations_per_sec,
        const std::vector<ActorCommSpec> &comm = {},
        unsigned tile_budget = 0) const;

  private:
    const power::SystemPowerModel &model_;
    const power::SupplyLevels &levels_;
    double ref_mhz_;
    Optimizer opt_;
};

} // namespace synchro::mapping

#endif // SYNC_MAPPING_AUTO_MAPPER_HH
