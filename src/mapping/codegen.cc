#include "mapping/codegen.hh"

#include <algorithm>
#include <cmath>

#include "arch/chip.hh"
#include "common/log.hh"

namespace synchro::mapping
{

namespace
{

const ActorPlacement &
placementFor(const ChipPlan &plan, const std::string &actor)
{
    for (const auto &p : plan.placements) {
        if (p.actor == actor)
            return p;
    }
    fatal("codegen: actor '%s' has no placement in the chip plan",
          actor.c_str());
}

/** Wrap one firing body into a complete column program. */
isa::Program
stitchProgram(const PipelineStage &stage)
{
    if (stage.firings == 0 || stage.firings > 4095) {
        fatal("codegen: stage '%s' needs 1..4095 firings "
              "(lsetup range), got %llu",
              stage.actor.c_str(),
              (unsigned long long)stage.firings);
    }
    std::string src = stage.prologue;
    src += strprintf("\n        lsetup lc0, __fire_end, %llu\n",
                     (unsigned long long)stage.firings);
    src += stage.body;
    src += "\n    __fire_end:\n        halt\n";
    return isa::assemble(src);
}

} // namespace

void
PipelineProgram::load(arch::Chip &chip) const
{
    sync_assert(chip.numColumns() >= total_columns,
                "pipeline needs %u columns; chip has %u",
                total_columns, chip.numColumns());
    for (const auto &col : columns) {
        arch::Column &c = chip.column(col.column);
        c.controller().loadProgram(col.program);
        c.controller().setRateMatch(col.zorm.nops, col.zorm.period);
        c.dou().load(col.dou);
        for (const auto &[addr, bytes] : col.images)
            c.tile(0).writeMem(addr, bytes.data(),
                               uint32_t(bytes.size()));
        // The kernels are sequential: one tile per column does the
        // work, the rest are supply-gated (paper Section 2.2).
        for (unsigned t = 1; t < c.numTiles(); ++t)
            c.setTileActive(t, false);
    }
}

const ColumnProgram &
PipelineProgram::columnFor(const std::string &actor) const
{
    for (const auto &col : columns) {
        if (col.actor == actor)
            return col;
    }
    fatal("pipeline program has no column for actor '%s'",
          actor.c_str());
}

PipelineProgram
lowerPipeline(const std::vector<PipelineStage> &stages,
              const ChipPlan &plan, double iterations_per_sec,
              double slack)
{
    if (stages.size() < 2)
        fatal("codegen: a pipeline needs at least two stages");
    if (iterations_per_sec <= 0 || slack < 1.0)
        fatal("codegen: need a positive rate and slack >= 1");
    if (stages.front().reads_per_firing != 0)
        fatal("codegen: source stage '%s' cannot read upstream",
              stages.front().actor.c_str());
    if (stages.back().writes_per_firing != 0)
        fatal("codegen: sink stage '%s' cannot write downstream",
              stages.back().actor.c_str());

    // Every stage must describe the same number of SDF iterations,
    // and adjacent stages must balance their edge token rates —
    // the balance equations of Section 2.1, checked on the code.
    if (stages[0].per_iteration == 0)
        fatal("codegen: stage '%s' fires zero times per iteration",
              stages[0].actor.c_str());
    const uint64_t iters = stages[0].firings / stages[0].per_iteration;
    for (const auto &s : stages) {
        if (s.per_iteration == 0 || s.firings % s.per_iteration != 0 ||
            s.firings / s.per_iteration != iters) {
            fatal("codegen: stage '%s' firing count %llu does not "
                  "describe %llu iterations of %llu firings each",
                  s.actor.c_str(), (unsigned long long)s.firings,
                  (unsigned long long)iters,
                  (unsigned long long)s.per_iteration);
        }
    }
    const size_t n_edges = stages.size() - 1;
    uint64_t max_words = 0;
    for (size_t e = 0; e < n_edges; ++e) {
        const PipelineStage &src = stages[e];
        const PipelineStage &dst = stages[e + 1];
        if (src.writes_per_firing == 0 || dst.reads_per_firing == 0)
            fatal("codegen: edge %zu (%s -> %s) carries no data",
                  e, src.actor.c_str(), dst.actor.c_str());
        uint64_t w_src = src.writes_per_firing * src.per_iteration;
        uint64_t w_dst = dst.reads_per_firing * dst.per_iteration;
        if (w_src != w_dst) {
            fatal("codegen: edge %s -> %s is rate-inconsistent "
                  "(%llu produced vs %llu consumed per iteration)",
                  src.actor.c_str(), dst.actor.c_str(),
                  (unsigned long long)w_src,
                  (unsigned long long)w_dst);
        }
        max_words = std::max(max_words, w_src);
    }
    if (n_edges > arch::BusLanes)
        fatal("codegen: %zu chain edges exceed the %u bus lanes",
              n_edges, arch::BusLanes);

    // Delivery grid: every edge gets one drive/capture slot per G
    // bus cycles — capacity of max_words tokens per edge per stretched
    // iteration window, phase-staggered by edge index so each
    // column's DOU pattern stays two-gap regular.
    const double ref_hz = plan.ref_freq_mhz * 1e6;
    uint64_t spacing = uint64_t(
        ref_hz * slack / (iterations_per_sec * double(max_words)));
    if (spacing <= n_edges)
        fatal("codegen: delivery grid spacing %llu too tight for "
              "%zu staggered edges (rate too high for the "
              "reference clock)",
              (unsigned long long)spacing, n_edges);
    const unsigned G = unsigned(std::min<uint64_t>(spacing, 1u << 20));
    const unsigned period = unsigned(max_words) * G;

    PipelineProgram out;
    out.total_columns = plan.total_columns;
    out.period = period;
    out.slot_spacing = G;

    // One CommSchedule per programmed column; edge e rides lane e.
    std::vector<CommSchedule> scheds(stages.size());
    for (auto &s : scheds)
        s.period = period;
    for (size_t e = 0; e < n_edges; ++e) {
        out.lanes.push_back(unsigned(e));
        for (uint64_t k = 0; k < max_words; ++k) {
            unsigned off = unsigned(e + k * G);
            Transfer drive;
            drive.offset = off;
            drive.lane = unsigned(e);
            drive.src_tile = 0;
            drive.to_horizontal = true;
            scheds[e].transfers.push_back(drive);
            Transfer capture;
            capture.offset = off;
            capture.lane = unsigned(e);
            capture.src_tile = -1; // from the horizontal bus
            capture.dst_tiles = {0};
            scheds[e + 1].transfers.push_back(capture);
        }
    }

    for (size_t i = 0; i < stages.size(); ++i) {
        const PipelineStage &stage = stages[i];
        const ActorPlacement &p = placementFor(plan, stage.actor);
        // The kernels are sequential single-column programs; a plan
        // that provisioned parallel columns/tiles (max_parallel > 1)
        // would silently run at a fraction of its planned rate, so
        // reject it instead of under-delivering.
        if (p.columns != 1 || p.tiles != 1) {
            fatal("codegen: actor '%s' planned across %u columns / "
                  "%u tiles; pipeline kernels are single-column "
                  "(map with max_parallel = 1)",
                  stage.actor.c_str(), p.columns, p.tiles);
        }
        ColumnProgram col;
        col.column = p.first_column;
        col.actor = stage.actor;
        col.program = stitchProgram(stage);
        col.schedule = scheds[i];
        col.dou = compileSchedule(col.schedule);
        col.zorm = p.zorm;
        col.images = stage.images;
        out.columns.push_back(std::move(col));
    }

    // Placements must not share columns (a column runs one actor).
    for (size_t a = 0; a < out.columns.size(); ++a) {
        for (size_t b = a + 1; b < out.columns.size(); ++b) {
            if (out.columns[a].column == out.columns[b].column)
                fatal("codegen: actors '%s' and '%s' both placed on "
                      "column %u",
                      out.columns[a].actor.c_str(),
                      out.columns[b].actor.c_str(),
                      out.columns[a].column);
        }
    }
    return out;
}

} // namespace synchro::mapping
