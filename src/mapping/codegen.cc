#include "mapping/codegen.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>

#include "arch/chip.hh"
#include "common/log.hh"
#include "mapping/verifier.hh"

namespace synchro::mapping
{

namespace
{

const ActorPlacement &
placementFor(const ChipPlan &plan, const std::string &actor)
{
    for (const auto &p : plan.placements) {
        if (p.actor == actor)
            return p;
    }
    fatal("codegen: actor '%s' has no placement in the chip plan",
          actor.c_str());
}

/** Wrap one firing body into a complete column program. */
isa::Program
stitchProgram(const DagStage &stage)
{
    if (stage.firings == 0 || stage.firings > 4095) {
        fatal("codegen: stage '%s' needs 1..4095 firings "
              "(lsetup range), got %llu",
              stage.actor.c_str(),
              (unsigned long long)stage.firings);
    }
    std::string src = stage.prologue;
    src += strprintf("\n        lsetup lc0, __fire_end, %llu\n",
                     (unsigned long long)stage.firings);
    src += stage.body;
    src += "\n    __fire_end:\n        halt\n";
    return isa::assemble(src);
}

/** Stage index of @p actor in the spec; fatal() if absent. */
size_t
stageIndex(const std::map<std::string, size_t> &idx,
           const std::string &actor, const char *role)
{
    auto it = idx.find(actor);
    if (it == idx.end())
        fatal("codegen: edge %s '%s' is not a stage of the DAG",
              role, actor.c_str());
    return it->second;
}

} // namespace

void
PipelineProgram::load(arch::Chip &chip) const
{
    sync_assert(chip.numColumns() >= total_columns,
                "pipeline needs %u columns; chip has %u",
                total_columns, chip.numColumns());
    sync_assert(chip.fabric().selfTimed() == self_timed,
                "pipeline program wants a %s bus; build the chip "
                "with ChipConfig::self_timed_bus = %s",
                self_timed ? "self-timed" : "legacy",
                self_timed ? "true" : "false");
    for (const auto &col : columns) {
        arch::Column &c = chip.column(col.column);
        c.controller().loadProgram(col.program);
        c.controller().setRateMatch(col.zorm.nops, col.zorm.period);
        c.dou().load(col.dou);
        for (const auto &[addr, bytes] : col.images)
            c.tile(0).writeMem(addr, bytes.data(),
                               uint32_t(bytes.size()));
        // The kernels are sequential: one tile per column does the
        // work, the rest are supply-gated (paper Section 2.2).
        for (unsigned t = 1; t < c.numTiles(); ++t)
            c.setTileActive(t, false);
    }
}

const ColumnProgram &
PipelineProgram::columnFor(const std::string &actor) const
{
    for (const auto &col : columns) {
        if (col.actor == actor)
            return col;
    }
    fatal("pipeline program has no column for actor '%s'",
          actor.c_str());
}

/**
 * The static verifier gate every lowering passes through: a lowered
 * artifact with a provable safety violation never reaches a chip.
 */
static void
gateLowered(const DagSpec &spec, const ChipPlan &plan,
            const PipelineProgram &prog, double iterations_per_sec,
            double slack)
{
    VerifyReport rep =
        verifyLowered(spec, plan, prog, iterations_per_sec, slack);
    if (!rep.ok())
        fatal("codegen: statically rejected: %s",
              rep.errorSummary().c_str());
}

/** lowerDag() minus the verifier gate (shared with lowerPipeline). */
static PipelineProgram
lowerDagImpl(const DagSpec &spec, const ChipPlan &plan,
             double iterations_per_sec, double slack)
{
    const std::vector<DagStage> &stages = spec.stages;
    if (stages.size() < 2)
        fatal("codegen: a pipeline needs at least two stages");
    if (iterations_per_sec <= 0 || slack < 1.0)
        fatal("codegen: need a positive rate and slack >= 1");
    if (spec.edges.empty())
        fatal("codegen: a DAG pipeline needs at least one edge");

    std::map<std::string, size_t> idx;
    for (size_t i = 0; i < stages.size(); ++i) {
        if (!idx.emplace(stages[i].actor, i).second)
            fatal("codegen: duplicate stage '%s'",
                  stages[i].actor.c_str());
    }

    // Every stage must describe the same number of SDF iterations —
    // the balance equations of Section 2.1, checked on the code.
    if (stages[0].per_iteration == 0)
        fatal("codegen: stage '%s' fires zero times per iteration",
              stages[0].actor.c_str());
    const uint64_t iters = stages[0].firings / stages[0].per_iteration;
    for (const auto &s : stages) {
        if (s.per_iteration == 0 || s.firings % s.per_iteration != 0 ||
            s.firings / s.per_iteration != iters) {
            fatal("codegen: stage '%s' firing count %llu does not "
                  "describe %llu iterations of %llu firings each",
                  s.actor.c_str(), (unsigned long long)s.firings,
                  (unsigned long long)iters,
                  (unsigned long long)s.per_iteration);
        }
    }

    // Edges: endpoints, token-rate balance (the join-rate check),
    // per-iteration word counts.
    const size_t n_edges = spec.edges.size();
    std::vector<size_t> e_src(n_edges), e_dst(n_edges);
    std::vector<char> connected(stages.size(), 0);
    uint64_t max_words = 0;
    for (size_t e = 0; e < n_edges; ++e) {
        const DagEdgeSpec &edge = spec.edges[e];
        size_t s = stageIndex(idx, edge.src, "producer");
        size_t d = stageIndex(idx, edge.dst, "consumer");
        if (s == d)
            fatal("codegen: edge %zu is a self-loop on '%s' (the "
                  "graph must be acyclic)",
                  e, edge.src.c_str());
        if (edge.src_words_per_firing == 0 ||
            edge.dst_words_per_firing == 0)
            fatal("codegen: edge %zu (%s -> %s) carries no data", e,
                  edge.src.c_str(), edge.dst.c_str());
        uint64_t w_src =
            edge.src_words_per_firing * stages[s].per_iteration;
        uint64_t w_dst =
            edge.dst_words_per_firing * stages[d].per_iteration;
        if (w_src != w_dst) {
            fatal("codegen: edge %s -> %s is rate-inconsistent "
                  "(%llu produced vs %llu consumed per iteration)",
                  edge.src.c_str(), edge.dst.c_str(),
                  (unsigned long long)w_src,
                  (unsigned long long)w_dst);
        }
        e_src[e] = s;
        e_dst[e] = d;
        connected[s] = connected[d] = 1;
        max_words = std::max(max_words, w_src);
    }
    for (size_t i = 0; i < stages.size(); ++i) {
        if (!connected[i])
            fatal("codegen: stage '%s' is disconnected from the DAG",
                  stages[i].actor.c_str());
    }

    // Acyclicity (Kahn): SDF cycles need initial-token delays, which
    // this lowerer does not model — reject instead of deadlocking.
    {
        std::vector<unsigned> indeg(stages.size(), 0);
        for (size_t e = 0; e < n_edges; ++e)
            ++indeg[e_dst[e]];
        std::deque<size_t> ready;
        for (size_t i = 0; i < stages.size(); ++i) {
            if (indeg[i] == 0)
                ready.push_back(i);
        }
        size_t seen = 0;
        while (!ready.empty()) {
            size_t i = ready.front();
            ready.pop_front();
            ++seen;
            for (size_t e = 0; e < n_edges; ++e) {
                if (e_src[e] == i && --indeg[e_dst[e]] == 0)
                    ready.push_back(e_dst[e]);
            }
        }
        if (seen != stages.size())
            fatal("codegen: the actor graph is cyclic; cyclic SDF "
                  "graphs need initial-token delays the DAG lowerer "
                  "does not model");
    }

    // Delivery grid: every edge gets one drive/capture slot per G
    // bus cycles, so each lane's slot rate covers the busiest edge's
    // token rate with the requested slack; lighter edges simply idle
    // some of their slots.
    const double ref_hz = plan.ref_freq_mhz * 1e6;
    uint64_t spacing = uint64_t(
        ref_hz * slack / (iterations_per_sec * double(max_words)));
    spacing = std::min<uint64_t>(spacing, 1u << 20);
    std::vector<unsigned> slot_counts;
    for (const auto &edge : spec.edges)
        slot_counts.push_back(edge.slots_per_period);
    EdgeSlots slots = allocateEdgeSlots(slot_counts, spacing);

    PipelineProgram out;
    out.total_columns = plan.total_columns;
    out.period = slots.period;
    out.slot_spacing = slots.period;
    out.lanes = slots.lane;
    out.self_timed = true;

    // Lookahead horizon for the parallel-columns runtime: the
    // shortest run of delivery-free bus cycles between consecutive
    // active slots on the period grid, circular over one period.
    // Every edge's slots count — the columns free-run only while the
    // whole bus is quiet.
    {
        std::vector<unsigned> offs;
        for (const auto &per_edge : slots.offsets)
            offs.insert(offs.end(), per_edge.begin(),
                        per_edge.end());
        std::sort(offs.begin(), offs.end());
        offs.erase(std::unique(offs.begin(), offs.end()),
                   offs.end());
        unsigned horizon = slots.period;
        for (size_t i = 0; i < offs.size(); ++i) {
            unsigned next = i + 1 < offs.size()
                                ? offs[i + 1]
                                : offs[0] + slots.period;
            horizon = std::min(horizon, next - offs[i] - 1);
        }
        out.lookahead_horizon = horizon;
    }

    // One CommSchedule per stage; edge e rides lane e at its
    // staggered slot.
    std::vector<CommSchedule> scheds(stages.size());
    for (auto &s : scheds)
        s.period = slots.period;
    for (size_t e = 0; e < n_edges; ++e) {
        for (unsigned off : slots.offsets[e]) {
            Transfer drive;
            drive.offset = off;
            drive.lane = slots.lane[e];
            drive.src_tile = 0;
            drive.to_horizontal = true;
            scheds[e_src[e]].transfers.push_back(drive);
            Transfer capture;
            capture.offset = off;
            capture.lane = slots.lane[e];
            capture.src_tile = -1; // from the horizontal bus
            capture.dst_tiles = {0};
            scheds[e_dst[e]].transfers.push_back(capture);
        }
    }

    for (size_t i = 0; i < stages.size(); ++i) {
        const DagStage &stage = stages[i];
        const ActorPlacement &p = placementFor(plan, stage.actor);
        // The kernels are sequential single-column programs; a plan
        // that provisioned parallel columns/tiles (max_parallel > 1)
        // would silently run at a fraction of its planned rate, so
        // reject it instead of under-delivering.
        if (p.columns != 1 || p.tiles != 1) {
            fatal("codegen: actor '%s' planned across %u columns / "
                  "%u tiles; pipeline kernels are single-column "
                  "(map with max_parallel = 1)",
                  stage.actor.c_str(), p.columns, p.tiles);
        }
        ColumnProgram col;
        col.column = p.first_column;
        col.actor = stage.actor;
        col.program = stitchProgram(stage);
        col.schedule = scheds[i];
        col.dou = compileSchedule(col.schedule);
        col.zorm = p.zorm;
        col.images = stage.images;
        out.columns.push_back(std::move(col));
    }

    // Placements must not share columns (a column runs one actor).
    for (size_t a = 0; a < out.columns.size(); ++a) {
        for (size_t b = a + 1; b < out.columns.size(); ++b) {
            if (out.columns[a].column == out.columns[b].column)
                fatal("codegen: actors '%s' and '%s' both placed on "
                      "column %u",
                      out.columns[a].actor.c_str(),
                      out.columns[b].actor.c_str(),
                      out.columns[a].column);
        }
    }
    return out;
}

PipelineProgram
lowerDag(const DagSpec &spec, const ChipPlan &plan,
         double iterations_per_sec, double slack)
{
    PipelineProgram out =
        lowerDagImpl(spec, plan, iterations_per_sec, slack);
    gateLowered(spec, plan, out, iterations_per_sec, slack);
    return out;
}

DagSpec
linearDagSpec(const std::vector<PipelineStage> &stages)
{
    DagSpec spec;
    for (const auto &s : stages) {
        DagStage d;
        d.actor = s.actor;
        d.prologue = s.prologue;
        d.body = s.body;
        d.firings = s.firings;
        d.per_iteration = s.per_iteration;
        d.images = s.images;
        spec.stages.push_back(std::move(d));
    }
    for (size_t e = 0; e + 1 < stages.size(); ++e) {
        DagEdgeSpec edge;
        edge.src = stages[e].actor;
        edge.dst = stages[e + 1].actor;
        edge.src_words_per_firing = stages[e].writes_per_firing;
        edge.dst_words_per_firing = stages[e + 1].reads_per_firing;
        spec.edges.push_back(std::move(edge));
    }
    return spec;
}

PipelineProgram
lowerPipeline(const std::vector<PipelineStage> &stages,
              const ChipPlan &plan, double iterations_per_sec,
              double slack)
{
    if (stages.size() < 2)
        fatal("codegen: a pipeline needs at least two stages");
    if (stages.front().reads_per_firing != 0)
        fatal("codegen: source stage '%s' cannot read upstream",
              stages.front().actor.c_str());
    if (stages.back().writes_per_firing != 0)
        fatal("codegen: sink stage '%s' cannot write downstream",
              stages.back().actor.c_str());

    const DagSpec spec = linearDagSpec(stages);
    PipelineProgram out =
        lowerDagImpl(spec, plan, iterations_per_sec, slack);
    // Linear chains keep the legacy drop-new bus: bodies use
    // untagged crd/cwr and every column has at most one edge per
    // direction, so slot-order binding is already unambiguous.
    out.self_timed = false;
    // Gate the FINAL artifact — legacy bus semantics change what the
    // "tokens" check must prove, so verify after the flip.
    gateLowered(spec, plan, out, iterations_per_sec, slack);
    return out;
}

} // namespace synchro::mapping
