/**
 * @file
 * Pipeline code generation: lower a linear chain of SDF actors plus
 * the AutoMapper's ChipPlan onto a fully programmed chip — the
 * missing piece between the paper's methodology steps 3-5 (partition,
 * statically schedule all data transfers, program the DOUs) and the
 * cycle-accurate simulation of step 6.
 *
 * Each stage carries a hand-scheduled SyncBF kernel body for one
 * actor firing (with its `crd`/`cwr` communication inlined, like the
 * distributed ACS kernel in apps/kernels); the lowerer stitches it
 * into a firing loop on the actor's planned column, applies the
 * plan's per-column ZORM throttling, and compiles the plan's
 * inter-actor transfers through the comm-schedule compiler into one
 * DOU program per column.
 *
 * Transfer scheduling: every chain edge gets its own 32-bit bus lane
 * on the horizontal bus and a drive/capture slot once per grid period
 * of G reference cycles, phase-staggered by edge index. G is derived
 * from the mapping's iteration rate with a configurable slack factor,
 * so delivery capacity matches the planned token rate and a slot that
 * finds an empty write buffer simply idles (a counted underrun, not
 * an error). Producer-side backpressure (a full write buffer stalls
 * `cwr`) then self-times the chain, and the slack guarantees a
 * consumer is drained before its next capture — the run must finish
 * with zero read-buffer overruns and zero lane conflicts, which the
 * runner and tests assert.
 */

#ifndef SYNC_MAPPING_CODEGEN_HH
#define SYNC_MAPPING_CODEGEN_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "arch/dou.hh"
#include "isa/assembler.hh"
#include "mapping/auto_mapper.hh"
#include "mapping/comm_schedule.hh"
#include "mapping/rate_match.hh"

namespace synchro::arch
{
class Chip;
}

namespace synchro::mapping
{

/** One actor of a linear pipeline, ready for lowering. */
struct PipelineStage
{
    /** Actor name; must match a ChipPlan placement. */
    std::string actor;

    /** Run-once setup (constants, persistent pointers). */
    std::string prologue;

    /**
     * Kernel body for ONE firing. Must execute exactly
     * reads_per_firing `crd`s and writes_per_firing `cwr`s, spread
     * through the computation (hand-scheduled). Loop unit lc0 is
     * owned by the generated firing loop; lc1 is free.
     */
    std::string body;

    /** Total firings this run (1..4095, the lsetup range). */
    uint64_t firings = 0;

    /** Firings per SDF iteration (the repetition-vector entry). */
    uint64_t per_iteration = 1;

    /** 32-bit words consumed from upstream per firing. */
    unsigned reads_per_firing = 0;

    /** 32-bit words produced downstream per firing. */
    unsigned writes_per_firing = 0;

    /** Tile-SRAM images to preload (input data, coefficients). */
    std::vector<std::pair<uint32_t, std::vector<uint8_t>>> images;
};

/** Everything one column needs to run its piece of the pipeline. */
struct ColumnProgram
{
    unsigned column = 0;
    std::string actor;
    isa::Program program;
    CommSchedule schedule; //!< transfers feeding the DOU program
    arch::DouProgram dou;
    ZormSetting zorm;
    std::vector<std::pair<uint32_t, std::vector<uint8_t>>> images;
};

/** A fully lowered pipeline. */
struct PipelineProgram
{
    std::vector<ColumnProgram> columns; //!< programmed columns only
    unsigned total_columns = 0;         //!< per the plan
    unsigned period = 0;       //!< DOU schedule period (bus cycles)
    unsigned slot_spacing = 0; //!< delivery grid spacing G
    std::vector<unsigned> lanes; //!< bus lane per chain edge

    /**
     * Load programs, DOU schedules, ZORM settings and memory images
     * onto @p chip, and supply-gate the tiles the pipeline does not
     * use. The chip must have been built with the plan's dividers.
     */
    void load(arch::Chip &chip) const;

    /** The programmed column running @p actor; fatal() if absent. */
    const ColumnProgram &columnFor(const std::string &actor) const;
};

/**
 * Lower @p stages (a linear chain, in dataflow order) onto the
 * columns @p plan assigned them.
 *
 * @param iterations_per_sec  the rate the plan was mapped for
 * @param slack  delivery-grid stretch (> 1); larger values trade
 *               throughput for more overrun margin
 *
 * fatal() on: unknown actors, token-rate mismatches between adjacent
 * stages (writes x per_iteration must balance), stage firing counts
 * describing different iteration counts, more chain edges than bus
 * lanes, or bodies that do not assemble.
 */
PipelineProgram lowerPipeline(const std::vector<PipelineStage> &stages,
                              const ChipPlan &plan,
                              double iterations_per_sec,
                              double slack = 1.4);

} // namespace synchro::mapping

#endif // SYNC_MAPPING_CODEGEN_HH
