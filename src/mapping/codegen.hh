/**
 * @file
 * Pipeline code generation: lower an SDF actor graph plus the
 * AutoMapper's ChipPlan onto a fully programmed chip — the missing
 * piece between the paper's methodology steps 3-5 (partition,
 * statically schedule all data transfers, program the DOUs) and the
 * cycle-accurate simulation of step 6.
 *
 * Two entry points share all machinery:
 *
 *  - lowerDag() takes an arbitrary *acyclic* SDF DAG: fork fan-out
 *    (one producer feeding several consumer columns on separate bus
 *    lanes), multi-input join actors, and per-edge multi-rate token
 *    counts.
 *  - lowerPipeline() is the linear-chain convenience wrapper the DDC
 *    receiver uses; it builds the equivalent two-terminal DAG.
 *
 * Each stage carries a hand-scheduled SyncBF kernel body for one
 * actor firing (with its `crd`/`cwr` communication inlined, like the
 * distributed ACS kernel in apps/kernels); the lowerer stitches it
 * into a firing loop on the actor's planned column, applies the
 * plan's per-column ZORM throttling, and compiles the plan's
 * inter-actor transfers through the comm-schedule compiler into one
 * DOU program per column.
 *
 * Transfer scheduling: every DAG edge gets its own 32-bit bus lane
 * (lane e = the edge's index in DagSpec::edges) and one drive/capture
 * slot per grid period of G reference cycles, phase-staggered by edge
 * index so no tile ever drives or captures two edges in one cycle
 * (comm_schedule::allocateEdgeSlots). G is derived from the mapping's
 * iteration rate with a configurable slack factor so the slot rate of
 * every lane covers its edge's token rate; a slot that finds nothing
 * to move simply idles (a counted underrun or deferral, not an
 * error).
 *
 * Delivery is *self-timed* (latency-insensitive): kernels tag their
 * `cwr`/`crd` with the edge's lane, a drive slot only pops a word
 * tagged for its lane, and a transfer whose destination read buffer
 * is still full defers — producer-side backpressure then times the
 * whole DAG, and a join fires only once every input lane's buffer
 * has delivered (`crd rd, lane` stalls per lane). The one contract
 * codegen cannot check statically: with single-entry buffers, each
 * producer must emit its out-edge tokens in the same global order
 * its consumers (transitively) demand them — kernels that violate it
 * deadlock at run time, which the runner reports. The run must
 * finish with zero read-buffer overruns and zero lane conflicts,
 * which the runners and tests assert.
 */

#ifndef SYNC_MAPPING_CODEGEN_HH
#define SYNC_MAPPING_CODEGEN_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "arch/dou.hh"
#include "isa/assembler.hh"
#include "mapping/auto_mapper.hh"
#include "mapping/comm_schedule.hh"
#include "mapping/rate_match.hh"

namespace synchro::arch
{
class Chip;
}

namespace synchro::mapping
{

/** One actor of a DAG pipeline, ready for lowering. */
struct DagStage
{
    /** Actor name; must match a ChipPlan placement. */
    std::string actor;

    /** Run-once setup (constants, persistent pointers). */
    std::string prologue;

    /**
     * Kernel body for ONE firing. Must execute its edges' reads and
     * writes as lane-tagged `crd rd, lane` / `cwr rs, lane` (lane =
     * edge index in the spec), spread through the computation
     * (hand-scheduled). Loop unit lc0 is owned by the generated
     * firing loop; lc1 is free, as are conditional branches.
     */
    std::string body;

    /** Total firings this run (1..4095, the lsetup range). */
    uint64_t firings = 0;

    /** Firings per SDF iteration (the repetition-vector entry). */
    uint64_t per_iteration = 1;

    /** Tile-SRAM images to preload (input data, coefficients). */
    std::vector<std::pair<uint32_t, std::vector<uint8_t>>> images;
};

/** One DAG edge. Its lane is its index in DagSpec::edges. */
struct DagEdgeSpec
{
    std::string src; //!< producer actor
    std::string dst; //!< consumer actor

    /** 32-bit words the producer writes to this edge per firing. */
    unsigned src_words_per_firing = 0;

    /** 32-bit words the consumer reads from this edge per firing. */
    unsigned dst_words_per_firing = 0;

    /**
     * Delivery slots this edge gets per grid period (>= 1). The
     * grid is sized so one slot per period covers the busiest edge's
     * token rate with the requested slack; extra slots raise an
     * edge's delivery ceiling so bursty consumption (a join draining
     * one input, a multi-phase kernel) does not stretch the
     * pipeline's critical path.
     */
    unsigned slots_per_period = 1;
};

/** An SDF DAG ready for lowering. */
struct DagSpec
{
    std::vector<DagStage> stages;
    std::vector<DagEdgeSpec> edges;
};

/** Everything one column needs to run its piece of the pipeline. */
struct ColumnProgram
{
    unsigned column = 0;
    std::string actor;
    isa::Program program;
    CommSchedule schedule; //!< transfers feeding the DOU program
    arch::DouProgram dou;
    ZormSetting zorm;
    std::vector<std::pair<uint32_t, std::vector<uint8_t>>> images;
};

/** A fully lowered pipeline. */
struct PipelineProgram
{
    std::vector<ColumnProgram> columns; //!< programmed columns only
    unsigned total_columns = 0;         //!< per the plan
    unsigned period = 0;       //!< DOU schedule period (bus cycles)
    unsigned slot_spacing = 0; //!< delivery grid spacing G
    std::vector<unsigned> lanes; //!< bus lane per DAG edge

    /**
     * Static floor of the comm-quiet window the parallel-columns
     * runtime may trust: the shortest run of delivery-free bus
     * cycles between consecutive active slots of the period grid
     * (circular over one period), computed from the same
     * allocateEdgeSlots() schedule the DOU programs encode. The
     * verifier recomputes this from the slot schedules and rejects
     * a program whose declared value disagrees (checkSlots); the
     * runtime's dynamic commQuiet() probe can only ever see windows
     * at least this wide between delivery slots.
     */
    unsigned lookahead_horizon = 0;

    /**
     * Whether the chip must run with the self-timed (deferring) bus:
     * true for DAG programs, false for the legacy linear lowering.
     * Apply as ChipConfig::self_timed_bus before constructing the
     * chip.
     */
    bool self_timed = false;

    /**
     * Load programs, DOU schedules, ZORM settings and memory images
     * onto @p chip, and supply-gate the tiles the pipeline does not
     * use. The chip must have been built with the plan's dividers.
     */
    void load(arch::Chip &chip) const;

    /** The programmed column running @p actor; fatal() if absent. */
    const ColumnProgram &columnFor(const std::string &actor) const;
};

/**
 * Lower the DAG @p spec onto the columns @p plan assigned its actors.
 *
 * @param iterations_per_sec  the rate the plan was mapped for
 * @param slack  delivery-grid stretch (> 1); larger values trade
 *               throughput for more scheduling margin
 *
 * fatal() on: cyclic graphs (SDF cycles need initial-token delays,
 * which this lowerer does not model), more edges than bus lanes,
 * rate-inconsistent edges (src words x per_iteration must balance
 * dst words x per_iteration — the join-rate check), disconnected
 * actors, unknown actors, stage firing counts describing different
 * iteration counts, plans that provisioned parallel columns/tiles,
 * or bodies that do not assemble.
 *
 * Every lowering additionally passes through the static verifier
 * (mapping/verifier.hh) as a mandatory post-lowering gate: an
 * artifact with a provable safety violation (slot conflict, lane-tag
 * mismatch, uninitialized register read, reachable overrun, ZORM
 * inconsistency) is rejected with
 * fatal("codegen: statically rejected: ...").
 */
PipelineProgram lowerDag(const DagSpec &spec, const ChipPlan &plan,
                         double iterations_per_sec,
                         double slack = 1.4);

/** One actor of a linear pipeline, ready for lowering. */
struct PipelineStage
{
    /** Actor name; must match a ChipPlan placement. */
    std::string actor;

    /** Run-once setup (constants, persistent pointers). */
    std::string prologue;

    /**
     * Kernel body for ONE firing. Must execute exactly
     * reads_per_firing `crd`s and writes_per_firing `cwr`s (the
     * untagged legacy forms), spread through the computation.
     */
    std::string body;

    /** Total firings this run (1..4095, the lsetup range). */
    uint64_t firings = 0;

    /** Firings per SDF iteration (the repetition-vector entry). */
    uint64_t per_iteration = 1;

    /** 32-bit words consumed from upstream per firing. */
    unsigned reads_per_firing = 0;

    /** 32-bit words produced downstream per firing. */
    unsigned writes_per_firing = 0;

    /** Tile-SRAM images to preload (input data, coefficients). */
    std::vector<std::pair<uint32_t, std::vector<uint8_t>>> images;
};

/**
 * The two-terminal DAG equivalent to the linear chain @p stages —
 * the spec lowerPipeline() lowers, exposed so verification hooks can
 * re-derive the exact (spec, plan, program) triple of a linear
 * lowering without duplicating the edge construction.
 */
DagSpec linearDagSpec(const std::vector<PipelineStage> &stages);

/**
 * Lower @p stages (a linear chain, in dataflow order) onto the
 * columns @p plan assigned them — the two-terminal special case of
 * lowerDag(), kept on the legacy (drop-new) bus semantics so the
 * mapped DDC receiver behaves exactly as before. The verifier gate
 * runs on the final legacy-bus artifact.
 *
 * fatal() on everything lowerDag() rejects, plus: a source stage
 * that reads, a sink stage that writes, or an interior edge carrying
 * no data.
 */
PipelineProgram lowerPipeline(const std::vector<PipelineStage> &stages,
                              const ChipPlan &plan,
                              double iterations_per_sec,
                              double slack = 1.4);

} // namespace synchro::mapping

#endif // SYNC_MAPPING_CODEGEN_HH
