/**
 * @file
 * Static communication scheduling: compiles a periodic transfer
 * schedule into a DOU program (paper Section 4.1 step 4: "Assume
 * every data transfer takes one clock cycle. Statically schedule all
 * the data transfers", and Section 2.3's DOU programming model).
 *
 * A schedule is a repeating window of `period` bus cycles with
 * transfers pinned to offsets. The compiler emits one DOU state per
 * active cycle, compresses idle gaps with the DOU's down-counters
 * (falling back to chained idle states when all four counters are
 * taken), checks for lane conflicts, and wires the segment switches
 * to span exactly the tiles each transfer touches.
 */

#ifndef SYNC_MAPPING_COMM_SCHEDULE_HH
#define SYNC_MAPPING_COMM_SCHEDULE_HH

#include <cstdint>
#include <vector>

#include "arch/dou.hh"

namespace synchro::mapping
{

/** One periodic transfer on a column's bus. */
struct Transfer
{
    unsigned offset = 0; //!< bus cycle within the period
    unsigned lane = 0;   //!< 32-bit lane (0..7)
    int src_tile = 0;    //!< driving tile position, or -1 when the
                         //!< data arrives from the horizontal bus
    std::vector<unsigned> dst_tiles; //!< capturing tile positions
    bool to_horizontal = false; //!< also forward to the H bus
};

/** A periodic column communication schedule. */
struct CommSchedule
{
    unsigned period = 1;  //!< bus cycles per repetition
    unsigned prologue = 0; //!< idle bus cycles before the first pass
    std::vector<Transfer> transfers;
};

/**
 * Compile to a DOU program. fatal() on lane conflicts within a
 * cycle, out-of-range tiles, offsets >= period, or programs
 * exceeding the 128-state / 4-counter hardware.
 */
arch::DouProgram compileSchedule(const CommSchedule &sched);

/**
 * Delivery slots for the edges of an SDF DAG within one grid period
 * of @p spacing bus cycles: edge e rides its own 32-bit lane e and
 * gets slots_per_edge[e] drive/capture slots per period, spread
 * evenly through it and phase-staggered by edge index. Offsets are
 * globally unique (a greedy forward probe resolves collisions), so
 * no tile ever has to drive or capture two edges in the same cycle —
 * every column's transfers stay conflict-free by construction,
 * whatever the DAG's fan-out/fan-in shape — and each lane's slots
 * stay in time order, preserving token order through the
 * single-entry buffers.
 *
 * A slot is a delivery *opportunity*, not an obligation, because
 * delivery is self-timed: a drive slot on lane e pops the producer's
 * write buffer only if the pending word is tagged for lane e (the
 * tag-matching pop rule — see arch/comm_buffer.hh); a slot that
 * finds no matching word, or whose destination read buffer is still
 * full, idles and counts an underrun or deferral. slots_per_edge[e]
 * therefore sets edge e's delivery *ceiling*: it must cover the
 * edge's worst-case token rate (tokens per iteration x iteration
 * rate, plus lowering slack), or producers stall on `cwr` and the
 * whole DAG runs below its planned rate. codegen::lowerDag sizes the
 * period so ONE slot covers the busiest edge divided by the slack
 * factor; burstier edges ask for more via DagEdgeSpec::
 * slots_per_period.
 *
 * fatal() when the edges exceed the bus lanes or the period is too
 * tight to place every slot (the data rate is too high for the
 * reference clock).
 */
struct EdgeSlots
{
    unsigned period = 0;        //!< the grid period (== spacing)
    std::vector<unsigned> lane; //!< bus lane per edge
    std::vector<std::vector<unsigned>> offsets; //!< slots per edge
};

EdgeSlots allocateEdgeSlots(const std::vector<unsigned> &slots_per_edge,
                            uint64_t spacing);

/**
 * Reference interpretation of a schedule: the (seg, buf) outputs the
 * DOU must produce at the given absolute bus cycle. Tests compare
 * the compiled program's trace against this.
 */
arch::DouState scheduleOutputAt(const CommSchedule &sched,
                                uint64_t bus_cycle);

} // namespace synchro::mapping

#endif // SYNC_MAPPING_COMM_SCHEDULE_HH
