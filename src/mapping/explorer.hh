/**
 * @file
 * Measured design-space exploration — closing the loop the paper's
 * analytic mapping flow (Section 4.1, Tables 3/4) could not: instead
 * of trusting the power model's pick, enumerate candidate chip plans
 * around it, lower every candidate through real codegen, run the
 * whole batch cycle-accurately on SimSession's worker pool, verify
 * each run bit-exactly against the application's dsp:: golden, and
 * price each with power::priceSimulationComparison. The output is a
 * *measured* power-vs-throughput Pareto frontier per application and
 * an agreement verdict for the analytic Optimizer's pick.
 *
 * The plan space enumerated around a baseline ChipPlan:
 *
 *  - rate variants: the whole mapping re-derived (per-actor demand,
 *    divider, supply level, ZORM) for a scaled target rate — the
 *    throughput axis of the frontier;
 *  - divider/supply variants: one placement's clock divider lowered
 *    (its column runs faster, quantizes to a higher supply level,
 *    and ZORM pads the wider gap) — measurably dominated points that
 *    demonstrate why the Optimizer's divider pick wins;
 *  - shard variants: alternative actor shardings supplied by the
 *    application itself (ExplorableApp::shard_variants), for runners
 *    that can regenerate their DAG at a different parallel width
 *    (e.g. the motion-estimation search farm).
 *
 * An application opts in by packaging itself as an ExplorableApp —
 * the plan-variant hook each apps/ runner exposes (explorableDdc,
 * explorableWifi, explorableStereo, explorableMotion).
 */

#ifndef SYNC_MAPPING_EXPLORER_HH
#define SYNC_MAPPING_EXPLORER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mapping/codegen.hh"
#include "power/activity.hh"
#include "sim/scheduler.hh"

namespace synchro::mapping
{

/** One candidate chip configuration in the explored plan space. */
struct PlanVariant
{
    std::string label;
    ChipPlan plan;

    /** Rate the candidate is lowered (grid-paced, ZORMed) for. */
    double iterations_per_sec = 0;
};

/**
 * A mapped application packaged for exploration: its baseline plan
 * plus the three hooks the evaluator needs to run an *arbitrary*
 * plan variant — lower it, budget it, and verify the finished chip
 * against the dsp:: golden.
 */
struct ExplorableApp
{
    std::string name;

    /** The rate the baseline was mapped for (SDF iterations/s). */
    double iterations_per_sec = 0;

    /** Items per run, for achieved-rate pricing (see MappedApp). */
    uint64_t priced_items = 0;

    /** The analytic Optimizer's own pick (via planApp). */
    ChipPlan baseline;

    /** Lower @p plan at @p iterations_per_sec into a program. */
    std::function<PipelineProgram(const ChipPlan &plan,
                                  double iterations_per_sec)>
        lower;

    /** Tick budget for one run of a lowered candidate. */
    std::function<Tick(const ChipPlan &, const PipelineProgram &)>
        tick_limit;

    /**
     * Read the outputs back from a finished chip and compare against
     * the golden: "" when bit-exact, else a describeMismatch() line.
     */
    std::function<std::string(arch::Chip &, const PipelineProgram &)>
        verify;

    /** Alternative shardings (their own plans and rates), if any. */
    std::vector<PlanVariant> shard_variants;
};

struct ExploreOptions
{
    /** Target-rate scale factors to re-derive the mapping at. */
    std::vector<double> rate_factors = {0.75, 0.9, 1.15, 1.3};

    /** Per-placement divider decrements to try (0 disables). */
    unsigned divider_steps = 2;

    /** Re-run frontier + baseline points on EventQueue and demand
     *  identical ticks, stats and outputs. */
    bool crosscheck_frontier = true;

    /** Worker threads for the batch (0 = hardware concurrency). */
    unsigned threads = 0;

    /** Max % the baseline's measured power may sit above the
     *  frontier before the agreement check fails. */
    double agreement_tolerance_pct = 10.0;

    /** Backend the measurement chips run on (the frontier
     *  cross-check always re-runs on EventQueue regardless). */
    SchedulerKind scheduler = defaultSchedulerKind();
};

/** One candidate plan, measured. */
struct MeasuredPoint
{
    std::string label;
    ChipPlan plan;
    double target_iterations_per_sec = 0;

    /** The run drained with clean fabric stats. */
    bool ran = false;
    std::string failure; //!< why not, when !ran

    /** Output matched the dsp:: golden bit for bit. */
    bool bit_exact = false;

    /** Re-run on EventQueue with identical ticks/stats/output. */
    bool crosschecked = false;

    uint64_t ticks = 0;
    uint64_t deferrals = 0;
    double achieved_items_per_sec = 0;

    power::MeasuredComparison power;
    double total_mw = 0; //!< measured multi-V total

    bool on_frontier = false;
};

/** A finished exploration of one application's plan space. */
struct ExplorationResult
{
    std::string app;
    std::vector<MeasuredPoint> points;

    /** Indices of frontier points, ascending achieved rate. */
    std::vector<size_t> frontier;

    size_t baseline_index = 0;

    /**
     * Candidates the codegen verifier gate rejected at lowering time
     * (their points carry a "statically rejected" failure) — filtered
     * before any chip was staged or simulated.
     */
    size_t statically_rejected = 0;

    /**
     * How far the baseline's measured power sits above the cheapest
     * frontier point at >= its achieved rate (0 when the baseline is
     * itself that point).
     */
    double baseline_gap_pct = 0;

    /** baseline_gap_pct within the agreement tolerance. */
    bool agreement = false;

    /** Every measurable point bit-exact (and crosschecks passed). */
    bool all_bit_exact = false;

    /** Human-readable frontier + agreement table. */
    std::string report() const;
};

/**
 * Re-derive the divider-dependent fields of one placement for a new
 * divider: column frequency, quantized supply level, and the ZORM
 * setting closing the gap down to the (possibly rescaled)
 * f_needed_mhz. False when the combination is infeasible (divided
 * clock below demand, no supply level, no exact rate match).
 * Shared by the explorer's variant enumeration and the DVFS
 * governor's safe-transition table (power/dvfs.hh), so both derive
 * candidate operating points by exactly the same rules the
 * AutoMapper would have used.
 */
bool refreshPlacement(ActorPlacement &p, double ref_mhz,
                      unsigned divider,
                      const power::SupplyLevels &levels);

/**
 * Enumerate candidate plans around @p baseline: the baseline itself
 * (always index 0), rate-scaled re-derivations, and single-placement
 * divider decrements. Every returned variant is feasible by
 * construction (each column's divided clock still covers its demand,
 * ZORM recomputed); infeasible combinations are silently skipped.
 */
std::vector<PlanVariant> enumeratePlanVariants(
    const ChipPlan &baseline, double iterations_per_sec,
    const power::SupplyLevels &levels, const ExploreOptions &opt = {});

/**
 * The measured evaluator: enumerate (plus the app's shard variants),
 * lower every candidate, run the whole batch concurrently on one
 * SimSession, verify bit-exactness, price each run, and reduce to a
 * Pareto frontier (mW vs achieved rate) with the Optimizer-agreement
 * verdict. Candidates that fail to lower or drain become non-ran
 * points (with their failure recorded), never errors.
 */
ExplorationResult explorePlans(const ExplorableApp &app,
                               const ExploreOptions &opt = {});

} // namespace synchro::mapping

#endif // SYNC_MAPPING_EXPLORER_HH
