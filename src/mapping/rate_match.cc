#include "mapping/rate_match.hh"

#include <cmath>
#include <numeric>

#include "common/log.hh"

namespace synchro::mapping
{

ZormSetting
exactRateMatch(uint64_t f_slots_s, uint64_t work_slots_s)
{
    if (work_slots_s > f_slots_s)
        fatal("rate match: task needs %llu slots/s but the column "
              "only issues %llu",
              (unsigned long long)work_slots_s,
              (unsigned long long)f_slots_s);
    if (f_slots_s == 0)
        fatal("rate match: zero clock");
    if (work_slots_s == f_slots_s)
        return {0, 0}; // no throttling needed
    uint64_t idle = f_slots_s - work_slots_s;
    uint64_t g = std::gcd(idle, f_slots_s);
    uint64_t nops = idle / g;
    uint64_t period = f_slots_s / g;
    if (period > UINT32_MAX)
        fatal("rate match: reduced period %llu exceeds the 32-bit "
              "ZORM counter",
              (unsigned long long)period);
    return {uint32_t(nops), uint32_t(period)};
}

ZormSetting
boundedRateMatch(double useful_fraction, uint32_t max_period)
{
    if (useful_fraction <= 0.0 || useful_fraction > 1.0)
        fatal("rate match: useful fraction %g out of (0, 1]",
              useful_fraction);
    if (useful_fraction == 1.0)
        return {0, 0};

    // Walk the Stern-Brocot tree toward the largest fraction p/q <=
    // (1 - useful_fraction) with q <= max_period; never undershoot
    // the useful fraction means never overshoot the nop fraction.
    double target_nop = 1.0 - useful_fraction;
    uint64_t best_n = 0, best_d = 1;
    uint64_t ln = 0, ld = 1; // 0/1
    uint64_t rn = 1, rd = 1; // 1/1
    while (true) {
        uint64_t mn = ln + rn;
        uint64_t md = ld + rd;
        if (md > max_period)
            break;
        if (double(mn) / double(md) <= target_nop) {
            best_n = mn;
            best_d = md;
            ln = mn;
            ld = md;
        } else {
            rn = mn;
            rd = md;
        }
    }
    if (best_n == 0)
        return {0, 0}; // nop fraction too small to express: run free
    return {uint32_t(best_n), uint32_t(best_d)};
}

double
loopPaddingFraction(uint64_t loop_slots, double useful_fraction)
{
    if (loop_slots == 0)
        fatal("loop padding: empty loop");
    if (useful_fraction <= 0.0 || useful_fraction > 1.0)
        fatal("loop padding: fraction %g out of (0, 1]",
              useful_fraction);
    // Whole nops appended to the loop body: ceil to never run fast.
    double ideal_total = double(loop_slots) / useful_fraction;
    uint64_t padded =
        uint64_t(std::ceil(ideal_total - 1e-9));
    return double(loop_slots) / double(padded);
}

} // namespace synchro::mapping
