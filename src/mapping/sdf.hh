/**
 * @file
 * Synchronous Dataflow graphs (paper Section 2.1): Synchroscalar
 * applications "fit the Synchronous Dataflow model of computation
 * used in existing DSP design tools such as Ptolemy"; SDF's
 * fixed production/consumption rates give "static scheduling and
 * decidability of key verification problems such as bounded memory
 * requirements and deadlock avoidance" [Lee & Messerschmitt].
 *
 * This module implements those classic checks: the balance-equation
 * repetition vector (consistency), deadlock detection by symbolic
 * execution of one iteration, and per-edge buffer bounds.
 */

#ifndef SYNC_MAPPING_SDF_HH
#define SYNC_MAPPING_SDF_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace synchro::mapping
{

struct SdfActor
{
    std::string name;
    uint64_t work_cycles = 1; //!< tile cycles per firing
};

struct SdfEdge
{
    unsigned src = 0;
    unsigned dst = 0;
    unsigned produce = 1;       //!< tokens per src firing
    unsigned consume = 1;       //!< tokens per dst firing
    unsigned initial_tokens = 0; //!< delays (break cycles)
};

class SdfGraph
{
  public:
    /** Add an actor; returns its index. */
    unsigned addActor(std::string name, uint64_t work_cycles = 1);

    /** Add an edge; fatal() on bad indices or zero rates. */
    void addEdge(unsigned src, unsigned dst, unsigned produce,
                 unsigned consume, unsigned initial_tokens = 0);

    unsigned numActors() const { return unsigned(actors_.size()); }
    const SdfActor &actor(unsigned i) const { return actors_.at(i); }
    const std::vector<SdfEdge> &edges() const { return edges_; }

    /**
     * Minimal positive repetition vector solving the balance
     * equations q[src] * produce == q[dst] * consume on every edge;
     * empty optional if the graph is inconsistent (no bounded-memory
     * schedule exists).
     */
    std::optional<std::vector<uint64_t>> repetitionVector() const;

    /**
     * True if one full iteration (each actor fired q[i] times) can
     * be scheduled without any consume blocking — i.e. the graph is
     * deadlock-free. Inconsistent graphs return false.
     */
    bool deadlockFree() const;

    /**
     * Maximum tokens simultaneously buffered on each edge under the
     * canonical self-timed schedule of one iteration (the bounded-
     * memory certificate). Empty if inconsistent or deadlocked.
     */
    std::optional<std::vector<uint64_t>> bufferBounds() const;

    /**
     * Total work of one iteration in cycles: sum q[i] * work[i]
     * (the per-sample compute demand when one iteration consumes
     * one input sample). Empty if inconsistent.
     */
    std::optional<uint64_t> iterationWork() const;

  private:
    /** Simulate one iteration; returns firing order or nullopt. */
    std::optional<std::vector<unsigned>> selfTimedSchedule(
        std::vector<uint64_t> *max_tokens) const;

    std::vector<SdfActor> actors_;
    std::vector<SdfEdge> edges_;
};

} // namespace synchro::mapping

#endif // SYNC_MAPPING_SDF_HH
