/**
 * @file
 * Static plan/program verifier implementation.
 *
 * The analyses here mirror the execution semantics of
 * arch/simd_controller.cc (issue order, ZORM Bresenham pacing, comm
 * hazard stalls, loop-end unwinding), arch/dou.cc (the counter
 * state-machine step rule) and arch/bus.cc (tag-matched pops,
 * self-timed deferral, legacy drop-new) *exactly* — every proof below
 * is sound only because the abstract step rules are the concrete ones
 * with data values erased. When those files change, change this one.
 */

#include "mapping/verifier.hh"

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "arch/dou.hh"
#include "common/log.hh"
#include "isa/uop.hh"

namespace synchro::mapping
{

namespace
{

using isa::MicroOp;
using isa::UopKind;

constexpr uint32_t AllUnits = (1u << isa::NumRegUnits) - 1;

std::string
severityName(Severity s)
{
    switch (s) {
      case Severity::Error:
        return "error";
      case Severity::Warning:
        return "warning";
      default:
        return "note";
    }
}

// ---------------------------------------------------------------------
// Abstract comm-sequence walk
// ---------------------------------------------------------------------

/** One `crd`/`cwr` in program order. */
struct CommEvent
{
    bool is_read = false;
    int lane = -1;    //!< tagged lane, or -1 for the untagged forms
    uint64_t gap = 0; //!< issue slots since the previous comm op
};

/**
 * Result of abstractly executing one column program. Two exactness
 * levels: `sequence_exact` means `events` is the exact comm sequence
 * every run of the program produces (data-dependent branches were
 * proven comm-transparent); `timing_exact` additionally means every
 * gap is the exact issue-slot distance (no conditional branches at
 * all, so no data-dependent path lengths and no branch-stall cycles).
 */
struct WalkResult
{
    bool sequence_exact = true;
    bool timing_exact = true;
    std::string inexact_why;
    std::vector<CommEvent> events;
    uint64_t tail_slots = 0;  //!< slots after the last comm op
    uint64_t total_slots = 0; //!< issue slots for the whole run
    std::set<int> read_lanes, write_lanes; //!< textual, whole program
};

/**
 * Concretely walk @p uops with the controller's advance rules. Loop
 * trip counts are static (`lsetup` immediates), so the walk is exact
 * for branch-free programs. Conditional branches are handled by the
 * comm-transparency rules documented inline; anything else degrades
 * the walk to textual lane sets.
 */
WalkResult
walkComm(const std::vector<MicroOp> &uops)
{
    WalkResult w;
    for (const MicroOp &u : uops) {
        if (u.kind == UopKind::CommRead)
            w.read_lanes.insert(u.imm);
        else if (u.kind == UopKind::CommWrite)
            w.write_lanes.insert(u.imm);
    }

    const size_t n = uops.size();

    // A region is comm-transparent when executing it (or skipping it)
    // cannot change the program's comm sequence: no comm ops, no
    // control transfers out of it, and any loop armed inside it also
    // completes inside it.
    auto plainRegion = [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi && i < n; ++i) {
            switch (uops[i].kind) {
              case UopKind::Halt:
              case UopKind::Jump:
              case UopKind::Jcc:
              case UopKind::Jncc:
              case UopKind::CommRead:
              case UopKind::CommWrite:
                return false;
              case UopKind::Lsetup:
                if (uops[i].end > hi)
                    return false;
                break;
              default:
                break;
            }
        }
        return true;
    };

    struct Loop
    {
        uint32_t start, end, remaining;
        uint8_t unit;
    };
    std::vector<Loop> stack;

    // Mirror of SimdController::advancePc(): unwind loop ends from
    // the top of the stack.
    auto advance = [&](uint32_t from) {
        uint32_t next = from + 1;
        while (!stack.empty() && next == stack.back().end) {
            if (--stack.back().remaining > 0) {
                next = stack.back().start;
                break;
            }
            stack.pop_back();
        }
        return next;
    };

    auto inexact = [&](std::string why) {
        w.sequence_exact = false;
        w.timing_exact = false;
        if (w.inexact_why.empty())
            w.inexact_why = std::move(why);
        w.events.clear();
    };

    constexpr uint64_t WalkBudget = 50'000'000;
    uint64_t gap = 0;
    uint32_t pc = 0;
    while (true) {
        if (pc >= n) {
            inexact("pc fell off the program end");
            return w;
        }
        if (w.total_slots >= WalkBudget) {
            inexact("walk budget exceeded");
            return w;
        }
        const MicroOp &u = uops[pc];
        ++w.total_slots;
        ++gap;
        switch (u.kind) {
          case UopKind::Halt:
            w.tail_slots = gap;
            return w;
          case UopKind::Jump:
            if (u.imm < 0 || uint32_t(u.imm) >= n) {
                inexact("jump target out of range");
                return w;
            }
            pc = uint32_t(u.imm);
            continue;
          case UopKind::Jcc:
          case UopKind::Jncc: {
            // Which way a conditional branch goes is data-dependent,
            // so gaps stop being exact here (and the taken path also
            // costs a branch-stall cycle the walk does not model).
            w.timing_exact = false;
            if (u.imm < 0 || uint32_t(u.imm) >= n) {
                inexact("branch target out of range");
                return w;
            }
            const uint32_t tgt = uint32_t(u.imm);
            bool armed_end = false;
            for (const Loop &l : stack)
                armed_end = armed_end || l.end == tgt;
            if (tgt > pc && plainRegion(pc + 1, tgt) && !armed_end) {
                // Forward skip over a comm-transparent region: both
                // paths produce the same comm sequence (a taken
                // branch jumps straight to tgt without loop-end
                // processing, hence the armed_end guard). Walk the
                // fall-through path.
                pc = advance(pc);
            } else if (tgt <= pc && plainRegion(tgt, pc)) {
                // Backward data-dependent loop over a
                // comm-transparent body: however many times the real
                // run iterates, no comm happens; walk the exit path.
                pc = advance(pc);
            } else {
                inexact(strprintf("data-dependent branch at pc %u "
                                  "spans communication",
                                  pc));
                return w;
            }
            continue;
          }
          case UopKind::Lsetup: {
            if (u.imm <= 0 || u.end <= pc + 1 || u.end > n) {
                inexact(strprintf("malformed lsetup at pc %u", pc));
                return w;
            }
            for (const Loop &l : stack) {
                if (l.unit == u.acc) {
                    inexact(strprintf(
                        "loop unit lc%u re-armed at pc %u while "
                        "active",
                        unsigned(u.acc), pc));
                    return w;
                }
            }
            stack.push_back(
                {pc + 1, u.end, uint32_t(u.imm), u.acc});
            pc = advance(pc);
            continue;
          }
          case UopKind::CommRead:
          case UopKind::CommWrite: {
            CommEvent e;
            e.is_read = u.kind == UopKind::CommRead;
            e.lane = u.imm;
            e.gap = gap - 1;
            w.events.push_back(e);
            gap = 0;
            pc = advance(pc);
            continue;
          }
          default:
            pc = advance(pc);
            continue;
        }
    }
}

// ---------------------------------------------------------------------
// Shared analysis state
// ---------------------------------------------------------------------

struct EdgeInfo
{
    size_t src = 0, dst = 0; //!< stage indices
    unsigned lane = 0;
    uint64_t src_words = 0, dst_words = 0; //!< words per firing
};

struct ColInfo
{
    const ColumnProgram *col = nullptr;
    const DagStage *stage = nullptr;
    const ActorPlacement *place = nullptr;
    std::vector<MicroOp> uops;
    WalkResult walk;
    std::vector<size_t> in_edges, out_edges; //!< edge indices
    std::vector<CommEvent> events; //!< lane-normalized (tags check)
    bool events_ok = false; //!< events usable for token replays
};

struct Analysis
{
    const DagSpec *spec = nullptr;
    const ChipPlan *plan = nullptr;
    const PipelineProgram *prog = nullptr;
    double rate = 0;
    double slack = 1;
    double ref_hz = 0;
    std::vector<ColInfo> cols;   //!< parallel to spec->stages
    std::vector<EdgeInfo> edges; //!< parallel to spec->edges
    bool slots_clean = true;     //!< set by checkSlots
};

/**
 * Resolve stages <-> columns <-> placements <-> edges and decode
 * every program. Shape problems (an artifact whose pieces no longer
 * name each other) are reported under "slots" and abort the analysis
 * — nothing else is provable about mismatched pieces.
 */
bool
resolve(Analysis &a, VerifyReport &rep)
{
    const DagSpec &spec = *a.spec;
    const PipelineProgram &prog = *a.prog;

    auto shape = [&](std::string msg) {
        rep.add(Severity::Error, "slots",
                "artifact shape: " + std::move(msg));
        return false;
    };

    if (spec.stages.empty())
        return shape("no stages");
    if (prog.columns.size() != spec.stages.size())
        return shape(strprintf("%zu programmed columns for %zu "
                               "stages",
                               prog.columns.size(),
                               spec.stages.size()));
    if (prog.lanes.size() != spec.edges.size())
        return shape(strprintf("%zu lane bindings for %zu edges",
                               prog.lanes.size(),
                               spec.edges.size()));
    if (a.plan->ref_freq_mhz <= 0)
        return shape("non-positive reference frequency");
    a.ref_hz = a.plan->ref_freq_mhz * 1e6;

    std::map<std::string, size_t> idx;
    for (size_t i = 0; i < spec.stages.size(); ++i) {
        if (!idx.emplace(spec.stages[i].actor, i).second)
            return shape("duplicate stage '" + spec.stages[i].actor +
                         "'");
    }

    a.cols.resize(spec.stages.size());
    for (const ColumnProgram &col : prog.columns) {
        auto it = idx.find(col.actor);
        if (it == idx.end())
            return shape("column for unknown actor '" + col.actor +
                         "'");
        ColInfo &ci = a.cols[it->second];
        if (ci.col)
            return shape("two columns run actor '" + col.actor +
                         "'");
        ci.col = &col;
        ci.stage = &spec.stages[it->second];
        for (const ActorPlacement &p : a.plan->placements) {
            if (p.actor == col.actor)
                ci.place = &p;
        }
        if (!ci.place)
            return shape("actor '" + col.actor +
                         "' has no placement in the plan");
        ci.uops = isa::decodeProgram(col.program)->uops;
    }
    for (size_t i = 0; i < a.cols.size(); ++i) {
        if (!a.cols[i].col)
            return shape("stage '" + spec.stages[i].actor +
                         "' has no programmed column");
    }

    for (size_t e = 0; e < spec.edges.size(); ++e) {
        const DagEdgeSpec &es = spec.edges[e];
        auto s = idx.find(es.src), d = idx.find(es.dst);
        if (s == idx.end() || d == idx.end())
            return shape(strprintf("edge %zu references an unknown "
                                   "actor",
                                   e));
        EdgeInfo ei;
        ei.src = s->second;
        ei.dst = d->second;
        ei.lane = prog.lanes[e];
        if (ei.lane >= arch::BusLanes)
            return shape(strprintf("edge %zu bound to lane %u (bus "
                                   "has %u)",
                                   e, ei.lane, arch::BusLanes));
        ei.src_words = es.src_words_per_firing;
        ei.dst_words = es.dst_words_per_firing;
        a.cols[ei.src].out_edges.push_back(e);
        a.cols[ei.dst].in_edges.push_back(e);
        a.edges.push_back(ei);
    }

    for (ColInfo &ci : a.cols)
        ci.walk = walkComm(ci.uops);
    return true;
}

// ---------------------------------------------------------------------
// "program": register dataflow + issue-slot accounting
// ---------------------------------------------------------------------

void
checkProgram(Analysis &a, VerifyReport &rep)
{
    for (ColInfo &ci : a.cols) {
        const std::vector<MicroOp> &uops = ci.uops;
        const size_t n = uops.size();
        const std::string &actor = ci.stage->actor;
        if (n == 0) {
            rep.add(Severity::Error, "program",
                    "actor '" + actor + "': empty program");
            continue;
        }

        // Successor sets. A linear advance from pc can also re-enter
        // any loop whose end address is pc+1 — tracking which loops
        // are armed needs path context, so take the superset: it can
        // only under-approximate the must-init sets (sound) and
        // over-approximate liveness (fewer dead-write warnings).
        std::vector<std::vector<uint32_t>> body_start_at(n + 1);
        bool malformed = false;
        for (size_t i = 0; i < n && !malformed; ++i) {
            const MicroOp &u = uops[i];
            if (u.kind == UopKind::Lsetup) {
                if (u.imm <= 0 || u.end <= i + 1 || u.end > n) {
                    rep.add(Severity::Error, "program",
                            strprintf("actor '%s': malformed lsetup "
                                      "at pc %zu",
                                      actor.c_str(), i));
                    malformed = true;
                } else {
                    body_start_at[u.end].push_back(uint32_t(i + 1));
                }
            } else if (u.kind == UopKind::Jump ||
                       u.kind == UopKind::Jcc ||
                       u.kind == UopKind::Jncc) {
                if (u.imm < 0 || uint32_t(u.imm) >= n) {
                    rep.add(Severity::Error, "program",
                            strprintf("actor '%s': branch target %d "
                                      "out of range at pc %zu",
                                      actor.c_str(), u.imm, i));
                    malformed = true;
                }
            }
        }
        if (malformed)
            continue;

        auto successors = [&](size_t i) {
            std::vector<uint32_t> s;
            const MicroOp &u = uops[i];
            auto linear = [&](uint32_t next) {
                if (next < n)
                    s.push_back(next);
                for (uint32_t b : body_start_at[next])
                    s.push_back(b);
            };
            switch (u.kind) {
              case UopKind::Halt:
                break;
              case UopKind::Jump:
                s.push_back(uint32_t(u.imm));
                break;
              case UopKind::Jcc:
              case UopKind::Jncc:
                s.push_back(uint32_t(u.imm));
                linear(uint32_t(i + 1));
                break;
              default:
                linear(uint32_t(i + 1));
                break;
            }
            return s;
        };

        std::vector<isa::UopEffects> eff(n);
        for (size_t i = 0; i < n; ++i)
            eff[i] = isa::uopEffects(uops[i]);

        std::vector<std::vector<uint32_t>> succ(n);
        std::vector<std::vector<uint32_t>> pred(n);
        for (size_t i = 0; i < n; ++i) {
            succ[i] = successors(i);
            for (uint32_t s : succ[i])
                pred[s].push_back(uint32_t(i));
        }

        // Must-initialize forward dataflow: in[pc] = the register
        // units written on EVERY path from entry. A read outside
        // in[pc] can observe the architectural reset value — the bug
        // class the runners could previously only catch dynamically.
        std::vector<uint32_t> in(n, AllUnits);
        std::vector<char> reach(n, 0);
        in[0] = 0;
        reach[0] = 1;
        std::vector<uint32_t> work{0};
        while (!work.empty()) {
            uint32_t i = work.back();
            work.pop_back();
            const uint32_t out = in[i] | eff[i].writes;
            for (uint32_t s : succ[i]) {
                uint32_t next = reach[s] ? (in[s] & out) : out;
                if (!reach[s] || next != in[s]) {
                    in[s] = next;
                    reach[s] = 1;
                    work.push_back(s);
                }
            }
        }
        for (size_t i = 0; i < n; ++i) {
            if (!reach[i])
                continue;
            uint32_t missing = eff[i].reads & ~in[i];
            if (!missing)
                continue;
            std::string units;
            for (unsigned u = 0; u < isa::NumRegUnits; ++u) {
                if (missing & (1u << u)) {
                    if (!units.empty())
                        units += ", ";
                    units += isa::regUnitName(u);
                }
            }
            rep.add(Severity::Error, "program",
                    strprintf("uninitialized read: actor '%s' pc %zu "
                              "reads %s before any write reaches it",
                              actor.c_str(), i, units.c_str()));
        }

        // May-liveness backward dataflow for dead writes. Post-modify
        // pointer updates are addressing idiom (the increment rides
        // along for free), so a dead pointer write on Load/Store is
        // not reported.
        std::vector<uint32_t> live(n, 0);
        bool changed = true;
        while (changed) {
            changed = false;
            for (size_t r = n; r-- > 0;) {
                uint32_t out = 0;
                for (uint32_t s : succ[r])
                    out |= live[s];
                uint32_t li = eff[r].reads | (out & ~eff[r].writes);
                if (li != live[r]) {
                    live[r] = li;
                    changed = true;
                }
            }
        }
        for (size_t i = 0; i < n; ++i) {
            if (!reach[i])
                continue;
            uint32_t out = 0;
            for (uint32_t s : succ[i])
                out |= live[s];
            uint32_t dead = eff[i].writes & ~out;
            if (uops[i].kind == UopKind::Store ||
                ((uops[i].kind == UopKind::Load) &&
                 (uops[i].flags & isa::UopPostMod))) {
                dead &= ~(1u << (isa::UnitPtr0 + uops[i].rs1));
            }
            if (!dead || succ[i].empty())
                continue;
            std::string units;
            for (unsigned u = 0; u < isa::NumRegUnits; ++u) {
                if (dead & (1u << u)) {
                    if (!units.empty())
                        units += ", ";
                    units += isa::regUnitName(u);
                }
            }
            rep.add(Severity::Warning, "program",
                    strprintf("dead write: actor '%s' pc %zu writes "
                              "%s but no path reads it",
                              actor.c_str(), i, units.c_str()));
        }

        // Issue-slot accounting: for branch-free programs the walk's
        // slot total is exact, so the steady-state firing-loop period
        // (slots per SDF iteration) is derivable and can be checked
        // against the divider + ZORM useful-slot budget.
        const DagStage &st = *ci.stage;
        if (ci.walk.timing_exact && st.per_iteration > 0 &&
            st.firings >= st.per_iteration && ci.place->divider > 0) {
            const double iters =
                double(st.firings) / double(st.per_iteration);
            const double slots_per_iter =
                double(ci.walk.total_slots) / iters;
            const double demand_hz = slots_per_iter * a.rate;
            const double avail_hz = a.ref_hz / ci.place->divider *
                                    ci.place->zorm.usefulFraction();
            if (demand_hz > avail_hz * 1.02) {
                rep.add(
                    Severity::Warning, "program",
                    strprintf("actor '%s' needs %.0f issue slots/s "
                              "(%.1f per iteration) but its column "
                              "provides %.0f useful slots/s — the "
                              "planned rate is not sustainable",
                              actor.c_str(), demand_hz,
                              slots_per_iter, avail_hz));
            }
        }
    }
}

// ---------------------------------------------------------------------
// "slots": conflict freedom, DOU/schedule agreement, feasibility
// ---------------------------------------------------------------------

void
checkSlots(Analysis &a, VerifyReport &rep)
{
    const PipelineProgram &prog = *a.prog;
    bool clean = true;
    auto err = [&](std::string msg) {
        rep.add(Severity::Error, "slots", std::move(msg));
        clean = false;
    };

    std::set<unsigned> lanes_used;
    for (size_t e = 0; e < a.edges.size(); ++e) {
        if (!lanes_used.insert(a.edges[e].lane).second)
            err(strprintf("edge %zu shares bus lane %u with another "
                          "edge; tag-matched pops need one lane per "
                          "edge",
                          e, a.edges[e].lane));
    }

    // Global slot map: (offset, lane) -> owners. Two drives on one
    // lane in one bus cycle is the structural hazard the fabric
    // counts as a conflict; the verifier proves there are none.
    struct Owner
    {
        size_t col;
        bool drive;
    };
    std::map<std::pair<unsigned, unsigned>, std::vector<Owner>> slot;
    for (size_t c = 0; c < a.cols.size(); ++c) {
        const CommSchedule &sched = a.cols[c].col->schedule;
        if (sched.period != prog.period)
            err(strprintf("actor '%s' schedule period %u != program "
                          "period %u",
                          a.cols[c].stage->actor.c_str(),
                          sched.period, prog.period));
        if (sched.prologue != 0)
            err(strprintf("actor '%s' schedule has a prologue; the "
                          "lowerer never emits one",
                          a.cols[c].stage->actor.c_str()));
        for (const Transfer &t : sched.transfers) {
            if (t.offset >= sched.period || t.lane >= arch::BusLanes) {
                err(strprintf("actor '%s' transfer at offset %u lane "
                              "%u out of range",
                              a.cols[c].stage->actor.c_str(),
                              t.offset, t.lane));
                continue;
            }
            slot[{t.offset, t.lane}].push_back(
                {c, t.src_tile >= 0});
        }
    }
    for (const auto &[key, owners] : slot) {
        size_t drives = 0, captures = 0;
        for (const Owner &o : owners)
            (o.drive ? drives : captures) += 1;
        if (drives > 1 || captures > 1) {
            std::string who;
            for (const Owner &o : owners) {
                if (!who.empty())
                    who += ", ";
                who += "'" + a.cols[o.col].stage->actor + "'";
            }
            err(strprintf("conflicting slot assignment: bus cycle %u "
                          "lane %u is claimed more than once (%s)",
                          key.first, key.second, who.c_str()));
        } else if (drives == 1 && captures == 0) {
            rep.add(Severity::Warning, "slots",
                    strprintf("drive slot at bus cycle %u lane %u "
                              "has no capture; delivered words go "
                              "nowhere",
                              key.first, key.second));
        } else if (captures == 1 && drives == 0) {
            err(strprintf("capture slot at bus cycle %u lane %u has "
                          "no matching drive; the consumer's buffer "
                          "is never fed",
                          key.first, key.second));
        }
    }

    // Per-edge slot sets: the producer's drive offsets and the
    // consumer's capture offsets on the edge's lane must agree, and
    // their rate must cover the edge's token rate at the lowering's
    // grid pacing (slots are a delivery ceiling; the grid paces the
    // DAG at demand/slack).
    for (size_t e = 0; e < a.edges.size(); ++e) {
        const EdgeInfo &ei = a.edges[e];
        auto offsetsOf = [&](size_t c, bool drive) {
            std::set<unsigned> offs;
            for (const Transfer &t : a.cols[c].col->schedule.transfers)
                if (t.lane == ei.lane && (t.src_tile >= 0) == drive)
                    offs.insert(t.offset);
            return offs;
        };
        std::set<unsigned> d = offsetsOf(ei.src, true);
        std::set<unsigned> cap = offsetsOf(ei.dst, false);
        const std::string desc = strprintf(
            "edge %zu (%s -> %s, lane %u)", e,
            a.cols[ei.src].stage->actor.c_str(),
            a.cols[ei.dst].stage->actor.c_str(), ei.lane);
        if (d.empty()) {
            err(desc + ": producer has no drive slot on the lane");
            continue;
        }
        if (d != cap) {
            err(desc + ": drive and capture slot offsets disagree");
            continue;
        }
        if (prog.period == 0)
            continue;
        const double cap_hz =
            double(d.size()) * a.ref_hz / double(prog.period);
        const double need_hz = ei.src_words *
                               double(a.cols[ei.src].stage
                                          ->per_iteration) *
                               a.rate / a.slack;
        if (cap_hz < need_hz * (1 - 1e-9)) {
            err(desc +
                strprintf(": %zu slots/period deliver %.0f words/s "
                          "but the edge needs %.0f at the lowered "
                          "pacing — under-provisioned",
                          d.size(), cap_hz, need_hz));
        }
    }

    // Stray transfers: a column driving or capturing a lane that is
    // not one of its actor's edges moves words the dataflow graph
    // does not account for.
    for (size_t c = 0; c < a.cols.size(); ++c) {
        std::set<unsigned> out_l, in_l;
        for (size_t e : a.cols[c].out_edges)
            out_l.insert(a.edges[e].lane);
        for (size_t e : a.cols[c].in_edges)
            in_l.insert(a.edges[e].lane);
        for (const Transfer &t : a.cols[c].col->schedule.transfers) {
            if (t.offset >= prog.period || t.lane >= arch::BusLanes)
                continue; // already reported
            const bool drive = t.src_tile >= 0;
            const std::set<unsigned> &own = drive ? out_l : in_l;
            if (!own.count(t.lane))
                err(strprintf("actor '%s' has a stray %s slot on "
                              "lane %u (not one of its edges)",
                              a.cols[c].stage->actor.c_str(),
                              drive ? "drive" : "capture", t.lane));
        }
    }

    // Abstract DOU replay: run each column's compiled state machine
    // for one full period with the exact Dou::step() rule, compare
    // every cycle's SEG/Buffer outputs against the schedule's
    // reference interpretation, and require the machine to return to
    // its initial state — which extends the one-period proof to every
    // later period by induction.
    for (const ColInfo &ci : a.cols) {
        const arch::DouProgram &dou = ci.col->dou;
        const std::string &actor = ci.stage->actor;
        if (dou.states.empty()) {
            err("actor '" + actor + "': empty DOU program");
            continue;
        }
        unsigned st = 0;
        std::array<uint32_t, arch::DouNumCounters> ctrs =
            dou.counter_init;
        bool bad = false;
        for (uint64_t cyc = 0; cyc < prog.period && !bad; ++cyc) {
            if (st >= dou.states.size()) {
                err(strprintf("actor '%s': DOU transitions to "
                              "missing state %u",
                              actor.c_str(), st));
                bad = true;
                break;
            }
            const arch::DouState &out = dou.states[st];
            const arch::DouState ref =
                scheduleOutputAt(ci.col->schedule, cyc);
            if (out.seg != ref.seg || out.buf != ref.buf) {
                err(strprintf("actor '%s': DOU output diverges from "
                              "its schedule at bus cycle %llu",
                              actor.c_str(),
                              (unsigned long long)cyc));
                bad = true;
                break;
            }
            uint32_t &ctr = ctrs[out.cntr];
            if (ctr == 0) {
                ctr = dou.counter_init[out.cntr];
                st = out.nxt0;
            } else {
                --ctr;
                st = out.nxt1;
            }
        }
        if (!bad && (st != 0 || ctrs != dou.counter_init)) {
            err("actor '" + actor +
                "': DOU machine does not return to its initial "
                "state after one period, so later periods diverge "
                "from the schedule");
        }
    }

    // Lookahead horizon: the parallel-columns runtime lets columns
    // free-run between delivery slots, and the program declares the
    // static floor of that window. Recompute the floor from the slot
    // schedules themselves — the shortest run of delivery-free bus
    // cycles between consecutive active offsets, circular over one
    // period — and hold the declaration to it: a mis-declared
    // horizon would let a scheduler trust a window the bus does not
    // actually leave quiet.
    {
        std::set<unsigned> offs;
        for (const ColInfo &ci : a.cols) {
            for (const Transfer &t : ci.col->schedule.transfers) {
                if (t.offset < prog.period)
                    offs.insert(t.offset);
            }
        }
        unsigned computed = prog.period;
        if (!offs.empty()) {
            std::vector<unsigned> v(offs.begin(), offs.end());
            for (size_t i = 0; i < v.size(); ++i) {
                unsigned next = i + 1 < v.size()
                                    ? v[i + 1]
                                    : v[0] + prog.period;
                computed = std::min(computed, next - v[i] - 1);
            }
        }
        if (prog.lookahead_horizon == 0) {
            rep.add(Severity::Note, "slots",
                    strprintf("program declares no lookahead "
                              "horizon (schedule floor: %u quiet "
                              "cycles between delivery slots); the "
                              "parallel-columns runtime relies on "
                              "its dynamic probe alone",
                              computed));
        } else if (prog.lookahead_horizon != computed) {
            err(strprintf("declared lookahead horizon %u disagrees "
                          "with the slot schedule (floor: %u quiet "
                          "cycles between delivery slots); the "
                          "parallel-columns runtime must not trust "
                          "it",
                          prog.lookahead_horizon, computed));
        }
    }

    a.slots_clean = clean;
}

// ---------------------------------------------------------------------
// "tags": lane-tag producer/consumer matching + token counts
// ---------------------------------------------------------------------

void
checkTags(Analysis &a, VerifyReport &rep)
{
    for (ColInfo &ci : a.cols) {
        const std::string &actor = ci.stage->actor;
        std::map<unsigned, size_t> in_lane_edge, out_lane_edge;
        for (size_t e : ci.in_edges)
            in_lane_edge[a.edges[e].lane] = e;
        for (size_t e : ci.out_edges)
            out_lane_edge[a.edges[e].lane] = e;

        bool ok = true;
        auto checkLane = [&](bool is_read, int lane,
                             int &resolved) -> bool {
            const auto &own = is_read ? in_lane_edge : out_lane_edge;
            const char *dir = is_read ? "input" : "output";
            const char *op = is_read ? "crd" : "cwr";
            if (lane < 0) {
                if (own.size() != 1) {
                    rep.add(Severity::Error, "tags",
                            strprintf("actor '%s' executes untagged "
                                      "`%s` but has %zu %s edges — "
                                      "the binding is ambiguous",
                                      actor.c_str(), op, own.size(),
                                      dir));
                    return false;
                }
                resolved = int(own.begin()->first);
                return true;
            }
            if (!own.count(unsigned(lane))) {
                rep.add(Severity::Error, "tags",
                        strprintf("mismatched lane tag: actor '%s' "
                                  "executes `%s` tagged lane %d, "
                                  "which is not one of its %s-edge "
                                  "lanes",
                                  actor.c_str(), op, lane, dir));
                return false;
            }
            resolved = lane;
            return true;
        };

        if (ci.walk.sequence_exact) {
            std::map<unsigned, uint64_t> reads, writes;
            ci.events = ci.walk.events;
            for (CommEvent &ev : ci.events) {
                int resolved = -1;
                if (!checkLane(ev.is_read, ev.lane, resolved)) {
                    ok = false;
                    break;
                }
                ev.lane = resolved;
                (ev.is_read ? reads
                            : writes)[unsigned(resolved)] += 1;
            }
            if (ok) {
                for (const auto &[lane, e] : in_lane_edge) {
                    const uint64_t want =
                        a.edges[e].dst_words *
                        a.cols[a.edges[e].dst].stage->firings;
                    const uint64_t got = reads.count(lane)
                                             ? reads.at(lane)
                                             : 0;
                    if (got != want) {
                        rep.add(
                            Severity::Error, "tags",
                            strprintf("token count mismatch: actor "
                                      "'%s' reads %llu words on lane "
                                      "%u but edge %zu delivers %llu",
                                      actor.c_str(),
                                      (unsigned long long)got, lane,
                                      e, (unsigned long long)want));
                        ok = false;
                    }
                }
                for (const auto &[lane, e] : out_lane_edge) {
                    const uint64_t want =
                        a.edges[e].src_words *
                        a.cols[a.edges[e].src].stage->firings;
                    const uint64_t got = writes.count(lane)
                                             ? writes.at(lane)
                                             : 0;
                    if (got != want) {
                        rep.add(
                            Severity::Error, "tags",
                            strprintf("token count mismatch: actor "
                                      "'%s' writes %llu words on "
                                      "lane %u but edge %zu carries "
                                      "%llu",
                                      actor.c_str(),
                                      (unsigned long long)got, lane,
                                      e, (unsigned long long)want));
                        ok = false;
                    }
                }
            }
            ci.events_ok = ok;
        } else {
            // Data-dependent comm sequence: degrade to lane-set
            // membership — every lane the program can touch must
            // still be one of its edges.
            for (int lane : ci.walk.read_lanes) {
                int resolved = -1;
                ok = checkLane(true, lane, resolved) && ok;
            }
            for (int lane : ci.walk.write_lanes) {
                int resolved = -1;
                ok = checkLane(false, lane, resolved) && ok;
            }
            rep.add(Severity::Note, "tags",
                    strprintf("actor '%s': %s; token counts checked "
                              "by lane membership only",
                              actor.c_str(),
                              ci.walk.inexact_why.c_str()));
            ci.events_ok = false;
        }
    }
}

// ---------------------------------------------------------------------
// "tokens": worst-case token flow (overrun + deadlock freedom)
// ---------------------------------------------------------------------

/**
 * Untimed Kahn-network replay for self-timed artifacts. The network
 * — single-slot write buffer per column, single-slot read buffer per
 * (column, lane), one producer per lane, deferral instead of drops —
 * has the diamond property (an enabled move stays enabled until
 * taken), so greedy maximal progress terminates iff some schedule
 * does; reaching every program's end proves deadlock freedom for
 * every real timing, and deferral makes overrun structurally
 * unreachable.
 */
void
kahnReplay(Analysis &a, VerifyReport &rep)
{
    std::array<int, arch::BusLanes> consumer_of;
    consumer_of.fill(-1);
    for (const EdgeInfo &ei : a.edges)
        consumer_of[ei.lane] = int(ei.dst);

    struct KCol
    {
        size_t next = 0;
        int wb_lane = -1;
        std::array<char, arch::BusLanes> rb{};
    };
    std::vector<KCol> st(a.cols.size());

    bool progress = true;
    while (progress) {
        progress = false;
        for (size_t c = 0; c < a.cols.size(); ++c) {
            KCol &k = st[c];
            const std::vector<CommEvent> &ev = a.cols[c].events;
            while (k.next < ev.size()) {
                const CommEvent &e = ev[k.next];
                const unsigned lane = unsigned(e.lane);
                if (e.is_read) {
                    if (!k.rb[lane])
                        break;
                    k.rb[lane] = 0;
                } else {
                    if (k.wb_lane >= 0)
                        break;
                    k.wb_lane = int(lane);
                }
                ++k.next;
                progress = true;
            }
        }
        for (size_t c = 0; c < a.cols.size(); ++c) {
            KCol &k = st[c];
            if (k.wb_lane < 0)
                continue;
            const int dst = consumer_of[unsigned(k.wb_lane)];
            if (dst >= 0 && !st[size_t(dst)].rb[unsigned(k.wb_lane)]) {
                st[size_t(dst)].rb[unsigned(k.wb_lane)] = 1;
                k.wb_lane = -1;
                progress = true;
            }
        }
    }

    std::string blocked;
    for (size_t c = 0; c < a.cols.size(); ++c) {
        const std::vector<CommEvent> &ev = a.cols[c].events;
        if (st[c].next >= ev.size())
            continue;
        const CommEvent &e = ev[st[c].next];
        if (!blocked.empty())
            blocked += "; ";
        blocked += strprintf("actor '%s' blocked at comm op %zu (%s "
                             "lane %d)",
                             a.cols[c].stage->actor.c_str(),
                             st[c].next, e.is_read ? "crd" : "cwr",
                             e.lane);
    }
    if (!blocked.empty()) {
        rep.add(Severity::Error, "tokens",
                "deadlock: the token network cannot complete under "
                "any timing — " +
                    blocked);
    }
}

/**
 * Exact timed replay of the comm-relevant projection for legacy
 * (drop-new) artifacts: column edges at tick = edge * divider, ZORM
 * Bresenham stepping on every edge (stalls included, exactly like
 * SimdController::cycle()), comm hazard stalls, DOU drive slots
 * popping tag-matched words, deliveries visible at the consumer's
 * next edge. Sound only for timing-exact programs — the caller
 * guarantees that. Proves drop-new overrun unreachable and the run
 * deadlock-free.
 */
void
timedReplay(Analysis &a, VerifyReport &rep)
{
    const unsigned period = a.prog->period;
    if (period == 0)
        return;

    struct TCol
    {
        uint64_t divider = 1;
        ZormSetting z;
        size_t next = 0;
        uint64_t edge = 0; //!< column edges consumed; tick = edge*div
        uint64_t acc = 0;  //!< ZORM accumulator
        bool halted = false;
        bool stalled = false;
        int wb_lane = -1;
        std::array<char, arch::BusLanes> rb{};
        std::array<uint64_t, arch::BusLanes> rb_since{};
        std::array<uint64_t, arch::BusLanes> pending_writes{};
        std::array<std::vector<unsigned>, arch::BusLanes> drive_offs;
    };
    std::vector<TCol> st(a.cols.size());

    // Bus slots: offset -> the transfers scheduled there.
    struct Slot
    {
        unsigned lane;
        size_t prod, cons;
    };
    std::map<unsigned, std::vector<Slot>> slots;
    for (size_t e = 0; e < a.edges.size(); ++e) {
        const EdgeInfo &ei = a.edges[e];
        for (const Transfer &t :
             a.cols[ei.src].col->schedule.transfers) {
            if (t.lane == ei.lane && t.src_tile >= 0) {
                slots[t.offset].push_back({ei.lane, ei.src, ei.dst});
                st[ei.src].drive_offs[ei.lane].push_back(t.offset);
            }
        }
    }

    std::array<int, arch::BusLanes> producer_of;
    producer_of.fill(-1);
    for (const EdgeInfo &ei : a.edges)
        producer_of[ei.lane] = int(ei.src);

    // Advance a column through k useful issue slots, charging the
    // ZORM-forced nop edges in closed form: S = k + (acc0 + S*n)/p
    // (monotone fixpoint; n < p is checked by the "zorm" pass).
    auto burn = [](TCol &c, uint64_t k) {
        if (c.z.period == 0 || c.z.nops == 0) {
            c.edge += k;
            return;
        }
        uint64_t s = k;
        while (true) {
            const uint64_t s2 =
                k + (c.acc + s * c.z.nops) / c.z.period;
            if (s2 == s)
                break;
            s = s2;
        }
        c.acc = (c.acc + s * c.z.nops) % c.z.period;
        c.edge += s;
    };

    for (size_t c = 0; c < a.cols.size(); ++c) {
        TCol &t = st[c];
        t.divider = std::max(1u, a.cols[c].place->divider);
        t.z = a.cols[c].col->zorm;
        if (t.z.period > 0 && t.z.nops >= t.z.period)
            return; // "zorm" already rejected this artifact
        for (const CommEvent &e : a.cols[c].events)
            if (!e.is_read)
                ++t.pending_writes[unsigned(e.lane)];
        if (a.cols[c].events.empty()) {
            t.halted = true;
        } else {
            burn(t, a.cols[c].events[0].gap);
        }
    }

    auto finishOp = [&](size_t c) {
        TCol &t = st[c];
        const std::vector<CommEvent> &ev = a.cols[c].events;
        t.stalled = false;
        ++t.next;
        if (t.next < ev.size()) {
            burn(t, ev[t.next].gap);
        } else {
            burn(t, a.cols[c].walk.tail_slots);
            t.halted = true;
        }
    };

    // One column edge: ZORM gate first, then the comm attempt — the
    // exact SimdController::cycle() order (a stalled edge still
    // advances the accumulator).
    auto attempt = [&](size_t c, uint64_t tick) {
        TCol &t = st[c];
        ++t.edge;
        if (t.z.period > 0) {
            t.acc += t.z.nops;
            if (t.acc >= t.z.period) {
                t.acc -= t.z.period;
                return; // forced nop edge
            }
        }
        const CommEvent &e = a.cols[c].events[t.next];
        const unsigned lane = unsigned(e.lane);
        if (e.is_read) {
            if (t.rb[lane] && t.rb_since[lane] < tick) {
                t.rb[lane] = 0;
                finishOp(c);
            } else {
                t.stalled = true;
            }
        } else {
            if (t.wb_lane < 0) {
                t.wb_lane = int(lane);
                --t.pending_writes[lane];
                finishOp(c);
            } else {
                t.stalled = true;
            }
        }
    };

    // Deadlock detection: a column makes progress iff it is still
    // computing, its pending write will be popped (legacy drive
    // slots pop unconditionally), or the lane it reads is full /
    // in its progressing producer's remaining writes.
    auto deadlocked = [&](std::string &who) {
        std::vector<char> prog_flag(a.cols.size(), 0);
        for (size_t c = 0; c < a.cols.size(); ++c) {
            const TCol &t = st[c];
            if (t.halted || !t.stalled) {
                prog_flag[c] = 1;
                continue;
            }
            const CommEvent &e = a.cols[c].events[t.next];
            if (!e.is_read) {
                prog_flag[c] = 1; // write stall: the slot will pop
            } else if (t.rb[unsigned(e.lane)]) {
                prog_flag[c] = 1;
            }
        }
        bool changed = true;
        while (changed) {
            changed = false;
            for (size_t c = 0; c < a.cols.size(); ++c) {
                if (prog_flag[c] || st[c].halted)
                    continue;
                const CommEvent &e = a.cols[c].events[st[c].next];
                const int p = producer_of[unsigned(e.lane)];
                if (p < 0)
                    continue;
                const TCol &pt = st[size_t(p)];
                const bool fed =
                    pt.wb_lane == e.lane ||
                    (prog_flag[size_t(p)] &&
                     pt.pending_writes[unsigned(e.lane)] > 0);
                if (fed) {
                    prog_flag[c] = 1;
                    changed = true;
                }
            }
        }
        for (size_t c = 0; c < a.cols.size(); ++c) {
            if (!st[c].halted && !prog_flag[c]) {
                const CommEvent &e = a.cols[c].events[st[c].next];
                who = strprintf("actor '%s' waits forever on lane "
                                "%d",
                                a.cols[c].stage->actor.c_str(),
                                e.lane);
                return true;
            }
        }
        return false;
    };

    constexpr uint64_t IterGuard = 400'000'000;
    uint64_t tick = 0;
    bool first = true;
    for (uint64_t iter = 0;; ++iter) {
        bool all_halted = true;
        for (const TCol &t : st)
            all_halted = all_halted && t.halted;
        if (all_halted)
            return; // every program completed: overrun-free, no
                    // deadlock
        if (iter >= IterGuard) {
            rep.add(Severity::Warning, "tokens",
                    "timed replay exceeded its step budget before "
                    "the programs completed; drop-new overrun "
                    "freedom not proven");
            return;
        }
        if ((iter & 0x1fff) == 0x1fff) {
            std::string who;
            if (deadlocked(who)) {
                rep.add(Severity::Error, "tokens",
                        "deadlock: " + who);
                return;
            }
        }

        // Next interesting tick: a column edge, or a drive slot that
        // can pop a pending write-buffer word.
        uint64_t tn = UINT64_MAX;
        for (const TCol &t : st) {
            if (!t.halted)
                tn = std::min(tn, t.edge * t.divider);
        }
        const uint64_t from = first ? 0 : tick + 1;
        for (const TCol &t : st) {
            if (t.wb_lane < 0)
                continue;
            for (unsigned off : t.drive_offs[unsigned(t.wb_lane)]) {
                const uint64_t phase = from % period;
                const uint64_t next =
                    from + ((off + period - phase) % period);
                tn = std::min(tn, next);
            }
        }
        if (tn == UINT64_MAX) {
            std::string who;
            rep.add(Severity::Error, "tokens",
                    deadlocked(who) ? "deadlock: " + who
                                    : "deadlock: no column can make "
                                      "progress");
            return;
        }
        tick = tn;
        first = false;

        // 1) every column edge at this tick (domain edges precede
        //    the reference phase, as in the scheduler backends);
        for (size_t c = 0; c < a.cols.size(); ++c) {
            if (!st[c].halted && st[c].edge * st[c].divider == tick)
                attempt(c, tick);
        }
        // 2) the bus cycle at this tick: pop tag-matched words,
        //    deliver, and flag legacy drop-new.
        auto it = slots.find(unsigned(tick % period));
        if (it == slots.end())
            continue;
        for (const Slot &s : it->second) {
            TCol &p = st[s.prod];
            if (p.wb_lane != int(s.lane))
                continue;
            p.wb_lane = -1;
            TCol &cns = st[s.cons];
            if (cns.rb[s.lane]) {
                rep.add(
                    Severity::Error, "tokens",
                    strprintf("read-buffer overrun reachable: the "
                              "delivery at tick %llu on lane %u "
                              "finds actor '%s' still holding the "
                              "previous word — the legacy bus would "
                              "drop the new one",
                              (unsigned long long)tick, s.lane,
                              a.cols[s.cons].stage->actor.c_str()));
                return;
            }
            cns.rb[s.lane] = 1;
            cns.rb_since[s.lane] = tick;
        }
    }
}

void
checkTokens(Analysis &a, VerifyReport &rep)
{
    if (!a.slots_clean) {
        rep.add(Severity::Note, "tokens",
                "token-flow replay skipped: the slot schedule is "
                "inconsistent");
        return;
    }

    bool all_exact = true, all_timed = true;
    for (const ColInfo &ci : a.cols) {
        all_exact = all_exact && ci.events_ok;
        all_timed = all_timed && ci.events_ok &&
                    ci.walk.timing_exact;
    }

    if (a.prog->self_timed) {
        // Overrun is structurally unreachable on the self-timed bus
        // (a transfer whose destination buffer is full defers), so
        // the property left to prove is deadlock freedom.
        if (all_exact) {
            kahnReplay(a, rep);
        } else {
            rep.add(Severity::Note, "tokens",
                    "deadlock freedom not statically provable: some "
                    "comm sequence is data-dependent; the runner's "
                    "drain asserts cover it dynamically");
        }
        return;
    }

    if (all_timed) {
        timedReplay(a, rep);
    } else {
        rep.add(Severity::Warning, "tokens",
                "drop-new overrun freedom not statically provable: "
                "some program's issue timing is data-dependent; the "
                "runner's fabric asserts cover it dynamically");
    }
}

// ---------------------------------------------------------------------
// "zorm": plan/program rate-match consistency
// ---------------------------------------------------------------------

void
checkZorm(Analysis &a, VerifyReport &rep)
{
    for (const ColInfo &ci : a.cols) {
        const ActorPlacement &p = *ci.place;
        const ZormSetting &z = ci.col->zorm;
        const std::string &actor = ci.stage->actor;

        if (ci.col->column != p.first_column) {
            rep.add(Severity::Error, "zorm",
                    strprintf("actor '%s' programmed on column %u "
                              "but planned on column %u",
                              actor.c_str(), ci.col->column,
                              p.first_column));
        }
        if (p.divider == 0) {
            rep.add(Severity::Error, "zorm",
                    "actor '" + actor + "': zero clock divider");
            continue;
        }
        const double f_col = a.plan->ref_freq_mhz / p.divider;
        if (p.f_column_mhz > 0 &&
            std::abs(f_col - p.f_column_mhz) >
                1e-6 * std::max(1.0, p.f_column_mhz)) {
            rep.add(Severity::Error, "zorm",
                    strprintf("actor '%s': planned column frequency "
                              "%.6f MHz is not ref/divider = %.6f "
                              "MHz",
                              actor.c_str(), p.f_column_mhz, f_col));
        }
        if (p.f_needed_mhz > f_col * (1 + 1e-9)) {
            rep.add(Severity::Error, "zorm",
                    strprintf("actor '%s': demand %.6f MHz exceeds "
                              "its column clock %.6f MHz",
                              actor.c_str(), p.f_needed_mhz, f_col));
            continue;
        }
        if (z.nops != p.zorm.nops || z.period != p.zorm.period) {
            rep.add(Severity::Error, "zorm",
                    strprintf("ZORM plan/program mismatch for actor "
                              "'%s': program runs %u/%u but the plan "
                              "says %u/%u",
                              actor.c_str(), z.nops, z.period,
                              p.zorm.nops, p.zorm.period));
            continue;
        }
        if (z.period > 0 && z.nops >= z.period) {
            rep.add(Severity::Error, "zorm",
                    strprintf("ZORM setting %u/%u for actor '%s' "
                              "leaves no useful slots",
                              z.nops, z.period, actor.c_str()));
            continue;
        }
        // The loaded fraction must reproduce the plan's demand/clock
        // ratio to the precision the producer works at:
        // exactRateMatch() reduces the fraction of the two rates
        // *rounded to integer Hz*, so the loaded rational can differ
        // from the unrounded MHz ratio by up to 0.5 Hz in each rate
        // (~1/f_col_hz combined) on top of the half-slot-per-period
        // representation granularity. Tighter would reject settings
        // the mapper itself emits.
        if (p.f_needed_mhz > 0) {
            const double want = p.f_needed_mhz / f_col;
            const double got = z.usefulFraction();
            const double quant = 1.0 / (f_col * 1e6);
            const double tol =
                (z.period > 0 ? 0.5 / double(z.period) : 1e-9) +
                quant;
            if (std::abs(got - want) > tol) {
                rep.add(
                    Severity::Error, "zorm",
                    strprintf("ZORM setting %u/%u for actor '%s' "
                              "paces %.9f of the column clock but "
                              "the plan needs %.9f",
                              z.nops, z.period, actor.c_str(), got,
                              want));
            }
        }
    }
}

} // namespace

// ---------------------------------------------------------------------
// VerifyReport
// ---------------------------------------------------------------------

const std::vector<std::string> &
VerifyReport::checkNames()
{
    static const std::vector<std::string> names{
        "program", "slots", "tags", "tokens", "zorm"};
    return names;
}

bool
VerifyReport::ok() const
{
    for (const Finding &f : findings) {
        if (f.severity == Severity::Error)
            return false;
    }
    return true;
}

bool
VerifyReport::checkPassed(const std::string &check) const
{
    for (const Finding &f : findings) {
        if (f.severity == Severity::Error && f.check == check)
            return false;
    }
    return true;
}

std::string
VerifyReport::errorSummary() const
{
    std::string out;
    for (const Finding &f : findings) {
        if (f.severity != Severity::Error)
            continue;
        if (!out.empty())
            out += "; ";
        out += "[" + f.check + "] " + f.message;
    }
    return out;
}

std::string
VerifyReport::render() const
{
    size_t errors = 0, warnings = 0, notes = 0;
    for (const Finding &f : findings) {
        switch (f.severity) {
          case Severity::Error:
            ++errors;
            break;
          case Severity::Warning:
            ++warnings;
            break;
          default:
            ++notes;
            break;
        }
    }
    std::string out = strprintf(
        "static verification: %s (%zu errors, %zu warnings, %zu "
        "notes)\n",
        ok() ? "PASS" : "FAIL", errors, warnings, notes);
    for (const std::string &check : checkNames()) {
        out += strprintf("  %-8s %s\n", (check + ":").c_str(),
                         checkPassed(check) ? "pass" : "FAIL");
    }
    for (const Finding &f : findings) {
        out += strprintf("  [%s] %s: %s\n",
                         severityName(f.severity).c_str(),
                         f.check.c_str(), f.message.c_str());
    }
    return out;
}

void
VerifyReport::add(Severity sev, const std::string &check,
                  std::string message)
{
    findings.push_back(Finding{sev, check, std::move(message)});
}

// ---------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------

VerifyReport
verifyLowered(const DagSpec &spec, const ChipPlan &plan,
              const PipelineProgram &prog, double iterations_per_sec,
              double slack)
{
    VerifyReport rep;
    Analysis a;
    a.spec = &spec;
    a.plan = &plan;
    a.prog = &prog;
    a.rate = iterations_per_sec > 0 ? iterations_per_sec : 0;
    a.slack = slack >= 1.0 ? slack : 1.0;
    if (!resolve(a, rep))
        return rep;
    checkProgram(a, rep);
    checkSlots(a, rep);
    checkTags(a, rep);
    checkZorm(a, rep);
    checkTokens(a, rep); // consumes tags/slots results; keep last
    return rep;
}

} // namespace synchro::mapping
