#include "mapping/comm_schedule.hh"

#include <algorithm>
#include <map>

#include "common/log.hh"

namespace synchro::mapping
{

using arch::BufferCtl;
using arch::DouProgram;
using arch::DouState;

namespace
{

/** Build the SEG/Buffer outputs for all transfers in one cycle. */
DouState
cycleOutputs(const CommSchedule &sched, unsigned offset)
{
    DouState st;
    std::vector<int> lane_owner(arch::BusLanes, -1);

    for (size_t ti = 0; ti < sched.transfers.size(); ++ti) {
        const Transfer &t = sched.transfers[ti];
        if (t.offset != offset)
            continue;
        if (t.lane >= arch::BusLanes)
            fatal("schedule: lane %u out of range", t.lane);
        if (t.offset >= sched.period)
            fatal("schedule: offset %u >= period %u", t.offset,
                  sched.period);
        if (lane_owner[t.lane] >= 0)
            fatal("schedule: two transfers on lane %u at offset %u",
                  t.lane, offset);
        lane_owner[t.lane] = int(ti);

        // Positions this transfer spans (for segment switches).
        unsigned lo = arch::TilesPerColumn, hi = 0;
        bool uses_h = t.to_horizontal || t.src_tile < 0;
        auto touch = [&](unsigned pos) {
            if (pos >= arch::TilesPerColumn)
                fatal("schedule: tile position %u out of range", pos);
            lo = std::min(lo, pos);
            hi = std::max(hi, pos);
        };
        if (t.src_tile >= 0) {
            touch(unsigned(t.src_tile));
            BufferCtl c = BufferCtl::fromByte(
                st.buf[unsigned(t.src_tile)]);
            if (c.drive)
                fatal("schedule: tile %d drives twice at offset %u",
                      t.src_tile, offset);
            c.drive = true;
            c.drive_lane = uint8_t(t.lane);
            st.buf[unsigned(t.src_tile)] = c.byte();
        }
        // A transfer with no sink is a drain: it empties the source
        // write buffer without delivering anywhere (used to keep
        // SIMD columns in lock step when only some lanes carry
        // useful data).
        for (unsigned d : t.dst_tiles) {
            touch(d);
            BufferCtl c = BufferCtl::fromByte(st.buf[d]);
            if (c.capture)
                fatal("schedule: tile %u captures twice at offset "
                      "%u",
                      d, offset);
            c.capture = true;
            c.capture_lane = uint8_t(t.lane);
            st.buf[d] = c.byte();
        }

        // Close the segment switches covering [lo, hi] on this
        // lane's pair bit, plus the boundary switch for horizontal
        // traffic (the boundary attaches at position 0).
        unsigned pair_bit = t.lane / 2;
        if (uses_h)
            lo = 0;
        for (unsigned k = lo; k < hi; ++k)
            st.seg[k] = uint8_t(st.seg[k] | (1u << pair_bit));
        if (uses_h)
            st.seg[3] = uint8_t(st.seg[3] | (1u << pair_bit));
    }
    return st;
}

} // namespace

EdgeSlots
allocateEdgeSlots(const std::vector<unsigned> &slots_per_edge,
                  uint64_t spacing)
{
    const size_t n_edges = slots_per_edge.size();
    if (n_edges == 0)
        fatal("edge slots: a DAG schedule needs at least one edge");
    if (n_edges > arch::BusLanes)
        fatal("edge slots: %zu DAG edges exceed the %u bus lanes",
              n_edges, arch::BusLanes);
    uint64_t total = 0;
    for (unsigned m : slots_per_edge) {
        if (m == 0)
            fatal("edge slots: every edge needs at least one slot "
                  "per period");
        total += m;
    }
    if (spacing <= total + n_edges)
        fatal("edge slots: grid period %llu too tight for %llu "
              "staggered slots (rate too high for the reference "
              "clock)",
              (unsigned long long)spacing,
              (unsigned long long)total);

    EdgeSlots slots;
    slots.period = unsigned(spacing);
    slots.offsets.resize(n_edges);
    std::vector<char> used(size_t(spacing), 0);
    for (size_t e = 0; e < n_edges; ++e) {
        slots.lane.push_back(unsigned(e));
        const unsigned m = slots_per_edge[e];
        const uint64_t stride = spacing / m;
        uint64_t prev = 0;
        bool first = true;
        for (unsigned j = 0; j < m; ++j) {
            uint64_t o = uint64_t(e) + j * stride;
            if (!first && o <= prev)
                o = prev + 1; // keep the lane's slots time-ordered
            while (o < spacing && used[size_t(o)])
                ++o;
            if (o >= spacing)
                fatal("edge slots: no conflict-free offset left for "
                      "slot %u of edge %zu in a period of %llu",
                      j, e, (unsigned long long)spacing);
            used[size_t(o)] = 1;
            slots.offsets[e].push_back(unsigned(o));
            prev = o;
            first = false;
        }
    }
    return slots;
}

DouState
scheduleOutputAt(const CommSchedule &sched, uint64_t bus_cycle)
{
    if (bus_cycle < sched.prologue)
        return DouState{};
    unsigned offset =
        unsigned((bus_cycle - sched.prologue) % sched.period);
    DouState st = cycleOutputs(sched, offset);
    st.nxt0 = st.nxt1 = 0; // successor fields are compiler business
    return st;
}

/**
 * Counter 3 is reserved as the always-zero fall-through counter:
 * single-cycle states (actives and 1-cycle idles) must test *some*
 * counter, and testing a live gap counter would decrement it. A
 * counter that is never loaded stays zero, so CNTR=3 always takes
 * NXTSTATE0 without perturbing the gap counters.
 */
constexpr unsigned ReservedCounter = arch::DouNumCounters - 1;

DouProgram
compileSchedule(const CommSchedule &sched)
{
    if (sched.period == 0)
        fatal("schedule: zero period");
    for (const Transfer &t : sched.transfers) {
        if (t.offset >= sched.period)
            fatal("schedule: offset %u >= period %u", t.offset,
                  sched.period);
    }

    // Active offsets in order.
    std::vector<unsigned> active;
    for (unsigned off = 0; off < sched.period; ++off) {
        for (const Transfer &t : sched.transfers) {
            if (t.offset == off) {
                active.push_back(off);
                break;
            }
        }
    }

    DouProgram prog;
    unsigned counters_used = 0;
    std::map<uint32_t, unsigned> gap_counter; // gap -> counter idx

    // Emit a wait of `gap` cycles before `next_state`; returns the
    // index of the first state of the wait (== next_state for gap 0).
    auto emit_wait = [&](uint32_t gap, auto &&self) -> unsigned {
        if (gap == 0)
            return unsigned(prog.states.size());
        if (gap >= 2) {
            auto it = gap_counter.find(gap);
            unsigned ctr;
            if (it != gap_counter.end()) {
                ctr = it->second;
            } else if (counters_used < ReservedCounter) {
                ctr = counters_used++;
                // A wait state entered with counter value v spends v
                // decrement cycles plus one reload-and-exit cycle.
                prog.counter_init[ctr] = gap - 1;
                gap_counter[gap] = ctr;
            } else {
                // No counter free: chain two shorter waits.
                unsigned first = self(gap - 1, self);
                self(1, self);
                return first;
            }
            // One state that self-loops gap-1 times then exits:
            // gap idle cycles total, counter auto-reloaded for the
            // next period.
            DouState wait;
            wait.cntr = uint8_t(ctr);
            unsigned idx = unsigned(prog.states.size());
            wait.nxt1 = uint8_t(idx);
            wait.nxt0 = uint8_t(idx + 1);
            prog.states.push_back(wait);
            return idx;
        }
        // gap == 1: single idle state falling through.
        DouState idle;
        idle.cntr = uint8_t(ReservedCounter);
        unsigned idx = unsigned(prog.states.size());
        idle.nxt0 = idle.nxt1 = uint8_t(idx + 1);
        prog.states.push_back(idle);
        return idx;
    };

    // Prologue wait, then the periodic body.
    unsigned body_start = 0;
    if (sched.prologue > 0)
        emit_wait(sched.prologue, emit_wait);
    body_start = unsigned(prog.states.size());

    if (active.empty()) {
        // Nothing ever transfers: idle forever.
        DouState idle;
        idle.cntr = uint8_t(ReservedCounter);
        idle.nxt0 = idle.nxt1 = uint8_t(prog.states.size());
        prog.states.push_back(idle);
        prog.validate();
        return prog;
    }

    for (size_t i = 0; i < active.size(); ++i) {
        // Wait from the previous active offset to this one.
        unsigned prev_end = i == 0 ? 0 : active[i - 1] + 1;
        emit_wait(active[i] - prev_end, emit_wait);
        DouState st = cycleOutputs(sched, active[i]);
        st.cntr = uint8_t(ReservedCounter);
        unsigned idx = unsigned(prog.states.size());
        st.nxt0 = st.nxt1 = uint8_t(idx + 1);
        prog.states.push_back(st);
    }
    // Tail wait to complete the period, then wrap to the body.
    unsigned tail = sched.period - (active.back() + 1);
    emit_wait(tail, emit_wait);
    // The last emitted state must wrap to body_start instead of
    // falling through.
    DouState &last = prog.states.back();
    if (last.nxt0 == prog.states.size())
        last.nxt0 = uint8_t(body_start);
    if (last.nxt1 == prog.states.size())
        last.nxt1 = uint8_t(body_start);

    if (prog.states.size() > arch::DouMaxStates)
        fatal("schedule compiles to %zu states; the DOU holds %u",
              prog.states.size(), arch::DouMaxStates);
    prog.validate();
    return prog;
}

} // namespace synchro::mapping
