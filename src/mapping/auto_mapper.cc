#include "mapping/auto_mapper.hh"

#include <cmath>

#include "common/bitfield.hh"
#include "common/log.hh"

namespace synchro::mapping
{

std::vector<unsigned>
ChipPlan::dividers() const
{
    std::vector<unsigned> out;
    for (const auto &p : placements) {
        for (unsigned c = 0; c < p.columns; ++c)
            out.push_back(p.divider);
    }
    return out;
}

std::string
ChipPlan::report() const
{
    std::string out = strprintf(
        "chip plan: %u tiles in %u columns off a %.0f MHz "
        "reference\n",
        total_tiles, total_columns, ref_freq_mhz);
    for (const auto &p : placements) {
        out += strprintf(
            "  %-16s %2u tiles, columns %u..%u, /%u = %.1f MHz @ "
            "%.2f V (needs %.1f",
            p.actor.c_str(), p.tiles, p.first_column,
            p.first_column + p.columns - 1, p.divider,
            p.f_column_mhz, p.v, p.f_needed_mhz);
        if (p.zorm.period != 0) {
            out += strprintf("; ZORM %u/%u", p.zorm.nops,
                             p.zorm.period);
        }
        out += ")\n";
    }
    out += strprintf("  power: %.2f mW (single voltage: %.2f mW)\n",
                     power.total(), single_voltage.total());
    return out;
}

std::optional<ChipPlan>
AutoMapper::map(const SdfGraph &graph, double iterations_per_sec,
                const std::vector<ActorCommSpec> &comm,
                unsigned tile_budget) const
{
    // --- SDF feasibility certificates --------------------------
    auto q = graph.repetitionVector();
    if (!q)
        return std::nullopt; // inconsistent rates
    if (!graph.deadlockFree())
        return std::nullopt;
    auto bounds = graph.bufferBounds();

    // --- actors -> workload descriptors -------------------------
    AppWorkload app;
    app.name = "auto";
    app.sample_rate_hz = iterations_per_sec;
    for (unsigned a = 0; a < graph.numActors(); ++a) {
        const SdfActor &actor = graph.actor(a);
        ActorCommSpec spec =
            a < comm.size() ? comm[a] : ActorCommSpec{};
        AlgoLoad load;
        load.name = actor.name;
        // Demand: firings/iteration x cycles/firing x iterations/s.
        load.demand_mcycles_s = double((*q)[a]) *
                                double(actor.work_cycles) *
                                iterations_per_sec / 1e6;
        load.ref_tiles = 1;
        load.ref_transfers_s = spec.words_per_firing *
                               double((*q)[a]) * iterations_per_sec;
        load.min_tiles = 1;
        load.max_tiles = spec.max_parallel;
        load.scaling = spec.scaling;
        load.divisor_of = spec.divisor_of;
        app.algos.push_back(load);
    }

    // --- power-optimal tile allocation ---------------------------
    unsigned budget = tile_budget != 0 ? tile_budget : 256;
    auto mapping = opt_.mapWithBudget(app, budget);
    if (!mapping)
        return std::nullopt;

    // --- columns, dividers, ZORM ---------------------------------
    ChipPlan plan;
    plan.ref_freq_mhz = ref_mhz_;
    plan.repetition = *q;
    if (bounds)
        plan.buffer_bounds = *bounds;
    plan.power = mapping->power;
    plan.single_voltage = mapping->single_voltage;

    unsigned next_column = 0;
    for (const auto &load : mapping->loads) {
        ActorPlacement p;
        p.actor = load.name;
        p.tiles = load.tiles;
        p.columns = divCeil(load.tiles, 4u);
        p.first_column = next_column;
        next_column += p.columns;
        p.f_needed_mhz = load.f_mhz;
        // Smallest divider whose frequency still covers the demand
        // is the largest divider with ref/d >= f: d = floor(ref/f).
        unsigned d = unsigned(ref_mhz_ / load.f_mhz);
        if (d == 0)
            return std::nullopt; // demand above the reference clock
        p.divider = d;
        p.f_column_mhz = ref_mhz_ / d;
        p.v = levels_.voltageFor(p.f_column_mhz);
        // ZORM closes the gap between the divided clock and the
        // exact demand (integer slot rates in Hz).
        p.zorm = exactRateMatch(
            uint64_t(std::llround(p.f_column_mhz * 1e6)),
            uint64_t(std::llround(p.f_needed_mhz * 1e6)));
        plan.placements.push_back(p);
        plan.total_tiles += p.tiles;
    }
    plan.total_columns = next_column;
    return plan;
}

} // namespace synchro::mapping
