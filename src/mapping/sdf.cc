#include "mapping/sdf.hh"

#include <numeric>

#include "common/log.hh"

namespace synchro::mapping
{

unsigned
SdfGraph::addActor(std::string name, uint64_t work_cycles)
{
    actors_.push_back({std::move(name), work_cycles});
    return unsigned(actors_.size() - 1);
}

void
SdfGraph::addEdge(unsigned src, unsigned dst, unsigned produce,
                  unsigned consume, unsigned initial_tokens)
{
    if (src >= actors_.size() || dst >= actors_.size())
        fatal("sdf edge references missing actor (%u -> %u)", src,
              dst);
    if (produce == 0 || consume == 0)
        fatal("sdf edge rates must be positive");
    edges_.push_back({src, dst, produce, consume, initial_tokens});
}

std::optional<std::vector<uint64_t>>
SdfGraph::repetitionVector() const
{
    if (actors_.empty())
        return std::vector<uint64_t>{};

    // Solve the balance equations with exact rational arithmetic:
    // propagate q as fractions num/den over a spanning traversal,
    // then verify every edge (handles disconnected graphs per
    // component).
    const unsigned n = numActors();
    std::vector<uint64_t> num(n, 0), den(n, 1);

    for (unsigned root = 0; root < n; ++root) {
        if (num[root] != 0)
            continue;
        num[root] = 1;
        den[root] = 1;
        // BFS over edges in both directions.
        std::vector<unsigned> queue{root};
        while (!queue.empty()) {
            unsigned a = queue.back();
            queue.pop_back();
            for (const auto &e : edges_) {
                unsigned other;
                // q[other] = q[a] * ratio
                uint64_t rn, rd;
                if (e.src == a) {
                    other = e.dst;
                    rn = e.produce;
                    rd = e.consume;
                } else if (e.dst == a) {
                    other = e.src;
                    rn = e.consume;
                    rd = e.produce;
                } else {
                    continue;
                }
                uint64_t qn = num[a] * rn;
                uint64_t qd = den[a] * rd;
                uint64_t g = std::gcd(qn, qd);
                qn /= g;
                qd /= g;
                if (num[other] == 0) {
                    num[other] = qn;
                    den[other] = qd;
                    queue.push_back(other);
                } else if (num[other] * qd != qn * den[other]) {
                    return std::nullopt; // inconsistent rates
                }
            }
        }
    }

    // Scale all fractions to the least common denominator.
    uint64_t lcd = 1;
    for (unsigned i = 0; i < n; ++i)
        lcd = std::lcm(lcd, den[i]);
    std::vector<uint64_t> q(n);
    for (unsigned i = 0; i < n; ++i)
        q[i] = num[i] * (lcd / den[i]);
    // Normalize to the minimal integer vector.
    uint64_t g = 0;
    for (uint64_t v : q)
        g = std::gcd(g, v);
    if (g > 1) {
        for (auto &v : q)
            v /= g;
    }
    return q;
}

std::optional<std::vector<unsigned>>
SdfGraph::selfTimedSchedule(std::vector<uint64_t> *max_tokens) const
{
    auto q_opt = repetitionVector();
    if (!q_opt)
        return std::nullopt;
    const auto &q = *q_opt;

    std::vector<uint64_t> tokens(edges_.size());
    std::vector<uint64_t> peak(edges_.size());
    for (size_t i = 0; i < edges_.size(); ++i)
        tokens[i] = peak[i] = edges_[i].initial_tokens;
    std::vector<uint64_t> fired(numActors(), 0);
    std::vector<unsigned> order;

    auto can_fire = [&](unsigned a) {
        if (fired[a] >= q[a])
            return false;
        for (size_t i = 0; i < edges_.size(); ++i) {
            if (edges_[i].dst == a && edges_[i].src != a &&
                tokens[i] < edges_[i].consume) {
                return false;
            }
            // Self-loop: consume before produce.
            if (edges_[i].dst == a && edges_[i].src == a &&
                tokens[i] < edges_[i].consume) {
                return false;
            }
        }
        return true;
    };

    uint64_t total = 0;
    for (uint64_t v : q)
        total += v;

    while (order.size() < total) {
        bool progressed = false;
        for (unsigned a = 0; a < numActors(); ++a) {
            if (!can_fire(a))
                continue;
            for (size_t i = 0; i < edges_.size(); ++i) {
                if (edges_[i].dst == a)
                    tokens[i] -= edges_[i].consume;
            }
            for (size_t i = 0; i < edges_.size(); ++i) {
                if (edges_[i].src == a) {
                    tokens[i] += edges_[i].produce;
                    peak[i] = std::max(peak[i], tokens[i]);
                }
            }
            ++fired[a];
            order.push_back(a);
            progressed = true;
        }
        if (!progressed)
            return std::nullopt; // deadlock
    }
    if (max_tokens)
        *max_tokens = peak;
    return order;
}

bool
SdfGraph::deadlockFree() const
{
    return selfTimedSchedule(nullptr).has_value();
}

std::optional<std::vector<uint64_t>>
SdfGraph::bufferBounds() const
{
    std::vector<uint64_t> peak;
    if (!selfTimedSchedule(&peak))
        return std::nullopt;
    return peak;
}

std::optional<uint64_t>
SdfGraph::iterationWork() const
{
    auto q = repetitionVector();
    if (!q)
        return std::nullopt;
    uint64_t work = 0;
    for (unsigned i = 0; i < numActors(); ++i)
        work += (*q)[i] * actors_[i].work_cycles;
    return work;
}

} // namespace synchro::mapping
