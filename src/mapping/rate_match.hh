/**
 * @file
 * Zero Overhead Rate Matching computation (paper Section 2.4).
 *
 * A column clocked at f_column issue-slots/s must deliver exactly
 * work_rate useful slots/s; the ZORM counter pair (nops, period)
 * makes the controller insert `nops` nops in every `period` slots so
 * the useful fraction is (period - nops) / period. This module finds
 * the exact or best bounded-denominator rational for that fraction —
 * the "perfect rate matching" the paper contrasts with padding nops
 * into loop bodies.
 */

#ifndef SYNC_MAPPING_RATE_MATCH_HH
#define SYNC_MAPPING_RATE_MATCH_HH

#include <cstdint>

namespace synchro::mapping
{

struct ZormSetting
{
    uint32_t nops = 0;
    uint32_t period = 0; //!< 0 disables rate matching

    /** Useful-slot fraction (period - nops) / period. */
    double
    usefulFraction() const
    {
        return period == 0
                   ? 1.0
                   : double(period - nops) / double(period);
    }
};

/**
 * Exact setting for integer rates: useful fraction = work / f.
 * fatal() if work > f (the column is too slow — raise the clock).
 *
 * @param f_slots_s     column issue slots per second
 * @param work_slots_s  useful slots per second the task needs
 */
ZormSetting exactRateMatch(uint64_t f_slots_s,
                           uint64_t work_slots_s);

/**
 * Best rational approximation of a useful fraction in (0, 1] with
 * period <= max_period (Stern-Brocot / continued fractions). The
 * returned fraction never undershoots the requested one (the column
 * must never fall behind the data rate).
 */
ZormSetting boundedRateMatch(double useful_fraction,
                             uint32_t max_period = 1u << 16);

/**
 * Nops-per-loop alternative the paper rejects (Section 2.4): pad a
 * loop of @p loop_slots with whole nops to stretch the rate; returns
 * the achieved useful fraction, which generally overshoots. Used by
 * the ZORM ablation bench.
 */
double loopPaddingFraction(uint64_t loop_slots,
                           double useful_fraction);

} // namespace synchro::mapping

#endif // SYNC_MAPPING_RATE_MATCH_HH
