/**
 * @file
 * Mapping optimizer — paper Section 4.1 step 2 ("Choose the number of
 * tiles, N, that minimizes power") and the parallelization study of
 * Section 5.2/Figure 7.
 *
 * For each algorithm the optimizer sweeps tile counts, derives the
 * per-column frequency (demand / tiles), quantizes to the supported
 * supply levels, and evaluates the full power model including the
 * communication overhead and leakage that create the diminishing
 * returns the paper reports. Application-level allocation under a
 * total tile budget is solved exactly by dynamic programming.
 */

#ifndef SYNC_MAPPING_OPTIMIZER_HH
#define SYNC_MAPPING_OPTIMIZER_HH

#include <optional>
#include <vector>

#include "mapping/workload.hh"
#include "power/system_power.hh"
#include "power/vf_model.hh"

namespace synchro::mapping
{

/** One algorithm mapped to a concrete (tiles, f, V) choice. */
struct Mapping
{
    power::DomainLoad load;
    unsigned tiles() const { return load.tiles; }
};

/** A full application mapping with its power evaluation. */
struct AppMapping
{
    std::vector<power::DomainLoad> loads;
    power::PowerBreakdown power;
    power::PowerBreakdown single_voltage;

    unsigned
    totalTiles() const
    {
        unsigned n = 0;
        for (const auto &l : loads)
            n += l.tiles;
        return n;
    }

    /** Percentage saved by multiple voltage domains (Table 4). */
    double
    savingsPercent() const
    {
        double sv = single_voltage.total();
        return sv > 0 ? 100.0 * (sv - power.total()) / sv : 0.0;
    }
};

class Optimizer
{
  public:
    explicit Optimizer(
        const power::SystemPowerModel &model,
        const power::SupplyLevels &levels)
        : model_(model), levels_(levels)
    {}

    /**
     * Map one algorithm onto exactly @p tiles: frequency = demand /
     * tiles quantized up to a supply level. Empty if no level can
     * sustain the required frequency.
     */
    std::optional<power::DomainLoad> mapAlgo(const AlgoLoad &algo,
                                             unsigned tiles) const;

    /** The fewest tiles any supply level can sustain. */
    unsigned minTiles(const AlgoLoad &algo) const;

    /** Minimum-power tile count for one algorithm in isolation. */
    unsigned bestTiles(const AlgoLoad &algo) const;

    /**
     * Map a whole application at its reference (paper Table 4) tile
     * counts.
     */
    AppMapping mapAtReference(const AppWorkload &app) const;

    /**
     * Minimum-power allocation of at most @p tile_budget tiles
     * across the application's algorithms (exact DP); empty optional
     * if the budget is below the feasibility floor.
     */
    std::optional<AppMapping> mapWithBudget(const AppWorkload &app,
                                            unsigned tile_budget)
        const;

    /** Evaluate an explicit per-algorithm tile allocation. */
    std::optional<AppMapping> mapWithTiles(
        const AppWorkload &app,
        const std::vector<unsigned> &tiles) const;

  private:
    AppMapping evaluate(std::vector<power::DomainLoad> loads) const;

    const power::SystemPowerModel &model_;
    const power::SupplyLevels &levels_;
};

} // namespace synchro::mapping

#endif // SYNC_MAPPING_OPTIMIZER_HH
