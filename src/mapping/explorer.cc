#include "mapping/explorer.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>

#include "arch/chip.hh"
#include "common/log.hh"
#include "sim/session.hh"

namespace synchro::mapping
{

bool
refreshPlacement(ActorPlacement &p, double ref_mhz, unsigned divider,
                 const power::SupplyLevels &levels)
{
    if (divider == 0)
        return false;
    double f_column = ref_mhz / divider;
    if (f_column + 1e-9 < p.f_needed_mhz)
        return false; // the divided clock cannot cover the demand
    try {
        p.divider = divider;
        p.f_column_mhz = f_column;
        p.v = levels.voltageFor(f_column);
        p.zorm = exactRateMatch(
            uint64_t(std::llround(f_column * 1e6)),
            uint64_t(std::llround(p.f_needed_mhz * 1e6)));
    } catch (const FatalError &) {
        return false; // no supply level / rate match exists
    }
    return true;
}

namespace
{

std::unique_ptr<arch::Chip>
buildChip(const ChipPlan &plan, const PipelineProgram &prog,
          SchedulerKind kind)
{
    arch::ChipConfig cfg;
    cfg.ref_freq_mhz = plan.ref_freq_mhz;
    cfg.dividers = plan.dividers();
    cfg.scheduler = kind;
    cfg.self_timed_bus = prog.self_timed;
    auto chip = std::make_unique<arch::Chip>(cfg);
    prog.load(*chip);
    return chip;
}

std::map<std::string, uint64_t>
chipStats(const arch::Chip &chip)
{
    std::map<std::string, uint64_t> out;
    chip.forEachStat([&out](const std::string &name, uint64_t v) {
        out[name] = v;
    });
    return out;
}

} // namespace

std::vector<PlanVariant>
enumeratePlanVariants(const ChipPlan &baseline,
                      double iterations_per_sec,
                      const power::SupplyLevels &levels,
                      const ExploreOptions &opt)
{
    sync_assert(!baseline.placements.empty(),
                "enumeratePlanVariants: empty baseline plan");
    sync_assert(iterations_per_sec > 0,
                "enumeratePlanVariants: need a positive rate");

    std::vector<PlanVariant> out;
    out.push_back({"baseline", baseline, iterations_per_sec});

    // Rate variants: the whole mapping re-derived for a scaled
    // target rate — every placement's demand, divider, supply level
    // and ZORM move together, exactly as the AutoMapper would have
    // derived them had it been asked for that rate.
    for (double rf : opt.rate_factors) {
        if (rf <= 0)
            continue;
        ChipPlan plan = baseline;
        bool ok = true;
        for (auto &p : plan.placements) {
            p.f_needed_mhz *= rf;
            unsigned d = unsigned(plan.ref_freq_mhz / p.f_needed_mhz);
            if (!refreshPlacement(p, plan.ref_freq_mhz, d, levels)) {
                ok = false;
                break;
            }
        }
        if (ok) {
            out.push_back({strprintf("rate x%.2f", rf), plan,
                           iterations_per_sec * rf});
        }
    }

    // Divider variants: one placement's clock raised (divider
    // lowered) at the planned rate. ZORM pads the wider gap, the
    // supply quantizes up — same throughput at more power, the
    // measurably dominated points the Optimizer's pick must beat.
    for (size_t i = 0; i < baseline.placements.size(); ++i) {
        unsigned d = baseline.placements[i].divider;
        for (unsigned s = 1; s <= opt.divider_steps && s < d; ++s) {
            ChipPlan plan = baseline;
            if (!refreshPlacement(plan.placements[i],
                                  plan.ref_freq_mhz, d - s, levels))
                continue;
            out.push_back(
                {strprintf("%s /%u",
                           baseline.placements[i].actor.c_str(),
                           d - s),
                 plan, iterations_per_sec});
        }
    }
    return out;
}

ExplorationResult
explorePlans(const ExplorableApp &app, const ExploreOptions &opt)
{
    sync_assert(app.lower && app.tick_limit && app.verify,
                "explorePlans: the app must supply lower, tick_limit "
                "and verify hooks");
    sync_assert(app.priced_items > 0,
                "explorePlans: priced_items must be set");

    power::VfModel vf;
    power::SupplyLevels levels(vf);
    power::SystemPowerModel model;

    std::vector<PlanVariant> variants = enumeratePlanVariants(
        app.baseline, app.iterations_per_sec, levels, opt);
    variants.insert(variants.end(), app.shard_variants.begin(),
                    app.shard_variants.end());

    ExplorationResult res;
    res.app = app.name;
    res.baseline_index = 0;

    // Lower every candidate and stage one FastEdge chip per
    // successful lowering on a single heterogeneous session — each
    // chip its own configuration, program and tick budget.
    struct Prep
    {
        size_t point = 0;
        unsigned session_id = 0;
        PipelineProgram prog;
        std::unique_ptr<arch::Chip> chip;
    };
    std::vector<Prep> preps;
    sim::SessionConfig scfg;
    scfg.threads = opt.threads;
    sim::SimSession session(scfg);

    for (const auto &v : variants) {
        MeasuredPoint pt;
        pt.label = v.label;
        pt.plan = v.plan;
        pt.target_iterations_per_sec = v.iterations_per_sec;
        try {
            Prep prep;
            prep.point = res.points.size();
            prep.prog = app.lower(v.plan, v.iterations_per_sec);
            prep.chip = buildChip(v.plan, prep.prog,
                                  opt.scheduler);
            prep.session_id = session.admit(
                sim::ChipSpec(*prep.chip)
                    .tickLimit(app.tick_limit(v.plan, prep.prog)));
            preps.push_back(std::move(prep));
        } catch (const FatalError &e) {
            pt.failure = strprintf("did not lower: %s", e.what());
            // The codegen verifier gate rejected the candidate
            // before any chip was staged — the pre-simulation
            // filter, counted separately in the report.
            if (pt.failure.find("statically rejected") !=
                std::string::npos) {
                ++res.statically_rejected;
            }
        }
        res.points.push_back(std::move(pt));
    }

    // The whole batch, concurrently; per-chip budgets govern.
    session.runAll();

    for (auto &prep : preps) {
        MeasuredPoint &pt = res.points[prep.point];
        const arch::RunResult &r = session.results()[prep.session_id];
        arch::Chip &chip = *prep.chip;
        if (r.exit != arch::RunExit::AllHalted) {
            pt.failure = r.exit == arch::RunExit::Deadlock
                             ? "deadlocked"
                             : "tick budget exhausted";
            continue;
        }
        uint64_t overruns = chip.fabric().stats().value("overruns");
        uint64_t conflicts = chip.fabric().stats().value("conflicts");
        if (overruns != 0 || conflicts != 0) {
            pt.failure = strprintf(
                "unclean fabric: %llu overruns, %llu conflicts",
                (unsigned long long)overruns,
                (unsigned long long)conflicts);
            continue;
        }
        pt.ran = true;
        pt.ticks = r.ticks;
        pt.deferrals = chip.fabric().stats().value("deferrals");
        pt.achieved_items_per_sec = double(app.priced_items) *
                                    pt.plan.ref_freq_mhz * 1e6 /
                                    double(pt.ticks);
        pt.power = power::priceSimulationComparison(
            chip, app.priced_items, pt.achieved_items_per_sec,
            levels, model);
        pt.total_mw = pt.power.multi_v.total();
        std::string mismatch = app.verify(chip, prep.prog);
        pt.bit_exact = mismatch.empty();
        if (!pt.bit_exact)
            pt.failure = mismatch;
    }

    // Pareto reduction over the measurable points: a point survives
    // if no other measurable point delivers at least its rate for
    // strictly less power (ties broken toward the cheaper point).
    std::vector<size_t> eligible;
    for (size_t i = 0; i < res.points.size(); ++i) {
        if (res.points[i].ran && res.points[i].bit_exact)
            eligible.push_back(i);
    }
    std::sort(eligible.begin(), eligible.end(),
              [&](size_t a, size_t b) {
                  const MeasuredPoint &pa = res.points[a];
                  const MeasuredPoint &pb = res.points[b];
                  if (pa.achieved_items_per_sec !=
                      pb.achieved_items_per_sec)
                      return pa.achieved_items_per_sec >
                             pb.achieved_items_per_sec;
                  return pa.total_mw < pb.total_mw;
              });
    double best_mw = std::numeric_limits<double>::infinity();
    for (size_t i : eligible) {
        if (res.points[i].total_mw < best_mw) {
            best_mw = res.points[i].total_mw;
            res.points[i].on_frontier = true;
            res.frontier.push_back(i);
        }
    }
    std::reverse(res.frontier.begin(), res.frontier.end());

    // Cross-check the frontier (and the baseline) on the EventQueue
    // backend: identical final tick, identical statistics, and the
    // golden check passing again on the second chip.
    bool crosschecks_ok = true;
    if (opt.crosscheck_frontier) {
        std::vector<size_t> check = res.frontier;
        const MeasuredPoint &base = res.points[res.baseline_index];
        if (base.ran && base.bit_exact && !base.on_frontier)
            check.push_back(res.baseline_index);

        struct Recheck
        {
            Prep *prep;
            std::unique_ptr<arch::Chip> chip;
            unsigned session_id = 0;
        };
        std::vector<Recheck> rechecks;
        sim::SimSession xsession(scfg);
        for (size_t idx : check) {
            auto it = std::find_if(preps.begin(), preps.end(),
                                   [idx](const Prep &p) {
                                       return p.point == idx;
                                   });
            sync_assert(it != preps.end(),
                        "frontier point with no prepared chip");
            Recheck rc;
            rc.prep = &*it;
            rc.chip = buildChip(res.points[idx].plan, it->prog,
                                SchedulerKind::EventQueue);
            rc.session_id = xsession.admit(
                sim::ChipSpec(*rc.chip)
                    .tickLimit(app.tick_limit(res.points[idx].plan,
                                              it->prog)));
            rechecks.push_back(std::move(rc));
        }
        xsession.runAll();
        for (auto &rc : rechecks) {
            MeasuredPoint &pt = res.points[rc.prep->point];
            const arch::RunResult &r =
                xsession.results()[rc.session_id];
            pt.crosschecked =
                r.exit == arch::RunExit::AllHalted &&
                r.ticks == pt.ticks &&
                chipStats(*rc.chip) == chipStats(*rc.prep->chip) &&
                app.verify(*rc.chip, rc.prep->prog).empty();
            if (!pt.crosschecked) {
                crosschecks_ok = false;
                if (pt.failure.empty())
                    pt.failure = "EventQueue cross-check diverged";
            }
        }
    }

    // Agreement: the analytic Optimizer's pick must sit on (or
    // within tolerance of) the measured frontier at its rate.
    MeasuredPoint &base = res.points[res.baseline_index];
    if (base.ran && base.bit_exact) {
        double best = std::numeric_limits<double>::infinity();
        for (size_t i : res.frontier) {
            const MeasuredPoint &pt = res.points[i];
            if (pt.achieved_items_per_sec + 1e-9 >=
                base.achieved_items_per_sec)
                best = std::min(best, pt.total_mw);
        }
        if (best < std::numeric_limits<double>::infinity() &&
            best > 0) {
            res.baseline_gap_pct = std::max(
                0.0, 100.0 * (base.total_mw - best) / best);
            res.agreement =
                res.baseline_gap_pct <= opt.agreement_tolerance_pct;
        }
    }

    // Every point that ran must have matched its golden, and every
    // cross-checked point (frontier or baseline) must have agreed
    // across backends.
    res.all_bit_exact = !res.frontier.empty() && crosschecks_ok;
    for (const MeasuredPoint &pt : res.points) {
        if (pt.ran && !pt.bit_exact)
            res.all_bit_exact = false;
    }
    return res;
}

std::string
ExplorationResult::report() const
{
    std::string out = strprintf(
        "design space, %s: %zu candidate plans, %zu measured, "
        "%zu on the frontier\n",
        app.c_str(), points.size(),
        size_t(std::count_if(points.begin(), points.end(),
                             [](const MeasuredPoint &p) {
                                 return p.ran;
                             })),
        frontier.size());
    if (statically_rejected > 0) {
        out += strprintf("  %zu candidate(s) statically rejected "
                         "before simulation\n",
                         statically_rejected);
    }
    out += strprintf("  %-18s %10s %12s %9s %8s  %s\n", "plan",
                     "ticks", "items/s", "mW", "saved%", "");
    for (const MeasuredPoint &pt : points) {
        if (!pt.ran) {
            out += strprintf("  %-18s %s\n", pt.label.c_str(),
                             pt.failure.c_str());
            continue;
        }
        out += strprintf(
            "  %-18s %10llu %12.4g %9.2f %8.1f  %s%s%s\n",
            pt.label.c_str(), (unsigned long long)pt.ticks,
            pt.achieved_items_per_sec, pt.total_mw,
            pt.power.savingsPct(),
            pt.on_frontier ? "frontier" : "",
            pt.crosschecked ? " xchk" : "",
            pt.bit_exact ? "" : " MISMATCH");
    }
    out += strprintf(
        "  optimizer pick vs measured frontier: %.2f%% gap -> %s\n",
        baseline_gap_pct,
        agreement ? "agreement" : "DISAGREEMENT");
    return out;
}

} // namespace synchro::mapping
