#include "mapping/workload.hh"

#include "common/log.hh"
#include "dsp/viterbi.hh"

namespace synchro::mapping
{

double
AlgoLoad::transfersAt(unsigned tiles) const
{
    if (tiles == 0)
        fatal("transfersAt: zero tiles");
    switch (scaling) {
      case CommScaling::Constant:
        return ref_transfers_s;
      case CommScaling::Linear:
        return ref_transfers_s * double(tiles) / double(ref_tiles);
      case CommScaling::Trellis: {
        unsigned ref_words = dsp::acsCrossTileWords(ref_tiles);
        unsigned words = dsp::acsCrossTileWords(tiles);
        if (ref_words == 0)
            return tiles == 1 ? 0.0 : ref_transfers_s;
        return ref_transfers_s * double(words) / double(ref_words);
      }
    }
    return ref_transfers_s;
}

} // namespace synchro::mapping
