#include "mapping/optimizer.hh"

#include <algorithm>

#include "common/log.hh"

namespace synchro::mapping
{

std::optional<power::DomainLoad>
Optimizer::mapAlgo(const AlgoLoad &algo, unsigned tiles) const
{
    if (!algo.admissible(tiles))
        return std::nullopt;
    double f = algo.frequencyAt(tiles);
    if (f > levels_.maxFrequencyMhz())
        return std::nullopt;
    power::DomainLoad load;
    load.name = algo.name;
    load.tiles = tiles;
    load.f_mhz = f;
    load.v = levels_.voltageFor(f);
    load.bus_transfers_per_s = algo.transfersAt(tiles);
    return load;
}

unsigned
Optimizer::minTiles(const AlgoLoad &algo) const
{
    for (unsigned n = algo.min_tiles; n <= algo.max_tiles; ++n) {
        if (algo.admissible(n) &&
            algo.frequencyAt(n) <= levels_.maxFrequencyMhz())
            return n;
    }
    fatal("algorithm '%s' infeasible even at %u tiles",
          algo.name.c_str(), algo.max_tiles);
}

unsigned
Optimizer::bestTiles(const AlgoLoad &algo) const
{
    unsigned best_n = 0;
    double best_p = 0;
    for (unsigned n = algo.min_tiles; n <= algo.max_tiles; ++n) {
        auto load = mapAlgo(algo, n);
        if (!load)
            continue;
        double p = model_.loadPower(*load).total();
        if (best_n == 0 || p < best_p) {
            best_n = n;
            best_p = p;
        }
    }
    if (best_n == 0)
        fatal("algorithm '%s' has no feasible mapping",
              algo.name.c_str());
    return best_n;
}

AppMapping
Optimizer::evaluate(std::vector<power::DomainLoad> loads) const
{
    AppMapping m;
    m.loads = std::move(loads);
    m.power = model_.designPower(m.loads);
    m.single_voltage = model_.singleVoltagePower(m.loads);
    return m;
}

AppMapping
Optimizer::mapAtReference(const AppWorkload &app) const
{
    std::vector<power::DomainLoad> loads;
    for (const auto &algo : app.algos) {
        auto load = mapAlgo(algo, algo.ref_tiles);
        if (!load)
            fatal("reference mapping of '%s' infeasible",
                  algo.name.c_str());
        loads.push_back(*load);
    }
    return evaluate(std::move(loads));
}

std::optional<AppMapping>
Optimizer::mapWithTiles(const AppWorkload &app,
                        const std::vector<unsigned> &tiles) const
{
    if (tiles.size() != app.algos.size())
        fatal("mapWithTiles: %zu allocations for %zu algorithms",
              tiles.size(), app.algos.size());
    std::vector<power::DomainLoad> loads;
    for (size_t i = 0; i < tiles.size(); ++i) {
        auto load = mapAlgo(app.algos[i], tiles[i]);
        if (!load)
            return std::nullopt;
        loads.push_back(*load);
    }
    return evaluate(std::move(loads));
}

std::optional<AppMapping>
Optimizer::mapWithBudget(const AppWorkload &app,
                         unsigned tile_budget) const
{
    const size_t n = app.algos.size();
    constexpr double kInf = 1e300;

    // dp[t] = min power using exactly the first k algorithms and t
    // tiles; choice[k][t] = tiles given to algorithm k.
    std::vector<double> dp(tile_budget + 1, kInf);
    dp[0] = 0.0;
    std::vector<std::vector<unsigned>> choice(
        n, std::vector<unsigned>(tile_budget + 1, 0));

    for (size_t k = 0; k < n; ++k) {
        std::vector<double> next(tile_budget + 1, kInf);
        const auto &algo = app.algos[k];
        for (unsigned used = 0; used <= tile_budget; ++used) {
            if (dp[used] >= kInf)
                continue;
            for (unsigned give = algo.min_tiles;
                 used + give <= tile_budget &&
                 give <= algo.max_tiles;
                 ++give) {
                auto load = mapAlgo(algo, give);
                if (!load)
                    continue;
                double p =
                    dp[used] + model_.loadPower(*load).total();
                if (p < next[used + give]) {
                    next[used + give] = p;
                    choice[k][used + give] = give;
                }
            }
        }
        dp = std::move(next);
    }

    // Best total at any tile count within budget.
    unsigned best_t = 0;
    double best_p = kInf;
    for (unsigned t = 0; t <= tile_budget; ++t) {
        if (dp[t] < best_p) {
            best_p = dp[t];
            best_t = t;
        }
    }
    if (best_p >= kInf)
        return std::nullopt;

    // Reconstruct the allocation.
    std::vector<unsigned> alloc(n);
    unsigned t = best_t;
    for (size_t k = n; k-- > 0;) {
        alloc[k] = choice[k][t];
        t -= alloc[k];
    }
    return mapWithTiles(app, alloc);
}

} // namespace synchro::mapping
