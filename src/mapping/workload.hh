/**
 * @file
 * Workload descriptors for the mapping optimizer.
 *
 * An AlgoLoad captures one algorithmic block the way the paper's
 * methodology produces it: a compute demand in Mcycles/s (tiles x
 * frequency at the reference mapping), a bus-traffic rate at the
 * reference mapping, and a model of how that traffic scales when the
 * block is spread over more or fewer tiles.
 */

#ifndef SYNC_MAPPING_WORKLOAD_HH
#define SYNC_MAPPING_WORKLOAD_HH

#include <string>
#include <vector>

namespace synchro::mapping
{

/** How bus traffic scales with the number of tiles. */
enum class CommScaling
{
    Constant, //!< broadcast-style: one transfer regardless of tiles
    Linear,   //!< halo/partition style: proportional to tiles
    Trellis,  //!< Viterbi ACS shuffle: follows acsCrossTileWords()
};

struct AlgoLoad
{
    std::string name;
    double demand_mcycles_s = 0; //!< total compute demand (Mcycles/s)
    double ref_transfers_s = 0;  //!< bus transfers/s at ref_tiles
    unsigned ref_tiles = 1;      //!< the paper's Table 4 mapping
    unsigned min_tiles = 1;      //!< parallelization floor
    unsigned max_tiles = 64;     //!< parallelization ceiling
    CommScaling scaling = CommScaling::Constant;

    /**
     * When nonzero, the tile count must divide this value (the
     * Viterbi ACS block partition needs tiles | 64 states).
     */
    unsigned divisor_of = 0;

    /** True if @p tiles is an admissible parallelization. */
    bool
    admissible(unsigned tiles) const
    {
        return tiles >= min_tiles && tiles <= max_tiles &&
               (divisor_of == 0 || divisor_of % tiles == 0);
    }

    /** Frequency each tile needs when spread over @p tiles (MHz). */
    double
    frequencyAt(unsigned tiles) const
    {
        return demand_mcycles_s / double(tiles);
    }

    /** Bus transfers/s when spread over @p tiles. */
    double transfersAt(unsigned tiles) const;
};

/** An application = a list of algorithm loads + its data rate. */
struct AppWorkload
{
    std::string name;
    double sample_rate_hz = 0; //!< headline rate (for nW/sample)
    std::vector<AlgoLoad> algos;

    unsigned
    totalRefTiles() const
    {
        unsigned n = 0;
        for (const auto &a : algos)
            n += a.ref_tiles;
        return n;
    }
};

} // namespace synchro::mapping

#endif // SYNC_MAPPING_WORKLOAD_HH
