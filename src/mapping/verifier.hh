/**
 * @file
 * Static plan/program verifier: prove a lowered artifact safe before
 * a single tick runs.
 *
 * Every safety property the runners assert *dynamically* — zero
 * bus-slot conflicts, zero read-buffer overruns, lane-tag matching at
 * joins, ZORM/divider consistency — is a property of the lowered
 * artifact (ChipPlan + per-column uop programs + comm schedule), not
 * of any particular input. verifyLowered() proves them statically,
 * without simulating, by five named checks:
 *
 *  - "program": abstract interpretation of each column's micro-op
 *    stream over the unified register units (isa::uopEffects):
 *    must-initialize dataflow flags any read of a register no path
 *    has written (Error), a may-liveness pass flags dead writes
 *    (Warning), and an issue-slot walk derives each column's minimum
 *    steady-state firing period, cross-checked against the plan's
 *    divider + ZORM useful-slot rate (Warning when the column
 *    provably cannot reach its planned rate).
 *
 *  - "slots": global bus-slot conflict freedom — no two columns ever
 *    drive the same lane in the same bus cycle, every capture has
 *    exactly one matching drive, each column's compiled DOU program
 *    is replayed abstractly for one full period against the
 *    reference scheduleOutputAt() and must return to its initial
 *    machine state (so the proof extends to every later period), and
 *    slots-as-ceiling feasibility: every edge's slot capacity covers
 *    its token rate at the lowering's grid pacing.
 *
 *  - "tags": an abstract walk of each column's comm sequence (exact
 *    when control flow is static or data-dependent branches enclose
 *    comm-free regions) proves every `crd`/`cwr` lane tag names a
 *    real in-/out-edge of the actor, per-program token counts match
 *    the edge word counts, and every tagged lane has matching DOU
 *    drive/capture slots. Columns with data-dependent communication
 *    degrade to lane-set membership with a Note.
 *
 *  - "tokens": worst-case token flow. Self-timed artifacts get a
 *    structural no-overrun argument (deferral + tag-matched pops)
 *    plus an untimed Kahn-network replay of the exact comm sequences
 *    proving every join input is eventually fed (no deadlock).
 *    Legacy (drop-new) artifacts get an exact timed replay of the
 *    comm-relevant projection — issue-slot distances, ZORM Bresenham
 *    stepping, divider edges, delivery-visibility latency — proving
 *    drop-new overrun unreachable for branch-free programs.
 *
 *  - "zorm": plan/program ZORM consistency — each column's loaded
 *    setting equals its placement's, the placement's setting equals
 *    exactRateMatch() recomputed from its frequencies, and divider /
 *    f_column / f_needed are mutually consistent.
 *
 * codegen gates every lowering on this report (fatal on Error), and
 * the design-space explorer uses the same gate to reject
 * provably-broken candidates before staging a chip.
 */

#ifndef SYNC_MAPPING_VERIFIER_HH
#define SYNC_MAPPING_VERIFIER_HH

#include <string>
#include <vector>

#include "mapping/codegen.hh"

namespace synchro::mapping
{

/** Severity of one verifier finding. */
enum class Severity
{
    Error,   //!< provable safety violation; the artifact must not run
    Warning, //!< suspicious but not provably unsafe
    Note     //!< a check degraded (property not statically provable)
};

/** One verifier finding. */
struct Finding
{
    Severity severity = Severity::Error;
    std::string check; //!< "program", "slots", "tags", "tokens", "zorm"
    std::string message;
};

/** The structured result of a verification pass. */
struct VerifyReport
{
    std::vector<Finding> findings;

    /** Checks that ran (pass/fail derivable via checkPassed). */
    static const std::vector<std::string> &checkNames();

    /** No Error-severity findings anywhere. */
    bool ok() const;

    /** No Error-severity findings under @p check. */
    bool checkPassed(const std::string &check) const;

    /** Every Error message, joined — what the codegen gate reports. */
    std::string errorSummary() const;

    /** Human-readable per-check table plus every finding. */
    std::string render() const;

    void add(Severity sev, const std::string &check,
             std::string message);
};

/**
 * Verify the lowered artifact @p prog against the @p spec and @p plan
 * it was lowered from, at the lowering's @p iterations_per_sec and
 * @p slack. Pure analysis: builds no chip, runs no ticks, mutates
 * nothing. Never fatal()s on verification failures — they come back
 * as findings; fatal() only on artifacts too malformed to analyze
 * (e.g. a program that no longer decodes).
 */
VerifyReport verifyLowered(const DagSpec &spec, const ChipPlan &plan,
                           const PipelineProgram &prog,
                           double iterations_per_sec, double slack);

/**
 * One app's lowered artifact bundled with everything verifyLowered()
 * needs — the report hook each apps/ runner exposes (verifiableDdc,
 * verifiableWifi, verifiableStereo, verifiableMotion) so the
 * verify_plan example and the regression tests can re-verify every
 * committed lowering without duplicating the app setup.
 */
struct LoweredArtifact
{
    std::string name;
    DagSpec spec;
    ChipPlan plan;
    PipelineProgram prog;
    double iterations_per_sec = 0;
    double slack = 0;

    VerifyReport
    verify() const
    {
        return verifyLowered(spec, plan, prog, iterations_per_sec,
                             slack);
    }
};

} // namespace synchro::mapping

#endif // SYNC_MAPPING_VERIFIER_HH
