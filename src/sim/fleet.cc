#include "sim/fleet.hh"

#include <utility>

#include "common/log.hh"
#include "sim/scheduler.hh"

namespace synchro::sim
{

namespace
{

/** First divergence between an output and its golden, one line. */
std::string
diffBytes(const std::vector<uint8_t> &got,
          const std::vector<uint8_t> &want)
{
    if (got.size() != want.size()) {
        return strprintf("output is %zu bytes, golden %zu",
                         got.size(), want.size());
    }
    for (size_t i = 0; i < got.size(); ++i) {
        if (got[i] != want[i]) {
            return strprintf("output[%zu] = 0x%02x, golden 0x%02x",
                             i, got[i], want[i]);
        }
    }
    return "";
}

} // namespace

FleetExecutor::FleetExecutor(FleetConfig cfg) : cfg_(std::move(cfg))
{
    workers_.resize(effectiveWorkers());
    pool_.reserve(workers_.size());
    for (unsigned w = 0; w < workers_.size(); ++w)
        pool_.emplace_back([this, w] { workerLoop(w); });
}

FleetExecutor::~FleetExecutor()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &th : pool_)
        th.join();
}

unsigned
FleetExecutor::effectiveWorkers() const
{
    if (cfg_.workers != 0)
        return cfg_.workers;
    unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

unsigned
FleetExecutor::addWorkload(FleetWorkload wl)
{
    if (!wl.build || !wl.feed || !wl.read_output)
        fatal("fleet workload '%s' is missing a hook "
              "(build/feed/read_output are mandatory)",
              wl.name.c_str());
    if (cfg_.verify && !wl.golden)
        fatal("fleet workload '%s' has no golden hook but the fleet "
              "verifies every item",
              wl.name.c_str());

    // The one cold build of this workload: codegen + verifier gate +
    // chip construction + program load, timed as the warm-start
    // baseline. Every stream's chip is a clone of this template.
    auto t0 = std::chrono::steady_clock::now();
    std::unique_ptr<arch::Chip> tmpl = wl.build(cfg_.scheduler);
    auto t1 = std::chrono::steady_clock::now();
    if (!tmpl)
        fatal("fleet workload '%s': build hook returned no chip",
              wl.name.c_str());
    if (tmpl->curTick() != 0)
        fatal("fleet workload '%s': build hook returned a chip that "
              "already ran",
              wl.name.c_str());

    std::lock_guard<std::mutex> lock(mu_);
    workloads_.push_back(std::move(wl));
    templates_.push_back(std::move(tmpl));
    template_secs_.push_back(
        std::chrono::duration<double>(t1 - t0).count());
    return unsigned(workloads_.size() - 1);
}

const FleetWorkload &
FleetExecutor::workload(unsigned id) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return workloads_.at(id);
}

double
FleetExecutor::templateBuildSeconds(unsigned id) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return template_secs_.at(id);
}

const arch::Chip &
FleetExecutor::templateChip(unsigned id) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return *templates_.at(id);
}

unsigned
FleetExecutor::admitStream(unsigned workload, uint64_t items,
                           uint64_t item_base)
{
    if (items == 0)
        fatal("fleet stream admitted with zero work items");
    std::lock_guard<std::mutex> lock(mu_);
    if (workload >= workloads_.size())
        fatal("fleet stream admitted for unknown workload %u",
              workload);

    auto s = std::make_unique<Stream>();
    s->id = unsigned(streams_.size());
    s->workload = workload;
    s->wl = &workloads_[workload];
    s->tmpl = templates_[workload].get();
    s->next_item = item_base;
    s->last_item = item_base + items;
    s->res.workload = workload;
    s->res.item_base = item_base;
    s->res.items = items;

    if (items_admitted_ == items_served_ + items_abandoned_ &&
        !epoch_open_) {
        serve_start_ = std::chrono::steady_clock::now();
        epoch_open_ = true;
    }
    items_admitted_ += items;

    // Home the stream on the least-loaded deque; idle workers steal
    // it back anyway, this just seeds a sensible spread.
    unsigned home = 0;
    for (unsigned w = 1; w < workers_.size(); ++w) {
        if (workers_[w].q.size() < workers_[home].q.size())
            home = w;
    }
    workers_[home].q.push_back(s.get());
    streams_.push_back(std::move(s));
    work_cv_.notify_all();
    return unsigned(streams_.size() - 1);
}

FleetExecutor::Stream *
FleetExecutor::takeStream(unsigned w, bool &stolen)
{
    // Owner pops the front of its own deque; a thief takes the BACK
    // of a victim's — the classic deque split that keeps owner and
    // thief off the same end.
    stolen = false;
    if (!workers_[w].q.empty()) {
        Stream *s = workers_[w].q.front();
        workers_[w].q.pop_front();
        return s;
    }
    for (unsigned k = 1; k < workers_.size(); ++k) {
        unsigned v = (w + k) % unsigned(workers_.size());
        if (!workers_[v].q.empty()) {
            Stream *s = workers_[v].q.back();
            workers_[v].q.pop_back();
            stolen = true;
            return s;
        }
    }
    return nullptr;
}

void
FleetExecutor::workerLoop(unsigned w)
{
    // Nested-parallelism policy: fleet workers are pool threads, so
    // ParallelColumns chips with an automatic team size degrade to
    // serial here; only an explicit ChipConfig::parallel_columns
    // request nests a column team inside the fleet pool.
    WorkerPoolScope in_pool;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        if (stop_)
            return;
        bool stolen = false;
        Stream *s = takeStream(w, stolen);
        if (s == nullptr) {
            work_cv_.wait(lock);
            continue;
        }
        if (stolen)
            ++steals_;
        ++busy_;
        lock.unlock();

        // One item per pickup: a multi-item stream goes back on the
        // deque between items, so heavy streams interleave with (and
        // can be stolen around) light ones.
        uint64_t abandoned = serveOneItem(*s, workers_[w]);

        lock.lock();
        --busy_;
        ++items_served_;
        items_abandoned_ += abandoned;
        if (s->next_item < s->last_item) {
            workers_[w].q.push_back(s);
            work_cv_.notify_one();
        } else {
            finishStream(*s, workers_[w]);
        }
        if (items_served_ + items_abandoned_ == items_admitted_ &&
            busy_ == 0)
            idle_cv_.notify_all();
    }
}

uint64_t
FleetExecutor::serveOneItem(Stream &s, Worker &shard)
{
    // s.wl / s.tmpl, not workloads_[..] / templates_[..]: the lock
    // is released here and addWorkload may be growing those
    // containers concurrently.
    const FleetWorkload &wl = *s.wl;
    const uint64_t item = s.next_item++;
    try {
        if (!s.chip) {
            // Warm start: deep-copy the programmed template instead
            // of re-running codegen + load for this stream.
            s.chip = s.tmpl->clone();
            ++shard.clones;
        }
        wl.feed(*s.chip, item);
        arch::RunResult r{};
        if (wl.run_chunk > 0) {
            // Sliced serving: pause at every run_chunk boundary so
            // the workload's sampling hook sees the chip mid-item.
            // run() budgets are per call and pending work carries
            // across calls, so the slices reach exactly the state
            // one run(tick_limit) call would have.
            Tick done = 0;
            for (;;) {
                Tick step =
                    std::min<Tick>(wl.run_chunk,
                                   wl.tick_limit - done);
                r = s.chip->run(step);
                if (wl.on_slice)
                    wl.on_slice(*s.chip, item, r.ticks);
                done = r.ticks;
                if (r.exit != arch::RunExit::TickLimit ||
                    done >= wl.tick_limit)
                    break;
            }
        } else {
            r = s.chip->run(wl.tick_limit);
        }
        shard.ticks += r.ticks;
        s.res.ticks += r.ticks;
        shard.max_ticks_reached =
            std::max(shard.max_ticks_reached, r.ticks);
        switch (r.exit) {
          case arch::RunExit::AllHalted:
            ++shard.halted;
            break;
          case arch::RunExit::TickLimit:
            ++shard.tick_limited;
            break;
          case arch::RunExit::Deadlock:
            ++shard.deadlocked;
            break;
        }
        if (r.exit != arch::RunExit::AllHalted) {
            ++s.res.mismatches;
            if (s.res.first_failure.empty()) {
                s.res.first_failure = strprintf(
                    "%s item %llu did not drain (%s at tick %llu)",
                    wl.name.c_str(), (unsigned long long)item,
                    r.exit == arch::RunExit::Deadlock ? "deadlock"
                                                      : "tick limit",
                    (unsigned long long)r.ticks);
            }
        } else {
            std::vector<uint8_t> out = wl.read_output(*s.chip);
            if (cfg_.verify) {
                std::string diff = diffBytes(out, wl.golden(item));
                if (!diff.empty()) {
                    ++s.res.mismatches;
                    if (s.res.first_failure.empty()) {
                        s.res.first_failure = strprintf(
                            "%s item %llu: %s", wl.name.c_str(),
                            (unsigned long long)item, diff.c_str());
                    }
                }
            }
            if (cfg_.keep_outputs)
                s.res.outputs.push_back(std::move(out));
        }
        ++s.res.items_done;
        ++shard.items;
    } catch (const std::exception &e) {
        // Record and abandon the stream — a serving layer survives
        // one bad request; drain() reports it. The items we skip by
        // jumping next_item to the end are returned so the caller
        // credits them to the fleet's accounting: they were
        // admitted, no worker will ever serve them, and drain()
        // would otherwise wait for them forever.
        ++s.res.mismatches;
        if (s.res.first_failure.empty()) {
            s.res.first_failure =
                strprintf("%s item %llu: %s", wl.name.c_str(),
                          (unsigned long long)item, e.what());
        }
        const uint64_t skipped = s.last_item - s.next_item;
        s.next_item = s.last_item;
        return skipped;
    }
    return 0;
}

void
FleetExecutor::finishStream(Stream &s, Worker &shard)
{
    // Harvest the whole stream's counters into the serving worker's
    // shard, then release the chip — peak memory tracks the streams
    // in flight, not the fleet size.
    if (s.chip) {
        s.chip->forEachStat(
            [&shard](const std::string &name, uint64_t v) {
                shard.counters[name] += v;
            });
        s.chip.reset();
    }
}

FleetReport
FleetExecutor::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] {
        return items_served_ + items_abandoned_ == items_admitted_ &&
               busy_ == 0;
    });
    if (epoch_open_) {
        served_wall_seconds_ += std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() -
                                    serve_start_)
                                    .count();
        epoch_open_ = false;
    }

    FleetReport rep;
    rep.streams = streams_.size();
    rep.items = items_served_;
    rep.items_abandoned = items_abandoned_;
    rep.wall_seconds = served_wall_seconds_;
    rep.steals = steals_;
    rep.totals.chips = items_served_;
    for (const Worker &w : workers_) {
        rep.items_by_worker.push_back(w.items);
        rep.clones += w.clones;
        rep.totals.halted += w.halted;
        rep.totals.tick_limited += w.tick_limited;
        rep.totals.deadlocked += w.deadlocked;
        rep.totals.total_ticks += w.ticks;
        rep.totals.max_ticks_reached =
            std::max(rep.totals.max_ticks_reached,
                     w.max_ticks_reached);
        for (const auto &kv : w.counters)
            rep.totals.counters[kv.first] += kv.second;
    }
    for (const auto &s : streams_) {
        rep.stream_results.push_back(s->res);
        if (s->res.mismatches != 0 ||
            s->res.items_done != s->res.items)
            rep.all_verified = false;
    }
    if (rep.wall_seconds > 0) {
        rep.chips_per_sec = double(rep.items) / rep.wall_seconds;
        rep.ticks_per_sec =
            double(rep.totals.total_ticks) / rep.wall_seconds;
    }
    return rep;
}

} // namespace synchro::sim
