/**
 * @file
 * Clock domains as integer dividers of the reference clock.
 *
 * The Synchroscalar chip distributes one PLL reference; each column's
 * clock divider derives its domain clock (Figure 1). Modelling a
 * domain as (divider, phase) pairs keeps every pair of domains
 * rationally related by construction and makes cross-domain static
 * schedules exact integer arithmetic.
 */

#ifndef SYNC_SIM_CLOCK_HH
#define SYNC_SIM_CLOCK_HH

#include "common/log.hh"
#include "sim/types.hh"

namespace synchro
{

class ClockDomain
{
  public:
    /**
     * @param ref_freq_hz frequency of the reference clock (divider 1)
     * @param divider     integer divide ratio (>= 1)
     * @param phase       offset of this domain's first edge, in ticks
     */
    ClockDomain(double ref_freq_hz, unsigned divider, Tick phase = 0)
        : ref_freq_hz_(ref_freq_hz), divider_(divider), phase_(phase)
    {
        if (divider == 0)
            fatal("clock divider must be >= 1");
        if (phase >= divider)
            fatal("clock phase %llu must be < divider %u",
                  (unsigned long long)phase, divider);
    }

    unsigned divider() const { return divider_; }
    Tick phase() const { return phase_; }
    double refFreqHz() const { return ref_freq_hz_; }
    double frequencyHz() const { return ref_freq_hz_ / divider_; }
    double frequencyMHz() const { return frequencyHz() / 1e6; }

    /** Tick of this domain's cycle @p c (edges at phase + c*divider). */
    Tick
    cycleToTick(Cycle c) const
    {
        return phase_ + Tick(c) * divider_;
    }

    /** Number of complete domain cycles whose edge is at or before t. */
    Cycle
    tickToCycle(Tick t) const
    {
        if (t < phase_)
            return 0;
        return (t - phase_) / divider_ + 1;
    }

    /** First domain clock edge at a tick strictly greater than @p t. */
    Tick
    nextEdgeAfter(Tick t) const
    {
        if (t < phase_)
            return phase_;
        Tick n = (t - phase_) / divider_ + 1;
        return phase_ + n * divider_;
    }

    /** True if @p t is exactly on an edge of this domain. */
    bool
    onEdge(Tick t) const
    {
        return t >= phase_ && (t - phase_) % divider_ == 0;
    }

  private:
    double ref_freq_hz_;
    unsigned divider_;
    Tick phase_;
};

} // namespace synchro

#endif // SYNC_SIM_CLOCK_HH
