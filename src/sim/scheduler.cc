#include "sim/scheduler.hh"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "sim/eventq.hh"

namespace synchro
{

const char *
schedulerName(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::EventQueue:
        return "eventq";
      case SchedulerKind::FastEdge:
        return "fastedge";
      case SchedulerKind::Compiled:
        return "compiled";
      case SchedulerKind::ParallelColumns:
        return "parallel";
    }
    return "unknown";
}

bool
parseSchedulerKind(const std::string &name, SchedulerKind &out)
{
    if (name == "eventq") {
        out = SchedulerKind::EventQueue;
    } else if (name == "fastedge") {
        out = SchedulerKind::FastEdge;
    } else if (name == "compiled") {
        out = SchedulerKind::Compiled;
    } else if (name == "parallel") {
        out = SchedulerKind::ParallelColumns;
    } else {
        return false;
    }
    return true;
}

namespace
{

SchedulerKind &
defaultKindSlot()
{
    static SchedulerKind kind = [] {
        const char *env = std::getenv("SYNCHRO_SCHEDULER");
        if (!env || !*env)
            return SchedulerKind::FastEdge;
        SchedulerKind k;
        if (!parseSchedulerKind(env, k))
            fatal("SYNCHRO_SCHEDULER=%s is not a backend "
                  "(eventq | fastedge | compiled | parallel)",
                  env);
        return k;
    }();
    return kind;
}

} // namespace

SchedulerKind
defaultSchedulerKind()
{
    return defaultKindSlot();
}

void
setDefaultSchedulerKind(SchedulerKind kind)
{
    defaultKindSlot() = kind;
}

SchedulerKind
backendFromArgs(int &argc, char **argv, SchedulerKind fallback)
{
    SchedulerKind kind = fallback;
    int w = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string name;
        if (arg == "--backend") {
            if (i + 1 >= argc)
                fatal("--backend needs a value "
                      "(eventq | fastedge | compiled | parallel)");
            name = argv[++i];
        } else if (arg.rfind("--backend=", 0) == 0) {
            name = arg.substr(10);
        } else {
            argv[w++] = argv[i];
            continue;
        }
        if (!parseSchedulerKind(name, kind))
            fatal("--backend %s is not a backend "
                  "(eventq | fastedge | compiled | parallel)",
                  name.c_str());
    }
    argv[w] = nullptr;
    argc = w;
    return kind;
}

namespace
{

// Nested-parallelism policy flag: set while the current thread is a
// SimSession / FleetExecutor pool worker, so the automatic
// ParallelColumns team size degrades to serial instead of spawning
// pool × team threads. thread_local, so concurrent pools and teams
// never observe each other.
thread_local bool tls_in_worker_pool = false;

} // namespace

bool
inWorkerPool()
{
    return tls_in_worker_pool;
}

WorkerPoolScope::WorkerPoolScope() : prev_(tls_in_worker_pool)
{
    tls_in_worker_pool = true;
}

WorkerPoolScope::~WorkerPoolScope()
{
    tls_in_worker_pool = prev_;
}

namespace
{

/**
 * The original formulation: one self-rescheduling event per clock
 * domain at ClockEdgePri, one reference-phase event per tick at
 * BusPri. Ordering within a tick therefore puts every domain edge
 * before the bus phase, exactly as the Chip event loop always did.
 */
class EventQueueScheduler : public Scheduler
{
  public:
    SchedStop
    run(SchedModel &model, Tick max_ticks) override
    {
        model_ = &model;
        if (domain_events_.empty()) {
            for (unsigned d = 0; d < model.numDomains(); ++d) {
                domain_events_.push_back(std::make_unique<LambdaEvent>(
                    strprintf("domain%u.edge", d),
                    [this, d] { domainEdge(d); },
                    Event::ClockEdgePri));
            }
            ref_event_ = std::make_unique<LambdaEvent>(
                "sched.ref", [this] { refPhase(); }, Event::BusPri);
        }
        sync_assert(domain_events_.size() == model.numDomains(),
                    "model domain count changed between runs");

        // (Re)arm events that are not pending: each domain at its next
        // edge at-or-after now, the reference phase at every tick.
        for (unsigned d = 0; d < model.numDomains(); ++d) {
            if (model.domainHalted(d) || domain_events_[d]->scheduled())
                continue;
            const ClockDomain &clk = model.domainClock(d);
            Tick when = clk.onEdge(eq_.curTick())
                            ? eq_.curTick()
                            : clk.nextEdgeAfter(eq_.curTick());
            eq_.schedule(domain_events_[d].get(), when);
        }
        if (!ref_event_->scheduled())
            eq_.schedule(ref_event_.get(), eq_.curTick());

        eq_.run(eq_.curTick() + max_ticks);

        if (model.allHalted())
            return SchedStop::AllHalted;
        if (eq_.empty())
            return SchedStop::Idle;
        return SchedStop::TickLimit;
    }

    Tick curTick() const override { return eq_.curTick(); }

    SchedulerKind kind() const override
    {
        return SchedulerKind::EventQueue;
    }

  private:
    void
    domainEdge(unsigned d)
    {
        model_->domainEdge(d);
        if (!model_->domainHalted(d)) {
            eq_.schedule(domain_events_[d].get(),
                         eq_.curTick() +
                             model_->domainClock(d).divider());
        }
    }

    void
    refPhase()
    {
        model_->refPhase();
        if (!model_->allHalted())
            eq_.schedule(ref_event_.get(), eq_.curTick() + 1);
    }

    EventQueue eq_;
    SchedModel *model_ = nullptr;
    std::vector<std::unique_ptr<LambdaEvent>> domain_events_;
    std::unique_ptr<LambdaEvent> ref_event_;
};

/**
 * Edge-skipping fast path. Instead of a heap of events it keeps one
 * pending tick per domain plus one for the reference phase — the
 * whole "queue" is a handful of integers recomputed with the static
 * (divider, phase) arithmetic of ClockDomain. Between domain edges it
 * either executes reference phases directly or, when the model says
 * they are inert, fast-forwards them in one skipRefPhases() call.
 *
 * MaxTick marks "not pending", mirroring an unscheduled event.
 */
class FastEdgeScheduler : public Scheduler
{
  public:
    SchedStop
    run(SchedModel &model, Tick max_ticks) override
    {
        const unsigned n = model.numDomains();
        if (domain_next_.empty())
            domain_next_.assign(n, MaxTick);
        sync_assert(domain_next_.size() == n,
                    "model domain count changed between runs");

        // Arm pending work exactly like the event-queue backend.
        for (unsigned d = 0; d < n; ++d) {
            if (model.domainHalted(d) || domain_next_[d] != MaxTick)
                continue;
            const ClockDomain &clk = model.domainClock(d);
            domain_next_[d] = clk.onEdge(cur_)
                                  ? cur_
                                  : clk.nextEdgeAfter(cur_);
        }
        if (ref_next_ == MaxTick)
            ref_next_ = cur_;

        const Tick limit = cur_ + max_ticks;

        while (true) {
            Tick t = ref_next_;
            for (Tick dn : domain_next_)
                t = std::min(t, dn);
            if (t == MaxTick)
                return model.allHalted() ? SchedStop::AllHalted
                                         : SchedStop::Idle;
            if (t > limit)
                return SchedStop::TickLimit;

            // All domain edges of this tick, then the reference phase
            // — the ClockEdgePri-before-BusPri ordering of the event
            // queue. Domains are mutually independent within the edge
            // phase, so index order is as good as event-seq order.
            for (unsigned d = 0; d < n; ++d) {
                if (domain_next_[d] != t)
                    continue;
                model.domainEdge(d);
                domain_next_[d] =
                    model.domainHalted(d)
                        ? MaxTick
                        : t + model.domainClock(d).divider();
            }
            bool halted;
            if (ref_next_ == t) {
                model.refPhase();
                halted = model.allHalted();
                ref_next_ = halted ? MaxTick : t + 1;
            } else {
                halted = model.allHalted();
            }
            cur_ = t;

            if (halted)
                return SchedStop::AllHalted;

            // Edge skipping: if no domain has an edge before the next
            // interesting tick and the reference phases in between are
            // inert, fast-forward them in one O(1) call.
            if (ref_next_ == t + 1) {
                Tick next_edge = MaxTick;
                for (Tick dn : domain_next_)
                    next_edge = std::min(next_edge, dn);
                Tick target = std::min(next_edge, limit);
                if (target > t + 1 && model.refPhaseInert()) {
                    model.skipRefPhases(target - (t + 1));
                    ref_next_ = target;
                    cur_ = target - 1;
                }
            }
        }
    }

    Tick curTick() const override { return cur_; }

    SchedulerKind kind() const override
    {
        return SchedulerKind::FastEdge;
    }

  private:
    Tick cur_ = 0;
    Tick ref_next_ = MaxTick;           //!< MaxTick = not pending
    std::vector<Tick> domain_next_;     //!< per-domain pending edge
};

/**
 * The compiled backend: FastEdge's integer edge walk, plus the two
 * SchedModel batch hooks.
 *
 *  - At a domain edge, domainEdgeBlock() may consume many issue
 *    slots at once (slot i standing for the edge at t + i * divider).
 *    The blocks contain only work that commutes with everything else
 *    in the window — for the chip, compute ops on tile-private state
 *    — so executing them ahead of the interleaved reference phases
 *    is bit-identical to slot-at-a-time execution. The domain's next
 *    pending edge simply advances by (slots * divider).
 *
 *  - Between edges, commFreeAdvance() fast-forwards reference phases
 *    that provably move no data (every DOU sits in all-zero buffer
 *    states), walking through state transitions where FastEdge's
 *    inert-self-loop test would give up. Phases that may move data
 *    run one at a time via refPhase(), exactly in order.
 *
 * Both hooks cap at the tick budget, so run(1) in a loop still
 * matches one big run() bit-for-bit.
 */
class CompiledScheduler : public Scheduler
{
  public:
    SchedStop
    run(SchedModel &model, Tick max_ticks) override
    {
        const unsigned n = model.numDomains();
        if (domain_next_.empty())
            domain_next_.assign(n, MaxTick);
        sync_assert(domain_next_.size() == n,
                    "model domain count changed between runs");

        for (unsigned d = 0; d < n; ++d) {
            if (model.domainHalted(d) || domain_next_[d] != MaxTick)
                continue;
            const ClockDomain &clk = model.domainClock(d);
            domain_next_[d] = clk.onEdge(cur_)
                                  ? cur_
                                  : clk.nextEdgeAfter(cur_);
        }
        if (ref_next_ == MaxTick)
            ref_next_ = cur_;

        const Tick limit = cur_ + max_ticks;

        while (true) {
            Tick t = ref_next_;
            for (Tick dn : domain_next_)
                t = std::min(t, dn);
            if (t == MaxTick)
                return model.allHalted() ? SchedStop::AllHalted
                                         : SchedStop::Idle;
            if (t > limit)
                return SchedStop::TickLimit;

            bool quiet_known = false;
            Tick quiet = 0;
            for (unsigned d = 0; d < n; ++d) {
                if (domain_next_[d] != t)
                    continue;
                const Tick div = model.domainClock(d).divider();
                // Slots at t, t+div, ... while the tick stays in
                // budget — so stepped runs consume identical slots.
                const Tick max_slots = (limit - t) / div + 1;
                Tick k = model.domainEdgeBlock(d, max_slots);
                if (k == 0 && max_slots > 1) {
                    // A domain stalled on a comm hazard stays
                    // stalled for every edge inside the upcoming
                    // bus-quiet window: the edge at t + j*div only
                    // needs phases [t, t + j*div) quiet. Probe the
                    // window once per round, on demand.
                    if (!quiet_known) {
                        quiet = model.commQuiet(limit - t + 1);
                        quiet_known = true;
                    }
                    const Tick sl =
                        std::min(max_slots, quiet / div + 1);
                    if (sl > 1)
                        k = model.domainStallBlock(d, sl);
                }
                if (k == 0) {
                    model.domainEdge(d);
                    k = 1;
                }
                domain_next_[d] = model.domainHalted(d)
                                      ? MaxTick
                                      : t + k * div;
            }
            bool halted;
            if (ref_next_ == t) {
                model.refPhase();
                halted = model.allHalted();
                ref_next_ = halted ? MaxTick : t + 1;
            } else {
                halted = model.allHalted();
            }
            cur_ = t;

            if (halted)
                return SchedStop::AllHalted;

            // Batch the reference phases up to the next domain edge:
            // comm-free stretches fast-forward wholesale, phases that
            // may move data run individually and in order.
            if (ref_next_ == t + 1) {
                Tick next_edge = MaxTick;
                for (Tick dn : domain_next_)
                    next_edge = std::min(next_edge, dn);
                const Tick target = std::min(next_edge, limit + 1);
                while (ref_next_ < target) {
                    const Tick want = target - ref_next_;
                    Tick k = model.commFreeAdvance(want);
                    if (k > 0) {
                        ref_next_ += k;
                        cur_ = ref_next_ - 1;
                    }
                    if (k == want)
                        break;
                    model.refPhase();
                    cur_ = ref_next_;
                    if (model.allHalted())
                        return SchedStop::AllHalted;
                    ref_next_ = cur_ + 1;
                }
            }
        }
    }

    Tick curTick() const override { return cur_; }

    SchedulerKind kind() const override
    {
        return SchedulerKind::Compiled;
    }

  private:
    Tick cur_ = 0;
    Tick ref_next_ = MaxTick;           //!< MaxTick = not pending
    std::vector<Tick> domain_next_;     //!< per-domain pending edge
};

/**
 * Persistent thread team with an epoch barrier — the rendezvous
 * primitive of the parallel-columns backend. The caller is member 0;
 * members 1..N-1 are worker threads that live as long as the team.
 * run(job) releases every member into job(member) and returns only
 * after all members have finished (the epoch barrier), so everything
 * the members wrote happens-before the caller's next read. The first
 * exception any member throws is captured and rethrown on the caller
 * *after* the rendezvous completes — a throwing member can never
 * leave the barrier half-assembled (the lesson of the fleet drain
 * deadlock fix).
 */
class ColumnTeam
{
  public:
    explicit ColumnTeam(unsigned members) : members_(members)
    {
        sync_assert(members_ >= 2, "a column team needs >= 2 members");
        threads_.reserve(members_ - 1);
        for (unsigned m = 1; m < members_; ++m)
            threads_.emplace_back([this, m] { workerLoop(m); });
    }

    ~ColumnTeam()
    {
        {
            std::lock_guard<std::mutex> lk(mu_);
            stop_ = true;
            ++epoch_;
        }
        cv_start_.notify_all();
        for (auto &t : threads_)
            t.join();
    }

    ColumnTeam(const ColumnTeam &) = delete;
    ColumnTeam &operator=(const ColumnTeam &) = delete;

    unsigned members() const { return members_; }

    void
    run(const std::function<void(unsigned)> &job)
    {
        {
            std::lock_guard<std::mutex> lk(mu_);
            job_ = &job;
            done_ = 0;
            err_ = nullptr;
            ++epoch_;
        }
        cv_start_.notify_all();
        runMember(job, 0);
        std::unique_lock<std::mutex> lk(mu_);
        cv_done_.wait(lk, [this] { return done_ == members_ - 1; });
        job_ = nullptr;
        if (err_) {
            std::exception_ptr e = err_;
            err_ = nullptr;
            lk.unlock();
            std::rethrow_exception(e);
        }
    }

  private:
    void
    runMember(const std::function<void(unsigned)> &job, unsigned m)
    {
        try {
            job(m);
        } catch (...) {
            std::lock_guard<std::mutex> lk(mu_);
            if (!err_)
                err_ = std::current_exception();
        }
    }

    void
    workerLoop(unsigned m)
    {
        uint64_t seen = 0;
        while (true) {
            const std::function<void(unsigned)> *job = nullptr;
            {
                std::unique_lock<std::mutex> lk(mu_);
                cv_start_.wait(
                    lk, [&] { return stop_ || epoch_ != seen; });
                if (stop_)
                    return;
                seen = epoch_;
                job = job_;
            }
            runMember(*job, m);
            {
                std::lock_guard<std::mutex> lk(mu_);
                ++done_;
                if (done_ == members_ - 1)
                    cv_done_.notify_one();
            }
        }
    }

    const unsigned members_;
    std::mutex mu_;
    std::condition_variable cv_start_;
    std::condition_variable cv_done_;
    uint64_t epoch_ = 0;
    unsigned done_ = 0;
    bool stop_ = false;
    const std::function<void(unsigned)> *job_ = nullptr;
    std::exception_ptr err_;
    std::vector<std::thread> threads_;
};

/**
 * The parallel-columns backend: FastEdge's integer edge walk at every
 * bus-active tick, with the comm-quiet stretches in between executed
 * by a per-chip column team.
 *
 * The synchronization argument is the paper's: columns interact only
 * through the statically-scheduled bus, and delivery is self-timed,
 * so the single rendezvous a column needs is the next reference phase
 * that may move data. The scheduler probes that horizon with
 * commQuiet() — the same conservative lookahead the Compiled backend
 * batches phases with, derived from the per-edge slot schedules of
 * allocateEdgeSlots — and inside the proven window every domain's
 * work (issue slots via domainEdgeBlock/domainStallBlock/domainEdge,
 * its reference-phase share via domainRefAdvance) touches only
 * domain-private state (domainsIndependent()). Columns therefore
 * free-run through the window on team threads and rendezvous at the
 * epoch barrier before the next delivery slot runs serially.
 *
 * Bit-exactness for any team size is by construction: each domain's
 * in-window slot decomposition depends only on that domain's own
 * pending edge and the window end — never on the member running it —
 * and every hook credits state and statistics exactly as
 * slot-at-a-time execution would. The active ticks themselves run
 * serially in FastEdge's exact order.
 *
 * Halt accounting matches the serial contract (refPhase runs through
 * the tick on which allHalted() becomes true, inclusive): members
 * record each domain's halting slot tick, and after the rendezvous
 * the leader fast-forwards every domain's reference-phase share to
 * max(halt ticks) when the whole model halted inside the window, or
 * to the window end otherwise.
 */
class ParallelColumnsScheduler : public Scheduler
{
  public:
    explicit ParallelColumnsScheduler(unsigned team_threads)
        : requested_(team_threads)
    {}

    SchedStop
    run(SchedModel &model, Tick max_ticks) override
    {
        const unsigned n = model.numDomains();
        if (domain_next_.empty())
            domain_next_.assign(n, MaxTick);
        sync_assert(domain_next_.size() == n,
                    "model domain count changed between runs");

        for (unsigned d = 0; d < n; ++d) {
            if (model.domainHalted(d) || domain_next_[d] != MaxTick)
                continue;
            const ClockDomain &clk = model.domainClock(d);
            domain_next_[d] = clk.onEdge(cur_)
                                  ? cur_
                                  : clk.nextEdgeAfter(cur_);
        }
        if (ref_next_ == MaxTick)
            ref_next_ = cur_;

        const Tick limit = cur_ + max_ticks;
        const unsigned team =
            teamSize(n, model.domainsIndependent());
        if (team > 1 && (!team_ || team_->members() != team))
            team_ = std::make_unique<ColumnTeam>(team);

        // One closure reused for every window of this run; win_end
        // is rebound per window. Domains are dealt round-robin — the
        // per-domain walk is member-independent, so the deal only
        // balances load, never changes results.
        Tick win_end = 0;
        const std::function<void(unsigned)> walk =
            [&](unsigned member) {
                for (unsigned d = member; d < n; d += team)
                    walkDomain(model, d, win_end);
            };

        while (true) {
            Tick t = ref_next_;
            for (Tick dn : domain_next_)
                t = std::min(t, dn);
            if (t == MaxTick)
                return model.allHalted() ? SchedStop::AllHalted
                                         : SchedStop::Idle;
            if (t > limit)
                return SchedStop::TickLimit;

            // The bus-active tick runs serially, exactly as
            // FastEdge: all domain edges, then the reference phase.
            for (unsigned d = 0; d < n; ++d) {
                if (domain_next_[d] != t)
                    continue;
                model.domainEdge(d);
                domain_next_[d] =
                    model.domainHalted(d)
                        ? MaxTick
                        : t + model.domainClock(d).divider();
            }
            bool halted;
            if (ref_next_ == t) {
                model.refPhase();
                halted = model.allHalted();
                ref_next_ = halted ? MaxTick : t + 1;
            } else {
                halted = model.allHalted();
            }
            cur_ = t;
            if (halted)
                return SchedStop::AllHalted;
            if (ref_next_ != t + 1 || t >= limit)
                continue;

            // Comm-quiet window: reference phases t+1 .. t+quiet are
            // proven to move nothing, so until the next delivery
            // slot every domain's work is domain-private.
            const Tick quiet = model.commQuiet(limit - t);
            if (quiet == 0)
                continue;
            win_end = t + quiet;

            halt_tick_.assign(n, MaxTick);
            bool any_edges = false;
            for (Tick dn : domain_next_)
                any_edges = any_edges || dn <= win_end;
            if (any_edges) {
                if (team > 1 && quiet >= kMinTeamWindow) {
                    team_->run(walk);
                } else {
                    for (unsigned d = 0; d < n; ++d)
                        walkDomain(model, d, win_end);
                }
            }

            // Leader-side halt resolution + the reference-phase
            // share of the window: through the halting tick
            // inclusive when everything halted in-window, through
            // the window end otherwise.
            const bool all_halted = model.allHalted();
            Tick steps_end = win_end;
            if (all_halted) {
                Tick h = 0;
                for (unsigned d = 0; d < n; ++d) {
                    if (halt_tick_[d] != MaxTick)
                        h = std::max(h, halt_tick_[d]);
                }
                steps_end = h;
            }
            if (steps_end > t) {
                for (unsigned d = 0; d < n; ++d)
                    model.domainRefAdvance(d, steps_end - t);
            }
            cur_ = steps_end;
            if (all_halted) {
                ref_next_ = MaxTick;
                return SchedStop::AllHalted;
            }
            ref_next_ = win_end + 1;
        }
    }

    Tick curTick() const override { return cur_; }

    SchedulerKind kind() const override
    {
        return SchedulerKind::ParallelColumns;
    }

  private:
    // Below this window width the barrier costs more than the walk;
    // the leader runs the window inline (identical decomposition,
    // identical results — only the thread changes).
    static constexpr Tick kMinTeamWindow = 16;

    /**
     * Walk domain @p d's issue slots through the window (ticks up to
     * and including @p t_end, all inside the proven comm-quiet
     * horizon and the tick budget). Called concurrently for
     * different domains; touches only domain_next_[d], halt_tick_[d]
     * and domain-d model state.
     */
    void
    walkDomain(SchedModel &model, unsigned d, Tick t_end)
    {
        Tick next = domain_next_[d];
        if (next == MaxTick || next > t_end)
            return;
        const Tick div = model.domainClock(d).divider();
        while (next <= t_end) {
            const Tick max_slots = (t_end - next) / div + 1;
            Tick k = model.domainEdgeBlock(d, max_slots);
            if (k == 0 && max_slots > 1) {
                // A comm-stalled domain cannot unblock before the
                // next delivery slot, and every slot offered here
                // sits inside the proven-quiet window.
                k = model.domainStallBlock(d, max_slots);
            }
            if (k == 0) {
                model.domainEdge(d);
                k = 1;
            }
            if (model.domainHalted(d)) {
                halt_tick_[d] = next + (k - 1) * div;
                next = MaxTick;
                break;
            }
            next += k * div;
        }
        domain_next_[d] = next;
    }

    /**
     * Resolve the team size for this run: serial unless the model
     * grants domain independence; an explicit request is honored
     * (clamped to the domain count — nested pools are deliberate);
     * automatic sizing uses the hardware, but degrades to serial on
     * a simulation pool worker thread so fleets of parallel chips do
     * not oversubscribe the machine.
     */
    unsigned
    teamSize(unsigned n, bool independent) const
    {
        if (!independent || n <= 1 || requested_ == 1)
            return 1;
        unsigned want = requested_;
        if (want == 0) {
            if (inWorkerPool())
                return 1;
            want = std::max(std::thread::hardware_concurrency(), 2u);
        }
        return std::min(want, n);
    }

    const unsigned requested_;          //!< team size knob (0 = auto)
    std::unique_ptr<ColumnTeam> team_;
    Tick cur_ = 0;
    Tick ref_next_ = MaxTick;           //!< MaxTick = not pending
    std::vector<Tick> domain_next_;     //!< per-domain pending edge
    std::vector<Tick> halt_tick_;       //!< in-window halting slots
};

} // namespace

std::unique_ptr<Scheduler>
makeScheduler(SchedulerKind kind, unsigned team_threads)
{
    switch (kind) {
      case SchedulerKind::EventQueue:
        return std::make_unique<EventQueueScheduler>();
      case SchedulerKind::FastEdge:
        return std::make_unique<FastEdgeScheduler>();
      case SchedulerKind::Compiled:
        return std::make_unique<CompiledScheduler>();
      case SchedulerKind::ParallelColumns:
        return std::make_unique<ParallelColumnsScheduler>(
            team_threads);
    }
    panic("unknown scheduler kind %d", int(kind));
}

} // namespace synchro
