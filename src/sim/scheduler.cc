#include "sim/scheduler.hh"

#include <algorithm>
#include <vector>

#include "common/log.hh"
#include "sim/eventq.hh"

namespace synchro
{

const char *
schedulerName(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::EventQueue:
        return "eventq";
      case SchedulerKind::FastEdge:
        return "fastedge";
    }
    return "unknown";
}

namespace
{

/**
 * The original formulation: one self-rescheduling event per clock
 * domain at ClockEdgePri, one reference-phase event per tick at
 * BusPri. Ordering within a tick therefore puts every domain edge
 * before the bus phase, exactly as the Chip event loop always did.
 */
class EventQueueScheduler : public Scheduler
{
  public:
    SchedStop
    run(SchedModel &model, Tick max_ticks) override
    {
        model_ = &model;
        if (domain_events_.empty()) {
            for (unsigned d = 0; d < model.numDomains(); ++d) {
                domain_events_.push_back(std::make_unique<LambdaEvent>(
                    strprintf("domain%u.edge", d),
                    [this, d] { domainEdge(d); },
                    Event::ClockEdgePri));
            }
            ref_event_ = std::make_unique<LambdaEvent>(
                "sched.ref", [this] { refPhase(); }, Event::BusPri);
        }
        sync_assert(domain_events_.size() == model.numDomains(),
                    "model domain count changed between runs");

        // (Re)arm events that are not pending: each domain at its next
        // edge at-or-after now, the reference phase at every tick.
        for (unsigned d = 0; d < model.numDomains(); ++d) {
            if (model.domainHalted(d) || domain_events_[d]->scheduled())
                continue;
            const ClockDomain &clk = model.domainClock(d);
            Tick when = clk.onEdge(eq_.curTick())
                            ? eq_.curTick()
                            : clk.nextEdgeAfter(eq_.curTick());
            eq_.schedule(domain_events_[d].get(), when);
        }
        if (!ref_event_->scheduled())
            eq_.schedule(ref_event_.get(), eq_.curTick());

        eq_.run(eq_.curTick() + max_ticks);

        if (model.allHalted())
            return SchedStop::AllHalted;
        if (eq_.empty())
            return SchedStop::Idle;
        return SchedStop::TickLimit;
    }

    Tick curTick() const override { return eq_.curTick(); }

    SchedulerKind kind() const override
    {
        return SchedulerKind::EventQueue;
    }

  private:
    void
    domainEdge(unsigned d)
    {
        model_->domainEdge(d);
        if (!model_->domainHalted(d)) {
            eq_.schedule(domain_events_[d].get(),
                         eq_.curTick() +
                             model_->domainClock(d).divider());
        }
    }

    void
    refPhase()
    {
        model_->refPhase();
        if (!model_->allHalted())
            eq_.schedule(ref_event_.get(), eq_.curTick() + 1);
    }

    EventQueue eq_;
    SchedModel *model_ = nullptr;
    std::vector<std::unique_ptr<LambdaEvent>> domain_events_;
    std::unique_ptr<LambdaEvent> ref_event_;
};

/**
 * Edge-skipping fast path. Instead of a heap of events it keeps one
 * pending tick per domain plus one for the reference phase — the
 * whole "queue" is a handful of integers recomputed with the static
 * (divider, phase) arithmetic of ClockDomain. Between domain edges it
 * either executes reference phases directly or, when the model says
 * they are inert, fast-forwards them in one skipRefPhases() call.
 *
 * MaxTick marks "not pending", mirroring an unscheduled event.
 */
class FastEdgeScheduler : public Scheduler
{
  public:
    SchedStop
    run(SchedModel &model, Tick max_ticks) override
    {
        const unsigned n = model.numDomains();
        if (domain_next_.empty())
            domain_next_.assign(n, MaxTick);
        sync_assert(domain_next_.size() == n,
                    "model domain count changed between runs");

        // Arm pending work exactly like the event-queue backend.
        for (unsigned d = 0; d < n; ++d) {
            if (model.domainHalted(d) || domain_next_[d] != MaxTick)
                continue;
            const ClockDomain &clk = model.domainClock(d);
            domain_next_[d] = clk.onEdge(cur_)
                                  ? cur_
                                  : clk.nextEdgeAfter(cur_);
        }
        if (ref_next_ == MaxTick)
            ref_next_ = cur_;

        const Tick limit = cur_ + max_ticks;

        while (true) {
            Tick t = ref_next_;
            for (Tick dn : domain_next_)
                t = std::min(t, dn);
            if (t == MaxTick)
                return model.allHalted() ? SchedStop::AllHalted
                                         : SchedStop::Idle;
            if (t > limit)
                return SchedStop::TickLimit;

            // All domain edges of this tick, then the reference phase
            // — the ClockEdgePri-before-BusPri ordering of the event
            // queue. Domains are mutually independent within the edge
            // phase, so index order is as good as event-seq order.
            for (unsigned d = 0; d < n; ++d) {
                if (domain_next_[d] != t)
                    continue;
                model.domainEdge(d);
                domain_next_[d] =
                    model.domainHalted(d)
                        ? MaxTick
                        : t + model.domainClock(d).divider();
            }
            if (ref_next_ == t) {
                model.refPhase();
                ref_next_ = model.allHalted() ? MaxTick : t + 1;
            }
            cur_ = t;

            if (model.allHalted())
                return SchedStop::AllHalted;

            // Edge skipping: if no domain has an edge before the next
            // interesting tick and the reference phases in between are
            // inert, fast-forward them in one O(1) call.
            if (ref_next_ == t + 1) {
                Tick next_edge = MaxTick;
                for (Tick dn : domain_next_)
                    next_edge = std::min(next_edge, dn);
                Tick target = std::min(next_edge, limit);
                if (target > t + 1 && model.refPhaseInert()) {
                    model.skipRefPhases(target - (t + 1));
                    ref_next_ = target;
                    cur_ = target - 1;
                }
            }
        }
    }

    Tick curTick() const override { return cur_; }

    SchedulerKind kind() const override
    {
        return SchedulerKind::FastEdge;
    }

  private:
    Tick cur_ = 0;
    Tick ref_next_ = MaxTick;           //!< MaxTick = not pending
    std::vector<Tick> domain_next_;     //!< per-domain pending edge
};

} // namespace

std::unique_ptr<Scheduler>
makeScheduler(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::EventQueue:
        return std::make_unique<EventQueueScheduler>();
      case SchedulerKind::FastEdge:
        return std::make_unique<FastEdgeScheduler>();
    }
    panic("unknown scheduler kind %d", int(kind));
}

} // namespace synchro
