#include "sim/scheduler.hh"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "common/log.hh"
#include "sim/eventq.hh"

namespace synchro
{

const char *
schedulerName(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::EventQueue:
        return "eventq";
      case SchedulerKind::FastEdge:
        return "fastedge";
      case SchedulerKind::Compiled:
        return "compiled";
    }
    return "unknown";
}

bool
parseSchedulerKind(const std::string &name, SchedulerKind &out)
{
    if (name == "eventq") {
        out = SchedulerKind::EventQueue;
    } else if (name == "fastedge") {
        out = SchedulerKind::FastEdge;
    } else if (name == "compiled") {
        out = SchedulerKind::Compiled;
    } else {
        return false;
    }
    return true;
}

namespace
{

SchedulerKind &
defaultKindSlot()
{
    static SchedulerKind kind = [] {
        const char *env = std::getenv("SYNCHRO_SCHEDULER");
        if (!env || !*env)
            return SchedulerKind::FastEdge;
        SchedulerKind k;
        if (!parseSchedulerKind(env, k))
            fatal("SYNCHRO_SCHEDULER=%s is not a backend "
                  "(eventq | fastedge | compiled)",
                  env);
        return k;
    }();
    return kind;
}

} // namespace

SchedulerKind
defaultSchedulerKind()
{
    return defaultKindSlot();
}

void
setDefaultSchedulerKind(SchedulerKind kind)
{
    defaultKindSlot() = kind;
}

SchedulerKind
backendFromArgs(int &argc, char **argv, SchedulerKind fallback)
{
    SchedulerKind kind = fallback;
    int w = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string name;
        if (arg == "--backend") {
            if (i + 1 >= argc)
                fatal("--backend needs a value "
                      "(eventq | fastedge | compiled)");
            name = argv[++i];
        } else if (arg.rfind("--backend=", 0) == 0) {
            name = arg.substr(10);
        } else {
            argv[w++] = argv[i];
            continue;
        }
        if (!parseSchedulerKind(name, kind))
            fatal("--backend %s is not a backend "
                  "(eventq | fastedge | compiled)",
                  name.c_str());
    }
    argv[w] = nullptr;
    argc = w;
    return kind;
}

namespace
{

/**
 * The original formulation: one self-rescheduling event per clock
 * domain at ClockEdgePri, one reference-phase event per tick at
 * BusPri. Ordering within a tick therefore puts every domain edge
 * before the bus phase, exactly as the Chip event loop always did.
 */
class EventQueueScheduler : public Scheduler
{
  public:
    SchedStop
    run(SchedModel &model, Tick max_ticks) override
    {
        model_ = &model;
        if (domain_events_.empty()) {
            for (unsigned d = 0; d < model.numDomains(); ++d) {
                domain_events_.push_back(std::make_unique<LambdaEvent>(
                    strprintf("domain%u.edge", d),
                    [this, d] { domainEdge(d); },
                    Event::ClockEdgePri));
            }
            ref_event_ = std::make_unique<LambdaEvent>(
                "sched.ref", [this] { refPhase(); }, Event::BusPri);
        }
        sync_assert(domain_events_.size() == model.numDomains(),
                    "model domain count changed between runs");

        // (Re)arm events that are not pending: each domain at its next
        // edge at-or-after now, the reference phase at every tick.
        for (unsigned d = 0; d < model.numDomains(); ++d) {
            if (model.domainHalted(d) || domain_events_[d]->scheduled())
                continue;
            const ClockDomain &clk = model.domainClock(d);
            Tick when = clk.onEdge(eq_.curTick())
                            ? eq_.curTick()
                            : clk.nextEdgeAfter(eq_.curTick());
            eq_.schedule(domain_events_[d].get(), when);
        }
        if (!ref_event_->scheduled())
            eq_.schedule(ref_event_.get(), eq_.curTick());

        eq_.run(eq_.curTick() + max_ticks);

        if (model.allHalted())
            return SchedStop::AllHalted;
        if (eq_.empty())
            return SchedStop::Idle;
        return SchedStop::TickLimit;
    }

    Tick curTick() const override { return eq_.curTick(); }

    SchedulerKind kind() const override
    {
        return SchedulerKind::EventQueue;
    }

  private:
    void
    domainEdge(unsigned d)
    {
        model_->domainEdge(d);
        if (!model_->domainHalted(d)) {
            eq_.schedule(domain_events_[d].get(),
                         eq_.curTick() +
                             model_->domainClock(d).divider());
        }
    }

    void
    refPhase()
    {
        model_->refPhase();
        if (!model_->allHalted())
            eq_.schedule(ref_event_.get(), eq_.curTick() + 1);
    }

    EventQueue eq_;
    SchedModel *model_ = nullptr;
    std::vector<std::unique_ptr<LambdaEvent>> domain_events_;
    std::unique_ptr<LambdaEvent> ref_event_;
};

/**
 * Edge-skipping fast path. Instead of a heap of events it keeps one
 * pending tick per domain plus one for the reference phase — the
 * whole "queue" is a handful of integers recomputed with the static
 * (divider, phase) arithmetic of ClockDomain. Between domain edges it
 * either executes reference phases directly or, when the model says
 * they are inert, fast-forwards them in one skipRefPhases() call.
 *
 * MaxTick marks "not pending", mirroring an unscheduled event.
 */
class FastEdgeScheduler : public Scheduler
{
  public:
    SchedStop
    run(SchedModel &model, Tick max_ticks) override
    {
        const unsigned n = model.numDomains();
        if (domain_next_.empty())
            domain_next_.assign(n, MaxTick);
        sync_assert(domain_next_.size() == n,
                    "model domain count changed between runs");

        // Arm pending work exactly like the event-queue backend.
        for (unsigned d = 0; d < n; ++d) {
            if (model.domainHalted(d) || domain_next_[d] != MaxTick)
                continue;
            const ClockDomain &clk = model.domainClock(d);
            domain_next_[d] = clk.onEdge(cur_)
                                  ? cur_
                                  : clk.nextEdgeAfter(cur_);
        }
        if (ref_next_ == MaxTick)
            ref_next_ = cur_;

        const Tick limit = cur_ + max_ticks;

        while (true) {
            Tick t = ref_next_;
            for (Tick dn : domain_next_)
                t = std::min(t, dn);
            if (t == MaxTick)
                return model.allHalted() ? SchedStop::AllHalted
                                         : SchedStop::Idle;
            if (t > limit)
                return SchedStop::TickLimit;

            // All domain edges of this tick, then the reference phase
            // — the ClockEdgePri-before-BusPri ordering of the event
            // queue. Domains are mutually independent within the edge
            // phase, so index order is as good as event-seq order.
            for (unsigned d = 0; d < n; ++d) {
                if (domain_next_[d] != t)
                    continue;
                model.domainEdge(d);
                domain_next_[d] =
                    model.domainHalted(d)
                        ? MaxTick
                        : t + model.domainClock(d).divider();
            }
            bool halted;
            if (ref_next_ == t) {
                model.refPhase();
                halted = model.allHalted();
                ref_next_ = halted ? MaxTick : t + 1;
            } else {
                halted = model.allHalted();
            }
            cur_ = t;

            if (halted)
                return SchedStop::AllHalted;

            // Edge skipping: if no domain has an edge before the next
            // interesting tick and the reference phases in between are
            // inert, fast-forward them in one O(1) call.
            if (ref_next_ == t + 1) {
                Tick next_edge = MaxTick;
                for (Tick dn : domain_next_)
                    next_edge = std::min(next_edge, dn);
                Tick target = std::min(next_edge, limit);
                if (target > t + 1 && model.refPhaseInert()) {
                    model.skipRefPhases(target - (t + 1));
                    ref_next_ = target;
                    cur_ = target - 1;
                }
            }
        }
    }

    Tick curTick() const override { return cur_; }

    SchedulerKind kind() const override
    {
        return SchedulerKind::FastEdge;
    }

  private:
    Tick cur_ = 0;
    Tick ref_next_ = MaxTick;           //!< MaxTick = not pending
    std::vector<Tick> domain_next_;     //!< per-domain pending edge
};

/**
 * The compiled backend: FastEdge's integer edge walk, plus the two
 * SchedModel batch hooks.
 *
 *  - At a domain edge, domainEdgeBlock() may consume many issue
 *    slots at once (slot i standing for the edge at t + i * divider).
 *    The blocks contain only work that commutes with everything else
 *    in the window — for the chip, compute ops on tile-private state
 *    — so executing them ahead of the interleaved reference phases
 *    is bit-identical to slot-at-a-time execution. The domain's next
 *    pending edge simply advances by (slots * divider).
 *
 *  - Between edges, commFreeAdvance() fast-forwards reference phases
 *    that provably move no data (every DOU sits in all-zero buffer
 *    states), walking through state transitions where FastEdge's
 *    inert-self-loop test would give up. Phases that may move data
 *    run one at a time via refPhase(), exactly in order.
 *
 * Both hooks cap at the tick budget, so run(1) in a loop still
 * matches one big run() bit-for-bit.
 */
class CompiledScheduler : public Scheduler
{
  public:
    SchedStop
    run(SchedModel &model, Tick max_ticks) override
    {
        const unsigned n = model.numDomains();
        if (domain_next_.empty())
            domain_next_.assign(n, MaxTick);
        sync_assert(domain_next_.size() == n,
                    "model domain count changed between runs");

        for (unsigned d = 0; d < n; ++d) {
            if (model.domainHalted(d) || domain_next_[d] != MaxTick)
                continue;
            const ClockDomain &clk = model.domainClock(d);
            domain_next_[d] = clk.onEdge(cur_)
                                  ? cur_
                                  : clk.nextEdgeAfter(cur_);
        }
        if (ref_next_ == MaxTick)
            ref_next_ = cur_;

        const Tick limit = cur_ + max_ticks;

        while (true) {
            Tick t = ref_next_;
            for (Tick dn : domain_next_)
                t = std::min(t, dn);
            if (t == MaxTick)
                return model.allHalted() ? SchedStop::AllHalted
                                         : SchedStop::Idle;
            if (t > limit)
                return SchedStop::TickLimit;

            bool quiet_known = false;
            Tick quiet = 0;
            for (unsigned d = 0; d < n; ++d) {
                if (domain_next_[d] != t)
                    continue;
                const Tick div = model.domainClock(d).divider();
                // Slots at t, t+div, ... while the tick stays in
                // budget — so stepped runs consume identical slots.
                const Tick max_slots = (limit - t) / div + 1;
                Tick k = model.domainEdgeBlock(d, max_slots);
                if (k == 0 && max_slots > 1) {
                    // A domain stalled on a comm hazard stays
                    // stalled for every edge inside the upcoming
                    // bus-quiet window: the edge at t + j*div only
                    // needs phases [t, t + j*div) quiet. Probe the
                    // window once per round, on demand.
                    if (!quiet_known) {
                        quiet = model.commQuiet(limit - t + 1);
                        quiet_known = true;
                    }
                    const Tick sl =
                        std::min(max_slots, quiet / div + 1);
                    if (sl > 1)
                        k = model.domainStallBlock(d, sl);
                }
                if (k == 0) {
                    model.domainEdge(d);
                    k = 1;
                }
                domain_next_[d] = model.domainHalted(d)
                                      ? MaxTick
                                      : t + k * div;
            }
            bool halted;
            if (ref_next_ == t) {
                model.refPhase();
                halted = model.allHalted();
                ref_next_ = halted ? MaxTick : t + 1;
            } else {
                halted = model.allHalted();
            }
            cur_ = t;

            if (halted)
                return SchedStop::AllHalted;

            // Batch the reference phases up to the next domain edge:
            // comm-free stretches fast-forward wholesale, phases that
            // may move data run individually and in order.
            if (ref_next_ == t + 1) {
                Tick next_edge = MaxTick;
                for (Tick dn : domain_next_)
                    next_edge = std::min(next_edge, dn);
                const Tick target = std::min(next_edge, limit + 1);
                while (ref_next_ < target) {
                    const Tick want = target - ref_next_;
                    Tick k = model.commFreeAdvance(want);
                    if (k > 0) {
                        ref_next_ += k;
                        cur_ = ref_next_ - 1;
                    }
                    if (k == want)
                        break;
                    model.refPhase();
                    cur_ = ref_next_;
                    if (model.allHalted())
                        return SchedStop::AllHalted;
                    ref_next_ = cur_ + 1;
                }
            }
        }
    }

    Tick curTick() const override { return cur_; }

    SchedulerKind kind() const override
    {
        return SchedulerKind::Compiled;
    }

  private:
    Tick cur_ = 0;
    Tick ref_next_ = MaxTick;           //!< MaxTick = not pending
    std::vector<Tick> domain_next_;     //!< per-domain pending edge
};

} // namespace

std::unique_ptr<Scheduler>
makeScheduler(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::EventQueue:
        return std::make_unique<EventQueueScheduler>();
      case SchedulerKind::FastEdge:
        return std::make_unique<FastEdgeScheduler>();
      case SchedulerKind::Compiled:
        return std::make_unique<CompiledScheduler>();
    }
    panic("unknown scheduler kind %d", int(kind));
}

} // namespace synchro
