#include "sim/session.hh"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "common/log.hh"
#include "sim/scheduler.hh"

namespace synchro::sim
{

SimSession::SimSession(SessionConfig cfg) : cfg_(cfg) {}

SimSession::~SimSession() = default;

unsigned
SimSession::admit(ChipSpec &&spec)
{
    Slot slot;
    if (spec.cfg_) {
        // Session-built: a backend override folds into the config
        // before construction instead of re-homing afterwards.
        arch::ChipConfig cfg = *spec.cfg_;
        if (spec.has_backend_)
            cfg.scheduler = spec.backend_;
        slot.owned = std::make_unique<arch::Chip>(cfg);
        slot.chip = slot.owned.get();
    } else if (spec.owned_) {
        slot.owned = std::move(spec.owned_);
        slot.chip = slot.owned.get();
    } else if (spec.borrowed_ != nullptr) {
        slot.chip = spec.borrowed_;
    } else {
        fatal("SimSession::admit: ChipSpec holds no chip (moved-"
              "from or null unique_ptr)");
    }
    if (spec.has_backend_ && !spec.cfg_)
        slot.chip->setSchedulerKind(spec.backend_);
    slot.tick_limit = spec.tick_limit_;
    chips_.push_back(std::move(slot));
    return unsigned(chips_.size() - 1);
}

unsigned
SimSession::addChip(const arch::ChipConfig &cfg)
{
    return admit(ChipSpec(cfg));
}

unsigned
SimSession::adoptChip(std::unique_ptr<arch::Chip> chip,
                      Tick tick_limit)
{
    return admit(ChipSpec(std::move(chip)).tickLimit(tick_limit));
}

unsigned
SimSession::adoptChip(std::unique_ptr<arch::Chip> chip,
                      Tick tick_limit, SchedulerKind scheduler)
{
    return admit(ChipSpec(std::move(chip))
                     .tickLimit(tick_limit)
                     .backend(scheduler));
}

unsigned
SimSession::attachChip(arch::Chip &chip, Tick tick_limit)
{
    return admit(ChipSpec(chip).tickLimit(tick_limit));
}

unsigned
SimSession::attachChip(arch::Chip &chip, Tick tick_limit,
                       SchedulerKind scheduler)
{
    return admit(
        ChipSpec(chip).tickLimit(tick_limit).backend(scheduler));
}

void
SimSession::setTickLimit(unsigned i, Tick tick_limit)
{
    chips_.at(i).tick_limit = tick_limit;
}

unsigned
SimSession::effectiveThreads() const
{
    unsigned hw = std::thread::hardware_concurrency();
    unsigned want = cfg_.threads != 0 ? cfg_.threads
                                      : (hw != 0 ? hw : 1);
    unsigned chips = unsigned(chips_.size());
    if (chips == 0)
        return 0;
    return std::min(want, chips);
}

std::vector<arch::RunResult>
SimSession::runAll(Tick max_ticks)
{
    results_.assign(chips_.size(),
                    arch::RunResult{arch::RunExit::TickLimit, 0});
    if (chips_.empty())
        return results_;

    auto budget = [&](size_t i) {
        return chips_[i].tick_limit != 0 ? chips_[i].tick_limit
                                         : max_ticks;
    };

    // Single chip or pool_size == 1: run on the caller's thread —
    // no pool, no atomics, and errors propagate directly from the
    // failing chip instead of through an exception_ptr relay.
    if (effectiveThreads() <= 1) {
        for (size_t i = 0; i < chips_.size(); ++i)
            results_[i] = chips_[i].chip->run(budget(i));
        return results_;
    }

    // Chips are fully isolated simulations, so a dynamic work queue
    // is safe: whichever thread picks a chip up runs it start to
    // finish, and per-chip results do not depend on the assignment.
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex err_mu;
    std::exception_ptr first_error;

    auto worker = [&] {
        // Nested-parallelism policy: pool workers mark themselves so
        // ParallelColumns chips with an automatic team size run
        // serially here instead of stacking a column team on top of
        // the chip pool. (The inline path above runs on the caller's
        // thread and keeps whatever team the caller is entitled to.)
        WorkerPoolScope in_pool;
        while (!failed.load(std::memory_order_relaxed)) {
            size_t i = next.fetch_add(1);
            if (i >= chips_.size())
                return;
            try {
                results_[i] = chips_[i].chip->run(budget(i));
            } catch (...) {
                // Stop the pool at the next chip boundary: the whole
                // batch is abandoned once any chip errors.
                failed.store(true, std::memory_order_relaxed);
                std::lock_guard<std::mutex> lock(err_mu);
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
    };

    unsigned n_threads = effectiveThreads();
    std::vector<std::thread> pool;
    pool.reserve(n_threads);
    for (unsigned t = 0; t < n_threads; ++t)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();

    if (first_error)
        std::rethrow_exception(first_error);
    return results_;
}

SessionStats
SimSession::aggregate() const
{
    SessionStats s;
    s.chips = chips_.size();
    for (size_t i = 0; i < chips_.size(); ++i) {
        if (i < results_.size()) {
            const arch::RunResult &r = results_[i];
            switch (r.exit) {
              case arch::RunExit::AllHalted:
                ++s.halted;
                break;
              case arch::RunExit::TickLimit:
                ++s.tick_limited;
                break;
              case arch::RunExit::Deadlock:
                ++s.deadlocked;
                break;
            }
            s.max_ticks_reached = std::max(s.max_ticks_reached,
                                           r.ticks);
            s.total_ticks += r.ticks;
        }
        chips_[i].chip->forEachStat(
            [&s](const std::string &name, uint64_t value) {
                s.counters[name] += value;
            });
    }
    return s;
}

} // namespace synchro::sim
