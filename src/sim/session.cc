#include "sim/session.hh"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "common/log.hh"

namespace synchro::sim
{

SimSession::SimSession(SessionConfig cfg) : cfg_(cfg) {}

SimSession::~SimSession() = default;

unsigned
SimSession::addChip(const arch::ChipConfig &cfg)
{
    return adoptChip(std::make_unique<arch::Chip>(cfg));
}

unsigned
SimSession::adoptChip(std::unique_ptr<arch::Chip> chip,
                      Tick tick_limit)
{
    if (!chip)
        fatal("SimSession::adoptChip: null chip");
    Slot slot;
    slot.chip = chip.get();
    slot.owned = std::move(chip);
    slot.tick_limit = tick_limit;
    chips_.push_back(std::move(slot));
    return unsigned(chips_.size() - 1);
}

unsigned
SimSession::adoptChip(std::unique_ptr<arch::Chip> chip,
                      Tick tick_limit, SchedulerKind scheduler)
{
    if (!chip)
        fatal("SimSession::adoptChip: null chip");
    chip->setSchedulerKind(scheduler);
    return adoptChip(std::move(chip), tick_limit);
}

unsigned
SimSession::attachChip(arch::Chip &chip, Tick tick_limit)
{
    Slot slot;
    slot.chip = &chip;
    slot.tick_limit = tick_limit;
    chips_.push_back(std::move(slot));
    return unsigned(chips_.size() - 1);
}

unsigned
SimSession::attachChip(arch::Chip &chip, Tick tick_limit,
                       SchedulerKind scheduler)
{
    chip.setSchedulerKind(scheduler);
    return attachChip(chip, tick_limit);
}

void
SimSession::setTickLimit(unsigned i, Tick tick_limit)
{
    chips_.at(i).tick_limit = tick_limit;
}

unsigned
SimSession::effectiveThreads() const
{
    unsigned hw = std::thread::hardware_concurrency();
    unsigned want = cfg_.threads != 0 ? cfg_.threads
                                      : (hw != 0 ? hw : 1);
    unsigned chips = unsigned(chips_.size());
    if (chips == 0)
        return 0;
    return std::min(want, chips);
}

std::vector<arch::RunResult>
SimSession::runAll(Tick max_ticks)
{
    results_.assign(chips_.size(),
                    arch::RunResult{arch::RunExit::TickLimit, 0});
    if (chips_.empty())
        return results_;

    // Chips are fully isolated simulations, so a dynamic work queue
    // is safe: whichever thread picks a chip up runs it start to
    // finish, and per-chip results do not depend on the assignment.
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex err_mu;
    std::exception_ptr first_error;

    auto worker = [&] {
        while (!failed.load(std::memory_order_relaxed)) {
            size_t i = next.fetch_add(1);
            if (i >= chips_.size())
                return;
            try {
                Tick budget = chips_[i].tick_limit != 0
                                  ? chips_[i].tick_limit
                                  : max_ticks;
                results_[i] = chips_[i].chip->run(budget);
            } catch (...) {
                // Stop the pool at the next chip boundary: the whole
                // batch is abandoned once any chip errors.
                failed.store(true, std::memory_order_relaxed);
                std::lock_guard<std::mutex> lock(err_mu);
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
    };

    unsigned n_threads = effectiveThreads();
    if (n_threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n_threads);
        for (unsigned t = 0; t < n_threads; ++t)
            pool.emplace_back(worker);
        for (auto &th : pool)
            th.join();
    }

    if (first_error)
        std::rethrow_exception(first_error);
    return results_;
}

SessionStats
SimSession::aggregate() const
{
    SessionStats s;
    s.chips = chips_.size();
    for (size_t i = 0; i < chips_.size(); ++i) {
        if (i < results_.size()) {
            const arch::RunResult &r = results_[i];
            switch (r.exit) {
              case arch::RunExit::AllHalted:
                ++s.halted;
                break;
              case arch::RunExit::TickLimit:
                ++s.tick_limited;
                break;
              case arch::RunExit::Deadlock:
                ++s.deadlocked;
                break;
            }
            s.max_ticks_reached = std::max(s.max_ticks_reached,
                                           r.ticks);
            s.total_ticks += r.ticks;
        }
        chips_[i].chip->forEachStat(
            [&s](const std::string &name, uint64_t value) {
                s.counters[name] += value;
            });
    }
    return s;
}

} // namespace synchro::sim
