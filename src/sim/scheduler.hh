/**
 * @file
 * Pluggable execution schedulers for rationally-clocked models.
 *
 * The Synchroscalar restriction to integer clock dividers makes every
 * domain's edge pattern statically computable (paper Section 6), so a
 * simulator does not need a dynamic event queue to find the next thing
 * to do. This header splits the "what happens" (SchedModel — the chip)
 * from the "when" (Scheduler) and provides three interchangeable
 * backends:
 *
 *  - SchedulerKind::EventQueue — the original gem5-style discrete
 *    event queue. One self-rescheduling event per clock domain plus a
 *    reference-clock event every tick. The reference semantics; keep
 *    it around to cross-check the fast paths bit-for-bit.
 *
 *  - SchedulerKind::FastEdge — precomputes each domain's next edge
 *    from its (divider, phase) pair and jumps straight to the next
 *    edge tick. Reference-clock work on edge-free ticks is either
 *    executed directly or, when the model reports it inert (idle DOUs,
 *    nothing on the bus), fast-forwarded in O(1) via skipRefPhases().
 *
 *  - SchedulerKind::Compiled — FastEdge's edge walk plus two batch
 *    hooks: straight-line runs of a domain's steady-state firing
 *    loops execute as one pre-analyzed block (domainEdgeBlock), and
 *    reference phases between bus slots are fast-forwarded through
 *    DOU state transitions (commFreeAdvance). Any slot with a
 *    branch, halt, lsetup or comm op — and any reference phase that
 *    may move data — still runs slot-exact.
 *
 *  - SchedulerKind::ParallelColumns — intra-chip parallelism via
 *    latency-insensitive sync. Bus delivery is self-timed and every
 *    statically-scheduled bus slot is known, so the only point at
 *    which columns interact is an *active* reference phase (a bus
 *    cycle that may move data). The scheduler probes the comm-quiet
 *    window (commQuiet — the same proof the Compiled backend
 *    batches phases with), lets every column free-run its issue
 *    slots and DOU phases through the window on its own team
 *    thread (column state is private while the fabric is quiet),
 *    and rendezvouses the team at an epoch barrier before each
 *    delivery slot runs serially. Bit-identical to the serial
 *    backends for any team size by construction.
 *
 * All backends drive the model through the same narrow interface and
 * must produce identical architectural state and statistics; the
 * scheduler_test suite enforces this.
 */

#ifndef SYNC_SIM_SCHEDULER_HH
#define SYNC_SIM_SCHEDULER_HH

#include <memory>
#include <string>

#include "sim/clock.hh"
#include "sim/types.hh"

namespace synchro
{

/** Selects the scheduler backend driving a model. */
enum class SchedulerKind
{
    EventQueue,      //!< discrete event queue (reference semantics)
    FastEdge,        //!< static edge-pattern fast path
    Compiled,        //!< steady-state loops compiled to blocks
    ParallelColumns, //!< columns threaded between delivery slots
};

/**
 * Human-readable backend name
 * ("eventq"/"fastedge"/"compiled"/"parallel").
 */
const char *schedulerName(SchedulerKind kind);

/**
 * Parse a backend name ("eventq" | "fastedge" | "compiled" |
 * "parallel" — the exact strings schedulerName() emits). Returns
 * false and leaves @p out untouched on anything else.
 */
bool parseSchedulerKind(const std::string &name, SchedulerKind &out);

/**
 * The process-wide default backend: $SYNCHRO_SCHEDULER when set to a
 * valid backend name (fatal on an invalid one), FastEdge otherwise.
 * ChipConfig and the mapped-app runners initialize from this, so CI
 * can force the whole suite onto one backend with an env var.
 */
SchedulerKind defaultSchedulerKind();

/**
 * Consume a "--backend <name>" / "--backend=<name>" flag from argv
 * (removing it so later arg parsers never see it). Returns the
 * parsed kind, or @p fallback when the flag is absent; fatal() on an
 * unknown name.
 */
SchedulerKind backendFromArgs(
    int &argc, char **argv,
    SchedulerKind fallback = defaultSchedulerKind());

/**
 * Override what defaultSchedulerKind() returns for the rest of the
 * process. Lets a `--backend` flag govern harness code that builds
 * chips with default-constructed configs (e.g. the micro-kernel
 * runners), without threading the kind through every call chain.
 */
void setDefaultSchedulerKind(SchedulerKind kind);

/**
 * What a scheduler needs to know about the simulated model: a set of
 * divided clock domains (columns) plus work that happens every
 * reference tick (bus movement and DOU stepping).
 *
 * Contract mirrored from the event-queue formulation:
 *  - domainEdge(d) runs at every edge of domain d while the domain is
 *    not halted (edges at phase + k * divider);
 *  - refPhase() runs once per reference tick, after all domain edges
 *    of that tick, from the first tick of run() until the tick on
 *    which allHalted() becomes true (inclusive);
 *  - when refPhaseInert() is true, a refPhase() would move no data and
 *    touch no visible statistics other than what skipRefPhases(n)
 *    reproduces; the fast path uses this to jump over idle ticks.
 */
class SchedModel
{
  public:
    virtual ~SchedModel() = default;

    virtual unsigned numDomains() const = 0;
    virtual const ClockDomain &domainClock(unsigned d) const = 0;
    virtual bool domainHalted(unsigned d) const = 0;
    virtual bool allHalted() const = 0;

    /** One divided-clock edge of domain @p d. */
    virtual void domainEdge(unsigned d) = 0;

    /** One reference-clock phase (bus resolution + DOU step). */
    virtual void refPhase() = 0;

    /** True if the next refPhase() is guaranteed to move nothing. */
    virtual bool refPhaseInert() const = 0;

    /** Fast-forward @p n inert reference phases in one call. */
    virtual void skipRefPhases(Tick n) = 0;

    /**
     * Compiled-backend hook: execute up to @p max_slots consecutive
     * issue slots of domain @p d as one pre-analyzed block. Slot i of
     * the block stands for the edge at tick t + i * divider; the
     * block may only contain work that commutes with every reference
     * phase and other-domain edge in that window (for the chip:
     * compute ops touching tile-private state, never the comm
     * buffers). Returns the slots consumed; 0 means no block applies
     * and the caller must issue a single domainEdge(). The default
     * keeps non-compiled models on the slot-at-a-time path.
     */
    virtual Tick
    domainEdgeBlock(unsigned d, Tick max_slots)
    {
        (void)d;
        (void)max_slots;
        return 0;
    }

    /**
     * Compiled-backend hook: advance up to @p max reference phases
     * that are provably comm-free (no DOU drives or captures in any
     * of them), crediting statistics exactly as max refPhase() calls
     * would. Returns the phases consumed (0 = the next phase may
     * move data and must run via refPhase()). Unlike refPhaseInert()
     * / skipRefPhases() this may walk through DOU state transitions,
     * so it also covers active schedules between their bus slots.
     */
    virtual Tick
    commFreeAdvance(Tick max)
    {
        (void)max;
        return 0;
    }

    /**
     * Compiled-backend hook: how many upcoming reference phases
     * (starting with the next one) are provably comm-free, up to
     * @p max — a pure probe, nothing advances. The scheduler uses
     * this to bound how many comm-stall slots of a blocked domain
     * can be consumed at once: a stalled comm op cannot unblock
     * before the next bus activity.
     */
    virtual Tick
    commQuiet(Tick max) const
    {
        (void)max;
        return 0;
    }

    /**
     * Compiled-backend hook: the scheduler has proven the next
     * @p max_slots edges of domain @p d fall inside a comm-quiet
     * window (commQuiet()); if the domain is stalled on a comm
     * hazard, consume up to that many stall slots in one call.
     * Returns the slots consumed; 0 = not comm-stalled.
     */
    virtual Tick
    domainStallBlock(unsigned d, Tick max_slots)
    {
        (void)d;
        (void)max_slots;
        return 0;
    }

    /**
     * ParallelColumns hook: true when the model's domains interact
     * ONLY through refPhase() — domainEdge(d) and domainRefAdvance(d)
     * touch domain-d-private state exclusively, so inside a window
     * where every refPhase() is provably a no-op (commQuiet),
     * different domains may execute concurrently on different
     * threads. The chip satisfies this: issue slots touch only the
     * column's own tiles and comm buffers, and the bus fabric — the
     * one piece of shared state — moves nothing while every DOU is
     * comm-free. Models that do not make this guarantee keep the
     * default and the ParallelColumns backend runs them serially.
     */
    virtual bool domainsIndependent() const { return false; }

    /**
     * ParallelColumns hook: advance domain @p d's share of @p n
     * reference phases inside a comm-quiet window proven by
     * commQuiet() — for the chip, fast-forward the column's DOU
     * through n comm-free cycles, crediting statistics exactly as n
     * refPhase() calls would for that column. Called concurrently
     * for different domains; must touch only domain-@p d state.
     */
    virtual void
    domainRefAdvance(unsigned d, Tick n)
    {
        (void)d;
        (void)n;
    }
};

/** Why Scheduler::run() returned. */
enum class SchedStop
{
    AllHalted, //!< the model reported allHalted()
    TickLimit, //!< the tick budget ran out
    Idle,      //!< nothing left to schedule but not halted
};

class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /**
     * Drive @p model until it halts or @p max_ticks reference cycles
     * elapse. May be called repeatedly; time accumulates and pending
     * work carries across calls, so run(1) in a loop is equivalent to
     * one large run() (robustness_test relies on this).
     */
    virtual SchedStop run(SchedModel &model, Tick max_ticks) = 0;

    virtual Tick curTick() const = 0;

    virtual SchedulerKind kind() const = 0;

    const char *name() const { return schedulerName(kind()); }
};

/**
 * Construct a scheduler backend. @p team_threads only matters for
 * ParallelColumns: 0 picks an automatic team size (hardware
 * concurrency clamped to the domain count, degrading to serial when
 * the calling thread already belongs to a simulation worker pool —
 * see inWorkerPool()), 1 forces serial execution, and larger values
 * request that many team members (clamped to the domain count at
 * run time). Other kinds ignore it.
 */
std::unique_ptr<Scheduler> makeScheduler(SchedulerKind kind,
                                         unsigned team_threads = 0);

/**
 * Nested-parallelism policy. SimSession and FleetExecutor workers
 * mark themselves with a WorkerPoolScope; the automatic
 * ParallelColumns team size (team_threads == 0) collapses to 1 on a
 * marked thread so a fleet of parallel-columns chips does not
 * oversubscribe the machine with pool × team threads. An explicit
 * team size is always honored (nested pools) — that is how the
 * fleet × parallel-columns composition tests exercise both layers
 * at once.
 */
bool inWorkerPool();

/** RAII marker: the current thread belongs to a simulation pool. */
class WorkerPoolScope
{
  public:
    WorkerPoolScope();
    ~WorkerPoolScope();

    WorkerPoolScope(const WorkerPoolScope &) = delete;
    WorkerPoolScope &operator=(const WorkerPoolScope &) = delete;

  private:
    bool prev_;
};

} // namespace synchro

#endif // SYNC_SIM_SCHEDULER_HH
