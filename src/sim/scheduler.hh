/**
 * @file
 * Pluggable execution schedulers for rationally-clocked models.
 *
 * The Synchroscalar restriction to integer clock dividers makes every
 * domain's edge pattern statically computable (paper Section 6), so a
 * simulator does not need a dynamic event queue to find the next thing
 * to do. This header splits the "what happens" (SchedModel — the chip)
 * from the "when" (Scheduler) and provides two interchangeable
 * backends:
 *
 *  - SchedulerKind::EventQueue — the original gem5-style discrete
 *    event queue. One self-rescheduling event per clock domain plus a
 *    reference-clock event every tick. The reference semantics; keep
 *    it around to cross-check the fast path bit-for-bit.
 *
 *  - SchedulerKind::FastEdge — precomputes each domain's next edge
 *    from its (divider, phase) pair and jumps straight to the next
 *    edge tick. Reference-clock work on edge-free ticks is either
 *    executed directly or, when the model reports it inert (idle DOUs,
 *    nothing on the bus), fast-forwarded in O(1) via skipRefPhases().
 *
 * Both backends drive the model through the same narrow interface and
 * must produce identical architectural state and statistics; the
 * scheduler_test suite enforces this.
 */

#ifndef SYNC_SIM_SCHEDULER_HH
#define SYNC_SIM_SCHEDULER_HH

#include <memory>

#include "sim/clock.hh"
#include "sim/types.hh"

namespace synchro
{

/** Selects the scheduler backend driving a model. */
enum class SchedulerKind
{
    EventQueue, //!< discrete event queue (reference semantics)
    FastEdge,   //!< static edge-pattern fast path
};

/** Human-readable backend name ("eventq" / "fastedge"). */
const char *schedulerName(SchedulerKind kind);

/**
 * What a scheduler needs to know about the simulated model: a set of
 * divided clock domains (columns) plus work that happens every
 * reference tick (bus movement and DOU stepping).
 *
 * Contract mirrored from the event-queue formulation:
 *  - domainEdge(d) runs at every edge of domain d while the domain is
 *    not halted (edges at phase + k * divider);
 *  - refPhase() runs once per reference tick, after all domain edges
 *    of that tick, from the first tick of run() until the tick on
 *    which allHalted() becomes true (inclusive);
 *  - when refPhaseInert() is true, a refPhase() would move no data and
 *    touch no visible statistics other than what skipRefPhases(n)
 *    reproduces; the fast path uses this to jump over idle ticks.
 */
class SchedModel
{
  public:
    virtual ~SchedModel() = default;

    virtual unsigned numDomains() const = 0;
    virtual const ClockDomain &domainClock(unsigned d) const = 0;
    virtual bool domainHalted(unsigned d) const = 0;
    virtual bool allHalted() const = 0;

    /** One divided-clock edge of domain @p d. */
    virtual void domainEdge(unsigned d) = 0;

    /** One reference-clock phase (bus resolution + DOU step). */
    virtual void refPhase() = 0;

    /** True if the next refPhase() is guaranteed to move nothing. */
    virtual bool refPhaseInert() const = 0;

    /** Fast-forward @p n inert reference phases in one call. */
    virtual void skipRefPhases(Tick n) = 0;
};

/** Why Scheduler::run() returned. */
enum class SchedStop
{
    AllHalted, //!< the model reported allHalted()
    TickLimit, //!< the tick budget ran out
    Idle,      //!< nothing left to schedule but not halted
};

class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /**
     * Drive @p model until it halts or @p max_ticks reference cycles
     * elapse. May be called repeatedly; time accumulates and pending
     * work carries across calls, so run(1) in a loop is equivalent to
     * one large run() (robustness_test relies on this).
     */
    virtual SchedStop run(SchedModel &model, Tick max_ticks) = 0;

    virtual Tick curTick() const = 0;

    virtual SchedulerKind kind() const = 0;

    const char *name() const { return schedulerName(kind()); }
};

/** Construct a scheduler backend. */
std::unique_ptr<Scheduler> makeScheduler(SchedulerKind kind);

} // namespace synchro

#endif // SYNC_SIM_SCHEDULER_HH
