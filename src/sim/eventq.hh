/**
 * @file
 * A deterministic discrete-event queue in the gem5 style.
 *
 * Events scheduled for the same tick are serviced in (priority,
 * insertion-order) order, so simulations are bit-reproducible. The
 * queue owns nothing: Event lifetime is the caller's problem (the
 * architecture model keeps its events as members).
 */

#ifndef SYNC_SIM_EVENTQ_HH
#define SYNC_SIM_EVENTQ_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace synchro
{

class EventQueue;

/** Schedulable callback with a stable priority. */
class Event
{
  public:
    /**
     * Lower value runs first within a tick. The defaults order one
     * simulated cycle: clock-edge producers run before bus movement,
     * which runs before consumers.
     */
    enum Priority : int
    {
        ClockEdgePri = 0,
        BusPri = 10,
        ConsumePri = 20,
        DefaultPri = 50,
    };

    explicit Event(std::string name, int priority = DefaultPri)
        : name_(std::move(name)), priority_(priority)
    {}

    virtual ~Event() = default;

    /** Body executed when the event fires. */
    virtual void process() = 0;

    const std::string &name() const { return name_; }
    int priority() const { return priority_; }
    bool scheduled() const { return scheduled_; }
    Tick when() const { return when_; }

  private:
    friend class EventQueue;

    std::string name_;
    int priority_;
    bool scheduled_ = false;
    Tick when_ = 0;
    uint64_t seq_ = 0; // insertion order for same-tick determinism
};

/** Convenience Event wrapping a std::function. */
class LambdaEvent : public Event
{
  public:
    LambdaEvent(std::string name, std::function<void()> fn,
                int priority = DefaultPri)
        : Event(std::move(name), priority), fn_(std::move(fn))
    {}

    void process() override { fn_(); }

  private:
    std::function<void()> fn_;
};

class EventQueue
{
  public:
    /** Schedule @p ev at absolute tick @p when (>= curTick). */
    void schedule(Event *ev, Tick when);

    /** Remove a pending event. No-op if not scheduled. */
    void deschedule(Event *ev);

    /** Service the single earliest event; returns it (or nullptr). */
    Event *serviceOne();

    /**
     * Run until the queue is empty or curTick would exceed @p limit.
     * Returns the number of events serviced.
     */
    uint64_t run(Tick limit = MaxTick);

    Tick curTick() const { return cur_tick_; }
    bool empty() const { return heap_.empty(); }
    size_t size() const { return heap_.size(); }

  private:
    struct Entry
    {
        Tick when;
        int priority;
        uint64_t seq;
        Event *ev;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick cur_tick_ = 0;
    uint64_t next_seq_ = 0;
};

} // namespace synchro

#endif // SYNC_SIM_EVENTQ_HH
