/**
 * @file
 * FleetExecutor — the streaming serving layer over SimSession's
 * batch facade.
 *
 * SimSession::runAll() is a barrier: stage N chips, run them all,
 * harvest. A basestation does not work like that — hundreds of
 * per-user chip streams (DDC channels, 802.11a receivers) each
 * receive an open-ended sequence of work items (sample blocks, OFDM
 * symbols), and new streams arrive while old ones are still
 * draining. FleetExecutor serves that shape:
 *
 *  - a *workload* packages an app's plan/program hooks once
 *    (FleetWorkload; apps/ provides fleetDdc / fleetWifi /
 *    fleetStereo / fleetMotion mirroring the explorableX pattern),
 *  - a *stream* is one user: one chip, fed a sequence of work items.
 *    Its chip is NOT rebuilt per stream — the workload's template
 *    chip (built, programmed and verifier-gated exactly once) is
 *    deep-copied via arch::Chip::clone(), so admission skips
 *    codegen, assembly, decode and program load entirely,
 *  - a persistent worker pool serves ready streams; each worker owns
 *    a deque of streams and *steals* from the others when its own
 *    runs dry, so one heavy stream cannot idle the pool. A stream is
 *    held by at most one worker at a time, and every item restarts
 *    its chip from tick 0, so per-stream results are bit-identical
 *    to running each item alone on a fresh chip — no matter how many
 *    workers serve the fleet or who stole what,
 *  - statistics aggregate into per-worker shards (one counter map
 *    per worker, touched only by its owner) merged only at
 *    drain() — no shared counters, no locks on the serving path.
 *
 * drain() blocks until every admitted item has been served and
 * returns a FleetReport whose totals reuse the session vocabulary
 * (SessionStats: per-exit counts, tick sums, merged counters).
 */

#ifndef SYNC_SIM_FLEET_HH
#define SYNC_SIM_FLEET_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "arch/chip.hh"
#include "sim/session.hh"

namespace synchro::sim
{

/**
 * Mix a work-item index into a workload's base RNG seed (splitmix64
 * finalizer) so every (stream, item) gets decorrelated input data
 * that is still a pure function of (base seed, item) — the property
 * the solo-vs-fleet bit-exactness tests rely on.
 */
inline uint32_t
fleetItemSeed(uint32_t base, uint64_t item)
{
    uint64_t z =
        (uint64_t(base) << 32) ^ (item + 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return uint32_t(z ^ (z >> 31));
}

/**
 * An app packaged for fleet serving — the plan/program hooks of one
 * mapped application, seed-parameterized per work item. All four
 * closures must be pure w.r.t. shared state: workers invoke feed /
 * read_output / golden concurrently for different streams.
 */
struct FleetWorkload
{
    /** Short name for diagnostics and reports. */
    std::string name;

    /** Tick budget per work item (a solo run's budget). */
    Tick tick_limit = 0;

    /**
     * The COLD path: plan-derived chip construction end to end —
     * lower (through the verifier gate), build the chip, load the
     * program. Runs once per workload to build the template; the
     * benches also time it against Chip::clone() for the
     * warm-start-speedup headline.
     */
    std::function<std::unique_ptr<arch::Chip>(SchedulerKind)> build;

    /**
     * Prepare @p chip for work item @p item: Chip::restart(), clear
     * the programmed tiles' SRAM, and rewrite the item-seeded input
     * images — after which the chip must be bit-identical to a fresh
     * build fed the same item.
     */
    std::function<void(arch::Chip &, uint64_t item)> feed;

    /** The item's output, read back from a finished chip, as bytes. */
    std::function<std::vector<uint8_t>(arch::Chip &)> read_output;

    /** The item's golden reference (dsp:: chain), as bytes. */
    std::function<std::vector<uint8_t>(uint64_t item)> golden;

    /**
     * When non-zero, each item is served as repeated
     * Chip::run(run_chunk) slices instead of one run(tick_limit)
     * call, with on_slice invoked at every pause — the DVFS
     * governor's grid-period sampling hook (power/dvfs.hh). Slicing
     * never changes results: every backend resumes pending work
     * across run() calls bit-identically.
     */
    Tick run_chunk = 0;

    /** Called after each slice with the item and the tick reached.
     *  Must tolerate concurrent calls for different streams. */
    std::function<void(arch::Chip &, uint64_t item, Tick now)>
        on_slice;
};

struct FleetConfig
{
    /** Worker threads; 0 = hardware concurrency. */
    unsigned workers = 0;

    /** Backend every stream's chip runs on. */
    SchedulerKind scheduler = defaultSchedulerKind();

    /** Check every item's output against the workload golden. */
    bool verify = true;

    /** Retain every item's output bytes in the stream results. */
    bool keep_outputs = false;
};

/** What one stream's service produced. */
struct FleetStreamResult
{
    unsigned workload = 0;
    uint64_t item_base = 0; //!< first work-item index
    uint64_t items = 0;     //!< items admitted
    uint64_t items_done = 0;
    uint64_t ticks = 0;      //!< summed over the stream's items
    uint64_t mismatches = 0; //!< golden-verify failures
    std::string first_failure; //!< "" if every item served clean
    /** Per-item output bytes (FleetConfig::keep_outputs). */
    std::vector<std::vector<uint8_t>> outputs;
};

/**
 * Everything the fleet has served, shards merged. Every field is
 * CUMULATIVE SINCE THE EXECUTOR WAS CONSTRUCTED: a second drain()
 * re-reports all earlier streams, items, steals, clones, counters
 * and wall time plus whatever was admitted since. Callers producing
 * periodic reports must diff successive FleetReports themselves.
 */
struct FleetReport
{
    uint64_t streams = 0;
    uint64_t items = 0; //!< chip runs served (one per work item)

    /**
     * Work items never served because a hook threw mid-stream and
     * the rest of that stream was abandoned (the failing item itself
     * counts under items). Always 0 when all_verified.
     */
    uint64_t items_abandoned = 0;
    double wall_seconds = 0; //!< excludes fully-idle gaps

    /** Work items (= chip runs) served per wall second. */
    double chips_per_sec = 0;

    /** Aggregate simulated ticks per wall second, whole fleet. */
    double ticks_per_sec = 0;

    bool all_verified = true; //!< no mismatch, no failed run
    uint64_t steals = 0;      //!< streams taken from another worker
    uint64_t clones = 0;      //!< template clones (one per stream)

    /**
     * The session-vocabulary totals: chips = items served, per-exit
     * counts, tick sums, and the per-worker counter shards merged by
     * dotted name.
     */
    SessionStats totals;

    /** Per-stream detail, in admission order. */
    std::vector<FleetStreamResult> stream_results;

    /** Items served by each worker (work-stealing visibility). */
    std::vector<uint64_t> items_by_worker;
};

class FleetExecutor
{
  public:
    explicit FleetExecutor(FleetConfig cfg = {});

    /** Stops the pool; streams not yet drained are abandoned. */
    ~FleetExecutor();

    FleetExecutor(const FleetExecutor &) = delete;
    FleetExecutor &operator=(const FleetExecutor &) = delete;

    /**
     * Register a workload: builds (and times) its template chip on
     * the calling thread via wl.build — the one cold build every
     * stream's clone warm-starts from. Returns the workload id.
     * Safe while earlier workloads are being served: storage is
     * reallocation-stable, so references handed out by workload() /
     * templateChip() and the pointers serving workers hold stay
     * valid.
     */
    unsigned addWorkload(FleetWorkload wl);

    const FleetWorkload &workload(unsigned id) const;

    /** Wall seconds the workload's cold template build took. */
    double templateBuildSeconds(unsigned id) const;

    /** The programmed template chip (for clone timing / tests). */
    const arch::Chip &templateChip(unsigned id) const;

    /**
     * Admit one stream of @p items work items (indices item_base ..
     * item_base+items-1) of @p workload — the streaming analogue of
     * SimSession::admit. Serving starts immediately on the worker
     * pool; admission is safe while earlier streams are still being
     * served. Returns the stream id.
     */
    unsigned admitStream(unsigned workload, uint64_t items,
                         uint64_t item_base = 0);

    /**
     * Block until every admitted item has been served, then merge
     * the per-worker shards and return the report. Failures (a chip
     * that did not drain, a golden mismatch, an exception out of a
     * closure) are recorded per stream — all_verified false and
     * first_failure set — not thrown; a throwing stream's remaining
     * items are abandoned (counted in items_abandoned) so the drain
     * still completes. May be called repeatedly; every call reports
     * cumulative totals since construction (see FleetReport), not
     * the delta since the previous drain.
     */
    FleetReport drain();

    unsigned effectiveWorkers() const;

  private:
    struct Stream
    {
        unsigned id = 0;
        unsigned workload = 0;
        /**
         * Captured under mu_ at admission so workers never index
         * workloads_/templates_ with the lock released (addWorkload
         * may grow them concurrently). Both stay valid for the
         * executor's lifetime: workloads_ is a deque (push_back
         * never moves existing elements) and the template chip is a
         * heap object owned by templates_.
         */
        const FleetWorkload *wl = nullptr;
        const arch::Chip *tmpl = nullptr;
        uint64_t next_item = 0; //!< next index to serve (absolute)
        uint64_t last_item = 0; //!< one past the final index
        std::unique_ptr<arch::Chip> chip; //!< live while serving
        FleetStreamResult res;
    };

    /** One worker's deque plus its private stat shard. */
    struct Worker
    {
        std::deque<Stream *> q;
        std::map<std::string, uint64_t> counters;
        uint64_t items = 0;
        uint64_t clones = 0; //!< in the shard: bumped unlocked
        uint64_t ticks = 0;
        uint64_t halted = 0;
        uint64_t tick_limited = 0;
        uint64_t deadlocked = 0;
        Tick max_ticks_reached = 0;
    };

    void workerLoop(unsigned w);
    Stream *takeStream(unsigned w, bool &stolen);
    /**
     * Serve the stream's next item (lock released). Returns how many
     * of the stream's items this pickup abandoned unserved — 0
     * normally; the rest of the stream when a hook threw and the
     * stream was given up. The caller credits them to the fleet's
     * accounting under mu_, or drain() would wait forever for items
     * no worker will ever pick up.
     */
    uint64_t serveOneItem(Stream &s, Worker &shard);
    void finishStream(Stream &s, Worker &shard);

    FleetConfig cfg_;
    /** Deque, not vector: Stream::wl points into it and addWorkload
     * may push_back while earlier workloads are being served. */
    std::deque<FleetWorkload> workloads_;
    std::vector<std::unique_ptr<arch::Chip>> templates_;
    std::vector<double> template_secs_;

    mutable std::mutex mu_;
    std::condition_variable work_cv_;
    std::condition_variable idle_cv_;
    std::vector<std::thread> pool_;
    std::vector<Worker> workers_;
    std::vector<std::unique_ptr<Stream>> streams_;
    uint64_t items_admitted_ = 0;
    uint64_t items_served_ = 0;
    uint64_t items_abandoned_ = 0; //!< skipped after a hook threw
    uint64_t steals_ = 0;
    unsigned busy_ = 0;
    bool stop_ = false;
    std::chrono::steady_clock::time_point serve_start_;
    bool epoch_open_ = false; //!< serving epoch since last idle
    double served_wall_seconds_ = 0; //!< accumulated across drains
};

} // namespace synchro::sim

#endif // SYNC_SIM_FLEET_HH
