/**
 * @file
 * Bursty / variable-rate traffic scenarios for the online DVFS
 * governor (ROADMAP item 4).
 *
 * The paper's plans are static: every mapping targets one arrival
 * rate, and any slack under a slower real-world stream is burned as
 * active idle at the planned clock. A TrafficSpec describes the
 * stream shapes that expose that waste — rate steps (phases at a
 * fraction of the mapped rate), idle bursts (gaps with no arrivals
 * at all), and jittered arrivals (per-item window wobble) — and
 * TrafficScenario materializes it into a deterministic, seeded event
 * list that is a pure function of the spec.
 *
 * Everything is expressed app-agnostically in units of the *nominal
 * item window* — the wall-clock time one work item represents at the
 * mapped rate (iterations_per_item / iterations_per_sec). An event
 * with rate_scale 0.25 arrives with a window four nominal windows
 * long; an idle event contributes `windows` nominal windows of wall
 * time with no work at all. Consumers (the governed runners, the
 * fleet adapter, bench_dvfs) multiply by their own nominal window to
 * get seconds, so one scenario drives all four mapped apps.
 */

#ifndef SYNC_SIM_TRAFFIC_HH
#define SYNC_SIM_TRAFFIC_HH

#include <cstdint>
#include <string>
#include <vector>

namespace synchro::sim
{

/** One constant-rate stretch of a traffic scenario. */
struct TrafficPhase
{
    /** Arrival rate as a fraction of the mapped rate (0 < s <= 1). */
    double rate_scale = 1.0;

    /** Work items arriving during the phase. */
    unsigned items = 0;

    /** Idle burst after the phase, in nominal item windows. */
    double idle_windows_after = 0;
};

/** A seeded, deterministic traffic shape. */
struct TrafficSpec
{
    uint32_t seed = 1;

    /** Max fractional per-item window jitter (uniform in ±jitter). */
    double jitter = 0.1;

    std::vector<TrafficPhase> phases;

    /**
     * The canonical bursty shape the DVFS benches and tests use:
     * a full-rate burst, an idle gap, a low-rate trickle, a
     * mid-rate step, and a final full-rate burst — every governor
     * stimulus (step up, step down, idle, jitter) in one stream.
     */
    static TrafficSpec bursty(uint32_t seed,
                              unsigned items_per_phase = 4);

    /** A single constant-rate phase (no idle, for steady tests). */
    static TrafficSpec steady(uint32_t seed, double rate_scale,
                              unsigned items, double jitter = 0.0);
};

/** One arrival (or idle gap) of a materialized scenario. */
struct TrafficEvent
{
    /** Work-item index (feeds sim::fleetItemSeed); 0 when idle. */
    uint64_t item = 0;

    /** An idle burst: no work, just `windows` of wall time. */
    bool idle = false;

    /** Declared arrival-rate fraction of the phase (0 when idle). */
    double rate_scale = 1.0;

    /**
     * Wall duration until the next event, in nominal item windows:
     * 1/rate_scale jittered for an arrival, the configured gap for
     * an idle burst.
     */
    double windows = 1.0;
};

/**
 * A TrafficSpec materialized into its event list — deterministic:
 * the same spec always yields the same events, on every backend and
 * worker count (the determinism the governor tests rely on).
 */
class TrafficScenario
{
  public:
    explicit TrafficScenario(const TrafficSpec &spec);

    const TrafficSpec &spec() const { return spec_; }
    const std::vector<TrafficEvent> &events() const { return events_; }

    /** Work items in the scenario (idle events excluded). */
    uint64_t workItems() const { return work_items_; }

    /** Total duration, in nominal item windows. */
    double totalWindows() const { return total_windows_; }

    /** One-line shape summary for reports. */
    std::string describe() const;

  private:
    TrafficSpec spec_;
    std::vector<TrafficEvent> events_;
    uint64_t work_items_ = 0;
    double total_windows_ = 0;
};

} // namespace synchro::sim

#endif // SYNC_SIM_TRAFFIC_HH
