#include "sim/traffic.hh"

#include "common/log.hh"
#include "common/rng.hh"

namespace synchro::sim
{

TrafficSpec
TrafficSpec::bursty(uint32_t seed, unsigned items_per_phase)
{
    TrafficSpec spec;
    spec.seed = seed;
    spec.jitter = 0.1;
    spec.phases = {
        {1.0, items_per_phase, 2.0},  // full-rate burst, then a gap
        {0.25, items_per_phase, 0.0}, // low-rate trickle
        {0.5, items_per_phase, 3.0},  // mid-rate step, longer gap
        {1.0, items_per_phase, 0.0},  // full-rate burst again
    };
    return spec;
}

TrafficSpec
TrafficSpec::steady(uint32_t seed, double rate_scale, unsigned items,
                    double jitter)
{
    TrafficSpec spec;
    spec.seed = seed;
    spec.jitter = jitter;
    spec.phases = {{rate_scale, items, 0.0}};
    return spec;
}

TrafficScenario::TrafficScenario(const TrafficSpec &spec)
    : spec_(spec)
{
    if (spec.phases.empty())
        fatal("traffic scenario needs at least one phase");
    if (spec.jitter < 0 || spec.jitter >= 1.0)
        fatal("traffic jitter %.2f must be in [0, 1)", spec.jitter);

    Rng rng(uint64_t(spec.seed) * 0x9e3779b97f4a7c15ULL + 1);
    uint64_t item = 0;
    for (const TrafficPhase &ph : spec.phases) {
        if (ph.rate_scale <= 0 || ph.rate_scale > 1.0) {
            fatal("traffic phase rate scale %.3f must be in (0, 1]",
                  ph.rate_scale);
        }
        for (unsigned i = 0; i < ph.items; ++i) {
            TrafficEvent ev;
            ev.item = item++;
            ev.rate_scale = ph.rate_scale;
            double wobble =
                spec.jitter * (2.0 * rng.uniform() - 1.0);
            ev.windows = (1.0 / ph.rate_scale) * (1.0 + wobble);
            total_windows_ += ev.windows;
            events_.push_back(ev);
        }
        if (ph.idle_windows_after > 0) {
            TrafficEvent gap;
            gap.idle = true;
            gap.rate_scale = 0;
            gap.windows = ph.idle_windows_after;
            total_windows_ += gap.windows;
            events_.push_back(gap);
        }
    }
    work_items_ = item;
}

std::string
TrafficScenario::describe() const
{
    std::string out = strprintf("%llu items / %.1f windows:",
                                (unsigned long long)work_items_,
                                total_windows_);
    for (const TrafficPhase &ph : spec_.phases) {
        out += strprintf(" x%.2f*%u", ph.rate_scale, ph.items);
        if (ph.idle_windows_after > 0)
            out += strprintf(" idle%.1f", ph.idle_windows_after);
    }
    return out;
}

} // namespace synchro::sim
