/**
 * @file
 * SimSession — a facade over a fleet of independent Synchroscalar
 * chips.
 *
 * The chip model is single-threaded and deterministic; the scaling
 * unit for batch workload sweeps (parameter studies, mapping
 * searches) and request-serving traffic is therefore *many chips*,
 * each an isolated simulation. SimSession runs N Chip instances
 * across a worker pool (each chip always executes on exactly one
 * thread, so per-chip results are bit-identical no matter how many
 * workers are used), and aggregates RunResults and statistics.
 *
 * Batches may be fully *heterogeneous*: chips built by the session
 * from a ChipConfig (addChip) and externally constructed,
 * pre-programmed chips adopted or merely attached (adoptChip /
 * attachChip) mix freely, each with its own configuration, programs
 * and optional per-chip tick budget — the substrate the mapped
 * design-space explorer (mapping/explorer.hh) batches candidate
 * plans on.
 *
 * Typical use:
 *
 *   sim::SimSession session;
 *   for (auto &cfg : configs) {
 *       unsigned id = session.addChip(cfg);
 *       session.chip(id).column(0).controller().loadProgram(prog);
 *   }
 *   auto results = session.runAll(1'000'000);
 *   auto totals  = session.aggregate();
 */

#ifndef SYNC_SIM_SESSION_HH
#define SYNC_SIM_SESSION_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/chip.hh"

namespace synchro::sim
{

struct SessionConfig
{
    /** Worker threads for runAll(); 0 = hardware concurrency. */
    unsigned threads = 0;
};

/** Cross-chip aggregate of a finished runAll(). */
struct SessionStats
{
    uint64_t chips = 0;
    uint64_t halted = 0;       //!< chips that reached AllHalted
    uint64_t tick_limited = 0; //!< chips that hit the tick budget
    uint64_t deadlocked = 0;
    Tick max_ticks_reached = 0; //!< slowest chip's final tick
    uint64_t total_ticks = 0;   //!< sum of final ticks
    /** Chip counters summed across the fleet, by dotted name. */
    std::map<std::string, uint64_t> counters;
};

class SimSession
{
  public:
    explicit SimSession(SessionConfig cfg = {});
    ~SimSession();

    SimSession(const SimSession &) = delete;
    SimSession &operator=(const SimSession &) = delete;

    /** Add a chip; returns its index. Not thread-safe vs runAll(). */
    unsigned addChip(const arch::ChipConfig &cfg);

    /**
     * Adopt an externally built (and typically already programmed)
     * chip — the heterogeneous-batch entry point. @p tick_limit, when
     * nonzero, overrides runAll()'s budget for this chip only.
     */
    unsigned adoptChip(std::unique_ptr<arch::Chip> chip,
                       Tick tick_limit = 0);

    /**
     * Adopt a chip and re-home it onto @p scheduler first — lets a
     * batch mix backends per chip regardless of what each builder
     * baked into its ChipConfig. The chip must not have run yet
     * (Chip::setSchedulerKind).
     */
    unsigned adoptChip(std::unique_ptr<arch::Chip> chip,
                       Tick tick_limit, SchedulerKind scheduler);

    /**
     * Attach a chip the caller keeps ownership of (it must outlive
     * the session, or at least every runAll()). Same per-chip budget
     * semantics as adoptChip().
     */
    unsigned attachChip(arch::Chip &chip, Tick tick_limit = 0);

    /** Attach with a scheduler-backend override; see adoptChip(). */
    unsigned attachChip(arch::Chip &chip, Tick tick_limit,
                        SchedulerKind scheduler);

    /** Per-chip tick budget override (0 = use runAll()'s budget). */
    void setTickLimit(unsigned i, Tick tick_limit);

    unsigned numChips() const { return unsigned(chips_.size()); }

    arch::Chip &chip(unsigned i) { return *chips_.at(i).chip; }
    const arch::Chip &
    chip(unsigned i) const
    {
        return *chips_.at(i).chip;
    }

    /**
     * Run every chip until it halts or its budget — the per-chip
     * tick limit when set, @p max_ticks otherwise — elapses,
     * spreading chips across the worker pool. Returns per-chip
     * results in chip order. May be called repeatedly (chip time
     * accumulates). An error raised inside any chip is rethrown here
     * after all workers drain.
     */
    std::vector<arch::RunResult> runAll(Tick max_ticks = 100'000'000);

    /** Results of the last runAll() (empty before the first). */
    const std::vector<arch::RunResult> &results() const
    {
        return results_;
    }

    /** Aggregate exits, tick totals, and summed chip statistics. */
    SessionStats aggregate() const;

    /** The worker count runAll() will actually use. */
    unsigned effectiveThreads() const;

  private:
    /** One chip of the batch: owned or attached, plus its budget. */
    struct Slot
    {
        arch::Chip *chip = nullptr;
        std::unique_ptr<arch::Chip> owned; //!< null when attached
        Tick tick_limit = 0;               //!< 0 = runAll() budget
    };

    SessionConfig cfg_;
    std::vector<Slot> chips_;
    std::vector<arch::RunResult> results_;
};

} // namespace synchro::sim

#endif // SYNC_SIM_SESSION_HH
