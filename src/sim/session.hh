/**
 * @file
 * SimSession — a facade over a fleet of independent Synchroscalar
 * chips.
 *
 * The chip model is single-threaded and deterministic; the scaling
 * unit for batch workload sweeps (parameter studies, mapping
 * searches) and request-serving traffic is therefore *many chips*,
 * each an isolated simulation. SimSession runs N Chip instances
 * across a worker pool (each chip always executes on exactly one
 * thread, so per-chip results are bit-identical no matter how many
 * workers are used), and aggregates RunResults and statistics.
 *
 * Batches may be fully *heterogeneous*: chips built by the session
 * from a ChipConfig and externally constructed, pre-programmed chips
 * — owned or merely borrowed — mix freely, each with its own
 * configuration, programs, optional per-chip tick budget and
 * optional scheduler-backend override. All of that goes through ONE
 * admission path, admit(ChipSpec&&); the historical addChip /
 * adoptChip / attachChip names survive as thin wrappers over it.
 * This is the substrate the mapped design-space explorer
 * (mapping/explorer.hh) batches candidate plans on and the fleet
 * executor (sim/fleet.hh) builds its streaming layer over.
 *
 * Typical use:
 *
 *   sim::SimSession session;
 *   for (auto &cfg : configs) {
 *       unsigned id = session.admit(sim::ChipSpec(cfg));
 *       session.chip(id).column(0).controller().loadProgram(prog);
 *   }
 *   auto results = session.runAll(1'000'000);
 *   auto totals  = session.aggregate();
 */

#ifndef SYNC_SIM_SESSION_HH
#define SYNC_SIM_SESSION_HH

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "arch/chip.hh"

namespace synchro::sim
{

struct SessionConfig
{
    /** Worker threads for runAll(); 0 = hardware concurrency. */
    unsigned threads = 0;
};

/** Cross-chip aggregate of a finished runAll(). */
struct SessionStats
{
    uint64_t chips = 0;
    uint64_t halted = 0;       //!< chips that reached AllHalted
    uint64_t tick_limited = 0; //!< chips that hit the tick budget
    uint64_t deadlocked = 0;
    Tick max_ticks_reached = 0; //!< slowest chip's final tick
    uint64_t total_ticks = 0;   //!< sum of final ticks
    /** Chip counters summed across the fleet, by dotted name. */
    std::map<std::string, uint64_t> counters;
};

/**
 * One chip admission, described declaratively: where the chip comes
 * from (a config the session builds from, a prebuilt chip whose
 * ownership transfers, or a borrowed caller-owned chip) plus the
 * optional per-chip knobs, chained builder-style:
 *
 *   session.admit(ChipSpec(cfg));
 *   session.admit(ChipSpec(std::move(chip)).tickLimit(50'000));
 *   session.admit(ChipSpec(shared_chip)
 *                     .backend(SchedulerKind::Compiled));
 *
 * A backend override re-homes the chip via Chip::setSchedulerKind at
 * admission, so the chip must not have run yet. A borrowed chip must
 * outlive the session (or at least every runAll()).
 */
class ChipSpec
{
  public:
    /** Build a session-owned chip from @p cfg at admission. */
    explicit ChipSpec(const arch::ChipConfig &cfg) : cfg_(cfg) {}

    /** Adopt @p chip (ownership transfers to the session). */
    explicit ChipSpec(std::unique_ptr<arch::Chip> chip)
        : owned_(std::move(chip))
    {}

    /** Borrow @p chip (the caller keeps ownership). */
    explicit ChipSpec(arch::Chip &chip) : borrowed_(&chip) {}

    /** Per-chip tick budget (0 = use runAll()'s budget). */
    ChipSpec &
    tickLimit(Tick t) &
    {
        tick_limit_ = t;
        return *this;
    }
    ChipSpec &&
    tickLimit(Tick t) &&
    {
        tick_limit_ = t;
        return std::move(*this);
    }

    /** Scheduler-backend override applied at admission. */
    ChipSpec &
    backend(SchedulerKind kind) &
    {
        backend_ = kind;
        has_backend_ = true;
        return *this;
    }
    ChipSpec &&
    backend(SchedulerKind kind) &&
    {
        backend_ = kind;
        has_backend_ = true;
        return std::move(*this);
    }

  private:
    friend class SimSession;

    std::optional<arch::ChipConfig> cfg_;
    std::unique_ptr<arch::Chip> owned_;
    arch::Chip *borrowed_ = nullptr;
    Tick tick_limit_ = 0;
    SchedulerKind backend_{};
    bool has_backend_ = false;
};

class SimSession
{
  public:
    explicit SimSession(SessionConfig cfg = {});
    ~SimSession();

    SimSession(const SimSession &) = delete;
    SimSession &operator=(const SimSession &) = delete;

    /**
     * THE admission path: every chip — session-built, adopted or
     * borrowed, with or without per-chip budget and backend override
     * — enters the batch through here. Returns the chip's index.
     * Not thread-safe vs runAll().
     */
    unsigned admit(ChipSpec &&spec);

    /** admit(ChipSpec(cfg)) — compatibility wrapper. */
    unsigned addChip(const arch::ChipConfig &cfg);

    /** admit(ChipSpec(move(chip)).tickLimit(t)) — wrapper. */
    unsigned adoptChip(std::unique_ptr<arch::Chip> chip,
                       Tick tick_limit = 0);

    /** Adopt with a backend override — wrapper. */
    unsigned adoptChip(std::unique_ptr<arch::Chip> chip,
                       Tick tick_limit, SchedulerKind scheduler);

    /** admit(ChipSpec(chip).tickLimit(t)) — wrapper. */
    unsigned attachChip(arch::Chip &chip, Tick tick_limit = 0);

    /** Borrow with a backend override — wrapper. */
    unsigned attachChip(arch::Chip &chip, Tick tick_limit,
                        SchedulerKind scheduler);

    /** Per-chip tick budget override (0 = use runAll()'s budget). */
    void setTickLimit(unsigned i, Tick tick_limit);

    unsigned numChips() const { return unsigned(chips_.size()); }

    arch::Chip &chip(unsigned i) { return *chips_.at(i).chip; }
    const arch::Chip &
    chip(unsigned i) const
    {
        return *chips_.at(i).chip;
    }

    /**
     * Run every chip until it halts or its budget — the per-chip
     * tick limit when set, @p max_ticks otherwise — elapses,
     * spreading chips across the worker pool. With a single chip or
     * an effective pool of one, no threads are spawned at all: the
     * chips run inline on the caller's thread. Returns per-chip
     * results in chip order. May be called repeatedly (chip time
     * accumulates). An error raised inside any chip is rethrown here
     * after all workers drain.
     */
    std::vector<arch::RunResult> runAll(Tick max_ticks = 100'000'000);

    /** Results of the last runAll() (empty before the first). */
    const std::vector<arch::RunResult> &results() const
    {
        return results_;
    }

    /** Aggregate exits, tick totals, and summed chip statistics. */
    SessionStats aggregate() const;

    /** The worker count runAll() will actually use. */
    unsigned effectiveThreads() const;

  private:
    /** One chip of the batch: owned or attached, plus its budget. */
    struct Slot
    {
        arch::Chip *chip = nullptr;
        std::unique_ptr<arch::Chip> owned; //!< null when attached
        Tick tick_limit = 0;               //!< 0 = runAll() budget
    };

    SessionConfig cfg_;
    std::vector<Slot> chips_;
    std::vector<arch::RunResult> results_;
};

} // namespace synchro::sim

#endif // SYNC_SIM_SESSION_HH
