/**
 * @file
 * Fundamental simulation time types.
 *
 * A Tick is one period of the chip's reference clock — the maximum
 * (bus/DOU) frequency. Column clocks are integer dividers of the
 * reference, which keeps every domain rationally related exactly as
 * the Synchroscalar paper requires (Section 6: "the restriction of
 * using only rationally related frequencies between different
 * columns ... avoids the use of asynchronous FIFOs").
 */

#ifndef SYNC_SIM_TYPES_HH
#define SYNC_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace synchro
{

using Tick = uint64_t;
using Cycle = uint64_t;

constexpr Tick MaxTick = std::numeric_limits<Tick>::max();

} // namespace synchro

#endif // SYNC_SIM_TYPES_HH
