#include "sim/eventq.hh"

#include "common/log.hh"

namespace synchro
{

void
EventQueue::schedule(Event *ev, Tick when)
{
    sync_assert(ev != nullptr, "null event");
    if (ev->scheduled_)
        panic("event '%s' already scheduled", ev->name().c_str());
    if (when < cur_tick_) {
        panic("event '%s' scheduled in the past (%llu < %llu)",
              ev->name().c_str(), (unsigned long long)when,
              (unsigned long long)cur_tick_);
    }
    ev->scheduled_ = true;
    ev->when_ = when;
    ev->seq_ = next_seq_++;
    heap_.push(Entry{when, ev->priority_, ev->seq_, ev});
}

void
EventQueue::deschedule(Event *ev)
{
    // Lazy deletion: mark unscheduled; stale heap entries are skipped.
    if (ev && ev->scheduled_)
        ev->scheduled_ = false;
}

Event *
EventQueue::serviceOne()
{
    while (!heap_.empty()) {
        Entry e = heap_.top();
        heap_.pop();
        // Skip entries invalidated by deschedule() or reschedule.
        if (!e.ev->scheduled_ || e.ev->seq_ != e.seq)
            continue;
        cur_tick_ = e.when;
        e.ev->scheduled_ = false;
        e.ev->process();
        return e.ev;
    }
    return nullptr;
}

uint64_t
EventQueue::run(Tick limit)
{
    uint64_t serviced = 0;
    while (!heap_.empty()) {
        const Entry &top = heap_.top();
        if (!top.ev->scheduled_ || top.ev->seq_ != top.seq) {
            heap_.pop();
            continue;
        }
        if (top.when > limit)
            break;
        serviceOne();
        ++serviced;
    }
    return serviced;
}

} // namespace synchro
