#include "isa/inst.hh"

#include "common/log.hh"

namespace synchro::isa
{

namespace
{

// Indexed by Opcode value; order must match the enum.
const OpInfo op_table[] = {
    {"nop",    Format::F0,    true,  false, false}, // NOP
    {"halt",   Format::F0,    true,  false, false}, // HALT

    {"add",    Format::F3R,   false, false, false},
    {"sub",    Format::F3R,   false, false, false},
    {"and",    Format::F3R,   false, false, false},
    {"or",     Format::F3R,   false, false, false},
    {"xor",    Format::F3R,   false, false, false},
    {"min",    Format::F3R,   false, false, false},
    {"max",    Format::F3R,   false, false, false},
    {"lsl",    Format::F3R,   false, false, false},
    {"lsr",    Format::F3R,   false, false, false},
    {"asr",    Format::F3R,   false, false, false},
    {"mul",    Format::F3R,   false, false, false},
    {"sel",    Format::F3R,   false, false, false},

    {"neg",    Format::F2R,   false, false, false},
    {"not",    Format::F2R,   false, false, false},
    {"abs",    Format::F2R,   false, false, false},
    {"mov",    Format::F2R,   false, false, false},

    {"addi",   Format::FRI,   false, false, false},
    {"lsli",   Format::FSHI,  false, false, false},
    {"lsri",   Format::FSHI,  false, false, false},
    {"asri",   Format::FSHI,  false, false, false},

    {"add16",  Format::F3R,   false, false, false},
    {"sub16",  Format::F3R,   false, false, false},

    {"mac",    Format::FMAC,  false, false, false},
    {"msu",    Format::FMAC,  false, false, false},
    {"saa",    Format::FMAC,  false, false, false},
    {"aclr",   Format::FACC,  false, false, false},
    {"aext",   Format::FAEXT, false, false, false},

    {"movi",   Format::FRI,   false, false, false},
    {"movih",  Format::FRI,   false, false, false},
    {"movpi",  Format::FRI,   false, false, false},
    {"movp",   Format::F2R,   false, false, false},
    {"movrp",  Format::F2R,   false, false, false},
    {"paddi",  Format::FRI,   false, false, false},
    {"tid",    Format::F1R,   false, false, false},

    {"ld.w",   Format::FMEM,  false, true,  false},
    {"ld.h",   Format::FMEM,  false, true,  false},
    {"ld.hu",  Format::FMEM,  false, true,  false},
    {"ld.b",   Format::FMEM,  false, true,  false},
    {"ld.bu",  Format::FMEM,  false, true,  false},
    {"st.w",   Format::FMEM,  false, false, true},
    {"st.h",   Format::FMEM,  false, false, true},
    {"st.b",   Format::FMEM,  false, false, true},

    {"cmpeq",  Format::F2R,   false, false, false},
    {"cmplt",  Format::F2R,   false, false, false},
    {"cmple",  Format::F2R,   false, false, false},
    {"cmpltu", Format::F2R,   false, false, false},

    {"jump",   Format::FJ,    true,  false, false},
    {"jcc",    Format::FJ,    true,  false, false},
    {"jncc",   Format::FJ,    true,  false, false},
    {"lsetup", Format::FLOOP, true,  false, false},

    {"cwr",    Format::F1R,   false, false, false},
    {"crd",    Format::F1R,   false, false, false},
};

static_assert(sizeof(op_table) / sizeof(op_table[0]) ==
                  size_t(Opcode::NumOpcodes),
              "op_table out of sync with Opcode enum");

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    sync_assert(op < Opcode::NumOpcodes, "bad opcode %u", unsigned(op));
    return op_table[size_t(op)];
}

const char *
mnemonic(Opcode op)
{
    return opInfo(op).mnemonic;
}

namespace build
{

Inst
nop()
{
    return Inst{};
}

Inst
halt()
{
    Inst i;
    i.op = Opcode::HALT;
    return i;
}

Inst
alu3(Opcode op, unsigned rd, unsigned rs1, unsigned rs2)
{
    Inst i;
    i.op = op;
    i.rd = rd;
    i.rs1 = rs1;
    i.rs2 = rs2;
    return i;
}

Inst
alu2(Opcode op, unsigned rd, unsigned rs)
{
    Inst i;
    i.op = op;
    i.rd = rd;
    i.rs1 = rs;
    return i;
}

Inst
aluImm(Opcode op, unsigned rd, int32_t imm)
{
    Inst i;
    i.op = op;
    i.rd = rd;
    i.imm = imm;
    return i;
}

Inst
shiftImm(Opcode op, unsigned rd, unsigned rs, unsigned imm5)
{
    Inst i;
    i.op = op;
    i.rd = rd;
    i.rs1 = rs;
    i.imm = int32_t(imm5);
    return i;
}

Inst
mac(Opcode op, unsigned acc, unsigned rs1, unsigned rs2, HalfSel h)
{
    Inst i;
    i.op = op;
    i.acc = acc;
    i.rs1 = rs1;
    i.rs2 = rs2;
    i.hsel = h;
    return i;
}

Inst
saa(unsigned acc, unsigned rs1, unsigned rs2)
{
    Inst i;
    i.op = Opcode::SAA;
    i.acc = acc;
    i.rs1 = rs1;
    i.rs2 = rs2;
    return i;
}

Inst
aclr(unsigned acc)
{
    Inst i;
    i.op = Opcode::ACLR;
    i.acc = acc;
    return i;
}

Inst
aext(unsigned rd, unsigned acc, unsigned shift)
{
    Inst i;
    i.op = Opcode::AEXT;
    i.rd = rd;
    i.acc = acc;
    i.imm = int32_t(shift);
    return i;
}

Inst
movi(unsigned rd, int32_t imm16)
{
    return aluImm(Opcode::MOVI, rd, imm16);
}

Inst
movih(unsigned rd, uint16_t imm16)
{
    return aluImm(Opcode::MOVIH, rd, int32_t(imm16));
}

Inst
movpi(unsigned pd, uint16_t imm16)
{
    return aluImm(Opcode::MOVPI, pd, int32_t(imm16));
}

Inst
movp(unsigned pd, unsigned rs)
{
    return alu2(Opcode::MOVP, pd, rs);
}

Inst
movrp(unsigned rd, unsigned ps)
{
    return alu2(Opcode::MOVRP, rd, ps);
}

Inst
paddi(unsigned pd, int32_t imm16)
{
    return aluImm(Opcode::PADDI, pd, imm16);
}

Inst
tid(unsigned rd)
{
    Inst i;
    i.op = Opcode::TID;
    i.rd = rd;
    return i;
}

Inst
load(Opcode op, unsigned rd, unsigned p, MemMode m, int32_t imm)
{
    Inst i;
    i.op = op;
    i.rd = rd;
    i.rs1 = p;
    i.mode = m;
    i.imm = imm;
    return i;
}

Inst
store(Opcode op, unsigned rs, unsigned p, MemMode m, int32_t imm)
{
    Inst i;
    i.op = op;
    i.rd = rs; // stored value travels in the rd field
    i.rs1 = p;
    i.mode = m;
    i.imm = imm;
    return i;
}

Inst
cmp(Opcode op, unsigned rs1, unsigned rs2)
{
    Inst i;
    i.op = op;
    i.rd = rs1; // compares reuse F2R: rd = lhs, rs1 = rhs
    i.rs1 = rs2;
    return i;
}

Inst
jump(uint16_t target)
{
    Inst i;
    i.op = Opcode::JUMP;
    i.imm = target;
    return i;
}

Inst
jcc(uint16_t target)
{
    Inst i;
    i.op = Opcode::JCC;
    i.imm = target;
    return i;
}

Inst
jncc(uint16_t target)
{
    Inst i;
    i.op = Opcode::JNCC;
    i.imm = target;
    return i;
}

Inst
lsetup(unsigned lc, uint16_t end, uint16_t count)
{
    Inst i;
    i.op = Opcode::LSETUP;
    i.lc = lc;
    i.end = end;
    i.imm = count;
    return i;
}

Inst
cwr(unsigned rs, int lane)
{
    Inst i;
    i.op = Opcode::CWR;
    i.rd = rs;
    i.imm = lane + 1; // 0 = untagged
    return i;
}

Inst
crd(unsigned rd, int lane)
{
    Inst i;
    i.op = Opcode::CRD;
    i.rd = rd;
    i.imm = lane + 1; // 0 = untagged
    return i;
}

} // namespace build

} // namespace synchro::isa
