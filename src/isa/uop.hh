/**
 * @file
 * Pre-decoded micro-ops and the decoded-program cache.
 *
 * A Synchroscalar column broadcasts every issued instruction to up to
 * four tiles, so any work done per-instruction at issue time is paid
 * once per slot, every slot. Decoding is static, though: the SIMD
 * controller's program never changes while it runs. This module
 * therefore decodes a Program once into a dense array of MicroOps —
 * operand indices validated, memory sizes and sign-extension shifts
 * resolved, MAC half-selects split into flags — and the tiles execute
 * via one switch on a compact UopKind.
 *
 * Decoded programs are cached per content hash (decodeProgram), so
 * re-loading the same kernel (parameter sweeps, batch sessions,
 * benches) costs a lookup instead of a decode. Decode-time validation
 * also closes a latent UB hole: a hand-built Inst with an
 * out-of-range register index previously indexed tile register files
 * unchecked; now decodeInst() rejects it with fatal() before it can
 * reach a datapath.
 */

#ifndef SYNC_ISA_UOP_HH
#define SYNC_ISA_UOP_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/assembler.hh"
#include "isa/inst.hh"

namespace synchro::isa
{

/**
 * Compact executed-form opcode. Control kinds (executed by the SIMD
 * controller) come first so isControl() is a single compare; memory
 * opcodes collapse into Load/Store with the access size and
 * sign-extension pre-resolved into MicroOp fields.
 */
enum class UopKind : uint8_t
{
    // Controller-executed kinds — keep before FirstCompute.
    Nop = 0,
    Halt,
    Jump,
    Jcc,
    Jncc,
    Lsetup,

    FirstCompute,

    // Three-register ALU
    Add = FirstCompute,
    Sub,
    And,
    Or,
    Xor,
    Min,
    Max,
    Lsl,
    Lsr,
    Asr,
    Mul,
    Sel,

    // Two-register ALU
    Neg,
    Not,
    Abs,
    Mov,

    // Register-immediate ALU
    AddImm,
    LslImm,
    LsrImm,
    AsrImm,

    // Dual-16-bit video ALU
    Add16,
    Sub16,

    // Accumulator / MAC group
    Mac,
    Msu,
    Saa,
    AClr,
    AExt,

    // Moves / immediates
    MovImm,
    MovImmHigh,
    MovPtrImm,
    MovPtr,
    MovFromPtr,
    PtrAddImm,
    TileId,

    // Memory (size/sign pre-resolved in the MicroOp)
    Load,
    Store,

    // Compares
    CmpEq,
    CmpLt,
    CmpLe,
    CmpLtu,

    // Communication buffers
    CommWrite,
    CommRead,

    NumUopKinds
};

/// @name MicroOp::flags bits
/// @{
constexpr uint8_t UopSignExtend = 0x01; //!< Load sign-extends
constexpr uint8_t UopPostMod = 0x02;    //!< post-modify addressing
constexpr uint8_t UopAHigh = 0x04;      //!< MAC rs1 high half
constexpr uint8_t UopBHigh = 0x08;      //!< MAC rs2 high half
/// @}

/**
 * One pre-decoded instruction. All register/accumulator indices are
 * validated in range at decode time, so executors may index register
 * files directly.
 */
struct MicroOp
{
    UopKind kind = UopKind::Nop;
    uint8_t rd = 0;       //!< destination register index
    uint8_t rs1 = 0;      //!< first source / pointer register
    uint8_t rs2 = 0;      //!< second source register
    uint8_t acc = 0;      //!< accumulator index; loop unit for Lsetup
    uint8_t mem_size = 0; //!< memory access bytes (Load/Store)
    uint8_t flags = 0;    //!< UopSignExtend | UopPostMod | ...
    uint16_t end = 0;     //!< loop end address (Lsetup)
    int32_t imm = 0;      //!< immediate / branch target / loop count

    bool isControl() const { return kind < UopKind::FirstCompute; }
};

/**
 * Decode (and validate) a single instruction. fatal() on operand
 * indices outside the architectural register files or on malformed
 * fields — the decode-time bounds check that lets executors skip
 * per-access checks.
 */
MicroOp decodeInst(const Inst &inst);

/**
 * True for micro-ops a compiled backend may execute inside a
 * straight-line block without consulting the per-slot machinery:
 * every broadcast compute kind except the communication buffers
 * (whose hazard checks are time-sensitive), plus the controller-local
 * `nop` (issued without a tile broadcast). Branches, `halt` and
 * `lsetup` stay on the slot-at-a-time path.
 */
inline bool
isBlockStraight(UopKind k)
{
    return k == UopKind::Nop ||
           (k >= UopKind::FirstCompute && k != UopKind::CommRead &&
            k != UopKind::CommWrite);
}

/** A program decoded once for broadcast-side consumption. */
struct DecodedProgram
{
    std::vector<Inst> insts;   //!< original decoded form (disasm)
    std::vector<MicroOp> uops; //!< dense executed form
    uint64_t hash = 0;         //!< content hash (cache key)

    /**
     * Static steady-state block analysis for the Compiled scheduler
     * backend, computed once at decode time (and therefore shared
     * through the decode cache).
     *
     * run_len[pc] is the number of consecutive micro-ops starting at
     * pc that satisfy isBlockStraight() *and* whose interior
     * addresses are not the end address of any `lsetup` in the
     * program — so every advance inside the run is a plain pc+1 and
     * only the final advance needs the zero-overhead-loop check.
     * 0 means pc must go through the per-slot path.
     */
    std::vector<uint16_t> run_len;

    /**
     * Prefix sums over uops[0..i): controller nops, memory ops and
     * MAC/SAA ops. A block executor charges per-tile activity
     * counters for a whole [pc, pc+n) range with two lookups each.
     */
    std::vector<uint32_t> nop_prefix;
    std::vector<uint32_t> mem_prefix;
    std::vector<uint32_t> mac_prefix;

    size_t size() const { return uops.size(); }
};

/// @name Unified register-unit numbering for static dataflow walks
/// One flat index space covering every architecturally named storage
/// unit a micro-op can read or write, so an analysis can track
/// def-before-use with a single bitmask: data registers r0..r7 map to
/// units 0..7, pointer registers p0..p5 to 8..13, accumulators a0/a1
/// to 14/15, and the controller's condition code CC to 16.
/// @{
constexpr unsigned UnitData0 = 0;
constexpr unsigned UnitPtr0 = UnitData0 + NumDataRegs;
constexpr unsigned UnitAcc0 = UnitPtr0 + NumPtrRegs;
constexpr unsigned UnitCc = UnitAcc0 + NumAccums;
constexpr unsigned NumRegUnits = UnitCc + 1;
/// @}

/** Architectural name of a unified register unit ("r3", "p0", ...). */
std::string regUnitName(unsigned unit);

/**
 * The register units one micro-op reads and writes, as bitmasks over
 * the unified numbering above — the dataflow footprint a static
 * verifier walks (mapping/verifier) without re-deriving the decode
 * table's operand semantics. Communication side effects (the buffer
 * pop/push of CommRead/CommWrite) and memory are not register units
 * and are not represented here.
 */
struct UopEffects
{
    uint32_t reads = 0;
    uint32_t writes = 0;
};

UopEffects uopEffects(const MicroOp &u);

/**
 * Decode @p prog, consulting the process-wide cache keyed by content
 * hash (hash collisions are verified against the full instruction
 * stream). Thread-safe. The returned program is immutable and shared
 * by every controller running it.
 */
std::shared_ptr<const DecodedProgram>
decodeProgram(const Program &prog);

/** Observability for the decoded-program cache. */
struct DecodeCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t entries = 0;   //!< decoded programs currently cached
    uint64_t evictions = 0; //!< entries dropped by capacity flushes
};

DecodeCacheStats decodeCacheStats();

/** Drop every cached program (entries -> 0; hit/miss counters kept). */
void clearDecodeCache();

/**
 * Cap the cache at @p n programs (default 1024). When an insert would
 * exceed the cap the cache is flushed — deterministic and good enough
 * for the "many short-lived identical kernels" pattern the cache
 * serves. n == 0 disables caching entirely.
 */
void setDecodeCacheCapacity(uint64_t n);

} // namespace synchro::isa

#endif // SYNC_ISA_UOP_HH
