/**
 * @file
 * Two-pass assembler for SyncBF assembly.
 *
 * Syntax (one instruction per line):
 *
 *   ; comment          # comment          // comment
 *   label:             (alone or prefixing an instruction)
 *   .equ NAME, 42      (symbolic constant)
 *
 *   add  r0, r1, r2
 *   movi r0, -1234         movih r0, 0xbeef
 *   mac  a0, r1, r2, ll    ; a0 += r1.l * r2.l (hsel defaults to ll)
 *   aext r0, a0, 15
 *   ld.w r0, [p0+4]        ; offset addressing, p0 unchanged
 *   ld.w r0, [p0]+4        ; post-modify: p0 += 4 after access
 *   st.h r1, [p2]++        ; post-modify by access size (2 bytes)
 *   ld.b r3, [p1]--        ; post-modify by -1 byte
 *   lsetup lc0, end_lbl, 21  ; body = next insn .. end_lbl-1, 21 times
 *   jcc  target            jump target
 *   cwr  r7                crd r0
 *
 * Immediate operands accept decimal, 0x hex, 0b binary, .equ names,
 * and labels (which resolve to instruction indices).
 */

#ifndef SYNC_ISA_ASSEMBLER_HH
#define SYNC_ISA_ASSEMBLER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/inst.hh"

namespace synchro::isa
{

/** An assembled program: decoded instructions plus the symbol table. */
struct Program
{
    std::vector<Inst> insts;
    std::map<std::string, uint32_t> labels;

    /** Encoded 32-bit words (what would be loaded into insn SRAM). */
    std::vector<uint32_t> words() const;

    size_t size() const { return insts.size(); }

    /** Address of a label; fatal() if undefined. */
    uint32_t label(const std::string &name) const;
};

/**
 * Assemble source text. Errors (unknown mnemonics, bad operands,
 * undefined labels, range violations) raise fatal() with the offending
 * line number.
 */
Program assemble(const std::string &source);

} // namespace synchro::isa

#endif // SYNC_ISA_ASSEMBLER_HH
