#include "isa/disasm.hh"

#include "common/log.hh"

namespace synchro::isa
{

namespace
{

const char *
hselName(HalfSel h)
{
    switch (h) {
      case HalfSel::LL:
        return "ll";
      case HalfSel::LH:
        return "lh";
      case HalfSel::HL:
        return "hl";
      case HalfSel::HH:
        return "hh";
    }
    return "??";
}

} // namespace

std::string
disassemble(const Inst &i)
{
    const char *m = mnemonic(i.op);
    switch (opInfo(i.op).format) {
      case Format::F0:
        return m;
      case Format::F3R:
        return strprintf("%s r%u, r%u, r%u", m, i.rd, i.rs1, i.rs2);
      case Format::F2R:
        if (i.op == Opcode::MOVP)
            return strprintf("%s p%u, r%u", m, i.rd, i.rs1);
        if (i.op == Opcode::MOVRP)
            return strprintf("%s r%u, p%u", m, i.rd, i.rs1);
        return strprintf("%s r%u, r%u", m, i.rd, i.rs1);
      case Format::F1R:
        if ((i.op == Opcode::CWR || i.op == Opcode::CRD) && i.imm > 0)
            return strprintf("%s r%u, %d", m, i.rd, i.imm - 1);
        return strprintf("%s r%u", m, i.rd);
      case Format::FRI:
        if (i.op == Opcode::MOVPI || i.op == Opcode::PADDI)
            return strprintf("%s p%u, %d", m, i.rd, i.imm);
        return strprintf("%s r%u, %d", m, i.rd, i.imm);
      case Format::FSHI:
        return strprintf("%s r%u, r%u, %d", m, i.rd, i.rs1, i.imm);
      case Format::FMAC:
        if (i.op == Opcode::SAA)
            return strprintf("%s a%u, r%u, r%u", m, i.acc, i.rs1,
                             i.rs2);
        return strprintf("%s a%u, r%u, r%u, %s", m, i.acc, i.rs1,
                         i.rs2, hselName(i.hsel));
      case Format::FACC:
        return strprintf("%s a%u", m, i.acc);
      case Format::FAEXT:
        return strprintf("%s r%u, a%u, %d", m, i.rd, i.acc, i.imm);
      case Format::FMEM:
        if (i.mode == MemMode::Offset) {
            if (i.imm == 0)
                return strprintf("%s r%u, [p%u]", m, i.rd, i.rs1);
            return strprintf("%s r%u, [p%u%+d]", m, i.rd, i.rs1,
                             i.imm);
        }
        return strprintf("%s r%u, [p%u]%+d", m, i.rd, i.rs1, i.imm);
      case Format::FJ:
        return strprintf("%s %d", m, i.imm);
      case Format::FLOOP:
        return strprintf("%s lc%u, %u, %d", m, i.lc, i.end, i.imm);
    }
    panic("unhandled format in disassemble");
}

} // namespace synchro::isa
