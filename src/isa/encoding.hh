/**
 * @file
 * Binary encoding of SyncBF instructions.
 *
 * All instructions are 32 bits. Bits [31:24] hold the opcode; operand
 * fields depend on the format:
 *
 *   F3R   : rd[23:20] rs1[19:16] rs2[15:12]
 *   F2R   : rd[23:20] rs1[19:16]
 *   F1R   : rd[23:20]
 *   FRI   : rd[23:20] imm16[15:0]
 *   FSHI  : rd[23:20] rs1[19:16] imm5[4:0]
 *   FMAC  : acc[23]   hsel[22:21] rs1[19:16] rs2[15:12]
 *   FACC  : acc[23]
 *   FAEXT : rd[23:20] acc[16]    imm5[4:0]
 *   FMEM  : rd[23:20] p[19:16]   mode[15] imm10[9:0] (signed bytes)
 *   FJ    : imm16[15:0] (absolute instruction index)
 *   FLOOP : lc[23] end11[22:12] count12[11:0]
 *
 * Immediates in MOVI/ADDI/PADDI and FMEM offsets are signed;
 * MOVIH/MOVPI immediates, jump targets and loop fields are unsigned.
 */

#ifndef SYNC_ISA_ENCODING_HH
#define SYNC_ISA_ENCODING_HH

#include <cstdint>

#include "isa/inst.hh"

namespace synchro::isa
{

/** Encode a decoded instruction; fatal() on out-of-range operands. */
uint32_t encode(const Inst &inst);

/** Decode a 32-bit word; fatal() on an unknown opcode byte. */
Inst decode(uint32_t word);

/** Operand range checks shared by encode() and the assembler. */
void validate(const Inst &inst);

} // namespace synchro::isa

#endif // SYNC_ISA_ENCODING_HH
