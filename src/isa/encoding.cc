#include "isa/encoding.hh"

#include "common/bitfield.hh"
#include "common/log.hh"

namespace synchro::isa
{

namespace
{

bool
isPtrOpDest(Opcode op)
{
    return op == Opcode::MOVPI || op == Opcode::MOVP ||
           op == Opcode::PADDI;
}

bool
signedImm16(Opcode op)
{
    return op == Opcode::MOVI || op == Opcode::ADDI ||
           op == Opcode::PADDI;
}

void
checkReg(unsigned r, unsigned limit, const char *what, Opcode op)
{
    if (r >= limit) {
        fatal("%s: %s index %u out of range (max %u)",
              mnemonic(op), what, r, limit - 1);
    }
}

} // namespace

void
validate(const Inst &i)
{
    const OpInfo &info = opInfo(i.op);
    switch (info.format) {
      case Format::F0:
        break;
      case Format::F3R:
        checkReg(i.rd, NumDataRegs, "rd", i.op);
        checkReg(i.rs1, NumDataRegs, "rs1", i.op);
        checkReg(i.rs2, NumDataRegs, "rs2", i.op);
        break;
      case Format::F2R:
        if (i.op == Opcode::MOVP) {
            checkReg(i.rd, NumPtrRegs, "pd", i.op);
            checkReg(i.rs1, NumDataRegs, "rs", i.op);
        } else if (i.op == Opcode::MOVRP) {
            checkReg(i.rd, NumDataRegs, "rd", i.op);
            checkReg(i.rs1, NumPtrRegs, "ps", i.op);
        } else {
            checkReg(i.rd, NumDataRegs, "rd", i.op);
            checkReg(i.rs1, NumDataRegs, "rs", i.op);
        }
        break;
      case Format::F1R:
        checkReg(i.rd, NumDataRegs, "reg", i.op);
        // CWR/CRD carry an optional bus-lane tag as imm = lane + 1
        // (0 = untagged, the legacy lane-agnostic form).
        if (i.op == Opcode::CWR || i.op == Opcode::CRD) {
            if (i.imm < 0 || i.imm > int32_t(BusLaneCount))
                fatal("%s: lane %d out of range 0..%u",
                      mnemonic(i.op), i.imm - 1, BusLaneCount - 1);
        }
        break;
      case Format::FRI:
        if (isPtrOpDest(i.op))
            checkReg(i.rd, NumPtrRegs, "pd", i.op);
        else
            checkReg(i.rd, NumDataRegs, "rd", i.op);
        if (signedImm16(i.op)) {
            if (i.imm < -32768 || i.imm > 32767)
                fatal("%s: imm16 %d out of signed range",
                      mnemonic(i.op), i.imm);
        } else {
            if (i.imm < 0 || i.imm > 0xffff)
                fatal("%s: imm16 %d out of unsigned range",
                      mnemonic(i.op), i.imm);
        }
        break;
      case Format::FSHI:
        checkReg(i.rd, NumDataRegs, "rd", i.op);
        checkReg(i.rs1, NumDataRegs, "rs", i.op);
        if (i.imm < 0 || i.imm > 31)
            fatal("%s: shift %d out of range 0..31", mnemonic(i.op),
                  i.imm);
        break;
      case Format::FMAC:
        checkReg(i.acc, NumAccums, "acc", i.op);
        checkReg(i.rs1, NumDataRegs, "rs1", i.op);
        checkReg(i.rs2, NumDataRegs, "rs2", i.op);
        break;
      case Format::FACC:
        checkReg(i.acc, NumAccums, "acc", i.op);
        break;
      case Format::FAEXT:
        checkReg(i.rd, NumDataRegs, "rd", i.op);
        checkReg(i.acc, NumAccums, "acc", i.op);
        if (i.imm < 0 || i.imm > 31)
            fatal("aext: shift %d out of range 0..31", i.imm);
        break;
      case Format::FMEM:
        checkReg(i.rd, NumDataRegs, "reg", i.op);
        checkReg(i.rs1, NumPtrRegs, "p", i.op);
        if (i.imm < -512 || i.imm > 511)
            fatal("%s: offset %d out of range -512..511",
                  mnemonic(i.op), i.imm);
        break;
      case Format::FJ:
        if (i.imm < 0 || i.imm > 0xffff)
            fatal("%s: target %d out of range", mnemonic(i.op), i.imm);
        break;
      case Format::FLOOP:
        checkReg(i.lc, 2, "lc", i.op);
        if (i.end > 2047)
            fatal("lsetup: end address %u out of range", i.end);
        if (i.imm < 1 || i.imm > 4095)
            fatal("lsetup: count %d out of range 1..4095", i.imm);
        break;
    }
}

uint32_t
encode(const Inst &i)
{
    validate(i);
    uint32_t w = uint32_t(i.op) << 24;
    switch (opInfo(i.op).format) {
      case Format::F0:
        break;
      case Format::F3R:
        w = insertBits(w, 23, 20, i.rd);
        w = insertBits(w, 19, 16, i.rs1);
        w = insertBits(w, 15, 12, i.rs2);
        break;
      case Format::F2R:
        w = insertBits(w, 23, 20, i.rd);
        w = insertBits(w, 19, 16, i.rs1);
        break;
      case Format::F1R:
        w = insertBits(w, 23, 20, i.rd);
        // Lane tag of CWR/CRD in the otherwise-unused low nibble;
        // legacy encodings have it zero, which decodes to untagged.
        if (i.op == Opcode::CWR || i.op == Opcode::CRD)
            w = insertBits(w, 3, 0, uint32_t(i.imm));
        break;
      case Format::FRI:
        w = insertBits(w, 23, 20, i.rd);
        w = insertBits(w, 15, 0, uint32_t(i.imm) & 0xffff);
        break;
      case Format::FSHI:
        w = insertBits(w, 23, 20, i.rd);
        w = insertBits(w, 19, 16, i.rs1);
        w = insertBits(w, 4, 0, uint32_t(i.imm));
        break;
      case Format::FMAC:
        w = insertBits(w, 23, 23, i.acc);
        w = insertBits(w, 22, 21, uint32_t(i.hsel));
        w = insertBits(w, 19, 16, i.rs1);
        w = insertBits(w, 15, 12, i.rs2);
        break;
      case Format::FACC:
        w = insertBits(w, 23, 23, i.acc);
        break;
      case Format::FAEXT:
        w = insertBits(w, 23, 20, i.rd);
        w = insertBits(w, 16, 16, i.acc);
        w = insertBits(w, 4, 0, uint32_t(i.imm));
        break;
      case Format::FMEM:
        w = insertBits(w, 23, 20, i.rd);
        w = insertBits(w, 19, 16, i.rs1);
        w = insertBits(w, 15, 15, uint32_t(i.mode));
        w = insertBits(w, 9, 0, uint32_t(i.imm) & 0x3ff);
        break;
      case Format::FJ:
        w = insertBits(w, 15, 0, uint32_t(i.imm));
        break;
      case Format::FLOOP:
        w = insertBits(w, 23, 23, i.lc);
        w = insertBits(w, 22, 12, i.end);
        w = insertBits(w, 11, 0, uint32_t(i.imm));
        break;
    }
    return w;
}

Inst
decode(uint32_t w)
{
    unsigned opbyte = unsigned(bits(w, 31, 24));
    if (opbyte >= unsigned(Opcode::NumOpcodes))
        fatal("decode: unknown opcode byte 0x%02x", opbyte);

    Inst i;
    i.op = Opcode(opbyte);
    switch (opInfo(i.op).format) {
      case Format::F0:
        break;
      case Format::F3R:
        i.rd = uint8_t(bits(w, 23, 20));
        i.rs1 = uint8_t(bits(w, 19, 16));
        i.rs2 = uint8_t(bits(w, 15, 12));
        break;
      case Format::F2R:
        i.rd = uint8_t(bits(w, 23, 20));
        i.rs1 = uint8_t(bits(w, 19, 16));
        break;
      case Format::F1R:
        i.rd = uint8_t(bits(w, 23, 20));
        if (i.op == Opcode::CWR || i.op == Opcode::CRD)
            i.imm = int32_t(bits(w, 3, 0));
        break;
      case Format::FRI:
        i.rd = uint8_t(bits(w, 23, 20));
        if (signedImm16(i.op))
            i.imm = int32_t(sext(bits(w, 15, 0), 16));
        else
            i.imm = int32_t(bits(w, 15, 0));
        break;
      case Format::FSHI:
        i.rd = uint8_t(bits(w, 23, 20));
        i.rs1 = uint8_t(bits(w, 19, 16));
        i.imm = int32_t(bits(w, 4, 0));
        break;
      case Format::FMAC:
        i.acc = uint8_t(bits(w, 23));
        i.hsel = HalfSel(bits(w, 22, 21));
        i.rs1 = uint8_t(bits(w, 19, 16));
        i.rs2 = uint8_t(bits(w, 15, 12));
        break;
      case Format::FACC:
        i.acc = uint8_t(bits(w, 23));
        break;
      case Format::FAEXT:
        i.rd = uint8_t(bits(w, 23, 20));
        i.acc = uint8_t(bits(w, 16));
        i.imm = int32_t(bits(w, 4, 0));
        break;
      case Format::FMEM:
        i.rd = uint8_t(bits(w, 23, 20));
        i.rs1 = uint8_t(bits(w, 19, 16));
        i.mode = MemMode(bits(w, 15));
        i.imm = int32_t(sext(bits(w, 9, 0), 10));
        break;
      case Format::FJ:
        i.imm = int32_t(bits(w, 15, 0));
        break;
      case Format::FLOOP:
        i.lc = uint8_t(bits(w, 23));
        i.end = uint16_t(bits(w, 22, 12));
        i.imm = int32_t(bits(w, 11, 0));
        break;
    }
    return i;
}

} // namespace synchro::isa
