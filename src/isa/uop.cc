#include "isa/uop.hh"

#include <map>
#include <mutex>

#include "common/log.hh"

namespace synchro::isa
{

namespace
{

void
checkReg(const Inst &inst, unsigned r, const char *what)
{
    if (r >= NumDataRegs)
        fatal("%s: %s index %u out of range (data regs are r0..r%u)",
              mnemonic(inst.op), what, r, NumDataRegs - 1);
}

void
checkPreg(const Inst &inst, unsigned p, const char *what)
{
    if (p >= NumPtrRegs)
        fatal("%s: %s index %u out of range (pointer regs are "
              "p0..p%u)",
              mnemonic(inst.op), what, p, NumPtrRegs - 1);
}

void
checkAcc(const Inst &inst, unsigned a)
{
    if (a >= NumAccums)
        fatal("%s: accumulator index %u out of range",
              mnemonic(inst.op), a);
}

void
checkShift(const Inst &inst, int32_t imm)
{
    if (imm < 0 || imm > 31)
        fatal("%s: shift amount %d outside 0..31", mnemonic(inst.op),
              imm);
}

UopKind
aluKind(Opcode op)
{
    switch (op) {
      case Opcode::ADD:   return UopKind::Add;
      case Opcode::SUB:   return UopKind::Sub;
      case Opcode::AND_:  return UopKind::And;
      case Opcode::OR_:   return UopKind::Or;
      case Opcode::XOR_:  return UopKind::Xor;
      case Opcode::MIN:   return UopKind::Min;
      case Opcode::MAX:   return UopKind::Max;
      case Opcode::LSL:   return UopKind::Lsl;
      case Opcode::LSR:   return UopKind::Lsr;
      case Opcode::ASR:   return UopKind::Asr;
      case Opcode::MUL:   return UopKind::Mul;
      case Opcode::SEL:   return UopKind::Sel;
      case Opcode::ADD16: return UopKind::Add16;
      case Opcode::SUB16: return UopKind::Sub16;
      default:
        panic("aluKind on non-ALU opcode '%s'", mnemonic(op));
    }
}

} // namespace

MicroOp
decodeInst(const Inst &inst)
{
    MicroOp u;
    u.imm = inst.imm;

    switch (inst.op) {
      case Opcode::NOP:
        u.kind = UopKind::Nop;
        break;
      case Opcode::HALT:
        u.kind = UopKind::Halt;
        break;
      case Opcode::JUMP:
        u.kind = UopKind::Jump;
        break;
      case Opcode::JCC:
        u.kind = UopKind::Jcc;
        break;
      case Opcode::JNCC:
        u.kind = UopKind::Jncc;
        break;
      case Opcode::LSETUP:
        u.kind = UopKind::Lsetup;
        if (inst.lc >= 2)
            fatal("lsetup: loop unit lc%u out of range", inst.lc);
        u.acc = inst.lc;
        u.end = inst.end;
        break;

      case Opcode::ADD: case Opcode::SUB: case Opcode::AND_:
      case Opcode::OR_: case Opcode::XOR_: case Opcode::MIN:
      case Opcode::MAX: case Opcode::LSL: case Opcode::LSR:
      case Opcode::ASR: case Opcode::MUL: case Opcode::SEL:
      case Opcode::ADD16: case Opcode::SUB16:
        u.kind = aluKind(inst.op);
        checkReg(inst, inst.rd, "rd");
        checkReg(inst, inst.rs1, "rs1");
        checkReg(inst, inst.rs2, "rs2");
        u.rd = inst.rd;
        u.rs1 = inst.rs1;
        u.rs2 = inst.rs2;
        break;

      case Opcode::NEG:
      case Opcode::NOT_:
      case Opcode::ABS:
      case Opcode::MOV:
        u.kind = inst.op == Opcode::NEG   ? UopKind::Neg
                 : inst.op == Opcode::NOT_ ? UopKind::Not
                 : inst.op == Opcode::ABS  ? UopKind::Abs
                                           : UopKind::Mov;
        checkReg(inst, inst.rd, "rd");
        checkReg(inst, inst.rs1, "rs");
        u.rd = inst.rd;
        u.rs1 = inst.rs1;
        break;

      case Opcode::ADDI:
        u.kind = UopKind::AddImm;
        checkReg(inst, inst.rd, "rd");
        u.rd = inst.rd;
        break;
      case Opcode::LSLI:
      case Opcode::LSRI:
      case Opcode::ASRI:
        u.kind = inst.op == Opcode::LSLI   ? UopKind::LslImm
                 : inst.op == Opcode::LSRI ? UopKind::LsrImm
                                           : UopKind::AsrImm;
        checkReg(inst, inst.rd, "rd");
        checkReg(inst, inst.rs1, "rs");
        checkShift(inst, inst.imm);
        u.rd = inst.rd;
        u.rs1 = inst.rs1;
        break;

      case Opcode::MAC:
      case Opcode::MSU:
        u.kind = inst.op == Opcode::MAC ? UopKind::Mac : UopKind::Msu;
        checkAcc(inst, inst.acc);
        checkReg(inst, inst.rs1, "rs1");
        checkReg(inst, inst.rs2, "rs2");
        u.acc = inst.acc;
        u.rs1 = inst.rs1;
        u.rs2 = inst.rs2;
        if (inst.hsel == HalfSel::HL || inst.hsel == HalfSel::HH)
            u.flags |= UopAHigh;
        if (inst.hsel == HalfSel::LH || inst.hsel == HalfSel::HH)
            u.flags |= UopBHigh;
        break;
      case Opcode::SAA:
        u.kind = UopKind::Saa;
        checkAcc(inst, inst.acc);
        checkReg(inst, inst.rs1, "rs1");
        checkReg(inst, inst.rs2, "rs2");
        u.acc = inst.acc;
        u.rs1 = inst.rs1;
        u.rs2 = inst.rs2;
        break;
      case Opcode::ACLR:
        u.kind = UopKind::AClr;
        checkAcc(inst, inst.acc);
        u.acc = inst.acc;
        break;
      case Opcode::AEXT:
        u.kind = UopKind::AExt;
        checkReg(inst, inst.rd, "rd");
        checkAcc(inst, inst.acc);
        checkShift(inst, inst.imm);
        u.rd = inst.rd;
        u.acc = inst.acc;
        break;

      case Opcode::MOVI:
        u.kind = UopKind::MovImm;
        checkReg(inst, inst.rd, "rd");
        u.rd = inst.rd;
        break;
      case Opcode::MOVIH:
        u.kind = UopKind::MovImmHigh;
        checkReg(inst, inst.rd, "rd");
        u.rd = inst.rd;
        break;
      case Opcode::MOVPI:
        u.kind = UopKind::MovPtrImm;
        checkPreg(inst, inst.rd, "pd");
        u.rd = inst.rd;
        break;
      case Opcode::MOVP:
        u.kind = UopKind::MovPtr;
        checkPreg(inst, inst.rd, "pd");
        checkReg(inst, inst.rs1, "rs");
        u.rd = inst.rd;
        u.rs1 = inst.rs1;
        break;
      case Opcode::MOVRP:
        u.kind = UopKind::MovFromPtr;
        checkReg(inst, inst.rd, "rd");
        checkPreg(inst, inst.rs1, "ps");
        u.rd = inst.rd;
        u.rs1 = inst.rs1;
        break;
      case Opcode::PADDI:
        u.kind = UopKind::PtrAddImm;
        checkPreg(inst, inst.rd, "pd");
        u.rd = inst.rd;
        break;
      case Opcode::TID:
        u.kind = UopKind::TileId;
        checkReg(inst, inst.rd, "rd");
        u.rd = inst.rd;
        break;

      case Opcode::LDW: case Opcode::LDH: case Opcode::LDB:
      case Opcode::LDHU: case Opcode::LDBU:
      case Opcode::STW: case Opcode::STH: case Opcode::STB: {
        bool store = inst.op == Opcode::STW ||
                     inst.op == Opcode::STH ||
                     inst.op == Opcode::STB;
        u.kind = store ? UopKind::Store : UopKind::Load;
        checkReg(inst, inst.rd, store ? "rs" : "rd");
        checkPreg(inst, inst.rs1, "p");
        u.rd = inst.rd;
        u.rs1 = inst.rs1;
        switch (inst.op) {
          case Opcode::LDW: case Opcode::STW:
            u.mem_size = 4;
            break;
          case Opcode::LDH: case Opcode::LDHU: case Opcode::STH:
            u.mem_size = 2;
            break;
          default:
            u.mem_size = 1;
            break;
        }
        if (inst.op == Opcode::LDW || inst.op == Opcode::LDH ||
            inst.op == Opcode::LDB) {
            u.flags |= UopSignExtend;
        }
        if (inst.mode == MemMode::PostMod)
            u.flags |= UopPostMod;
        break;
      }

      case Opcode::CMPEQ: case Opcode::CMPLT: case Opcode::CMPLE:
      case Opcode::CMPLTU:
        u.kind = inst.op == Opcode::CMPEQ   ? UopKind::CmpEq
                 : inst.op == Opcode::CMPLT ? UopKind::CmpLt
                 : inst.op == Opcode::CMPLE ? UopKind::CmpLe
                                            : UopKind::CmpLtu;
        checkReg(inst, inst.rd, "lhs");
        checkReg(inst, inst.rs1, "rhs");
        u.rd = inst.rd;
        u.rs1 = inst.rs1;
        break;

      case Opcode::CWR:
      case Opcode::CRD:
        u.kind = inst.op == Opcode::CWR ? UopKind::CommWrite
                                        : UopKind::CommRead;
        checkReg(inst, inst.rd,
                 inst.op == Opcode::CWR ? "rs" : "rd");
        u.rd = inst.rd;
        // Bus-lane tag, pre-biased back to -1 = untagged.
        if (inst.imm < 0 || inst.imm > int32_t(BusLaneCount))
            fatal("decodeInst: %s lane %d out of range",
                  mnemonic(inst.op), inst.imm - 1);
        u.imm = inst.imm - 1;
        break;

      default:
        fatal("decodeInst: unknown opcode %u", unsigned(inst.op));
    }
    return u;
}

namespace
{

/** FNV-1a over every architecturally-meaningful Inst field. */
uint64_t
hashProgram(const std::vector<Inst> &insts)
{
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    for (const Inst &i : insts) {
        mix(uint64_t(i.op));
        mix(i.rd);
        mix(i.rs1);
        mix(i.rs2);
        mix(i.acc);
        mix(uint64_t(i.hsel));
        mix(uint64_t(i.mode));
        mix(i.lc);
        mix(uint64_t(uint32_t(i.imm)));
        mix(i.end);
    }
    return h;
}

struct DecodeCache
{
    std::mutex mu;
    // hash -> decoded programs with that hash (collision chain).
    std::map<uint64_t,
             std::vector<std::shared_ptr<const DecodedProgram>>>
        entries;
    uint64_t count = 0;
    uint64_t capacity = 1024;
    DecodeCacheStats stats;
};

DecodeCache &
cache()
{
    static DecodeCache c;
    return c;
}

/**
 * Steady-state block analysis (see DecodedProgram::run_len). Loop
 * end addresses are collected statically from every `lsetup` in the
 * program — conservative (an address truncates runs even while its
 * loop is inactive) but safe: truncation only costs one extra
 * advancePc() per boundary, never correctness.
 */
void
analyzeBlocks(DecodedProgram &p)
{
    const size_t n = p.uops.size();
    p.run_len.assign(n, 0);
    p.nop_prefix.assign(n + 1, 0);
    p.mem_prefix.assign(n + 1, 0);
    p.mac_prefix.assign(n + 1, 0);

    std::vector<bool> loop_end(n + 1, false);
    for (const MicroOp &u : p.uops) {
        if (u.kind == UopKind::Lsetup && u.end <= n)
            loop_end[u.end] = true;
    }

    for (size_t i = 0; i < n; ++i) {
        const UopKind k = p.uops[i].kind;
        p.nop_prefix[i + 1] =
            p.nop_prefix[i] + (k == UopKind::Nop ? 1 : 0);
        p.mem_prefix[i + 1] =
            p.mem_prefix[i] +
            (k == UopKind::Load || k == UopKind::Store ? 1 : 0);
        p.mac_prefix[i + 1] =
            p.mac_prefix[i] +
            (k == UopKind::Mac || k == UopKind::Msu ||
                     k == UopKind::Saa
                 ? 1
                 : 0);
    }

    for (size_t i = n; i-- > 0;) {
        if (!isBlockStraight(p.uops[i].kind))
            continue;
        uint32_t len = 1;
        if (i + 1 < n && !loop_end[i + 1])
            len += p.run_len[i + 1];
        p.run_len[i] = uint16_t(len); // programs cap at 512 words
    }
}

std::shared_ptr<const DecodedProgram>
decodeUncached(const Program &prog, uint64_t hash)
{
    auto out = std::make_shared<DecodedProgram>();
    out->insts = prog.insts;
    out->hash = hash;
    out->uops.reserve(prog.insts.size());
    for (const Inst &i : prog.insts)
        out->uops.push_back(decodeInst(i));
    analyzeBlocks(*out);
    return out;
}

} // namespace

std::shared_ptr<const DecodedProgram>
decodeProgram(const Program &prog)
{
    uint64_t h = hashProgram(prog.insts);
    DecodeCache &c = cache();
    {
        std::lock_guard<std::mutex> lock(c.mu);
        auto it = c.entries.find(h);
        if (it != c.entries.end()) {
            for (const auto &dp : it->second) {
                if (dp->insts == prog.insts) {
                    ++c.stats.hits;
                    return dp;
                }
            }
        }
        ++c.stats.misses;
    }

    // Decode outside the lock: decodes can fatal() and may be slow.
    auto decoded = decodeUncached(prog, h);

    std::lock_guard<std::mutex> lock(c.mu);
    if (c.capacity == 0)
        return decoded;
    if (c.count >= c.capacity) {
        c.stats.evictions += c.count;
        c.entries.clear();
        c.count = 0;
    }
    auto &chain = c.entries[h];
    // Another thread may have decoded the same program meanwhile.
    for (const auto &dp : chain) {
        if (dp->insts == prog.insts)
            return dp;
    }
    chain.push_back(decoded);
    ++c.count;
    return decoded;
}

DecodeCacheStats
decodeCacheStats()
{
    DecodeCache &c = cache();
    std::lock_guard<std::mutex> lock(c.mu);
    DecodeCacheStats s = c.stats;
    s.entries = c.count;
    return s;
}

void
clearDecodeCache()
{
    DecodeCache &c = cache();
    std::lock_guard<std::mutex> lock(c.mu);
    c.stats.evictions += c.count;
    c.entries.clear();
    c.count = 0;
}

void
setDecodeCacheCapacity(uint64_t n)
{
    DecodeCache &c = cache();
    std::lock_guard<std::mutex> lock(c.mu);
    c.capacity = n;
    if (c.count > n) {
        c.stats.evictions += c.count;
        c.entries.clear();
        c.count = 0;
    }
}

std::string
regUnitName(unsigned unit)
{
    if (unit < UnitPtr0)
        return strprintf("r%u", unit - UnitData0);
    if (unit < UnitAcc0)
        return strprintf("p%u", unit - UnitPtr0);
    if (unit < UnitCc)
        return strprintf("a%u", unit - UnitAcc0);
    if (unit == UnitCc)
        return "cc";
    return strprintf("unit%u", unit);
}

namespace
{

constexpr uint32_t
dataBit(unsigned r)
{
    return 1u << (UnitData0 + r);
}

constexpr uint32_t
ptrBit(unsigned r)
{
    return 1u << (UnitPtr0 + r);
}

constexpr uint32_t
accBit(unsigned a)
{
    return 1u << (UnitAcc0 + a);
}

constexpr uint32_t CcBit = 1u << UnitCc;

} // namespace

UopEffects
uopEffects(const MicroOp &u)
{
    UopEffects e;
    switch (u.kind) {
      case UopKind::Nop:
      case UopKind::Halt:
      case UopKind::Jump:
      case UopKind::Lsetup:
        break;
      case UopKind::Jcc:
      case UopKind::Jncc:
        e.reads = CcBit;
        break;
      case UopKind::Add:
      case UopKind::Sub:
      case UopKind::And:
      case UopKind::Or:
      case UopKind::Xor:
      case UopKind::Min:
      case UopKind::Max:
      case UopKind::Lsl:
      case UopKind::Lsr:
      case UopKind::Asr:
      case UopKind::Mul:
      case UopKind::Add16:
      case UopKind::Sub16:
        e.reads = dataBit(u.rs1) | dataBit(u.rs2);
        e.writes = dataBit(u.rd);
        break;
      case UopKind::Sel:
        e.reads = dataBit(u.rs1) | dataBit(u.rs2) | CcBit;
        e.writes = dataBit(u.rd);
        break;
      case UopKind::Neg:
      case UopKind::Not:
      case UopKind::Abs:
      case UopKind::Mov:
        e.reads = dataBit(u.rs1);
        e.writes = dataBit(u.rd);
        break;
      case UopKind::AddImm:
        e.reads = dataBit(u.rd);
        e.writes = dataBit(u.rd);
        break;
      case UopKind::LslImm:
      case UopKind::LsrImm:
      case UopKind::AsrImm:
        e.reads = dataBit(u.rs1);
        e.writes = dataBit(u.rd);
        break;
      case UopKind::Mac:
      case UopKind::Msu:
      case UopKind::Saa:
        e.reads = dataBit(u.rs1) | dataBit(u.rs2) | accBit(u.acc);
        e.writes = accBit(u.acc);
        break;
      case UopKind::AClr:
        e.writes = accBit(u.acc);
        break;
      case UopKind::AExt:
        e.reads = accBit(u.acc);
        e.writes = dataBit(u.rd);
        break;
      case UopKind::MovImm:
        e.writes = dataBit(u.rd);
        break;
      case UopKind::MovImmHigh:
        e.reads = dataBit(u.rd); // keeps the low half
        e.writes = dataBit(u.rd);
        break;
      case UopKind::MovPtrImm:
        e.writes = ptrBit(u.rd);
        break;
      case UopKind::MovPtr:
        e.reads = dataBit(u.rs1);
        e.writes = ptrBit(u.rd);
        break;
      case UopKind::MovFromPtr:
        e.reads = ptrBit(u.rs1);
        e.writes = dataBit(u.rd);
        break;
      case UopKind::PtrAddImm:
        e.reads = ptrBit(u.rd);
        e.writes = ptrBit(u.rd);
        break;
      case UopKind::TileId:
        e.writes = dataBit(u.rd);
        break;
      case UopKind::Load:
        e.reads = ptrBit(u.rs1);
        e.writes = dataBit(u.rd);
        if (u.flags & UopPostMod)
            e.writes |= ptrBit(u.rs1);
        break;
      case UopKind::Store:
        e.reads = dataBit(u.rd) | ptrBit(u.rs1);
        if (u.flags & UopPostMod)
            e.writes = ptrBit(u.rs1);
        break;
      case UopKind::CmpEq:
      case UopKind::CmpLt:
      case UopKind::CmpLe:
      case UopKind::CmpLtu:
        e.reads = dataBit(u.rd) | dataBit(u.rs1);
        e.writes = CcBit;
        break;
      case UopKind::CommWrite:
        e.reads = dataBit(u.rd);
        break;
      case UopKind::CommRead:
        e.writes = dataBit(u.rd);
        break;
      default:
        break;
    }
    return e;
}

} // namespace synchro::isa
